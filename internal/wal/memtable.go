package wal

import "sort"

// Memtable accumulates acknowledged log entries between flushes. Puts are
// kept as pending records; a delete removes every matching pending put and
// is additionally retained as a tombstone, because it must also shadow
// matching records that were flushed into older runs.
//
// Applying the same entry sequence always yields the same memtable — the
// property WAL replay relies on. Memtable is not safe for concurrent use;
// the durable store serializes writers.
type Memtable struct {
	puts  []Entry // pending inserts, in arrival order
	tombs []Entry // deletes to shadow older runs with, in arrival order
}

// NewMemtable returns an empty memtable.
func NewMemtable() *Memtable { return &Memtable{} }

// Apply folds one entry in. A KindDelete removes every pending put with the
// same key, point, and payload — a put that was never flushed needs no
// tombstone to die — and is then recorded as a tombstone for the flushed
// runs. A put after a delete of the same record resurrects it: the put is
// newer than the tombstone's run-shadowing effect by construction (the
// tombstone only ever shadows strictly older runs).
func (m *Memtable) Apply(e Entry) {
	switch e.Kind {
	case KindPut:
		m.puts = append(m.puts, e)
	case KindDelete:
		kept := m.puts[:0]
		for _, p := range m.puts {
			if !sameRecord(p, e) {
				kept = append(kept, p)
			}
		}
		m.puts = kept
		m.tombs = append(m.tombs, e)
	}
}

// Ops returns the number of retained operations — the size a flush
// threshold is measured against.
func (m *Memtable) Ops() int { return len(m.puts) + len(m.tombs) }

// Puts returns the number of pending inserts.
func (m *Memtable) Puts() int { return len(m.puts) }

// Tombs returns the number of retained tombstones.
func (m *Memtable) Tombs() int { return len(m.tombs) }

// Sorted returns the pending puts and tombstones sorted by curve key
// (stable, so equal keys keep arrival order — matching the store's
// bulkload order for duplicate keys). The returned slices are copies; the
// memtable is unchanged.
func (m *Memtable) Sorted() (puts, tombs []Entry) {
	puts = append([]Entry(nil), m.puts...)
	tombs = append([]Entry(nil), m.tombs...)
	sort.SliceStable(puts, func(a, b int) bool { return puts[a].Key < puts[b].Key })
	sort.SliceStable(tombs, func(a, b int) bool { return tombs[a].Key < tombs[b].Key })
	return puts, tombs
}

// Reset empties the memtable after a flush.
func (m *Memtable) Reset() {
	m.puts = m.puts[:0]
	m.tombs = m.tombs[:0]
}

// sameRecord reports whether two entries name the same record content.
func sameRecord(a, b Entry) bool {
	if a.Key != b.Key || a.Payload != b.Payload || len(a.Point) != len(b.Point) {
		return false
	}
	for i := range a.Point {
		if a.Point[i] != b.Point[i] {
			return false
		}
	}
	return true
}
