package wal

import (
	"bytes"
	"testing"

	"repro/internal/grid"
)

// FuzzDecode throws arbitrary bytes at the entry decoder — the exact
// position recovery is in when it reads a WAL tail a crash may have
// truncated, torn, or scribbled on. The decoder must never panic, never
// consume more bytes than it was given, and anything it does accept must
// re-encode to the identical bytes (so replay-after-truncation is a fixed
// point).
func FuzzDecode(f *testing.F) {
	for _, e := range []Entry{
		{Seq: 1, Kind: KindPut, Key: 42, Point: grid.Point{1, 2, 3}, Payload: 7},
		{Seq: 9, Kind: KindDelete, Key: 0, Point: grid.Point{0}, Payload: 0},
		{Seq: 1 << 50, Kind: KindPut, Key: 1<<64 - 1, Point: grid.Point{4, 4, 4, 4}, Payload: 1<<63 + 1},
	} {
		enc, err := Encode(e)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		f.Add(enc[:len(enc)-3])
		f.Add(append(enc, enc...))
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		e, n, ok, err := Decode(data)
		if n < 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if !ok {
			if n != 0 {
				t.Fatalf("rejected input but consumed %d bytes", n)
			}
			return
		}
		if err != nil {
			t.Fatalf("ok with error %v", err)
		}
		re, err := Encode(e)
		if err != nil {
			t.Fatalf("accepted entry %+v does not re-encode: %v", e, err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch: %x vs %x", re, data[:n])
		}
		// Replay over the same bytes must consume at least this entry.
		ents, off, _ := Replay(data)
		if len(ents) == 0 || off < int64(n) {
			t.Fatalf("replay dropped a decodable head entry")
		}
	})
}
