package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// ManifestName is the file the current manifest lives in, rewritten
// atomically on every flush and compaction.
const ManifestName = "MANIFEST"

// Manifest names the files one durable store instance is made of. It is the
// recovery root: open reads it first, then trusts exactly the files it
// names — anything else in the directory is an orphan from an interrupted
// flush or compaction and is deleted.
type Manifest struct {
	// Generation increases by one on every manifest rewrite. Run and WAL
	// file names embed the generation that created them, so names are never
	// reused and a half-written file from a crashed rewrite can never be
	// mistaken for a live one.
	Generation uint64 `json:"generation"`
	// Runs lists the immutable run files, oldest first. Records in newer
	// runs were written after records in older ones; tombstones in a run
	// shadow matching records in strictly older runs.
	Runs []string `json:"runs"`
	// WAL is the live log file. Entries with Seq > FlushedSeq are replayed
	// into the memtable on open.
	WAL string `json:"wal"`
	// FlushedSeq is the highest entry sequence number whose effect is
	// already captured by the runs. Replay skips entries at or below it,
	// which makes recovery idempotent across repeated crashes.
	FlushedSeq uint64 `json:"flushed_seq"`
}

// manifestFile is the on-disk envelope: the manifest plus a checksum of its
// canonical JSON encoding, so a torn manifest write is detected rather than
// trusted.
type manifestFile struct {
	Manifest
	Sum uint64 `json:"sum"`
}

// ErrNoManifest reports a directory with no manifest — a fresh store.
var ErrNoManifest = errors.New("wal: no manifest")

// ReadManifest loads and validates dir's manifest. A missing file returns
// ErrNoManifest (via errors.Is); a checksum mismatch is an error, not a
// silent fallback — a store with a corrupt root must not guess.
func ReadManifest(dir string) (Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if errors.Is(err, os.ErrNotExist) {
		return Manifest{}, ErrNoManifest
	}
	if err != nil {
		return Manifest{}, fmt.Errorf("wal: read manifest: %w", err)
	}
	var mf manifestFile
	if err := json.Unmarshal(data, &mf); err != nil {
		return Manifest{}, fmt.Errorf("wal: parse manifest: %w", err)
	}
	canon, err := json.Marshal(mf.Manifest)
	if err != nil {
		return Manifest{}, fmt.Errorf("wal: canonicalize manifest: %w", err)
	}
	if fnv64(canon) != mf.Sum {
		return Manifest{}, fmt.Errorf("wal: manifest checksum mismatch")
	}
	return mf.Manifest, nil
}

// WriteManifest atomically replaces dir's manifest: write to a temp file,
// fsync it, rename over ManifestName, fsync the directory. A crash at any
// point leaves either the old manifest or the new one, never a mixture.
func WriteManifest(dir string, m Manifest) error {
	canon, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("wal: encode manifest: %w", err)
	}
	data, err := json.MarshalIndent(manifestFile{Manifest: m, Sum: fnv64(canon)}, "", "  ")
	if err != nil {
		return fmt.Errorf("wal: encode manifest: %w", err)
	}
	tmp := filepath.Join(dir, ManifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: write manifest: %w", err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: write manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: sync manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: close manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, ManifestName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: rename manifest: %w", err)
	}
	return syncDir(filepath.Join(dir, ManifestName))
}

// RunFileName returns the generation-stamped name of a run file.
func RunFileName(generation uint64) string {
	return fmt.Sprintf("run-%06d.sfc", generation)
}

// LogFileName returns the generation-stamped name of a WAL file.
func LogFileName(generation uint64) string {
	return fmt.Sprintf("wal-%06d.log", generation)
}
