package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/grid"
)

func testEntries() []Entry {
	return []Entry{
		{Seq: 1, Kind: KindPut, Key: 9, Point: grid.Point{1, 2}, Payload: 100},
		{Seq: 2, Kind: KindPut, Key: 3, Point: grid.Point{0, 7}, Payload: 101},
		{Seq: 3, Kind: KindDelete, Key: 9, Point: grid.Point{1, 2}, Payload: 100},
		{Seq: 7, Kind: KindPut, Key: 1 << 60, Point: grid.Point{4, 5}, Payload: 1<<64 - 1},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, e := range testEntries() {
		enc, err := Encode(e)
		if err != nil {
			t.Fatalf("encode %+v: %v", e, err)
		}
		if len(enc) != EncodedSize(e) {
			t.Fatalf("encoded %d bytes, EncodedSize says %d", len(enc), EncodedSize(e))
		}
		got, n, ok, err := Decode(enc)
		if err != nil || !ok || n != len(enc) {
			t.Fatalf("decode: got ok=%v n=%d err=%v", ok, n, err)
		}
		if !reflect.DeepEqual(got, e) {
			t.Fatalf("round trip: got %+v want %+v", got, e)
		}
	}
}

func TestDecodeTruncatedAndCorrupt(t *testing.T) {
	e := testEntries()[0]
	enc, _ := Encode(e)
	// Every strict prefix is a torn tail: truncated or corrupt, never a
	// valid entry and never a panic.
	for n := 0; n < len(enc); n++ {
		_, _, ok, err := Decode(enc[:n])
		if ok {
			t.Fatalf("prefix of %d/%d bytes decoded as a valid entry", n, len(enc))
		}
		if n == 0 {
			if err != nil {
				t.Fatalf("empty buffer: err %v, want clean end", err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("prefix of %d bytes: no error", n)
		}
	}
	// Any single bit flip must be rejected.
	for i := 0; i < len(enc); i++ {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x10
		if _, _, ok, err := Decode(bad); ok && err == nil {
			// The length field may grow the frame; that must then read as
			// truncated, not as a valid entry.
			t.Fatalf("bit flip at byte %d went undetected", i)
		}
	}
}

func TestReplayStopsAtTornTail(t *testing.T) {
	var buf []byte
	ents := testEntries()
	for _, e := range ents {
		enc, _ := Encode(e)
		buf = append(buf, enc...)
	}
	clean, off, torn := Replay(buf)
	if torn || off != int64(len(buf)) || len(clean) != len(ents) {
		t.Fatalf("clean log: entries=%d off=%d torn=%v", len(clean), off, torn)
	}
	// Truncate mid-final-entry: the prefix must replay, the tail must be torn.
	cut := len(buf) - 5
	got, off, torn := Replay(buf[:cut])
	if !torn || len(got) != len(ents)-1 {
		t.Fatalf("torn log: entries=%d torn=%v", len(got), torn)
	}
	if off > int64(cut) {
		t.Fatalf("good offset %d past buffer %d", off, cut)
	}
	// Non-monotonic seq reads as corruption.
	dup, _ := Encode(ents[0])
	bad := append(append([]byte(nil), buf...), dup...)
	got, _, torn = Replay(bad)
	if !torn || len(got) != len(ents) {
		t.Fatalf("replayed %d entries past a seq regression (torn=%v)", len(got), torn)
	}
}

func TestLogAppendReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000001.log")
	l, err := Create(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	ents := testEntries()
	for _, e := range ents {
		if err := l.Append(e); err != nil {
			t.Fatalf("append %+v: %v", e, err)
		}
	}
	if l.LastSeq() != 7 {
		t.Fatalf("lastSeq = %d", l.LastSeq())
	}
	if err := l.Append(Entry{Seq: 7, Kind: KindPut, Point: grid.Point{0}}); err == nil {
		t.Fatal("duplicate seq accepted")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, replayed, tornBytes, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if tornBytes != 0 {
		t.Fatalf("clean log reports %d torn bytes", tornBytes)
	}
	if !reflect.DeepEqual(replayed, ents) {
		t.Fatalf("replayed %+v want %+v", replayed, ents)
	}
	if err := l2.Append(Entry{Seq: 8, Kind: KindPut, Key: 5, Point: grid.Point{1, 1}, Payload: 9}); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
}

func TestLogCrashTornRecovers(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		path := filepath.Join(t.TempDir(), "wal-000001.log")
		l, err := Create(path, nil)
		if err != nil {
			t.Fatal(err)
		}
		ents := testEntries()
		for _, e := range ents {
			if err := l.Append(e); err != nil {
				t.Fatal(err)
			}
		}
		next := Entry{Seq: 9, Kind: KindPut, Key: 77, Point: grid.Point{3, 3}, Payload: 42}
		if err := l.CrashTorn(next, seed); err != nil {
			t.Fatalf("seed %d: crash: %v", seed, err)
		}
		l2, replayed, tornBytes, err := Open(path, nil)
		if err != nil {
			t.Fatalf("seed %d: reopen: %v", seed, err)
		}
		if !reflect.DeepEqual(replayed, ents) {
			t.Fatalf("seed %d: torn tail leaked into replay: got %d entries want %d", seed, len(replayed), len(ents))
		}
		// A fragment of zero bytes is a clean tail; anything else is torn.
		data, _ := os.ReadFile(path)
		if int64(len(data)) != l2.Size() {
			t.Fatalf("seed %d: file %d bytes, acknowledged %d", seed, len(data), l2.Size())
		}
		_ = tornBytes
		l2.Close()
	}
}

func TestLogRepairAfterFailedWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000001.log")
	l, err := Create(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	good := Entry{Seq: 1, Kind: KindPut, Key: 1, Point: grid.Point{1, 1}, Payload: 1}
	if err := l.Append(good); err != nil {
		t.Fatal(err)
	}
	inner := l.f
	l.f = &flakyFile{File: inner, failWrites: 1}
	bad := Entry{Seq: 2, Kind: KindPut, Key: 2, Point: grid.Point{2, 2}, Payload: 2}
	if err := l.Append(bad); err == nil {
		t.Fatal("append through failing file succeeded")
	}
	l.f = inner
	// The log repaired itself: the next append lands cleanly and reopen
	// sees exactly [good, next].
	next := Entry{Seq: 3, Kind: KindPut, Key: 3, Point: grid.Point{3, 3}, Payload: 3}
	if err := l.Append(next); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	l.Close()
	_, replayed, _, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []Entry{good, next}
	if !reflect.DeepEqual(replayed, want) {
		t.Fatalf("after repair replayed %+v want %+v", replayed, want)
	}
}

// flakyFile fails the first failWrites writes after writing a partial
// prefix — a torn write.
type flakyFile struct {
	File
	failWrites int
}

func (f *flakyFile) Write(p []byte) (int, error) {
	if f.failWrites > 0 {
		f.failWrites--
		n, _ := f.File.Write(p[:len(p)/2])
		return n, errors.New("flaky: torn write")
	}
	return f.File.Write(p)
}

func TestMemtableApply(t *testing.T) {
	m := NewMemtable()
	put := func(seq, key, payload uint64) Entry {
		return Entry{Seq: seq, Kind: KindPut, Key: key, Point: grid.Point{uint32(key), 0}, Payload: payload}
	}
	del := func(seq, key, payload uint64) Entry {
		return Entry{Seq: seq, Kind: KindDelete, Key: key, Point: grid.Point{uint32(key), 0}, Payload: payload}
	}
	m.Apply(put(1, 5, 100))
	m.Apply(put(2, 3, 101))
	m.Apply(put(3, 5, 100)) // duplicate record: two instances pending
	m.Apply(del(4, 5, 100)) // kills both pending instances, keeps a tombstone
	m.Apply(put(5, 5, 100)) // resurrects one
	if m.Puts() != 2 || m.Tombs() != 1 {
		t.Fatalf("puts=%d tombs=%d, want 2/1", m.Puts(), m.Tombs())
	}
	puts, tombs := m.Sorted()
	if puts[0].Key != 3 || puts[1].Key != 5 || puts[1].Seq != 5 {
		t.Fatalf("sorted puts wrong: %+v", puts)
	}
	if tombs[0].Seq != 4 {
		t.Fatalf("sorted tombs wrong: %+v", tombs)
	}
	m.Reset()
	if m.Ops() != 0 {
		t.Fatalf("ops after reset = %d", m.Ops())
	}
}

func TestManifestRoundTripAndAtomicity(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadManifest(dir); !errors.Is(err, ErrNoManifest) {
		t.Fatalf("empty dir: %v, want ErrNoManifest", err)
	}
	m := Manifest{Generation: 3, Runs: []string{RunFileName(1), RunFileName(2)}, WAL: LogFileName(3), FlushedSeq: 41}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("got %+v want %+v", got, m)
	}
	// A corrupted manifest must be rejected, not trusted.
	path := filepath.Join(dir, ManifestName)
	data, _ := os.ReadFile(path)
	bad := bytes.Replace(data, []byte(`"flushed_seq": 41`), []byte(`"flushed_seq": 42`), 1)
	if bytes.Equal(bad, data) {
		t.Fatal("test setup: substitution failed")
	}
	os.WriteFile(path, bad, 0o644)
	if _, err := ReadManifest(dir); err == nil {
		t.Fatal("tampered manifest accepted")
	}
}
