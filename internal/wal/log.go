package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
)

// File is the handle the log appends through. *os.File satisfies it; the
// fault injector (internal/faultio) wraps one to inject torn writes and
// fsync failures.
type File interface {
	io.Writer
	io.Seeker
	// Sync flushes written bytes to stable storage; until it returns nil
	// the bytes are not durable and the entries they encode are unacked.
	Sync() error
	// Truncate discards everything past size — the log's repair primitive
	// after a failed append.
	Truncate(size int64) error
	Close() error
}

// ErrPoisoned is returned by appends after the log failed to repair itself:
// a write or sync failed and the truncate back to the last acknowledged
// boundary failed too, so the tail state is unknown and no further append
// can be trusted.
var ErrPoisoned = errors.New("wal: log poisoned by unrepairable append failure")

// Log is an append-only entry log. An Append that returns nil has synced
// the entry to stable storage; an Append that returns an error has left the
// file exactly as it was before the call (the failed bytes are truncated
// away), unless the repair itself failed, in which case the log is poisoned
// and every later Append fails with ErrPoisoned.
//
// Log is not safe for concurrent use; the durable store serializes writers.
type Log struct {
	f    File
	path string

	good     int64 // offset after the last acknowledged (synced) entry
	written  int64 // offset after the last attempted write
	lastSeq  uint64
	poisoned bool
	closed   bool
}

// Create creates a fresh, empty log at path (failing if it exists — log
// names are generation-stamped, never reused) and syncs its directory entry.
// wrap, when non-nil, intercepts the file handle — the fault-injection hook.
func Create(path string, wrap func(File) File) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: create sync: %w", err)
	}
	if err := syncDir(path); err != nil {
		f.Close()
		return nil, err
	}
	var h File = f
	if wrap != nil {
		h = wrap(f)
	}
	return &Log{f: h, path: path}, nil
}

// Open opens an existing log, replays its entries, truncates any torn tail,
// and positions the log for appends. It returns the replayed entries and
// the number of torn bytes discarded (0 for a cleanly closed log).
func Open(path string, wrap func(File) File) (*Log, []Entry, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("wal: open: %w", err)
	}
	entries, good, torn := Replay(data)
	tornBytes := int64(len(data)) - good
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("wal: open: %w", err)
	}
	if torn {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("wal: syncing truncated tail: %w", err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("wal: seek: %w", err)
	}
	var h File = f
	if wrap != nil {
		h = wrap(f)
	}
	l := &Log{f: h, path: path, good: good, written: good}
	if len(entries) > 0 {
		l.lastSeq = entries[len(entries)-1].Seq
	}
	return l, entries, tornBytes, nil
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// LastSeq returns the sequence number of the last acknowledged entry (0 if
// none).
func (l *Log) LastSeq() uint64 { return l.lastSeq }

// Size returns the acknowledged length of the log in bytes.
func (l *Log) Size() int64 { return l.good }

// Append encodes, writes, and syncs one entry. Sequence numbers must
// strictly increase. On any failure the log repairs itself by truncating
// back to the last acknowledged boundary and reports the entry as unacked.
func (l *Log) Append(e Entry) error {
	if l.closed {
		return errors.New("wal: append on closed log")
	}
	if l.poisoned {
		return ErrPoisoned
	}
	if e.Seq <= l.lastSeq {
		return fmt.Errorf("wal: append seq %d <= last %d", e.Seq, l.lastSeq)
	}
	enc, err := Encode(e)
	if err != nil {
		return err
	}
	n, err := l.f.Write(enc)
	l.written += int64(n)
	if err == nil && n < len(enc) {
		err = io.ErrShortWrite
	}
	if err != nil {
		return l.repair(fmt.Errorf("wal: append write: %w", err))
	}
	if err := l.f.Sync(); err != nil {
		return l.repair(fmt.Errorf("wal: append sync: %w", err))
	}
	l.good = l.written
	l.lastSeq = e.Seq
	return nil
}

// repair truncates the file back to the last acknowledged boundary after a
// failed append and rewinds the write offset to match (Truncate alone
// leaves the offset past the cut, which would punch a zero-filled hole
// under the next append). If either step fails the log is poisoned.
func (l *Log) repair(cause error) error {
	if err := l.f.Truncate(l.good); err != nil {
		l.poisoned = true
		return fmt.Errorf("%w (repair failed: %v): %w", ErrPoisoned, err, cause)
	}
	if _, err := l.f.Seek(l.good, io.SeekStart); err != nil {
		l.poisoned = true
		return fmt.Errorf("%w (repair seek failed: %v): %w", ErrPoisoned, err, cause)
	}
	l.written = l.good
	return cause
}

// Close closes the log cleanly. Every acknowledged entry is already synced,
// so Close has nothing left to flush.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}

// Crash simulates a process kill combined with power loss: unacknowledged
// bytes (which live in the page cache of a real system) are discarded by
// truncating to the acknowledged boundary, then the handle is closed without
// any further bookkeeping. Test and chaos-campaign hook.
func (l *Log) Crash() error {
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.f.Truncate(l.good)
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// CrashTorn simulates dying in the middle of appending e: the acknowledged
// prefix survives, followed by a seeded prefix of e's encoding — possibly
// with one bit flipped, as a physically torn sector would leave — and the
// handle is closed. Recovery must truncate the fragment and lose nothing
// acknowledged. Test and chaos-campaign hook.
func (l *Log) CrashTorn(e Entry, seed int64) error {
	if l.closed {
		return errors.New("wal: crash on closed log")
	}
	l.closed = true
	enc, err := Encode(e)
	if err != nil {
		l.f.Close()
		return err
	}
	if err := l.f.Truncate(l.good); err != nil {
		l.f.Close()
		return err
	}
	if _, err := l.f.Seek(l.good, io.SeekStart); err != nil {
		l.f.Close()
		return err
	}
	h := mix64(uint64(seed))
	// Always drop at least one byte so the fragment can never decode as a
	// complete, valid entry — a torn write is by definition incomplete.
	frag := int(h % uint64(len(enc)))
	torn := append([]byte(nil), enc[:frag]...)
	if frag > 0 && mix64(h)&1 == 1 {
		i := int(mix64(h^0x9e37) % uint64(frag))
		torn[i] ^= 1 << (mix64(h^0x79b9) % 8)
	}
	if _, werr := l.f.Write(torn); werr != nil && err == nil {
		err = werr
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir fsyncs the directory containing path so a freshly created or
// renamed file's directory entry is durable.
func syncDir(path string) error {
	dir := "."
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			dir = path[:i]
			if dir == "" {
				dir = "/"
			}
			break
		}
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

// mix64 is the SplitMix64 finalizer used for seeded crash fragments.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
