// Package wal is the durability substrate of the store's write path: a
// write-ahead log of curve-keyed mutations, the memtable they accumulate in
// before being flushed into immutable curve-ordered page runs, and the
// generation-stamped manifest that names the files a store instance is made
// of.
//
// The design is LSM-on-a-curve (internal/store wires it together):
//
//   - Every Put/Delete is encoded as one checksummed, sequence-numbered
//     Entry and appended to the log. An operation is acknowledged only
//     after the entry is synced; a failed append is repaired by truncating
//     the log back to the last acknowledged boundary, so the log on disk is
//     always a clean prefix of acknowledged entries (plus, after a crash, at
//     most one torn tail that recovery truncates).
//   - Acknowledged entries are applied to a Memtable keyed by curve index.
//     A flush freezes the memtable into an immutable run file and records
//     the cut in the manifest (FlushedSeq); replay skips entries at or below
//     the cut, which is what makes recovery idempotent — replaying the same
//     log twice, or crashing between the run write and the manifest write,
//     can never duplicate a record.
//   - The manifest is rewritten atomically (temp file + fsync + rename) with
//     a monotonically increasing generation; files not named by the current
//     manifest are orphans from an interrupted flush or compaction and are
//     deleted on open.
//
// Entries are pure data (curve key, coordinates, payload); the package
// depends only on the metrics and grid layers, so internal/store can build
// its durable store on top without an import cycle.
package wal

import (
	"errors"
	"fmt"

	"repro/internal/grid"
)

// Kind discriminates log entries.
type Kind uint8

const (
	// KindPut inserts one record.
	KindPut Kind = 1
	// KindDelete removes every stored record equal to (Point, Payload).
	KindDelete Kind = 2
)

// String renders the kind for logs and violations.
func (k Kind) String() string {
	switch k {
	case KindPut:
		return "put"
	case KindDelete:
		return "delete"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Entry is one logged mutation. Key is the record's curve index — stored
// explicitly so replay never needs the curve — and Point/Payload are the
// record content.
type Entry struct {
	Seq     uint64
	Kind    Kind
	Key     uint64
	Point   grid.Point
	Payload uint64
}

// Entry wire format, little-endian:
//
//	length   u32  — byte length of body
//	checksum u64  — FNV-1a/64 of body
//	body:
//	  seq u64 | kind u8 | d u8 | key u64 | d × coord u32 | payload u64
//
// The frame length is bounded by maxDims so that a corrupt length field is
// rejected immediately instead of swallowing the rest of the file.
const (
	frameHeaderSize = 4 + 8
	entryFixedSize  = 8 + 1 + 1 + 8 + 8
	// maxDims bounds Point length on the wire; the grid universe caps d·k
	// at 64 bits, so 64 dimensions is already unreachable in practice.
	maxDims      = 64
	maxEntrySize = entryFixedSize + 4*maxDims
)

// ErrTruncated reports a frame that ends past the end of the buffer: the
// clean torn-tail case a crash mid-append leaves behind. Recovery truncates
// the log at the frame boundary.
var ErrTruncated = errors.New("wal: truncated entry")

// ErrCorrupt reports a frame whose length, checksum, or body is malformed.
// Appends are strictly sequential, so corruption can only be the torn tail
// of a crashed append; recovery truncates there too, but counts it
// separately.
var ErrCorrupt = errors.New("wal: corrupt entry")

// EncodedSize returns the on-disk size of e's frame.
func EncodedSize(e Entry) int {
	return frameHeaderSize + entryFixedSize + 4*len(e.Point)
}

// Encode renders e as one framed, checksummed record.
func Encode(e Entry) ([]byte, error) {
	if len(e.Point) == 0 || len(e.Point) > maxDims {
		return nil, fmt.Errorf("wal: encode: %d dimensions outside [1, %d]", len(e.Point), maxDims)
	}
	if e.Kind != KindPut && e.Kind != KindDelete {
		return nil, fmt.Errorf("wal: encode: bad kind %d", e.Kind)
	}
	body := make([]byte, 0, entryFixedSize+4*len(e.Point))
	body = appendUint64(body, e.Seq)
	body = append(body, byte(e.Kind), byte(len(e.Point)))
	body = appendUint64(body, e.Key)
	for _, c := range e.Point {
		body = appendUint32(body, c)
	}
	body = appendUint64(body, e.Payload)
	out := make([]byte, 0, frameHeaderSize+len(body))
	out = appendUint32(out, uint32(len(body)))
	out = appendUint64(out, fnv64(body))
	out = append(out, body...)
	return out, nil
}

// Decode parses the first frame of b, returning the entry and the bytes
// consumed. An empty buffer consumes zero bytes with a nil error and a
// false ok — the clean end of a log. ErrTruncated and ErrCorrupt both mean
// "torn tail here": nothing after the returned offset is trustworthy.
func Decode(b []byte) (e Entry, n int, ok bool, err error) {
	if len(b) == 0 {
		return Entry{}, 0, false, nil
	}
	if len(b) < frameHeaderSize {
		return Entry{}, 0, false, ErrTruncated
	}
	bodyLen := int(readUint32(b))
	if bodyLen < entryFixedSize || bodyLen > maxEntrySize {
		return Entry{}, 0, false, fmt.Errorf("%w: frame length %d outside [%d, %d]", ErrCorrupt, bodyLen, entryFixedSize, maxEntrySize)
	}
	if len(b) < frameHeaderSize+bodyLen {
		return Entry{}, 0, false, ErrTruncated
	}
	sum := readUint64(b[4:])
	body := b[frameHeaderSize : frameHeaderSize+bodyLen]
	if fnv64(body) != sum {
		return Entry{}, 0, false, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	e.Seq = readUint64(body)
	e.Kind = Kind(body[8])
	d := int(body[9])
	if e.Kind != KindPut && e.Kind != KindDelete {
		return Entry{}, 0, false, fmt.Errorf("%w: bad kind %d", ErrCorrupt, body[8])
	}
	if d < 1 || d > maxDims || bodyLen != entryFixedSize+4*d {
		return Entry{}, 0, false, fmt.Errorf("%w: %d dims vs body length %d", ErrCorrupt, d, bodyLen)
	}
	e.Key = readUint64(body[10:])
	e.Point = make(grid.Point, d)
	for i := 0; i < d; i++ {
		e.Point[i] = readUint32(body[18+4*i:])
	}
	e.Payload = readUint64(body[18+4*d:])
	return e, frameHeaderSize + bodyLen, true, nil
}

// Replay decodes every complete frame of data in order. It returns the
// entries, the byte offset of the first unusable frame (== len(data) for a
// clean log), and whether the tail past that offset was torn (truncated or
// corrupt). A non-monotonic sequence number is treated as corruption: the
// log is append-only, so sequence numbers must strictly increase.
func Replay(data []byte) (entries []Entry, goodOffset int64, torn bool) {
	off := 0
	var lastSeq uint64
	for {
		e, n, ok, err := Decode(data[off:])
		if err != nil {
			return entries, int64(off), true
		}
		if !ok {
			return entries, int64(off), false
		}
		if len(entries) > 0 && e.Seq <= lastSeq {
			return entries, int64(off), true
		}
		lastSeq = e.Seq
		entries = append(entries, e)
		off += n
	}
}

func appendUint32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendUint64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func readUint32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func readUint64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// fnv64 is FNV-1a/64, the same checksum the store uses for pages: each step
// is a bijection in the running hash, so any single-bit difference is
// guaranteed to change the sum.
func fnv64(b []byte) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, c := range b {
		h = (h ^ uint64(c)) * prime
	}
	return h
}
