// Package metrics provides the lock-free instrumentation primitives behind
// the query-serving layer (internal/service): atomic counters, power-of-two
// bucketed histograms, and a registry that renders everything as an aligned
// text report or an expvar-style JSON document.
//
// The design goal is zero contention on the hot path: observing a value is
// one or two atomic adds, never a lock. Reads (Report, JSON, Snapshot) are
// approximate under concurrent writes — each field is loaded atomically but
// the set of loads is not a consistent cut — which is the standard contract
// for serving metrics.
package metrics

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing (or explicitly reset) atomic count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be negative, e.g. to correct an over-count).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset sets the counter to zero.
func (c *Counter) Reset() { c.v.Store(0) }

// numBuckets covers int64: bucket i counts values v with bits.Len64(v) == i,
// i.e. bucket 0 holds v = 0 and bucket i ≥ 1 holds v in [2^(i−1), 2^i).
const numBuckets = 64

// Histogram is a fixed power-of-two-bucket histogram of nonnegative int64
// observations (negative values clamp to zero). Bucket boundaries double,
// so quantile estimates carry at most a 2× resolution error — plenty for
// latency distributions — while Observe stays allocation- and lock-free.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile returns an upper bound on the q-quantile (q in [0, 1]): the
// upper edge of the first bucket at which the cumulative count reaches
// q·Count. The bound is within 2× of the true quantile by construction.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(n))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < numBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			if i == 0 {
				return 0
			}
			if i >= 63 {
				return h.max.Load() // 2^63−1 would overflow the edge arithmetic
			}
			hi := int64(1)<<uint(i) - 1 // upper edge of bucket i
			if m := h.max.Load(); m < hi {
				return m
			}
			return hi
		}
	}
	return h.max.Load()
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Registry is a named collection of counters and histograms. Lookups
// get-or-create under a mutex (cold path); the returned metric is then used
// lock-free. Names render in sorted order.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the counter with the given name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the histogram with the given name, creating it on first
// use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// names returns the sorted names of both metric kinds.
func (r *Registry) names() (counters, histograms []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name := range r.counters {
		counters = append(counters, name)
	}
	for name := range r.histograms {
		histograms = append(histograms, name)
	}
	sort.Strings(counters)
	sort.Strings(histograms)
	return counters, histograms
}

// Report renders every metric as aligned text: one `name value` line per
// counter, one `name count/mean/p50/p95/max` line per histogram.
func (r *Registry) Report() string {
	cs, hs := r.names()
	var b strings.Builder
	width := 0
	for _, name := range cs {
		if len(name) > width {
			width = len(name)
		}
	}
	for _, name := range hs {
		if len(name) > width {
			width = len(name)
		}
	}
	for _, name := range cs {
		fmt.Fprintf(&b, "%-*s %d\n", width, name, r.Counter(name).Value())
	}
	for _, name := range hs {
		h := r.Histogram(name)
		fmt.Fprintf(&b, "%-*s count=%d mean=%.1f p50<=%d p95<=%d max=%d\n",
			width, name, h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Max())
	}
	return b.String()
}

// JSON renders every metric as an expvar-style JSON object: counters as
// numbers, histograms as {count, sum, mean, p50, p95, p99, max} objects.
// Keys are emitted in one globally sorted order — counters and histograms
// interleaved by name, not grouped by kind — so the output is deterministic
// for a quiescent registry and byte-diffable across runs (BENCH_*.json
// baselines, the daemon's /metrics endpoint).
func (r *Registry) JSON() string {
	cs, hs := r.names()
	type item struct {
		name string
		hist bool
	}
	items := make([]item, 0, len(cs)+len(hs))
	for _, name := range cs {
		items = append(items, item{name: name})
	}
	for _, name := range hs {
		items = append(items, item{name: name, hist: true})
	}
	// names() returns each kind sorted; one global order needs the merged
	// list re-sorted. A name registered as both kinds (discouraged) renders
	// the counter first, deterministically.
	sort.Slice(items, func(i, j int) bool {
		if items[i].name != items[j].name {
			return items[i].name < items[j].name
		}
		return !items[i].hist && items[j].hist
	})
	var b strings.Builder
	b.WriteString("{")
	for i, it := range items {
		if i > 0 {
			b.WriteString(",")
		}
		if it.hist {
			h := r.Histogram(it.name)
			fmt.Fprintf(&b, "%q: {\"count\": %d, \"sum\": %d, \"mean\": %.3f, \"p50\": %d, \"p95\": %d, \"p99\": %d, \"max\": %d}",
				it.name, h.Count(), h.Sum(), h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max())
		} else {
			fmt.Fprintf(&b, "%q: %d", it.name, r.Counter(it.name).Value())
		}
	}
	b.WriteString("}")
	return b.String()
}

// Reset clears every registered metric (the metrics stay registered).
func (r *Registry) Reset() {
	cs, hs := r.names()
	for _, name := range cs {
		r.Counter(name).Reset()
	}
	for _, name := range hs {
		r.Histogram(name).Reset()
	}
}
