package metrics

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
	c.Reset()
	if got := c.Value(); got != 0 {
		t.Fatalf("after Reset Value = %d", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if h.Count() != 100 || h.Sum() != 5050 || h.Max() != 100 {
		t.Fatalf("count/sum/max = %d/%d/%d", h.Count(), h.Sum(), h.Max())
	}
	if m := h.Mean(); m != 50.5 {
		t.Fatalf("mean = %v", m)
	}
	// Power-of-two buckets bound every quantile q by the bucket edge above
	// the true quantile: true p50 is 50 → bucket [32,64) → bound 63.
	if q := h.Quantile(0.50); q < 50 || q > 63 {
		t.Fatalf("p50 bound = %d, want in [50, 63]", q)
	}
	// The top bucket's bound is clamped to the observed max.
	if q := h.Quantile(1); q != 100 {
		t.Fatalf("p100 = %d, want 100", q)
	}
	h.Observe(-7) // clamps to 0
	if q := h.Quantile(0.001); q != 0 {
		t.Fatalf("p0.1 after a zero observation = %d, want 0", q)
	}
}

func TestHistogramLargeValues(t *testing.T) {
	var h Histogram
	h.Observe(1 << 62)
	if q := h.Quantile(0.99); q != 1<<62 {
		t.Fatalf("quantile of single huge value = %d", q)
	}
}

func TestRegistryReportAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("cache.hits").Add(7)
	r.Counter("cache.misses").Add(3)
	r.Histogram("shard.0.latency_us").Observe(120)
	if c := r.Counter("cache.hits"); c.Value() != 7 {
		t.Fatal("Counter must return the same instance on re-lookup")
	}
	rep := r.Report()
	for _, want := range []string{"cache.hits", "cache.misses", "shard.0.latency_us", "count=1"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("Report missing %q:\n%s", want, rep)
		}
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(r.JSON()), &doc); err != nil {
		t.Fatalf("JSON dump is not valid JSON: %v\n%s", err, r.JSON())
	}
	if doc["cache.hits"].(float64) != 7 {
		t.Fatalf("JSON cache.hits = %v", doc["cache.hits"])
	}
	hist := doc["shard.0.latency_us"].(map[string]any)
	if hist["count"].(float64) != 1 || hist["sum"].(float64) != 120 {
		t.Fatalf("JSON histogram = %v", hist)
	}
	r.Reset()
	if r.Counter("cache.hits").Value() != 0 || r.Histogram("shard.0.latency_us").Count() != 0 {
		t.Fatal("Reset must clear all metrics")
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("n").Inc()
				r.Histogram("h").Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if r.Counter("n").Value() != 8000 || r.Histogram("h").Count() != 8000 {
		t.Fatalf("lost updates: n=%d h=%d", r.Counter("n").Value(), r.Histogram("h").Count())
	}
	if r.Histogram("h").Max() != 999 {
		t.Fatalf("max = %d", r.Histogram("h").Max())
	}
}

// TestJSONGlobalKeyOrder: JSON emits one globally sorted key order with
// counters and histograms interleaved by name — not counters first — so
// /metrics responses and committed BENCH_*.json files diff cleanly.
func TestJSONGlobalKeyOrder(t *testing.T) {
	r := NewRegistry()
	r.Histogram("alpha.latency_us").Observe(3)
	r.Counter("zulu.count").Inc()
	r.Counter("mike.count").Inc()
	r.Histogram("november.latency_us").Observe(7)
	out := r.JSON()
	var keys []string
	for _, name := range []string{"alpha.latency_us", "mike.count", "november.latency_us", "zulu.count"} {
		keys = append(keys, fmt.Sprintf("%q", name))
	}
	pos := -1
	for _, k := range keys {
		i := strings.Index(out, k)
		if i < 0 {
			t.Fatalf("key %s missing from JSON: %s", k, out)
		}
		if i < pos {
			t.Fatalf("key %s out of global sorted order in JSON: %s", k, out)
		}
		pos = i
	}
	if !json.Valid([]byte(out)) {
		t.Fatalf("invalid JSON: %s", out)
	}
	// Deterministic: a second render is byte-identical on a quiescent
	// registry.
	if again := r.JSON(); again != out {
		t.Fatalf("JSON not deterministic:\n%s\n%s", out, again)
	}
}
