package service

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/query"
	"repro/internal/store"
)

// Stream is an in-order incremental view of one sharded query: batches of
// records in global curve order, with the degraded tiling committed in a
// final trailer once every shard has finished. It is the streaming face of
// Range/Scan — Collect over a stream is bit-identical to the buffered
// call, which is exactly how Range and Scan are now implemented.
//
// One goroutine per intersected shard drives that shard's store cursor
// (each page read still runs on the service's bounded worker pool) and
// feeds a small bounded channel. Because shard segments are contiguous,
// disjoint, and ascending in curve order, draining the legs in shard order
// IS the k-way merge by curve key — the heap degenerates to ordered
// concatenation, while later shards keep scanning ahead into their
// buffers. Peak buffering per stream is a few batches per shard,
// independent of result size.
//
// A Stream is single-consumer and must be closed: Close cancels the shard
// legs, reclaims their workers, and joins the producer goroutines. Batches
// returned by Next alias recycled buffers and are valid only until the
// next Next call.
type Stream struct {
	s      *Service
	sctx   context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	chans    []chan streamMsg
	frees    []chan []store.Record
	terminal []bool // leg i's terminal message has been received

	cur     int            // leg currently being drained
	curBuf  []store.Record // batch handed out by the last Next
	curFree chan []store.Record

	jobs  int
	dark  []query.Interval
	pages int

	trailer Result
	eof     bool
	err     error
	closed  bool
}

// streamMsg is one message on a shard leg: either a batch of records
// (recs non-nil, in curve order, owned by the consumer until recycled to
// free) or the leg's terminal (done true: the shard finished with err, or
// cleanly with its dark spans and page count).
type streamMsg struct {
	recs  []store.Record
	free  chan []store.Record
	done  bool
	dark  []query.Interval
	pages int
	err   error
}

// streamChanCap bounds how many batches a shard leg may buffer ahead of
// the consumer; with the batch in flight and the one the consumer holds,
// a leg owns at most streamChanCap+2 batch buffers.
const streamChanCap = 2

// RangeStream answers the box query incrementally: batches of records in
// curve order while later curve intervals are still being scanned, then a
// trailer carrying the merged dark intervals, shard count, and page cost.
// The decomposition cache is shared with Range.
func (s *Service) RangeStream(ctx context.Context, b query.Box) (*Stream, error) {
	return s.openStream(ctx, s.cache.get(b))
}

// ScanStream is the streaming variant of Scan: the validated intervals are
// clipped to each shard's segment and streamed in global curve order.
func (s *Service) ScanStream(ctx context.Context, ivs []query.Interval) (*Stream, error) {
	if err := ValidateIntervals(ivs, s.c.Universe().N()); err != nil {
		return nil, fmt.Errorf("service: scan: %w", err)
	}
	return s.openStream(ctx, ivs)
}

// openStream is the scatter core shared by the streaming and buffered
// entry points.
func (s *Service) openStream(ctx context.Context, ivs []query.Interval) (*Stream, error) {
	type job struct {
		shard int
		ivs   []query.Interval
	}
	jobs := make([]job, 0, len(s.scanners))
	for j := range s.scanners {
		lo, hi := s.pt.Segment(j)
		if clipped := clipIntervals(ivs, lo, hi); len(clipped) > 0 {
			jobs = append(jobs, job{shard: j, ivs: clipped})
		}
	}
	s.qTotal.Inc()
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		s.qErrors.Inc()
		return nil, fmt.Errorf("service: range: %w", ErrShuttingDown)
	}
	sctx, cancel := context.WithCancel(ctx)
	st := &Stream{
		s:        s,
		sctx:     sctx,
		cancel:   cancel,
		chans:    make([]chan streamMsg, len(jobs)),
		frees:    make([]chan []store.Record, len(jobs)),
		terminal: make([]bool, len(jobs)),
		jobs:     len(jobs),
	}
	st.wg.Add(len(jobs))
	for pos, jb := range jobs {
		ch := make(chan streamMsg, streamChanCap)
		free := make(chan []store.Record, streamChanCap+2)
		st.chans[pos] = ch
		st.frees[pos] = free
		go s.streamShard(sctx, jb.shard, jb.ivs, ch, free, &st.wg)
	}
	return st, nil
}

// streamShard is one shard leg: it drives the shard's cursor — every
// cursor batch is a task on the bounded worker pool, so a stream holds a
// worker only while pages are actually being read, never while blocked on
// the consumer — and forwards record batches into ch. The terminal
// message (shard dark spans, page count, or the first error) is always
// delivered; Stream.Close drains the channel, so the blocking send cannot
// leak the goroutine.
func (s *Service) streamShard(ctx context.Context, shard int, ivs []query.Interval, ch chan streamMsg, free chan []store.Record, wg *sync.WaitGroup) {
	defer wg.Done()
	start := time.Now()
	var dark []query.Interval
	pages := 0
	finish := func(err error) {
		s.shardLat[shard].Observe(time.Since(start).Microseconds())
		ch <- streamMsg{done: true, dark: dark, pages: pages, err: err}
	}
	cur, err := s.scanners[shard].ScanCursor(ivs)
	if err != nil {
		finish(err)
		return
	}
	defer cur.Close()
	var (
		b    store.Batch
		nerr error
	)
	done := make(chan struct{}, 1)
	task := func() {
		b, nerr = cur.Next(ctx)
		done <- struct{}{}
	}
	for {
		if err := s.runTask(ctx, task, done); err != nil {
			finish(err)
			return
		}
		if nerr == io.EOF {
			finish(nil)
			return
		}
		if nerr != nil {
			finish(nerr)
			return
		}
		// The batch aliases cursor-owned buffers: copy the deltas we keep
		// and the records we forward before the next cursor call.
		dark = append(dark, b.Dark...)
		pages += b.PagesRead
		if len(b.Records) == 0 {
			continue
		}
		var buf []store.Record
		select {
		case buf = <-free:
		default:
		}
		buf = append(buf[:0], b.Records...)
		select {
		case ch <- streamMsg{recs: buf, free: free}:
		case <-ctx.Done():
			finish(ctx.Err())
			return
		}
	}
}

// runTask runs f on the worker pool and waits for it. The caller never
// occupies a worker while blocked sending downstream — backpressure parks
// the leg goroutine, not a pool slot — so streams cannot deadlock the
// pool however small it is.
func (s *Service) runTask(ctx context.Context, f func(), done chan struct{}) error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrShuttingDown
	}
	select {
	case s.tasks <- f:
		s.mu.RUnlock()
	case <-ctx.Done():
		s.mu.RUnlock()
		return ctx.Err()
	}
	<-done
	return nil
}

// Next returns the next batch of records in global curve order, or io.EOF
// once every shard has finished — the trailer is then available. The
// returned slice is valid only until the next Next or Close call. The
// first shard error (a canceled context included) ends the stream with
// that error, wrapped exactly like Range's.
func (st *Stream) Next() ([]store.Record, error) {
	if st.err != nil {
		return nil, st.err
	}
	if st.eof {
		return nil, io.EOF
	}
	if st.curBuf != nil {
		select {
		case st.curFree <- st.curBuf[:0]:
		default:
		}
		st.curBuf = nil
	}
	for st.cur < len(st.chans) {
		msg := <-st.chans[st.cur]
		if msg.done {
			st.terminal[st.cur] = true
			if msg.err != nil {
				st.err = fmt.Errorf("service: range: %w", msg.err)
				st.s.qErrors.Inc()
				st.cancel()
				return nil, st.err
			}
			st.dark = append(st.dark, msg.dark...)
			st.pages += msg.pages
			st.cur++
			continue
		}
		st.curBuf = msg.recs
		st.curFree = msg.free
		return msg.recs, nil
	}
	st.eof = true
	// Per-shard dark lists are sorted and confined to disjoint ascending
	// segments, so the concatenation is already sorted; MergeIntervals
	// coalesces abutting spans across a shard boundary.
	st.trailer = Result{
		ShardsQueried: st.jobs,
		Unavailable:   query.MergeIntervals(st.dark),
		PagesRead:     int64(st.pages),
	}
	st.s.pagesRead.Add(int64(st.pages))
	if !st.trailer.Complete() {
		st.s.qDegraded.Inc()
	}
	return nil, io.EOF
}

// Trailer returns the end-of-stream summary (dark intervals, shard count,
// page cost). It is valid only after Next has returned io.EOF.
func (st *Stream) Trailer() Result { return st.trailer }

// Collect drains the stream into the buffered Result shape. The records
// are copied out of the stream's recycled buffers.
func (st *Stream) Collect() (Result, error) {
	var recs []store.Record
	for {
		b, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Result{}, err
		}
		recs = append(recs, b...)
	}
	res := st.Trailer()
	res.Records = recs
	return res, nil
}

// Close cancels the shard legs, drains their channels, and joins the
// producer goroutines. It is idempotent and must be called exactly like a
// rows-style iterator's Close, whether or not the stream was drained.
func (st *Stream) Close() {
	if st.closed {
		return
	}
	st.closed = true
	st.cancel()
	for i := range st.chans {
		for !st.terminal[i] {
			msg := <-st.chans[i]
			st.terminal[i] = msg.done
		}
	}
	st.wg.Wait()
	st.curBuf = nil
}
