package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/query"
	"repro/internal/store"
)

// ErrReadOnly is returned (wrapped) by Put, Delete and Flush on a service
// built without WithDurableDir: an in-memory bulkloaded service has no write
// path.
var ErrReadOnly = errors.New("service: read-only (no durable directory)")

// shardScanner is the query surface both shard kinds share: the immutable
// bulkloaded *store.Store and the durable LSM *store.Durable satisfy it with
// the same curve-order and dark-interval contract, so the fan-out/merge in
// Range works unchanged over either.
type shardScanner interface {
	Scan(ctx context.Context, ivs []query.Interval, opts ...store.ScanOption) (store.ScanResult, error)
	ScanCursor(ivs []query.Interval, opts ...store.ScanOption) (store.BatchCursor, error)
}

// openDurableShards opens (or recovers) one *store.Durable per shard under
// dir/shard-<j>/ and seeds recs into them iff every shard is fresh — a
// directory that already holds data keeps it, and the seed records are
// ignored, which is what a daemon restarting over its data directory wants.
func (s *Service) openDurableShards(dir string, recs []store.Record, cfg *buildConfig) error {
	shards := len(s.scanners)
	s.durables = make([]*store.Durable, shards)
	fresh := true
	for j := 0; j < shards; j++ {
		sub := filepath.Join(dir, fmt.Sprintf("shard-%04d", j))
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return fmt.Errorf("service: shard %d: %w", j, err)
		}
		dOpts := []store.DurableOption{store.WithDurableMetrics(s.reg)}
		if cfg.pageSize != 0 {
			dOpts = append(dOpts, store.WithDurablePageSize(cfg.pageSize))
		}
		if cfg.durableOpts != nil {
			dOpts = append(dOpts, cfg.durableOpts(j)...)
		}
		d, err := store.OpenDurable(sub, s.c, dOpts...)
		if err != nil {
			for _, prev := range s.durables[:j] {
				prev.Close()
			}
			return fmt.Errorf("service: shard %d: %w", j, err)
		}
		s.durables[j] = d
		s.scanners[j] = d
		if d.Runs() != 0 || d.MemOps() != 0 || d.LastSeq() != 0 {
			fresh = false
		}
	}
	if !fresh || len(recs) == 0 {
		return nil
	}
	dealt := make([][]store.Record, shards)
	for _, r := range recs {
		j := s.pt.OwnerOfPosition(s.c.Index(r.Point))
		dealt[j] = append(dealt[j], r)
	}
	for j, d := range s.durables {
		if err := d.Bulkload(context.Background(), dealt[j]); err != nil {
			return fmt.Errorf("service: seeding shard %d: %w", j, err)
		}
	}
	return nil
}

// Durable returns shard j's durable store, or nil when the service is
// in-memory.
func (s *Service) Durable(j int) *store.Durable {
	if s.durables == nil {
		return nil
	}
	return s.durables[j]
}

// DurableMode reports whether the service was built with WithDurableDir.
func (s *Service) DurableMode() bool { return s.durables != nil }

// WriteOption tunes one Put or Delete call, mirroring the store's
// context-first Scan/ScanOption surface so HTTP, wire, and router callers
// share one API.
type WriteOption interface{ applyWrite(*writeConfig) }

type writeConfig struct {
	flush bool
}

type writeOptionFunc func(*writeConfig)

func (f writeOptionFunc) applyWrite(c *writeConfig) { f(c) }

// WriteFlush asks the call to flush the owning shard's memtable to an
// on-disk run after the write applies — the anti-entropy repair path uses
// it on its final write so a repaired node is durable before revival.
func WriteFlush() WriteOption {
	return writeOptionFunc(func(c *writeConfig) { c.flush = true })
}

// Put durably inserts r into the shard owning its curve position. The write
// is acknowledged only after it is synced to that shard's WAL.
func (s *Service) Put(ctx context.Context, r store.Record, opts ...WriteOption) error {
	return s.write(ctx, r, (*store.Durable).Put, opts)
}

// Delete durably removes every stored instance equal to r (same point, same
// payload) from the shard owning its curve position.
func (s *Service) Delete(ctx context.Context, r store.Record, opts ...WriteOption) error {
	return s.write(ctx, r, (*store.Durable).Delete, opts)
}

func (s *Service) write(ctx context.Context, r store.Record, op func(*store.Durable, context.Context, store.Record) error, opts []WriteOption) error {
	var cfg writeConfig
	for _, o := range opts {
		o.applyWrite(&cfg)
	}
	if s.durables == nil {
		return fmt.Errorf("service: write: %w", ErrReadOnly)
	}
	if u := s.c.Universe(); !u.Contains(r.Point) {
		return fmt.Errorf("service: write: point %v outside universe %v", r.Point, u)
	}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return fmt.Errorf("service: write: %w", ErrShuttingDown)
	}
	s.mu.RUnlock()
	j := s.pt.OwnerOfPosition(s.c.Index(r.Point))
	if err := op(s.durables[j], ctx, r); err != nil {
		return fmt.Errorf("service: shard %d: %w", j, err)
	}
	s.writes.Inc()
	if cfg.flush {
		if err := s.durables[j].Flush(ctx); err != nil {
			return fmt.Errorf("service: flushing shard %d: %w", j, err)
		}
	}
	return nil
}

// Flush persists every shard's memtable into an on-disk run.
func (s *Service) Flush(ctx context.Context) error {
	if s.durables == nil {
		return fmt.Errorf("service: flush: %w", ErrReadOnly)
	}
	for j, d := range s.durables {
		if err := d.Flush(ctx); err != nil {
			return fmt.Errorf("service: flushing shard %d: %w", j, err)
		}
	}
	return nil
}
