// Package service is the concurrent query-serving layer over the paged
// store: it shards a record set across P stores by contiguous curve-index
// segments (the cuts of internal/partition), routes each box query to
// exactly the shards whose segment intersects the query's curve
// decomposition, and runs the per-shard scans on a bounded worker pool.
//
// The decomposition — the expensive, curve-dependent part of a query — is
// computed once per distinct box and shared three ways: across the shards of
// one query (each shard scans a clipped view of the same interval list),
// across concurrent identical queries (singleflight coalescing), and across
// repeated queries (a size-bounded LRU). Everything is context-first:
// cancellation and deadlines are honored between page reads inside each
// shard, and a canceled query returns the context's error rather than a
// fabricated partial result.
//
// Because shard segments are contiguous and ascending in curve order and
// each shard returns records in curve order, concatenating per-shard
// results in shard order reproduces the single-store scan order exactly —
// the property test in service_test.go proves this, dark intervals
// included.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/curve"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/query"
	"repro/internal/store"
)

// ErrShuttingDown is returned (wrapped) by queries submitted after Close.
var ErrShuttingDown = errors.New("service: shutting down")

// Service serves box queries over a sharded store. Methods are safe for
// concurrent use; Close drains the worker pool.
type Service struct {
	c        curve.Curve
	pt       *partition.Partition
	scanners []shardScanner
	stores   []*store.Store   // per-shard bulkloaded stores; nil in durable mode
	durables []*store.Durable // per-shard durable stores; nil in in-memory mode
	cache    *decompCache
	reg      *metrics.Registry

	mu     sync.RWMutex // guards closed and the right to send on tasks
	closed bool
	tasks  chan func()
	wg     sync.WaitGroup

	qTotal    *metrics.Counter
	qDegraded *metrics.Counter
	qErrors   *metrics.Counter
	writes    *metrics.Counter
	pagesRead *metrics.Counter
	shardLat  []*metrics.Histogram
}

// Result is the outcome of one sharded query, mirroring store.ScanResult:
// the readable records in curve order plus the merged dark curve intervals
// from every shard.
type Result struct {
	// Records holds the readable records inside the box, in curve order —
	// identical to what a single unsharded store would return.
	Records []store.Record
	// Unavailable lists the curve intervals no shard could serve: sorted,
	// disjoint, merged across shards.
	Unavailable []query.Interval
	// ShardsQueried counts the shards whose segment intersected the
	// query's decomposition.
	ShardsQueried int
	// PagesRead counts distinct leaf pages touched across shards, dark
	// pages included — the per-query clustering cost.
	PagesRead int64
}

// Complete reports whether the whole query was served.
func (r Result) Complete() bool { return len(r.Unavailable) == 0 }

// New shards recs across the configured number of stores by uniform
// curve-index cuts and starts the worker pool. The input records are not
// retained. Configuration is by functional options mirroring the store's
// (WithShards, WithWorkers, WithCacheSize, WithPageSize, WithMetrics,
// WithShardStoreOptions); the legacy Config struct also satisfies Option,
// so pre-option call sites compile unchanged.
func New(c curve.Curve, recs []store.Record, opts ...Option) (*Service, error) {
	var cfg buildConfig
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt.apply(&cfg); err != nil {
			return nil, err
		}
	}
	shards := cfg.shards
	if shards == 0 {
		shards = 1
	}
	if shards < 1 {
		return nil, fmt.Errorf("service: %d shards", shards)
	}
	workers := cfg.workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		return nil, fmt.Errorf("service: %d workers", workers)
	}
	pt, err := partition.Uniform(c, shards)
	if err != nil {
		return nil, fmt.Errorf("service: partitioning: %w", err)
	}
	reg := cfg.registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Service{
		c:         c,
		pt:        pt,
		scanners:  make([]shardScanner, shards),
		reg:       reg,
		tasks:     make(chan func(), 2*workers),
		qTotal:    reg.Counter("queries.total"),
		qDegraded: reg.Counter("queries.degraded"),
		qErrors:   reg.Counter("queries.errors"),
		writes:    reg.Counter("writes.total"),
		pagesRead: reg.Counter("pages.leaf_read"),
		shardLat:  make([]*metrics.Histogram, shards),
	}
	for j := range s.shardLat {
		s.shardLat[j] = reg.Histogram(fmt.Sprintf("shard.%d.latency_us", j))
	}
	if cfg.durableDir != "" {
		if err := s.openDurableShards(cfg.durableDir, recs, &cfg); err != nil {
			return nil, err
		}
	} else {
		// Deal records to their owning shard; Bulkload sorts each shard's
		// deal by curve key, and the segments are ascending, so the
		// concatenation of shard contents is the globally sorted record set.
		dealt := make([][]store.Record, shards)
		for _, r := range recs {
			j := pt.OwnerOfPosition(c.Index(r.Point))
			dealt[j] = append(dealt[j], r)
		}
		s.stores = make([]*store.Store, shards)
		for j := range s.stores {
			sOpts := []store.Option{}
			if cfg.pageSize != 0 {
				sOpts = append(sOpts, store.WithPageSize(cfg.pageSize))
			}
			if cfg.shardOpts != nil {
				sOpts = append(sOpts, cfg.shardOpts(j)...)
			}
			st, err := store.Bulkload(c, dealt[j], sOpts...)
			if err != nil {
				return nil, fmt.Errorf("service: shard %d: %w", j, err)
			}
			s.stores[j] = st
			s.scanners[j] = st
		}
	}
	capacity := cfg.cacheSize
	switch {
	case capacity == 0:
		capacity = DefaultCacheSize
	case capacity < 0:
		capacity = 0
	}
	s.cache = newDecompCache(capacity, func(b query.Box) []query.Interval {
		return query.DecomposeBox(c, b)
	}, reg)
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for t := range s.tasks {
				t()
			}
		}()
	}
	return s, nil
}

// Curve returns the service's curve.
func (s *Service) Curve() curve.Curve { return s.c }

// Shards returns the shard count.
func (s *Service) Shards() int { return len(s.scanners) }

// Shard returns shard j's bulkloaded store, e.g. to inject device faults in
// tests, or nil when the service is durable (use Durable instead).
func (s *Service) Shard(j int) *store.Store {
	if s.stores == nil {
		return nil
	}
	return s.stores[j]
}

// Partition returns the curve-index partition that defines shard ownership.
func (s *Service) Partition() *partition.Partition { return s.pt }

// Metrics returns the service's metric registry.
func (s *Service) Metrics() *metrics.Registry { return s.reg }

// Range answers the box query, fanning out to every shard whose curve
// segment intersects the query's decomposition and merging the results in
// curve order. Pages that stay unreadable degrade the result (dark
// intervals in Result.Unavailable) rather than failing it; a canceled or
// expired context fails the query with the context's error.
func (s *Service) Range(ctx context.Context, b query.Box) (Result, error) {
	return s.scanIntervals(ctx, s.cache.get(b))
}

// Scan answers a raw interval scan: the given sorted, disjoint curve
// intervals are clipped to each shard's segment and scanned exactly like a
// decomposed box query. It is the in-process face of the daemon's /scan
// endpoint, which the cluster router uses to query a node for the clipped
// curve ranges it owns instead of re-decomposing the box on every node.
func (s *Service) Scan(ctx context.Context, ivs []query.Interval) (Result, error) {
	if err := ValidateIntervals(ivs, s.c.Universe().N()); err != nil {
		return Result{}, fmt.Errorf("service: scan: %w", err)
	}
	return s.scanIntervals(ctx, ivs)
}

// ValidateIntervals checks that ivs is a canonical scan argument: every
// interval non-empty, within [0, n), sorted ascending and disjoint. The
// scan path's degraded tiling guarantees are stated over exactly this form.
func ValidateIntervals(ivs []query.Interval, n uint64) error {
	if len(ivs) == 0 {
		return errors.New("no intervals")
	}
	prev := uint64(0)
	for i, iv := range ivs {
		if iv.Lo >= iv.Hi {
			return fmt.Errorf("interval %d [%d, %d) is empty or inverted", i, iv.Lo, iv.Hi)
		}
		if iv.Hi > n {
			return fmt.Errorf("interval %d [%d, %d) exceeds the index space [0, %d)", i, iv.Lo, iv.Hi, n)
		}
		if i > 0 && iv.Lo < prev {
			return fmt.Errorf("interval %d [%d, %d) overlaps or precedes its predecessor", i, iv.Lo, iv.Hi)
		}
		prev = iv.Hi
	}
	return nil
}

// scanIntervals is the shared core of Range and Scan: a Collect over the
// streaming pipeline, so the buffered and streaming entry points cannot
// diverge — the differential property test in stream_test.go pins the
// equivalence under fault injection.
func (s *Service) scanIntervals(ctx context.Context, ivs []query.Interval) (Result, error) {
	st, err := s.openStream(ctx, ivs)
	if err != nil {
		return Result{}, err
	}
	defer st.Close()
	return st.Collect()
}

// RangeBatch answers the boxes in order, reusing the decomposition cache
// across them, and stops at the first error (context cancellation or
// shutdown). Results align with the prefix of boxes served.
func (s *Service) RangeBatch(ctx context.Context, boxes []query.Box) ([]Result, error) {
	out := make([]Result, 0, len(boxes))
	for _, b := range boxes {
		r, err := s.Range(ctx, b)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// CacheLen returns the number of retained decompositions.
func (s *Service) CacheLen() int { return s.cache.len() }

// Close stops the worker pool and waits for in-flight shard scans to
// finish. Queries submitted after Close fail with ErrShuttingDown. Close is
// idempotent.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.tasks)
	s.mu.Unlock()
	s.wg.Wait()
	var err error
	for _, d := range s.durables {
		if cerr := d.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// clipIntervals restricts sorted disjoint intervals to the half-open
// segment [lo, hi).
func clipIntervals(ivs []query.Interval, lo, hi uint64) []query.Interval {
	var out []query.Interval
	for _, iv := range ivs {
		if iv.Lo >= hi {
			break // sorted: nothing further intersects
		}
		a, b := iv.Lo, iv.Hi
		if a < lo {
			a = lo
		}
		if b > hi {
			b = hi
		}
		if a < b {
			out = append(out, query.Interval{Lo: a, Hi: b})
		}
	}
	return out
}
