package service_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/query"
	"repro/internal/service"
	"repro/internal/store"
)

// TestDurableServiceEqualsInMemory is the durable-mode counterpart of the
// core sharding property: a durable service seeded with recs answers every
// box exactly like the in-memory bulkloaded service — same records, same
// curve order — across shard counts.
func TestDurableServiceEqualsInMemory(t *testing.T) {
	u := grid.MustNew(2, 5)
	c, err := curve.ByName("hilbert", u, 1)
	if err != nil {
		t.Fatal(err)
	}
	recs := randomRecords(u, 1500, 17)
	mem, err := service.New(c, recs, service.WithShards(4), service.WithPageSize(8))
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	for _, shards := range []int{1, 4} {
		dur, err := service.New(c, recs,
			service.WithShards(shards),
			service.WithPageSize(8),
			service.WithDurableDir(t.TempDir()))
		if err != nil {
			t.Fatal(err)
		}
		if !dur.DurableMode() || dur.Durable(0) == nil || dur.Shard(0) != nil {
			t.Fatalf("shards=%d: durable-mode accessors wrong", shards)
		}
		rng := rand.New(rand.NewSource(int64(shards)))
		for q := 0; q < 30; q++ {
			b := randomBox(u, rng)
			want, err := mem.Range(context.Background(), b)
			if err != nil {
				t.Fatal(err)
			}
			got, err := dur.Range(context.Background(), b)
			if err != nil {
				t.Fatalf("shards=%d: %v", shards, err)
			}
			if !reflect.DeepEqual(got.Records, want.Records) {
				t.Fatalf("shards=%d box %v: durable served %d records, in-memory %d, or order differs",
					shards, b, len(got.Records), len(want.Records))
			}
		}
		if err := dur.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDurableServiceWriteRouteAndRecovery drives the write path: puts and
// deletes route to the owning shard, survive Close, and a reopen over the
// same directory ignores the seed records and serves the recovered set.
func TestDurableServiceWriteRouteAndRecovery(t *testing.T) {
	u := grid.MustNew(2, 4)
	c, err := curve.ByName("z", u, 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ctx := context.Background()
	open := func(seed []store.Record) *service.Service {
		svc, err := service.New(c, seed,
			service.WithShards(3),
			service.WithDurableDir(dir),
			service.WithDurableShardOptions(func(int) []store.DurableOption {
				return []store.DurableOption{store.WithAutoCompact(false)}
			}))
		if err != nil {
			t.Fatal(err)
		}
		return svc
	}
	seed := randomRecords(u, 200, 5)
	svc := open(seed)

	// Writes spread across shards: walk the whole side so every segment of
	// the 3-way partition owns some of them.
	var extra []store.Record
	for i := 0; i < 48; i++ {
		r := store.Record{Point: grid.Point{uint32(i % 16), uint32(i / 16)}, Payload: 1000 + uint64(i)}
		if err := svc.Put(ctx, r); err != nil {
			t.Fatal(err)
		}
		extra = append(extra, r)
	}
	victim := seed[7]
	if err := svc.Delete(ctx, victim); err != nil {
		t.Fatal(err)
	}
	if err := svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got := svc.Metrics().Counter("wal.appends").Value(); got == 0 {
		t.Fatal("shared registry shows no wal.appends after 49 writes")
	}
	if got := svc.Metrics().Counter("writes.total").Value(); got != 49 {
		t.Fatalf("writes.total = %d, want 49", got)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a DIFFERENT seed: the directory is not fresh, so the seed
	// must be ignored and the recovered set served.
	svc2 := open(randomRecords(u, 10, 99))
	defer svc2.Close()
	lo, hi := u.NewPoint(), u.NewPoint()
	for d := range hi {
		hi[d] = u.Side() - 1
	}
	whole, err := query.NewBox(u, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc2.Range(ctx, whole)
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]int{}
	for _, r := range seed {
		if !samePoint(r.Point, victim.Point) || r.Payload != victim.Payload {
			want[r.Payload]++
		}
	}
	for _, r := range extra {
		want[r.Payload]++
	}
	got := map[uint64]int{}
	for _, r := range res.Records {
		got[r.Payload]++
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered service serves %d records, want %d — writes lost, duplicated, or seed re-applied",
			len(res.Records), len(seed)-1+len(extra))
	}
}

func samePoint(a, b grid.Point) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestInMemoryServiceIsReadOnly pins the error contract: Put, Delete and
// Flush on a service built without WithDurableDir fail with ErrReadOnly.
func TestInMemoryServiceIsReadOnly(t *testing.T) {
	u := grid.MustNew(2, 3)
	c, err := curve.ByName("z", u, 1)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(c, randomRecords(u, 20, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	r := store.Record{Point: grid.Point{1, 1}, Payload: 7}
	ctx := context.Background()
	for name, err := range map[string]error{
		"put":    svc.Put(ctx, r),
		"delete": svc.Delete(ctx, r),
		"flush":  svc.Flush(ctx),
	} {
		if !errors.Is(err, service.ErrReadOnly) {
			t.Fatalf("%s on in-memory service: got %v, want ErrReadOnly", name, err)
		}
	}
	if svc.DurableMode() || svc.Durable(0) != nil {
		t.Fatal("in-memory service claims durable mode")
	}
}
