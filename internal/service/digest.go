package service

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/query"
)

// ErrDigestUnavailable is returned (wrapped) by Digest when some requested
// interval could not be fully read: a digest over a partially dark range
// would compare unequal against a healthy replica for reasons that have
// nothing to do with divergence, so the comparison is refused outright.
var ErrDigestUnavailable = errors.New("service: digest over unavailable intervals")

// RangeDigest summarizes the records held in a set of curve intervals for
// anti-entropy comparison. Count and Sum are order-independent — two
// replicas holding the same multiset of records over a range produce the
// same (Count, Sum) regardless of memtable/run layout — so they are the
// fields peers compare. Generation is node-local write progress (the sum
// of the durable shards' last WAL sequence numbers) and is reported for
// observability only; it is never compared across nodes.
type RangeDigest struct {
	// Count is the number of records in the range.
	Count uint64
	// Sum is a commutative checksum over the records' (curve key, payload)
	// pairs.
	Sum uint64
	// Generation is the node's write progress when the digest was taken.
	Generation uint64
}

// Fold mixes one record into the digest. Folding is commutative and
// associative, so any scan order — or any partition of the range folded
// separately and summed — yields the same digest.
func (d *RangeDigest) Fold(key, payload uint64) {
	d.Count++
	d.Sum += mix64(key ^ mix64(payload))
}

// mix64 is the SplitMix64 finalizer: a cheap bijective scramble that makes
// the commutative sum sensitive to which (key, payload) pairs are present,
// not just to their XOR or count.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Digest scans ivs and folds every readable record into a RangeDigest. If
// any part of the range is dark the digest fails with a wrapped
// ErrDigestUnavailable — anti-entropy must not "repair" toward a replica
// that cannot currently see its own data.
func (s *Service) Digest(ctx context.Context, ivs []query.Interval) (RangeDigest, error) {
	res, err := s.Scan(ctx, ivs)
	if err != nil {
		return RangeDigest{}, fmt.Errorf("service: digest: %w", err)
	}
	if !res.Complete() {
		return RangeDigest{}, fmt.Errorf("service: digest: %d dark intervals: %w", len(res.Unavailable), ErrDigestUnavailable)
	}
	var d RangeDigest
	for i := range res.Records {
		d.Fold(s.c.Index(res.Records[i].Point), res.Records[i].Payload)
	}
	for _, dur := range s.durables {
		d.Generation += dur.LastSeq()
	}
	return d, nil
}
