package service

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/query"
)

func boxAt(u *grid.Universe, x uint32) query.Box {
	b, err := query.NewBox(u, u.MustPoint(x, 0), u.MustPoint(x, 0))
	if err != nil {
		panic(err)
	}
	return b
}

// TestCacheLRUEviction checks hit/miss accounting and that eviction is
// least-recently-used, with recency refreshed by hits.
func TestCacheLRUEviction(t *testing.T) {
	u := grid.MustNew(2, 3)
	var calls atomic.Int64
	reg := metrics.NewRegistry()
	dc := newDecompCache(2, func(b query.Box) []query.Interval {
		calls.Add(1)
		return []query.Interval{{Lo: uint64(b.Lo[0]), Hi: uint64(b.Lo[0]) + 1}}
	}, reg)

	a, b, c := boxAt(u, 0), boxAt(u, 1), boxAt(u, 2)
	dc.get(a) // miss
	dc.get(b) // miss
	dc.get(a) // hit, refreshes a's recency
	dc.get(c) // miss → evicts b (LRU), not a
	if calls.Load() != 3 {
		t.Fatalf("decompose calls = %d, want 3", calls.Load())
	}
	dc.get(a) // must still be cached
	if calls.Load() != 3 {
		t.Fatal("a was evicted although b was least recently used")
	}
	dc.get(b) // must have been evicted
	if calls.Load() != 4 {
		t.Fatal("b survived eviction in a cache of capacity 2")
	}
	if got := dc.len(); got != 2 {
		t.Fatalf("cache len = %d, want 2", got)
	}
	if hits := reg.Counter("cache.hits").Value(); hits != 2 {
		t.Fatalf("cache.hits = %d, want 2", hits)
	}
	if misses := reg.Counter("cache.misses").Value(); misses != 4 {
		t.Fatalf("cache.misses = %d, want 4", misses)
	}
	if ev := reg.Counter("cache.evictions").Value(); ev != 2 {
		t.Fatalf("cache.evictions = %d, want 2", ev)
	}
	// Cached and recomputed decompositions agree.
	iv := dc.get(a)
	if len(iv) != 1 || iv[0].Lo != 0 {
		t.Fatalf("cached decomposition corrupted: %v", iv)
	}
}

// TestCacheDisabled: capacity 0 retains nothing but still answers
// correctly.
func TestCacheDisabled(t *testing.T) {
	u := grid.MustNew(2, 3)
	var calls atomic.Int64
	dc := newDecompCache(0, func(b query.Box) []query.Interval {
		calls.Add(1)
		return nil
	}, metrics.NewRegistry())
	a := boxAt(u, 1)
	dc.get(a)
	dc.get(a)
	if calls.Load() != 2 {
		t.Fatalf("disabled cache computed %d times, want 2", calls.Load())
	}
	if dc.len() != 0 {
		t.Fatal("disabled cache retained an entry")
	}
}

// TestCacheSingleflight: concurrent identical requests share one
// computation — one leader computes, the rest block and reuse its result.
func TestCacheSingleflight(t *testing.T) {
	u := grid.MustNew(2, 3)
	var calls atomic.Int64
	enter := make(chan struct{})
	release := make(chan struct{})
	reg := metrics.NewRegistry()
	dc := newDecompCache(4, func(b query.Box) []query.Interval {
		calls.Add(1)
		close(enter) // signal: leader is inside decompose
		<-release    // hold the flight open while waiters pile up
		return []query.Interval{{Lo: 7, Hi: 9}}
	}, reg)

	a := boxAt(u, 2)
	const waiters = 5
	var wg sync.WaitGroup
	results := make([][]query.Interval, waiters+1)
	wg.Add(1)
	go func() { defer wg.Done(); results[0] = dc.get(a) }()
	<-enter // leader is committed; everyone else must coalesce
	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); results[i] = dc.get(a) }(i)
	}
	// Wait until every follower is registered as shared before releasing.
	for reg.Counter("coalesce.shared").Value() < waiters {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("decompose ran %d times for %d concurrent callers", calls.Load(), waiters+1)
	}
	for i, r := range results {
		if len(r) != 1 || r[0] != (query.Interval{Lo: 7, Hi: 9}) {
			t.Fatalf("caller %d got %v", i, r)
		}
	}
	if l := reg.Counter("coalesce.leader").Value(); l != 1 {
		t.Fatalf("coalesce.leader = %d", l)
	}
	if s := reg.Counter("coalesce.shared").Value(); s != waiters {
		t.Fatalf("coalesce.shared = %d, want %d", s, waiters)
	}
	// The completed flight is now cached: one more get is a pure hit.
	dc.get(a)
	if h := reg.Counter("cache.hits").Value(); h != 1 {
		t.Fatalf("cache.hits after flight = %d, want 1", h)
	}
}
