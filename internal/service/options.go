package service

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/store"
)

// buildConfig is the resolved New configuration after every Option has been
// applied.
type buildConfig struct {
	shards      int
	workers     int
	cacheSize   int
	pageSize    int
	registry    *metrics.Registry
	shardOpts   func(j int) []store.Option
	durableDir  string
	durableOpts func(j int) []store.DurableOption
}

// Option configures New, mirroring the store's Bulkload options. Options
// are applied in order; later options override earlier ones. The legacy
// Config struct satisfies Option, so old New(c, recs, cfg) call sites
// compile unchanged.
type Option interface {
	apply(*buildConfig) error
}

// optionFunc adapts a function to the Option interface.
type optionFunc func(*buildConfig) error

func (f optionFunc) apply(b *buildConfig) error { return f(b) }

// WithShards sets the number of store shards (default 1).
func WithShards(n int) Option {
	return optionFunc(func(b *buildConfig) error {
		if n < 1 {
			return fmt.Errorf("service: %d shards", n)
		}
		b.shards = n
		return nil
	})
}

// WithWorkers bounds the pool executing per-shard scans (default
// GOMAXPROCS).
func WithWorkers(n int) Option {
	return optionFunc(func(b *buildConfig) error {
		if n < 1 {
			return fmt.Errorf("service: %d workers", n)
		}
		b.workers = n
		return nil
	})
}

// WithCacheSize sets the decomposition cache capacity in entries: 0 means
// DefaultCacheSize, negative disables retention (coalescing of concurrent
// identical decompositions is kept).
func WithCacheSize(n int) Option {
	return optionFunc(func(b *buildConfig) error {
		b.cacheSize = n
		return nil
	})
}

// WithPageSize sets the leaf page size of every shard store (default: the
// store default).
func WithPageSize(n int) Option {
	return optionFunc(func(b *buildConfig) error {
		if n < 2 {
			return fmt.Errorf("service: page size %d too small", n)
		}
		b.pageSize = n
		return nil
	})
}

// WithMetrics routes the service metrics into reg — e.g. the registry a
// network daemon already exposes on /metrics — instead of a private one.
func WithMetrics(reg *metrics.Registry) Option {
	return optionFunc(func(b *buildConfig) error {
		if reg == nil {
			return fmt.Errorf("service: WithMetrics(nil)")
		}
		b.registry = reg
		return nil
	})
}

// WithShardStoreOptions supplies extra bulkload options for shard j — the
// hook fault-injection tests use to wrap each shard's device. It applies
// only to in-memory services; durable shards take WithDurableShardOptions.
func WithShardStoreOptions(f func(j int) []store.Option) Option {
	return optionFunc(func(b *buildConfig) error {
		if f == nil {
			return fmt.Errorf("service: WithShardStoreOptions(nil)")
		}
		b.shardOpts = f
		return nil
	})
}

// WithDurableDir switches the service to durable shards: each shard is a
// write-ahead-logged *store.Durable living under dir/shard-<j>/, recovered
// on open, and the service gains the Put/Delete/Flush write path. The seed
// records passed to New are bulkloaded only when every shard directory is
// fresh; a directory that already holds data keeps it and the seed is
// ignored — restarting a daemon over its data directory serves the
// recovered data, not a reload.
func WithDurableDir(dir string) Option {
	return optionFunc(func(b *buildConfig) error {
		if dir == "" {
			return fmt.Errorf("service: WithDurableDir(\"\")")
		}
		b.durableDir = dir
		return nil
	})
}

// WithDurableShardOptions supplies extra open options for durable shard j —
// the hook fault-injection tests use to wrap each shard's WAL or run
// devices. It applies only together with WithDurableDir.
func WithDurableShardOptions(f func(j int) []store.DurableOption) Option {
	return optionFunc(func(b *buildConfig) error {
		if f == nil {
			return fmt.Errorf("service: WithDurableShardOptions(nil)")
		}
		b.durableOpts = f
		return nil
	})
}

// Config parameterizes New. The zero value is usable: one shard, one worker
// per CPU, the default cache size and page size. It satisfies Option so
// that the pre-functional-options New signature keeps compiling; zero
// fields leave the defaults in place.
//
// Deprecated: pass WithShards / WithWorkers / WithCacheSize / WithPageSize
// / WithMetrics / WithShardStoreOptions instead.
type Config struct {
	// Shards is the number of store shards; 0 means 1.
	Shards int
	// Workers bounds the pool executing per-shard scans; 0 means
	// GOMAXPROCS.
	Workers int
	// CacheSize is the decomposition cache capacity in entries: 0 means
	// DefaultCacheSize, negative disables retention (coalescing of
	// concurrent identical decompositions is kept).
	CacheSize int
	// PageSize is the leaf page size of every shard store; 0 means the
	// store default.
	PageSize int
	// Registry receives the service metrics; nil means a private registry
	// (readable through Metrics).
	Registry *metrics.Registry
	// ShardOptions, when non-nil, supplies extra bulkload options for shard
	// j — the hook fault-injection tests use to wrap each shard's device.
	ShardOptions func(j int) []store.Option
}

func (cfg Config) apply(b *buildConfig) error {
	if cfg.Shards != 0 {
		b.shards = cfg.Shards
	}
	if cfg.Workers != 0 {
		b.workers = cfg.Workers
	}
	if cfg.CacheSize != 0 {
		b.cacheSize = cfg.CacheSize
	}
	if cfg.PageSize != 0 {
		b.pageSize = cfg.PageSize
	}
	if cfg.Registry != nil {
		b.registry = cfg.Registry
	}
	if cfg.ShardOptions != nil {
		b.shardOpts = cfg.ShardOptions
	}
	return nil
}
