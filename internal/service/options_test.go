package service_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/service"
	"repro/internal/store"
)

func optionTestData(t *testing.T) (curve.Curve, []store.Record, []query.Box) {
	t.Helper()
	u := grid.MustNew(2, 5)
	c := curve.NewHilbert(u)
	rng := rand.New(rand.NewSource(5))
	recs := make([]store.Record, 3000)
	for i := range recs {
		recs[i] = store.Record{
			Point:   u.MustPoint(rng.Uint32()%u.Side(), rng.Uint32()%u.Side()),
			Payload: uint64(i),
		}
	}
	boxes := make([]query.Box, 8)
	for i := range boxes {
		lo := u.MustPoint(rng.Uint32()%24, rng.Uint32()%24)
		hi := u.MustPoint(lo[0]+uint32(rng.Intn(8)), lo[1]+uint32(rng.Intn(8)))
		b, err := query.NewBox(u, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		boxes[i] = b
	}
	return c, recs, boxes
}

// TestOptionsEquivalentToConfig: a service built with functional options
// answers queries identically to one built with the legacy Config literal,
// and both forms keep compiling against the same New.
func TestOptionsEquivalentToConfig(t *testing.T) {
	c, recs, boxes := optionTestData(t)
	reg := metrics.NewRegistry()
	viaOpts, err := service.New(c, recs,
		service.WithShards(4),
		service.WithWorkers(2),
		service.WithCacheSize(16),
		service.WithPageSize(8),
		service.WithMetrics(reg),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer viaOpts.Close()
	viaConfig, err := service.New(c, recs, service.Config{
		Shards: 4, Workers: 2, CacheSize: 16, PageSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer viaConfig.Close()

	if viaOpts.Shards() != 4 || viaConfig.Shards() != 4 {
		t.Fatalf("shards: opts %d, config %d, want 4", viaOpts.Shards(), viaConfig.Shards())
	}
	if viaOpts.Metrics() != reg {
		t.Fatal("WithMetrics registry not adopted")
	}
	ctx := context.Background()
	for _, b := range boxes {
		ro, err := viaOpts.Range(ctx, b)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := viaConfig.Range(ctx, b)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ro.Records, rc.Records) {
			t.Fatal("option-built and config-built services disagree")
		}
	}
	if reg.Counter("queries.total").Value() != int64(len(boxes)) {
		t.Fatalf("metrics not routed into supplied registry: queries.total = %d",
			reg.Counter("queries.total").Value())
	}
}

// TestOptionsValidate: out-of-range options fail New instead of silently
// clamping, and a later option overrides an earlier one (Config included).
func TestOptionsValidate(t *testing.T) {
	c, recs, _ := optionTestData(t)
	for _, tc := range []struct {
		name string
		opt  service.Option
	}{
		{"shards", service.WithShards(0)},
		{"workers", service.WithWorkers(-1)},
		{"pagesize", service.WithPageSize(1)},
		{"metrics", service.WithMetrics(nil)},
		{"shardopts", service.WithShardStoreOptions(nil)},
	} {
		if _, err := service.New(c, recs, tc.opt); err == nil {
			t.Errorf("%s: invalid option accepted", tc.name)
		}
	}
	// Later options win: Config sets 2 shards, WithShards overrides to 3.
	svc, err := service.New(c, recs, service.Config{Shards: 2}, service.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.Shards() != 3 {
		t.Fatalf("override: %d shards, want 3", svc.Shards())
	}
}
