package service_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/query"
	"repro/internal/service"
)

// BenchmarkServiceRange measures sharded query throughput across shard
// counts on a zipf-skewed box workload (the same shape cmd/sfcserve
// replays), with the decomposition cache on and off. The CI smoke step
// runs this at -benchtime 1x just to prove it still executes.
func BenchmarkServiceRange(b *testing.B) {
	u := grid.MustNew(2, 6)
	c := curve.NewHilbert(u)
	recs := randomRecords(u, 20_000, 42)
	rng := rand.New(rand.NewSource(99))
	boxes := make([]query.Box, 256)
	for i := range boxes {
		boxes[i] = randomBox(u, rng)
	}
	for _, shards := range []int{1, 4, 8} {
		for _, cache := range []int{-1, 1024} {
			name := fmt.Sprintf("shards=%d/cache=%d", shards, cache)
			b.Run(name, func(b *testing.B) {
				svc, err := service.New(c, recs, service.Config{
					Shards: shards, CacheSize: cache, PageSize: 64,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer svc.Close()
				ctx := context.Background()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					local := rand.New(rand.NewSource(7))
					lz := rand.NewZipf(local, 1.2, 1, 255)
					for pb.Next() {
						if _, err := svc.Range(ctx, boxes[lz.Uint64()]); err != nil {
							b.Fatal(err)
						}
					}
				})
			})
		}
	}
}

// BenchmarkServiceDecomposeCache isolates the cache: repeated queries for
// one hot box, so the decomposition cost is paid once and every further
// query is a pure cache hit plus shard scans.
func BenchmarkServiceDecomposeCache(b *testing.B) {
	u := grid.MustNew(2, 6)
	c := curve.NewHilbert(u)
	svc, err := service.New(c, randomRecords(u, 20_000, 42), service.Config{Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	box, err := query.NewBox(u, u.MustPoint(10, 10), u.MustPoint(30, 30))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Range(ctx, box); err != nil {
			b.Fatal(err)
		}
	}
}
