package service

import (
	"container/list"
	"strconv"
	"strings"

	"sync"

	"repro/internal/metrics"
	"repro/internal/query"
)

// DefaultCacheSize is the decomposition cache capacity used when
// Config.CacheSize is zero. Decompositions are small (a few dozen intervals
// for realistic boxes), so a thousand entries is cheap and covers the hot
// set of a skewed workload.
const DefaultCacheSize = 1024

// decompCache memoizes box → curve-interval decompositions behind the
// service. It combines two mechanisms:
//
//   - an LRU of up to cap completed decompositions, keyed by the exact box
//     corners (the curve is fixed per service, so it does not key);
//   - singleflight coalescing of identical in-flight decompositions: when
//     several queries ask for the same uncached box at once, one goroutine
//     (the leader) computes it and the rest wait on its result.
//
// cap = 0 disables the LRU but keeps coalescing — concurrent duplicates
// still share one computation, completed results are just not retained.
type decompCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List               // front = most recently used
	byKey     map[string]*list.Element // key → LRU entry
	inflight  map[string]*flight
	decompose func(query.Box) []query.Interval

	hits      *metrics.Counter
	misses    *metrics.Counter
	evictions *metrics.Counter
	leader    *metrics.Counter
	shared    *metrics.Counter
}

// entry is one cached decomposition.
type entry struct {
	key string
	ivs []query.Interval
}

// flight is one in-progress decomposition; waiters block on done and then
// read ivs, which the leader writes exactly once before closing done.
type flight struct {
	done chan struct{}
	ivs  []query.Interval
}

// newDecompCache builds a cache of the given capacity (0 disables retention)
// around the given decomposition function, reporting into reg.
func newDecompCache(capacity int, decompose func(query.Box) []query.Interval, reg *metrics.Registry) *decompCache {
	return &decompCache{
		cap:       capacity,
		ll:        list.New(),
		byKey:     map[string]*list.Element{},
		inflight:  map[string]*flight{},
		decompose: decompose,
		hits:      reg.Counter("cache.hits"),
		misses:    reg.Counter("cache.misses"),
		evictions: reg.Counter("cache.evictions"),
		leader:    reg.Counter("coalesce.leader"),
		shared:    reg.Counter("coalesce.shared"),
	}
}

// cacheKey renders the box corners as the cache key. The service's curve is
// fixed, so the corners identify the decomposition completely.
func cacheKey(b query.Box) string {
	var sb strings.Builder
	sb.Grow(8 * (len(b.Lo) + len(b.Hi)))
	for _, v := range b.Lo {
		sb.WriteString(strconv.FormatUint(uint64(v), 10))
		sb.WriteByte(',')
	}
	sb.WriteByte('|')
	for _, v := range b.Hi {
		sb.WriteString(strconv.FormatUint(uint64(v), 10))
		sb.WriteByte(',')
	}
	return sb.String()
}

// get returns the decomposition of b, from cache if possible. The returned
// slice is shared between callers and must be treated as immutable.
func (dc *decompCache) get(b query.Box) []query.Interval {
	key := cacheKey(b)
	dc.mu.Lock()
	if el, ok := dc.byKey[key]; ok {
		dc.ll.MoveToFront(el)
		dc.mu.Unlock()
		dc.hits.Inc()
		return el.Value.(*entry).ivs
	}
	if fl, ok := dc.inflight[key]; ok {
		dc.mu.Unlock()
		dc.shared.Inc()
		<-fl.done
		return fl.ivs
	}
	fl := &flight{done: make(chan struct{})}
	dc.inflight[key] = fl
	dc.mu.Unlock()
	dc.misses.Inc()
	dc.leader.Inc()

	fl.ivs = dc.decompose(b)

	dc.mu.Lock()
	delete(dc.inflight, key)
	if dc.cap > 0 {
		if el, ok := dc.byKey[key]; ok {
			// A racing leader for the same key already cached it (possible
			// only if the entry was evicted and recomputed concurrently);
			// just refresh recency.
			dc.ll.MoveToFront(el)
		} else {
			dc.byKey[key] = dc.ll.PushFront(&entry{key: key, ivs: fl.ivs})
			for dc.ll.Len() > dc.cap {
				back := dc.ll.Back()
				dc.ll.Remove(back)
				delete(dc.byKey, back.Value.(*entry).key)
				dc.evictions.Inc()
			}
		}
	}
	dc.mu.Unlock()
	close(fl.done)
	return fl.ivs
}

// len returns the number of retained entries (not counting in-flight work).
func (dc *decompCache) len() int {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	return dc.ll.Len()
}
