package service_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/curve"
	"repro/internal/faultio"
	"repro/internal/grid"
	"repro/internal/query"
	"repro/internal/service"
	"repro/internal/store"
)

func randomRecords(u *grid.Universe, n int, seed int64) []store.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]store.Record, n)
	for i := range recs {
		p := u.NewPoint()
		for d := range p {
			p[d] = rng.Uint32() % u.Side()
		}
		recs[i] = store.Record{Point: p, Payload: uint64(i)}
	}
	return recs
}

func randomBox(u *grid.Universe, rng *rand.Rand) query.Box {
	lo, hi := u.NewPoint(), u.NewPoint()
	for d := range lo {
		a, b := rng.Uint32()%u.Side(), rng.Uint32()%u.Side()
		if a > b {
			a, b = b, a
		}
		lo[d], hi[d] = a, b
	}
	b, err := query.NewBox(u, lo, hi)
	if err != nil {
		panic(err)
	}
	return b
}

// TestShardedEqualsSingleStore is the core service property: for every
// curve and shard count, Range over the sharded service returns exactly the
// records — in exactly the order — a single unsharded store returns.
func TestShardedEqualsSingleStore(t *testing.T) {
	u := grid.MustNew(2, 5)
	recs := randomRecords(u, 2000, 11)
	for _, name := range []string{"hilbert", "z", "snake"} {
		c, err := curve.ByName(name, u, 1)
		if err != nil {
			t.Fatal(err)
		}
		single, err := store.Bulkload(c, recs, store.WithPageSize(8))
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 3, 8} {
			svc, err := service.New(c, recs, service.Config{
				Shards: shards, Workers: 4, PageSize: 8,
			})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(shards)))
			for q := 0; q < 40; q++ {
				b := randomBox(u, rng)
				want, err := single.RangeQuery(b)
				if err != nil {
					t.Fatal(err)
				}
				got, err := svc.Range(context.Background(), b)
				if err != nil {
					t.Fatalf("%s shards=%d: %v", name, shards, err)
				}
				if !got.Complete() {
					t.Fatalf("%s shards=%d: dark intervals with a fault-free device: %v",
						name, shards, got.Unavailable)
				}
				if len(want) == 0 && len(got.Records) == 0 {
					continue
				}
				if !reflect.DeepEqual(got.Records, want) {
					t.Fatalf("%s shards=%d query %d: sharded result diverges (%d vs %d records)",
						name, shards, q, len(got.Records), len(want))
				}
			}
			if err := svc.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestDegradedTiling injects lost pages into every shard and checks the
// exact-tiling contract of the merged degraded result: a record of the
// fault-free reference answer is returned iff its curve key lies outside
// every dark interval, and the dark intervals stay sorted, disjoint, and
// inside the query's curve footprint.
func TestDegradedTiling(t *testing.T) {
	u := grid.MustNew(2, 5)
	c := curve.NewHilbert(u)
	recs := randomRecords(u, 2500, 23)
	reference, err := store.Bulkload(c, recs, store.WithPageSize(8))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(c, recs, service.Config{
		Shards: 4, Workers: 4, PageSize: 8,
		ShardOptions: func(j int) []store.Option {
			return []store.Option{store.WithDeviceWrapper(func(dev store.PageDevice) (store.PageDevice, error) {
				// Deterministically kill every 4th page of shard j, offset
				// by j so each shard darkens a different stripe.
				var lost []int
				for p := j % 4; p < dev.NumPages(); p += 4 {
					lost = append(lost, p)
				}
				return faultio.Wrap(dev, faultio.Config{Seed: int64(100 + j), LostPages: lost})
			})}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	rng := rand.New(rand.NewSource(5))
	sawDark := false
	for q := 0; q < 60; q++ {
		b := randomBox(u, rng)
		want, err := reference.RangeQuery(b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := svc.Range(context.Background(), b)
		if err != nil {
			t.Fatal(err)
		}
		dark := got.Unavailable
		if len(dark) > 0 {
			sawDark = true
		}
		// Dark intervals: sorted, disjoint, inside the box footprint.
		foot := query.DecomposeBox(c, b)
		for i, iv := range dark {
			if iv.Lo >= iv.Hi {
				t.Fatalf("query %d: empty dark interval %v", q, iv)
			}
			if i > 0 && dark[i-1].Hi >= iv.Lo {
				t.Fatalf("query %d: dark intervals overlap or touch unmerged: %v, %v", q, dark[i-1], iv)
			}
			for k := iv.Lo; k < iv.Hi; k++ {
				if !query.IntervalsContain(foot, k) {
					t.Fatalf("query %d: dark key %d outside the box footprint", q, k)
				}
			}
		}
		// Exact tiling: reference records filtered by the dark set must
		// reproduce the degraded answer, order included.
		var filtered []store.Record
		for _, r := range want {
			if !query.IntervalsContain(dark, c.Index(r.Point)) {
				filtered = append(filtered, r)
			}
		}
		if len(filtered) != len(got.Records) || !reflect.DeepEqual(filtered, got.Records) {
			t.Fatalf("query %d: degraded result does not tile: %d served vs %d expected",
				q, len(got.Records), len(filtered))
		}
	}
	if !sawDark {
		t.Fatal("fault schedule never darkened a query; test is vacuous")
	}
	reg := svc.Metrics()
	if reg.Counter("queries.degraded").Value() == 0 {
		t.Fatal("queries.degraded never incremented")
	}
	if reg.Counter("pages.leaf_read").Value() == 0 {
		t.Fatal("pages.leaf_read never incremented")
	}
}

// TestRouting checks that a small box only fans out to the shards whose
// curve segment intersects its decomposition.
func TestRouting(t *testing.T) {
	u := grid.MustNew(2, 5)
	c := curve.NewHilbert(u)
	svc, err := service.New(c, randomRecords(u, 1000, 3), service.Config{Shards: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	// A single-cell box decomposes to one unit interval, owned by one shard.
	b, err := query.NewBox(u, u.MustPoint(3, 4), u.MustPoint(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.Range(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsQueried != 1 {
		t.Fatalf("unit box fanned out to %d shards", res.ShardsQueried)
	}
	// The full box touches every nonempty shard.
	full, err := query.NewBox(u, u.NewPoint(), u.MustPoint(u.Side()-1, u.Side()-1))
	if err != nil {
		t.Fatal(err)
	}
	res, err = svc.Range(context.Background(), full)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsQueried != svc.Shards() {
		t.Fatalf("full box fanned out to %d of %d shards", res.ShardsQueried, svc.Shards())
	}
}

// TestCloseSemantics: Close is idempotent, and queries after Close fail
// with the ErrShuttingDown sentinel (matched via errors.Is, not strings).
func TestCloseSemantics(t *testing.T) {
	u := grid.MustNew(2, 4)
	c := curve.NewZ(u)
	svc, err := service.New(c, randomRecords(u, 200, 9), service.Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := query.NewBox(u, u.NewPoint(), u.MustPoint(u.Side()-1, u.Side()-1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Range(context.Background(), b); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := svc.Range(context.Background(), b); !errors.Is(err, service.ErrShuttingDown) {
		t.Fatalf("Range after Close: err = %v, want ErrShuttingDown", err)
	}
	reg := svc.Metrics()
	if reg.Counter("queries.errors").Value() == 0 {
		t.Fatal("queries.errors not incremented by post-Close query")
	}
}

// TestContextCancellation: a canceled context fails the query with the
// context's error instead of returning a fabricated partial result.
func TestContextCancellation(t *testing.T) {
	u := grid.MustNew(2, 5)
	c := curve.NewHilbert(u)
	svc, err := service.New(c, randomRecords(u, 2000, 13), service.Config{Shards: 4, PageSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	full, err := query.NewBox(u, u.NewPoint(), u.MustPoint(u.Side()-1, u.Side()-1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Range(ctx, full); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled query: err = %v, want context.Canceled", err)
	}
}

// TestConcurrentClients runs many goroutines querying one service (with the
// -race detector in CI) and checks the shared metrics stay consistent.
func TestConcurrentClients(t *testing.T) {
	u := grid.MustNew(2, 5)
	c := curve.NewHilbert(u)
	svc, err := service.New(c, randomRecords(u, 2000, 17), service.Config{
		Shards: 4, Workers: 4, PageSize: 8, CacheSize: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	single, err := store.Bulkload(c, randomRecords(u, 2000, 17), store.WithPageSize(8))
	if err != nil {
		t.Fatal(err)
	}
	const clients, perClient = 8, 30
	errc := make(chan error, clients)
	for g := 0; g < clients; g++ {
		go func(g int) {
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perClient; i++ {
				b := randomBox(u, rng)
				got, err := svc.Range(context.Background(), b)
				if err != nil {
					errc <- err
					return
				}
				want, err := single.RangeQuery(b)
				if err != nil {
					errc <- err
					return
				}
				if len(got.Records) != len(want) {
					errc <- errors.New("concurrent result diverges from single store")
					return
				}
			}
			errc <- nil
		}(g)
	}
	for g := 0; g < clients; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	reg := svc.Metrics()
	if got := reg.Counter("queries.total").Value(); got != clients*perClient {
		t.Fatalf("queries.total = %d, want %d", got, clients*perClient)
	}
	hits := reg.Counter("cache.hits").Value()
	misses := reg.Counter("cache.misses").Value()
	shared := reg.Counter("coalesce.shared").Value()
	if hits+misses+shared != clients*perClient {
		t.Fatalf("cache accounting %d+%d+%d does not cover %d queries",
			hits, misses, shared, clients*perClient)
	}
}
