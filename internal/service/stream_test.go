package service_test

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/curve"
	"repro/internal/faultio"
	"repro/internal/grid"
	"repro/internal/query"
	"repro/internal/service"
	"repro/internal/store"
)

// clipToSegment restricts sorted disjoint intervals to [lo, hi) — the same
// clipping the service applies when routing, reimplemented here so the
// oracle below does not depend on the code under test.
func clipToSegment(ivs []query.Interval, lo, hi uint64) []query.Interval {
	var out []query.Interval
	for _, iv := range ivs {
		if iv.Lo >= hi {
			break
		}
		a, b := iv.Lo, iv.Hi
		if a < lo {
			a = lo
		}
		if b > hi {
			b = hi
		}
		if a < b {
			out = append(out, query.Interval{Lo: a, Hi: b})
		}
	}
	return out
}

// bufferedOracle reproduces the pre-streaming scatter/gather by hand: each
// intersected shard's store is scanned directly (bypassing the service) and
// the results are concatenated in shard order, dark intervals merged, page
// counts summed. This is exactly what Service.Scan computed before it became
// a Collect over the stream.
func bufferedOracle(t *testing.T, ctx context.Context, svc *service.Service, ivs []query.Interval) service.Result {
	t.Helper()
	var res service.Result
	var dark []query.Interval
	for j := 0; j < svc.Shards(); j++ {
		lo, hi := svc.Partition().Segment(j)
		clipped := clipToSegment(ivs, lo, hi)
		if len(clipped) == 0 {
			continue
		}
		sr, err := svc.Shard(j).Scan(ctx, clipped)
		if err != nil {
			t.Fatalf("oracle scan of shard %d: %v", j, err)
		}
		res.Records = append(res.Records, sr.Records...)
		dark = append(dark, sr.Unavailable...)
		res.PagesRead += int64(sr.PagesRead)
		res.ShardsQueried++
	}
	res.Unavailable = query.MergeIntervals(dark)
	return res
}

// drainStream consumes a Stream by hand — copying each batch, since batches
// alias recycled buffers — and returns the accumulated result.
func drainStream(t *testing.T, st *service.Stream) service.Result {
	t.Helper()
	var recs []store.Record
	for {
		b, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("stream next: %v", err)
		}
		recs = append(recs, b...)
	}
	res := st.Trailer()
	res.Records = recs
	return res
}

func sameResults(a, b service.Result) bool {
	if len(a.Records) != len(b.Records) || len(a.Unavailable) != len(b.Unavailable) {
		return false
	}
	if a.ShardsQueried != b.ShardsQueried || a.PagesRead != b.PagesRead {
		return false
	}
	if len(a.Records) > 0 && !reflect.DeepEqual(a.Records, b.Records) {
		return false
	}
	if len(a.Unavailable) > 0 && !reflect.DeepEqual(a.Unavailable, b.Unavailable) {
		return false
	}
	return true
}

// TestStreamEqualsBufferedOracle is the tentpole property: under
// deterministic fault injection, a hand-drained ScanStream — records
// batch-by-batch, dark tiling from the trailer — is bit-identical to the
// pre-streaming buffered scatter/gather, across curves and shard counts.
// faultio's LostFrac mode picks lost pages per page id at wrap time, so the
// oracle and the stream observe the same fault set no matter how many times
// or in what order each side reads.
func TestStreamEqualsBufferedOracle(t *testing.T) {
	u := grid.MustNew(2, 5)
	recs := randomRecords(u, 2500, 31)
	for _, name := range []string{"hilbert", "z"} {
		c, err := curve.ByName(name, u, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 3, 4} {
			svc, err := service.New(c, recs,
				service.WithShards(shards),
				service.WithWorkers(2),
				service.WithPageSize(8),
				service.WithShardStoreOptions(func(j int) []store.Option {
					return []store.Option{store.WithDeviceWrapper(func(dev store.PageDevice) (store.PageDevice, error) {
						return faultio.Wrap(dev, faultio.Config{Seed: int64(7*j + 1), LostFrac: 0.2})
					})}
				}))
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			rng := rand.New(rand.NewSource(int64(shards)))
			sawDark, sawMultiBatch := false, false
			for q := 0; q < 40; q++ {
				ivs := query.DecomposeBox(c, randomBox(u, rng))
				if len(ivs) == 0 {
					continue
				}
				want := bufferedOracle(t, ctx, svc, ivs)
				st, err := svc.ScanStream(ctx, ivs)
				if err != nil {
					t.Fatalf("%s/%d shards query %d: %v", name, shards, q, err)
				}
				got := drainStream(t, st)
				st.Close()
				if !sameResults(want, got) {
					t.Fatalf("%s/%d shards query %d: stream diverges from buffered oracle:\n got %d recs %v dark %d pages %d shards\nwant %d recs %v dark %d pages %d shards",
						name, shards, q,
						len(got.Records), got.Unavailable, got.PagesRead, got.ShardsQueried,
						len(want.Records), want.Unavailable, want.PagesRead, want.ShardsQueried)
				}
				// The buffered entry point is a Collect over the same
				// pipeline; pin that it agrees too.
				buf, err := svc.Scan(ctx, ivs)
				if err != nil {
					t.Fatal(err)
				}
				if !sameResults(want, buf) {
					t.Fatalf("%s/%d shards query %d: Scan diverges from buffered oracle", name, shards, q)
				}
				if !got.Complete() {
					sawDark = true
				}
				if got.ShardsQueried > 1 {
					sawMultiBatch = true
				}
			}
			if !sawDark {
				t.Fatalf("%s/%d shards: fault schedule never darkened a query; test is vacuous", name, shards)
			}
			if shards > 1 && !sawMultiBatch {
				t.Fatalf("%s/%d shards: no query fanned out; test is vacuous", name, shards)
			}
			svc.Close()
		}
	}
}

// TestStreamOrderAcrossBatches checks the merge invariant directly: keys are
// globally non-decreasing across batch boundaries, including across the
// shard handoff, on a scan large enough to need several batches per shard.
func TestStreamOrderAcrossBatches(t *testing.T) {
	u := grid.MustNew(2, 7)
	c := curve.NewHilbert(u)
	recs := randomRecords(u, 12000, 3)
	svc, err := service.New(c, recs, service.WithShards(3), service.WithPageSize(8))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	st, err := svc.ScanStream(context.Background(), []query.Interval{{Lo: 0, Hi: u.N()}})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var last uint64
	have := false
	batches, total := 0, 0
	for {
		b, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		batches++
		total += len(b)
		for _, r := range b {
			k := c.Index(r.Point)
			if have && k < last {
				t.Fatalf("key %d after %d: stream out of curve order", k, last)
			}
			last, have = k, true
		}
	}
	if batches < 2 {
		t.Fatalf("full scan of %d records arrived in %d batch(es); test is vacuous", total, batches)
	}
	if total != len(recs) {
		t.Fatalf("full scan streamed %d of %d records", total, len(recs))
	}
}

// TestStreamMidCancel cancels the parent context after the first batch and
// checks the stream surfaces the context error within a bounded number of
// batches (cancellation is checked between batches, so at most the batches
// already buffered in the legs can still arrive), that Close returns — i.e.
// the shard producers join — and that the worker pool survives to serve
// later queries.
func TestStreamMidCancel(t *testing.T) {
	u := grid.MustNew(2, 7)
	c := curve.NewHilbert(u)
	// Enough records that each shard needs far more batches than its leg
	// can buffer, so neither leg can have finished when we cancel.
	recs := randomRecords(u, 60000, 17)
	svc, err := service.New(c, recs, service.WithShards(2), service.WithWorkers(2), service.WithPageSize(8))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx, cancel := context.WithCancel(context.Background())
	st, err := svc.ScanStream(ctx, []query.Interval{{Lo: 0, Hi: u.N()}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Next(); err != nil {
		t.Fatalf("first batch: %v", err)
	}
	cancel()
	// Batches buffered before the cancel may still be delivered; the legs
	// hold at most streamChanCap+2 buffers each, so the error must surface
	// within a small bounded number of Next calls.
	var serr error
	for i := 0; i < 20; i++ {
		if _, serr = st.Next(); serr != nil {
			break
		}
	}
	if serr == nil {
		t.Fatal("stream kept producing long after cancellation")
	}
	if serr == io.EOF || !errors.Is(serr, context.Canceled) {
		t.Fatalf("got %v, want wrapped context.Canceled", serr)
	}
	st.Close()
	// The pool must be whole again: a fresh query on the 2-worker service
	// completes only if the canceled stream released its workers.
	if _, err := svc.Range(context.Background(), randomBox(u, rand.New(rand.NewSource(1)))); err != nil {
		t.Fatalf("query after canceled stream: %v", err)
	}
}

// TestStreamCloseWithoutDrain abandons a stream immediately after opening it
// (and once more after a single batch) and checks the producers join and the
// service keeps serving — the rows-style Close contract.
func TestStreamCloseWithoutDrain(t *testing.T) {
	u := grid.MustNew(2, 7)
	c := curve.NewHilbert(u)
	recs := randomRecords(u, 12000, 29)
	svc, err := service.New(c, recs, service.WithShards(3), service.WithWorkers(2), service.WithPageSize(8))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	full := []query.Interval{{Lo: 0, Hi: u.N()}}
	for pre := 0; pre < 2; pre++ {
		st, err := svc.ScanStream(context.Background(), full)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < pre; i++ {
			if _, err := st.Next(); err != nil {
				t.Fatal(err)
			}
		}
		st.Close()
		st.Close() // idempotent
	}
	if _, err := svc.Scan(context.Background(), full); err != nil {
		t.Fatalf("query after abandoned streams: %v", err)
	}
}

// TestStreamDurableEqualsScan drains a stream over durable shards — runs,
// memtable and tombstones live — and checks it matches the buffered Scan,
// which over durable shards exercises the k-way durable cursor merge.
func TestStreamDurableEqualsScan(t *testing.T) {
	u := grid.MustNew(2, 4)
	c, err := curve.ByName("z", u, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	svc, err := service.New(c, randomRecords(u, 300, 41),
		service.WithShards(3),
		service.WithDurableDir(t.TempDir()),
		service.WithDurableShardOptions(func(int) []store.DurableOption {
			return []store.DurableOption{store.WithAutoCompact(false)}
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	// Leave a resident memtable on top of the bulkloaded runs: puts across
	// the whole side plus a few deletes.
	for i := 0; i < 40; i++ {
		r := store.Record{Point: grid.Point{uint32(i % 16), uint32(i / 16)}, Payload: 9000 + uint64(i)}
		if err := svc.Put(ctx, r); err != nil {
			t.Fatal(err)
		}
		if i%8 == 3 {
			if err := svc.Delete(ctx, r); err != nil {
				t.Fatal(err)
			}
		}
	}
	rng := rand.New(rand.NewSource(6))
	for q := 0; q < 30; q++ {
		ivs := query.DecomposeBox(c, randomBox(u, rng))
		if len(ivs) == 0 {
			continue
		}
		want, err := svc.Scan(ctx, ivs)
		if err != nil {
			t.Fatal(err)
		}
		st, err := svc.ScanStream(ctx, ivs)
		if err != nil {
			t.Fatal(err)
		}
		got := drainStream(t, st)
		st.Close()
		if !sameResults(want, got) {
			t.Fatalf("query %d: durable stream diverges from Scan: %d vs %d records", q, len(got.Records), len(want.Records))
		}
	}
}

// TestStreamAfterClose pins the shutdown surface: opening a stream on a
// closed service fails with ErrShuttingDown, wrapped like Range's error.
func TestStreamAfterClose(t *testing.T) {
	u := grid.MustNew(2, 4)
	c := curve.NewHilbert(u)
	svc, err := service.New(c, randomRecords(u, 100, 2), service.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()
	if _, err := svc.ScanStream(context.Background(), []query.Interval{{Lo: 0, Hi: u.N()}}); !errors.Is(err, service.ErrShuttingDown) {
		t.Fatalf("got %v, want ErrShuttingDown", err)
	}
	if _, err := svc.ScanStream(context.Background(), nil); err == nil {
		t.Fatal("invalid intervals accepted")
	}
}
