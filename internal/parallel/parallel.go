// Package parallel provides the small set of data-parallel building blocks
// used by the exact stretch computations: a chunked parallel for-loop and
// deterministic parallel reductions.
//
// Every metric in this repository is a sum over the n cells of the universe
// (or over the n(n-1)/2 pairs). The helpers here split the index space into
// contiguous chunks, evaluate chunks on worker goroutines, and combine the
// per-chunk partial results in chunk order, so results are bit-for-bit
// reproducible regardless of scheduling and worker count. Floating-point
// chunk sums use Kahan compensation to keep accumulated error negligible at
// the problem sizes swept by the experiment harness.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers returns the worker count to use when the caller passes 0.
func defaultWorkers(workers int) int {
	if workers > 0 {
		return workers
	}
	return runtime.GOMAXPROCS(0)
}

// minSequential is the loop size below which parallel dispatch costs more
// than it saves; such loops run on the calling goroutine.
const minSequential = 4096

// For runs fn(i) for every i in [0, n), distributing contiguous chunks of
// the index space across workers goroutines (GOMAXPROCS when workers <= 0).
// fn must be safe for concurrent invocation on distinct indices.
func For(n uint64, workers int, fn func(i uint64)) {
	ForChunked(n, workers, func(lo, hi uint64) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForChunked splits [0, n) into contiguous chunks and runs fn(lo, hi) for
// each chunk on a pool of workers goroutines. Chunks are claimed dynamically
// (work stealing via an atomic cursor) so uneven per-index costs still
// balance. fn must be safe for concurrent invocation on disjoint ranges.
func ForChunked(n uint64, workers int, fn func(lo, hi uint64)) {
	if n == 0 {
		return
	}
	w := defaultWorkers(workers)
	if w == 1 || n < minSequential {
		fn(0, n)
		return
	}
	// Aim for several chunks per worker so dynamic claiming can rebalance,
	// without making chunks so small that cursor traffic dominates.
	chunk := n / uint64(w*8)
	if chunk < 1024 {
		chunk = 1024
	}
	var cursor atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				lo := cursor.Add(chunk) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// SumUint64 returns the sum over i in [0, n) of term(i), computed in
// parallel. Partial sums are combined deterministically; the total must fit
// in a uint64 (the caller is responsible for range analysis — the universe
// size limits in the grid package guarantee this for all shipped metrics).
func SumUint64(n uint64, workers int, term func(i uint64) uint64) uint64 {
	parts := partialRanges(n, workers)
	sums := make([]uint64, len(parts))
	var wg sync.WaitGroup
	wg.Add(len(parts))
	for pi := range parts {
		go func(pi int) {
			defer wg.Done()
			var s uint64
			for i := parts[pi].lo; i < parts[pi].hi; i++ {
				s += term(i)
			}
			sums[pi] = s
		}(pi)
	}
	wg.Wait()
	var total uint64
	for _, s := range sums {
		total += s
	}
	return total
}

// SumFloat64 returns the sum over i in [0, n) of term(i), computed in
// parallel with per-chunk Kahan compensation and a deterministic chunk-order
// combine.
func SumFloat64(n uint64, workers int, term func(i uint64) float64) float64 {
	parts := partialRanges(n, workers)
	sums := make([]float64, len(parts))
	var wg sync.WaitGroup
	wg.Add(len(parts))
	for pi := range parts {
		go func(pi int) {
			defer wg.Done()
			var s, c float64 // Kahan running sum and compensation
			for i := parts[pi].lo; i < parts[pi].hi; i++ {
				y := term(i) - c
				t := s + y
				c = (t - s) - y
				s = t
			}
			sums[pi] = s
		}(pi)
	}
	wg.Wait()
	var total, c float64
	for _, s := range sums {
		y := s - c
		t := total + y
		c = (t - total) - y
		total = t
	}
	return total
}

// SumFloat64Chunked is like SumFloat64 but hands whole ranges to term so the
// caller can hoist per-chunk state (scratch buffers, curve decoders) out of
// the inner loop. term must return the exact sum for its range.
func SumFloat64Chunked(n uint64, workers int, term func(lo, hi uint64) float64) float64 {
	parts := partialRanges(n, workers)
	sums := make([]float64, len(parts))
	var wg sync.WaitGroup
	wg.Add(len(parts))
	for pi := range parts {
		go func(pi int) {
			defer wg.Done()
			sums[pi] = term(parts[pi].lo, parts[pi].hi)
		}(pi)
	}
	wg.Wait()
	var total, c float64
	for _, s := range sums {
		y := s - c
		t := total + y
		c = (t - total) - y
		total = t
	}
	return total
}

// SumUint64Chunked is like SumUint64 but hands whole ranges to term.
func SumUint64Chunked(n uint64, workers int, term func(lo, hi uint64) uint64) uint64 {
	parts := partialRanges(n, workers)
	sums := make([]uint64, len(parts))
	var wg sync.WaitGroup
	wg.Add(len(parts))
	for pi := range parts {
		go func(pi int) {
			defer wg.Done()
			sums[pi] = term(parts[pi].lo, parts[pi].hi)
		}(pi)
	}
	wg.Wait()
	var total uint64
	for _, s := range sums {
		total += s
	}
	return total
}

// MaxFloat64Chunked returns the maximum over [0, n) where term returns the
// maximum for its range, or negative infinity for an empty range.
func MaxFloat64Chunked(n uint64, workers int, term func(lo, hi uint64) float64) float64 {
	parts := partialRanges(n, workers)
	maxes := make([]float64, len(parts))
	var wg sync.WaitGroup
	wg.Add(len(parts))
	for pi := range parts {
		go func(pi int) {
			defer wg.Done()
			maxes[pi] = term(parts[pi].lo, parts[pi].hi)
		}(pi)
	}
	wg.Wait()
	best := maxes[0]
	for _, m := range maxes[1:] {
		if m > best {
			best = m
		}
	}
	return best
}

// MapRanges splits [0, n) into one contiguous range per worker, evaluates
// fn on each range concurrently, and returns the per-range results in range
// order. It is the building block for reductions that accumulate more than
// one quantity per sweep; combining the returned slice sequentially keeps
// the overall computation deterministic.
func MapRanges[T any](n uint64, workers int, fn func(lo, hi uint64) T) []T {
	parts := partialRanges(n, workers)
	out := make([]T, len(parts))
	var wg sync.WaitGroup
	wg.Add(len(parts))
	for pi := range parts {
		go func(pi int) {
			defer wg.Done()
			out[pi] = fn(parts[pi].lo, parts[pi].hi)
		}(pi)
	}
	wg.Wait()
	return out
}

type span struct{ lo, hi uint64 }

// partialRanges splits [0, n) into one contiguous range per worker (static
// schedule). Reductions use a static schedule — rather than the dynamic one
// in ForChunked — so the partial-sum combine order is a pure function of
// (n, workers).
func partialRanges(n uint64, workers int) []span {
	w := defaultWorkers(workers)
	if n == 0 {
		return []span{{0, 0}}
	}
	if uint64(w) > n {
		w = int(n)
	}
	if n < minSequential {
		w = 1
	}
	parts := make([]span, w)
	per := n / uint64(w)
	rem := n % uint64(w)
	var lo uint64
	for i := 0; i < w; i++ {
		hi := lo + per
		if uint64(i) < rem {
			hi++
		}
		parts[i] = span{lo, hi}
		lo = hi
	}
	return parts
}
