package parallel

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestForVisitsEveryIndexOnce(t *testing.T) {
	const n = 100000
	var seen [n]int32
	For(n, 7, func(i uint64) { atomic.AddInt32(&seen[i], 1) })
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForSmallRunsSequentially(t *testing.T) {
	var count int // no synchronization: must be safe because n < minSequential
	For(100, 8, func(i uint64) { count++ })
	if count != 100 {
		t.Fatalf("count = %d", count)
	}
}

func TestForZero(t *testing.T) {
	called := false
	For(0, 4, func(uint64) { called = true })
	if called {
		t.Fatal("fn called for n=0")
	}
}

func TestForChunkedCoversRange(t *testing.T) {
	const n = 250000
	var total atomic.Uint64
	ForChunked(n, 5, func(lo, hi uint64) {
		if lo >= hi || hi > n {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		total.Add(hi - lo)
	})
	if total.Load() != n {
		t.Fatalf("covered %d of %d", total.Load(), n)
	}
}

func TestSumUint64(t *testing.T) {
	const n = 1 << 20
	got := SumUint64(n, 0, func(i uint64) uint64 { return i })
	want := uint64(n) * (n - 1) / 2
	if got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

func TestSumUint64WorkerInvariance(t *testing.T) {
	const n = 1<<18 + 17
	ref := SumUint64(n, 1, func(i uint64) uint64 { return i*i + 3 })
	for _, w := range []int{2, 3, 8, 32} {
		if got := SumUint64(n, w, func(i uint64) uint64 { return i*i + 3 }); got != ref {
			t.Fatalf("workers=%d sum %d != %d", w, got, ref)
		}
	}
}

func TestSumFloat64Accuracy(t *testing.T) {
	// Sum of 1/(i+1) compared against a sequential Kahan reference.
	const n = 1 << 20
	var ref, c float64
	for i := uint64(0); i < n; i++ {
		y := 1/float64(i+1) - c
		s := ref + y
		c = (s - ref) - y
		ref = s
	}
	got := SumFloat64(n, 0, func(i uint64) float64 { return 1 / float64(i+1) })
	if math.Abs(got-ref) > 1e-9 {
		t.Fatalf("sum = %.15f, want %.15f", got, ref)
	}
}

func TestSumFloat64Deterministic(t *testing.T) {
	const n = 1<<19 + 311
	term := func(i uint64) float64 { return math.Sin(float64(i)) }
	a := SumFloat64(n, 4, term)
	for trial := 0; trial < 5; trial++ {
		if b := SumFloat64(n, 4, term); b != a {
			t.Fatalf("non-deterministic: %v vs %v", a, b)
		}
	}
}

func TestSumChunkedMatchesPerIndex(t *testing.T) {
	const n = 1<<18 + 5
	want := SumFloat64(n, 3, func(i uint64) float64 { return float64(i % 97) })
	got := SumFloat64Chunked(n, 3, func(lo, hi uint64) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += float64(i % 97)
		}
		return s
	})
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("chunked %v != per-index %v", got, want)
	}
	wantU := SumUint64(n, 3, func(i uint64) uint64 { return i % 97 })
	gotU := SumUint64Chunked(n, 3, func(lo, hi uint64) uint64 {
		var s uint64
		for i := lo; i < hi; i++ {
			s += i % 97
		}
		return s
	})
	if gotU != wantU {
		t.Fatalf("chunked %v != per-index %v", gotU, wantU)
	}
}

func TestMaxFloat64Chunked(t *testing.T) {
	const n = 1 << 18
	got := MaxFloat64Chunked(n, 6, func(lo, hi uint64) float64 {
		best := math.Inf(-1)
		for i := lo; i < hi; i++ {
			v := -math.Abs(float64(i) - 123456.0)
			if v > best {
				best = v
			}
		}
		return best
	})
	if got != 0 {
		t.Fatalf("max = %v, want 0", got)
	}
}

func TestPartialRanges(t *testing.T) {
	for _, tc := range []struct {
		n       uint64
		workers int
	}{{0, 4}, {1, 4}, {10, 4}, {4096, 4}, {100000, 7}, {100001, 1}} {
		parts := partialRanges(tc.n, tc.workers)
		var covered uint64
		prev := uint64(0)
		for _, p := range parts {
			if p.lo != prev {
				t.Fatalf("n=%d w=%d: gap at %d", tc.n, tc.workers, p.lo)
			}
			covered += p.hi - p.lo
			prev = p.hi
		}
		if covered != tc.n {
			t.Fatalf("n=%d w=%d: covered %d", tc.n, tc.workers, covered)
		}
	}
}

func BenchmarkSumFloat64(b *testing.B) {
	const n = 1 << 22
	b.SetBytes(n * 8)
	for i := 0; i < b.N; i++ {
		sink = SumFloat64(n, 0, func(i uint64) float64 { return float64(i & 1023) })
	}
}

var sink float64
