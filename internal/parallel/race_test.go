package parallel

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// These stress tests exist to run under `go test -race ./internal/parallel`
// (wired as an explicit CI step): many goroutines drive every reduction
// concurrently, with worker counts straddling the sequential cutoff, while
// the determinism assertions double as memory-visibility checks — a partial
// sum written without proper synchronization would surface as either a race
// report or a value mismatch.

// stressN sits above minSequential so the reductions actually fan out.
const stressN = 3 * minSequential

func TestRaceStressSumFloat64(t *testing.T) {
	term := func(i uint64) float64 { return math.Sqrt(float64(i)) }
	want := SumFloat64(stressN, 3, term)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 10; rep++ {
				// Same worker count must be bit-for-bit stable even while
				// other goroutines run the reduction at other counts.
				if got := SumFloat64(stressN, 3, term); got != want {
					t.Errorf("goroutine %d rep %d: %v != %v", g, rep, got, want)
					return
				}
				other := SumFloat64(stressN, 1+g%7, term)
				if math.Abs(other-want) > 1e-9*want {
					t.Errorf("goroutine %d: workers=%d sum %v far from %v", g, 1+g%7, other, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestRaceStressSumUint64(t *testing.T) {
	term := func(i uint64) uint64 { return i*i + 1 }
	want := SumUint64(stressN, 1, term)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 10; rep++ {
				if got := SumUint64(stressN, 1+(g+rep)%9, term); got != want {
					t.Errorf("goroutine %d: %d != %d", g, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestRaceStressMapRanges(t *testing.T) {
	type pair struct {
		sum   uint64
		count uint64
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 10; rep++ {
				workers := 1 + (g*3+rep)%8
				parts := MapRanges(stressN, workers, func(lo, hi uint64) pair {
					var p pair
					for i := lo; i < hi; i++ {
						p.sum += i
						p.count++
					}
					return p
				})
				var total pair
				for _, p := range parts {
					total.sum += p.sum
					total.count += p.count
				}
				if total.count != stressN || total.sum != stressN*(stressN-1)/2 {
					t.Errorf("goroutine %d workers=%d: %+v", g, workers, total)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestRaceStressForChunked(t *testing.T) {
	// Every index must be visited exactly once per sweep, under concurrent
	// sweeps sharing nothing but the scheduler.
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			hits := make([]atomic.Uint32, stressN)
			ForChunked(stressN, 1+g%5, func(lo, hi uint64) {
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
			})
			for i := range hits {
				if v := hits[i].Load(); v != 1 {
					t.Errorf("goroutine %d: index %d visited %d times", g, i, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestRaceStressChunkedReductions(t *testing.T) {
	var wg sync.WaitGroup
	wantF := SumFloat64Chunked(stressN, 1, func(lo, hi uint64) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += 1 / float64(i+1)
		}
		return s
	})
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			workers := 1 + g
			got := SumFloat64Chunked(stressN, workers, func(lo, hi uint64) float64 {
				var s float64
				for i := lo; i < hi; i++ {
					s += 1 / float64(i+1)
				}
				return s
			})
			if math.Abs(got-wantF) > 1e-9 {
				t.Errorf("SumFloat64Chunked workers=%d: %v vs %v", workers, got, wantF)
			}
			gotU := SumUint64Chunked(stressN, workers, func(lo, hi uint64) uint64 {
				return hi*(hi-1)/2 - lo*(lo-1)/2
			})
			if gotU != stressN*(stressN-1)/2 {
				t.Errorf("SumUint64Chunked workers=%d: %d", workers, gotU)
			}
			gotM := MaxFloat64Chunked(stressN, workers, func(lo, hi uint64) float64 {
				best := math.Inf(-1)
				for i := lo; i < hi; i++ {
					if v := float64(i % 1009); v > best {
						best = v
					}
				}
				return best
			})
			if gotM != 1008 {
				t.Errorf("MaxFloat64Chunked workers=%d: %v", workers, gotM)
			}
		}(g)
	}
	wg.Wait()
}

func TestRaceStressOverProvisioned(t *testing.T) {
	// More workers than cores and more workers than chunks: the static
	// schedule clamps rather than deadlocking or dropping ranges.
	workers := 4 * runtime.GOMAXPROCS(0)
	term := func(i uint64) uint64 { return 1 }
	if got := SumUint64(stressN, workers, term); got != stressN {
		t.Fatalf("over-provisioned sum %d", got)
	}
	if got := SumUint64(10, workers, term); got != 10 {
		t.Fatalf("tiny-n sum %d", got)
	}
}
