package store_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/faultio"
	"repro/internal/grid"
	"repro/internal/query"
	"repro/internal/store"
)

// TestScanStrictEqualsDegradedFaultFree: on the default device, strict and
// degraded Scan return byte-identical records, identical Stats, identical
// PagesRead — the unified entry point keeps the zero-overhead guarantee.
func TestScanStrictEqualsDegradedFaultFree(t *testing.T) {
	u := grid.MustNew(2, 5)
	rng := rand.New(rand.NewSource(41))
	_, _, st := buildStore(t, u, "hilbert", 1500, 17, store.Config{PageSize: 8, Fanout: 4})
	ctx := context.Background()
	for q := 0; q < 16; q++ {
		b := randomTestBox(rng, u)
		st.ResetStats()
		strict, err := st.ScanBox(ctx, b, store.ScanStrict())
		if err != nil {
			t.Fatalf("strict scan failed without faults: %v", err)
		}
		strictStats := st.Stats()
		st.ResetStats()
		deg, err := st.ScanBox(ctx, b)
		if err != nil {
			t.Fatalf("degraded scan failed: %v", err)
		}
		if !deg.Complete() {
			t.Fatalf("%d dark intervals without faults", len(deg.Unavailable))
		}
		if !reflect.DeepEqual(strict.Records, deg.Records) {
			t.Fatal("degraded records differ from strict")
		}
		if strict.PagesRead != deg.PagesRead {
			t.Fatalf("PagesRead: strict %d, degraded %d", strict.PagesRead, deg.PagesRead)
		}
		if got := st.Stats(); got != strictStats {
			t.Fatalf("degraded stats %+v, strict %+v", got, strictStats)
		}
		if got := st.Stats().LeafReads; got != strict.PagesRead {
			t.Fatalf("PagesRead %d, Stats.LeafReads %d", strict.PagesRead, got)
		}
	}
}

// TestScanWrappersDelegate: the deprecated Range* wrappers return results
// bit-identical to Scan's, dark intervals included.
func TestScanWrappersDelegate(t *testing.T) {
	u := grid.MustNew(2, 5)
	rng := rand.New(rand.NewSource(42))
	c, _, st := buildStore(t, u, "z", 2000, 23, store.Config{PageSize: 4, Fanout: 4})
	inj, err := faultio.Wrap(st.DefaultDevice(), faultio.Config{Seed: 9, LostFrac: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetDevice(inj); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for q := 0; q < 16; q++ {
		b := randomTestBox(rng, u)
		ivs := query.DecomposeBox(c, b)
		res, err := st.Scan(ctx, ivs)
		if err != nil {
			t.Fatal(err)
		}
		deg, err := st.RangeIntervalsDegraded(ctx, ivs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Records, deg.Records) ||
			!reflect.DeepEqual(res.Unavailable, deg.Unavailable) ||
			res.PagesRead != deg.PagesRead {
			t.Fatal("RangeIntervalsDegraded diverges from Scan")
		}
		wrap := st.RangeQueryDegraded(b)
		if !reflect.DeepEqual(res.Records, wrap.Records) ||
			!reflect.DeepEqual(res.Unavailable, wrap.Unavailable) {
			t.Fatal("RangeQueryDegraded diverges from Scan")
		}
		strict, strictErr := st.Scan(ctx, ivs, store.ScanStrict())
		old, oldErr := st.RangeIntervals(ctx, ivs)
		if (strictErr == nil) != (oldErr == nil) {
			t.Fatalf("strict error mismatch: Scan %v, RangeIntervals %v", strictErr, oldErr)
		}
		if strictErr == nil && !reflect.DeepEqual(strict.Records, old) {
			t.Fatal("RangeIntervals diverges from strict Scan")
		}
	}
}

// TestScanStrictFailsOnDarkPage: with a permanently lost page, a strict
// scan fails with ErrPageUnavailable while a degraded scan of the same
// intervals reports the loss as dark intervals and keeps the tiling
// contract.
func TestScanStrictFailsOnDarkPage(t *testing.T) {
	u := grid.MustNew(2, 5)
	c, recs, st := buildStore(t, u, "hilbert", 1200, 7, store.Config{PageSize: 8, Fanout: 4})
	inj, err := faultio.Wrap(st.DefaultDevice(), faultio.Config{Seed: 3, LostPages: []int{2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetDevice(inj); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	full := []query.Interval{{Lo: 0, Hi: u.N()}}
	if _, err := st.Scan(ctx, full, store.ScanStrict()); !errors.Is(err, store.ErrPageUnavailable) {
		t.Fatalf("strict scan over a lost page: err = %v, want ErrPageUnavailable", err)
	}
	res, err := st.Scan(ctx, full)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete() {
		t.Fatal("degraded scan over lost pages reported no dark intervals")
	}
	dark := func(key uint64) bool { return query.IntervalsContain(res.Unavailable, key) }
	want := 0
	for _, r := range recs {
		if !dark(c.Index(r.Point)) {
			want++
		}
	}
	if len(res.Records) != want {
		t.Fatalf("served %d records, want %d (outside dark intervals)", len(res.Records), want)
	}
	for _, r := range res.Records {
		if dark(c.Index(r.Point)) {
			t.Fatalf("record %v lies in a dark interval", r.Point)
		}
	}
}

// TestScanContextCanceled: a canceled context aborts the scan with the
// context's error and no fabricated partial result.
func TestScanContextCanceled(t *testing.T) {
	u := grid.MustNew(2, 5)
	_, _, st := buildStore(t, u, "z", 1200, 11, store.Config{PageSize: 4, Fanout: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := st.Scan(ctx, []query.Interval{{Lo: 0, Hi: u.N()}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res.Records) != 0 || len(res.Unavailable) != 0 {
		t.Fatalf("canceled scan fabricated a result: %+v", res)
	}
}
