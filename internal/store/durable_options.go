package store

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/wal"
)

// DeviceWrapper intercepts a page device, typically to inject faults — the
// signature WithDeviceWrapper and WithRunWrapper share.
type DeviceWrapper = func(PageDevice) (PageDevice, error)

// durableConfig is the resolved configuration of one durable store.
type durableConfig struct {
	pageSize         int
	fanout           int
	memLimit         int
	compactThreshold int
	autoCompact      bool
	reg              *metrics.Registry
	wrapWAL          func(wal.File) wal.File
	wrapDev          DeviceWrapper
	retry            *RetryPolicy
}

// DurableOption configures OpenDurable.
type DurableOption interface {
	applyDurable(*durableConfig) error
}

type durableOptionFunc func(*durableConfig) error

func (f durableOptionFunc) applyDurable(c *durableConfig) error { return f(c) }

// WithDurablePageSize sets the leaf page capacity of newly written runs
// (default 64). Existing runs keep the page size they were written with.
func WithDurablePageSize(n int) DurableOption {
	return durableOptionFunc(func(c *durableConfig) error {
		if n < 2 {
			return fmt.Errorf("store: durable page size %d too small", n)
		}
		c.pageSize = n
		return nil
	})
}

// WithDurableFanout sets the inner-index fanout used when opening runs
// (default 64).
func WithDurableFanout(n int) DurableOption {
	return durableOptionFunc(func(c *durableConfig) error {
		if n < 2 {
			return fmt.Errorf("store: durable fanout %d too small", n)
		}
		c.fanout = n
		return nil
	})
}

// WithMemLimit sets how many acknowledged operations the memtable may hold
// before a Put or Delete triggers an automatic flush (default 1024).
func WithMemLimit(n int) DurableOption {
	return durableOptionFunc(func(c *durableConfig) error {
		if n < 1 {
			return fmt.Errorf("store: mem limit %d too small", n)
		}
		c.memLimit = n
		return nil
	})
}

// WithCompactThreshold sets the number of runs that triggers background
// compaction after a flush (default 4).
func WithCompactThreshold(n int) DurableOption {
	return durableOptionFunc(func(c *durableConfig) error {
		if n < 2 {
			return fmt.Errorf("store: compact threshold %d too small", n)
		}
		c.compactThreshold = n
		return nil
	})
}

// WithAutoCompact enables or disables background compaction (default on).
// Tests that need deterministic run layouts disable it and call Compact
// explicitly.
func WithAutoCompact(on bool) DurableOption {
	return durableOptionFunc(func(c *durableConfig) error {
		c.autoCompact = on
		return nil
	})
}

// WithDurableMetrics publishes the store's durability counters (wal.appends,
// wal.replays, wal.torn_tails_truncated, durable.flushes,
// durable.compactions, durable.flush_us) into reg — typically the registry
// the serving daemon already exports.
func WithDurableMetrics(reg *metrics.Registry) DurableOption {
	return durableOptionFunc(func(c *durableConfig) error {
		c.reg = reg
		return nil
	})
}

// WithWALWrapper intercepts every WAL file handle the store creates or
// opens — the write-path fault-injection hook (see faultio.WrapFile).
func WithWALWrapper(wrap func(wal.File) wal.File) DurableOption {
	return durableOptionFunc(func(c *durableConfig) error {
		c.wrapWAL = wrap
		return nil
	})
}

// WithRunWrapper wraps every run file's page device when it is opened — the
// read-path fault-injection hook, mirroring WithDeviceWrapper on Bulkload.
func WithRunWrapper(wrap DeviceWrapper) DurableOption {
	return durableOptionFunc(func(c *durableConfig) error {
		c.wrapDev = wrap
		return nil
	})
}

// WithDurableRetryPolicy sets the page-read retry policy applied to every
// run's store.
func WithDurableRetryPolicy(p RetryPolicy) DurableOption {
	return durableOptionFunc(func(c *durableConfig) error {
		cp := p
		c.retry = &cp
		return nil
	})
}
