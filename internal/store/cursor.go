package store

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/query"
)

// DefaultScanBatch is the record count a cursor targets per batch when
// ScanBatchSize is not given. It matches the wire protocol's default batch
// size so a streaming server fills frames without re-chunking.
const DefaultScanBatch = 4096

// Batch is one increment of a cursor scan. Draining a cursor yields exactly
// the records, dark intervals, and page charges a single Scan over the same
// intervals would return — the batches are a partition of the ScanResult,
// not an approximation of it.
type Batch struct {
	// Records holds the next run of readable records in scan order
	// (ascending curve key, duplicate keys in store order). The slice, like
	// Keys and Dark, aliases cursor-owned buffers and is valid only until
	// the next Next or Close call.
	Records []Record
	// Keys holds the curve key of each record, aligned with Records, so
	// consumers can merge streams without re-deriving keys from points.
	Keys []uint64
	// Dark lists the key spans newly discovered unavailable during this
	// batch, clipped to the scanned intervals. Spans are deltas: they may
	// abut or overlap spans from earlier batches, and a Durable cursor may
	// deliver them out of order across runs — callers accumulate the union
	// and query.MergeIntervals it, which equals ScanResult.Unavailable once
	// the cursor is drained.
	Dark []query.Interval
	// Watermark is a strict upper bound on this batch and a lower bound on
	// everything still to come: every key in this batch is < Watermark, and
	// every future record key and future Dark span's Lo is >= Watermark.
	// A batch that exhausts the scan carries math.MaxUint64 (though a
	// cursor that only discovers exhaustion afterwards may return io.EOF
	// directly after a finite-watermark batch). Mergers use it to prove a
	// candidate record can no longer be contradicted by an unseen dark
	// span.
	Watermark uint64
	// PagesRead counts the distinct leaf pages first touched during this
	// Next call, dark ones included. Summed over all batches it equals
	// ScanResult.PagesRead.
	PagesRead int
}

// BatchCursor iterates a scan incrementally, page-at-a-time, so upper
// layers can start shipping early batches while later intervals are still
// unread. Cursors are single-goroutine objects; the context is passed per
// Next call so one cursor can serve several request phases.
type BatchCursor interface {
	// Next returns the next batch, or io.EOF after the last one.
	// Cancellation and deadline are honored between leaf page reads, like
	// Scan; under ScanStrict the first page that stays unavailable fails
	// the cursor with an error wrapping ErrPageUnavailable. Any non-nil
	// error (io.EOF included) is sticky: the cursor is exhausted and
	// further calls return the same error.
	Next(ctx context.Context) (Batch, error)
	// Close releases the cursor's buffers. It is idempotent and safe to
	// call at any point; a half-drained cursor must still be closed.
	Close()
}

// validateScanIntervals checks the sorted-disjoint precondition the cursor
// watermark logic relies on (Scan merely documents it; the cursor enforces
// it because a violation would silently break downstream merges).
func validateScanIntervals(ivs []query.Interval) error {
	for i, iv := range ivs {
		if iv.Lo > iv.Hi {
			return fmt.Errorf("store: cursor interval %d inverted [%d, %d)", i, iv.Lo, iv.Hi)
		}
		if i > 0 && iv.Lo < ivs[i-1].Hi {
			return fmt.Errorf("store: cursor intervals not sorted and disjoint at %d", i)
		}
	}
	return nil
}

// ScanCursor opens an incremental scan over the given sorted, disjoint
// curve intervals. Draining the cursor is bit-identical to Scan: same
// records in the same order, same merged dark tiling, same PagesRead, and
// identical Stats charges — the cursor exists so the service layer can
// stream batches onto the wire while later intervals are still being read,
// bounding per-request memory by the batch size instead of the result
// size.
//
// The cursor retains ivs; the caller must not mutate it until Close.
func (st *Store) ScanCursor(ivs []query.Interval, opts ...ScanOption) (BatchCursor, error) {
	cfg := scanConfig{batch: DefaultScanBatch}
	for _, opt := range opts {
		if opt != nil {
			opt.applyScan(&cfg)
		}
	}
	if err := validateScanIntervals(ivs); err != nil {
		return nil, err
	}
	return &storeCursor{st: st, cfg: cfg, ivs: ivs, curID: -1}, nil
}

// storeCursor walks intervals in order and pages within each interval in
// order, which makes the page sequence globally non-decreasing — one
// memoized current page replaces Scan's page cache, and a page shared by
// the tail of one interval and the head of the next is fetched (and
// counted) once, exactly like the cache would.
//
// Correctness hinges on two facts Scan gets by running in two passes:
//
//   - A record on a readable page can be retroactively darkened only by a
//     failed page that shares its key across the page boundary (Scan
//     withholds every record whose key lands in a dark span). Such a key
//     is by construction the first key of the next page, so the cursor
//     holds back exactly the records with key >= the next page's first key
//     until that page's fate is known, and drops held records a new dark
//     span covers.
//   - Dark spans are discovered in ascending Lo order (pages ascend, spans
//     are clipped per interval, intervals ascend), so merging each new
//     span into the tail of the accumulated list is equivalent to
//     query.MergeIntervals over the whole set.
type storeCursor struct {
	st  *Store
	cfg scanConfig
	ivs []query.Interval

	ivIdx int  // current interval; len(ivs) when exhausted
	open  bool // slot range of ivs[ivIdx] has been located
	page  int  // next page to visit inside the open interval
	last  int  // last page of the open interval
	lo    int  // slot range [lo, hi) of the open interval
	hi    int

	curID     int // memoized current page (ids arrive non-decreasing)
	curPg     Page
	curErr    error
	pagesThis int // distinct pages first fetched during this Next

	dark []query.Interval // merged dark union so far (sorted, disjoint)

	// Boundary holdback: records collected from the open interval whose
	// fate may still change, in slot order.
	pendRecs []Record
	pendKeys []uint64

	// Output buffers, reused across Next calls.
	outRecs []Record
	outKeys []uint64
	outDark []query.Interval

	done bool
	err  error
}

func (c *storeCursor) Next(ctx context.Context) (Batch, error) {
	if c.err != nil {
		return Batch{}, c.err
	}
	if c.done {
		return Batch{}, io.EOF
	}
	c.outRecs = c.outRecs[:0]
	c.outKeys = c.outKeys[:0]
	c.outDark = c.outDark[:0]
	c.pagesThis = 0
	for len(c.outRecs) < c.cfg.batch {
		if !c.open {
			if c.ivIdx >= len(c.ivs) {
				c.done = true
				break
			}
			iv := c.ivs[c.ivIdx]
			lo := c.st.descend(iv.Lo)
			hi := lo + sort.Search(len(c.st.keys)-lo, func(i int) bool { return c.st.keys[lo+i] >= iv.Hi })
			if lo == hi {
				c.ivIdx++
				continue
			}
			c.lo, c.hi = lo, hi
			c.page = lo / c.st.pageSize
			c.last = (hi - 1) / c.st.pageSize
			c.open = true
		}
		if err := ctx.Err(); err != nil {
			return c.fail(err)
		}
		iv := c.ivs[c.ivIdx]
		pg, pgErr := c.getPage(c.page)
		if pgErr != nil {
			if c.cfg.strict {
				return c.fail(pgErr)
			}
			ks := c.st.pageKeySpan(c.page)
			if ks.Lo < iv.Lo {
				ks.Lo = iv.Lo
			}
			if ks.Hi > iv.Hi {
				ks.Hi = iv.Hi
			}
			if ks.Lo < ks.Hi {
				c.outDark = append(c.outDark, ks)
				c.addDark(ks)
				c.dropPend(ks)
			}
		} else {
			a := c.page * c.st.pageSize
			if a < c.lo {
				a = c.lo
			}
			b := (c.page + 1) * c.st.pageSize
			if b > c.hi {
				b = c.hi
			}
			for i := a; i < b; i++ {
				k := c.st.keys[i]
				if query.IntervalsContain(c.dark, k) {
					continue
				}
				c.pendRecs = append(c.pendRecs, pg.Records[i%c.st.pageSize])
				c.pendKeys = append(c.pendKeys, k)
			}
		}
		if c.page == c.last {
			c.emitPend(0, true)
			c.open = false
			c.ivIdx++
		} else {
			c.page++
			c.emitPend(c.st.keys[c.page*c.st.pageSize], false)
		}
	}
	wm := uint64(math.MaxUint64)
	switch {
	case c.open:
		// Stopped at a page boundary mid-interval: everything emitted is
		// below the next page's first key, everything still to come (held
		// records included) is at or above it.
		wm = c.st.keys[c.page*c.st.pageSize]
	case c.ivIdx < len(c.ivs):
		wm = c.ivs[c.ivIdx].Lo
	}
	if c.done && len(c.outRecs) == 0 && len(c.outDark) == 0 && c.pagesThis == 0 {
		return Batch{}, io.EOF
	}
	return Batch{
		Records:   c.outRecs,
		Keys:      c.outKeys,
		Dark:      c.outDark,
		Watermark: wm,
		PagesRead: c.pagesThis,
	}, nil
}

func (c *storeCursor) Close() {
	c.done = true
	c.pendRecs, c.pendKeys = nil, nil
	c.outRecs, c.outKeys, c.outDark = nil, nil, nil
}

func (c *storeCursor) fail(err error) (Batch, error) {
	c.err = err
	return Batch{}, err
}

// getPage mirrors pageCache.get's charging: one leaf read per distinct
// page, fetch errors memoized so a page shared by two intervals is neither
// re-fetched nor re-counted.
func (c *storeCursor) getPage(id int) (Page, error) {
	if id == c.curID {
		return c.curPg, c.curErr
	}
	c.curID = id
	c.pagesThis++
	c.st.stats.leafReads.Add(1)
	c.curPg, c.curErr = c.st.fetchPage(id)
	return c.curPg, c.curErr
}

// addDark folds a newly discovered span into the merged union. Spans
// arrive in ascending Lo order, so only the tail can overlap.
func (c *storeCursor) addDark(ks query.Interval) {
	if n := len(c.dark); n > 0 && ks.Lo <= c.dark[n-1].Hi {
		if ks.Hi > c.dark[n-1].Hi {
			c.dark[n-1].Hi = ks.Hi
		}
		return
	}
	c.dark = append(c.dark, ks)
}

// dropPend removes held records a new dark span covers — the page-boundary
// duplicate-key case where a readable page's records go dark because the
// rest of their key's run was lost.
func (c *storeCursor) dropPend(ks query.Interval) {
	keep := 0
	for i, k := range c.pendKeys {
		if k >= ks.Lo && k < ks.Hi {
			continue
		}
		c.pendRecs[keep] = c.pendRecs[i]
		c.pendKeys[keep] = k
		keep++
	}
	c.pendRecs = c.pendRecs[:keep]
	c.pendKeys = c.pendKeys[:keep]
}

// emitPend moves held records whose fate is settled into the output: all
// of them at an interval boundary, otherwise those below thr (the next
// page's first key — a held record at thr could still be darkened by that
// page failing).
func (c *storeCursor) emitPend(thr uint64, all bool) {
	j := len(c.pendKeys)
	if !all {
		j = sort.Search(j, func(i int) bool { return c.pendKeys[i] >= thr })
	}
	if j == 0 {
		return
	}
	c.outRecs = append(c.outRecs, c.pendRecs[:j]...)
	c.outKeys = append(c.outKeys, c.pendKeys[:j]...)
	n := copy(c.pendRecs, c.pendRecs[j:])
	c.pendRecs = c.pendRecs[:n]
	n = copy(c.pendKeys, c.pendKeys[j:])
	c.pendKeys = c.pendKeys[:n]
}
