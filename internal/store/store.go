// Package store implements the paper's secondary-memory application
// (Faloutsos [9, 10]; Jagadish [14] in the related work): a paged,
// bulk-loaded B+-tree over SFC keys with explicit page-I/O accounting.
//
// Multi-dimensional records are mapped to one-dimensional keys by a space
// filling curve and stored in fixed-capacity leaf pages in key order. A box
// query decomposes into curve intervals (query package); each interval is
// answered by a root-to-leaf descent plus a leaf scan. The number of
// *distinct pages read* is the disk cost — and it is governed by exactly
// the locality properties the paper studies: fragmented decompositions
// (many intervals → many descents) and stretched neighborhoods (related
// records scattered across pages) both inflate it.
//
// Leaf pages are fetched through a pluggable PageDevice. The default device
// is infallible RAM; installing a fallible device (see internal/faultio)
// turns on per-page checksum verification and bounded retry with
// exponential backoff, and RangeQueryDegraded answers queries even when
// pages stay dark — returning the records it could read plus the exact
// curve intervals it could not serve. On a proximity-preserving curve a
// lost page owns a contiguous curve segment, so that report stays short;
// its size is itself a locality metric.
package store

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/query"
)

// ErrPageUnavailable is the sentinel wrapped by every error reporting a leaf
// page that stayed unreadable after the retry budget; test with errors.Is.
var ErrPageUnavailable = errors.New("store: page unavailable")

// Record is a stored multi-dimensional point with an application payload.
type Record struct {
	Point   grid.Point
	Payload uint64
}

// Stats counts simulated I/O. LeafReads and InnerReads count *logical* page
// fetches (one per distinct page per operation, as in the classic cost
// model); the remaining fields account for the physical device traffic
// behind them, which diverges from the logical counts only under faults.
type Stats struct {
	LeafReads  int // leaf pages fetched
	InnerReads int // inner (index) pages fetched
	Descents   int // root-to-leaf searches performed

	DeviceReads      int           // physical ReadPage attempts, incl. retries
	Retries          int           // failed attempts that were retried
	ChecksumFailures int           // reads rejected by the per-page checksum
	PagesUnavailable int           // fetches abandoned after the retry budget
	Backoff          time.Duration // simulated retry backoff accrued
}

// Total returns total logical page reads.
func (s Stats) Total() int { return s.LeafReads + s.InnerReads }

// counters is the store's live accounting. Every field is atomic so that
// concurrent queries against one store — the normal mode under the service
// layer — accumulate without tearing, and Stats()/ResetStats are safe to
// call while queries are in flight.
type counters struct {
	leafReads        atomic.Int64
	innerReads       atomic.Int64
	descents         atomic.Int64
	deviceReads      atomic.Int64
	retries          atomic.Int64
	checksumFailures atomic.Int64
	pagesUnavailable atomic.Int64
	backoff          atomic.Int64 // nanoseconds
}

// snapshot reads each counter once. Concurrent writers may land between
// loads, so a snapshot taken mid-query is approximate; one taken while the
// store is quiescent is exact.
func (c *counters) snapshot() Stats {
	return Stats{
		LeafReads:        int(c.leafReads.Load()),
		InnerReads:       int(c.innerReads.Load()),
		Descents:         int(c.descents.Load()),
		DeviceReads:      int(c.deviceReads.Load()),
		Retries:          int(c.retries.Load()),
		ChecksumFailures: int(c.checksumFailures.Load()),
		PagesUnavailable: int(c.pagesUnavailable.Load()),
		Backoff:          time.Duration(c.backoff.Load()),
	}
}

func (c *counters) reset() {
	c.leafReads.Store(0)
	c.innerReads.Store(0)
	c.descents.Store(0)
	c.deviceReads.Store(0)
	c.retries.Store(0)
	c.checksumFailures.Store(0)
	c.pagesUnavailable.Store(0)
	c.backoff.Store(0)
}

// Store is a bulk-loaded, read-only B+-tree over curve keys.
type Store struct {
	c        curve.Curve
	pageSize int

	// Leaves: records sorted by key, chopped into pages of pageSize. The
	// key column doubles as the in-RAM leaf index; record *content* is only
	// reachable through the device.
	keys    []uint64 // one per record, sorted
	records []Record // aligned with keys; backs the default MemDevice

	// Inner levels, bottom-up: level[l][i] is the smallest key of node i's
	// subtree at level l; fanout children per node. level 0 indexes leaves.
	levels [][]uint64
	fanout int

	device PageDevice
	mem    *MemDevice // the trusted default device
	sums   []uint64   // per-page checksums, computed at bulkload
	verify bool       // verify checksums (on iff a non-default device is set)
	retry  RetryPolicy

	stats counters
}

// Bulkload builds a store over the records through the given curve. The
// input is not retained; records may share cells. Geometry, device and retry
// policy are set by functional options (WithPageSize, WithFanout,
// WithDevice, WithDeviceWrapper, WithRetryPolicy); the legacy Config struct
// also satisfies Option, so pre-option call sites compile unchanged.
func Bulkload(c curve.Curve, recs []Record, opts ...Option) (*Store, error) {
	cfg := buildConfig{pageSize: 64, fanout: 64}
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt.apply(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.pageSize < 2 || cfg.fanout < 2 {
		return nil, fmt.Errorf("store: page size %d / fanout %d too small", cfg.pageSize, cfg.fanout)
	}
	u := c.Universe()
	st := &Store{
		c:        c,
		pageSize: cfg.pageSize,
		fanout:   cfg.fanout,
		keys:     make([]uint64, len(recs)),
		records:  make([]Record, len(recs)),
		retry:    RetryPolicy{}.withDefaults(),
	}
	order := make([]int, len(recs))
	tmp := make([]uint64, len(recs))
	for i, r := range recs {
		if !u.Contains(r.Point) {
			return nil, fmt.Errorf("store: record %d at %v outside %v", i, r.Point, u)
		}
		tmp[i] = c.Index(r.Point)
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return tmp[order[a]] < tmp[order[b]] })
	for slot, i := range order {
		st.keys[slot] = tmp[i]
		st.records[slot] = Record{Point: recs[i].Point.Clone(), Payload: recs[i].Payload}
	}
	st.levels = buildLevels(st.keys, cfg.pageSize, cfg.fanout)
	numLeaves := (len(recs) + cfg.pageSize - 1) / cfg.pageSize
	st.mem = &MemDevice{pageSize: cfg.pageSize, keys: st.keys, records: st.records}
	st.device = st.mem
	st.sums = make([]uint64, numLeaves)
	for id := range st.sums {
		pg, _ := st.mem.ReadPage(id)
		st.sums[id] = pageChecksum(pg)
	}
	if cfg.retry != nil {
		if err := st.setRetryPolicy(*cfg.retry); err != nil {
			return nil, err
		}
	}
	if cfg.device != nil {
		if err := st.setDevice(cfg.device); err != nil {
			return nil, err
		}
	}
	if cfg.wrap != nil {
		dev, err := cfg.wrap(st.device)
		if err != nil {
			return nil, fmt.Errorf("store: device wrapper: %w", err)
		}
		if err := st.setDevice(dev); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// buildLevels constructs the inner index levels over a sorted key column:
// level 0 holds the first key of each leaf page, and each further level
// holds the first key of each fanout-sized group below, up to a single root.
func buildLevels(keys []uint64, pageSize, fanout int) [][]uint64 {
	var levels [][]uint64
	numLeaves := (len(keys) + pageSize - 1) / pageSize
	cur := make([]uint64, numLeaves)
	for i := range cur {
		cur[i] = keys[i*pageSize]
	}
	for len(cur) > 1 {
		levels = append(levels, cur)
		next := make([]uint64, (len(cur)+fanout-1)/fanout)
		for i := range next {
			next[i] = cur[i*fanout]
		}
		cur = next
	}
	if len(cur) == 1 {
		levels = append(levels, cur)
	}
	return levels
}

// Len returns the number of stored records. The key column is authoritative:
// stores opened from disk keep keys in RAM but leave record content on the
// device.
func (st *Store) Len() int { return len(st.keys) }

// Height returns the number of inner levels (0 for an empty store).
func (st *Store) Height() int { return len(st.levels) }

// PageSize returns the leaf page capacity in records.
func (st *Store) PageSize() int { return st.pageSize }

// NumPages returns the number of leaf pages.
func (st *Store) NumPages() int { return len(st.sums) }

// Stats returns a snapshot of the accumulated I/O counters. It is safe to
// call concurrently with queries; a snapshot taken mid-query is approximate.
func (st *Store) Stats() Stats { return st.stats.snapshot() }

// ResetStats clears the I/O counters. It is safe to call concurrently with
// queries (each counter is zeroed atomically).
func (st *Store) ResetStats() { st.stats.reset() }

// Device returns the page device leaf reads currently go through.
func (st *Store) Device() PageDevice { return st.device }

// DefaultDevice returns the trusted in-memory device built at bulkload, so
// a fallible device installed with WithDevice/SetDevice can be removed
// again.
func (st *Store) DefaultDevice() PageDevice { return st.mem }

// setDevice routes leaf reads through dev. Installing any device other than
// DefaultDevice() turns on checksum verification: every page fetched is
// checked against the bulkload-time checksum and rejected (and retried) on
// mismatch, so bit corruption on the I/O path can never surface silently.
func (st *Store) setDevice(dev PageDevice) error {
	if dev == nil {
		return errors.New("store: nil device")
	}
	if dev.NumPages() != st.NumPages() {
		return fmt.Errorf("store: device holds %d pages, store has %d", dev.NumPages(), st.NumPages())
	}
	st.device = dev
	st.verify = dev != PageDevice(st.mem)
	return nil
}

// SetDevice routes leaf reads through dev. Not safe to call concurrently
// with queries — install devices before serving.
//
// Deprecated: prefer the WithDevice or WithDeviceWrapper Bulkload options,
// which configure the device before the store is ever queried.
func (st *Store) SetDevice(dev PageDevice) error { return st.setDevice(dev) }

// setRetryPolicy replaces the retry policy used for fallible devices.
// Zero fields take their defaults.
func (st *Store) setRetryPolicy(rp RetryPolicy) error {
	rp = rp.withDefaults()
	if rp.MaxAttempts < 1 {
		return fmt.Errorf("store: retry MaxAttempts %d < 1", rp.MaxAttempts)
	}
	st.retry = rp
	return nil
}

// SetRetryPolicy replaces the retry policy used for fallible devices. Not
// safe to call concurrently with queries.
//
// Deprecated: prefer the WithRetryPolicy Bulkload option.
func (st *Store) SetRetryPolicy(rp RetryPolicy) error { return st.setRetryPolicy(rp) }

// fetchPage reads one leaf page through the device, retrying transient
// failures and checksum rejections up to the retry budget with simulated
// exponential backoff. Errors wrapping ErrPermanent short-circuit the loop.
func (st *Store) fetchPage(id int) (Page, error) {
	var lastErr error
	for attempt := 1; attempt <= st.retry.MaxAttempts; attempt++ {
		if attempt > 1 {
			st.stats.retries.Add(1)
			st.stats.backoff.Add(int64(st.retry.backoff(id, attempt-1)))
		}
		st.stats.deviceReads.Add(1)
		pg, err := st.device.ReadPage(id)
		if err != nil {
			lastErr = err
			if errors.Is(err, ErrPermanent) {
				break
			}
			continue
		}
		if st.verify && pageChecksum(pg) != st.sums[id] {
			st.stats.checksumFailures.Add(1)
			lastErr = fmt.Errorf("store: checksum mismatch on page %d", id)
			continue
		}
		return pg, nil
	}
	st.stats.pagesUnavailable.Add(1)
	return Page{}, fmt.Errorf("%w: page %d: %w", ErrPageUnavailable, id, lastErr)
}

// pageCache memoizes page fetches (including failed ones) for the duration
// of one query, preserving the classic cost model: LeafReads charges each
// distinct page once per operation regardless of physical retries.
type pageCache struct {
	st     *Store
	pages  map[int]Page
	failed map[int]error
}

func newPageCache(st *Store) *pageCache {
	return &pageCache{st: st, pages: map[int]Page{}, failed: map[int]error{}}
}

func (pc *pageCache) get(id int) (Page, error) {
	if pg, ok := pc.pages[id]; ok {
		return pg, nil
	}
	if err, ok := pc.failed[id]; ok {
		return Page{}, err
	}
	pc.st.stats.leafReads.Add(1)
	pg, err := pc.st.fetchPage(id)
	if err != nil {
		pc.failed[id] = err
		return Page{}, err
	}
	pc.pages[id] = pg
	return pg, nil
}

// descend simulates a root-to-leaf search for key, charging one inner read
// per level, and returns the index of the first record with key >= target.
func (st *Store) descend(target uint64) int {
	st.stats.descents.Add(1)
	// Walk levels top-down; each is one page read. (Node-granular charging
	// is a refinement; level-granular matches the classic analysis where
	// fanout is large and the path touches one node per level.)
	st.stats.innerReads.Add(int64(len(st.levels)))
	return sort.Search(len(st.keys), func(i int) bool { return st.keys[i] >= target })
}

// RangeQuery returns all records inside the box, charging one descent per
// curve interval and one leaf read per distinct leaf page touched. It is
// strict: the first page that stays unavailable after the retry budget
// fails the whole query (errors.Is(err, ErrPageUnavailable)). Use
// RangeQueryDegraded to get partial results with an explicit report of the
// unserved curve intervals instead.
//
// Deprecated: use ScanBox with ScanStrict.
func (st *Store) RangeQuery(b query.Box) ([]Record, error) {
	return st.RangeContext(context.Background(), b)
}

// RangeContext is RangeQuery honoring a context: cancellation and deadline
// are checked between leaf page reads, so a query over many pages stops
// within one page fetch of the context ending.
//
// Deprecated: use ScanBox with ScanStrict.
func (st *Store) RangeContext(ctx context.Context, b query.Box) ([]Record, error) {
	return st.RangeIntervals(ctx, query.DecomposeBox(st.c, b))
}

// RangeIntervals answers a pre-decomposed strict query over sorted,
// disjoint curve intervals and returns the records whose keys they contain,
// in curve order.
//
// Deprecated: use Scan with ScanStrict.
func (st *Store) RangeIntervals(ctx context.Context, ivs []query.Interval) ([]Record, error) {
	res, err := st.Scan(ctx, ivs, ScanStrict())
	if err != nil {
		return nil, err
	}
	return res.Records, nil
}

// BoxQuery is the historical entry point: it answers the box query in
// degraded mode and returns just the records. With the default in-memory
// device reads cannot fail and BoxQuery is exactly RangeQuery; with a
// fallible device, records on dark pages are omitted — callers that need
// to know *which* curve intervals went dark must use RangeQueryDegraded.
func (st *Store) BoxQuery(b query.Box) []Record {
	return st.RangeQueryDegraded(b).Records
}

// PointQuery returns the records stored exactly at p, charging one descent
// and one leaf read per distinct page holding matches (or one read for a
// miss — the page that would hold the key is still fetched). With a
// fallible device, records on unavailable pages are omitted and show up in
// Stats.PagesUnavailable.
func (st *Store) PointQuery(p grid.Point) []Record {
	target := st.c.Index(p)
	i := st.descend(target)
	cache := newPageCache(st)
	var out []Record
	touched := false
	for ; i < len(st.keys) && st.keys[i] == target; i++ {
		touched = true
		pg, err := cache.get(i / st.pageSize)
		if err != nil {
			continue
		}
		out = append(out, pg.Records[i%st.pageSize])
	}
	if !touched && len(st.keys) > 0 {
		// Miss: fetch the page that would hold the key.
		slot := i
		if slot == len(st.keys) {
			slot--
		}
		cache.get(slot / st.pageSize)
	}
	return out
}

// NeighborSweep visits, for every record, the records in the 2d neighboring
// cells of its cell — the access pattern of a stencil or N-body pass run
// straight off the store — and returns the I/O charged. Page reads are
// charged against an LRU cache of cachePages pages, so the result measures
// locality: a curve that keeps neighbor cells on nearby pages hits the
// cache, a stretched one faults. The sweep is strict: it fails on the first
// page the device cannot serve.
func (st *Store) NeighborSweep(cachePages int) (Stats, error) {
	if cachePages < 1 {
		return Stats{}, fmt.Errorf("store: cache of %d pages", cachePages)
	}
	st.ResetStats()
	u := st.c.Universe()
	cache := newLRU(cachePages)
	resident := map[int]Page{} // content of pages currently in the LRU
	readPage := func(page int) (Page, error) {
		hit, evicted := cache.access(page)
		if evicted >= 0 {
			delete(resident, evicted)
		}
		if hit {
			return resident[page], nil
		}
		st.stats.leafReads.Add(1)
		pg, err := st.fetchPage(page)
		if err != nil {
			return Page{}, err
		}
		resident[page] = pg
		return pg, nil
	}
	var sweepErr error
	for i := range st.keys {
		pg, err := readPage(i / st.pageSize)
		if err != nil {
			return st.Stats(), err
		}
		u.Neighbors(pg.Records[i%st.pageSize].Point, func(_ int, nb grid.Point) {
			if sweepErr != nil {
				return
			}
			target := st.c.Index(nb)
			j := sort.Search(len(st.keys), func(k int) bool { return st.keys[k] >= target })
			for ; j < len(st.keys) && st.keys[j] == target; j++ {
				if _, err := readPage(j / st.pageSize); err != nil {
					sweepErr = err
					return
				}
			}
		})
		if sweepErr != nil {
			return st.Stats(), sweepErr
		}
	}
	return st.Stats(), nil
}

// lru is a minimal LRU set of page ids.
type lru struct {
	cap   int
	order []int // most recent last
	in    map[int]bool
}

func newLRU(cap int) *lru { return &lru{cap: cap, in: map[int]bool{}} }

// access touches a page, reporting a hit and the page evicted to admit it
// (-1 when nothing was evicted).
func (l *lru) access(page int) (hit bool, evicted int) {
	if l.in[page] {
		// Move to back.
		for i, p := range l.order {
			if p == page {
				l.order = append(append(l.order[:i:i], l.order[i+1:]...), page)
				break
			}
		}
		return true, -1
	}
	l.in[page] = true
	l.order = append(l.order, page)
	if len(l.order) > l.cap {
		evict := l.order[0]
		l.order = l.order[1:]
		delete(l.in, evict)
		return false, evict
	}
	return false, -1
}
