// Package store implements the paper's secondary-memory application
// (Faloutsos [9, 10]; Jagadish [14] in the related work): a paged,
// bulk-loaded B+-tree over SFC keys with explicit page-I/O accounting.
//
// Multi-dimensional records are mapped to one-dimensional keys by a space
// filling curve and stored in fixed-capacity leaf pages in key order. A box
// query decomposes into curve intervals (query package); each interval is
// answered by a root-to-leaf descent plus a leaf scan. The number of
// *distinct pages read* is the disk cost — and it is governed by exactly
// the locality properties the paper studies: fragmented decompositions
// (many intervals → many descents) and stretched neighborhoods (related
// records scattered across pages) both inflate it.
package store

import (
	"fmt"
	"sort"

	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/query"
)

// Record is a stored multi-dimensional point with an application payload.
type Record struct {
	Point   grid.Point
	Payload uint64
}

// Stats counts simulated I/O.
type Stats struct {
	LeafReads  int // leaf pages fetched
	InnerReads int // inner (index) pages fetched
	Descents   int // root-to-leaf searches performed
}

// Total returns total page reads.
func (s Stats) Total() int { return s.LeafReads + s.InnerReads }

// Store is a bulk-loaded, read-only B+-tree over curve keys.
type Store struct {
	c        curve.Curve
	pageSize int

	// Leaves: records sorted by key, chopped into pages of pageSize.
	keys    []uint64 // one per record, sorted
	records []Record // aligned with keys

	// Inner levels, bottom-up: level[l][i] is the smallest key of node i's
	// subtree at level l; fanout children per node. level 0 indexes leaves.
	levels [][]uint64
	fanout int

	stats Stats
}

// Config tunes the store geometry.
type Config struct {
	PageSize int // records per leaf page (default 64)
	Fanout   int // children per inner node (default 64)
}

// Bulkload builds a store over the records through the given curve. The
// input is not retained; records may share cells.
func Bulkload(c curve.Curve, recs []Record, cfg Config) (*Store, error) {
	if cfg.PageSize == 0 {
		cfg.PageSize = 64
	}
	if cfg.Fanout == 0 {
		cfg.Fanout = 64
	}
	if cfg.PageSize < 2 || cfg.Fanout < 2 {
		return nil, fmt.Errorf("store: page size %d / fanout %d too small", cfg.PageSize, cfg.Fanout)
	}
	u := c.Universe()
	st := &Store{
		c:        c,
		pageSize: cfg.PageSize,
		fanout:   cfg.Fanout,
		keys:     make([]uint64, len(recs)),
		records:  make([]Record, len(recs)),
	}
	order := make([]int, len(recs))
	tmp := make([]uint64, len(recs))
	for i, r := range recs {
		if !u.Contains(r.Point) {
			return nil, fmt.Errorf("store: record %d at %v outside %v", i, r.Point, u)
		}
		tmp[i] = c.Index(r.Point)
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return tmp[order[a]] < tmp[order[b]] })
	for slot, i := range order {
		st.keys[slot] = tmp[i]
		st.records[slot] = Record{Point: recs[i].Point.Clone(), Payload: recs[i].Payload}
	}
	// Build inner levels over leaf pages.
	numLeaves := (len(recs) + cfg.PageSize - 1) / cfg.PageSize
	cur := make([]uint64, numLeaves)
	for i := range cur {
		cur[i] = st.keys[i*cfg.PageSize]
	}
	for len(cur) > 1 {
		st.levels = append(st.levels, cur)
		next := make([]uint64, (len(cur)+cfg.Fanout-1)/cfg.Fanout)
		for i := range next {
			next[i] = cur[i*cfg.Fanout]
		}
		cur = next
	}
	if len(cur) == 1 {
		st.levels = append(st.levels, cur)
	}
	return st, nil
}

// Len returns the number of stored records.
func (st *Store) Len() int { return len(st.records) }

// Height returns the number of inner levels (0 for an empty store).
func (st *Store) Height() int { return len(st.levels) }

// Stats returns the accumulated I/O counters.
func (st *Store) Stats() Stats { return st.stats }

// ResetStats clears the I/O counters.
func (st *Store) ResetStats() { st.stats = Stats{} }

// descend simulates a root-to-leaf search for key, charging one inner read
// per level, and returns the index of the first record with key >= target.
func (st *Store) descend(target uint64) int {
	st.stats.Descents++
	// Walk levels top-down; each is one page read. (Node-granular charging
	// is a refinement; level-granular matches the classic analysis where
	// fanout is large and the path touches one node per level.)
	st.stats.InnerReads += len(st.levels)
	return sort.Search(len(st.keys), func(i int) bool { return st.keys[i] >= target })
}

// BoxQuery returns all records inside the box and charges I/O: one descent
// per curve interval and one leaf read per distinct leaf page touched.
func (st *Store) BoxQuery(b query.Box) []Record {
	var out []Record
	touched := map[int]bool{}
	for _, iv := range query.DecomposeBox(st.c, b) {
		lo := st.descend(iv.Lo)
		for i := lo; i < len(st.keys) && st.keys[i] < iv.Hi; i++ {
			page := i / st.pageSize
			if !touched[page] {
				touched[page] = true
				st.stats.LeafReads++
			}
			out = append(out, st.records[i])
		}
	}
	return out
}

// PointQuery returns the records stored exactly at p, charging one descent
// and one leaf read per distinct page holding matches (or one read for a
// miss — the page that would hold the key is still fetched).
func (st *Store) PointQuery(p grid.Point) []Record {
	target := st.c.Index(p)
	i := st.descend(target)
	var out []Record
	lastPage := -1
	for ; i < len(st.keys) && st.keys[i] == target; i++ {
		if page := i / st.pageSize; page != lastPage {
			lastPage = page
			st.stats.LeafReads++
		}
		out = append(out, st.records[i])
	}
	if lastPage == -1 && len(st.keys) > 0 {
		st.stats.LeafReads++
	}
	return out
}

// NeighborSweep visits, for every record, the records in the 2d neighboring
// cells of its cell — the access pattern of a stencil or N-body pass run
// straight off the store — and returns the I/O charged. Page reads are
// charged against an LRU cache of cachePages pages, so the result measures
// locality: a curve that keeps neighbor cells on nearby pages hits the
// cache, a stretched one faults.
func (st *Store) NeighborSweep(cachePages int) (Stats, error) {
	if cachePages < 1 {
		return Stats{}, fmt.Errorf("store: cache of %d pages", cachePages)
	}
	st.ResetStats()
	u := st.c.Universe()
	cache := newLRU(cachePages)
	readPage := func(page int) {
		if !cache.access(page) {
			st.stats.LeafReads++
		}
	}
	for i := range st.records {
		readPage(i / st.pageSize)
		u.Neighbors(st.records[i].Point, func(_ int, nb grid.Point) {
			target := st.c.Index(nb)
			j := sort.Search(len(st.keys), func(k int) bool { return st.keys[k] >= target })
			for ; j < len(st.keys) && st.keys[j] == target; j++ {
				readPage(j / st.pageSize)
			}
		})
	}
	return st.stats, nil
}

// lru is a minimal LRU set of page ids.
type lru struct {
	cap   int
	order []int // most recent last
	in    map[int]bool
}

func newLRU(cap int) *lru { return &lru{cap: cap, in: map[int]bool{}} }

// access touches a page, returning true on a hit.
func (l *lru) access(page int) bool {
	if l.in[page] {
		// Move to back.
		for i, p := range l.order {
			if p == page {
				l.order = append(append(l.order[:i:i], l.order[i+1:]...), page)
				break
			}
		}
		return true
	}
	l.in[page] = true
	l.order = append(l.order, page)
	if len(l.order) > l.cap {
		evict := l.order[0]
		l.order = l.order[1:]
		delete(l.in, evict)
	}
	return false
}
