package store_test

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/curve"
	"repro/internal/faultio"
	"repro/internal/grid"
	"repro/internal/query"
	"repro/internal/store"
)

func buildStore(t *testing.T, u *grid.Universe, name string, n int, seed int64, cfg store.Config) (curve.Curve, []store.Record, *store.Store) {
	t.Helper()
	c, err := curve.ByName(name, u, seed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	recs := make([]store.Record, n)
	for i := range recs {
		p := u.NewPoint()
		for j := range p {
			p[j] = uint32(rng.Intn(int(u.Side())))
		}
		recs[i] = store.Record{Point: p, Payload: uint64(i)}
	}
	st, err := store.Bulkload(c, recs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, recs, st
}

// TestDegradedZeroOverheadProperty is the zero-overhead guarantee: with the
// injector disabled (and with no injector at all), RangeQueryDegraded
// returns byte-identical records and identical Stats to RangeQuery, across
// curves, page geometries and query boxes.
func TestDegradedZeroOverheadProperty(t *testing.T) {
	u := grid.MustNew(2, 5)
	rng := rand.New(rand.NewSource(99))
	for _, name := range curve.Names() {
		for _, ps := range []int{2, 8, 64} {
			_, _, st := buildStore(t, u, name, 1500, 17, store.Config{PageSize: ps, Fanout: 4})
			// Half the configurations also get a disabled injector in the
			// read path, so the wrapper itself is covered.
			if ps != 8 {
				inj, err := faultio.Wrap(st.DefaultDevice(), faultio.Config{Seed: 5})
				if err != nil {
					t.Fatal(err)
				}
				if err := st.SetDevice(inj); err != nil {
					t.Fatal(err)
				}
			}
			for q := 0; q < 8; q++ {
				b := randomTestBox(rng, u)
				st.ResetStats()
				strict, err := st.RangeQuery(b)
				if err != nil {
					t.Fatalf("%s ps=%d: strict query failed without faults: %v", name, ps, err)
				}
				strictStats := st.Stats()
				st.ResetStats()
				deg := st.RangeQueryDegraded(b)
				if !deg.Complete() {
					t.Fatalf("%s ps=%d: %d dark intervals without faults", name, ps, len(deg.Unavailable))
				}
				if !reflect.DeepEqual(strict, deg.Records) {
					t.Fatalf("%s ps=%d: degraded records differ from strict", name, ps)
				}
				if got := st.Stats(); got != strictStats {
					t.Fatalf("%s ps=%d: degraded stats %+v, strict %+v", name, ps, got, strictStats)
				}
			}
		}
	}
}

func randomTestBox(rng *rand.Rand, u *grid.Universe) query.Box {
	lo := u.NewPoint()
	hi := u.NewPoint()
	for j := range lo {
		a := uint32(rng.Intn(int(u.Side())))
		b := uint32(rng.Intn(int(u.Side())))
		if a > b {
			a, b = b, a
		}
		lo[j], hi[j] = a, b
	}
	b, err := query.NewBox(u, lo, hi)
	if err != nil {
		panic(err)
	}
	return b
}

// TestDegradedLostPages kills explicit pages and checks the degraded
// report: returned records plus dark intervals exactly cover the box, and
// the dark intervals stay within the box's curve footprint.
func TestDegradedLostPages(t *testing.T) {
	u := grid.MustNew(2, 5)
	c, recs, st := buildStore(t, u, "hilbert", 2000, 3, store.Config{PageSize: 8, Fanout: 4})
	lost := []int{0, 7, 8, 31, st.NumPages() - 1}
	inj, err := faultio.Wrap(st.DefaultDevice(), faultio.Config{Seed: 1, LostPages: lost})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetDevice(inj); err != nil {
		t.Fatal(err)
	}
	full, err := query.NewBox(u, u.NewPoint(), u.MustPoint(u.Side()-1, u.Side()-1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.RangeQuery(full); !errors.Is(err, store.ErrPageUnavailable) {
		t.Fatalf("strict query over lost pages: err = %v, want ErrPageUnavailable", err)
	}
	st.ResetStats()
	res := st.RangeQueryDegraded(full)
	if res.Complete() {
		t.Fatal("query over lost pages reported complete")
	}
	dark := func(key uint64) bool {
		for _, iv := range res.Unavailable {
			if key >= iv.Lo && key < iv.Hi {
				return true
			}
		}
		return false
	}
	want := 0
	for _, r := range recs {
		if !dark(c.Index(r.Point)) {
			want++
		}
	}
	if len(res.Records) != want {
		t.Fatalf("served %d records, want %d (ground truth minus dark intervals)", len(res.Records), want)
	}
	for _, r := range res.Records {
		if dark(c.Index(r.Point)) {
			t.Fatalf("record %v returned from a dark interval", r.Point)
		}
	}
	// Each lost page's key span must be dark.
	for _, iv := range res.Unavailable {
		if iv.Lo >= iv.Hi {
			t.Fatalf("degenerate dark interval %+v", iv)
		}
	}
	if st.Stats().PagesUnavailable != len(lost) {
		t.Fatalf("PagesUnavailable = %d, lost %d pages", st.Stats().PagesUnavailable, len(lost))
	}
}

// TestChecksumCatchesCorruption forces corruption on every read and checks
// that the store never returns a corrupted record: reads are rejected,
// retried, and ultimately reported unavailable rather than served wrong.
func TestChecksumCatchesCorruption(t *testing.T) {
	u := grid.MustNew(2, 4)
	_, _, st := buildStore(t, u, "z", 600, 9, store.Config{PageSize: 8, Fanout: 4})
	inj, err := faultio.Wrap(st.DefaultDevice(), faultio.Config{Seed: 2, CorruptProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetDevice(inj); err != nil {
		t.Fatal(err)
	}
	full, err := query.NewBox(u, u.NewPoint(), u.MustPoint(u.Side()-1, u.Side()-1))
	if err != nil {
		t.Fatal(err)
	}
	res := st.RangeQueryDegraded(full)
	if len(res.Records) != 0 {
		t.Fatalf("%d records served despite always-corrupting device", len(res.Records))
	}
	stats := st.Stats()
	if got, want := uint64(stats.ChecksumFailures), inj.Counters().Corruptions; got != want {
		t.Fatalf("detected %d corruptions, injected %d", got, want)
	}
	if stats.Retries == 0 || stats.Backoff == 0 {
		t.Fatalf("corrupted reads should retry with backoff, stats %+v", stats)
	}
}

// TestSetDeviceValidation covers the device plumbing error paths.
func TestSetDeviceValidation(t *testing.T) {
	u := grid.MustNew(2, 3)
	_, _, st := buildStore(t, u, "z", 100, 1, store.Config{PageSize: 4, Fanout: 4})
	if err := st.SetDevice(nil); err == nil {
		t.Fatal("nil device accepted")
	}
	_, _, other := buildStore(t, u, "z", 10, 1, store.Config{PageSize: 4, Fanout: 4})
	if err := st.SetDevice(other.DefaultDevice()); err == nil {
		t.Fatal("mismatched device accepted")
	}
	if err := st.SetDevice(st.DefaultDevice()); err != nil {
		t.Fatal(err)
	}
	if err := st.SetRetryPolicy(store.RetryPolicy{MaxAttempts: -1}); err == nil {
		t.Fatal("negative MaxAttempts accepted")
	}
	if err := st.SetRetryPolicy(store.RetryPolicy{MaxAttempts: 2}); err != nil {
		t.Fatal(err)
	}
}
