package store

import (
	"math/rand"
	"testing"

	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/query"
)

func randomRecords(u *grid.Universe, n int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]Record, n)
	for i := range recs {
		p := u.NewPoint()
		for j := range p {
			p[j] = uint32(rng.Intn(int(u.Side())))
		}
		recs[i] = Record{Point: p, Payload: uint64(i)}
	}
	return recs
}

func TestBulkloadValidation(t *testing.T) {
	u := grid.MustNew(2, 3)
	z := curve.NewZ(u)
	if _, err := Bulkload(z, []Record{{Point: grid.Point{99, 0}}}, Config{}); err == nil {
		t.Fatal("out-of-universe record accepted")
	}
	if _, err := Bulkload(z, nil, Config{PageSize: 1}); err == nil {
		t.Fatal("page size 1 accepted")
	}
	if _, err := Bulkload(z, nil, Config{Fanout: 1}); err == nil {
		t.Fatal("fanout 1 accepted")
	}
	st, err := Bulkload(z, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 0 {
		t.Fatal("empty store has records")
	}
}

func TestRecordsSortedAndComplete(t *testing.T) {
	u := grid.MustNew(2, 5)
	h := curve.NewHilbert(u)
	recs := randomRecords(u, 3000, 1)
	st, err := Bulkload(h, recs, Config{PageSize: 16, Fanout: 8})
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 3000 {
		t.Fatalf("Len = %d", st.Len())
	}
	for i := 1; i < len(st.keys); i++ {
		if st.keys[i] < st.keys[i-1] {
			t.Fatal("keys not sorted")
		}
	}
	// Payload multiset preserved and keys aligned with record cells.
	seen := make([]bool, 3000)
	for slot, r := range st.records {
		if seen[r.Payload] {
			t.Fatal("payload duplicated")
		}
		seen[r.Payload] = true
		if h.Index(r.Point) != st.keys[slot] {
			t.Fatalf("slot %d: key %d, record cell maps to %d", slot, st.keys[slot], h.Index(r.Point))
		}
	}
	if st.Height() < 2 {
		t.Fatalf("height %d for 188 leaves at fanout 8", st.Height())
	}
}

func TestBoxQueryMatchesScan(t *testing.T) {
	u := grid.MustNew(2, 5)
	recs := randomRecords(u, 2000, 7)
	b, err := query.NewBox(u, u.MustPoint(5, 9), u.MustPoint(20, 27))
	if err != nil {
		t.Fatal(err)
	}
	var want int
	for _, r := range recs {
		if b.Contains(r.Point) {
			want++
		}
	}
	for _, name := range curve.Names() {
		c, err := curve.ByName(name, u, 3)
		if err != nil {
			t.Fatal(err)
		}
		st, err := Bulkload(c, recs, Config{PageSize: 32, Fanout: 16})
		if err != nil {
			t.Fatal(err)
		}
		got := st.BoxQuery(b)
		if len(got) != want {
			t.Errorf("%s: box query %d records, scan %d", name, len(got), want)
		}
		for _, r := range got {
			if !b.Contains(r.Point) {
				t.Errorf("%s: record %v outside box", name, r.Point)
			}
		}
		stats := st.Stats()
		if stats.Descents == 0 || stats.InnerReads == 0 || (want > 0 && stats.LeafReads == 0) {
			t.Errorf("%s: degenerate stats %+v", name, stats)
		}
	}
}

func TestPointQuery(t *testing.T) {
	u := grid.MustNew(2, 4)
	z := curve.NewZ(u)
	recs := []Record{
		{Point: u.MustPoint(3, 4), Payload: 1},
		{Point: u.MustPoint(3, 4), Payload: 2},
		{Point: u.MustPoint(9, 9), Payload: 3},
	}
	st, err := Bulkload(z, recs, Config{PageSize: 2, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := st.PointQuery(u.MustPoint(3, 4))
	if len(got) != 2 {
		t.Fatalf("point query returned %d", len(got))
	}
	if miss := st.PointQuery(u.MustPoint(0, 0)); len(miss) != 0 {
		t.Fatal("miss returned records")
	}
	if st.Stats().Descents != 2 {
		t.Fatalf("descents %d", st.Stats().Descents)
	}
	st.ResetStats()
	if st.Stats().Total() != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestBoxQueryIOFragmentationOrdering(t *testing.T) {
	// The I/O cost tracks the clustering metric: for square boxes the
	// Hilbert store does fewer descents (fewer intervals) than the Z store.
	u := grid.MustNew(2, 6)
	recs := randomRecords(u, 6000, 11)
	run := func(name string) Stats {
		c, err := curve.ByName(name, u, 1)
		if err != nil {
			t.Fatal(err)
		}
		st, err := Bulkload(c, recs, Config{PageSize: 32, Fanout: 16})
		if err != nil {
			t.Fatal(err)
		}
		for x := uint32(0); x+16 <= u.Side(); x += 16 {
			for y := uint32(0); y+16 <= u.Side(); y += 16 {
				b, err := query.NewBox(u, u.MustPoint(x+1, y+2), u.MustPoint(x+12, y+13))
				if err != nil {
					t.Fatal(err)
				}
				st.BoxQuery(b)
			}
		}
		return st.Stats()
	}
	hs := run("hilbert")
	zs := run("z")
	if hs.Descents >= zs.Descents {
		t.Errorf("hilbert descents %d not below z %d", hs.Descents, zs.Descents)
	}
}

func TestNeighborSweepLocalityOrdering(t *testing.T) {
	// With a small LRU cache, the stencil sweep faults far more under the
	// random bijection than under any structured curve — the store-level
	// restatement of the paper's stretch story.
	u := grid.MustNew(2, 5)
	recs := randomRecords(u, 4000, 13)
	run := func(name string) int {
		c, err := curve.ByName(name, u, 5)
		if err != nil {
			t.Fatal(err)
		}
		st, err := Bulkload(c, recs, Config{PageSize: 32, Fanout: 16})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := st.NeighborSweep(8)
		if err != nil {
			t.Fatal(err)
		}
		return stats.LeafReads
	}
	random := run("random")
	for _, name := range []string{"hilbert", "z", "snake", "simple"} {
		if faults := run(name); faults*2 > random {
			t.Errorf("%s sweep faults %d not ≪ random %d", name, faults, random)
		}
	}
	// Cache validation.
	c := curve.NewZ(u)
	st, err := Bulkload(c, recs[:10], Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.NeighborSweep(0); err == nil {
		t.Fatal("cache of 0 pages accepted")
	}
}

func TestLRU(t *testing.T) {
	l := newLRU(2)
	hit := func(page int) bool { h, _ := l.access(page); return h }
	if hit(1) {
		t.Fatal("cold hit")
	}
	if !hit(1) {
		t.Fatal("warm miss")
	}
	hit(2)
	if _, evicted := l.access(3); evicted != 1 {
		t.Fatalf("admitting 3 evicted %d, want 1", evicted)
	}
	if hit(1) {
		t.Fatal("evicted page hit")
	}
	if !hit(3) || !hit(1) {
		t.Fatal("resident pages missed")
	}
	if hit(2) {
		t.Fatal("page 2 should have been evicted by re-admitting 1")
	}
}
