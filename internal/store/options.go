package store

import "fmt"

// buildConfig is the resolved Bulkload configuration after every Option has
// been applied.
type buildConfig struct {
	pageSize int
	fanout   int
	device   PageDevice
	wrap     func(PageDevice) (PageDevice, error)
	retry    *RetryPolicy
}

// Option configures Bulkload. Options are applied in order; later options
// override earlier ones. The legacy Config struct satisfies Option, so old
// Bulkload(c, recs, cfg) call sites compile unchanged.
type Option interface {
	apply(*buildConfig) error
}

// optionFunc adapts a function to the Option interface.
type optionFunc func(*buildConfig) error

func (f optionFunc) apply(b *buildConfig) error { return f(b) }

// WithPageSize sets the leaf page capacity in records (default 64, min 2).
func WithPageSize(n int) Option {
	return optionFunc(func(b *buildConfig) error {
		if n < 2 {
			return fmt.Errorf("store: page size %d too small", n)
		}
		b.pageSize = n
		return nil
	})
}

// WithFanout sets the inner-node fanout (default 64, min 2).
func WithFanout(n int) Option {
	return optionFunc(func(b *buildConfig) error {
		if n < 2 {
			return fmt.Errorf("store: fanout %d too small", n)
		}
		b.fanout = n
		return nil
	})
}

// WithDevice routes leaf reads through dev from the moment the store is
// built. The device must hold exactly the store's page count; installing any
// device other than the default turns on per-page checksum verification.
// Mutually exclusive with WithDeviceWrapper (the last one wins).
func WithDevice(dev PageDevice) Option {
	return optionFunc(func(b *buildConfig) error {
		if dev == nil {
			return fmt.Errorf("store: WithDevice(nil)")
		}
		b.device, b.wrap = dev, nil
		return nil
	})
}

// WithDeviceWrapper wraps the default in-memory device with wrap after the
// store is built — the natural hook for fault injectors, which need the
// bulkloaded device to exist before they can wrap it:
//
//	store.Bulkload(c, recs, store.WithDeviceWrapper(func(d store.PageDevice) (store.PageDevice, error) {
//		return faultio.Wrap(d, cfg)
//	}))
func WithDeviceWrapper(wrap func(PageDevice) (PageDevice, error)) Option {
	return optionFunc(func(b *buildConfig) error {
		if wrap == nil {
			return fmt.Errorf("store: WithDeviceWrapper(nil)")
		}
		b.wrap, b.device = wrap, nil
		return nil
	})
}

// WithRetryPolicy sets the retry policy used for fallible devices. Zero
// fields take their defaults.
func WithRetryPolicy(rp RetryPolicy) Option {
	return optionFunc(func(b *buildConfig) error {
		b.retry = &rp
		return nil
	})
}

// Config tunes the store geometry. It satisfies Option so that the
// pre-functional-options Bulkload signature keeps compiling; zero fields
// leave the defaults in place.
//
// Deprecated: pass WithPageSize / WithFanout instead.
type Config struct {
	PageSize int // records per leaf page (default 64)
	Fanout   int // children per inner node (default 64)
}

func (cfg Config) apply(b *buildConfig) error {
	if cfg.PageSize != 0 {
		b.pageSize = cfg.PageSize
	}
	if cfg.Fanout != 0 {
		b.fanout = cfg.Fanout
	}
	return nil
}
