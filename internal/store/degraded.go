package store

import (
	"context"
	"sort"

	"repro/internal/query"
)

// DegradedResult is the outcome of RangeQueryDegraded: every record the
// store could read, plus an explicit description of the part of the query
// it could not serve.
type DegradedResult struct {
	// Records holds the readable records inside the box, in curve-interval
	// scan order (the same order RangeQuery returns).
	Records []Record
	// Unavailable lists the curve-index intervals the store could not
	// serve: sorted, disjoint, merged, and each contained in the query
	// box's curve footprint. Together with Records it tiles the query
	// exactly: a record of the box is in Records iff its curve key lies
	// outside every unavailable interval. On a proximity-preserving curve
	// a dead page owns a contiguous curve segment, so this report stays
	// short — its length is itself a locality metric.
	Unavailable []query.Interval
	// PagesRead counts the distinct leaf pages this call touched,
	// including pages that stayed dark. The service layer aggregates it
	// into its pages-read metric without having to diff cumulative store
	// stats under concurrency.
	PagesRead int
}

// Complete reports whether the whole query was served.
func (r DegradedResult) Complete() bool { return len(r.Unavailable) == 0 }

// RangeQueryDegraded answers a box query on a best-effort basis. Pages that
// stay unavailable after the retry budget do not fail the query: their key
// spans are subtracted from the result and reported as dark curve
// intervals. With the default in-memory device (or a fault injector that
// injects nothing) it returns byte-identical records and identical Stats to
// RangeQuery — degraded mode costs nothing when nothing fails.
func (st *Store) RangeQueryDegraded(b query.Box) DegradedResult {
	res, _ := st.RangeDegradedContext(context.Background(), b)
	return res
}

// RangeDegradedContext is RangeQueryDegraded honoring a context: the
// context is checked between leaf page reads and a cancellation aborts the
// query with the context's error (a canceled query is not "degraded" — no
// dark intervals are fabricated for the part it never attempted).
func (st *Store) RangeDegradedContext(ctx context.Context, b query.Box) (DegradedResult, error) {
	return st.RangeIntervalsDegraded(ctx, query.DecomposeBox(st.c, b))
}

// RangeIntervalsDegraded answers a pre-decomposed degraded query over
// sorted, disjoint curve intervals (as produced by query.DecomposeBox or a
// shared decomposition cache). The service layer uses it to reuse one
// cached decomposition across every shard a query routes to.
func (st *Store) RangeIntervalsDegraded(ctx context.Context, ivs []query.Interval) (DegradedResult, error) {
	cache := newPageCache(st)
	type span struct {
		iv     query.Interval
		lo, hi int // slot range [lo, hi) of records inside iv
	}
	spans := make([]span, 0, len(ivs))
	for _, iv := range ivs {
		lo := st.descend(iv.Lo)
		hi := lo + sort.Search(len(st.keys)-lo, func(i int) bool { return st.keys[lo+i] >= iv.Hi })
		spans = append(spans, span{iv: iv, lo: lo, hi: hi})
	}
	// Pass 1: fetch every page the query touches, in the same order
	// RangeQuery would, and collect the dark key spans of failed pages.
	var dark []query.Interval
	for _, sp := range spans {
		if sp.lo == sp.hi {
			continue
		}
		for page := sp.lo / st.pageSize; page <= (sp.hi-1)/st.pageSize; page++ {
			if err := ctx.Err(); err != nil {
				return DegradedResult{}, err
			}
			if _, err := cache.get(page); err == nil {
				continue
			}
			ks := st.pageKeySpan(page)
			if ks.Lo < sp.iv.Lo {
				ks.Lo = sp.iv.Lo
			}
			if ks.Hi > sp.iv.Hi {
				ks.Hi = sp.iv.Hi
			}
			if ks.Lo < ks.Hi {
				dark = append(dark, ks)
			}
		}
	}
	dark = query.MergeIntervals(dark)
	// Pass 2: collect records, skipping dark pages and any record whose key
	// falls in a dark interval (duplicate keys straddling a page boundary
	// are only partially readable, so the whole key goes dark).
	var out []Record
	cur := -1 // memoize the scan's current page: pages arrive consecutively
	var pg Page
	var pgErr error
	for _, sp := range spans {
		for i := sp.lo; i < sp.hi; i++ {
			if id := i / st.pageSize; id != cur {
				pg, pgErr = cache.get(id)
				cur = id
			}
			if pgErr != nil || query.IntervalsContain(dark, st.keys[i]) {
				continue
			}
			out = append(out, pg.Records[i%st.pageSize])
		}
	}
	return DegradedResult{
		Records:     out,
		Unavailable: dark,
		PagesRead:   len(cache.pages) + len(cache.failed),
	}, nil
}

// pageKeySpan returns the half-open curve-key range [first, last+1] covered
// by the records of the given page.
func (st *Store) pageKeySpan(page int) query.Interval {
	lo := page * st.pageSize
	hi := lo + st.pageSize
	if hi > len(st.keys) {
		hi = len(st.keys)
	}
	return query.Interval{Lo: st.keys[lo], Hi: st.keys[hi-1] + 1}
}
