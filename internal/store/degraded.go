package store

import (
	"context"

	"repro/internal/query"
)

// DegradedResult is the outcome of the deprecated RangeQueryDegraded family:
// every record the store could read, plus an explicit description of the
// part of the query it could not serve. It mirrors ScanResult field for
// field; new callers use Scan and ScanResult directly.
type DegradedResult struct {
	// Records holds the readable records inside the box, in curve-interval
	// scan order (the same order RangeQuery returns).
	Records []Record
	// Unavailable lists the curve-index intervals the store could not
	// serve: sorted, disjoint, merged, and each contained in the query
	// box's curve footprint. Together with Records it tiles the query
	// exactly: a record of the box is in Records iff its curve key lies
	// outside every unavailable interval. On a proximity-preserving curve
	// a dead page owns a contiguous curve segment, so this report stays
	// short — its length is itself a locality metric.
	Unavailable []query.Interval
	// PagesRead counts the distinct leaf pages this call touched,
	// including pages that stayed dark.
	PagesRead int
}

// Complete reports whether the whole query was served.
func (r DegradedResult) Complete() bool { return len(r.Unavailable) == 0 }

// RangeQueryDegraded answers a box query on a best-effort basis. Pages that
// stay unavailable after the retry budget do not fail the query: their key
// spans are subtracted from the result and reported as dark curve
// intervals. With the default in-memory device (or a fault injector that
// injects nothing) it returns byte-identical records and identical Stats to
// RangeQuery — degraded mode costs nothing when nothing fails.
//
// Deprecated: use ScanBox (degraded is Scan's default mode).
func (st *Store) RangeQueryDegraded(b query.Box) DegradedResult {
	res, _ := st.RangeDegradedContext(context.Background(), b)
	return res
}

// RangeDegradedContext is RangeQueryDegraded honoring a context: the
// context is checked between leaf page reads and a cancellation aborts the
// query with the context's error (a canceled query is not "degraded" — no
// dark intervals are fabricated for the part it never attempted).
//
// Deprecated: use ScanBox.
func (st *Store) RangeDegradedContext(ctx context.Context, b query.Box) (DegradedResult, error) {
	return st.RangeIntervalsDegraded(ctx, query.DecomposeBox(st.c, b))
}

// RangeIntervalsDegraded answers a pre-decomposed degraded query over
// sorted, disjoint curve intervals (as produced by query.DecomposeBox or a
// shared decomposition cache).
//
// Deprecated: use Scan.
func (st *Store) RangeIntervalsDegraded(ctx context.Context, ivs []query.Interval) (DegradedResult, error) {
	res, err := st.Scan(ctx, ivs)
	if err != nil {
		return DegradedResult{}, err
	}
	return DegradedResult{
		Records:     res.Records,
		Unavailable: res.Unavailable,
		PagesRead:   res.PagesRead,
	}, nil
}

// pageKeySpan returns the half-open curve-key range [first, last+1] covered
// by the records of the given page.
func (st *Store) pageKeySpan(page int) query.Interval {
	lo := page * st.pageSize
	hi := lo + st.pageSize
	if hi > len(st.keys) {
		hi = len(st.keys)
	}
	return query.Interval{Lo: st.keys[lo], Hi: st.keys[hi-1] + 1}
}
