package store

import (
	"sort"

	"repro/internal/query"
)

// DegradedResult is the outcome of RangeQueryDegraded: every record the
// store could read, plus an explicit description of the part of the query
// it could not serve.
type DegradedResult struct {
	// Records holds the readable records inside the box, in curve-interval
	// scan order (the same order RangeQuery returns).
	Records []Record
	// Unavailable lists the curve-index intervals the store could not
	// serve: sorted, disjoint, merged, and each contained in the query
	// box's curve footprint. Together with Records it tiles the query
	// exactly: a record of the box is in Records iff its curve key lies
	// outside every unavailable interval. On a proximity-preserving curve
	// a dead page owns a contiguous curve segment, so this report stays
	// short — its length is itself a locality metric.
	Unavailable []query.Interval
}

// Complete reports whether the whole query was served.
func (r DegradedResult) Complete() bool { return len(r.Unavailable) == 0 }

// RangeQueryDegraded answers a box query on a best-effort basis. Pages that
// stay unavailable after the retry budget do not fail the query: their key
// spans are subtracted from the result and reported as dark curve
// intervals. With the default in-memory device (or a fault injector that
// injects nothing) it returns byte-identical records and identical Stats to
// RangeQuery — degraded mode costs nothing when nothing fails.
func (st *Store) RangeQueryDegraded(b query.Box) DegradedResult {
	cache := newPageCache(st)
	type span struct {
		iv     query.Interval
		lo, hi int // slot range [lo, hi) of records inside iv
	}
	ivs := query.DecomposeBox(st.c, b)
	spans := make([]span, 0, len(ivs))
	for _, iv := range ivs {
		lo := st.descend(iv.Lo)
		hi := lo + sort.Search(len(st.keys)-lo, func(i int) bool { return st.keys[lo+i] >= iv.Hi })
		spans = append(spans, span{iv: iv, lo: lo, hi: hi})
	}
	// Pass 1: fetch every page the query touches, in the same order
	// RangeQuery would, and collect the dark key spans of failed pages.
	var dark []query.Interval
	for _, sp := range spans {
		if sp.lo == sp.hi {
			continue
		}
		for page := sp.lo / st.pageSize; page <= (sp.hi-1)/st.pageSize; page++ {
			if _, err := cache.get(page); err == nil {
				continue
			}
			ks := st.pageKeySpan(page)
			if ks.Lo < sp.iv.Lo {
				ks.Lo = sp.iv.Lo
			}
			if ks.Hi > sp.iv.Hi {
				ks.Hi = sp.iv.Hi
			}
			if ks.Lo < ks.Hi {
				dark = append(dark, ks)
			}
		}
	}
	dark = mergeSorted(dark)
	// Pass 2: collect records, skipping dark pages and any record whose key
	// falls in a dark interval (duplicate keys straddling a page boundary
	// are only partially readable, so the whole key goes dark).
	var out []Record
	cur := -1 // memoize the scan's current page: pages arrive consecutively
	var pg Page
	var pgErr error
	for _, sp := range spans {
		for i := sp.lo; i < sp.hi; i++ {
			if id := i / st.pageSize; id != cur {
				pg, pgErr = cache.get(id)
				cur = id
			}
			if pgErr != nil || inIntervals(dark, st.keys[i]) {
				continue
			}
			out = append(out, pg.Records[i%st.pageSize])
		}
	}
	return DegradedResult{Records: out, Unavailable: dark}
}

// pageKeySpan returns the half-open curve-key range [first, last+1] covered
// by the records of the given page.
func (st *Store) pageKeySpan(page int) query.Interval {
	lo := page * st.pageSize
	hi := lo + st.pageSize
	if hi > len(st.keys) {
		hi = len(st.keys)
	}
	return query.Interval{Lo: st.keys[lo], Hi: st.keys[hi-1] + 1}
}

// mergeSorted sorts and coalesces touching or overlapping intervals.
func mergeSorted(ivs []query.Interval) []query.Interval {
	if len(ivs) <= 1 {
		return ivs
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Lo < ivs[j].Lo })
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi {
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// inIntervals reports whether key lies in any of the sorted, disjoint
// intervals.
func inIntervals(ivs []query.Interval, key uint64) bool {
	i := sort.Search(len(ivs), func(i int) bool { return ivs[i].Hi > key })
	return i < len(ivs) && ivs[i].Lo <= key
}
