package store_test

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/query"
	"repro/internal/store"
)

// TestConcurrentStats hammers one store from many goroutines — queries,
// Stats snapshots, and ResetStats all racing — and checks, under -race,
// that the atomic accounting neither tears nor loses the final quiescent
// counts. This is the regression test for the data race the old plain-int
// Stats fields had under the service layer's concurrent shard scans.
func TestConcurrentStats(t *testing.T) {
	u := grid.MustNew(2, 5)
	c := curve.NewHilbert(u)
	rng := rand.New(rand.NewSource(7))
	recs := make([]store.Record, 1500)
	for i := range recs {
		recs[i] = store.Record{
			Point:   u.MustPoint(rng.Uint32()%u.Side(), rng.Uint32()%u.Side()),
			Payload: uint64(i),
		}
	}
	st, err := store.Bulkload(c, recs, store.WithPageSize(8))
	if err != nil {
		t.Fatal(err)
	}
	boxes := make([]query.Box, 16)
	for i := range boxes {
		a, b := rng.Uint32()%u.Side(), rng.Uint32()%u.Side()
		if a > b {
			a, b = b, a
		}
		boxes[i], err = query.NewBox(u, u.MustPoint(a, a), u.MustPoint(b, b))
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch {
				case g == 0 && i%10 == 0:
					st.ResetStats()
				case g == 1 && i%5 == 0:
					_ = st.Stats() // snapshot while queries are in flight
				default:
					if _, err := st.RangeQuery(boxes[(g*50+i)%len(boxes)]); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Quiescent accounting must still be exact: one more query charges one
	// descent per decomposition interval, observable via the snapshot.
	st.ResetStats()
	if got := st.Stats(); got != (store.Stats{}) {
		t.Fatalf("stats after reset = %+v", got)
	}
	ivs := query.DecomposeBox(c, boxes[0])
	if _, err := st.RangeQuery(boxes[0]); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().Descents; got != len(ivs) {
		t.Fatalf("descents = %d, want %d (one per interval)", got, len(ivs))
	}
}
