package store

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/wal"
)

// Durable is the mutable, crash-safe store: an LSM tree keyed by the curve.
// Writes append to a write-ahead log and accumulate in a memtable; flushes
// turn the memtable into immutable, curve-ordered run files (the same format
// WriteFile produces, read through the same checksummed, retried page
// devices); background compaction merges runs back down. A Put or Delete
// whose call returned nil has been fsynced and survives any crash; one that
// returned an error left no trace. Recovery on open replays the log past the
// last flushed sequence number, truncates torn tails, and deletes orphan
// files from interrupted flushes — replay is idempotent because the
// manifest's flushed-sequence cut is authoritative.
//
// Reads merge every run with the memtable, newest shadowing oldest through
// tombstones. Degraded reads keep the store's exact-tiling contract: the
// records returned plus ScanResult.Unavailable tile the scanned intervals
// precisely, across however many runs the answer was assembled from.
type Durable struct {
	c   curve.Curve
	dir string
	cfg durableConfig

	mu         sync.Mutex
	log        *wal.Log
	mem        *wal.Memtable
	runs       []*durableRun // oldest to newest
	gen        uint64
	flushedSeq uint64
	nextSeq    uint64
	retired    []io.Closer // devices of compacted-away runs, closed at Close
	compacting bool
	closed     bool
	wg         sync.WaitGroup

	reg         *metrics.Registry
	appends     *metrics.Counter
	replays     *metrics.Counter
	tornTails   *metrics.Counter
	flushes     *metrics.Counter
	compactions *metrics.Counter
	flushUS     *metrics.Histogram
}

// durableRun is one immutable run: a read-only Store over its file plus the
// RAM-resident tombstones it carries against strictly older runs.
type durableRun struct {
	name     string
	st       *Store
	tombKeys []uint64
	tombs    []Record
	lastSeq  uint64
}

// ErrClosed is returned by operations on a closed (or crashed) durable
// store.
var ErrClosed = errors.New("store: durable store closed")

// OpenDurable opens (or initializes) the durable store rooted at dir for
// curve c. On an existing directory it performs crash recovery: loads the
// manifest, opens every live run, replays the write-ahead log past the
// manifest's flushed-sequence cut, truncates any torn tail the crash left,
// and removes orphan files from interrupted flushes or compactions.
func OpenDurable(dir string, c curve.Curve, opts ...DurableOption) (*Durable, error) {
	cfg := durableConfig{pageSize: 64, fanout: 64, memLimit: 1024, compactThreshold: 4, autoCompact: true}
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt.applyDurable(&cfg); err != nil {
			return nil, err
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: durable dir: %w", err)
	}
	reg := cfg.reg
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	d := &Durable{
		c:           c,
		dir:         dir,
		cfg:         cfg,
		mem:         wal.NewMemtable(),
		reg:         reg,
		appends:     reg.Counter("wal.appends"),
		replays:     reg.Counter("wal.replays"),
		tornTails:   reg.Counter("wal.torn_tails_truncated"),
		flushes:     reg.Counter("durable.flushes"),
		compactions: reg.Counter("durable.compactions"),
		flushUS:     reg.Histogram("durable.flush_us"),
	}
	man, err := wal.ReadManifest(dir)
	switch {
	case errors.Is(err, wal.ErrNoManifest):
		if err := d.initFresh(); err != nil {
			return nil, err
		}
	case err != nil:
		return nil, err
	default:
		if err := d.recover(man); err != nil {
			return nil, err
		}
	}
	if err := d.removeOrphans(); err != nil {
		d.closeHandles()
		return nil, err
	}
	return d, nil
}

// initFresh lays down generation 1: an empty log, then the manifest that
// makes it live. A crash between the two steps leaves an orphan log file the
// next open deletes.
func (d *Durable) initFresh() error {
	name := wal.LogFileName(1)
	path := filepath.Join(d.dir, name)
	os.Remove(path) // stale orphan from a crash before the first manifest
	log, err := wal.Create(path, d.cfg.wrapWAL)
	if err != nil {
		return err
	}
	if err := wal.WriteManifest(d.dir, wal.Manifest{Generation: 1, WAL: name}); err != nil {
		log.Close()
		return err
	}
	d.log, d.gen, d.flushedSeq, d.nextSeq = log, 1, 0, 1
	return nil
}

// recover rebuilds the store from a manifest: open the runs it lists, then
// replay the log it points at, folding in only entries past the flushed cut
// so replaying after a crash mid-flush never double-applies.
func (d *Durable) recover(man wal.Manifest) error {
	for _, name := range man.Runs {
		run, err := d.openDurableRun(name)
		if err != nil {
			d.closeHandles()
			return err
		}
		d.runs = append(d.runs, run)
	}
	log, entries, tornBytes, err := wal.Open(filepath.Join(d.dir, man.WAL), d.cfg.wrapWAL)
	if err != nil {
		d.closeHandles()
		return err
	}
	d.replays.Inc()
	if tornBytes > 0 {
		d.tornTails.Inc()
	}
	for _, e := range entries {
		if e.Seq > man.FlushedSeq {
			d.mem.Apply(e)
		}
	}
	d.log = log
	d.gen = man.Generation
	d.flushedSeq = man.FlushedSeq
	d.nextSeq = man.FlushedSeq + 1
	if s := log.LastSeq(); s >= d.nextSeq {
		d.nextSeq = s + 1
	}
	return nil
}

// openDurableRun opens one run file as a read-only store plus its
// RAM-resident tombstone column.
func (d *Durable) openDurableRun(name string) (*durableRun, error) {
	rf, err := openRun(filepath.Join(d.dir, name))
	if err != nil {
		return nil, err
	}
	bc := buildConfig{fanout: d.cfg.fanout, wrap: d.cfg.wrapDev, retry: d.cfg.retry}
	st, err := storeOverRun(rf, d.c, bc)
	if err != nil {
		rf.dev.Close()
		return nil, err
	}
	return &durableRun{
		name:     name,
		st:       st,
		tombKeys: rf.tombKeys,
		tombs:    rf.tombs,
		lastSeq:  rf.hdr.lastSeq,
	}, nil
}

// removeOrphans deletes run, log, and temp files in the directory that the
// manifest does not reference — the debris of a crash mid-flush or
// mid-compaction. Acknowledged data is never among them: the manifest commit
// is the single point a file becomes live.
func (d *Durable) removeOrphans() error {
	live := map[string]bool{wal.ManifestName: true, filepath.Base(d.log.Path()): true}
	for _, r := range d.runs {
		live[r.name] = true
	}
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("store: durable dir: %w", err)
	}
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || live[name] {
			continue
		}
		ours := strings.HasSuffix(name, ".tmp") ||
			(strings.HasPrefix(name, "run-") && strings.HasSuffix(name, ".sfc")) ||
			(strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"))
		if !ours {
			continue // not our file; leave it alone
		}
		if err := os.Remove(filepath.Join(d.dir, name)); err != nil {
			return fmt.Errorf("store: removing orphan %s: %w", name, err)
		}
	}
	return nil
}

// closeHandles releases every open OS handle without any durability work.
func (d *Durable) closeHandles() {
	if d.log != nil {
		d.log.Close()
	}
	for _, r := range d.runs {
		r.st.CloseDevice()
	}
	for _, c := range d.retired {
		c.Close()
	}
	d.retired = nil
}

// Dir returns the store's root directory.
func (d *Durable) Dir() string { return d.dir }

// Metrics returns the registry the store's durability counters live in.
func (d *Durable) Metrics() *metrics.Registry { return d.reg }

// Runs returns the current number of immutable runs.
func (d *Durable) Runs() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.runs)
}

// MemOps returns the number of unflushed operations in the memtable.
func (d *Durable) MemOps() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.mem.Ops()
}

// LastSeq returns the sequence number of the last acknowledged operation.
func (d *Durable) LastSeq() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.nextSeq - 1
}

// Put durably inserts one record: the operation is fsynced into the
// write-ahead log before Put returns nil. Records are multisets — putting
// the same (point, payload) twice stores two instances.
func (d *Durable) Put(ctx context.Context, r Record) error {
	return d.apply(ctx, wal.KindPut, r)
}

// Delete durably removes every stored instance matching (point, payload) —
// from the memtable directly, from flushed runs via a tombstone. Deleting a
// record that was never stored is a durable no-op.
func (d *Durable) Delete(ctx context.Context, r Record) error {
	return d.apply(ctx, wal.KindDelete, r)
}

func (d *Durable) apply(ctx context.Context, kind wal.Kind, r Record) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	u := d.c.Universe()
	if !u.Contains(r.Point) {
		return fmt.Errorf("store: record at %v outside %v", r.Point, u)
	}
	e := wal.Entry{
		Kind:    kind,
		Key:     d.c.Index(r.Point),
		Point:   r.Point.Clone(),
		Payload: r.Payload,
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	e.Seq = d.nextSeq
	if err := d.log.Append(e); err != nil {
		return err
	}
	d.nextSeq++
	d.appends.Inc()
	d.mem.Apply(e)
	if d.mem.Ops() >= d.cfg.memLimit {
		return d.flushLocked(ctx)
	}
	return nil
}

// Flush forces the memtable into a new immutable run. A flush is atomic
// against crashes: the run file and the next generation's empty log are
// written first, and only the manifest rename makes them live — a crash at
// any point leaves either the old state (log replay re-fills the memtable)
// or the new one, never both and never neither.
func (d *Durable) Flush(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.flushLocked(ctx)
}

func (d *Durable) flushLocked(ctx context.Context) error {
	if d.mem.Ops() == 0 {
		return nil
	}
	start := time.Now()
	puts, tombs := d.mem.Sorted()
	keys := make([]uint64, len(puts))
	recs := make([]Record, len(puts))
	for i, e := range puts {
		keys[i], recs[i] = e.Key, Record{Point: grid.Point(e.Point), Payload: e.Payload}
	}
	tombKeys := make([]uint64, len(tombs))
	tombRecs := make([]Record, len(tombs))
	for i, e := range tombs {
		tombKeys[i], tombRecs[i] = e.Key, Record{Point: grid.Point(e.Point), Payload: e.Payload}
	}
	newGen := d.gen + 1
	lastSeq := d.log.LastSeq()
	runName := wal.RunFileName(newGen)
	h := runHeader{d: d.c.Universe().D(), pageSize: d.cfg.pageSize, generation: newGen, lastSeq: lastSeq}
	if err := writeRun(filepath.Join(d.dir, runName), h, keys, recs, tombKeys, tombRecs); err != nil {
		return err
	}
	logName := wal.LogFileName(newGen)
	logPath := filepath.Join(d.dir, logName)
	os.Remove(logPath) // orphan from a crash after a previous attempt
	newLog, err := wal.Create(logPath, d.cfg.wrapWAL)
	if err != nil {
		os.Remove(filepath.Join(d.dir, runName))
		return err
	}
	names := make([]string, 0, len(d.runs)+1)
	for _, r := range d.runs {
		names = append(names, r.name)
	}
	names = append(names, runName)
	man := wal.Manifest{Generation: newGen, Runs: names, WAL: logName, FlushedSeq: lastSeq}
	if err := wal.WriteManifest(d.dir, man); err != nil {
		newLog.Close()
		os.Remove(logPath)
		os.Remove(filepath.Join(d.dir, runName))
		return err
	}
	// The manifest is committed; from here the new state is authoritative.
	run, err := d.openDurableRun(runName)
	if err != nil {
		newLog.Close()
		return err
	}
	oldPath := d.log.Path()
	d.log.Close()
	os.Remove(oldPath)
	d.log = newLog
	d.runs = append(d.runs, run)
	d.gen = newGen
	d.flushedSeq = lastSeq
	d.mem.Reset()
	d.flushes.Inc()
	d.flushUS.Observe(time.Since(start).Microseconds())
	d.maybeCompactLocked()
	return nil
}

// maybeCompactLocked kicks off one background compaction when the run count
// crosses the threshold. At most one compaction runs at a time.
func (d *Durable) maybeCompactLocked() {
	if !d.cfg.autoCompact || d.compacting || len(d.runs) < d.cfg.compactThreshold {
		return
	}
	d.compacting = true
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		d.compact()
	}()
}

// Compact merges every current run into one, applying tombstones and then
// dropping them (nothing older remains to shadow). Runs flushed while the
// merge is in progress are untouched: compaction replaces exactly the
// prefix of runs it snapshotted. The swap is committed by a manifest write;
// replaced run files are unlinked and their devices retired until Close so
// in-flight scans finish safely.
func (d *Durable) Compact(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	if d.compacting {
		d.mu.Unlock()
		return errors.New("store: compaction already in progress")
	}
	d.compacting = true
	d.mu.Unlock()
	return d.compact()
}

func (d *Durable) compact() error {
	defer func() {
		d.mu.Lock()
		d.compacting = false
		d.mu.Unlock()
	}()
	d.mu.Lock()
	snapshot := d.runs[:len(d.runs):len(d.runs)]
	d.mu.Unlock()
	if len(snapshot) < 2 {
		return nil
	}
	keys, recs, err := mergeRuns(d.c, snapshot)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	newGen := d.gen + 1
	runName := wal.RunFileName(newGen)
	h := runHeader{
		d:          d.c.Universe().D(),
		pageSize:   d.cfg.pageSize,
		generation: newGen,
		lastSeq:    snapshot[len(snapshot)-1].lastSeq,
	}
	if err := writeRun(filepath.Join(d.dir, runName), h, keys, recs, nil, nil); err != nil {
		return err
	}
	names := []string{runName}
	for _, r := range d.runs[len(snapshot):] {
		names = append(names, r.name)
	}
	man := wal.Manifest{Generation: newGen, Runs: names, WAL: filepath.Base(d.log.Path()), FlushedSeq: d.flushedSeq}
	if err := wal.WriteManifest(d.dir, man); err != nil {
		os.Remove(filepath.Join(d.dir, runName))
		return err
	}
	merged, err := d.openDurableRun(runName)
	if err != nil {
		return err
	}
	for _, r := range snapshot {
		if c, ok := r.st.device.(io.Closer); ok {
			d.retired = append(d.retired, c)
		}
		os.Remove(filepath.Join(d.dir, r.name))
	}
	d.runs = append([]*durableRun{merged}, d.runs[len(snapshot):]...)
	d.gen = newGen
	d.compactions.Inc()
	return nil
}

// mergeRuns reads every record of the snapshotted runs (oldest to newest),
// applies each run's tombstones to the accumulated older records, and
// returns the survivors sorted by key, older instances first on ties.
func mergeRuns(c curve.Curve, snapshot []*durableRun) ([]uint64, []Record, error) {
	type keyed struct {
		key uint64
		rec Record
	}
	var acc []keyed
	for _, r := range snapshot {
		acc = shadow(acc, r.tombKeys, r.tombs, func(k keyed) (uint64, uint64) { return k.key, k.rec.Payload })
		for id := 0; id < r.st.NumPages(); id++ {
			pg, err := r.st.fetchPage(id)
			if err != nil {
				return nil, nil, fmt.Errorf("store: compacting %s: %w", r.name, err)
			}
			for i := range pg.Records {
				acc = append(acc, keyed{pg.Keys[i], pg.Records[i]})
			}
		}
	}
	sort.SliceStable(acc, func(a, b int) bool { return acc[a].key < acc[b].key })
	keys := make([]uint64, len(acc))
	recs := make([]Record, len(acc))
	for i, k := range acc {
		keys[i], recs[i] = k.key, k.rec
	}
	return keys, recs, nil
}

// shadow removes from acc every element matching a tombstone, using id to
// project an element to its (key, payload) identity. Key equality implies
// point equality (the curve is a bijection), so (key, payload) is the full
// record identity.
func shadow[T any](acc []T, tombKeys []uint64, tombs []Record, id func(T) (uint64, uint64)) []T {
	if len(tombs) == 0 || len(acc) == 0 {
		return acc
	}
	dead := make(map[[2]uint64]bool, len(tombs))
	for i, tk := range tombKeys {
		dead[[2]uint64{tk, tombs[i].Payload}] = true
	}
	kept := acc[:0]
	for _, el := range acc {
		k, p := id(el)
		if !dead[[2]uint64{k, p}] {
			kept = append(kept, el)
		}
	}
	return kept
}

// Scan answers a query over the merged store: every run plus the memtable,
// newest shadowing oldest. Strictness and degraded tiling follow Store.Scan:
// under ScanStrict the first dark page in any run fails the whole scan with
// ErrPageUnavailable; in degraded mode the union of every run's dark
// intervals is reported, and records whose keys fall inside it are withheld
// even when some run could serve them — so Records plus Unavailable tile
// the scanned intervals exactly, the same contract a single store gives.
func (d *Durable) Scan(ctx context.Context, ivs []query.Interval, opts ...ScanOption) (ScanResult, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ScanResult{}, ErrClosed
	}
	snapshot := d.runs[:len(d.runs):len(d.runs)]
	puts, tombs := d.mem.Sorted()
	d.mu.Unlock()

	type keyed struct {
		key uint64
		rec Record
	}
	var acc []keyed
	var dark []query.Interval
	pagesRead := 0
	for _, r := range snapshot {
		res, err := r.st.Scan(ctx, ivs, opts...)
		pagesRead += res.PagesRead
		if err != nil {
			return ScanResult{PagesRead: pagesRead}, err
		}
		dark = append(dark, res.Unavailable...)
		acc = shadow(acc, r.tombKeys, r.tombs, func(k keyed) (uint64, uint64) { return k.key, k.rec.Payload })
		for _, rec := range res.Records {
			acc = append(acc, keyed{d.c.Index(rec.Point), rec})
		}
	}
	memTombKeys := make([]uint64, len(tombs))
	memTombs := make([]Record, len(tombs))
	for i, e := range tombs {
		memTombKeys[i], memTombs[i] = e.Key, Record{Point: grid.Point(e.Point), Payload: e.Payload}
	}
	acc = shadow(acc, memTombKeys, memTombs, func(k keyed) (uint64, uint64) { return k.key, k.rec.Payload })
	for _, e := range puts {
		if query.IntervalsContain(ivs, e.Key) {
			acc = append(acc, keyed{e.Key, Record{Point: grid.Point(e.Point).Clone(), Payload: e.Payload}})
		}
	}
	dark = query.MergeIntervals(dark)
	sort.SliceStable(acc, func(a, b int) bool { return acc[a].key < acc[b].key })
	out := make([]Record, 0, len(acc))
	for _, k := range acc {
		if query.IntervalsContain(dark, k.key) {
			continue
		}
		out = append(out, k.rec)
	}
	return ScanResult{Records: out, Unavailable: dark, PagesRead: pagesRead}, nil
}

// ScanBox decomposes the box through the store's curve and scans it.
func (d *Durable) ScanBox(ctx context.Context, b query.Box, opts ...ScanOption) (ScanResult, error) {
	return d.Scan(ctx, query.DecomposeBox(d.c, b), opts...)
}

// Bulkload loads records into a fresh, empty durable store as one immutable
// run, bypassing the WAL — the fast path for initial loads, matching
// Bulkload's cost instead of one log append per record. It fails if the
// store already holds any data.
func (d *Durable) Bulkload(ctx context.Context, recs []Record) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	u := d.c.Universe()
	keys := make([]uint64, len(recs))
	order := make([]int, len(recs))
	for i, r := range recs {
		if !u.Contains(r.Point) {
			return fmt.Errorf("store: record %d at %v outside %v", i, r.Point, u)
		}
		keys[i] = d.c.Index(r.Point)
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	sortedKeys := make([]uint64, len(recs))
	sortedRecs := make([]Record, len(recs))
	for slot, i := range order {
		sortedKeys[slot] = keys[i]
		sortedRecs[slot] = Record{Point: recs[i].Point.Clone(), Payload: recs[i].Payload}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if len(d.runs) > 0 || d.mem.Ops() > 0 || d.log.LastSeq() > 0 {
		return errors.New("store: Bulkload requires an empty durable store")
	}
	newGen := d.gen + 1
	runName := wal.RunFileName(newGen)
	h := runHeader{d: u.D(), pageSize: d.cfg.pageSize, generation: newGen}
	if err := writeRun(filepath.Join(d.dir, runName), h, sortedKeys, sortedRecs, nil, nil); err != nil {
		return err
	}
	man := wal.Manifest{Generation: newGen, Runs: []string{runName}, WAL: filepath.Base(d.log.Path()), FlushedSeq: d.flushedSeq}
	if err := wal.WriteManifest(d.dir, man); err != nil {
		os.Remove(filepath.Join(d.dir, runName))
		return err
	}
	run, err := d.openDurableRun(runName)
	if err != nil {
		return err
	}
	d.runs = append(d.runs, run)
	d.gen = newGen
	return nil
}

// Close waits for any background compaction and releases every OS handle.
// No flush happens: acknowledged operations are already durable in the log
// and will be replayed by the next open.
func (d *Durable) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	d.wg.Wait()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closeHandles()
	return nil
}

// Crash simulates an abrupt kill plus power loss for recovery tests and
// chaos campaigns: unsynced log bytes are discarded, nothing is flushed, no
// manifest is written, and every handle is dropped. A concurrent compaction
// is allowed to finish its current step but can no longer commit.
func (d *Durable) Crash() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	d.wg.Wait()
	d.mu.Lock()
	defer d.mu.Unlock()
	err := d.log.Crash()
	for _, r := range d.runs {
		r.st.CloseDevice()
	}
	for _, c := range d.retired {
		c.Close()
	}
	d.retired = nil
	return err
}

// CrashMidPut simulates dying in the middle of appending a put for r: the
// log is left with a seeded torn fragment of the entry — never a complete
// frame — and the store shuts down as in Crash. The put was never
// acknowledged, so recovery must truncate the fragment and the record must
// not appear after reopening.
func (d *Durable) CrashMidPut(r Record, seed int64) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	d.closed = true
	e := wal.Entry{
		Seq:     d.nextSeq,
		Kind:    wal.KindPut,
		Key:     d.c.Index(r.Point),
		Point:   r.Point.Clone(),
		Payload: r.Payload,
	}
	d.mu.Unlock()
	d.wg.Wait()
	d.mu.Lock()
	defer d.mu.Unlock()
	err := d.log.CrashTorn(e, seed)
	for _, run := range d.runs {
		run.st.CloseDevice()
	}
	for _, c := range d.retired {
		c.Close()
	}
	d.retired = nil
	return err
}
