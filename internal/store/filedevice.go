package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/curve"
)

// Run file format — the immutable, curve-ordered unit of on-disk storage.
// One file holds one sorted run of records chopped into fixed-capacity
// pages, plus the tombstones the run carries against older runs and the
// per-page checksums the store verifies reads with. All integers are
// little-endian.
//
//	header (64 bytes):
//	  0  magic      "SFCRUN1\n"
//	  8  version    u32 (currently 1)
//	  12 d          u32   dimensions per point
//	  16 pageSize   u32   records per leaf page
//	  20 reserved   u32
//	  24 numRecords u64
//	  32 numTombs   u64
//	  40 generation u64   manifest generation that wrote the file
//	  48 lastSeq    u64   highest WAL sequence captured by the run
//	  56 headerSum  u64   FNV-1a/64 of bytes [0, 56)
//	body:
//	  numRecords × record   record = key u64 | d × coord u32 | payload u64
//	  numTombs   × record   (same encoding; tombstones carry keys too)
//	  numPages   × u64      per-page FNV-1a checksums (pageChecksum)
//	  bodySum u64            FNV-1a/64 of all body bytes before it
//
// Records are sorted by key (ties keep writer order). The checksum table
// lets an open trust page integrity without recomputation, and bodySum
// catches a truncated or scribbled file wholesale.
const (
	runMagic      = "SFCRUN1\n"
	runVersion    = 1
	runHeaderSize = 64
)

var errBadRun = errors.New("store: invalid run file")

// recordSize returns the per-record byte size for d dimensions.
func recordSize(d int) int { return 8 + 4*d + 8 }

// runHeader is the decoded fixed header of a run file.
type runHeader struct {
	d          int
	pageSize   int
	numRecords int
	numTombs   int
	generation uint64
	lastSeq    uint64
}

func encodeRunHeader(h runHeader) []byte {
	b := make([]byte, 0, runHeaderSize)
	b = append(b, runMagic...)
	b = appendU32(b, runVersion)
	b = appendU32(b, uint32(h.d))
	b = appendU32(b, uint32(h.pageSize))
	b = appendU32(b, 0)
	b = appendU64(b, uint64(h.numRecords))
	b = appendU64(b, uint64(h.numTombs))
	b = appendU64(b, h.generation)
	b = appendU64(b, h.lastSeq)
	b = appendU64(b, fnvBytes(b))
	return b
}

func decodeRunHeader(b []byte) (runHeader, error) {
	if len(b) < runHeaderSize {
		return runHeader{}, fmt.Errorf("%w: %d header bytes", errBadRun, len(b))
	}
	if string(b[:8]) != runMagic {
		return runHeader{}, fmt.Errorf("%w: bad magic %q", errBadRun, b[:8])
	}
	if fnvBytes(b[:56]) != readU64(b[56:]) {
		return runHeader{}, fmt.Errorf("%w: header checksum mismatch", errBadRun)
	}
	if v := readU32(b[8:]); v != runVersion {
		return runHeader{}, fmt.Errorf("%w: version %d", errBadRun, v)
	}
	h := runHeader{
		d:          int(readU32(b[12:])),
		pageSize:   int(readU32(b[16:])),
		numRecords: int(readU64(b[24:])),
		numTombs:   int(readU64(b[32:])),
		generation: readU64(b[40:]),
		lastSeq:    readU64(b[48:]),
	}
	if h.d < 1 || h.d > 64 || h.pageSize < 2 || h.numRecords < 0 || h.numTombs < 0 {
		return runHeader{}, fmt.Errorf("%w: geometry d=%d pageSize=%d records=%d tombs=%d",
			errBadRun, h.d, h.pageSize, h.numRecords, h.numTombs)
	}
	return h, nil
}

// writeRun writes one complete run file at path with crash-safe atomicity:
// the bytes land in a same-directory temp file, are fsynced, renamed into
// place, and the directory entry is fsynced. A crash leaves either no file
// or a complete one, never a torn run.
func writeRun(path string, h runHeader, keys []uint64, recs []Record, tombKeys []uint64, tombs []Record) error {
	if len(keys) != len(recs) || len(tombKeys) != len(tombs) {
		return fmt.Errorf("store: writeRun: misaligned columns")
	}
	h.numRecords = len(recs)
	h.numTombs = len(tombs)
	rs := recordSize(h.d)
	numPages := (len(recs) + h.pageSize - 1) / h.pageSize
	body := make([]byte, 0, rs*(len(recs)+len(tombs))+8*numPages+8)
	appendRec := func(key uint64, r Record) error {
		if len(r.Point) != h.d {
			return fmt.Errorf("store: writeRun: record with %d dims in a %d-dim run", len(r.Point), h.d)
		}
		body = appendU64(body, key)
		for _, c := range r.Point {
			body = appendU32(body, c)
		}
		body = appendU64(body, r.Payload)
		return nil
	}
	for i, r := range recs {
		if i > 0 && keys[i] < keys[i-1] {
			return fmt.Errorf("store: writeRun: keys out of order at %d", i)
		}
		if err := appendRec(keys[i], r); err != nil {
			return err
		}
	}
	for i, r := range tombs {
		if err := appendRec(tombKeys[i], r); err != nil {
			return err
		}
	}
	for pg := 0; pg < numPages; pg++ {
		lo := pg * h.pageSize
		hi := lo + h.pageSize
		if hi > len(recs) {
			hi = len(recs)
		}
		body = appendU64(body, pageChecksum(Page{ID: pg, Keys: keys[lo:hi], Records: recs[lo:hi]}))
	}
	body = appendU64(body, fnvBytes(body))

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: writeRun: %w", err)
	}
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(encodeRunHeader(h)); err != nil {
		return cleanup(fmt.Errorf("store: writeRun header: %w", err))
	}
	if _, err := f.Write(body); err != nil {
		return cleanup(fmt.Errorf("store: writeRun body: %w", err))
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("store: writeRun sync: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: writeRun close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: writeRun rename: %w", err)
	}
	return syncParentDir(path)
}

// runFile is a fully validated open run: the RAM-resident columns (keys,
// tombstones, page checksums) plus the file handle page content is pread
// from. Record content itself is *not* retained — it stays on the device,
// which is the point.
type runFile struct {
	hdr      runHeader
	keys     []uint64
	tombKeys []uint64
	tombs    []Record
	sums     []uint64
	dev      *FileDevice
}

// openRun reads and verifies a run file end to end (one sequential pass:
// header checksum, body checksum, sortedness, and the per-page checksum
// table against recomputed page sums), keeps the key and tombstone columns,
// and returns a pread-backed FileDevice for the record pages.
func openRun(path string) (*runFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: open run: %w", err)
	}
	hdr, err := decodeRunHeader(data)
	if err != nil {
		return nil, fmt.Errorf("store: open run %s: %w", filepath.Base(path), err)
	}
	rs := recordSize(hdr.d)
	numPages := (hdr.numRecords + hdr.pageSize - 1) / hdr.pageSize
	want := runHeaderSize + rs*(hdr.numRecords+hdr.numTombs) + 8*numPages + 8
	if len(data) != want {
		return nil, fmt.Errorf("%w: %s is %d bytes, header implies %d", errBadRun, filepath.Base(path), len(data), want)
	}
	body := data[runHeaderSize:]
	if fnvBytes(body[:len(body)-8]) != readU64(body[len(body)-8:]) {
		return nil, fmt.Errorf("%w: %s body checksum mismatch", errBadRun, filepath.Base(path))
	}
	rf := &runFile{hdr: hdr}
	off := 0
	readRec := func() (uint64, Record) {
		key := readU64(body[off:])
		p := make([]uint32, hdr.d)
		for i := range p {
			p[i] = readU32(body[off+8+4*i:])
		}
		payload := readU64(body[off+8+4*hdr.d:])
		off += rs
		return key, Record{Point: p, Payload: payload}
	}
	rf.keys = make([]uint64, hdr.numRecords)
	recs := make([]Record, hdr.numRecords) // transient: only for checksum verification
	for i := 0; i < hdr.numRecords; i++ {
		rf.keys[i], recs[i] = readRec()
		if i > 0 && rf.keys[i] < rf.keys[i-1] {
			return nil, fmt.Errorf("%w: %s keys out of order at %d", errBadRun, filepath.Base(path), i)
		}
	}
	rf.tombKeys = make([]uint64, hdr.numTombs)
	rf.tombs = make([]Record, hdr.numTombs)
	for i := 0; i < hdr.numTombs; i++ {
		rf.tombKeys[i], rf.tombs[i] = readRec()
	}
	rf.sums = make([]uint64, numPages)
	for pg := 0; pg < numPages; pg++ {
		rf.sums[pg] = readU64(body[off:])
		off += 8
		lo := pg * hdr.pageSize
		hi := lo + hdr.pageSize
		if hi > len(recs) {
			hi = len(recs)
		}
		if got := pageChecksum(Page{ID: pg, Keys: rf.keys[lo:hi], Records: recs[lo:hi]}); got != rf.sums[pg] {
			return nil, fmt.Errorf("%w: %s page %d checksum mismatch", errBadRun, filepath.Base(path), pg)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: open run: %w", err)
	}
	rf.dev = &FileDevice{
		f:          f,
		path:       path,
		d:          hdr.d,
		pageSize:   hdr.pageSize,
		numRecords: hdr.numRecords,
		recOff:     runHeaderSize,
	}
	return rf, nil
}

// FileDevice serves leaf pages from a run file with positional reads
// (pread), so concurrent ReadPage calls never contend on a shared offset.
// Decode failures and short reads surface as transient errors for the
// store's retry loop; content integrity is the per-page checksum's job.
type FileDevice struct {
	f          *os.File
	path       string
	d          int
	pageSize   int
	numRecords int
	recOff     int64
}

// Path returns the backing file's path.
func (fd *FileDevice) Path() string { return fd.path }

// NumPages implements PageDevice.
func (fd *FileDevice) NumPages() int {
	return (fd.numRecords + fd.pageSize - 1) / fd.pageSize
}

// ReadPage implements PageDevice: one pread of the page's record span,
// decoded into a fresh Page.
func (fd *FileDevice) ReadPage(id int) (Page, error) {
	if id < 0 || id >= fd.NumPages() {
		return Page{}, fmt.Errorf("store: page %d out of range [0, %d)", id, fd.NumPages())
	}
	lo := id * fd.pageSize
	hi := lo + fd.pageSize
	if hi > fd.numRecords {
		hi = fd.numRecords
	}
	rs := recordSize(fd.d)
	buf := make([]byte, (hi-lo)*rs)
	if _, err := fd.f.ReadAt(buf, fd.recOff+int64(lo*rs)); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Page{}, fmt.Errorf("store: file device read page %d: %w", id, err)
	}
	n := hi - lo
	pg := Page{ID: id, Keys: make([]uint64, n), Records: make([]Record, n)}
	for i := 0; i < n; i++ {
		off := i * rs
		pg.Keys[i] = readU64(buf[off:])
		p := make([]uint32, fd.d)
		for j := range p {
			p[j] = readU32(buf[off+8+4*j:])
		}
		pg.Records[i] = Record{Point: p, Payload: readU64(buf[off+8+4*fd.d:])}
	}
	return pg, nil
}

// Close releases the file handle. Reads after Close fail (and, through the
// retry loop, surface as unavailable pages).
func (fd *FileDevice) Close() error { return fd.f.Close() }

var _ PageDevice = (*FileDevice)(nil)

// WriteFile serializes the store's leaves into a run file at path — the
// bridge from a bulkloaded in-memory store to the durable, file-backed one.
// The write is atomic (temp file + fsync + rename). Stores whose records
// live only on a device (e.g. opened with OpenFile) read them back through
// it; a page the device cannot serve fails the write.
func (st *Store) WriteFile(path string) error {
	recs := st.records
	if recs == nil {
		recs = make([]Record, 0, len(st.keys))
		for id := 0; id < st.NumPages(); id++ {
			pg, err := st.fetchPage(id)
			if err != nil {
				return fmt.Errorf("store: WriteFile: %w", err)
			}
			recs = append(recs, pg.Records...)
		}
	}
	h := runHeader{d: st.c.Universe().D(), pageSize: st.pageSize}
	return writeRun(path, h, st.keys, recs, nil, nil)
}

// OpenFile opens a run file written by WriteFile (or a durable store's
// flush) as a read-only Store over curve c: the key column and checksum
// table come from the file and stay in RAM, record content is served by a
// pread FileDevice with checksum verification on — the same Store the
// bulkload path builds, but with the leaves on disk.
//
// WithFanout, WithRetryPolicy and WithDeviceWrapper apply as in Bulkload
// (the wrapper receives the FileDevice — the fault-injection hook);
// WithPageSize must either be absent or agree with the file, and WithDevice
// is rejected — the file is the device.
func OpenFile(path string, c curve.Curve, opts ...Option) (*Store, error) {
	cfg := buildConfig{pageSize: 0, fanout: 64}
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt.apply(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.device != nil {
		return nil, fmt.Errorf("store: OpenFile: WithDevice conflicts with the file's own device")
	}
	rf, err := openRun(path)
	if err != nil {
		return nil, err
	}
	if rf.hdr.numTombs != 0 {
		rf.dev.Close()
		return nil, fmt.Errorf("store: OpenFile: %s carries %d tombstones; open it through the durable store", filepath.Base(path), rf.hdr.numTombs)
	}
	st, err := storeOverRun(rf, c, cfg)
	if err != nil {
		rf.dev.Close()
		return nil, err
	}
	return st, nil
}

// storeOverRun assembles a Store over one open run file.
func storeOverRun(rf *runFile, c curve.Curve, cfg buildConfig) (*Store, error) {
	u := c.Universe()
	if rf.hdr.d != u.D() {
		return nil, fmt.Errorf("store: run has %d dimensions, universe %v has %d", rf.hdr.d, u, u.D())
	}
	if cfg.pageSize != 0 && cfg.pageSize != rf.hdr.pageSize {
		return nil, fmt.Errorf("store: WithPageSize(%d) conflicts with the file's page size %d", cfg.pageSize, rf.hdr.pageSize)
	}
	if n := u.N(); len(rf.keys) > 0 && rf.keys[len(rf.keys)-1] >= n {
		return nil, fmt.Errorf("store: run key %d outside universe of %d cells", rf.keys[len(rf.keys)-1], n)
	}
	st := &Store{
		c:        c,
		pageSize: rf.hdr.pageSize,
		fanout:   cfg.fanout,
		keys:     rf.keys,
		levels:   buildLevels(rf.keys, rf.hdr.pageSize, cfg.fanout),
		device:   rf.dev,
		sums:     rf.sums,
		verify:   true,
		retry:    RetryPolicy{}.withDefaults(),
	}
	if cfg.retry != nil {
		if err := st.setRetryPolicy(*cfg.retry); err != nil {
			return nil, err
		}
	}
	if cfg.wrap != nil {
		dev, err := cfg.wrap(st.device)
		if err != nil {
			return nil, fmt.Errorf("store: device wrapper: %w", err)
		}
		if err := st.setDevice(dev); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// CloseDevice closes the store's device if it holds an OS resource (the
// FileDevice of a store opened from disk). Stores over the in-memory
// default device have nothing to close.
func (st *Store) CloseDevice() error {
	if c, ok := st.device.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// syncParentDir fsyncs the directory containing path, making a rename or
// create durable.
func syncParentDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("store: open dir: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: sync dir: %w", err)
	}
	return nil
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func readU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func readU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// fnvBytes is FNV-1a/64 over raw bytes, matching pageChecksum's word-wise
// variant in spirit: any single-bit difference changes the sum.
func fnvBytes(b []byte) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, c := range b {
		h = (h ^ uint64(c)) * prime
	}
	return h
}
