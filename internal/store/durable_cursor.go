package store

import (
	"context"
	"io"
	"math"

	"repro/internal/grid"
	"repro/internal/query"
)

// ScanCursor opens an incremental scan over the merged store: a k-way
// merge of one cursor per run (oldest first) plus the memtable, newest
// shadowing oldest through tombstones, exactly like Scan. Draining it is
// bit-identical to Scan over the same snapshot: same records in the same
// order (stable on key ties: oldest run first, memtable puts last), same
// merged dark tiling with records inside it withheld even when some run
// could serve them, same summed PagesRead.
//
// The snapshot is taken at open: writes landing after ScanCursor returns
// are not observed. The cursor stays valid across concurrent flushes and
// compactions (replaced run devices are retired, not closed), but must be
// closed before the store itself is closed.
func (d *Durable) ScanCursor(ivs []query.Interval, opts ...ScanOption) (BatchCursor, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, ErrClosed
	}
	snapshot := d.runs[:len(d.runs):len(d.runs)]
	puts, tombs := d.mem.Sorted()
	d.mu.Unlock()

	cfg := scanConfig{batch: DefaultScanBatch}
	for _, opt := range opts {
		if opt != nil {
			opt.applyScan(&cfg)
		}
	}
	if err := validateScanIntervals(ivs); err != nil {
		return nil, err
	}
	c := &durableCursor{batch: cfg.batch, srcs: make([]durableSource, 0, len(snapshot)+1)}
	for _, r := range snapshot {
		cur, err := r.st.ScanCursor(ivs, opts...)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.srcs = append(c.srcs, durableSource{cur: cur, dead: tombSet(r.tombKeys, r.tombs)})
	}
	// The memtable is the newest source: fully resident, so it arrives as
	// one pre-filtered buffered batch. Its tombstones shadow every run but
	// not its own puts (a put sequenced after a delete survives it).
	mem := durableSource{done: true, wm: math.MaxUint64}
	for _, e := range puts {
		if query.IntervalsContain(ivs, e.Key) {
			mem.keys = append(mem.keys, e.Key)
			mem.recs = append(mem.recs, Record{Point: grid.Point(e.Point).Clone(), Payload: e.Payload})
		}
	}
	if len(tombs) > 0 {
		tombKeys := make([]uint64, len(tombs))
		tombRecs := make([]Record, len(tombs))
		for i, e := range tombs {
			tombKeys[i], tombRecs[i] = e.Key, Record{Payload: e.Payload}
		}
		mem.dead = tombSet(tombKeys, tombRecs)
	}
	c.srcs = append(c.srcs, mem)
	return c, nil
}

// tombSet builds the (key, payload) identity set of one source's
// tombstones — the same projection Scan's shadow uses. Key equality
// implies point equality (the curve is a bijection).
func tombSet(tombKeys []uint64, tombs []Record) map[[2]uint64]bool {
	if len(tombs) == 0 {
		return nil
	}
	dead := make(map[[2]uint64]bool, len(tombs))
	for i, tk := range tombKeys {
		dead[[2]uint64{tk, tombs[i].Payload}] = true
	}
	return dead
}

// durableSource is one leg of the merge: a run's cursor (or the resident
// memtable), its currently buffered batch, and the shadowing state it
// contributes.
type durableSource struct {
	cur  BatchCursor // nil for the memtable leg
	recs []Record    // buffered batch (aliases cur's buffers)
	keys []uint64
	pos  int
	wm   uint64 // watermark of the buffered batch; MaxUint64 once done
	done bool
	dead map[[2]uint64]bool // tombstones shadowing every older source
	dark []query.Interval   // merged dark union this source has delivered
}

// addDark folds one delta into the source's union; deltas from a single
// cursor arrive in ascending Lo order (see storeCursor.addDark).
func (s *durableSource) addDark(ks query.Interval) {
	if n := len(s.dark); n > 0 && ks.Lo <= s.dark[n-1].Hi {
		if ks.Hi > s.dark[n-1].Hi {
			s.dark[n-1].Hi = ks.Hi
		}
		return
	}
	s.dark = append(s.dark, ks)
}

// durableCursor merges the sources by (curve key, source index). A
// candidate may be emitted only once every source's frontier has passed
// its key, which the per-source refill guarantees: when the candidate is
// source i's head, every other buffered source's head is >= it (heads are
// below their own watermarks), and every drained source's watermark
// exceeds it — so no unseen dark span or smaller-keyed record can arrive
// later, and the dark union accumulated so far is final for that key.
type durableCursor struct {
	srcs  []durableSource
	batch int

	pagesThis int

	outRecs []Record
	outKeys []uint64
	outDark []query.Interval

	done bool
	err  error
}

func (c *durableCursor) Next(ctx context.Context) (Batch, error) {
	if c.err != nil {
		return Batch{}, c.err
	}
	if c.done {
		return Batch{}, io.EOF
	}
	c.outRecs = c.outRecs[:0]
	c.outKeys = c.outKeys[:0]
	c.outDark = c.outDark[:0]
	c.pagesThis = 0
	var lastKey uint64
	haveLast := false
	for {
		// Refill every drained source (a cursor may yield record-free
		// batches while crossing dark pages — keep pulling), then pick the
		// smallest (head key, source index).
		pick := -1
		var pk uint64
		for i := range c.srcs {
			s := &c.srcs[i]
			for !s.done && s.pos >= len(s.recs) {
				b, err := s.cur.Next(ctx)
				if err == io.EOF {
					s.done = true
					s.wm = math.MaxUint64
					break
				}
				if err != nil {
					return c.fail(err)
				}
				s.recs, s.keys, s.pos, s.wm = b.Records, b.Keys, 0, b.Watermark
				c.pagesThis += b.PagesRead
				for _, ks := range b.Dark {
					c.outDark = append(c.outDark, ks)
					s.addDark(ks)
				}
			}
			if s.pos < len(s.recs) {
				if k := s.keys[s.pos]; pick < 0 || k < pk {
					pick, pk = i, k
				}
			}
		}
		if pick < 0 {
			c.done = true
			break
		}
		// A full batch still consumes candidates tied with the last
		// emitted key: leaving one buffered would drag the frontier — the
		// batch watermark — down to a key the batch already contains.
		if len(c.outRecs) >= c.batch && (!haveLast || pk != lastKey) {
			break
		}
		s := &c.srcs[pick]
		rec := s.recs[s.pos]
		s.pos++
		if c.darkContains(pk) || c.shadowed(pick, pk, rec.Payload) {
			continue
		}
		c.outRecs = append(c.outRecs, rec)
		c.outKeys = append(c.outKeys, pk)
		lastKey, haveLast = pk, true
	}
	wm := uint64(math.MaxUint64)
	if !c.done {
		// The merge frontier: the smallest thing any source can still
		// produce — a buffered head, or a drained-buffer source's
		// watermark.
		for i := range c.srcs {
			s := &c.srcs[i]
			f := s.wm
			if s.pos < len(s.recs) {
				f = s.keys[s.pos]
			}
			if f < wm {
				wm = f
			}
		}
	}
	if c.done && len(c.outRecs) == 0 && len(c.outDark) == 0 && c.pagesThis == 0 {
		return Batch{}, io.EOF
	}
	return Batch{
		Records:   c.outRecs,
		Keys:      c.outKeys,
		Dark:      c.outDark,
		Watermark: wm,
		PagesRead: c.pagesThis,
	}, nil
}

func (c *durableCursor) Close() {
	c.done = true
	for i := range c.srcs {
		if c.srcs[i].cur != nil {
			c.srcs[i].cur.Close()
		}
	}
	c.srcs = nil
	c.outRecs, c.outKeys, c.outDark = nil, nil, nil
}

func (c *durableCursor) fail(err error) (Batch, error) {
	c.err = err
	return Batch{}, err
}

// darkContains reports whether any source has declared key dark. The
// per-key finality argument in the type comment makes the answer at
// emission time equal to the answer against the fully merged tiling.
func (c *durableCursor) darkContains(key uint64) bool {
	for i := range c.srcs {
		if query.IntervalsContain(c.srcs[i].dark, key) {
			return true
		}
	}
	return false
}

// shadowed reports whether a newer source carries a tombstone for the
// candidate — source order is oldest run to newest run, then the
// memtable, so "newer" is any higher index.
func (c *durableCursor) shadowed(src int, key, payload uint64) bool {
	for i := src + 1; i < len(c.srcs); i++ {
		if c.srcs[i].dead[[2]uint64{key, payload}] {
			return true
		}
	}
	return false
}
