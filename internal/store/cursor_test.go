package store_test

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/curve"
	"repro/internal/faultio"
	"repro/internal/grid"
	"repro/internal/query"
	"repro/internal/store"
)

// drainCursor collects a cursor into the ScanResult shape, checking the
// batch invariants along the way: Keys aligned with Records, every key
// below the batch watermark, and nothing — record key or dark span Lo —
// ever arriving below an earlier watermark.
func drainCursor(t *testing.T, ctx context.Context, cur store.BatchCursor, c curve.Curve) store.ScanResult {
	t.Helper()
	var res store.ScanResult
	prevWM := uint64(0)
	for {
		b, err := cur.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("cursor Next: %v", err)
		}
		if len(b.Keys) != len(b.Records) {
			t.Fatalf("batch has %d keys for %d records", len(b.Keys), len(b.Records))
		}
		for i, r := range b.Records {
			k := b.Keys[i]
			if c != nil && c.Index(r.Point) != k {
				t.Fatalf("key %d does not match record %v (index %d)", k, r.Point, c.Index(r.Point))
			}
			if k >= b.Watermark {
				t.Fatalf("key %d at or above its batch watermark %d", k, b.Watermark)
			}
			if k < prevWM {
				t.Fatalf("key %d below an earlier watermark %d", k, prevWM)
			}
		}
		for _, d := range b.Dark {
			if d.Lo < prevWM {
				t.Fatalf("dark span [%d, %d) starts below an earlier watermark %d", d.Lo, d.Hi, prevWM)
			}
		}
		prevWM = b.Watermark
		res.Records = append(res.Records, b.Records...)
		res.Unavailable = append(res.Unavailable, b.Dark...)
		res.PagesRead += b.PagesRead
	}
	res.Unavailable = query.MergeIntervals(res.Unavailable)
	cur.Close()
	return res
}

// sameSlices is reflect.DeepEqual with nil and empty considered equal —
// the cursor accumulates into nil slices where Scan pre-allocates.
func sameSlices[T any](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || reflect.DeepEqual(a, b)
}

// dupHeavyStore builds a store whose records are drawn from a small pool
// of points, so long runs of duplicate curve keys straddle page
// boundaries — the case the cursor's boundary holdback exists for.
func dupHeavyStore(t *testing.T, u *grid.Universe, name string, n, pool int, seed int64, ps int) (curve.Curve, *store.Store) {
	t.Helper()
	c, err := curve.ByName(name, u, seed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	pts := make([]grid.Point, pool)
	for i := range pts {
		p := u.NewPoint()
		for j := range p {
			p[j] = uint32(rng.Intn(int(u.Side())))
		}
		pts[i] = p
	}
	recs := make([]store.Record, n)
	for i := range recs {
		recs[i] = store.Record{Point: pts[rng.Intn(pool)], Payload: uint64(i)}
	}
	st, err := store.Bulkload(c, recs, store.Config{PageSize: ps, Fanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	return c, st
}

// TestCursorEqualsScanProperty: draining ScanCursor is bit-identical to
// Scan — records, merged dark tiling, PagesRead, and Stats charges — for
// random boxes over duplicate-heavy stores with injected page loss, across
// page geometries and batch sizes.
func TestCursorEqualsScanProperty(t *testing.T) {
	u := grid.MustNew(2, 5)
	ctx := context.Background()
	for _, cfg := range []struct {
		curveName string
		ps        int
		batch     int
		lostFrac  float64
		seed      int64
	}{
		{"hilbert", 4, 1, 0.2, 11},
		{"hilbert", 8, 3, 0.15, 12},
		{"z", 2, 7, 0.3, 13},
		{"z", 8, 4096, 0.1, 14},
		{"snake", 16, 64, 0, 15},
	} {
		c, st := dupHeavyStore(t, u, cfg.curveName, 3000, 40, cfg.seed, cfg.ps)
		if cfg.lostFrac > 0 {
			inj, err := faultio.Wrap(st.DefaultDevice(), faultio.Config{Seed: cfg.seed, LostFrac: cfg.lostFrac})
			if err != nil {
				t.Fatal(err)
			}
			if err := st.SetDevice(inj); err != nil {
				t.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(cfg.seed * 101))
		for q := 0; q < 12; q++ {
			ivs := query.DecomposeBox(c, randomTestBox(rng, u))
			st.ResetStats()
			want, err := st.Scan(ctx, ivs)
			if err != nil {
				t.Fatal(err)
			}
			scanStats := st.Stats()
			st.ResetStats()
			cur, err := st.ScanCursor(ivs, store.ScanBatchSize(cfg.batch))
			if err != nil {
				t.Fatal(err)
			}
			got := drainCursor(t, ctx, cur, c)
			if !sameSlices(got.Records, want.Records) {
				t.Fatalf("ps=%d batch=%d: cursor records diverge from Scan (%d vs %d)",
					cfg.ps, cfg.batch, len(got.Records), len(want.Records))
			}
			if !sameSlices(got.Unavailable, want.Unavailable) {
				t.Fatalf("ps=%d batch=%d: cursor dark %v, Scan dark %v",
					cfg.ps, cfg.batch, got.Unavailable, want.Unavailable)
			}
			if got.PagesRead != want.PagesRead {
				t.Fatalf("ps=%d batch=%d: cursor PagesRead %d, Scan %d",
					cfg.ps, cfg.batch, got.PagesRead, want.PagesRead)
			}
			if cursorStats := st.Stats(); cursorStats != scanStats {
				t.Fatalf("cursor stats %+v, Scan stats %+v", cursorStats, scanStats)
			}
		}
	}
}

// TestDurableCursorEqualsScan: the Durable cursor's k-way merge — runs,
// tombstones, memtable — drains bit-identically to Durable.Scan, under
// injected loss on the run devices.
func TestDurableCursorEqualsScan(t *testing.T) {
	u := grid.MustNew(2, 5)
	h, err := curve.ByName("hilbert", u, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, lossSeed := range []int64{0, 21, 22} {
		wrap := store.DeviceWrapper(nil)
		if lossSeed != 0 {
			wrap = func(d store.PageDevice) (store.PageDevice, error) {
				return faultio.Wrap(d, faultio.Config{Seed: lossSeed, LostFrac: 0.15})
			}
		}
		opts := []store.DurableOption{
			store.WithDurablePageSize(4),
			store.WithMemLimit(1 << 20),
			store.WithAutoCompact(false),
		}
		if wrap != nil {
			opts = append(opts, store.WithRunWrapper(wrap))
		}
		d, err := store.OpenDurable(t.TempDir(), h, opts...)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		rng := rand.New(rand.NewSource(lossSeed + 7))
		pool := make([]grid.Point, 30)
		for i := range pool {
			pool[i] = u.MustPoint(uint32(rng.Intn(int(u.Side()))), uint32(rng.Intn(int(u.Side()))))
		}
		var live []store.Record
		// Three flushed runs with deletions in between (tombstones shadow
		// older runs), then a resident memtable with more puts and deletes.
		for round := 0; round < 4; round++ {
			for i := 0; i < 150; i++ {
				r := store.Record{Point: pool[rng.Intn(len(pool))], Payload: uint64(round*1000 + i)}
				if err := d.Put(ctx, r); err != nil {
					t.Fatal(err)
				}
				live = append(live, r)
			}
			for i := 0; i < 20 && len(live) > 0; i++ {
				j := rng.Intn(len(live))
				if err := d.Delete(ctx, live[j]); err != nil {
					t.Fatal(err)
				}
				live = append(live[:j], live[j+1:]...)
			}
			if round < 3 {
				if err := d.Flush(ctx); err != nil {
					t.Fatal(err)
				}
			}
		}
		if got := d.Runs(); got != 3 {
			t.Fatalf("runs = %d, want 3", got)
		}
		rq := rand.New(rand.NewSource(lossSeed + 99))
		for q := 0; q < 10; q++ {
			ivs := query.DecomposeBox(h, randomTestBox(rq, u))
			want, err := d.Scan(ctx, ivs)
			if err != nil {
				t.Fatal(err)
			}
			cur, err := d.ScanCursor(ivs, store.ScanBatchSize(1+rq.Intn(64)))
			if err != nil {
				t.Fatal(err)
			}
			got := drainCursor(t, ctx, cur, h)
			if !sameSlices(got.Records, want.Records) {
				t.Fatalf("seed %d: durable cursor records diverge (%d vs %d)",
					lossSeed, len(got.Records), len(want.Records))
			}
			if !sameSlices(query.MergeIntervals(got.Unavailable), want.Unavailable) {
				t.Fatalf("seed %d: durable cursor dark %v, Scan dark %v",
					lossSeed, got.Unavailable, want.Unavailable)
			}
			if got.PagesRead != want.PagesRead {
				t.Fatalf("seed %d: durable cursor PagesRead %d, Scan %d", lossSeed, got.PagesRead, want.PagesRead)
			}
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := d.ScanCursor(nil); !errors.Is(err, store.ErrClosed) {
			t.Fatalf("ScanCursor on closed store: %v, want ErrClosed", err)
		}
	}
}

// TestCursorStrictFailsOnDarkPage: under ScanStrict the cursor fails with
// ErrPageUnavailable at the first lost page, and the error is sticky.
func TestCursorStrictFailsOnDarkPage(t *testing.T) {
	u := grid.MustNew(2, 5)
	_, _, st := buildStore(t, u, "hilbert", 1200, 7, store.Config{PageSize: 8, Fanout: 4})
	inj, err := faultio.Wrap(st.DefaultDevice(), faultio.Config{Seed: 3, LostPages: []int{2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetDevice(inj); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cur, err := st.ScanCursor([]query.Interval{{Lo: 0, Hi: u.N()}}, store.ScanStrict())
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	for i := 0; ; i++ {
		_, err := cur.Next(ctx)
		if err != nil {
			if !errors.Is(err, store.ErrPageUnavailable) {
				t.Fatalf("strict cursor err = %v, want ErrPageUnavailable", err)
			}
			if _, again := cur.Next(ctx); !errors.Is(again, store.ErrPageUnavailable) {
				t.Fatalf("error not sticky: %v", again)
			}
			return
		}
		if i > 1000 {
			t.Fatal("strict cursor never failed over a lost page")
		}
	}
}

// TestCursorContextCanceled: a canceled context fails Next with the
// context's error, with no fabricated batch.
func TestCursorContextCanceled(t *testing.T) {
	u := grid.MustNew(2, 5)
	_, _, st := buildStore(t, u, "z", 1200, 11, store.Config{PageSize: 4, Fanout: 4})
	cur, err := st.ScanCursor([]query.Interval{{Lo: 0, Hi: u.N()}})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b, err := cur.Next(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(b.Records) != 0 || len(b.Dark) != 0 {
		t.Fatalf("canceled Next fabricated a batch: %+v", b)
	}
}

// TestCursorRejectsUnsortedIntervals: the watermark contract needs sorted,
// disjoint intervals, so the constructor enforces them.
func TestCursorRejectsUnsortedIntervals(t *testing.T) {
	u := grid.MustNew(2, 5)
	_, _, st := buildStore(t, u, "z", 100, 11, store.Config{PageSize: 4, Fanout: 4})
	if _, err := st.ScanCursor([]query.Interval{{Lo: 10, Hi: 20}, {Lo: 5, Hi: 9}}); err == nil {
		t.Fatal("unsorted intervals accepted")
	}
	if _, err := st.ScanCursor([]query.Interval{{Lo: 20, Hi: 10}}); err == nil {
		t.Fatal("inverted interval accepted")
	}
}

// TestCursorNextAllocs: once its buffers are warm, a cursor batch costs
// zero allocations on the in-memory device — the regression gate for the
// streaming hot path.
func TestCursorNextAllocs(t *testing.T) {
	u := grid.MustNew(2, 5)
	_, _, st := buildStore(t, u, "hilbert", 8000, 5, store.Config{PageSize: 8, Fanout: 4})
	ivs := []query.Interval{{Lo: 0, Hi: u.N()}}
	ctx := context.Background()
	cur, err := st.ScanCursor(ivs, store.ScanBatchSize(64))
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	for i := 0; i < 70; i++ { // warm the reused buffers to their high-water marks
		if _, err := cur.Next(ctx); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(40, func() {
		if _, err := cur.Next(ctx); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state cursor Next allocated %.1f times, want 0", allocs)
	}
}
