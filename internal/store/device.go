package store

import (
	"errors"
	"fmt"
	"time"
)

// Page is one leaf page as served by a PageDevice: the keys and records of
// up to pageSize consecutive slots (the last page may be short). Devices may
// return views of shared memory; callers must treat pages as read-only.
type Page struct {
	ID      int
	Keys    []uint64
	Records []Record
}

// PageDevice is the storage medium leaf pages are fetched from. The default
// device is the infallible in-memory MemDevice built by Bulkload; fallible
// media (disk simulations, fault injectors) implement the same interface and
// are installed with SetDevice. Inner index levels always stay in RAM — the
// fault model covers leaf I/O, which is where the paper's page-access cost
// lives.
//
// Implementations must be safe for concurrent ReadPage calls.
type PageDevice interface {
	// ReadPage fetches one leaf page. A non-nil error means this attempt
	// failed; the store retries with bounded exponential backoff unless the
	// error wraps ErrPermanent.
	ReadPage(id int) (Page, error)
	// NumPages returns the number of leaf pages the device holds.
	NumPages() int
}

// ErrPermanent marks a page as unrecoverable: the store's retry loop gives
// up immediately instead of burning its attempt budget. Fault injectors wrap
// it for permanently lost pages.
var ErrPermanent = errors.New("page permanently unavailable")

// MemDevice is the default in-memory page device: reads are views into the
// bulkloaded arrays and never fail.
type MemDevice struct {
	pageSize int
	keys     []uint64
	records  []Record
}

// NumPages implements PageDevice.
func (m *MemDevice) NumPages() int {
	return (len(m.keys) + m.pageSize - 1) / m.pageSize
}

// ReadPage implements PageDevice.
func (m *MemDevice) ReadPage(id int) (Page, error) {
	if id < 0 || id >= m.NumPages() {
		return Page{}, fmt.Errorf("store: page %d out of range [0, %d)", id, m.NumPages())
	}
	lo := id * m.pageSize
	hi := lo + m.pageSize
	if hi > len(m.keys) {
		hi = len(m.keys)
	}
	return Page{ID: id, Keys: m.keys[lo:hi], Records: m.records[lo:hi]}, nil
}

var _ PageDevice = (*MemDevice)(nil)

// pageChecksum hashes a page's full content — keys, coordinates, payloads —
// with FNV-1a/64. Each step h = (h xor b)·prime is a bijection in h, so two
// inputs differing in any single byte can never re-converge: every
// single-bit corruption is guaranteed to change the sum.
func pageChecksum(pg Page) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	word := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * prime
			v >>= 8
		}
	}
	for _, k := range pg.Keys {
		word(k)
	}
	for _, r := range pg.Records {
		for _, c := range r.Point {
			word(uint64(c))
		}
		word(r.Payload)
	}
	return h
}

// RetryPolicy bounds the per-page retry loop around a fallible device.
// Backoff is *simulated*: the store is an I/O cost model, so the would-be
// sleep is accumulated in Stats.Backoff instead of stalling the process.
type RetryPolicy struct {
	MaxAttempts int           // total read attempts per page fetch (default 4)
	BaseBackoff time.Duration // backoff after the first failed attempt (default 1ms)
	MaxBackoff  time.Duration // exponential cap (default 100ms)
	JitterSeed  int64         // seeds the deterministic ±25% jitter
}

func (rp RetryPolicy) withDefaults() RetryPolicy {
	if rp.MaxAttempts == 0 {
		rp.MaxAttempts = 4
	}
	if rp.BaseBackoff == 0 {
		rp.BaseBackoff = time.Millisecond
	}
	if rp.MaxBackoff == 0 {
		rp.MaxBackoff = 100 * time.Millisecond
	}
	return rp
}

// backoff returns the simulated wait before retry number `retry` (1-based)
// of the given page: exponential in the retry count, capped at MaxBackoff,
// with a deterministic ±25% jitter so retries across pages decorrelate
// reproducibly.
func (rp RetryPolicy) backoff(page, retry int) time.Duration {
	d := rp.BaseBackoff
	for i := 1; i < retry && d < rp.MaxBackoff; i++ {
		d *= 2
	}
	if d > rp.MaxBackoff {
		d = rp.MaxBackoff
	}
	h := splitmix64(uint64(rp.JitterSeed) ^ uint64(page)*0x9e3779b97f4a7c15 ^ uint64(retry)<<48)
	jitter := 0.75 + 0.5*float64(h>>11)/float64(1<<53)
	return time.Duration(float64(d) * jitter)
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed hash used for
// deterministic jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
