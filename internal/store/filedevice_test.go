package store

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/query"
)

func testBox(rng *rand.Rand, u *grid.Universe) query.Box {
	lo := u.NewPoint()
	hi := u.NewPoint()
	for j := range lo {
		a := uint32(rng.Intn(int(u.Side())))
		b := uint32(rng.Intn(int(u.Side())))
		if a > b {
			a, b = b, a
		}
		lo[j], hi[j] = a, b
	}
	b, err := query.NewBox(u, lo, hi)
	if err != nil {
		panic(err)
	}
	return b
}

// TestFileRoundTripIdentical is the differential property the durable path
// rests on: Bulkload → WriteFile → OpenFile yields a store record-for-record
// identical to the in-memory one — same page count, same per-page checksums,
// same index levels, and identical scan results over random boxes.
func TestFileRoundTripIdentical(t *testing.T) {
	ctx := context.Background()
	for _, d := range []int{1, 2, 3} {
		u := grid.MustNew(d, 4)
		h := curve.NewHilbert(u)
		recs := randomRecords(u, 900, int64(d))
		mem, err := Bulkload(h, recs, Config{PageSize: 8, Fanout: 4})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "run-000001.sfc")
		if err := mem.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		file, err := OpenFile(path, h, WithFanout(4))
		if err != nil {
			t.Fatal(err)
		}
		defer file.CloseDevice()

		if file.Len() != mem.Len() || file.NumPages() != mem.NumPages() {
			t.Fatalf("d=%d: len/pages %d/%d, want %d/%d", d, file.Len(), file.NumPages(), mem.Len(), mem.NumPages())
		}
		if !reflect.DeepEqual(file.keys, mem.keys) {
			t.Fatalf("d=%d: key columns differ", d)
		}
		if !reflect.DeepEqual(file.sums, mem.sums) {
			t.Fatalf("d=%d: per-page checksums differ", d)
		}
		if !reflect.DeepEqual(file.levels, mem.levels) {
			t.Fatalf("d=%d: index levels differ", d)
		}
		// Record-for-record: every page decodes to the exact in-memory page.
		for id := 0; id < mem.NumPages(); id++ {
			mp, err := mem.fetchPage(id)
			if err != nil {
				t.Fatal(err)
			}
			fp, err := file.fetchPage(id)
			if err != nil {
				t.Fatalf("d=%d: file page %d: %v", d, id, err)
			}
			if !reflect.DeepEqual(mp, fp) {
				t.Fatalf("d=%d: page %d differs between devices", d, id)
			}
		}
		rng := rand.New(rand.NewSource(int64(d) * 17))
		for q := 0; q < 12; q++ {
			b := testBox(rng, u)
			want, err := mem.ScanBox(ctx, b, ScanStrict())
			if err != nil {
				t.Fatal(err)
			}
			got, err := file.ScanBox(ctx, b, ScanStrict())
			if err != nil {
				t.Fatalf("d=%d: file scan: %v", d, err)
			}
			if !reflect.DeepEqual(want.Records, got.Records) {
				t.Fatalf("d=%d box %d: file-backed records differ from in-memory", d, q)
			}
			if want.PagesRead != got.PagesRead {
				t.Fatalf("d=%d box %d: PagesRead %d vs %d", d, q, got.PagesRead, want.PagesRead)
			}
		}
	}
}

// TestFileRoundTripEmpty: a store with zero records survives the disk round
// trip too.
func TestFileRoundTripEmpty(t *testing.T) {
	u := grid.MustNew(2, 3)
	z := curve.NewZ(u)
	mem, err := Bulkload(z, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "empty.sfc")
	if err := mem.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	file, err := OpenFile(path, z)
	if err != nil {
		t.Fatal(err)
	}
	defer file.CloseDevice()
	if file.Len() != 0 || file.NumPages() != 0 {
		t.Fatalf("len=%d pages=%d", file.Len(), file.NumPages())
	}
	res, err := file.Scan(context.Background(), []query.Interval{{Lo: 0, Hi: u.N()}}, ScanStrict())
	if err != nil || len(res.Records) != 0 {
		t.Fatalf("scan over empty file store: %d records, %v", len(res.Records), err)
	}
}

// TestWriteFileFromFileBackedStore: a store whose records live only on disk
// (opened with OpenFile) re-serializes byte-identically — WriteFile reads
// the pages back through the device.
func TestWriteFileFromFileBackedStore(t *testing.T) {
	u := grid.MustNew(2, 4)
	h := curve.NewHilbert(u)
	recs := randomRecords(u, 500, 9)
	mem, err := Bulkload(h, recs, Config{PageSize: 8, Fanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.sfc")
	p2 := filepath.Join(dir, "b.sfc")
	if err := mem.WriteFile(p1); err != nil {
		t.Fatal(err)
	}
	file, err := OpenFile(p1, h, WithFanout(4))
	if err != nil {
		t.Fatal(err)
	}
	defer file.CloseDevice()
	if file.records != nil {
		t.Fatal("file-backed store retains record content in RAM")
	}
	if err := file.WriteFile(p2); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(p1)
	b2, _ := os.ReadFile(p2)
	if !reflect.DeepEqual(b1, b2) {
		t.Fatal("re-serialized run differs from the original")
	}
}

// TestOpenFileDetectsCorruption: any single corrupted byte anywhere in the
// file — header, records, checksum table, trailer — must be rejected at
// open, never served.
func TestOpenFileDetectsCorruption(t *testing.T) {
	u := grid.MustNew(2, 4)
	h := curve.NewHilbert(u)
	mem, err := Bulkload(h, randomRecords(u, 120, 3), Config{PageSize: 8, Fanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.sfc")
	if err := mem.WriteFile(clean); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	offsets := []int{0, 9, 20, runHeaderSize + 3, len(data) - 5}
	for i := 0; i < 40; i++ {
		offsets = append(offsets, rng.Intn(len(data)))
	}
	for _, off := range offsets {
		bad := append([]byte(nil), data...)
		bad[off] ^= 1 << uint(rng.Intn(8))
		p := filepath.Join(dir, "bad.sfc")
		if err := os.WriteFile(p, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if st, err := OpenFile(p, h); err == nil {
			st.CloseDevice()
			t.Fatalf("bit flip at offset %d went undetected", off)
		}
	}
	// Truncations are rejected too.
	for _, n := range []int{0, 1, runHeaderSize - 1, runHeaderSize, len(data) - 1} {
		p := filepath.Join(dir, "short.sfc")
		if err := os.WriteFile(p, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if st, err := OpenFile(p, h); err == nil {
			st.CloseDevice()
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
}

// corruptingDevice flips a payload bit in one page after it leaves the
// device — simulating rot between the platter and the page cache.
type corruptingDevice struct {
	PageDevice
	page int
}

func (c *corruptingDevice) ReadPage(id int) (Page, error) {
	pg, err := c.PageDevice.ReadPage(id)
	if err == nil && id == c.page && len(pg.Records) > 0 {
		rs := make([]Record, len(pg.Records))
		copy(rs, pg.Records)
		rs[0] = Record{Point: rs[0].Point, Payload: rs[0].Payload ^ 1}
		pg = Page{ID: pg.ID, Keys: pg.Keys, Records: rs}
	}
	return pg, err
}

// TestFileBackedChecksumVerification: a page corrupted in flight is caught
// by the store's checksum verification and surfaces as ErrPageUnavailable
// under ScanStrict — the file-backed path inherits the full read-integrity
// machinery.
func TestFileBackedChecksumVerification(t *testing.T) {
	u := grid.MustNew(2, 4)
	h := curve.NewHilbert(u)
	mem, err := Bulkload(h, randomRecords(u, 300, 5), Config{PageSize: 8, Fanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.sfc")
	if err := mem.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	file, err := OpenFile(path, h,
		WithRetryPolicy(RetryPolicy{MaxAttempts: 2}),
		WithDeviceWrapper(func(dev PageDevice) (PageDevice, error) {
			return &corruptingDevice{PageDevice: dev, page: 0}, nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer file.CloseDevice()
	whole := []query.Interval{{Lo: 0, Hi: u.N()}}
	if _, err := file.Scan(context.Background(), whole, ScanStrict()); !errors.Is(err, ErrPageUnavailable) {
		t.Fatalf("strict scan over corrupted page: %v, want ErrPageUnavailable", err)
	}
	res, err := file.Scan(context.Background(), whole)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete() {
		t.Fatal("degraded scan reports complete over a corrupted page")
	}
}

// TestOpenFileValidation: geometry conflicts and misuse are rejected up
// front with clear errors.
func TestOpenFileValidation(t *testing.T) {
	u := grid.MustNew(2, 4)
	h := curve.NewHilbert(u)
	mem, err := Bulkload(h, randomRecords(u, 100, 1), Config{PageSize: 8, Fanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "run.sfc")
	if err := mem.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path, h, WithPageSize(16)); err == nil {
		t.Fatal("conflicting WithPageSize accepted")
	}
	if st, err := OpenFile(path, h, WithPageSize(8)); err != nil {
		t.Fatalf("agreeing WithPageSize rejected: %v", err)
	} else {
		st.CloseDevice()
	}
	if _, err := OpenFile(path, h, WithDevice(&MemDevice{})); err == nil {
		t.Fatal("WithDevice accepted by OpenFile")
	}
	u3 := grid.MustNew(3, 4)
	if _, err := OpenFile(path, curve.NewZ(u3)); err == nil {
		t.Fatal("2-d run opened under a 3-d curve")
	}
	// A run carrying tombstones is not a plain read-only store.
	tp := filepath.Join(dir, "tombs.sfc")
	tk := []uint64{3}
	tr := []Record{{Point: grid.Point{1, 1}, Payload: 0}}
	if err := writeRun(tp, runHeader{d: 2, pageSize: 8}, nil, nil, tk, tr); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(tp, h); err == nil {
		t.Fatal("tombstone-carrying run opened as a plain store")
	}
}
