package store

import (
	"math/rand"
	"testing"

	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/query"
)

// boxQuerySeedPath replicates the pre-device box query — records scanned
// straight out of the flat in-memory arrays — as the baseline the device
// indirection is measured against. It must stay behaviorally identical to
// RangeQuery on the default device.
func (st *Store) boxQuerySeedPath(b query.Box) []Record {
	var out []Record
	touched := map[int]bool{}
	for _, iv := range query.DecomposeBox(st.c, b) {
		lo := st.descend(iv.Lo)
		for i := lo; i < len(st.keys) && st.keys[i] < iv.Hi; i++ {
			page := i / st.pageSize
			if !touched[page] {
				touched[page] = true
				st.stats.leafReads.Add(1)
			}
			out = append(out, st.records[i])
		}
	}
	return out
}

func benchStore(tb testing.TB) (*Store, []query.Box) {
	tb.Helper()
	u := grid.MustNew(2, 6)
	h := curve.NewHilbert(u)
	rng := rand.New(rand.NewSource(21))
	recs := make([]Record, 6000)
	for i := range recs {
		p := u.NewPoint()
		for j := range p {
			p[j] = uint32(rng.Intn(int(u.Side())))
		}
		recs[i] = Record{Point: p, Payload: uint64(i)}
	}
	st, err := Bulkload(h, recs, Config{PageSize: 32, Fanout: 16})
	if err != nil {
		tb.Fatal(err)
	}
	var boxes []query.Box
	for x := uint32(0); x+16 <= u.Side(); x += 16 {
		for y := uint32(0); y+16 <= u.Side(); y += 16 {
			box, err := query.NewBox(u, u.MustPoint(x+1, y+2), u.MustPoint(x+12, y+13))
			if err != nil {
				tb.Fatal(err)
			}
			boxes = append(boxes, box)
		}
	}
	return st, boxes
}

// BenchmarkStoreFaultFree records the cost of the PageDevice indirection on
// fault-free reads: "seedpath" is the pre-device flat-array scan, "device"
// the same queries through the default MemDevice, "degraded" the
// degraded-mode entry point with nothing failing. The perf trajectory
// requirement is device ≤ 1.05 × seedpath.
func BenchmarkStoreFaultFree(b *testing.B) {
	st, boxes := benchStore(b)
	var sink int
	b.Run("seedpath", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += len(st.boxQuerySeedPath(boxes[i%len(boxes)]))
		}
	})
	b.Run("device", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := st.RangeQuery(boxes[i%len(boxes)])
			if err != nil {
				b.Fatal(err)
			}
			sink += len(out)
		}
	})
	b.Run("degraded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += len(st.RangeQueryDegraded(boxes[i%len(boxes)]).Records)
		}
	})
	_ = sink
}

// TestSeedPathParity pins the benchmark baseline to the device path: both
// must return identical records so the benchmark compares equal work.
func TestSeedPathParity(t *testing.T) {
	st, boxes := benchStore(t)
	for _, box := range boxes {
		want := st.boxQuerySeedPath(box)
		got, err := st.RangeQuery(box)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("seed path %d records, device path %d", len(want), len(got))
		}
		for i := range want {
			if !want[i].Point.Equal(got[i].Point) || want[i].Payload != got[i].Payload {
				t.Fatalf("record %d differs between seed path and device path", i)
			}
		}
	}
}
