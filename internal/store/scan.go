package store

import (
	"context"
	"sort"

	"repro/internal/query"
)

// ScanResult is the outcome of one Scan: every record the store could read
// from the requested curve intervals, plus an explicit description of the
// part it could not serve.
type ScanResult struct {
	// Records holds the readable records whose curve keys lie in the
	// scanned intervals, in curve-interval scan order (ascending curve key
	// within each interval, intervals in the given order — globally
	// ascending when the input is sorted).
	Records []Record
	// Unavailable lists the curve-index intervals the store could not
	// serve: sorted, disjoint, merged, and each contained in one of the
	// scanned intervals. Together with Records it tiles the scan exactly: a
	// stored record with key in the scanned intervals is in Records iff its
	// key lies outside every unavailable interval. Always empty for a
	// strict scan (the first dark page fails the scan instead).
	Unavailable []query.Interval
	// PagesRead counts the distinct leaf pages this scan touched,
	// including pages that stayed dark. Callers aggregate it into
	// pages-read metrics without diffing cumulative store stats under
	// concurrency.
	PagesRead int
}

// Complete reports whether the whole scan was served.
func (r ScanResult) Complete() bool { return len(r.Unavailable) == 0 }

// scanConfig is the resolved per-scan configuration.
type scanConfig struct {
	strict bool
	batch  int // cursor batch target; 0 means DefaultScanBatch
}

// ScanOption configures one Scan call.
type ScanOption interface {
	applyScan(*scanConfig)
}

type scanOptionFunc func(*scanConfig)

func (f scanOptionFunc) applyScan(c *scanConfig) { f(c) }

// ScanStrict makes the first page that stays unavailable after the retry
// budget fail the whole scan with an error wrapping ErrPageUnavailable,
// instead of subtracting its key span into ScanResult.Unavailable. Use it
// when a partial answer is worthless — conformance oracles, strict
// consistency checks — and the default degraded mode when availability
// matters more than completeness.
func ScanStrict() ScanOption {
	return scanOptionFunc(func(c *scanConfig) { c.strict = true })
}

// ScanBatchSize sets the record count a ScanCursor targets per batch
// (default DefaultScanBatch). A batch ends only on a page boundary, so a
// run of duplicate keys can overshoot the target by up to a page. Values
// below 1 are ignored; Scan itself ignores the option entirely.
func ScanBatchSize(n int) ScanOption {
	return scanOptionFunc(func(c *scanConfig) {
		if n >= 1 {
			c.batch = n
		}
	})
}

// Scan is the store's single query entry point: it scans the given sorted,
// disjoint curve intervals (as produced by query.DecomposeBox or a shared
// decomposition cache) and returns the records whose keys they contain, in
// curve order.
//
// Cancellation and deadline are honored between leaf page reads, so a scan
// over many pages stops within one page fetch of ctx ending; a canceled
// scan returns the context's error, never a fabricated partial result.
//
// By default the scan is degraded: pages that stay unavailable after the
// retry budget do not fail it — their key spans are subtracted from the
// result and reported as dark intervals in ScanResult.Unavailable. With
// ScanStrict the first such page fails the scan. With the default in-memory
// device (or a fault injector that injects nothing) both modes return
// byte-identical records and charge identical Stats — degraded mode costs
// nothing when nothing fails.
//
// The deprecated Range* methods are thin wrappers over Scan; new callers —
// the sharded service and the network daemon above it — use Scan directly.
func (st *Store) Scan(ctx context.Context, ivs []query.Interval, opts ...ScanOption) (ScanResult, error) {
	var cfg scanConfig
	for _, opt := range opts {
		if opt != nil {
			opt.applyScan(&cfg)
		}
	}
	cache := newPageCache(st)
	type span struct {
		iv     query.Interval
		lo, hi int // slot range [lo, hi) of records inside iv
	}
	spans := make([]span, 0, len(ivs))
	// Pass 1: locate each interval's slot range and fetch every page the
	// scan touches, in scan order, collecting the dark key spans of failed
	// pages (or failing fast under ScanStrict).
	var dark []query.Interval
	for _, iv := range ivs {
		lo := st.descend(iv.Lo)
		hi := lo + sort.Search(len(st.keys)-lo, func(i int) bool { return st.keys[lo+i] >= iv.Hi })
		spans = append(spans, span{iv: iv, lo: lo, hi: hi})
		if lo == hi {
			continue
		}
		for page := lo / st.pageSize; page <= (hi-1)/st.pageSize; page++ {
			if err := ctx.Err(); err != nil {
				return ScanResult{PagesRead: cache.pagesRead()}, err
			}
			if _, err := cache.get(page); err != nil {
				if cfg.strict {
					return ScanResult{PagesRead: cache.pagesRead()}, err
				}
				ks := st.pageKeySpan(page)
				if ks.Lo < iv.Lo {
					ks.Lo = iv.Lo
				}
				if ks.Hi > iv.Hi {
					ks.Hi = iv.Hi
				}
				if ks.Lo < ks.Hi {
					dark = append(dark, ks)
				}
			}
		}
	}
	dark = query.MergeIntervals(dark)
	// Pass 2: collect records, skipping dark pages and any record whose key
	// falls in a dark interval (duplicate keys straddling a page boundary
	// are only partially readable, so the whole key goes dark).
	var out []Record
	cur := -1 // memoize the scan's current page: pages arrive consecutively
	var pg Page
	var pgErr error
	for _, sp := range spans {
		for i := sp.lo; i < sp.hi; i++ {
			if id := i / st.pageSize; id != cur {
				pg, pgErr = cache.get(id)
				cur = id
			}
			if pgErr != nil || query.IntervalsContain(dark, st.keys[i]) {
				continue
			}
			out = append(out, pg.Records[i%st.pageSize])
		}
	}
	return ScanResult{
		Records:     out,
		Unavailable: dark,
		PagesRead:   cache.pagesRead(),
	}, nil
}

// ScanBox decomposes the box through the store's curve and scans it — the
// box-level convenience over Scan. Callers that share decompositions (the
// service layer's cache) decompose once and call Scan directly.
func (st *Store) ScanBox(ctx context.Context, b query.Box, opts ...ScanOption) (ScanResult, error) {
	return st.Scan(ctx, query.DecomposeBox(st.c, b), opts...)
}

// pagesRead counts the distinct pages this cache touched, dark ones
// included.
func (pc *pageCache) pagesRead() int { return len(pc.pages) + len(pc.failed) }
