package store_test

import (
	"testing"

	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/query"
	"repro/internal/store"
)

// FuzzBulkload drives Bulkload with arbitrary record sets — duplicates,
// empty input, out-of-universe points — and arbitrary page geometry.
// Construction must never panic: it either rejects the input with an error
// (exactly when a record leaves the universe or the geometry is invalid) or
// builds a store that serves every record back through a full-box query.
func FuzzBulkload(f *testing.F) {
	f.Add([]byte{}, uint8(4), uint8(4))
	f.Add([]byte{1, 2, 3, 4, 1, 2}, uint8(2), uint8(2))       // duplicates
	f.Add([]byte{200, 1, 0, 0}, uint8(8), uint8(4))           // out of universe
	f.Add([]byte{7, 7, 0, 7, 7, 0, 3, 3}, uint8(1), uint8(3)) // page size 1 -> error
	f.Add([]byte{5, 5}, uint8(0), uint8(0))                   // defaults
	f.Fuzz(func(t *testing.T, data []byte, pageSize, fanout uint8) {
		u := grid.MustNew(2, 3) // side 8: bytes >= 8 fall outside
		z := curve.NewZ(u)
		recs := make([]store.Record, 0, len(data)/2)
		inUniverse := true
		for i := 0; i+1 < len(data); i += 2 {
			p := grid.Point{uint32(data[i]), uint32(data[i+1])}
			if !u.Contains(p) {
				inUniverse = false
			}
			recs = append(recs, store.Record{Point: p, Payload: uint64(i)})
		}
		st, err := store.Bulkload(z, recs, store.Config{PageSize: int(pageSize), Fanout: int(fanout)})
		wantErr := !inUniverse || pageSize == 1 || fanout == 1
		if (err != nil) != wantErr {
			t.Fatalf("Bulkload(%d recs, ps=%d, fo=%d): err=%v, wantErr=%v", len(recs), pageSize, fanout, err, wantErr)
		}
		if err != nil {
			return
		}
		if st.Len() != len(recs) {
			t.Fatalf("Len = %d, loaded %d", st.Len(), len(recs))
		}
		full, err := query.NewBox(u, u.NewPoint(), u.MustPoint(u.Side()-1, u.Side()-1))
		if err != nil {
			t.Fatal(err)
		}
		got, err := st.RangeQuery(full)
		if err != nil {
			t.Fatalf("full-box query on default device: %v", err)
		}
		if len(got) != len(recs) {
			t.Fatalf("full box returned %d of %d records", len(got), len(recs))
		}
		// Payload multiset preserved (payloads are distinct by construction).
		seen := map[uint64]bool{}
		for _, r := range got {
			if seen[r.Payload] {
				t.Fatalf("payload %d duplicated", r.Payload)
			}
			seen[r.Payload] = true
		}
		deg := st.RangeQueryDegraded(full)
		if !deg.Complete() || len(deg.Records) != len(recs) {
			t.Fatalf("degraded full box: %d records, %d dark intervals", len(deg.Records), len(deg.Unavailable))
		}
	})
}
