package store

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/query"
)

// durableModel is the ground truth a durable store is checked against: the
// surviving record instances in acknowledgment order.
type durableModel struct {
	c    curve.Curve
	recs []Record
}

func (m *durableModel) put(r Record) { m.recs = append(m.recs, r) }
func (m *durableModel) delete(r Record) {
	kept := m.recs[:0]
	for _, x := range m.recs {
		if m.c.Index(x.Point) != m.c.Index(r.Point) || x.Payload != r.Payload {
			kept = append(kept, x)
		}
	}
	m.recs = kept
}

// expect returns the surviving records sorted stably by curve key — the
// order a full-universe scan must produce.
func (m *durableModel) expect() []Record {
	type keyed struct {
		key uint64
		rec Record
	}
	ks := make([]keyed, len(m.recs))
	for i, r := range m.recs {
		ks[i] = keyed{m.c.Index(r.Point), r}
	}
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && ks[j].key < ks[j-1].key; j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
	out := make([]Record, len(ks))
	for i, k := range ks {
		out[i] = k.rec
	}
	return out
}

func wholeUniverse(u *grid.Universe) []query.Interval {
	return []query.Interval{{Lo: 0, Hi: u.N()}}
}

func checkDurable(t *testing.T, d *Durable, m *durableModel, label string) {
	t.Helper()
	res, err := d.Scan(context.Background(), wholeUniverse(d.c.Universe()), ScanStrict())
	if err != nil {
		t.Fatalf("%s: scan: %v", label, err)
	}
	want := m.expect()
	if len(want) == 0 {
		want = nil
	}
	got := res.Records
	if len(got) == 0 {
		got = nil
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: scan returned %d records, want %d\n got %v\nwant %v", label, len(got), len(want), got, want)
	}
}

func durableRec(u *grid.Universe, rng *rand.Rand, payload uint64) Record {
	p := u.NewPoint()
	for j := range p {
		p[j] = uint32(rng.Intn(int(u.Side())))
	}
	return Record{Point: p, Payload: payload}
}

func TestDurablePutFlushReopen(t *testing.T) {
	u := grid.MustNew(2, 4)
	h := curve.NewHilbert(u)
	dir := t.TempDir()
	d, err := OpenDurable(dir, h, WithDurablePageSize(4), WithAutoCompact(false))
	if err != nil {
		t.Fatal(err)
	}
	m := &durableModel{c: h}
	rng := rand.New(rand.NewSource(1))
	ctx := context.Background()
	for i := 0; i < 60; i++ {
		r := durableRec(u, rng, uint64(i))
		if err := d.Put(ctx, r); err != nil {
			t.Fatal(err)
		}
		m.put(r)
	}
	checkDurable(t, d, m, "memtable only")
	if err := d.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if d.Runs() != 1 || d.MemOps() != 0 {
		t.Fatalf("after flush: runs=%d memOps=%d", d.Runs(), d.MemOps())
	}
	checkDurable(t, d, m, "after flush")
	for i := 60; i < 90; i++ {
		r := durableRec(u, rng, uint64(i))
		if err := d.Put(ctx, r); err != nil {
			t.Fatal(err)
		}
		m.put(r)
	}
	checkDurable(t, d, m, "run + memtable")
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurable(dir, h, WithDurablePageSize(4), WithAutoCompact(false))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := d2.Metrics().Counter("wal.replays").Value(); got != 1 {
		t.Fatalf("wal.replays = %d", got)
	}
	checkDurable(t, d2, m, "after reopen (WAL replay)")
	if d2.LastSeq() != 90 {
		t.Fatalf("LastSeq = %d after 90 acked ops", d2.LastSeq())
	}
}

func TestDurableCrashLosesNothingAcked(t *testing.T) {
	u := grid.MustNew(2, 4)
	h := curve.NewHilbert(u)
	dir := t.TempDir()
	d, err := OpenDurable(dir, h, WithAutoCompact(false))
	if err != nil {
		t.Fatal(err)
	}
	m := &durableModel{c: h}
	rng := rand.New(rand.NewSource(2))
	ctx := context.Background()
	for i := 0; i < 25; i++ {
		r := durableRec(u, rng, uint64(i))
		if err := d.Put(ctx, r); err != nil {
			t.Fatal(err)
		}
		m.put(r)
	}
	if err := d.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(ctx, durableRec(u, rng, 99)); !errors.Is(err, ErrClosed) {
		t.Fatalf("put after crash: %v", err)
	}
	d2, err := OpenDurable(dir, h, WithAutoCompact(false))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	checkDurable(t, d2, m, "after crash")
}

func TestDurableCrashMidPutTruncatesTornTail(t *testing.T) {
	u := grid.MustNew(2, 4)
	h := curve.NewHilbert(u)
	ctx := context.Background()
	for seed := int64(0); seed < 10; seed++ {
		dir := t.TempDir()
		d, err := OpenDurable(dir, h, WithAutoCompact(false))
		if err != nil {
			t.Fatal(err)
		}
		m := &durableModel{c: h}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 10; i++ {
			r := durableRec(u, rng, uint64(i))
			if err := d.Put(ctx, r); err != nil {
				t.Fatal(err)
			}
			m.put(r)
		}
		// Die mid-append: the unacked record must vanish, the tail must heal.
		unacked := durableRec(u, rng, 1000)
		if err := d.CrashMidPut(unacked, seed); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		d2, err := OpenDurable(dir, h, WithAutoCompact(false))
		if err != nil {
			t.Fatalf("seed %d: recovery: %v", seed, err)
		}
		checkDurable(t, d2, m, fmt.Sprintf("seed %d after torn crash", seed))
		torn := d2.Metrics().Counter("wal.torn_tails_truncated").Value()
		if torn > 1 {
			t.Fatalf("seed %d: torn_tails_truncated = %d", seed, torn)
		}
		// Recovery is idempotent: a second crashless reopen sees the same state.
		if err := d2.Close(); err != nil {
			t.Fatal(err)
		}
		d3, err := OpenDurable(dir, h, WithAutoCompact(false))
		if err != nil {
			t.Fatal(err)
		}
		checkDurable(t, d3, m, fmt.Sprintf("seed %d second reopen", seed))
		if got := d3.Metrics().Counter("wal.torn_tails_truncated").Value(); got != 0 {
			t.Fatalf("seed %d: tail torn again after healing: %d", seed, got)
		}
		d3.Close()
	}
}

func TestDurableDeleteAndTombstoneShadowing(t *testing.T) {
	u := grid.MustNew(2, 4)
	h := curve.NewHilbert(u)
	dir := t.TempDir()
	d, err := OpenDurable(dir, h, WithDurablePageSize(4), WithAutoCompact(false))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	m := &durableModel{c: h}
	ctx := context.Background()
	a := Record{Point: grid.Point{1, 2}, Payload: 10}
	b := Record{Point: grid.Point{3, 3}, Payload: 20}
	step := func(op string, r Record) {
		t.Helper()
		var err error
		switch op {
		case "put":
			err = d.Put(ctx, r)
			m.put(r)
		case "del":
			err = d.Delete(ctx, r)
			m.delete(r)
		case "flush":
			err = d.Flush(ctx)
		}
		if err != nil {
			t.Fatalf("%s %v: %v", op, r, err)
		}
		checkDurable(t, d, m, op)
	}
	step("put", a)
	step("put", a) // second instance of the same record
	step("put", b)
	step("flush", Record{})
	step("del", a) // tombstone must shadow both flushed instances
	step("put", a) // resurrection after delete
	step("flush", Record{})
	step("del", b)
	step("flush", Record{}) // flush a tombstone-only memtable
	if d.Runs() != 3 {
		t.Fatalf("runs = %d", d.Runs())
	}
	// Shadowing survives reopen and compaction alike.
	if err := d.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	if d.Runs() != 1 {
		t.Fatalf("runs after compact = %d", d.Runs())
	}
	checkDurable(t, d, m, "after compact")
}

func TestDurableCompactionEquivalence(t *testing.T) {
	u := grid.MustNew(2, 5)
	h := curve.NewHilbert(u)
	dir := t.TempDir()
	d, err := OpenDurable(dir, h, WithDurablePageSize(8), WithAutoCompact(false), WithMemLimit(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	m := &durableModel{c: h}
	rng := rand.New(rand.NewSource(7))
	ctx := context.Background()
	live := []Record{}
	for round := 0; round < 5; round++ {
		for i := 0; i < 80; i++ {
			if len(live) > 0 && rng.Intn(4) == 0 {
				j := rng.Intn(len(live))
				r := live[j]
				live = append(live[:j], live[j+1:]...)
				if err := d.Delete(ctx, r); err != nil {
					t.Fatal(err)
				}
				m.delete(r)
			} else {
				r := durableRec(u, rng, uint64(round*1000+i))
				if err := d.Put(ctx, r); err != nil {
					t.Fatal(err)
				}
				m.put(r)
				live = append(live, r)
			}
		}
		if err := d.Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if d.Runs() != 5 {
		t.Fatalf("runs = %d", d.Runs())
	}
	checkDurable(t, d, m, "before compact")
	// Box scans agree across the compaction boundary, not just full scans.
	boxes := make([]query.Box, 8)
	before := make([]ScanResult, len(boxes))
	for i := range boxes {
		boxes[i] = testBox(rng, u)
		r, err := d.ScanBox(ctx, boxes[i], ScanStrict())
		if err != nil {
			t.Fatal(err)
		}
		before[i] = r
	}
	if err := d.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	if d.Runs() != 1 {
		t.Fatalf("runs after compact = %d", d.Runs())
	}
	checkDurable(t, d, m, "after compact")
	for i, b := range boxes {
		r, err := d.ScanBox(ctx, b, ScanStrict())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r.Records, before[i].Records) {
			t.Fatalf("box %d: records changed across compaction", i)
		}
	}
	if got := d.Metrics().Counter("durable.compactions").Value(); got != 1 {
		t.Fatalf("durable.compactions = %d", got)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurable(dir, h, WithDurablePageSize(8), WithAutoCompact(false))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	checkDurable(t, d2, m, "after compact + reopen")
}

func TestDurableAutoFlushAndAutoCompact(t *testing.T) {
	u := grid.MustNew(2, 4)
	h := curve.NewHilbert(u)
	d, err := OpenDurable(t.TempDir(), h, WithMemLimit(10), WithCompactThreshold(3))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	m := &durableModel{c: h}
	rng := rand.New(rand.NewSource(3))
	ctx := context.Background()
	for i := 0; i < 100; i++ {
		r := durableRec(u, rng, uint64(i))
		if err := d.Put(ctx, r); err != nil {
			t.Fatal(err)
		}
		m.put(r)
	}
	if got := d.Metrics().Counter("durable.flushes").Value(); got != 10 {
		t.Fatalf("durable.flushes = %d after 100 puts with limit 10", got)
	}
	if d.MemOps() != 0 {
		t.Fatalf("memOps = %d", d.MemOps())
	}
	checkDurable(t, d, m, "after auto flushes")
}

func TestDurableOrphanCleanup(t *testing.T) {
	u := grid.MustNew(2, 4)
	h := curve.NewHilbert(u)
	dir := t.TempDir()
	d, err := OpenDurable(dir, h, WithAutoCompact(false))
	if err != nil {
		t.Fatal(err)
	}
	m := &durableModel{c: h}
	ctx := context.Background()
	r := Record{Point: grid.Point{2, 2}, Payload: 1}
	if err := d.Put(ctx, r); err != nil {
		t.Fatal(err)
	}
	m.put(r)
	if err := d.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	d.Close()
	// Debris a crash mid-flush could leave: an uncommitted run, a next-gen
	// log, a temp manifest — plus a foreign file that must be left alone.
	for _, n := range []string{"run-000099.sfc", "wal-000099.log", "MANIFEST.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, n), []byte("debris"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	foreign := filepath.Join(dir, "notes.txt")
	if err := os.WriteFile(foreign, []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurable(dir, h, WithAutoCompact(false))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	checkDurable(t, d2, m, "after orphan cleanup")
	for _, n := range []string{"run-000099.sfc", "wal-000099.log", "MANIFEST.tmp"} {
		if _, err := os.Stat(filepath.Join(dir, n)); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived recovery", n)
		}
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatalf("foreign file deleted: %v", err)
	}
}

func TestDurableBulkloadFastPath(t *testing.T) {
	u := grid.MustNew(2, 5)
	h := curve.NewHilbert(u)
	dir := t.TempDir()
	d, err := OpenDurable(dir, h, WithDurablePageSize(8), WithAutoCompact(false))
	if err != nil {
		t.Fatal(err)
	}
	recs := randomRecords(u, 500, 11)
	ctx := context.Background()
	if err := d.Bulkload(ctx, recs); err != nil {
		t.Fatal(err)
	}
	m := &durableModel{c: h}
	for _, r := range recs {
		m.put(r)
	}
	checkDurable(t, d, m, "after bulkload")
	if d.LastSeq() != 0 {
		t.Fatalf("bulkload consumed sequence numbers: %d", d.LastSeq())
	}
	if err := d.Bulkload(ctx, recs); err == nil {
		t.Fatal("second bulkload into non-empty store accepted")
	}
	// Mutations layer on top of the bulkloaded run.
	extra := Record{Point: grid.Point{0, 0}, Payload: 9999}
	if err := d.Put(ctx, extra); err != nil {
		t.Fatal(err)
	}
	m.put(extra)
	checkDurable(t, d, m, "bulkload + put")
	d.Close()
	d2, err := OpenDurable(dir, h, WithAutoCompact(false))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	checkDurable(t, d2, m, "bulkload reopen")
}

// blackoutDevice fails every read of the listed pages permanently.
type blackoutDevice struct {
	PageDevice
	dead map[int]bool
}

func (b *blackoutDevice) ReadPage(id int) (Page, error) {
	if b.dead[id] {
		return Page{}, fmt.Errorf("%w: blackout page %d", ErrPermanent, id)
	}
	return b.PageDevice.ReadPage(id)
}

// TestDurableStrictSurfacesErrPageUnavailable pins the satellite contract on
// the merged scan path: when any run has a dark interval, a strict scan
// fails with an error matching store.ErrPageUnavailable via errors.Is, and a
// degraded scan keeps the exact tiling — records inside the dark union are
// withheld even when another layer (here the memtable) could serve them.
func TestDurableStrictSurfacesErrPageUnavailable(t *testing.T) {
	u := grid.MustNew(2, 4)
	h := curve.NewHilbert(u)
	dir := t.TempDir()
	wrap := func(dev PageDevice) (PageDevice, error) {
		return &blackoutDevice{PageDevice: dev, dead: map[int]bool{0: true}}, nil
	}
	d, err := OpenDurable(dir, h, WithDurablePageSize(4), WithAutoCompact(false),
		WithRunWrapper(wrap), WithDurableRetryPolicy(RetryPolicy{MaxAttempts: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 40; i++ {
		if err := d.Put(ctx, durableRec(u, rng, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	whole := wholeUniverse(u)
	if _, err := d.Scan(ctx, whole, ScanStrict()); !errors.Is(err, ErrPageUnavailable) {
		t.Fatalf("strict scan over dark page: %v, want ErrPageUnavailable", err)
	}
	res, err := d.Scan(ctx, whole)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete() {
		t.Fatal("degraded scan reports complete over a dark page")
	}
	// Exact tiling across layers: a fresh memtable put whose key lands
	// inside the dark union must be withheld; one outside must be returned.
	for i := 0; i < 200; i++ {
		r := durableRec(u, rng, uint64(10000+i))
		key := h.Index(r.Point)
		if err := d.Put(ctx, r); err != nil {
			t.Fatal(err)
		}
		got, err := d.Scan(ctx, whole)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, rec := range got.Records {
			if rec.Payload == r.Payload {
				found = true
			}
		}
		inDark := query.IntervalsContain(got.Unavailable, key)
		if found == inDark {
			t.Fatalf("put %d (key %d): found=%v inDark=%v — tiling broken", i, key, found, inDark)
		}
		if err := d.Delete(ctx, r); err != nil {
			t.Fatal(err)
		}
	}
}
