package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInterleavePaperExample(t *testing.T) {
	// Paper §IV.B: d=3, k=3, Z(101, 010, 011) = 100011101.
	got := Interleave([]uint32{0b101, 0b010, 0b011}, 3)
	want := uint64(0b100011101)
	if got != want {
		t.Fatalf("Interleave(101,010,011) = %b, want %b", got, want)
	}
}

func TestInterleaveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		d := 1 + rng.Intn(6)
		k := 1 + rng.Intn(62/d)
		x := make([]uint32, d)
		for i := range x {
			x[i] = rng.Uint32() & (1<<uint(k) - 1)
		}
		key := Interleave(x, k)
		if k*d < 64 && key >= 1<<uint(k*d) {
			t.Fatalf("d=%d k=%d key %d out of range", d, k, key)
		}
		got := make([]uint32, d)
		Deinterleave(key, k, got)
		for i := range x {
			if got[i] != x[i] {
				t.Fatalf("d=%d k=%d round trip: got %v want %v", d, k, got, x)
			}
		}
	}
}

func TestInterleaveMonotoneInMSB(t *testing.T) {
	// The first dimension's bit at each level is the most significant of the
	// group: flipping x[0]'s top bit must change the key by more than
	// flipping x[d-1]'s top bit.
	k := 4
	base := []uint32{0, 0, 0}
	hi0 := []uint32{1 << (k - 1), 0, 0}
	hiLast := []uint32{0, 0, 1 << (k - 1)}
	k0 := Interleave(hi0, k)
	kl := Interleave(hiLast, k)
	kb := Interleave(base, k)
	if !(k0 > kl && kl > kb) {
		t.Fatalf("significance ordering violated: %d %d %d", k0, kl, kb)
	}
}

func TestInterleave2MatchesGeneric(t *testing.T) {
	f := func(x, y uint32) bool {
		k := 31
		a := Interleave2(x&(1<<31-1), y&(1<<31-1))
		b := Interleave([]uint32{x & (1<<31 - 1), y & (1<<31 - 1)}, k)
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeinterleave2RoundTrip(t *testing.T) {
	f := func(x, y uint32) bool {
		x &= 1<<31 - 1
		y &= 1<<31 - 1
		gx, gy := Deinterleave2(Interleave2(x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInterleave3MatchesGeneric(t *testing.T) {
	f := func(x, y, z uint32) bool {
		x &= 1<<20 - 1
		y &= 1<<20 - 1
		z &= 1<<20 - 1
		a := Interleave3(x, y, z)
		b := Interleave([]uint32{x, y, z}, 20)
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeinterleave3RoundTrip(t *testing.T) {
	f := func(x, y, z uint32) bool {
		x &= 1<<20 - 1
		y &= 1<<20 - 1
		z &= 1<<20 - 1
		gx, gy, gz := Deinterleave3(Interleave3(x, y, z))
		return gx == x && gy == y && gz == z
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGrayRoundTrip(t *testing.T) {
	f := func(v uint64) bool { return GrayDecode(GrayEncode(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGrayAdjacency(t *testing.T) {
	// Consecutive ranks must differ in exactly one bit.
	for v := uint64(0); v < 4096; v++ {
		a, b := GrayEncode(v), GrayEncode(v+1)
		if x := a ^ b; x == 0 || x&(x-1) != 0 {
			t.Fatalf("gray codes of %d and %d differ in != 1 bit", v, v+1)
		}
	}
}

func TestGraySmallValues(t *testing.T) {
	want := []uint64{0, 1, 3, 2, 6, 7, 5, 4}
	for i, w := range want {
		if g := GrayEncode(uint64(i)); g != w {
			t.Fatalf("GrayEncode(%d) = %d, want %d", i, g, w)
		}
	}
}

func TestLog2(t *testing.T) {
	cases := map[uint64]int{1: 0, 2: 1, 3: 1, 4: 2, 1023: 9, 1024: 10, 0: 0}
	for v, want := range cases {
		if got := Log2(v); got != want {
			t.Fatalf("Log2(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, v := range []uint64{1, 2, 4, 1 << 40} {
		if !IsPow2(v) {
			t.Fatalf("IsPow2(%d) = false", v)
		}
	}
	for _, v := range []uint64{0, 3, 6, 1<<40 + 1} {
		if IsPow2(v) {
			t.Fatalf("IsPow2(%d) = true", v)
		}
	}
}

func TestAbsDiff(t *testing.T) {
	if AbsDiff(3, 10) != 7 || AbsDiff(10, 3) != 7 || AbsDiff(5, 5) != 0 {
		t.Fatal("AbsDiff wrong")
	}
}

func BenchmarkInterleaveGeneric(b *testing.B) {
	x := []uint32{0xDEAD, 0xBEEF, 0xCAFE}
	for i := 0; i < b.N; i++ {
		sinkU64 = Interleave(x, 16)
	}
}

func BenchmarkInterleave2Magic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkU64 = Interleave2(0xDEADBEEF, 0xCAFEBABE)
	}
}

func BenchmarkInterleave3Magic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkU64 = Interleave3(0xDEAD, 0xBEEF, 0xCAFE)
	}
}

var sinkU64 uint64
