package bits

import "testing"

// FuzzInterleaveRoundTrip fuzzes the generic Morton encode/decode pair over
// arbitrary dimension/width splits of the key budget.
func FuzzInterleaveRoundTrip(f *testing.F) {
	f.Add(uint8(2), uint8(8), uint64(0xDEADBEEF))
	f.Add(uint8(3), uint8(10), uint64(12345))
	f.Add(uint8(1), uint8(30), uint64(1<<29))
	f.Add(uint8(6), uint8(10), uint64(0))
	f.Fuzz(func(t *testing.T, dRaw, kRaw uint8, seed uint64) {
		d := 1 + int(dRaw)%8
		k := 1 + int(kRaw)%(MaxKeyBits/d)
		x := make([]uint32, d)
		s := seed
		for i := range x {
			s = s*6364136223846793005 + 1442695040888963407
			x[i] = uint32(s>>32) & (1<<uint(k) - 1)
		}
		key := Interleave(x, k)
		if k*d < 64 && key >= 1<<uint(k*d) {
			t.Fatalf("key %d out of range for d=%d k=%d", key, d, k)
		}
		got := make([]uint32, d)
		Deinterleave(key, k, got)
		for i := range x {
			if got[i] != x[i] {
				t.Fatalf("round trip d=%d k=%d: %v != %v", d, k, got, x)
			}
		}
	})
}

// FuzzGrayRoundTrip fuzzes the Gray encode/decode pair and the one-bit
// adjacency property.
func FuzzGrayRoundTrip(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1) << 63)
	f.Add(uint64(0xAAAAAAAAAAAAAAAA))
	f.Fuzz(func(t *testing.T, v uint64) {
		if GrayDecode(GrayEncode(v)) != v {
			t.Fatalf("gray round trip failed for %d", v)
		}
		if v < 1<<63-1 {
			x := GrayEncode(v) ^ GrayEncode(v+1)
			if x == 0 || x&(x-1) != 0 {
				t.Fatalf("gray adjacency failed at %d", v)
			}
		}
	})
}
