package bits

// Table-driven Morton encoding: per-byte lookup tables spread 8 coordinate
// bits at a time. This is the classic alternative to the magic-mask
// parallel-prefix spreads; BenchmarkInterleaveAblation compares the three
// implementations (generic loop, magic masks, byte LUT) — the design choice
// DESIGN.md calls out for the key-generation hot path.

// lut2 and lut3 hold the spread of every byte value for d=2 and d=3:
// lut2[b] has the bits of b at positions 0,2,4,…,14; lut3[b] at 0,3,6,…,21.
var (
	lut2 [256]uint32
	lut3 [256]uint32
)

func init() {
	for b := 0; b < 256; b++ {
		var s2, s3 uint32
		for bit := 0; bit < 8; bit++ {
			if b&(1<<uint(bit)) != 0 {
				s2 |= 1 << uint(2*bit)
				s3 |= 1 << uint(3*bit)
			}
		}
		lut2[b] = s2
		lut3[b] = s3
	}
}

// Interleave2LUT is Interleave2 implemented with byte lookup tables.
func Interleave2LUT(x, y uint32) uint64 {
	return spread2LUT(x)<<1 | spread2LUT(y)
}

func spread2LUT(v uint32) uint64 {
	return uint64(lut2[v&0xFF]) |
		uint64(lut2[v>>8&0xFF])<<16 |
		uint64(lut2[v>>16&0xFF])<<32 |
		uint64(lut2[v>>24&0xFF])<<48
}

// Interleave3LUT is Interleave3 implemented with byte lookup tables
// (coordinates of at most 20 bits, like Interleave3).
func Interleave3LUT(x, y, z uint32) uint64 {
	return spread3LUT(x)<<2 | spread3LUT(y)<<1 | spread3LUT(z)
}

func spread3LUT(v uint32) uint64 {
	v &= 0xFFFFF
	return uint64(lut3[v&0xFF]) |
		uint64(lut3[v>>8&0xFF])<<24 |
		uint64(lut3[v>>16&0xF])<<48
}
