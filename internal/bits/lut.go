package bits

// Table-driven Morton encoding: per-byte lookup tables spread 8 coordinate
// bits at a time. This is the classic alternative to the magic-mask
// parallel-prefix spreads; BenchmarkInterleaveAblation compares the three
// implementations (generic loop, magic masks, byte LUT) — the design choice
// DESIGN.md calls out for the key-generation hot path.

// lut2 and lut3 hold the spread of every byte value for d=2 and d=3:
// lut2[b] has the bits of b at positions 0,2,4,…,14; lut3[b] at 0,3,6,…,21.
// unlut2 and unlut3 are the matching compaction tables for byte-at-a-time
// decode: unlut2[b] collects bits 0,2,4,6 of the byte b into a nibble, and
// unlut3[w] collects bits 0,3,6 of the 9-bit chunk w into three bits.
var (
	lut2   [256]uint32
	lut3   [256]uint32
	unlut2 [256]uint8
	unlut3 [512]uint8
)

func init() {
	for b := 0; b < 256; b++ {
		var s2, s3 uint32
		var c2 uint8
		for bit := 0; bit < 8; bit++ {
			if b&(1<<uint(bit)) != 0 {
				s2 |= 1 << uint(2*bit)
				s3 |= 1 << uint(3*bit)
				if bit%2 == 0 {
					c2 |= 1 << uint(bit/2)
				}
			}
		}
		lut2[b] = s2
		lut3[b] = s3
		unlut2[b] = c2
	}
	for w := 0; w < 512; w++ {
		var c3 uint8
		for bit := 0; bit < 9; bit += 3 {
			if w&(1<<uint(bit)) != 0 {
				c3 |= 1 << uint(bit/3)
			}
		}
		unlut3[w] = c3
	}
}

// Interleave2LUT is Interleave2 implemented with byte lookup tables.
func Interleave2LUT(x, y uint32) uint64 {
	return spread2LUT(x)<<1 | spread2LUT(y)
}

func spread2LUT(v uint32) uint64 {
	return uint64(lut2[v&0xFF]) |
		uint64(lut2[v>>8&0xFF])<<16 |
		uint64(lut2[v>>16&0xFF])<<32 |
		uint64(lut2[v>>24&0xFF])<<48
}

// Interleave3LUT is Interleave3 implemented with byte lookup tables
// (coordinates of at most 20 bits, like Interleave3).
func Interleave3LUT(x, y, z uint32) uint64 {
	return spread3LUT(x)<<2 | spread3LUT(y)<<1 | spread3LUT(z)
}

func spread3LUT(v uint32) uint64 {
	v &= 0xFFFFF
	return uint64(lut3[v&0xFF]) |
		uint64(lut3[v>>8&0xFF])<<24 |
		uint64(lut3[v>>16&0xF])<<48
}

// Deinterleave2LUT is Deinterleave2 implemented byte-at-a-time: each key
// byte holds four bits of each coordinate, compacted with one table lookup
// per coordinate. The loop exits as soon as the remaining key bits are zero,
// so narrow keys (small d·k) cost proportionally less.
func Deinterleave2LUT(key uint64) (x, y uint32) {
	for sh := uint(0); key != 0; sh += 4 {
		b := uint8(key)
		x |= uint32(unlut2[b>>1]) << sh
		y |= uint32(unlut2[b]) << sh
		key >>= 8
	}
	return x, y
}

// Deinterleave3LUT is Deinterleave3 implemented nine-bits-at-a-time: each
// 9-bit chunk holds three bits of each coordinate, compacted with one
// 512-entry table lookup per coordinate.
func Deinterleave3LUT(key uint64) (x, y, z uint32) {
	for sh := uint(0); key != 0; sh += 3 {
		w := uint32(key) & 0x1FF
		x |= uint32(unlut3[w>>2]) << sh
		y |= uint32(unlut3[w>>1]) << sh
		z |= uint32(unlut3[w]) << sh
		key >>= 9
	}
	return x, y, z
}
