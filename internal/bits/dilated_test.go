package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDilatedMasksPartitionKey checks that the d masks are disjoint and
// together cover exactly the d·k key bits, with the lowest set bit of mask i
// at position d−1−i (the dilated one for that dimension).
func TestDilatedMasksPartitionKey(t *testing.T) {
	for d := 1; d <= 8; d++ {
		for k := 0; d*k <= MaxKeyBits && k <= 16; k++ {
			masks := DilatedMasks(d, k)
			var union uint64
			for i, m := range masks {
				if union&m != 0 {
					t.Fatalf("d=%d k=%d: mask %d overlaps earlier masks", d, k, i)
				}
				union |= m
				if k > 0 {
					if lsb := m & (-m); lsb != 1<<uint(d-1-i) {
						t.Fatalf("d=%d k=%d: mask %d lsb %#x, want bit %d", d, k, i, lsb, d-1-i)
					}
				}
			}
			var want uint64
			if d*k < 64 {
				want = 1<<uint(d*k) - 1
			} else {
				want = ^uint64(0)
			}
			if union != want {
				t.Fatalf("d=%d k=%d: masks cover %#x, want %#x", d, k, union, want)
			}
		}
	}
}

// dilatedOracle computes DilatedAdd/DilatedSub the slow way: deinterleave
// both keys, do the per-coordinate arithmetic mod 2^k, reinterleave, and
// mask. It is the independent reference the fuzz targets check against.
func dilatedOracle(a, b uint64, d, k, dim int, sub bool) uint64 {
	// Coordinates are uint32, so the oracle is defined for k <= 31.
	xa := make([]uint32, d)
	xb := make([]uint32, d)
	Deinterleave(a, k, xa)
	Deinterleave(b, k, xb)
	var mod uint32 = 1 << uint(k)
	var v uint32
	if sub {
		v = (xa[dim] - xb[dim]) & (mod - 1)
	} else {
		v = (xa[dim] + xb[dim]) & (mod - 1)
	}
	x := make([]uint32, d)
	x[dim] = v
	return Interleave(x, k)
}

func TestDilatedAddSubMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 20000; iter++ {
		d := 1 + rng.Intn(8)
		k := 1 + rng.Intn(oracleMaxK(d))
		var lim uint64 = 1
		if d*k < 64 {
			lim = 1 << uint(d*k)
		}
		a := rng.Uint64()
		b := rng.Uint64()
		if lim > 1 {
			a %= lim
			b %= lim
		}
		dim := rng.Intn(d)
		mask := DilatedMasks(d, k)[dim]
		if got, want := DilatedAdd(a, b, mask), dilatedOracle(a, b, d, k, dim, false); got != want {
			t.Fatalf("DilatedAdd d=%d k=%d dim=%d a=%#x b=%#x: got %#x want %#x", d, k, dim, a, b, got, want)
		}
		if got, want := DilatedSub(a, b, mask), dilatedOracle(a, b, d, k, dim, true); got != want {
			t.Fatalf("DilatedSub d=%d k=%d dim=%d a=%#x b=%#x: got %#x want %#x", d, k, dim, a, b, got, want)
		}
	}
}

// oracleMaxK bounds k so that a coordinate fits in uint32.
func oracleMaxK(d int) int {
	k := MaxKeyBits / d
	if k > 31 {
		k = 31
	}
	return k
}

// TestDilatedWraparound pins the torus semantics: adding one at side−1 wraps
// to 0, subtracting one at 0 wraps to side−1.
func TestDilatedWraparound(t *testing.T) {
	for d := 1; d <= 4; d++ {
		for k := 1; k <= 6; k++ {
			masks := DilatedMasks(d, k)
			for dim := 0; dim < d; dim++ {
				m := masks[dim]
				lsb := m & (-m)
				if got := DilatedAdd(m, lsb, m); got != 0 {
					t.Fatalf("d=%d k=%d dim=%d: side-1 + 1 = %#x, want 0", d, k, dim, got)
				}
				if got := DilatedSub(0, lsb, m); got != m {
					t.Fatalf("d=%d k=%d dim=%d: 0 - 1 = %#x, want %#x", d, k, dim, got, m)
				}
			}
		}
	}
}

func TestDeinterleave2LUTMatchesMagic(t *testing.T) {
	f := func(key uint64) bool {
		key &= 1<<62 - 1
		xl, yl := Deinterleave2LUT(key)
		xm, ym := Deinterleave2(key)
		return xl == xm && yl == ym
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeinterleave3LUTMatchesMagic(t *testing.T) {
	f := func(key uint64) bool {
		key &= 1<<60 - 1
		xl, yl, zl := Deinterleave3LUT(key)
		xm, ym, zm := Deinterleave3(key)
		return xl == xm && yl == ym && zl == zm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// FuzzDilatedAdd fuzzes DilatedAdd against the deinterleave-add-reinterleave
// oracle over arbitrary (d, k) splits and dimensions.
func FuzzDilatedAdd(f *testing.F) {
	f.Add(uint8(2), uint8(10), uint8(0), uint64(0xDEADBEEF), uint64(5))
	f.Add(uint8(3), uint8(7), uint8(2), uint64(1)<<20, uint64(1)<<21)
	f.Add(uint8(1), uint8(30), uint8(0), uint64(1<<29), uint64(1))
	f.Fuzz(func(t *testing.T, dRaw, kRaw, dimRaw uint8, a, b uint64) {
		d := 1 + int(dRaw)%8
		k := 1 + int(kRaw)%oracleMaxK(d)
		dim := int(dimRaw) % d
		if d*k < 64 {
			lim := uint64(1) << uint(d*k)
			a %= lim
			b %= lim
		}
		mask := DilatedMasks(d, k)[dim]
		if got, want := DilatedAdd(a, b, mask), dilatedOracle(a, b, d, k, dim, false); got != want {
			t.Fatalf("DilatedAdd d=%d k=%d dim=%d a=%#x b=%#x: got %#x want %#x", d, k, dim, a, b, got, want)
		}
	})
}

// FuzzDilatedSub fuzzes DilatedSub against the same oracle.
func FuzzDilatedSub(f *testing.F) {
	f.Add(uint8(2), uint8(10), uint8(1), uint64(0xCAFEBABE), uint64(3))
	f.Add(uint8(4), uint8(5), uint8(3), uint64(0), uint64(1))
	f.Fuzz(func(t *testing.T, dRaw, kRaw, dimRaw uint8, a, b uint64) {
		d := 1 + int(dRaw)%8
		k := 1 + int(kRaw)%oracleMaxK(d)
		dim := int(dimRaw) % d
		if d*k < 64 {
			lim := uint64(1) << uint(d*k)
			a %= lim
			b %= lim
		}
		mask := DilatedMasks(d, k)[dim]
		if got, want := DilatedSub(a, b, mask), dilatedOracle(a, b, d, k, dim, true); got != want {
			t.Fatalf("DilatedSub d=%d k=%d dim=%d a=%#x b=%#x: got %#x want %#x", d, k, dim, a, b, got, want)
		}
	})
}
