package bits

// Dilated-integer arithmetic (Raman & Wise, "Converting to and from Dilated
// Integers"): a coordinate embedded in a Morton key occupies every d-th bit,
// and arithmetic on it can be carried out directly in key space by letting
// carries ripple through the gap bits and masking them away afterwards. This
// is the kernel behind the Z curve's NeighborKeys fast path: the key of the
// cell at x_i ± 1 is a handful of masked adds on the cell's own key — no
// deinterleave/reinterleave round trip.

// DilatedMasks returns one mask per dimension of a d-dimensional, k-level
// Morton key in this package's bit convention (Interleave): the mask for
// dimension i selects the bits of coordinate i, i.e. positions
// level·d + (d−1−i) for level = 0 … k−1. The lowest set bit of a mask is the
// dilated representation of 1 for that dimension (mask & -mask).
func DilatedMasks(d, k int) []uint64 {
	masks := make([]uint64, d)
	for i := 0; i < d; i++ {
		var m uint64
		for level := 0; level < k; level++ {
			m |= 1 << uint(level*d+(d-1-i))
		}
		masks[i] = m
	}
	return masks
}

// DilatedAdd adds two dilated integers sharing the same mask, modulo 2^k in
// the embedded coordinate: carries propagate through the gap bits (forced to
// one so they ripple to the next mask bit) and a carry out of the top mask
// bit is discarded, which is exactly the torus wraparound side−1 → 0. Only
// the masked bits of the result are returned; bits of a outside the mask do
// not influence the result and must be re-attached by the caller.
func DilatedAdd(a, b, mask uint64) uint64 {
	return ((a | ^mask) + (b & mask)) & mask
}

// DilatedSub subtracts the dilated integer b from a under the shared mask,
// modulo 2^k in the embedded coordinate: borrows propagate through the
// zeroed gap bits, and a borrow out of the top mask bit wraps 0 → side−1.
// As with DilatedAdd, only the masked bits are returned.
func DilatedSub(a, b, mask uint64) uint64 {
	return ((a & mask) - (b & mask)) & mask
}
