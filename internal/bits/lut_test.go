package bits

import (
	"testing"
	"testing/quick"
)

func TestInterleave2LUTMatchesMagic(t *testing.T) {
	f := func(x, y uint32) bool {
		x &= 1<<31 - 1
		y &= 1<<31 - 1
		return Interleave2LUT(x, y) == Interleave2(x, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInterleave3LUTMatchesMagic(t *testing.T) {
	f := func(x, y, z uint32) bool {
		x &= 1<<20 - 1
		y &= 1<<20 - 1
		z &= 1<<20 - 1
		return Interleave3LUT(x, y, z) == Interleave3(x, y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkInterleaveAblation compares the three Morton implementations —
// the key-generation design choice called out in DESIGN.md.
func BenchmarkInterleaveAblation(b *testing.B) {
	b.Run("d2/generic", func(b *testing.B) {
		x := []uint32{0xDEADBEE, 0xCAFEBAB}
		for i := 0; i < b.N; i++ {
			sinkU64 = Interleave(x, 28)
		}
	})
	b.Run("d2/magic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkU64 = Interleave2(0xDEADBEE, 0xCAFEBAB)
		}
	})
	b.Run("d2/lut", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkU64 = Interleave2LUT(0xDEADBEE, 0xCAFEBAB)
		}
	})
	b.Run("d3/generic", func(b *testing.B) {
		x := []uint32{0xDEAD, 0xBEEF, 0xCAFE}
		for i := 0; i < b.N; i++ {
			sinkU64 = Interleave(x, 16)
		}
	})
	b.Run("d3/magic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkU64 = Interleave3(0xDEAD, 0xBEEF, 0xCAFE)
		}
	})
	b.Run("d3/lut", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkU64 = Interleave3LUT(0xDEAD, 0xBEEF, 0xCAFE)
		}
	})
}
