// Package bits provides the low-level bit manipulation primitives used to
// construct space filling curve keys: Morton (bit-interleaved) codes in any
// number of dimensions, binary-reflected Gray codes, and small helpers shared
// by the curve implementations.
//
// # Conventions
//
// A d-dimensional Morton key interleaves the bits of d coordinates, each k
// bits wide, into a single d·k bit integer. Following the paper's definition
// of the Z curve (§IV.B), the most significant bit of the key is the most
// significant bit of the first coordinate, then the most significant bit of
// the second coordinate, and so on:
//
//	Z(x) = x1^1 x2^1 … xd^1  x1^2 x2^2 … xd^2  …  x1^k x2^k … xd^k
//
// where xi^j is the j-th most significant bit of coordinate i. For example,
// with d = 3 and k = 3, Interleave of (0b101, 0b010, 0b011) is 0b100011101,
// matching the worked example in the paper.
package bits

import "math/bits"

// MaxKeyBits is the maximum total width d·k of a curve key. Keys are held in
// uint64 values; one bit of headroom is kept so that sums and differences of
// keys cannot overflow signed intermediate forms used by callers.
const MaxKeyBits = 62

// Interleave packs the k low bits of each coordinate in x into a single
// Morton key. x[0] is the paper's first dimension and contributes the most
// significant bit within each k-level group. Bits of x above position k-1
// are ignored. The result is well defined for len(x)*k <= MaxKeyBits.
func Interleave(x []uint32, k int) uint64 {
	d := len(x)
	var key uint64
	for level := 0; level < k; level++ {
		for i := 0; i < d; i++ {
			bit := uint64(x[i]>>uint(level)) & 1
			shift := uint(level*d + (d - 1 - i))
			key |= bit << shift
		}
	}
	return key
}

// Deinterleave unpacks a Morton key produced by Interleave into dst, which
// must have length d. Each coordinate receives its k bits; higher bits of
// dst entries are cleared.
func Deinterleave(key uint64, k int, dst []uint32) {
	d := len(dst)
	for i := range dst {
		dst[i] = 0
	}
	for level := 0; level < k; level++ {
		for i := 0; i < d; i++ {
			shift := uint(level*d + (d - 1 - i))
			bit := uint32(key>>shift) & 1
			dst[i] |= bit << uint(level)
		}
	}
}

// Interleave2 is a constant-time two-dimensional Morton encode using the
// classic parallel-prefix bit spreading. It is equivalent to
// Interleave([]uint32{x, y}, 31) truncated to the coordinates' width: x
// supplies the higher bit of each pair (dimension 1 of the paper).
func Interleave2(x, y uint32) uint64 {
	return spread2(x)<<1 | spread2(y)
}

// Deinterleave2 inverts Interleave2.
func Deinterleave2(key uint64) (x, y uint32) {
	return compact2(key >> 1), compact2(key)
}

// spread2 spaces the 32 bits of v so that bit i moves to bit 2i.
func spread2(v uint32) uint64 {
	w := uint64(v)
	w = (w | w<<16) & 0x0000FFFF0000FFFF
	w = (w | w<<8) & 0x00FF00FF00FF00FF
	w = (w | w<<4) & 0x0F0F0F0F0F0F0F0F
	w = (w | w<<2) & 0x3333333333333333
	w = (w | w<<1) & 0x5555555555555555
	return w
}

// compact2 inverts spread2, collecting every second bit starting at bit 0.
func compact2(w uint64) uint32 {
	w &= 0x5555555555555555
	w = (w | w>>1) & 0x3333333333333333
	w = (w | w>>2) & 0x0F0F0F0F0F0F0F0F
	w = (w | w>>4) & 0x00FF00FF00FF00FF
	w = (w | w>>8) & 0x0000FFFF0000FFFF
	w = (w | w>>16) & 0x00000000FFFFFFFF
	return uint32(w)
}

// Interleave3 is a constant-time three-dimensional Morton encode for
// coordinates of at most 20 bits each. x supplies the highest bit of each
// triple (dimension 1 of the paper).
func Interleave3(x, y, z uint32) uint64 {
	return spread3(x)<<2 | spread3(y)<<1 | spread3(z)
}

// Deinterleave3 inverts Interleave3.
func Deinterleave3(key uint64) (x, y, z uint32) {
	return compact3(key >> 2), compact3(key >> 1), compact3(key)
}

// spread3 spaces the 20 low bits of v so that bit i moves to bit 3i.
func spread3(v uint32) uint64 {
	w := uint64(v) & 0xFFFFF
	w = (w | w<<32) & 0x001F00000000FFFF
	w = (w | w<<16) & 0x001F0000FF0000FF
	w = (w | w<<8) & 0x100F00F00F00F00F
	w = (w | w<<4) & 0x10C30C30C30C30C3
	w = (w | w<<2) & 0x1249249249249249
	return w
}

// compact3 inverts spread3.
func compact3(w uint64) uint32 {
	w &= 0x1249249249249249
	w = (w | w>>2) & 0x10C30C30C30C30C3
	w = (w | w>>4) & 0x100F00F00F00F00F
	w = (w | w>>8) & 0x001F0000FF0000FF
	w = (w | w>>16) & 0x001F00000000FFFF
	w = (w | w>>32) & 0x00000000001FFFFF
	return uint32(w)
}

// GrayEncode returns the binary-reflected Gray code of v.
func GrayEncode(v uint64) uint64 { return v ^ (v >> 1) }

// GrayDecode inverts GrayEncode: it returns the rank of the Gray codeword g
// in the reflected Gray sequence.
func GrayDecode(g uint64) uint64 {
	g ^= g >> 32
	g ^= g >> 16
	g ^= g >> 8
	g ^= g >> 4
	g ^= g >> 2
	g ^= g >> 1
	return g
}

// Log2 returns floor(log2(v)) for v > 0, and 0 for v == 0.
func Log2(v uint64) int {
	if v == 0 {
		return 0
	}
	return 63 - bits.LeadingZeros64(v)
}

// IsPow2 reports whether v is a power of two (v > 0 with a single set bit).
func IsPow2(v uint64) bool { return v != 0 && v&(v-1) == 0 }

// AbsDiff returns |a-b| for unsigned inputs without overflow.
func AbsDiff(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return b - a
}
