package core_test

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/grid"
)

func ExampleDAvg() {
	// Davg of the simple curve on a 4×4 grid, against its exact closed form.
	u := grid.MustNew(2, 2)
	s := curve.NewSimple(u)
	fmt.Printf("%.4f %.4f\n", core.DAvg(s, 1), bounds.SimpleDAvgExact(2, 2))
	// Output: 2.5000 2.5000
}

func ExampleNNStretch() {
	// The Figure 1 example curve π1: Davg = 1.5, Dmax = 2.
	u := grid.MustNew(2, 1)
	lin := func(x, y uint32) uint64 { return u.Linear(u.MustPoint(x, y)) }
	pi1, err := curve.FromOrder(u, "pi1", []uint64{lin(1, 1), lin(0, 1), lin(1, 0), lin(0, 0)})
	if err != nil {
		panic(err)
	}
	avg, max := core.NNStretch(pi1, 1)
	fmt.Println(avg, max)
	// Output: 1.5 2
}

func ExampleSAPrime() {
	// Lemma 2: Σ over ordered pairs of Δπ is (n−1)n(n+1)/3 for any curve.
	u := grid.MustNew(2, 1)
	z := curve.NewZ(u)
	got, err := core.SAPrime(z, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(got, core.SAPrimeIdentity(u.N()))
	// Output: 20 20
}

func ExampleLambdas() {
	// Λ_i(Z) on the 2×2 grid: 4 and 2 (matching the Lemma 5 closed form).
	u := grid.MustNew(2, 1)
	z := curve.NewZ(u)
	fmt.Println(core.Lambdas(z, 1))
	// Output: [4 2]
}

func ExampleDeltaAvgAt() {
	// δavg at a corner of the 8×8 Z curve: neighbors at keys 1 and 2.
	u := grid.MustNew(2, 3)
	z := curve.NewZ(u)
	fmt.Println(core.DeltaAvgAt(z, u.MustPoint(0, 0)))
	// Output: 1.5
}
