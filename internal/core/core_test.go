package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bounds"
	"repro/internal/curve"
	"repro/internal/grid"
)

// fig1Curves builds the two hand-drawn curves of Figure 1 on the 2×2 grid.
// Cell labels from the figure: A=(0,1), C=(1,1), D=(0,0), B=(1,0).
// π1 orders C,A,B,D; π2 orders A,B,C,D.
func fig1Curves(t testing.TB) (pi1, pi2 curve.Curve) {
	t.Helper()
	u := grid.MustNew(2, 1)
	lin := func(x, y uint32) uint64 { return u.Linear(u.MustPoint(x, y)) }
	a, b, c, d := lin(0, 1), lin(1, 0), lin(1, 1), lin(0, 0)
	p1, err := curve.FromOrder(u, "pi1", []uint64{c, a, b, d})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := curve.FromOrder(u, "pi2", []uint64{a, b, c, d})
	if err != nil {
		t.Fatal(err)
	}
	return p1, p2
}

func TestFigure1Values(t *testing.T) {
	// Paper §III: Davg(π1) = 1.5, Davg(π2) = 2, Dmax(π1) = 2, Dmax(π2) = 2.5.
	pi1, pi2 := fig1Curves(t)
	if got := DAvg(pi1, 1); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Davg(π1) = %v, want 1.5", got)
	}
	if got := DAvg(pi2, 1); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("Davg(π2) = %v, want 2", got)
	}
	if got := DMax(pi1, 1); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("Dmax(π1) = %v, want 2", got)
	}
	if got := DMax(pi2, 1); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("Dmax(π2) = %v, want 2.5", got)
	}
}

func TestFigure1PerCell(t *testing.T) {
	// δavg is 1.5 at every cell of π1.
	pi1, _ := fig1Curves(t)
	u := pi1.Universe()
	u.Cells(func(_ uint64, p grid.Point) bool {
		if got := DeltaAvgAt(pi1, p); math.Abs(got-1.5) > 1e-12 {
			t.Errorf("δavg_π1(%v) = %v, want 1.5", p, got)
		}
		return true
	})
}

// bruteDAvg computes Davg by direct application of Definitions 1-2.
func bruteDAvg(c curve.Curve) float64 {
	u := c.Universe()
	var total float64
	u.Cells(func(_ uint64, p grid.Point) bool {
		total += DeltaAvgAt(c, p)
		return true
	})
	return total / float64(u.N())
}

// bruteDMax computes Dmax by direct application of Definitions 3-4.
func bruteDMax(c curve.Curve) float64 {
	u := c.Universe()
	var total float64
	u.Cells(func(_ uint64, p grid.Point) bool {
		total += float64(DeltaMaxAt(c, p))
		return true
	})
	return total / float64(u.N())
}

func testCurves(t testing.TB, u *grid.Universe) []curve.Curve {
	t.Helper()
	var cs []curve.Curve
	for _, name := range curve.Names() {
		c, err := curve.ByName(name, u, 7)
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, c)
	}
	return cs
}

func TestNNStretchMatchesBruteForce(t *testing.T) {
	for _, dk := range [][2]int{{1, 5}, {2, 3}, {3, 2}, {4, 1}} {
		u := grid.MustNew(dk[0], dk[1])
		for _, c := range testCurves(t, u) {
			avg, max := NNStretch(c, 4)
			if want := bruteDAvg(c); math.Abs(avg-want) > 1e-9 {
				t.Errorf("%s on %v: Davg = %v, brute %v", c.Name(), u, avg, want)
			}
			if want := bruteDMax(c); math.Abs(max-want) > 1e-9 {
				t.Errorf("%s on %v: Dmax = %v, brute %v", c.Name(), u, max, want)
			}
			if max < avg {
				t.Errorf("%s on %v: Dmax %v < Davg %v", c.Name(), u, max, avg)
			}
		}
	}
}

func TestNNStretchWorkerInvariance(t *testing.T) {
	u := grid.MustNew(2, 5)
	z := curve.NewZ(u)
	avg1, max1 := NNStretch(z, 1)
	for _, w := range []int{2, 3, 8} {
		avg, max := NNStretch(z, w)
		if avg != avg1 || max != max1 {
			t.Fatalf("workers=%d: (%v,%v) != (%v,%v)", w, avg, max, avg1, max1)
		}
	}
}

func TestSingleCellStretchIsZero(t *testing.T) {
	u := grid.MustNew(3, 0)
	avg, max := NNStretch(curve.NewZ(u), 1)
	if avg != 0 || max != 0 {
		t.Fatalf("single cell stretch (%v, %v)", avg, max)
	}
}

func TestLambdaMatchesZClosedForm(t *testing.T) {
	// Lemma 5 proof: measured Λ_i(Z) equals the exact finite-n formula.
	for _, dk := range [][2]int{{1, 6}, {2, 4}, {3, 3}, {4, 2}} {
		d, k := dk[0], dk[1]
		u := grid.MustNew(d, k)
		z := curve.NewZ(u)
		lambdas := Lambdas(z, 3)
		for i := 1; i <= d; i++ {
			want := bounds.ZLambdaExact(d, k, i)
			if !want.IsUint64() || want.Uint64() != lambdas[i-1] {
				t.Errorf("d=%d k=%d: Λ_%d(Z) = %d, formula %v", d, k, i, lambdas[i-1], want)
			}
			if single := Lambda(z, i-1, 2); single != lambdas[i-1] {
				t.Errorf("Lambda(dim=%d) = %d != Lambdas[%d] = %d", i-1, single, i-1, lambdas[i-1])
			}
		}
	}
}

func TestSumNNIsLambdaTotal(t *testing.T) {
	u := grid.MustNew(3, 2)
	h := curve.NewHilbert(u)
	var want uint64
	for _, v := range Lambdas(h, 2) {
		want += v
	}
	if got := SumNN(h, 2); got != want {
		t.Fatalf("SumNN = %d, ΣΛ = %d", got, want)
	}
}

func TestLemma3BoundsSandwichDAvg(t *testing.T) {
	for _, dk := range [][2]int{{2, 3}, {3, 2}} {
		u := grid.MustNew(dk[0], dk[1])
		for _, c := range testCurves(t, u) {
			lo, hi := Lemma3Bounds(c, 2)
			davg := DAvg(c, 2)
			if davg < lo-1e-9 || davg > hi+1e-9 {
				t.Errorf("%s on %v: Davg %v outside Lemma 3 bounds [%v, %v]", c.Name(), u, davg, lo, hi)
			}
		}
	}
}

func TestBoundaryDecompositionReconstructsDAvg(t *testing.T) {
	// Theorem 2 proof structure: Davg = (h1 + h2)/n.
	for _, dk := range [][2]int{{2, 3}, {3, 2}} {
		u := grid.MustNew(dk[0], dk[1])
		for _, c := range testCurves(t, u) {
			h1, h2 := BoundaryDecomposition(c, 2)
			davg := DAvg(c, 2)
			if got := (h1 + h2) / float64(u.N()); math.Abs(got-davg) > 1e-9 {
				t.Errorf("%s on %v: (h1+h2)/n = %v, Davg = %v", c.Name(), u, got, davg)
			}
			if h2 < -1e-9 {
				t.Errorf("%s on %v: negative boundary excess h2 = %v", c.Name(), u, h2)
			}
		}
	}
}

func TestTheorem1HoldsSmall(t *testing.T) {
	// The universal lower bound must hold for every curve on every small
	// universe, including the adversarial random one.
	for _, dk := range [][2]int{{1, 4}, {2, 3}, {3, 2}, {4, 1}} {
		d, k := dk[0], dk[1]
		u := grid.MustNew(d, k)
		lb := bounds.NNAvgLowerBound(d, k)
		for _, c := range testCurves(t, u) {
			if davg := DAvg(c, 2); davg < lb-1e-9 {
				t.Errorf("%s on %v: Davg %v violates Theorem 1 bound %v", c.Name(), u, davg, lb)
			}
		}
	}
}

func TestTheorem1HoldsForRandomBijections(t *testing.T) {
	// Stronger: random bijections drawn as explicit tables also respect the
	// bound (the paper's SFC definition is *any* bijection).
	u := grid.MustNew(2, 2)
	lb := bounds.NNAvgLowerBound(2, 2)
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 200; trial++ {
		perm := make([]uint64, u.N())
		for i, v := range rng.Perm(int(u.N())) {
			perm[i] = uint64(v)
		}
		c := curve.MustTable(u, "rand", perm)
		if davg := DAvg(c, 1); davg < lb-1e-9 {
			t.Fatalf("trial %d: Davg %v violates bound %v", trial, davg, lb)
		}
	}
}

func TestSimpleCurveMatchesClosedForms(t *testing.T) {
	for _, dk := range [][2]int{{1, 5}, {2, 4}, {3, 2}, {4, 1}} {
		d, k := dk[0], dk[1]
		u := grid.MustNew(d, k)
		s := curve.NewSimple(u)
		avg, max := NNStretch(s, 3)
		if want := bounds.SimpleDAvgExact(d, k); math.Abs(avg-want) > 1e-9 {
			t.Errorf("d=%d k=%d: Davg(S) = %v, closed form %v", d, k, avg, want)
		}
		if want := bounds.SimpleDMaxExact(d, k); math.Abs(max-want) > 1e-9 {
			t.Errorf("d=%d k=%d: Dmax(S) = %v, closed form %v (Prop 2)", d, k, max, want)
		}
	}
}

func TestStretchInvariantUnderIsometries(t *testing.T) {
	// Davg and Dmax are defined from |π(α)−π(β)| over the neighbor relation,
	// so grid isometries (axis permutation, reflection) and index reversal
	// leave them unchanged.
	u := grid.MustNew(3, 2)
	base := curve.NewZ(u)
	avg0, max0 := NNStretch(base, 2)
	perm, err := curve.NewAxisPermuted(base, []int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []curve.Curve{
		perm,
		curve.NewReflected(base, 0b111),
		curve.NewReversed(base),
	} {
		avg, max := NNStretch(c, 2)
		if math.Abs(avg-avg0) > 1e-9 || math.Abs(max-max0) > 1e-9 {
			t.Errorf("%s: stretch (%v,%v) != base (%v,%v)", c.Name(), avg, max, avg0, max0)
		}
	}
}

func TestCheckTriangleProperty(t *testing.T) {
	// Lemma 1 on random paths over random curves.
	u := grid.MustNew(2, 3)
	rng := rand.New(rand.NewSource(11))
	for _, c := range testCurves(t, u) {
		for trial := 0; trial < 100; trial++ {
			pathLen := 2 + rng.Intn(6)
			path := make([]grid.Point, pathLen)
			for i := range path {
				p := u.NewPoint()
				for j := range p {
					p[j] = uint32(rng.Intn(int(u.Side())))
				}
				path[i] = p
			}
			if !CheckTriangle(c, path) {
				t.Fatalf("%s: triangle inequality violated on %v", c.Name(), path)
			}
		}
	}
	if !CheckTriangle(curve.NewZ(u), nil) {
		t.Fatal("empty path must satisfy the inequality")
	}
}
