package core

import (
	"math"
	"testing"

	"repro/internal/curve"
	"repro/internal/grid"
)

func TestDeltaAvgDistributionMeanIsDAvg(t *testing.T) {
	u := grid.MustNew(2, 5)
	for _, c := range testCurves(t, u) {
		dist, err := DeltaAvgDistribution(c, 3)
		if err != nil {
			t.Fatal(err)
		}
		if want := DAvg(c, 3); math.Abs(dist.Mean-want) > 1e-9 {
			t.Errorf("%s: distribution mean %v, Davg %v", c.Name(), dist.Mean, want)
		}
		if !(dist.P50 <= dist.P90 && dist.P90 <= dist.P99 && dist.P99 <= dist.Max) {
			t.Errorf("%s: quantiles not monotone: %+v", c.Name(), dist)
		}
	}
}

func TestDeltaAvgDistributionShapes(t *testing.T) {
	// Shape claim: the simple curve is concentrated (P99 close to the
	// median) while the Z curve is heavy-tailed (max far above the median).
	u := grid.MustNew(2, 6)
	s, err := DeltaAvgDistribution(curve.NewSimple(u), 2)
	if err != nil {
		t.Fatal(err)
	}
	z, err := DeltaAvgDistribution(curve.NewZ(u), 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.P99 > 2*s.P50 {
		t.Errorf("simple curve not concentrated: %+v", s)
	}
	if z.Max < 4*z.P50 {
		t.Errorf("Z curve not heavy-tailed: %+v", z)
	}
}

func TestDeltaAvgDistributionGuards(t *testing.T) {
	if _, err := DeltaAvgDistribution(curve.NewZ(grid.MustNew(2, 0)), 1); err == nil {
		t.Fatal("single cell accepted")
	}
	big := grid.MustNew(5, 5) // 2^25 > MaxDistributionN
	if _, err := DeltaAvgDistribution(curve.NewZ(big), 1); err == nil {
		t.Fatal("oversized accepted")
	}
}
