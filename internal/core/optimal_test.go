package core

import (
	"math"
	"testing"

	"repro/internal/bounds"
	"repro/internal/curve"
	"repro/internal/grid"
)

func TestExhaustiveOptimalLine(t *testing.T) {
	// On a 1-d universe the identity curve is optimal: Davg = Dmax = 1.
	u := grid.MustNew(1, 3) // 8 cells, 40320 permutations
	opt, err := ExhaustiveOptimal(u)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Searched != 40320 {
		t.Fatalf("searched %d permutations", opt.Searched)
	}
	if math.Abs(opt.MinDAvg-1) > 1e-12 || math.Abs(opt.MinDMax-1) > 1e-12 {
		t.Fatalf("1-d optimum (%v, %v), want (1, 1)", opt.MinDAvg, opt.MinDMax)
	}
}

func TestExhaustiveOptimal2x2MatchesFigure1(t *testing.T) {
	// On the 2×2 grid the optimum Davg is 1.5 — achieved by Figure 1's π1 —
	// and the optimum Dmax is 2.
	u := grid.MustNew(2, 1)
	opt, err := ExhaustiveOptimal(u)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Searched != 24 {
		t.Fatalf("searched %d", opt.Searched)
	}
	if math.Abs(opt.MinDAvg-1.5) > 1e-12 {
		t.Fatalf("2×2 optimal Davg = %v, want 1.5", opt.MinDAvg)
	}
	if math.Abs(opt.MinDMax-2) > 1e-12 {
		t.Fatalf("2×2 optimal Dmax = %v, want 2", opt.MinDMax)
	}
	// The witnesses must be valid curves achieving the optima.
	ca, err := OptimalCurve(u, opt.BestAvg, "opt-avg")
	if err != nil {
		t.Fatal(err)
	}
	if got := DAvg(ca, 1); math.Abs(got-opt.MinDAvg) > 1e-12 {
		t.Fatalf("witness Davg %v != optimum %v", got, opt.MinDAvg)
	}
	cm, err := OptimalCurve(u, opt.BestMax, "opt-max")
	if err != nil {
		t.Fatal(err)
	}
	if got := DMax(cm, 1); math.Abs(got-opt.MinDMax) > 1e-12 {
		t.Fatalf("witness Dmax %v != optimum %v", got, opt.MinDMax)
	}
}

func TestExhaustiveOptimalRespectsTheorem1(t *testing.T) {
	// Even the true optimum cannot beat the Theorem 1 bound; the gap at
	// tiny n quantifies the bound's slack.
	for _, dk := range [][2]int{{1, 2}, {2, 1}, {3, 1}} {
		u := grid.MustNew(dk[0], dk[1])
		opt, err := ExhaustiveOptimal(u)
		if err != nil {
			t.Fatal(err)
		}
		lb := bounds.NNAvgLowerBound(dk[0], dk[1])
		if opt.MinDAvg < lb-1e-12 {
			t.Fatalf("d=%d k=%d: optimum %v beats Theorem 1 bound %v", dk[0], dk[1], opt.MinDAvg, lb)
		}
		if opt.MinDMax < opt.MinDAvg-1e-12 {
			t.Fatalf("optimal Dmax below optimal Davg")
		}
	}
}

func TestExhaustiveOptimalBeatsOrMatchesZ(t *testing.T) {
	// The optimum is, by definition, at most the Z curve's stretch.
	u := grid.MustNew(3, 1)
	opt, err := ExhaustiveOptimal(u)
	if err != nil {
		t.Fatal(err)
	}
	if z := DAvg(curve.NewZ(u), 1); opt.MinDAvg > z+1e-12 {
		t.Fatalf("optimum %v above Z %v", opt.MinDAvg, z)
	}
}

func TestExhaustiveOptimalGuards(t *testing.T) {
	if _, err := ExhaustiveOptimal(grid.MustNew(2, 2)); err == nil {
		t.Fatal("n=16 accepted")
	}
	if _, err := ExhaustiveOptimal(grid.MustNew(1, 0)); err == nil {
		t.Fatal("n=1 accepted")
	}
}
