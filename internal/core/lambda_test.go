package core

import (
	"math"
	"testing"

	"repro/internal/bounds"
	"repro/internal/curve"
	"repro/internal/grid"
)

// TestGrayLambdaLimitConjecture checks this reproduction's conjectured
// Lemma 5 analogue for the Gray-code curve:
// Λ_i(Gray)/n^(2−1/d) → 2^(d−i−1)/(2^(d−1)−1).
func TestGrayLambdaLimitConjecture(t *testing.T) {
	for _, dk := range [][2]int{{2, 9}, {3, 6}, {4, 4}} {
		d, k := dk[0], dk[1]
		u := grid.MustNew(d, k)
		g := curve.NewGray(u)
		lambdas := Lambdas(g, 0)
		norm := math.Pow(float64(u.N()), 2-1/float64(d))
		for i := 1; i <= d; i++ {
			got := float64(lambdas[i-1]) / norm
			want := bounds.GrayLambdaLimit(d, i)
			if math.Abs(got-want) > 0.02*want {
				t.Errorf("d=%d i=%d: Λ_i(Gray)/n^(2−1/d) = %v, conjecture %v", d, i, got, want)
			}
		}
	}
}

// TestGrayConstantMatchesMeasured checks the summed constant against a
// direct Davg measurement.
func TestGrayConstantMatchesMeasured(t *testing.T) {
	for _, dk := range [][2]int{{2, 9}, {3, 6}} {
		d, k := dk[0], dk[1]
		u := grid.MustNew(d, k)
		g := curve.NewGray(u)
		cMeasured := DAvg(g, 0) * float64(d) / math.Pow(float64(u.N()), 1-1/float64(d))
		want := bounds.GrayAsymptoticConstant(d)
		if math.Abs(cMeasured-want) > 0.02*want {
			t.Errorf("d=%d: measured C(gray) %v, conjecture %v", d, cMeasured, want)
		}
	}
}
