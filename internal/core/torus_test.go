package core

import (
	"math"
	"testing"

	"repro/internal/bounds"
	"repro/internal/curve"
	"repro/internal/grid"
)

// bruteTorusDAvg recomputes the periodic Davg with explicit wrap handling.
func bruteTorusDAvg(c curve.Curve) float64 {
	u := c.Universe()
	side := int64(u.Side())
	var total float64
	p := u.NewPoint()
	q := u.NewPoint()
	for lin := uint64(0); lin < u.N(); lin++ {
		u.FromLinear(lin, p)
		var sum uint64
		deg := 0
		seen := map[string]bool{}
		copy(q, p)
		for dim := 0; dim < u.D(); dim++ {
			for _, off := range []int64{-1, 1} {
				v := (int64(p[dim]) + off + side) % side
				q[dim] = uint32(v)
				if q[dim] == p[dim] {
					q[dim] = p[dim]
					continue
				}
				key := q.String()
				if seen[key] {
					q[dim] = p[dim]
					continue
				}
				seen[key] = true
				sum += curve.Dist(c, p, q)
				deg++
				q[dim] = p[dim]
			}
		}
		if deg > 0 {
			total += float64(sum) / float64(deg)
		}
	}
	return total / float64(u.N())
}

func TestTorusMatchesBrute(t *testing.T) {
	for _, dk := range [][2]int{{1, 3}, {2, 3}, {3, 2}, {2, 1}} {
		u := grid.MustNew(dk[0], dk[1])
		for _, c := range testCurves(t, u) {
			avg, max := NNStretchTorus(c, 2)
			if want := bruteTorusDAvg(c); math.Abs(avg-want) > 1e-9 {
				t.Errorf("%s on %v: torus Davg %v, brute %v", c.Name(), u, avg, want)
			}
			if max < avg {
				t.Errorf("%s on %v: torus Dmax %v < Davg %v", c.Name(), u, max, avg)
			}
		}
	}
}

func TestTorusExceedsOpenGridStretch(t *testing.T) {
	// Wrap pairs only add long connections, so for the key-ordered curves
	// the periodic Davg is at least the open-grid Davg.
	u := grid.MustNew(2, 5)
	for _, name := range []string{"z", "simple", "snake", "hilbert", "gray"} {
		c, err := curve.ByName(name, u, 1)
		if err != nil {
			t.Fatal(err)
		}
		open, _ := NNStretch(c, 2)
		torus, _ := NNStretchTorus(c, 2)
		if torus < open-1e-9 {
			t.Errorf("%s: torus Davg %v below open %v", name, torus, open)
		}
		// Theorem 1 (proved for the open grid) holds a fortiori.
		if lb := bounds.NNAvgLowerBound(2, 5); torus < lb {
			t.Errorf("%s: torus Davg %v below open-grid bound %v", name, torus, lb)
		}
	}
}

func TestTorusSameAsymptoticOrder(t *testing.T) {
	// The periodic penalty is a constant factor: torus/open stays bounded
	// as k grows for the Z curve.
	var ratios []float64
	for _, k := range []int{4, 6, 8} {
		u := grid.MustNew(2, k)
		z := curve.NewZ(u)
		open, _ := NNStretch(z, 2)
		torus, _ := NNStretchTorus(z, 2)
		ratios = append(ratios, torus/open)
	}
	for _, r := range ratios {
		if r < 1 || r > 6 {
			t.Fatalf("torus/open ratios out of regime: %v", ratios)
		}
	}
	if math.Abs(ratios[2]-ratios[1]) > 0.5 {
		t.Fatalf("torus/open ratio not stabilizing: %v", ratios)
	}
}

func TestTorusSingleCell(t *testing.T) {
	u := grid.MustNew(2, 0)
	avg, max := NNStretchTorus(curve.NewZ(u), 1)
	if avg != 0 || max != 0 {
		t.Fatal("single-cell torus stretch nonzero")
	}
}
