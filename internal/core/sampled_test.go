package core

import (
	"math"
	"testing"

	"repro/internal/bounds"
	"repro/internal/curve"
	"repro/internal/grid"
)

func TestSampledNNStretchApproximatesExact(t *testing.T) {
	u := grid.MustNew(2, 6)
	z := curve.NewZ(u)
	exactAvg, exactMax := NNStretch(z, 2)
	est, err := SampledNNStretch(z, 40000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if est.Samples != 40000 || est.DAvgStdErr <= 0 {
		t.Fatalf("estimator metadata wrong: %+v", est)
	}
	if math.Abs(est.DAvg-exactAvg) > 6*est.DAvgStdErr {
		t.Fatalf("sampled Davg %v ± %v vs exact %v", est.DAvg, est.DAvgStdErr, exactAvg)
	}
	// Dmax has no per-sample error bar; allow 5% relative slack.
	if math.Abs(est.DMax-exactMax) > 0.05*exactMax {
		t.Fatalf("sampled Dmax %v vs exact %v", est.DMax, exactMax)
	}
}

func TestSampledNNStretchHugeUniverse(t *testing.T) {
	// n = 2^60: far beyond any enumeration. The simple curve's per-cell
	// δavg is essentially constant, so sampling verifies the Theorem 3
	// asymptotics at this size with tiny variance.
	u := grid.MustNew(3, 20)
	s := curve.NewSimple(u)
	est, err := SampledNNStretch(s, 20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	asym := bounds.NNAsymptote(3, 20)
	if ratio := est.DAvg / asym; math.Abs(ratio-1) > 0.01 {
		t.Fatalf("Davg(S)/asymptote = %v at n=2^60, want ≈ 1", ratio)
	}
	if r := est.DAvg / bounds.NNAvgLowerBound(3, 20); math.Abs(r-1.5) > 0.02 {
		t.Fatalf("Davg(S)/bound = %v at n=2^60, want ≈ 1.5", r)
	}
	// The sampled estimate agrees with the exact closed form at this size.
	if closed := bounds.SimpleDAvgExact(3, 20); math.Abs(est.DAvg-closed) > 6*est.DAvgStdErr+1e-6*closed {
		t.Fatalf("sampled %v ± %v vs closed form %v", est.DAvg, est.DAvgStdErr, closed)
	}
}

func TestSampledNNStretchHeavyTailCaveat(t *testing.T) {
	// Documented behaviour: for the Z curve at large k, a uniform sample
	// underestimates Davg because the per-cell distribution is heavy-
	// tailed. This test pins the caveat down (and would flag it if the
	// estimator were ever upgraded to a stratified one).
	u := grid.MustNew(3, 20)
	z := curve.NewZ(u)
	est, err := SampledNNStretch(z, 5000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if est.DAvg > bounds.NNAsymptote(3, 20) {
		t.Fatalf("uniform sampling unexpectedly reached the asymptote: %v", est.DAvg)
	}
}

func TestSampledNNStretchDeterministic(t *testing.T) {
	u := grid.MustNew(2, 8)
	h := curve.NewHilbert(u)
	a, err := SampledNNStretch(h, 1000, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampledNNStretch(h, 1000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed gave %+v and %+v", a, b)
	}
}

func TestSampledNNStretchGuards(t *testing.T) {
	if _, err := SampledNNStretch(curve.NewZ(grid.MustNew(2, 0)), 100, 1); err == nil {
		t.Fatal("single-cell accepted")
	}
	if _, err := SampledNNStretch(curve.NewZ(grid.MustNew(2, 3)), 1, 1); err == nil {
		t.Fatal("1 sample accepted")
	}
}

func TestStretchProfileBasics(t *testing.T) {
	u := grid.MustNew(2, 6)
	z := curve.NewZ(u)
	bins, err := StretchProfile(z, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) < 5 {
		t.Fatalf("only %d bins", len(bins))
	}
	if bins[0].Distance != 1 {
		t.Fatalf("first bin at distance %d", bins[0].Distance)
	}
	for i, b := range bins {
		if b.Pairs == 0 || b.MeanStretch <= 0 {
			t.Fatalf("degenerate bin %+v", b)
		}
		if i > 0 && b.Distance != bins[i-1].Distance*2 {
			t.Fatalf("bins not geometric: %v then %v", bins[i-1].Distance, b.Distance)
		}
	}
	// Scale invariance for the Z curve: every stratum is Θ(n^(1−1/d)), so
	// the first and last strata agree within a small constant factor.
	first := bins[0].MeanStretch
	last := bins[len(bins)-1].MeanStretch
	if first > 6*last || last > 6*first {
		t.Fatalf("Z profile not scale-invariant: r=1 %v, max-r %v", first, last)
	}
	// The r=1 stratum estimates the mean Δπ over NN pairs — same regime as
	// Davg.
	davg := DAvg(z, 2)
	if first < davg/3 || first > 3*davg {
		t.Fatalf("r=1 stratum %v vs Davg %v: different regime", first, davg)
	}
}

func TestStretchProfileRandomDecays(t *testing.T) {
	// For a random bijection Δπ ≈ (n+1)/3 independent of r, so the profile
	// decays like 1/r.
	u := grid.MustNew(2, 6)
	rnd, err := curve.NewRandom(u, 11)
	if err != nil {
		t.Fatal(err)
	}
	bins, err := StretchProfile(rnd, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	first := bins[0].MeanStretch
	last := bins[len(bins)-1].MeanStretch
	if first < 10*last {
		t.Fatalf("random profile does not decay: r=1 %v, max-r %v", first, last)
	}
	// The r=1 stratum of the random curve ≈ (n+1)/3.
	if expect := (float64(u.N()) + 1) / 3; math.Abs(first-expect) > 0.1*expect {
		t.Fatalf("random r=1 stratum %v, want ≈ %v", first, expect)
	}
}

func TestStretchProfileGuards(t *testing.T) {
	if _, err := StretchProfile(curve.NewZ(grid.MustNew(2, 0)), 10, 1); err == nil {
		t.Fatal("single cell accepted")
	}
	if _, err := StretchProfile(curve.NewZ(grid.MustNew(2, 3)), 0, 1); err == nil {
		t.Fatal("0 samples accepted")
	}
}

func TestPNormStretchReducesToAllPairs(t *testing.T) {
	u := grid.MustNew(2, 3)
	for _, c := range testCurves(t, u) {
		p1, err := PNormStretch(c, Manhattan, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		ap, err := AllPairsStretch(c, Manhattan, 2)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p1-ap) > 1e-9 {
			t.Fatalf("%s: p=1 norm %v != all-pairs %v", c.Name(), p1, ap)
		}
	}
}

func TestPNormStretchMonotoneInP(t *testing.T) {
	// Power-mean inequality: str_p is non-decreasing in p, and bounded by
	// the max pair stretch.
	u := grid.MustNew(2, 3)
	z := curve.NewZ(u)
	prev := 0.0
	for _, p := range []float64{1, 2, 4, 8} {
		v, err := PNormStretch(z, Euclidean, p, 2)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev-1e-9 {
			t.Fatalf("p-norm not monotone: p=%v gives %v after %v", p, v, prev)
		}
		prev = v
	}
	maxPair, err := MaxPairStretch(z, Euclidean, 2)
	if err != nil {
		t.Fatal(err)
	}
	if prev > maxPair+1e-9 {
		t.Fatalf("p=8 norm %v exceeds max pair %v", prev, maxPair)
	}
}

func TestPNormStretchGuards(t *testing.T) {
	big3 := grid.MustNew(3, 6)
	if _, err := PNormStretch(curve.NewZ(big3), Manhattan, 2, 1); err == nil {
		t.Fatal("oversized accepted")
	}
	small := grid.MustNew(2, 2)
	if _, err := PNormStretch(curve.NewZ(small), Manhattan, 0.5, 1); err == nil {
		t.Fatal("p<1 accepted")
	}
	if _, err := PNormStretch(curve.NewZ(grid.MustNew(2, 0)), Manhattan, 2, 1); err == nil {
		t.Fatal("single cell accepted")
	}
}

func TestConverseStretchHilbertVsZ(t *testing.T) {
	// Gotsman–Lindenbaum direction: Hilbert keeps spatial distance small
	// relative to index distance; the Z curve's jumps blow the ratio up.
	u := grid.MustNew(2, 4)
	hv, err := ConverseStretch(curve.NewHilbert(u), 2)
	if err != nil {
		t.Fatal(err)
	}
	zv, err := ConverseStretch(curve.NewZ(u), 2)
	if err != nil {
		t.Fatal(err)
	}
	if hv >= zv {
		t.Fatalf("converse stretch: hilbert %v not below z %v", hv, zv)
	}
	// Any unit-step curve has converse stretch >= 1 (consecutive cells are
	// at spatial distance 1 and index distance 1).
	if hv < 1 {
		t.Fatalf("hilbert converse stretch %v < 1", hv)
	}
}

func TestConverseStretchGuards(t *testing.T) {
	if _, err := ConverseStretch(curve.NewZ(grid.MustNew(3, 6)), 1); err == nil {
		t.Fatal("oversized accepted")
	}
	if _, err := ConverseStretch(curve.NewZ(grid.MustNew(2, 0)), 1); err == nil {
		t.Fatal("single cell accepted")
	}
}

func TestUnitStepDilationHilbert2D(t *testing.T) {
	// Niedermeier-Reinhardt-Sanders: for the 2-d Hilbert curve,
	// Δ ≤ 3·sqrt(|i−j|) ⇒ Δ²/|i−j| ≤ 9. Our Hilbert must respect it, and
	// the constant should exceed 4 (it is known to be ≥ 5.5 asymptotically).
	u := grid.MustNew(2, 5)
	v, err := UnitStepDilation(curve.NewHilbert(u), 2)
	if err != nil {
		t.Fatal(err)
	}
	if v > 9+1e-9 {
		t.Fatalf("Hilbert dilation constant %v exceeds the NRS bound 9", v)
	}
	if v < 4 {
		t.Fatalf("Hilbert dilation constant %v suspiciously small", v)
	}
	// Snake is far worse: walking to the next row end costs Θ(side) index
	// steps for Δ=2, but in the Δ^d/|i−j| normalization its worst pairs are
	// whole-row traversals: Δ ≈ side at |i−j| ≈ side ⇒ ratio ≈ side.
	sv, err := UnitStepDilation(curve.NewSnake(u), 2)
	if err != nil {
		t.Fatal(err)
	}
	if sv <= v {
		t.Fatalf("snake dilation %v not worse than hilbert %v", sv, v)
	}
}

func TestUnitStepDilationGuards(t *testing.T) {
	if _, err := UnitStepDilation(curve.NewHilbert(grid.MustNew(3, 6)), 1); err == nil {
		t.Fatal("oversized accepted")
	}
	if _, err := UnitStepDilation(curve.NewHilbert(grid.MustNew(2, 0)), 1); err == nil {
		t.Fatal("single cell accepted")
	}
}
