package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/curve"
)

// StratifiedNN is a stratified estimate of the nearest-neighbor stretch.
type StratifiedNN struct {
	DAvg    float64 // unbiased estimate of Davg(π)
	Strata  int     // number of (dimension, bit-level) strata sampled
	Samples int     // total pairs sampled
}

// StratifiedNNStretch estimates Davg(π) by importance-stratified sampling,
// correcting the heavy-tail failure of uniform sampling on hierarchical
// curves (see SampledNNStretch).
//
// Nearest-neighbor pairs along dimension i whose lower coordinate κ ends in
// exactly j−1 one bits (κ ≡ 2^(j−1)−1 mod 2^j) form the paper's group
// G_{i,j} with exactly 2^(k−j)·side^(d−1) members (§IV.B). For hierarchical
// curves the curve distance of a pair is governed by its level j, so
// sampling each stratum separately captures every scale with equal
// resolution. Within a stratum the estimator averages the *weighted*
// distance (1/|N(α)| + 1/|N(β)|)·Δπ, which by the identity in Lemma 3's
// proof makes the combined estimate unbiased for Davg itself:
//
//	Davg(π) = (1/n) Σ_{(α,β)∈NN_d} (1/|N(α)| + 1/|N(β)|) Δπ(α,β).
//
// The estimator touches O(d·k·samplesPerStratum) cells regardless of n, so
// it measures Davg of any curve at sizes like n = 2^60.
func StratifiedNNStretch(c curve.Curve, samplesPerStratum int, seed int64) (StratifiedNN, error) {
	u := c.Universe()
	d, k := u.D(), u.K()
	if u.N() < 2 {
		return StratifiedNN{}, fmt.Errorf("core: NN stretch undefined for n=%d", u.N())
	}
	if samplesPerStratum < 1 {
		return StratifiedNN{}, fmt.Errorf("core: need at least 1 sample per stratum")
	}
	rng := rand.New(rand.NewSource(seed))
	p := u.NewPoint()
	q := u.NewPoint()
	var total float64
	res := StratifiedNN{}
	for dim := 0; dim < d; dim++ {
		for j := 1; j <= k; j++ {
			// Stratum size |G_{dim,j}| = 2^(k-j) · side^(d-1).
			kappaChoices := uint64(1) << uint(k-j)
			stratumCount := float64(kappaChoices) * math.Pow(float64(u.Side()), float64(d-1))
			samples := samplesPerStratum
			// On a line the stratum population IS the set of κ choices; when
			// the budget covers it, enumerate each pair exactly once instead
			// of sampling with replacement (which can miss pairs and leaves
			// residual variance). The stratum mean then becomes exact, so at
			// d=1 a sufficient budget makes the whole estimate exact.
			exhaustive := d == 1 && uint64(samples) >= kappaChoices
			if exhaustive {
				samples = int(kappaChoices)
			}
			var sum, comp float64
			for s := 0; s < samples; s++ {
				t := uint64(s)
				if !exhaustive {
					t = uint64(rng.Int63n(int64(kappaChoices)))
				}
				kappa := t<<uint(j) | (1<<uint(j-1) - 1)
				for i := 0; i < d; i++ {
					if i == dim {
						p[i] = uint32(kappa)
					} else {
						p[i] = uint32(rng.Int63n(int64(u.Side())))
					}
				}
				copy(q, p)
				q[dim] = p[dim] + 1
				w := 1/float64(u.Degree(p)) + 1/float64(u.Degree(q))
				y := w*float64(curve.Dist(c, p, q)) - comp
				tt := sum + y
				comp = (tt - sum) - y
				sum = tt
			}
			total += sum / float64(samples) * stratumCount
			res.Strata++
			res.Samples += samples
		}
	}
	res.DAvg = total / float64(u.N())
	return res, nil
}
