package core

import (
	"fmt"

	"repro/internal/curve"
	"repro/internal/grid"
)

// MaxExhaustiveN bounds the universe size for ExhaustiveOptimal: the search
// visits all n! bijections (8! = 40320 is instant; 16! is not).
const MaxExhaustiveN = 8

// Optimal is the result of an exhaustive search over every SFC of a tiny
// universe.
type Optimal struct {
	MinDAvg  float64  // minimum Davg over all n! bijections
	MinDMax  float64  // minimum Dmax over all n! bijections
	BestAvg  []uint64 // a permutation achieving MinDAvg (linear idx → curve idx)
	BestMax  []uint64 // a permutation achieving MinDMax
	Searched uint64   // bijections evaluated (n!)
}

// ExhaustiveOptimal finds the truly optimal SFC of a tiny universe by
// enumerating all n! bijections (Heap's algorithm). The paper's Theorem 1
// lower-bounds what any SFC can achieve; this computes the exact optimum at
// the only sizes where that is feasible, quantifying the bound's slack.
func ExhaustiveOptimal(u *grid.Universe) (Optimal, error) {
	n := u.N()
	if n < 2 {
		return Optimal{}, fmt.Errorf("core: optimum undefined for n=%d", n)
	}
	if n > MaxExhaustiveN {
		return Optimal{}, fmt.Errorf("core: exhaustive search over n=%d (> %d) is infeasible", n, MaxExhaustiveN)
	}
	// Precompute the neighbor structure once: for each linear cell index,
	// the linear indices of its neighbors and its degree.
	type cellInfo struct {
		neighbors []int
		invDeg    float64
	}
	cells := make([]cellInfo, n)
	u.Cells(func(lin uint64, p grid.Point) bool {
		var nbs []int
		u.Neighbors(p, func(_ int, q grid.Point) {
			nbs = append(nbs, int(u.Linear(q)))
		})
		cells[lin] = cellInfo{neighbors: nbs, invDeg: 1 / float64(len(nbs))}
		return true
	})

	perm := make([]uint64, n)
	for i := range perm {
		perm[i] = uint64(i)
	}
	opt := Optimal{MinDAvg: 1e308, MinDMax: 1e308}
	evaluate := func() {
		var sumAvg, sumMax float64
		for lin := range cells {
			base := perm[lin]
			var total, max uint64
			for _, nb := range cells[lin].neighbors {
				dd := absDiff(base, perm[nb])
				total += dd
				if dd > max {
					max = dd
				}
			}
			sumAvg += float64(total) * cells[lin].invDeg
			sumMax += float64(max)
		}
		if avg := sumAvg / float64(n); avg < opt.MinDAvg {
			opt.MinDAvg = avg
			opt.BestAvg = append(opt.BestAvg[:0], perm...)
		}
		if mx := sumMax / float64(n); mx < opt.MinDMax {
			opt.MinDMax = mx
			opt.BestMax = append(opt.BestMax[:0], perm...)
		}
		opt.Searched++
	}
	// Heap's algorithm, iterative.
	counters := make([]int, n)
	evaluate()
	for i := 0; i < int(n); {
		if counters[i] < i {
			if i%2 == 0 {
				perm[0], perm[i] = perm[i], perm[0]
			} else {
				perm[counters[i]], perm[i] = perm[i], perm[counters[i]]
			}
			evaluate()
			counters[i]++
			i = 0
		} else {
			counters[i] = 0
			i++
		}
	}
	return opt, nil
}

// OptimalCurve wraps a permutation found by ExhaustiveOptimal as a Curve.
func OptimalCurve(u *grid.Universe, perm []uint64, name string) (curve.Curve, error) {
	return curve.NewTable(u, name, perm)
}
