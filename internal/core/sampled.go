package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/curve"
	"repro/internal/grid"
)

// SampledNN is a sampled estimate of the nearest-neighbor stretch.
type SampledNN struct {
	DAvg       float64 // estimate of Davg(π)
	DAvgStdErr float64 // standard error of the DAvg estimate
	DMax       float64 // estimate of Dmax(π)
	Samples    int
}

// SampledNNStretch estimates Davg and Dmax by sampling cells uniformly at
// random (deterministically from seed) and evaluating δavg/δmax exactly at
// each sampled cell. Unlike the exact sweep, it only needs O(samples · d)
// curve evaluations, so it runs on universes far beyond the 2^20-cell exact
// regime.
//
// Caveat for hierarchical curves (Z, Gray, Hilbert): their per-cell δavg
// distribution is heavy-tailed — level-j boundary crossings have curve
// distance ~2^(jd) but probability ~2^(−j), so every bit level contributes
// equally to the mean. A uniform sample therefore underestimates Davg
// unless samples ≫ 2^k; at very large k prefer the exact closed forms in
// the bounds package (validated against exhaustive measurement at feasible
// sizes). The simple/snake curves have essentially constant δavg per
// interior cell, so sampling is accurate for them at any size — which is
// how the harness probes Theorem 3 at n = 2^60 (experiment ext-bign).
func SampledNNStretch(c curve.Curve, samples int, seed int64) (SampledNN, error) {
	u := c.Universe()
	if u.N() < 2 {
		return SampledNN{}, fmt.Errorf("core: NN stretch undefined for n=%d", u.N())
	}
	if samples < 2 {
		return SampledNN{}, fmt.Errorf("core: need at least 2 samples, got %d", samples)
	}
	rng := rand.New(rand.NewSource(seed))
	p := u.NewPoint()
	q := u.NewPoint()
	var sum, sumSq, maxSum float64
	for s := 0; s < samples; s++ {
		for i := range p {
			p[i] = uint32(rng.Int63n(int64(u.Side())))
		}
		// One deltaAt pass per sample yields both δavg and δmax (the old
		// DeltaAvgAt + DeltaMaxAt pair evaluated every neighbor twice); q is
		// hoisted scratch. Values and RNG stream are unchanged.
		cellSum, cellMax, deg := deltaAt(c, p, q)
		var v float64
		if deg > 0 {
			v = float64(cellSum) / float64(deg)
		}
		sum += v
		sumSq += v * v
		maxSum += float64(cellMax)
	}
	mean := sum / float64(samples)
	variance := (sumSq - sum*mean) / float64(samples-1)
	if variance < 0 {
		variance = 0
	}
	return SampledNN{
		DAvg:       mean,
		DAvgStdErr: math.Sqrt(variance / float64(samples)),
		DMax:       maxSum / float64(samples),
		Samples:    samples,
	}, nil
}

// ProfileBin is one distance stratum of a stretch profile.
type ProfileBin struct {
	Distance    uint64  // Manhattan distance r of the stratum
	MeanStretch float64 // mean Δπ/Δ over sampled pairs at distance r
	Pairs       int     // pairs sampled in this stratum
}

// StretchProfile estimates the mean stretch Δπ/Δ as a function of the
// Manhattan distance r between the pair, for r = 1, 2, 4, … up to the
// universe diameter. This addresses the final open question of the paper's
// §VI — proximity preservation "using a more general probabilistic model of
// input". The profile exposes a structural dichotomy: for the structured
// curves the stretch is approximately scale-invariant (every stratum is
// Θ(n^(1−1/d)), consistent with the paper's NN and all-pairs bounds
// differing only by constants), whereas for a random bijection Δπ is
// ~(n+1)/3 regardless of r, so its profile decays like 1/r.
//
// Pairs are sampled by picking a random cell and a random offset of
// Manhattan length r (rejection-sampled inside the universe).
func StretchProfile(c curve.Curve, samplesPerBin int, seed int64) ([]ProfileBin, error) {
	u := c.Universe()
	if u.N() < 2 {
		return nil, fmt.Errorf("core: profile undefined for n=%d", u.N())
	}
	if samplesPerBin < 1 {
		return nil, fmt.Errorf("core: need at least 1 sample per bin")
	}
	rng := rand.New(rand.NewSource(seed))
	var bins []ProfileBin
	p := u.NewPoint()
	q := u.NewPoint()
	for r := uint64(1); r <= u.MaxManhattan(); r *= 2 {
		var sum float64
		pairs := 0
		attempts := 0
		maxAttempts := samplesPerBin * 100
		for pairs < samplesPerBin && attempts < maxAttempts {
			attempts++
			for i := range p {
				p[i] = uint32(rng.Int63n(int64(u.Side())))
			}
			if !randomOffset(rng, u, p, q, r) {
				continue
			}
			sum += float64(curve.Dist(c, p, q)) / float64(r)
			pairs++
		}
		if pairs == 0 {
			continue
		}
		bins = append(bins, ProfileBin{Distance: r, MeanStretch: sum / float64(pairs), Pairs: pairs})
	}
	return bins, nil
}

// randomOffset writes into q a uniformly chosen cell at Manhattan distance
// exactly r from p, returning false when the sampled offset leaves the
// universe. The offset splits r across dimensions by a stars-and-bars draw
// and assigns each component a random sign.
func randomOffset(rng *rand.Rand, u *grid.Universe, p, q grid.Point, r uint64) bool {
	d := u.D()
	// Draw a random composition of r into d nonnegative parts.
	parts := make([]uint64, d)
	remaining := r
	for i := 0; i < d-1; i++ {
		// Binomial-ish split: uniform cut of the remaining mass.
		parts[i] = uint64(rng.Int63n(int64(remaining) + 1))
		remaining -= parts[i]
	}
	parts[d-1] = remaining
	rng.Shuffle(d, func(i, j int) { parts[i], parts[j] = parts[j], parts[i] })
	for i := 0; i < d; i++ {
		v := int64(p[i])
		if parts[i] > 0 && rng.Intn(2) == 0 {
			v -= int64(parts[i])
		} else {
			v += int64(parts[i])
		}
		if v < 0 || v >= int64(u.Side()) {
			return false
		}
		q[i] = uint32(v)
	}
	return true
}

// PNormStretch computes the p-norm all-pairs stretch of Dai & Su ([7, 8] in
// the paper's related work):
//
//	str_p(π) = ( (2/(n(n−1))) Σ_{(α,β) ∈ A} (Δπ(α,β)/Δ(α,β))^p )^(1/p)
//
// For p = 1 under the Manhattan metric it coincides with AllPairsStretch;
// growing p weights the badly-stretched pairs more heavily, interpolating
// towards the worst-case pair stretch (MaxPairStretch) as p → ∞.
func PNormStretch(c curve.Curve, m Metric, p float64, workers int) (float64, error) {
	u := c.Universe()
	n := u.N()
	if n > MaxExactPairsN {
		return 0, fmt.Errorf("core: exact p-norm stretch over n=%d exceeds limit %d", n, MaxExactPairsN)
	}
	if n < 2 {
		return 0, fmt.Errorf("core: p-norm stretch undefined for n=%d", n)
	}
	if p < 1 {
		return 0, fmt.Errorf("core: p-norm needs p >= 1, got %v", p)
	}
	idxOf, coords := flatUniverse(c)
	d := u.D()
	total := sumPairsFloat(n, workers, func(a, b uint64) float64 {
		dist := pairDistance(coords, d, a, b, m)
		return math.Pow(float64(absDiff(idxOf[a], idxOf[b]))/dist, p)
	})
	return math.Pow(2*total/(float64(n)*float64(n-1)), 1/p), nil
}

// ConverseStretch measures the opposite direction from the paper's stretch
// — the question of Gotsman & Lindenbaum ([11]): how far apart in space can
// two cells be, relative to their distance along the curve? It returns the
// maximum over unordered pairs of
//
//	Δ_E(α, β) / Δπ(α, β)^(1/d),
//
// the natural normalization since an index interval of length m can span a
// region of diameter at most O(m^(1/d)). Unit-step curves with good
// locality (Hilbert) keep this ratio small; the Z curve's jumps make it
// large. The paper notes ([20], [11]) that a small converse stretch does
// NOT imply a small forward stretch — this metric lets the harness
// demonstrate that contrast.
func ConverseStretch(c curve.Curve, workers int) (float64, error) {
	u := c.Universe()
	n := u.N()
	if n > MaxExactPairsN {
		return 0, fmt.Errorf("core: exact converse stretch over n=%d exceeds limit %d", n, MaxExactPairsN)
	}
	if n < 2 {
		return 0, fmt.Errorf("core: converse stretch undefined for n=%d", n)
	}
	idxOf, coords := flatUniverse(c)
	d := u.D()
	invD := 1 / float64(d)
	return maxPairsFloat(n, workers, func(a, b uint64) float64 {
		dist := pairDistance(coords, d, a, b, Euclidean)
		return dist / math.Pow(float64(absDiff(idxOf[a], idxOf[b])), invD)
	}), nil
}

// UnitStepDilation returns, for a unit-step curve, the maximum over index
// pairs (i, j) of Δ(π⁻¹(i), π⁻¹(j))^d / |i−j| — the worst-case constant in
// Niedermeier, Reinhardt & Sanders' style bounds ("Manhattan distance is at
// most c·|i−j|^(1/d)", [20] in the paper; they prove c^d ≤ 9 for the 2-d
// Hilbert curve in the form Δ ≤ 3·sqrt(i−j)).
func UnitStepDilation(c curve.Curve, workers int) (float64, error) {
	u := c.Universe()
	n := u.N()
	if n > MaxExactPairsN {
		return 0, fmt.Errorf("core: exact dilation over n=%d exceeds limit %d", n, MaxExactPairsN)
	}
	if n < 2 {
		return 0, fmt.Errorf("core: dilation undefined for n=%d", n)
	}
	// Here pairs range over curve indices, so decode the curve once with a
	// single batched decode (kernel fast path when the curve has one).
	d := u.D()
	coords := make([]uint32, n*uint64(d))
	indices := make([]uint64, n)
	for idx := range indices {
		indices[idx] = uint64(idx)
	}
	curve.NewBatcher(c).PointBatch(indices, coords)
	dd := float64(d)
	return maxPairsFloat(n, workers, func(a, b uint64) float64 {
		var md uint64
		ca := coords[a*uint64(d) : (a+1)*uint64(d)]
		cb := coords[b*uint64(d) : (b+1)*uint64(d)]
		for i := 0; i < d; i++ {
			if ca[i] >= cb[i] {
				md += uint64(ca[i] - cb[i])
			} else {
				md += uint64(cb[i] - ca[i])
			}
		}
		return math.Pow(float64(md), dd) / float64(b-a)
	}), nil
}

// pairDistance computes the chosen metric between two flattened cells.
func pairDistance(coords []uint32, d int, a, b uint64, m Metric) float64 {
	ca := coords[a*uint64(d) : (a+1)*uint64(d)]
	cb := coords[b*uint64(d) : (b+1)*uint64(d)]
	switch m {
	case Manhattan:
		var md uint64
		for i := 0; i < d; i++ {
			if ca[i] >= cb[i] {
				md += uint64(ca[i] - cb[i])
			} else {
				md += uint64(cb[i] - ca[i])
			}
		}
		return float64(md)
	default:
		var sq float64
		for i := 0; i < d; i++ {
			diff := float64(int64(ca[i]) - int64(cb[i]))
			sq += diff * diff
		}
		return math.Sqrt(sq)
	}
}
