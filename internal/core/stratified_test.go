package core

import (
	"math"
	"testing"

	"repro/internal/bounds"
	"repro/internal/curve"
	"repro/internal/grid"
)

func TestStratifiedMatchesExactAcrossCurves(t *testing.T) {
	// The stratified estimator must agree with the exact sweep for every
	// curve at feasible sizes — including the heavy-tailed hierarchical
	// ones that defeat uniform sampling.
	for _, dk := range [][2]int{{2, 6}, {3, 4}} {
		u := grid.MustNew(dk[0], dk[1])
		for _, c := range testCurves(t, u) {
			exact := DAvg(c, 2)
			est, err := StratifiedNNStretch(c, 3000, 7)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(est.DAvg-exact) > 0.06*exact {
				t.Errorf("%s on %v: stratified %v, exact %v", c.Name(), u, est.DAvg, exact)
			}
			if est.Strata != dk[0]*dk[1] {
				t.Errorf("%s: %d strata, want %d", c.Name(), est.Strata, dk[0]*dk[1])
			}
		}
	}
}

func TestStratifiedFixesHeavyTailAtHugeN(t *testing.T) {
	// The payoff: Davg(Z) and Davg(hilbert) measured at n = 2^60, where
	// uniform sampling underestimates by ~10× (see
	// TestSampledNNStretchHeavyTailCaveat). Z must sit at its Theorem 2
	// asymptote.
	u := grid.MustNew(3, 20)
	z := curve.NewZ(u)
	est, err := StratifiedNNStretch(z, 4000, 11)
	if err != nil {
		t.Fatal(err)
	}
	asym := bounds.NNAsymptote(3, 20)
	if ratio := est.DAvg / asym; math.Abs(ratio-1) > 0.05 {
		t.Fatalf("stratified Davg(Z)/asymptote = %v at n=2^60", ratio)
	}
	// Hilbert at n=2^60: same Θ(n^(1−1/d)) regime, ratio to bound bounded.
	h := curve.NewHilbert(u)
	estH, err := StratifiedNNStretch(h, 4000, 11)
	if err != nil {
		t.Fatal(err)
	}
	lb := bounds.NNAvgLowerBound(3, 20)
	if r := estH.DAvg / lb; r < 1 || r > 3 {
		t.Fatalf("stratified Davg(hilbert)/bound = %v at n=2^60", r)
	}
}

func TestStratifiedDeterministic(t *testing.T) {
	u := grid.MustNew(2, 8)
	g := curve.NewGray(u)
	a, err := StratifiedNNStretch(g, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := StratifiedNNStretch(g, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestStratifiedGuards(t *testing.T) {
	if _, err := StratifiedNNStretch(curve.NewZ(grid.MustNew(2, 0)), 10, 1); err == nil {
		t.Fatal("single cell accepted")
	}
	if _, err := StratifiedNNStretch(curve.NewZ(grid.MustNew(2, 3)), 0, 1); err == nil {
		t.Fatal("0 samples accepted")
	}
}

func TestStratifiedOneDimensional(t *testing.T) {
	// d=1 simple curve: Davg is exactly 1; the estimator (which samples
	// strata with replacement) must land close. Boundary cells give the
	// only within-stratum variance, so a moderate sample suffices.
	u := grid.MustNew(1, 6)
	s := curve.NewSimple(u)
	est, err := StratifiedNNStretch(s, 500, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.DAvg-1) > 0.03 {
		t.Fatalf("1-d simple stratified Davg = %v, want ≈ 1", est.DAvg)
	}
}
