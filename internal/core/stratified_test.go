package core

import (
	"math"
	"testing"

	"repro/internal/bounds"
	"repro/internal/curve"
	"repro/internal/grid"
)

func TestStratifiedMatchesExactAcrossCurves(t *testing.T) {
	// The stratified estimator must agree with the exact sweep for every
	// curve at feasible sizes — including the heavy-tailed hierarchical
	// ones that defeat uniform sampling.
	for _, dk := range [][2]int{{2, 6}, {3, 4}} {
		u := grid.MustNew(dk[0], dk[1])
		for _, c := range testCurves(t, u) {
			exact := DAvg(c, 2)
			est, err := StratifiedNNStretch(c, 3000, 7)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(est.DAvg-exact) > 0.06*exact {
				t.Errorf("%s on %v: stratified %v, exact %v", c.Name(), u, est.DAvg, exact)
			}
			if est.Strata != dk[0]*dk[1] {
				t.Errorf("%s: %d strata, want %d", c.Name(), est.Strata, dk[0]*dk[1])
			}
		}
	}
}

func TestStratifiedFixesHeavyTailAtHugeN(t *testing.T) {
	// The payoff: Davg(Z) and Davg(hilbert) measured at n = 2^60, where
	// uniform sampling underestimates by ~10× (see
	// TestSampledNNStretchHeavyTailCaveat). Z must sit at its Theorem 2
	// asymptote.
	u := grid.MustNew(3, 20)
	z := curve.NewZ(u)
	est, err := StratifiedNNStretch(z, 4000, 11)
	if err != nil {
		t.Fatal(err)
	}
	asym := bounds.NNAsymptote(3, 20)
	if ratio := est.DAvg / asym; math.Abs(ratio-1) > 0.05 {
		t.Fatalf("stratified Davg(Z)/asymptote = %v at n=2^60", ratio)
	}
	// Hilbert at n=2^60: same Θ(n^(1−1/d)) regime, ratio to bound bounded.
	h := curve.NewHilbert(u)
	estH, err := StratifiedNNStretch(h, 4000, 11)
	if err != nil {
		t.Fatal(err)
	}
	lb := bounds.NNAvgLowerBound(3, 20)
	if r := estH.DAvg / lb; r < 1 || r > 3 {
		t.Fatalf("stratified Davg(hilbert)/bound = %v at n=2^60", r)
	}
}

func TestStratifiedDeterministic(t *testing.T) {
	u := grid.MustNew(2, 8)
	g := curve.NewGray(u)
	a, err := StratifiedNNStretch(g, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := StratifiedNNStretch(g, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestStratifiedGuards(t *testing.T) {
	if _, err := StratifiedNNStretch(curve.NewZ(grid.MustNew(2, 0)), 10, 1); err == nil {
		t.Fatal("single cell accepted")
	}
	if _, err := StratifiedNNStretch(curve.NewZ(grid.MustNew(2, 3)), 0, 1); err == nil {
		t.Fatal("0 samples accepted")
	}
}

func TestStratifiedOneDimensional(t *testing.T) {
	// d=1 simple curve: Davg is exactly 1, and with the per-stratum budget
	// covering every κ choice the estimator enumerates each pair once, so
	// the estimate is exact, not merely close.
	u := grid.MustNew(1, 6)
	s := curve.NewSimple(u)
	est, err := StratifiedNNStretch(s, 500, 5)
	if err != nil {
		t.Fatal(err)
	}
	if est.DAvg != 1 {
		t.Fatalf("1-d simple stratified Davg = %v, want exactly 1", est.DAvg)
	}
}

func TestStratifiedExhaustiveOnLine(t *testing.T) {
	// Regression pinned by the conformance engine: at d=1 the estimator
	// used to clip the per-stratum budget to the population but still drew
	// WITH replacement, so it could miss pairs entirely — on a random
	// bijection over side=4 it returned Davg estimates off by >35%. With a
	// budget ≥ the largest stratum it now enumerates every nearest-neighbor
	// pair exactly once, so the estimate equals the exact sequential sweep
	// up to summation-order rounding (the estimator groups per pair, the
	// exact engine per cell) — for any curve, any seed.
	for _, k := range []int{1, 2, 5} {
		u := grid.MustNew(1, k)
		for _, name := range curve.Names() {
			c, err := curve.ByName(name, u, 99)
			if err != nil {
				t.Fatal(err)
			}
			exact := DAvg(c, 2)
			for _, seed := range []int64{1, 2, 20120523} {
				est, err := StratifiedNNStretch(c, 1<<uint(k), seed)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(est.DAvg-exact) > 1e-12*exact {
					t.Errorf("%s d=1 k=%d seed=%d: stratified %v, exact %v",
						name, k, seed, est.DAvg, exact)
				}
			}
		}
	}
}
