package core

import (
	"fmt"
	"math"
	"math/big"
	"math/rand"

	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/parallel"
)

// MaxExactPairsN bounds the universe size for the exact O(n²) all-pairs
// computations; beyond it the sampled estimators must be used.
const MaxExactPairsN = 1 << 15

// Metric selects the high-dimensional distance used by the all-pairs
// stretch (§V.B of the paper).
type Metric int

const (
	// Manhattan is Δ(α, β) = Σ|α_i − β_i|.
	Manhattan Metric = iota
	// Euclidean is Δ_E(α, β) = sqrt(Σ(α_i − β_i)²).
	Euclidean
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case Manhattan:
		return "manhattan"
	case Euclidean:
		return "euclidean"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// flatUniverse materializes the curve as flat arrays for O(1) pair access:
// for each Linear cell index, its curve index and its coordinates. The
// coordinate block is generated incrementally and the keys come from one
// batched encode, which takes the kernel fast path when the curve has one.
func flatUniverse(c curve.Curve) (idxOf []uint64, coords []uint32) {
	u := c.Universe()
	n := u.N()
	d := u.D()
	idxOf = make([]uint64, n)
	coords = make([]uint32, n*uint64(d))
	fillBlockCoords(u, 0, int(n), coords)
	curve.NewBatcher(c).IndexBatch(coords, idxOf)
	return idxOf, coords
}

// sumPairsFloat sums term(a, b) over all unordered pairs a < b of [0, n),
// parallelized over a with per-chunk Kahan compensation and a deterministic
// combine.
func sumPairsFloat(n uint64, workers int, term func(a, b uint64) float64) float64 {
	return parallel.SumFloat64Chunked(n, workers, func(lo, hi uint64) float64 {
		var s, comp float64
		for a := lo; a < hi; a++ {
			for b := a + 1; b < n; b++ {
				y := term(a, b) - comp
				t := s + y
				comp = (t - s) - y
				s = t
			}
		}
		return s
	})
}

// maxPairsFloat maximizes term(a, b) over all unordered pairs a < b.
func maxPairsFloat(n uint64, workers int, term func(a, b uint64) float64) float64 {
	return parallel.MaxFloat64Chunked(n, workers, func(lo, hi uint64) float64 {
		best := math.Inf(-1)
		for a := lo; a < hi; a++ {
			for b := a + 1; b < n; b++ {
				if v := term(a, b); v > best {
					best = v
				}
			}
		}
		return best
	})
}

// AllPairsStretch returns str_avg(π) under the chosen metric:
//
//	str_avg(π) = (2/(n(n−1))) Σ_{(α,β) ∈ A} Δπ(α, β) / Δ(α, β)
//
// computed exactly over all unordered pairs, in parallel. It returns an
// error when n exceeds MaxExactPairsN (use SampledAllPairsStretch instead)
// or when the universe has a single cell.
func AllPairsStretch(c curve.Curve, m Metric, workers int) (float64, error) {
	u := c.Universe()
	n := u.N()
	if n > MaxExactPairsN {
		return 0, fmt.Errorf("core: exact all-pairs stretch over n=%d exceeds limit %d", n, MaxExactPairsN)
	}
	if n < 2 {
		return 0, fmt.Errorf("core: all-pairs stretch undefined for n=%d", n)
	}
	idxOf, coords := flatUniverse(c)
	d := u.D()
	// Parallelize over the first element of the pair; each a pairs with all
	// b > a, so per-index work is skewed — the deterministic static split is
	// still fine because the harness sizes are small.
	total := parallel.SumFloat64Chunked(n, workers, func(lo, hi uint64) float64 {
		var s, comp float64
		for a := lo; a < hi; a++ {
			ca := coords[a*uint64(d) : (a+1)*uint64(d)]
			ia := idxOf[a]
			for b := a + 1; b < n; b++ {
				cb := coords[b*uint64(d) : (b+1)*uint64(d)]
				var dist float64
				switch m {
				case Manhattan:
					var md uint64
					for i := 0; i < d; i++ {
						if ca[i] >= cb[i] {
							md += uint64(ca[i] - cb[i])
						} else {
							md += uint64(cb[i] - ca[i])
						}
					}
					dist = float64(md)
				case Euclidean:
					var sq float64
					for i := 0; i < d; i++ {
						diff := float64(int64(ca[i]) - int64(cb[i]))
						sq += diff * diff
					}
					dist = math.Sqrt(sq)
				}
				y := float64(absDiff(ia, idxOf[b]))/dist - comp
				t := s + y
				comp = (t - s) - y
				s = t
			}
		}
		return s
	})
	return 2 * total / (float64(n) * float64(n-1)), nil
}

// SAPrime returns S_{A′}(π) = Σ over ordered pairs of Δπ(α, β), computed by
// brute force over all unordered cell pairs (doubled). Lemma 2 states this
// equals (n−1)n(n+1)/3 for every bijection π; the harness verifies the
// identity. n is capped at MaxExactPairsN, which also keeps the sum within
// uint64.
func SAPrime(c curve.Curve, workers int) (uint64, error) {
	u := c.Universe()
	n := u.N()
	if n > MaxExactPairsN {
		return 0, fmt.Errorf("core: exact S_A' over n=%d exceeds limit %d", n, MaxExactPairsN)
	}
	idxOf, _ := flatUniverse(c)
	total := parallel.SumUint64Chunked(n, workers, func(lo, hi uint64) uint64 {
		var s uint64
		for a := lo; a < hi; a++ {
			ia := idxOf[a]
			for b := a + 1; b < n; b++ {
				s += absDiff(ia, idxOf[b])
			}
		}
		return s
	})
	return 2 * total, nil
}

// SAPrimeIdentity returns the Lemma 2 value (n−1)n(n+1)/3 as a big.Int
// (it exceeds uint64 for n ≥ 2^21).
func SAPrimeIdentity(n uint64) *big.Int {
	bn := new(big.Int).SetUint64(n)
	r := new(big.Int).SetUint64(n - 1)
	r.Mul(r, bn)
	r.Mul(r, new(big.Int).SetUint64(n+1))
	return r.Div(r, big.NewInt(3))
}

// SampledStretch is the result of a sampled all-pairs stretch estimate.
type SampledStretch struct {
	Mean    float64 // sample mean of Δπ/Δ over sampled pairs
	StdErr  float64 // standard error of the mean
	Samples int     // number of pairs sampled
}

// SampledAllPairsStretch estimates str_avg(π) by sampling unordered pairs
// of distinct cells uniformly at random (deterministically from seed).
func SampledAllPairsStretch(c curve.Curve, m Metric, samples int, seed int64) (SampledStretch, error) {
	u := c.Universe()
	n := u.N()
	if n < 2 {
		return SampledStretch{}, fmt.Errorf("core: all-pairs stretch undefined for n=%d", n)
	}
	if samples < 2 {
		return SampledStretch{}, fmt.Errorf("core: need at least 2 samples, got %d", samples)
	}
	rng := rand.New(rand.NewSource(seed))
	p := u.NewPoint()
	q := u.NewPoint()
	var sum, sumSq float64
	for s := 0; s < samples; s++ {
		la := uint64(rng.Int63n(int64(n)))
		lb := uint64(rng.Int63n(int64(n) - 1))
		if lb >= la {
			lb++
		}
		u.FromLinear(la, p)
		u.FromLinear(lb, q)
		dPi := float64(curve.Dist(c, p, q))
		var dist float64
		switch m {
		case Manhattan:
			dist = float64(grid.Manhattan(p, q))
		case Euclidean:
			dist = grid.Euclidean(p, q)
		}
		v := dPi / dist
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(samples)
	variance := (sumSq - sum*mean) / float64(samples-1)
	if variance < 0 {
		variance = 0
	}
	return SampledStretch{
		Mean:    mean,
		StdErr:  math.Sqrt(variance / float64(samples)),
		Samples: samples,
	}, nil
}

// MaxPairStretch returns max over unordered pairs of Δπ/Δ under the chosen
// metric — used to verify the per-pair Lemma 7 bounds for the simple curve.
func MaxPairStretch(c curve.Curve, m Metric, workers int) (float64, error) {
	u := c.Universe()
	n := u.N()
	if n > MaxExactPairsN {
		return 0, fmt.Errorf("core: exact max pair stretch over n=%d exceeds limit %d", n, MaxExactPairsN)
	}
	if n < 2 {
		return 0, fmt.Errorf("core: pair stretch undefined for n=%d", n)
	}
	idxOf, coords := flatUniverse(c)
	d := u.D()
	return parallel.MaxFloat64Chunked(n, workers, func(lo, hi uint64) float64 {
		best := math.Inf(-1)
		for a := lo; a < hi; a++ {
			ca := coords[a*uint64(d) : (a+1)*uint64(d)]
			ia := idxOf[a]
			for b := a + 1; b < n; b++ {
				cb := coords[b*uint64(d) : (b+1)*uint64(d)]
				var dist float64
				switch m {
				case Manhattan:
					var md uint64
					for i := 0; i < d; i++ {
						if ca[i] >= cb[i] {
							md += uint64(ca[i] - cb[i])
						} else {
							md += uint64(cb[i] - ca[i])
						}
					}
					dist = float64(md)
				case Euclidean:
					var sq float64
					for i := 0; i < d; i++ {
						diff := float64(int64(ca[i]) - int64(cb[i]))
						sq += diff * diff
					}
					dist = math.Sqrt(sq)
				}
				if v := float64(absDiff(ia, idxOf[b])) / dist; v > best {
					best = v
				}
			}
		}
		return best
	}), nil
}
