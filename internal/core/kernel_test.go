package core

import (
	"testing"

	"repro/internal/curve"
	"repro/internal/grid"
)

func TestFillBlockCoords(t *testing.T) {
	for _, tc := range []struct{ d, k int }{{1, 0}, {1, 3}, {2, 2}, {3, 2}, {2, 5}} {
		u := grid.MustNew(tc.d, tc.k)
		n := int(u.N())
		for _, lo := range []int{0, 1, n / 3, n - 1} {
			if lo < 0 || lo >= n {
				continue
			}
			cnt := n - lo
			if cnt > 300 {
				cnt = 300
			}
			coords := make([]uint32, cnt*tc.d)
			fillBlockCoords(u, uint64(lo), cnt, coords)
			p := u.NewPoint()
			for j := 0; j < cnt; j++ {
				u.FromLinear(uint64(lo+j), p)
				if !p.Equal(grid.Point(coords[j*tc.d : (j+1)*tc.d])) {
					t.Fatalf("d=%d k=%d lo=%d: row %d = %v, want %v",
						tc.d, tc.k, lo, j, coords[j*tc.d:(j+1)*tc.d], p)
				}
			}
		}
	}
}

// TestKernelSweepsBitIdentical pins the acceptance criterion of the kernel
// layer: for every registered curve, the kernelized NN, torus and Λ sweeps
// return exactly the bits of the legacy scalar sweeps (forced via
// curve.ScalarOnly).
func TestKernelSweepsBitIdentical(t *testing.T) {
	for _, tc := range []struct{ d, k int }{{1, 5}, {2, 3}, {2, 4}, {3, 2}, {3, 3}} {
		u := grid.MustNew(tc.d, tc.k)
		for _, name := range curve.Names() {
			c, err := curve.ByName(name, u, 11)
			if err != nil {
				t.Fatalf("d=%d k=%d %s: %v", tc.d, tc.k, name, err)
			}
			ref := curve.ScalarOnly(c)
			for _, workers := range []int{1, 3} {
				got, want := NNStretchResult(c, workers), NNStretchResult(ref, workers)
				if got != want {
					t.Errorf("d=%d k=%d %s workers=%d: kernel NN %+v, scalar %+v",
						tc.d, tc.k, name, workers, got, want)
				}
				got, want = NNStretchTorusResult(c, workers), NNStretchTorusResult(ref, workers)
				if got != want {
					t.Errorf("d=%d k=%d %s workers=%d: kernel torus %+v, scalar %+v",
						tc.d, tc.k, name, workers, got, want)
				}
				gl, wl := Lambdas(c, workers), Lambdas(ref, workers)
				for i := range wl {
					if gl[i] != wl[i] {
						t.Errorf("d=%d k=%d %s workers=%d: kernel Λ_%d = %d, scalar %d",
							tc.d, tc.k, name, workers, i+1, gl[i], wl[i])
					}
				}
			}
		}
	}
}

// TestDeltaAtMatchesPublic pins deltaAt against the public per-cell
// accessors it now backs.
func TestDeltaAtMatchesPublic(t *testing.T) {
	u := grid.MustNew(2, 3)
	c, err := curve.ByName("hilbert", u, 0)
	if err != nil {
		t.Fatal(err)
	}
	q := u.NewPoint()
	u.Cells(func(_ uint64, p grid.Point) bool {
		sum, max, deg := deltaAt(c, p, q)
		if deg != u.Degree(p) {
			t.Fatalf("deltaAt(%v) deg = %d, want %d", p, deg, u.Degree(p))
		}
		if got := DeltaAvgAt(c, p); got != float64(sum)/float64(deg) {
			t.Fatalf("DeltaAvgAt(%v) = %v, deltaAt gives %v", p, got, float64(sum)/float64(deg))
		}
		if got := DeltaMaxAt(c, p); got != max {
			t.Fatalf("DeltaMaxAt(%v) = %d, deltaAt gives %d", p, got, max)
		}
		return true
	})
}
