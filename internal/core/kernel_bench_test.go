package core

import (
	"fmt"
	"testing"

	"repro/internal/curve"
	"repro/internal/grid"
)

// BenchmarkNNSweep compares the kernelized NN stretch sweep against the
// scalar path on the acceptance-bar universes. Run with -benchtime and
// -cpuprofile to see where a sweep spends its time.
func BenchmarkNNSweep(b *testing.B) {
	for _, tc := range []struct {
		name string
		d, k int
	}{
		{"z", 2, 10}, {"z", 3, 7},
		{"snake", 2, 10},
		{"hilbert", 2, 10},
	} {
		u := grid.MustNew(tc.d, tc.k)
		c, err := curve.ByName(tc.name, u, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, side := range []struct {
			label string
			c     curve.Curve
		}{{"kernel", c}, {"scalar", curve.ScalarOnly(c)}} {
			b.Run(fmt.Sprintf("%s/d%dk%d/%s", tc.name, tc.d, tc.k, side.label), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					NNStretchResult(side.c, 1)
				}
			})
		}
	}
}
