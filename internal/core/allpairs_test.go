package core

import (
	"math"
	"math/big"
	"testing"

	"repro/internal/bounds"
	"repro/internal/curve"
	"repro/internal/grid"
)

// naiveAllPairs is a trust-nothing O(n²) reference using only the public
// grid/curve primitives.
func naiveAllPairs(c curve.Curve, m Metric) float64 {
	u := c.Universe()
	n := u.N()
	p := u.NewPoint()
	q := u.NewPoint()
	var sum float64
	for a := uint64(0); a < n; a++ {
		for b := a + 1; b < n; b++ {
			u.FromLinear(a, p)
			u.FromLinear(b, q)
			var dist float64
			if m == Manhattan {
				dist = float64(grid.Manhattan(p, q))
			} else {
				dist = grid.Euclidean(p, q)
			}
			sum += float64(curve.Dist(c, p, q)) / dist
		}
	}
	return 2 * sum / (float64(n) * float64(n-1))
}

func TestAllPairsStretchMatchesNaive(t *testing.T) {
	for _, dk := range [][2]int{{1, 4}, {2, 2}, {3, 1}} {
		u := grid.MustNew(dk[0], dk[1])
		for _, c := range testCurves(t, u) {
			for _, m := range []Metric{Manhattan, Euclidean} {
				got, err := AllPairsStretch(c, m, 3)
				if err != nil {
					t.Fatal(err)
				}
				if want := naiveAllPairs(c, m); math.Abs(got-want) > 1e-9 {
					t.Errorf("%s %v on %v: %v, naive %v", c.Name(), m, u, got, want)
				}
			}
		}
	}
}

func TestAllPairsStretchGuards(t *testing.T) {
	big3 := grid.MustNew(3, 6) // 2^18 > MaxExactPairsN
	if _, err := AllPairsStretch(curve.NewZ(big3), Manhattan, 1); err == nil {
		t.Fatal("oversized exact all-pairs accepted")
	}
	one := grid.MustNew(2, 0)
	if _, err := AllPairsStretch(curve.NewZ(one), Manhattan, 1); err == nil {
		t.Fatal("single-cell all-pairs accepted")
	}
	if _, err := MaxPairStretch(curve.NewZ(big3), Manhattan, 1); err == nil {
		t.Fatal("oversized max pair accepted")
	}
	if _, err := MaxPairStretch(curve.NewZ(one), Manhattan, 1); err == nil {
		t.Fatal("single-cell max pair accepted")
	}
	if _, err := SAPrime(curve.NewZ(big3), 1); err == nil {
		t.Fatal("oversized SAPrime accepted")
	}
}

func TestProposition3LowerBounds(t *testing.T) {
	// Any SFC's all-pairs stretch respects the Proposition 3 bounds.
	for _, dk := range [][2]int{{1, 4}, {2, 3}, {3, 2}} {
		d, k := dk[0], dk[1]
		u := grid.MustNew(d, k)
		lbM := bounds.AllPairsManhattanLB(d, k)
		lbE := bounds.AllPairsEuclideanLB(d, k)
		for _, c := range testCurves(t, u) {
			gotM, err := AllPairsStretch(c, Manhattan, 3)
			if err != nil {
				t.Fatal(err)
			}
			if gotM < lbM-1e-9 {
				t.Errorf("%s on %v: Manhattan stretch %v below bound %v", c.Name(), u, gotM, lbM)
			}
			gotE, err := AllPairsStretch(c, Euclidean, 3)
			if err != nil {
				t.Fatal(err)
			}
			if gotE < lbE-1e-9 {
				t.Errorf("%s on %v: Euclidean stretch %v below bound %v", c.Name(), u, gotE, lbE)
			}
			// Δ_E ≤ Δ pointwise, so the Euclidean stretch dominates.
			if gotE < gotM-1e-9 {
				t.Errorf("%s on %v: Euclidean stretch %v below Manhattan %v", c.Name(), u, gotE, gotM)
			}
		}
	}
}

func TestProposition4SimpleCurveUpperBounds(t *testing.T) {
	for _, dk := range [][2]int{{1, 4}, {2, 3}, {3, 2}} {
		d, k := dk[0], dk[1]
		u := grid.MustNew(d, k)
		s := curve.NewSimple(u)
		gotM, err := AllPairsStretch(s, Manhattan, 3)
		if err != nil {
			t.Fatal(err)
		}
		if ub := bounds.SimpleAllPairsManhattanUB(d, k); gotM > ub+1e-9 {
			t.Errorf("d=%d k=%d: simple Manhattan stretch %v above UB %v", d, k, gotM, ub)
		}
		gotE, err := AllPairsStretch(s, Euclidean, 3)
		if err != nil {
			t.Fatal(err)
		}
		if ub := bounds.SimpleAllPairsEuclideanUB(d, k); gotE > ub+1e-9 {
			t.Errorf("d=%d k=%d: simple Euclidean stretch %v above UB %v", d, k, gotE, ub)
		}
	}
}

func TestLemma7PerPairBound(t *testing.T) {
	// Lemma 7 is pointwise: max over pairs of ΔS/Δ ≤ n^(1−1/d), and
	// ΔS/Δ_E ≤ √2·n^(1−1/d).
	for _, dk := range [][2]int{{2, 3}, {3, 2}} {
		d, k := dk[0], dk[1]
		u := grid.MustNew(d, k)
		s := curve.NewSimple(u)
		maxM, err := MaxPairStretch(s, Manhattan, 2)
		if err != nil {
			t.Fatal(err)
		}
		if ub := bounds.SimpleAllPairsManhattanUB(d, k); maxM > ub+1e-9 {
			t.Errorf("d=%d k=%d: max pair Manhattan stretch %v above %v", d, k, maxM, ub)
		}
		maxE, err := MaxPairStretch(s, Euclidean, 2)
		if err != nil {
			t.Fatal(err)
		}
		if ub := bounds.SimpleAllPairsEuclideanUB(d, k); maxE > ub+1e-9 {
			t.Errorf("d=%d k=%d: max pair Euclidean stretch %v above %v", d, k, maxE, ub)
		}
	}
}

func TestLemma2SAPrimeIdentity(t *testing.T) {
	// S_{A'}(π) = (n−1)n(n+1)/3 for *every* bijection π.
	for _, dk := range [][2]int{{1, 4}, {2, 3}, {3, 2}} {
		u := grid.MustNew(dk[0], dk[1])
		want := SAPrimeIdentity(u.N())
		for _, c := range testCurves(t, u) {
			got, err := SAPrime(c, 3)
			if err != nil {
				t.Fatal(err)
			}
			if new(big.Int).SetUint64(got).Cmp(want) != 0 {
				t.Errorf("%s on %v: S_A' = %d, want %v", c.Name(), u, got, want)
			}
		}
	}
	// Both identity implementations agree.
	if SAPrimeIdentity(4096).Cmp(bounds.SAPrimeIdentity(4096)) != 0 {
		t.Fatal("core and bounds SAPrimeIdentity disagree")
	}
}

func TestSampledAllPairsApproximatesExact(t *testing.T) {
	u := grid.MustNew(2, 4)
	z := curve.NewZ(u)
	exact, err := AllPairsStretch(z, Manhattan, 3)
	if err != nil {
		t.Fatal(err)
	}
	est, err := SampledAllPairsStretch(z, Manhattan, 60000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est.Samples != 60000 || est.StdErr <= 0 {
		t.Fatalf("estimator metadata wrong: %+v", est)
	}
	if math.Abs(est.Mean-exact) > 6*est.StdErr {
		t.Fatalf("sampled %v ± %v far from exact %v", est.Mean, est.StdErr, exact)
	}
}

func TestSampledAllPairsDeterministic(t *testing.T) {
	u := grid.MustNew(3, 3)
	h := curve.NewHilbert(u)
	a, err := SampledAllPairsStretch(h, Euclidean, 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampledAllPairsStretch(h, Euclidean, 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed gave %+v and %+v", a, b)
	}
}

func TestSampledAllPairsGuards(t *testing.T) {
	u := grid.MustNew(2, 0)
	if _, err := SampledAllPairsStretch(curve.NewZ(u), Manhattan, 100, 1); err == nil {
		t.Fatal("single-cell sampling accepted")
	}
	u2 := grid.MustNew(2, 2)
	if _, err := SampledAllPairsStretch(curve.NewZ(u2), Manhattan, 1, 1); err == nil {
		t.Fatal("1-sample estimate accepted")
	}
}

func TestMetricString(t *testing.T) {
	if Manhattan.String() != "manhattan" || Euclidean.String() != "euclidean" {
		t.Fatal("metric names wrong")
	}
	if Metric(9).String() == "" {
		t.Fatal("unknown metric has empty name")
	}
}
