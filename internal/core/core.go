// Package core implements the paper's proximity-preservation metrics — the
// primary contribution of Xu & Tirthapura, "A Lower Bound on Proximity
// Preservation by Space Filling Curves" (IPDPS 2012).
//
// For a space filling curve π over the universe U (n cells, d dimensions):
//
//   - δavg_π(α): the average curve distance Δπ(α, β) = |π(α) − π(β)| from a
//     cell α to its nearest neighbors β ∈ N(α) (Definition 1).
//   - Davg(π): the average of δavg over all cells — the
//     "average-average nearest-neighbor stretch" (Definition 2).
//   - δmax_π(α), Dmax(π): the max-per-cell variants (Definitions 3, 4).
//   - str_avg,M(π), str_avg,E(π): the average all-pairs stretch under the
//     Manhattan and Euclidean metrics (§V.B).
//   - Λ_i(π): the per-dimension sums of curve distances over nearest-
//     neighbor pairs differing in dimension i (§IV.B), and S_{A′}(π), the
//     total curve distance over all ordered pairs (Lemma 2).
//
// All exact computations run in parallel over contiguous chunks of the cell
// index space with deterministic reductions (see the parallel package), so
// repeated runs yield identical values. Pass workers <= 0 to use
// GOMAXPROCS.
package core

import (
	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/parallel"
)

// DeltaAvgAt returns δavg_π(α) (Definition 1): the mean curve distance from
// cell p to its nearest neighbors.
func DeltaAvgAt(c curve.Curve, p grid.Point) float64 {
	sum, _, deg := deltaAt(c, p, c.Universe().NewPoint())
	if deg == 0 {
		return 0
	}
	return float64(sum) / float64(deg)
}

// DeltaMaxAt returns δmax_π(α) (Definition 3): the maximum curve distance
// from cell p to a nearest neighbor.
func DeltaMaxAt(c curve.Curve, p grid.Point) uint64 {
	_, max, _ := deltaAt(c, p, c.Universe().NewPoint())
	return max
}

// deltaAt computes the per-cell neighbor aggregates behind δavg and δmax in
// one pass — the sum and max of Δπ(p, ·) over N(p), and |N(p)| — using
// caller-provided scratch q so sampled and distribution sweeps can hoist
// the allocation out of their loops.
func deltaAt(c curve.Curve, p, q grid.Point) (sum, max uint64, deg int) {
	base := c.Index(p)
	c.Universe().NeighborsInto(p, q, func(_ int, nb grid.Point) {
		dd := absDiff(base, c.Index(nb))
		sum += dd
		if dd > max {
			max = dd
		}
		deg++
	})
	return sum, max, deg
}

// NN bundles the two nearest-neighbor stretch metrics of one curve — the
// paper's Davg (Definition 2) and Dmax (Definition 4) — as a single value,
// so result plumbing never has to carry a bare (davg, dmax) pair.
type NN struct {
	DAvg float64 // average-average nearest-neighbor stretch Davg(π)
	DMax float64 // average-maximum nearest-neighbor stretch Dmax(π)
}

// DAvg returns the average-average nearest-neighbor stretch Davg(π)
// (Definition 2), computed exactly in parallel.
func DAvg(c curve.Curve, workers int) float64 {
	return NNStretchResult(c, workers).DAvg
}

// DMax returns the average-maximum nearest-neighbor stretch Dmax(π)
// (Definition 4), computed exactly in parallel.
func DMax(c curve.Curve, workers int) float64 {
	return NNStretchResult(c, workers).DMax
}

// NNStretch computes Davg(π) and Dmax(π) in a single parallel sweep over
// all cells.
//
// Deprecated: use NNStretchResult, which returns the same values as a
// core.NN instead of a bare pair.
func NNStretch(c curve.Curve, workers int) (davg, dmax float64) {
	r := NNStretchResult(c, workers)
	return r.DAvg, r.DMax
}

// NNStretchResult computes Davg(π) and Dmax(π) in a single parallel sweep
// over all cells. The arithmetic (Kahan-compensated per-chunk accumulation,
// chunk-ordered reduction) is specified exactly; the conformance suite
// checks it bit-for-bit against a sequential oracle. Curves with a kernel
// fast path (curve.HasKernel) are swept with batched key evaluation — the
// same per-cell integer aggregates in the same order, so the result is
// bit-identical to the scalar sweep (the conformance kernel-sweep column
// enforces this).
func NNStretchResult(c curve.Curve, workers int) NN {
	u := c.Universe()
	n := u.N()
	if n == 1 {
		return NN{} // a single cell has no neighbors
	}
	partial := func(lo, hi uint64) nnAcc {
		p := u.NewPoint()
		q := u.NewPoint()
		side := u.Side()
		d := u.D()
		var a nnAcc
		var kahanAvgC, kahanMaxC float64
		for idx := lo; idx < hi; idx++ {
			u.FromLinear(idx, p)
			base := c.Index(p)
			var sum, max uint64
			deg := 0
			copy(q, p)
			for dim := 0; dim < d; dim++ {
				if p[dim] > 0 {
					q[dim] = p[dim] - 1
					dd := absDiff(base, c.Index(q))
					sum += dd
					if dd > max {
						max = dd
					}
					deg++
					q[dim] = p[dim]
				}
				if p[dim]+1 < side {
					q[dim] = p[dim] + 1
					dd := absDiff(base, c.Index(q))
					sum += dd
					if dd > max {
						max = dd
					}
					deg++
					q[dim] = p[dim]
				}
			}
			// Kahan-compensated accumulation of both running sums.
			y := float64(sum)/float64(deg) - kahanAvgC
			t := a.avg + y
			kahanAvgC = (t - a.avg) - y
			a.avg = t

			y = float64(max) - kahanMaxC
			t = a.max + y
			kahanMaxC = (t - a.max) - y
			a.max = t
		}
		return a
	}
	if curve.HasKernel(c) {
		partial = nnKernelPartial(c, u)
	}
	var sumAvg, sumMax, cAvg, cMax float64
	for _, a := range parallel.MapRanges(n, workers, partial) {
		y := a.avg - cAvg
		t := sumAvg + y
		cAvg = (t - sumAvg) - y
		sumAvg = t

		y = a.max - cMax
		t = sumMax + y
		cMax = (t - sumMax) - y
		sumMax = t
	}
	return NN{DAvg: sumAvg / float64(n), DMax: sumMax / float64(n)}
}

// absDiff returns |a − b| for curve indices.
func absDiff(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return b - a
}
