package core

import (
	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/parallel"
)

// NNStretchTorus computes Davg and Dmax under *periodic* boundary
// conditions: every cell has exactly 2d neighbors, with coordinates
// wrapping modulo the side length.
//
// The paper's model (§III) is the open grid; periodic domains are the norm
// in N-body and PDE codes, so this ablation quantifies what the wraparound
// costs. Wrap pairs connect opposite faces, which sit maximally far apart
// on every key-ordered curve — there are only d·n/s of them, but each costs
// Θ(n), adding a Θ(n^(1−1/d)) term of its own. The harness (ext-torus)
// shows the structured curves keep the same asymptotic order with a larger
// constant, while the paper's lower bound — proved for the open grid —
// still holds a fortiori (the periodic neighbor set contains the open one,
// and wrap distances only add weight).
func NNStretchTorus(c curve.Curve, workers int) (davg, dmax float64) {
	r := NNStretchTorusResult(c, workers)
	return r.DAvg, r.DMax
}

// NNStretchTorusResult is NNStretchTorus returning a core.NN instead of a
// bare pair. NNStretchTorus delegates to it; internal callers should prefer
// this form.
func NNStretchTorusResult(c curve.Curve, workers int) NN {
	u := c.Universe()
	n := u.N()
	if n == 1 {
		return NN{}
	}
	partial := func(lo, hi uint64) nnAcc {
		p := u.NewPoint()
		q := u.NewPoint()
		var a nnAcc
		for idx := lo; idx < hi; idx++ {
			u.FromLinear(idx, p)
			base := c.Index(p)
			var sum, max uint64
			deg := 0
			// NeighborsTorusInto applies the simple-graph convention: on a
			// 2-cycle the +1 and −1 neighbors coincide and are counted once,
			// on a 1-cycle the cell has no neighbors.
			u.NeighborsTorusInto(p, q, func(_ int, nb grid.Point) {
				dd := absDiff(base, c.Index(nb))
				sum += dd
				if dd > max {
					max = dd
				}
				deg++
			})
			if deg == 0 {
				continue
			}
			a.avg += float64(sum) / float64(deg)
			a.max += float64(max)
		}
		return a
	}
	if curve.HasKernel(c) {
		partial = nnTorusKernelPartial(c, u)
	}
	var sumAvg, sumMax float64
	for _, a := range parallel.MapRanges(n, workers, partial) {
		sumAvg += a.avg
		sumMax += a.max
	}
	return NN{DAvg: sumAvg / float64(n), DMax: sumMax / float64(n)}
}
