package core

import (
	"repro/internal/curve"
	"repro/internal/grid"
)

// Kernelized sweep partials: when the curve advertises a batch/neighbor-key
// fast path (curve.HasKernel), the exact engines process cells in
// chunk-local blocks — one batched encode for the cells' own keys, then one
// NeighborKeys call per cell — instead of a FromLinear + 1+2d interface
// Index calls per cell. The per-cell integer aggregates (sum, max, degree)
// and the chunk-ordered floating-point accumulation are identical to the
// scalar partials, so the results are bit-for-bit the same; the conformance
// engine's kernel-sweep column enforces that permanently.

// kernelBlock is the number of cells whose coordinates and keys are staged
// per batch: big enough to amortize dispatch, small enough that the staging
// buffers (12 bytes per cell at d=3) stay in L1.
const kernelBlock = 256

// nnAcc carries one chunk's running totals of the NN sweeps.
type nnAcc struct{ avg, max float64 }

// fillBlockCoords writes the coordinates of the cells with Linear indices
// [lo, lo+cnt) into coords, row-major, by decoding the first cell and
// incrementing with carries from there (dimension 0 is least significant).
// The copy-and-carry is fused into one elementwise pass — a memmove call per
// 8-byte row would dominate the whole sweep kernel.
func fillBlockCoords(u *grid.Universe, lo uint64, cnt int, coords []uint32) {
	d := u.D()
	side := u.Side()
	u.FromLinear(lo, grid.Point(coords[:d]))
	for j := 1; j < cnt; j++ {
		prev := coords[(j-1)*d : j*d : j*d]
		row := coords[j*d : (j+1)*d : (j+1)*d]
		i := 0
		for ; i < d; i++ {
			if v := prev[i] + 1; v < side {
				row[i] = v
				i++
				break
			}
			row[i] = 0
		}
		for ; i < d; i++ {
			row[i] = prev[i]
		}
	}
}

// accumulate folds one neighbor key into a cell's (sum, max, degree)
// aggregate.
func accumulate(base, nb uint64, sum, max uint64, deg int) (uint64, uint64, int) {
	if nb == curve.InvalidKey {
		return sum, max, deg
	}
	dd := nb - base
	if base > nb {
		dd = base - nb
	}
	sum += dd
	if dd > max {
		max = dd
	}
	return sum, max, deg + 1
}

// cellAggregate reduces one cell's neighbor-key row to its integer
// (sum, max, degree) triple. The d = 2, 3 rows are unrolled: the reduction
// runs once per cell of every exact sweep, and at ~20 surviving ops per cell
// the loop bookkeeping itself is measurable.
func cellAggregate(base uint64, row []uint64) (sum, max uint64, deg int) {
	switch len(row) {
	case 4:
		sum, max, deg = accumulate(base, row[0], sum, max, deg)
		sum, max, deg = accumulate(base, row[1], sum, max, deg)
		sum, max, deg = accumulate(base, row[2], sum, max, deg)
		sum, max, deg = accumulate(base, row[3], sum, max, deg)
	case 6:
		sum, max, deg = accumulate(base, row[0], sum, max, deg)
		sum, max, deg = accumulate(base, row[1], sum, max, deg)
		sum, max, deg = accumulate(base, row[2], sum, max, deg)
		sum, max, deg = accumulate(base, row[3], sum, max, deg)
		sum, max, deg = accumulate(base, row[4], sum, max, deg)
		sum, max, deg = accumulate(base, row[5], sum, max, deg)
	default:
		for _, nb := range row {
			sum, max, deg = accumulate(base, nb, sum, max, deg)
		}
	}
	return sum, max, deg
}

// nnKernelPartial is the kernelized chunk worker behind NNStretchResult.
// It reproduces the scalar partial's arithmetic exactly: per cell the
// integer (sum, max, degree) over valid neighbors, then Kahan-compensated
// accumulation of sum/degree and max in Linear cell order.
func nnKernelPartial(c curve.Curve, u *grid.Universe) func(lo, hi uint64) nnAcc {
	d := u.D()
	return func(lo, hi uint64) nnAcc {
		b := curve.NewBatcher(c)
		nk := curve.NewNeighborKeyer(c)
		nd := 2 * d
		coords := make([]uint32, kernelBlock*d)
		bases := make([]uint64, kernelBlock)
		keys := make([]uint64, kernelBlock*nd)
		var a nnAcc
		var kahanAvgC, kahanMaxC float64
		for blo := lo; blo < hi; blo += kernelBlock {
			cnt := kernelBlock
			if rem := hi - blo; rem < kernelBlock {
				cnt = int(rem)
			}
			fillBlockCoords(u, blo, cnt, coords)
			b.IndexBatch(coords[:cnt*d], bases[:cnt])
			nk.NeighborKeysBlock(coords[:cnt*d], bases[:cnt], keys[:cnt*nd])
			for j := 0; j < cnt; j++ {
				sum, max, deg := cellAggregate(bases[j], keys[j*nd:(j+1)*nd:(j+1)*nd])
				y := float64(sum)/float64(deg) - kahanAvgC
				t := a.avg + y
				kahanAvgC = (t - a.avg) - y
				a.avg = t

				y = float64(max) - kahanMaxC
				t = a.max + y
				kahanMaxC = (t - a.max) - y
				a.max = t
			}
		}
		return a
	}
}

// nnTorusKernelPartial is the kernelized chunk worker behind
// NNStretchTorusResult; like the scalar torus partial it accumulates with
// plain (uncompensated) adds and skips degree-zero cells.
func nnTorusKernelPartial(c curve.Curve, u *grid.Universe) func(lo, hi uint64) nnAcc {
	d := u.D()
	return func(lo, hi uint64) nnAcc {
		b := curve.NewBatcher(c)
		nk := curve.NewNeighborKeyer(c)
		nd := 2 * d
		coords := make([]uint32, kernelBlock*d)
		bases := make([]uint64, kernelBlock)
		keys := make([]uint64, kernelBlock*nd)
		var a nnAcc
		for blo := lo; blo < hi; blo += kernelBlock {
			cnt := kernelBlock
			if rem := hi - blo; rem < kernelBlock {
				cnt = int(rem)
			}
			fillBlockCoords(u, blo, cnt, coords)
			b.IndexBatch(coords[:cnt*d], bases[:cnt])
			nk.NeighborKeysTorusBlock(coords[:cnt*d], bases[:cnt], keys[:cnt*nd])
			for j := 0; j < cnt; j++ {
				sum, max, deg := cellAggregate(bases[j], keys[j*nd:(j+1)*nd:(j+1)*nd])
				if deg == 0 {
					continue
				}
				a.avg += float64(sum) / float64(deg)
				a.max += float64(max)
			}
		}
		return a
	}
}

// lambdasKernelPartial is the kernelized chunk worker behind Lambdas: only
// the +1 neighbor keys contribute (the unordered pair (α, α+e_dim) is
// charged to α).
func lambdasKernelPartial(c curve.Curve, u *grid.Universe) func(lo, hi uint64) []uint64 {
	d := u.D()
	return func(lo, hi uint64) []uint64 {
		b := curve.NewBatcher(c)
		nk := curve.NewNeighborKeyer(c)
		nd := 2 * d
		coords := make([]uint32, kernelBlock*d)
		bases := make([]uint64, kernelBlock)
		keys := make([]uint64, kernelBlock*nd)
		sums := make([]uint64, d)
		for blo := lo; blo < hi; blo += kernelBlock {
			cnt := kernelBlock
			if rem := hi - blo; rem < kernelBlock {
				cnt = int(rem)
			}
			fillBlockCoords(u, blo, cnt, coords)
			b.IndexBatch(coords[:cnt*d], bases[:cnt])
			nk.NeighborKeysBlock(coords[:cnt*d], bases[:cnt], keys[:cnt*nd])
			for j := 0; j < cnt; j++ {
				base := bases[j]
				for dim := 0; dim < d; dim++ {
					if nb := keys[j*nd+2*dim+1]; nb != curve.InvalidKey {
						sums[dim] += absDiff(base, nb)
					}
				}
			}
		}
		return sums
	}
}
