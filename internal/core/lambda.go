package core

import (
	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/parallel"
)

// Lambda returns Λ_dim(π) = Σ_{(α,β) ∈ G_dim} Δπ(α, β): the total curve
// distance over the unordered nearest-neighbor pairs that differ in the
// given dimension (0-based; the paper's G_{dim+1} in §IV.B). The groups
// G_1 … G_d partition NN_d.
func Lambda(c curve.Curve, dim int, workers int) uint64 {
	u := c.Universe()
	side := u.Side()
	return parallel.SumUint64Chunked(u.N(), workers, func(lo, hi uint64) uint64 {
		p := u.NewPoint()
		q := u.NewPoint()
		var s uint64
		for idx := lo; idx < hi; idx++ {
			u.FromLinear(idx, p)
			if p[dim]+1 >= side {
				continue
			}
			copy(q, p)
			q[dim] = p[dim] + 1
			s += absDiff(c.Index(p), c.Index(q))
		}
		return s
	})
}

// Lambdas returns Λ_1 … Λ_d in a single parallel sweep.
func Lambdas(c curve.Curve, workers int) []uint64 {
	u := c.Universe()
	d := u.D()
	side := u.Side()
	partial := func(lo, hi uint64) []uint64 {
		p := u.NewPoint()
		q := u.NewPoint()
		sums := make([]uint64, d)
		for idx := lo; idx < hi; idx++ {
			u.FromLinear(idx, p)
			base := c.Index(p)
			copy(q, p)
			for dim := 0; dim < d; dim++ {
				if p[dim]+1 < side {
					q[dim] = p[dim] + 1
					sums[dim] += absDiff(base, c.Index(q))
					q[dim] = p[dim]
				}
			}
		}
		return sums
	}
	if curve.HasKernel(c) {
		partial = lambdasKernelPartial(c, u)
	}
	total := make([]uint64, d)
	for _, part := range parallel.MapRanges(u.N(), workers, partial) {
		for i, v := range part {
			total[i] += v
		}
	}
	return total
}

// SumNN returns Σ_{(α,β) ∈ NN_d} Δπ(α, β) — the total curve distance over
// all unordered nearest-neighbor pairs, i.e. Σ_i Λ_i(π).
func SumNN(c curve.Curve, workers int) uint64 {
	var total uint64
	for _, v := range Lambdas(c, workers) {
		total += v
	}
	return total
}

// Lemma3Bounds returns the lower and upper bounds on Davg(π) implied by
// Lemma 3 of the paper:
//
//	(1/(n·d)) Σ_{NN_d} Δπ  ≤  Davg(π)  ≤  (2/(n·d)) Σ_{NN_d} Δπ.
func Lemma3Bounds(c curve.Curve, workers int) (lo, hi float64) {
	u := c.Universe()
	s := float64(SumNN(c, workers))
	nd := float64(u.N()) * float64(u.D())
	return s / nd, 2 * s / nd
}

// BoundaryDecomposition reports the Theorem 2 split of the Davg sum into
// the interior contribution h1 and the boundary contribution h2:
//
//	Davg(π) = (1/n)(h1 + h2)
//
// where h1 = (1/d) Σ_{NN_d} Δπ and h2 collects the excess weight
// (1/|N(α)| + 1/|N(β)| − 1/d) of pairs with at least one boundary endpoint
// (the paper's set H2). The proof of Theorem 2 shows h2/n^(2−1/d) → 0 for
// the Z curve; the harness verifies this numerically.
func BoundaryDecomposition(c curve.Curve, workers int) (h1, h2 float64) {
	u := c.Universe()
	n := u.N()
	d := float64(u.D())
	side := u.Side()
	type acc struct{ h1, h2 float64 }
	partial := func(lo, hi uint64) acc {
		p := u.NewPoint()
		q := u.NewPoint()
		var a acc
		for idx := lo; idx < hi; idx++ {
			u.FromLinear(idx, p)
			base := c.Index(p)
			degP := u.Degree(p)
			copy(q, p)
			for dim := 0; dim < u.D(); dim++ {
				if p[dim]+1 >= side {
					continue
				}
				q[dim] = p[dim] + 1
				dd := float64(absDiff(base, c.Index(q)))
				degQ := u.Degree(q)
				a.h1 += dd / d
				if degP < 2*u.D() || degQ < 2*u.D() {
					a.h2 += dd * (1/float64(degP) + 1/float64(degQ) - 1/d)
				}
				q[dim] = p[dim]
			}
		}
		return a
	}
	for _, a := range parallel.MapRanges(n, workers, partial) {
		h1 += a.h1
		h2 += a.h2
	}
	return h1, h2
}

// CheckTriangle verifies Lemma 1 (the generalized triangle inequality for
// Δπ) on an explicit vertex path: Δπ(v_0, v_m) ≤ Σ Δπ(v_i, v_{i+1}).
// It returns true when the inequality holds. (It always does — the lemma is
// a property of |·| on the integers — but the property tests exercise it on
// random curves and random paths as the paper's proofs rely on it.)
func CheckTriangle(c curve.Curve, path []grid.Point) bool {
	if len(path) < 2 {
		return true
	}
	var total uint64
	for i := 1; i < len(path); i++ {
		total += curve.Dist(c, path[i-1], path[i])
	}
	return curve.Dist(c, path[0], path[len(path)-1]) <= total
}
