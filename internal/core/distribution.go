package core

import (
	"fmt"
	"sort"

	"repro/internal/curve"
	"repro/internal/parallel"
)

// MaxDistributionN bounds the universe size for exact per-cell δavg
// distributions (8 bytes per cell are materialized).
const MaxDistributionN = 1 << 24

// Distribution summarizes the per-cell δavg values of a curve. Davg is the
// mean of this distribution; the quantiles expose *how* a curve achieves
// its average — e.g. the simple curve concentrates all cells near the mean
// while the Z curve mixes many cheap cells with a heavy tail of expensive
// boundary-crossing cells.
type Distribution struct {
	Mean float64
	P50  float64
	P90  float64
	P99  float64
	Max  float64
}

// DeltaAvgDistribution computes the exact distribution of δavg over all
// cells, in parallel.
func DeltaAvgDistribution(c curve.Curve, workers int) (Distribution, error) {
	u := c.Universe()
	n := u.N()
	if n > MaxDistributionN {
		return Distribution{}, fmt.Errorf("core: distribution over n=%d exceeds limit %d", n, MaxDistributionN)
	}
	if n < 2 {
		return Distribution{}, fmt.Errorf("core: distribution undefined for n=%d", n)
	}
	values := make([]float64, n)
	parallel.ForChunked(n, workers, func(lo, hi uint64) {
		p := u.NewPoint()
		q := u.NewPoint()
		for lin := lo; lin < hi; lin++ {
			u.FromLinear(lin, p)
			sum, _, deg := deltaAt(c, p, q)
			if deg > 0 {
				values[lin] = float64(sum) / float64(deg)
			}
		}
	})
	sort.Float64s(values)
	var sum, comp float64
	for _, v := range values {
		y := v - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	q := func(p float64) float64 {
		i := int(p * float64(n-1))
		return values[i]
	}
	return Distribution{
		Mean: sum / float64(n),
		P50:  q(0.50),
		P90:  q(0.90),
		P99:  q(0.99),
		Max:  values[n-1],
	}, nil
}
