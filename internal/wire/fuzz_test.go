package wire

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/query"
	"repro/internal/store"
)

// fuzzSrc deterministically consumes fuzz input bytes as integers, so the
// fuzzer's byte mutations translate into structured protocol values.
type fuzzSrc struct {
	b []byte
	i int
}

func (s *fuzzSrc) byte_() byte {
	if s.i >= len(s.b) {
		return 0
	}
	v := s.b[s.i]
	s.i++
	return v
}

func (s *fuzzSrc) u32() uint32 {
	return uint32(s.byte_()) | uint32(s.byte_())<<8 | uint32(s.byte_())<<16 | uint32(s.byte_())<<24
}

func (s *fuzzSrc) u64() uint64 {
	return uint64(s.u32()) | uint64(s.u32())<<32
}

// FuzzWireRoundTrip is the differential fuzz over the whole codec: it derives
// structured payloads (records, intervals, trailers, error frames) from the
// fuzz input, asserts encode→decode is the identity through both DecodeFrame
// and ReadFrame, asserts truncation at every byte offset is ErrTruncated, and
// finally feeds the raw input to the decoders to prove they never panic or
// over-consume on arbitrary bytes.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x46, 0x53, 1, TPing})
	f.Add(bytes.Repeat([]byte{0xa5}, 64))
	f.Add(AppendFrame(nil, Frame{Type: TPing, ID: 42}))

	f.Fuzz(func(t *testing.T, in []byte) {
		s := &fuzzSrc{b: in}

		// --- Structured round trips derived from the input ---
		d := 1 + int(s.byte_())%MaxDims
		q := QueryRequest{
			Lo:      make(grid.Point, d),
			Hi:      make(grid.Point, d),
			Timeout: time.Duration(s.u64() % uint64(time.Hour)),
		}
		for i := 0; i < d; i++ {
			q.Lo[i], q.Hi[i] = s.u32(), s.u32()
		}
		qb, err := AppendQueryRequest(nil, q)
		if err != nil {
			t.Fatalf("query encode: %v", err)
		}
		qBack, err := DecodeQueryRequest(qb)
		if err != nil || !qBack.Lo.Equal(q.Lo) || !qBack.Hi.Equal(q.Hi) || qBack.Timeout != q.Timeout {
			t.Fatalf("query round trip: %+v vs %+v (%v)", qBack, q, err)
		}

		nIv := 1 + int(s.byte_())%8
		ivs := make([]query.Interval, nIv)
		for i := range ivs {
			ivs[i] = query.Interval{Lo: s.u64(), Hi: s.u64()}
		}
		sb, err := AppendScanRequest(nil, ScanRequest{Ivs: ivs, Timeout: time.Duration(s.u32())})
		if err != nil {
			t.Fatalf("scan encode: %v", err)
		}
		sBack, err := DecodeScanRequest(sb)
		if err != nil || len(sBack.Ivs) != nIv {
			t.Fatalf("scan round trip: %+v (%v)", sBack, err)
		}
		for i := range ivs {
			if sBack.Ivs[i] != ivs[i] {
				t.Fatalf("scan interval %d: %+v vs %+v", i, sBack.Ivs[i], ivs[i])
			}
		}

		nRec := 1 + int(s.byte_())%16
		recs := make([]store.Record, nRec)
		for i := range recs {
			p := make(grid.Point, d)
			for j := range p {
				p[j] = s.u32()
			}
			recs[i] = store.Record{Point: p, Payload: s.u64()}
		}
		bb, err := AppendBatchPayload(nil, recs)
		if err != nil {
			t.Fatalf("batch encode: %v", err)
		}
		rBack, err := DecodeBatchPayload(bb)
		if err != nil || len(rBack) != nRec {
			t.Fatalf("batch round trip: %d records (%v)", len(rBack), err)
		}
		for i := range recs {
			if !rBack[i].Point.Equal(recs[i].Point) || rBack[i].Payload != recs[i].Payload {
				t.Fatalf("batch record %d: %+v vs %+v", i, rBack[i], recs[i])
			}
		}

		tr := Trailer{
			ShardsQueried: int(s.byte_()),
			PagesRead:     int64(s.u32()),
			ElapsedUS:     int64(s.u32()),
		}
		if nDark := int(s.byte_()) % 4; nDark > 0 {
			tr.Unavailable = make([]query.Interval, nDark)
			for i := range tr.Unavailable {
				tr.Unavailable[i] = query.Interval{Lo: s.u64(), Hi: s.u64()}
			}
		}
		tb, err := AppendTrailerPayload(nil, tr)
		if err != nil {
			t.Fatalf("trailer encode: %v", err)
		}
		tBack, err := DecodeTrailerPayload(tb)
		if err != nil || tBack.ShardsQueried != tr.ShardsQueried ||
			tBack.PagesRead != tr.PagesRead || tBack.ElapsedUS != tr.ElapsedUS ||
			len(tBack.Unavailable) != len(tr.Unavailable) {
			t.Fatalf("trailer round trip: %+v vs %+v (%v)", tBack, tr, err)
		}
		for i := range tr.Unavailable {
			if tBack.Unavailable[i] != tr.Unavailable[i] {
				t.Fatalf("trailer interval %d: %+v vs %+v", i, tBack.Unavailable[i], tr.Unavailable[i])
			}
		}

		codes := []uint8{CodeBadRequest, CodeOverloaded, CodeUnavailable, CodeDeadline, CodeInternal}
		ef := ErrorFrame{
			Code:          codes[int(s.byte_())%len(codes)],
			RetryAfterSec: int64(s.byte_()%5) - 1,
			Msg:           string(in[:min(len(in), 32)]),
		}
		eb, err := AppendErrorPayload(nil, ef)
		if err != nil {
			t.Fatalf("error encode: %v", err)
		}
		eBack, err := DecodeErrorPayload(eb)
		if err != nil || eBack != ef {
			t.Fatalf("error round trip: %+v vs %+v (%v)", eBack, ef, err)
		}

		// --- Frame round trip + torn truncation at every offset ---
		fr := Frame{Type: TScan, ID: s.u64(), Payload: sb}
		full := AppendFrame(nil, fr)
		got, n, err := DecodeFrame(full)
		if err != nil || n != len(full) ||
			got.Type != fr.Type || got.ID != fr.ID || !bytes.Equal(got.Payload, fr.Payload) {
			t.Fatalf("frame round trip: %+v, %d, %v", got, n, err)
		}
		rGot, err := ReadFrame(bytes.NewReader(full))
		if err != nil || rGot.Type != fr.Type || rGot.ID != fr.ID || !bytes.Equal(rGot.Payload, fr.Payload) {
			t.Fatalf("frame read round trip: %+v, %v", rGot, err)
		}
		for cut := 1; cut < len(full); cut++ {
			if _, _, err := DecodeFrame(full[:cut]); !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut %d/%d: decode %v, want ErrTruncated", cut, len(full), err)
			}
			if _, err := ReadFrame(bytes.NewReader(full[:cut])); !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut %d/%d: read %v, want ErrTruncated", cut, len(full), err)
			}
		}

		// --- Arbitrary bytes must never panic or over-consume ---
		if fr, n, err := DecodeFrame(in); err == nil && len(in) > 0 {
			if n <= 0 || n > len(in) || !validType(fr.Type) {
				t.Fatalf("arbitrary decode consumed %d of %d, type 0x%02x", n, len(in), fr.Type)
			}
		}
		_, _ = ReadFrame(bytes.NewReader(in))
		_, _ = DecodeQueryRequest(in)
		_, _ = DecodeScanRequest(in)
		_, _ = DecodeBatchPayload(in)
		_, _ = DecodeTrailerPayload(in)
		_, _ = DecodeErrorPayload(in)
		_, _ = DecodePongPayload(in)
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
