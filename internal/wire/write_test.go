package wire

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/grid"
)

// TestWriteRequestRoundTrip: the TPut/TDelete codec is an exact inverse
// pair, flags byte included.
func TestWriteRequestRoundTrip(t *testing.T) {
	cases := []WriteRequest{
		{Point: grid.Point{1}, Payload: 0, Timeout: 0},
		{Point: grid.Point{3, ^uint32(0)}, Payload: ^uint64(0), Timeout: time.Second},
		{Point: grid.Point{7, 8, 9}, Payload: 5, Timeout: 250 * time.Millisecond, Compress: true},
	}
	for i, w := range cases {
		b := mustAppend(t)(AppendWriteRequest(nil, w))
		got, err := DecodeWriteRequest(b)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !got.Point.Equal(w.Point) || got.Payload != w.Payload ||
			got.Timeout != w.Timeout || got.Compress != w.Compress {
			t.Fatalf("case %d: got %+v want %+v", i, got, w)
		}
		// Flagless requests keep the exact base encoding; the flags byte
		// appears only when set.
		wantLen := 17 + 4*len(w.Point)
		if w.Compress {
			wantLen++
		}
		if len(b) != wantLen {
			t.Fatalf("case %d: %d bytes, want %d", i, len(b), wantLen)
		}
	}
}

// TestWriteRequestRejects: structural validation on both ends.
func TestWriteRequestRejects(t *testing.T) {
	if _, err := AppendWriteRequest(nil, WriteRequest{}); err == nil {
		t.Fatal("0-dim point accepted")
	}
	if _, err := AppendWriteRequest(nil, WriteRequest{Point: make(grid.Point, MaxDims+1)}); err == nil {
		t.Fatal("oversized point accepted")
	}
	if _, err := AppendWriteRequest(nil, WriteRequest{Point: grid.Point{1}, Timeout: -time.Second}); err == nil {
		t.Fatal("negative timeout accepted")
	}
	valid := mustAppend(t)(AppendWriteRequest(nil, WriteRequest{Point: grid.Point{1, 2}}))
	for _, cut := range []int{0, 1, 16, len(valid) - 1} {
		if _, err := DecodeWriteRequest(valid[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut %d: %v, want ErrCorrupt", cut, err)
		}
	}
	// Unknown request flag bits are hard-rejected, never ignored — the
	// same contract the read requests enforce.
	for flags := 2; flags < 256; flags <<= 1 {
		mut := append(append([]byte(nil), valid...), byte(flags))
		if _, err := DecodeWriteRequest(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("unknown flags 0x%02x accepted: %v", flags, err)
		}
	}
}

// TestFlushRequestRoundTrip: TFlush codec inverse pair + flag rejection.
func TestFlushRequestRoundTrip(t *testing.T) {
	for _, f := range []FlushRequest{{}, {Timeout: 3 * time.Second}, {Timeout: time.Second, Compress: true}} {
		b := mustAppend(t)(AppendFlushRequest(nil, f))
		got, err := DecodeFlushRequest(b)
		if err != nil || got != f {
			t.Fatalf("flush %+v: got %+v, %v", f, got, err)
		}
	}
	if _, err := DecodeFlushRequest(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatal("empty flush accepted")
	}
	if _, err := DecodeFlushRequest([]byte{0, 0, 0, 0, 0, 0, 0, 0, 2}); !errors.Is(err, ErrCorrupt) {
		t.Fatal("unknown flush flags accepted")
	}
}

// TestWriteAckRoundTrip: TWriteAck codec inverse pair, with and without a
// replica outcome list.
func TestWriteAckRoundTrip(t *testing.T) {
	cases := []WriteAck{
		{Acked: 1, Required: 1, ElapsedUS: 12},
		{Acked: 2, Required: 2, ElapsedUS: 9000, Replicas: []ReplicaOutcome{
			{Node: 0, Code: 0},
			{Node: 1, Code: CodeDeadline},
			{Node: 7, Code: CodeReadOnly},
		}},
	}
	for i, a := range cases {
		b := mustAppend(t)(AppendWriteAckPayload(nil, a))
		got, err := DecodeWriteAckPayload(b)
		if err != nil || !reflect.DeepEqual(got, a) {
			t.Fatalf("case %d: got %+v, %v; want %+v", i, got, err, a)
		}
	}
	if _, err := AppendWriteAckPayload(nil, WriteAck{Acked: -1}); err == nil {
		t.Fatal("negative acked accepted")
	}
	if _, err := AppendWriteAckPayload(nil, WriteAck{Replicas: []ReplicaOutcome{{Code: 0x99}}}); err == nil {
		t.Fatal("unknown outcome code accepted on encode")
	}
	bad := mustAppend(t)(AppendWriteAckPayload(nil, cases[1]))
	bad[len(bad)-1] = 0x99
	if _, err := DecodeWriteAckPayload(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatal("unknown outcome code accepted on decode")
	}
}

// TestWriteFramesCorruptionRejected: every single-bit flip of an encoded
// write-path frame is detected — the same every-bit coverage the read
// frames have, applied to each new type.
func TestWriteFramesCorruptionRejected(t *testing.T) {
	for _, f := range sampleFrames(t) {
		switch f.Type {
		case TPut, TDelete, TFlush, TWriteAck:
		default:
			continue
		}
		full := AppendFrame(nil, f)
		for i := 0; i < len(full); i++ {
			for bit := 0; bit < 8; bit++ {
				mut := append([]byte(nil), full...)
				mut[i] ^= 1 << bit
				if got, _, err := DecodeFrame(mut); err == nil {
					t.Fatalf("type 0x%02x bit flip %d.%d accepted: %+v", f.Type, i, bit, got)
				}
			}
		}
	}
}
