package wire

import (
	"fmt"
	"time"

	"repro/internal/grid"
)

// MaxWriteReplicas bounds the per-replica outcome list one TWriteAck may
// carry — far above any plausible replication factor, tight enough that a
// corrupt count cannot make the decoder allocate unboundedly.
const MaxWriteReplicas = 1 << 10

// WriteRequest is the TPut/TDelete payload: one record plus the
// server-side deadline. TDelete shares the shape — deletion removes every
// stored instance equal to the record (same point, same payload), and one
// codec keeps the torn-frame/corruption test surface identical for both
// types. The flags byte follows the read-request convention: appended only
// when some flag is set, accepted at either length, unknown bits
// hard-rejected.
//
//	timeout u64 (ns) | payload u64 | d u8 | d×u32 coords | [flags u8]
type WriteRequest struct {
	Point   grid.Point
	Payload uint64
	Timeout time.Duration // server-side deadline; 0 = server default
	// Compress asks the server to deflate large response frames
	// (FlagCompress). Write acks are tiny, so this is accepted for
	// symmetry with reads rather than for any expected benefit.
	Compress bool
}

// AppendWriteRequest appends w's payload encoding to dst.
func AppendWriteRequest(dst []byte, w WriteRequest) ([]byte, error) {
	d := len(w.Point)
	if d < 1 || d > MaxDims {
		return nil, fmt.Errorf("wire: write point %d dims outside [1, %d]", d, MaxDims)
	}
	if w.Timeout < 0 {
		return nil, fmt.Errorf("wire: negative timeout %v", w.Timeout)
	}
	dst = appendU64(dst, uint64(w.Timeout))
	dst = appendU64(dst, w.Payload)
	dst = append(dst, byte(d))
	for _, c := range w.Point {
		dst = appendU32(dst, c)
	}
	if w.Compress {
		dst = append(dst, FlagCompress)
	}
	return dst, nil
}

// DecodeWriteRequest parses a TPut/TDelete payload.
func DecodeWriteRequest(b []byte) (WriteRequest, error) {
	if len(b) < 17 {
		return WriteRequest{}, fmt.Errorf("%w: write request %d bytes", ErrCorrupt, len(b))
	}
	timeout := time.Duration(readU64(b))
	if timeout < 0 {
		return WriteRequest{}, fmt.Errorf("%w: timeout overflows", ErrCorrupt)
	}
	d := int(b[16])
	if d < 1 || d > MaxDims {
		return WriteRequest{}, fmt.Errorf("%w: write request %d dims outside [1, %d]", ErrCorrupt, d, MaxDims)
	}
	base := 17 + 4*d
	if len(b) != base && len(b) != base+1 {
		return WriteRequest{}, fmt.Errorf("%w: write request %d bytes for %d dims", ErrCorrupt, len(b), d)
	}
	w := WriteRequest{
		Point:   make(grid.Point, d),
		Payload: readU64(b[8:]),
		Timeout: timeout,
	}
	if len(b) == base+1 {
		flags := b[base]
		if flags&^FlagCompress != 0 {
			return WriteRequest{}, fmt.Errorf("%w: unknown request flags 0x%02x", ErrCorrupt, flags)
		}
		w.Compress = flags&FlagCompress != 0
	}
	for i := 0; i < d; i++ {
		w.Point[i] = readU32(b[17+4*i:])
	}
	return w, nil
}

// FlushRequest is the TFlush payload: persist all buffered writes. Same
// flags convention as every other request.
//
//	timeout u64 (ns) | [flags u8]
type FlushRequest struct {
	Timeout  time.Duration
	Compress bool
}

// AppendFlushRequest appends f's payload encoding to dst.
func AppendFlushRequest(dst []byte, f FlushRequest) ([]byte, error) {
	if f.Timeout < 0 {
		return nil, fmt.Errorf("wire: negative timeout %v", f.Timeout)
	}
	dst = appendU64(dst, uint64(f.Timeout))
	if f.Compress {
		dst = append(dst, FlagCompress)
	}
	return dst, nil
}

// DecodeFlushRequest parses a TFlush payload.
func DecodeFlushRequest(b []byte) (FlushRequest, error) {
	if len(b) != 8 && len(b) != 9 {
		return FlushRequest{}, fmt.Errorf("%w: flush request %d bytes", ErrCorrupt, len(b))
	}
	f := FlushRequest{Timeout: time.Duration(readU64(b))}
	if f.Timeout < 0 {
		return FlushRequest{}, fmt.Errorf("%w: timeout overflows", ErrCorrupt)
	}
	if len(b) == 9 {
		flags := b[8]
		if flags&^FlagCompress != 0 {
			return FlushRequest{}, fmt.Errorf("%w: unknown request flags 0x%02x", ErrCorrupt, flags)
		}
		f.Compress = flags&FlagCompress != 0
	}
	return f, nil
}

// ReplicaOutcome is one replica's result inside a WriteAck: the node index
// and the typed error code its attempt ended with (0 = applied).
type ReplicaOutcome struct {
	Node uint32
	// Code is 0 when the replica applied the write, otherwise one of the
	// Code* error constants describing why it did not.
	Code uint8
}

// WriteAck is the TWriteAck payload: the terminal answer to a write
// request. A standalone daemon answers Acked=1, Required=1 with an empty
// replica list — the list enumerates per-replica outcomes only when a
// router fanned the write out, so the single-node encoding stays minimal.
//
//	acked u16 | required u16 | elapsed_us u64 | count u16 | count × (node u32, code u8)
type WriteAck struct {
	// Acked counts replicas that durably applied the write.
	Acked int
	// Required is the quorum W the answering endpoint was configured to
	// wait for; Acked >= Required on success paths.
	Required int
	// ElapsedUS is the server-side service time in microseconds.
	ElapsedUS int64
	// Replicas lists per-replica outcomes (router answers only; empty
	// means the answering daemon itself applied the write).
	Replicas []ReplicaOutcome
}

// AppendWriteAckPayload appends a's encoding to dst.
func AppendWriteAckPayload(dst []byte, a WriteAck) ([]byte, error) {
	if a.Acked < 0 || a.Acked > 0xffff || a.Required < 0 || a.Required > 0xffff {
		return nil, fmt.Errorf("wire: write ack counts %d/%d outside u16", a.Acked, a.Required)
	}
	if a.ElapsedUS < 0 {
		return nil, fmt.Errorf("wire: negative write ack elapsed")
	}
	if len(a.Replicas) > MaxWriteReplicas {
		return nil, fmt.Errorf("wire: write ack with %d replicas exceeds %d", len(a.Replicas), MaxWriteReplicas)
	}
	for _, r := range a.Replicas {
		switch r.Code {
		case 0, CodeBadRequest, CodeOverloaded, CodeUnavailable, CodeDeadline, CodeInternal, CodeReadOnly:
		default:
			return nil, fmt.Errorf("wire: unknown replica outcome code 0x%02x", r.Code)
		}
	}
	dst = appendU16(dst, uint16(a.Acked))
	dst = appendU16(dst, uint16(a.Required))
	dst = appendU64(dst, uint64(a.ElapsedUS))
	dst = appendU16(dst, uint16(len(a.Replicas)))
	for _, r := range a.Replicas {
		dst = appendU32(dst, r.Node)
		dst = append(dst, r.Code)
	}
	return dst, nil
}

// DecodeWriteAckPayload parses a TWriteAck payload.
func DecodeWriteAckPayload(b []byte) (WriteAck, error) {
	if len(b) < 14 {
		return WriteAck{}, fmt.Errorf("%w: write ack %d bytes", ErrCorrupt, len(b))
	}
	a := WriteAck{
		Acked:     int(readU16(b)),
		Required:  int(readU16(b[2:])),
		ElapsedUS: int64(readU64(b[4:])),
	}
	if a.ElapsedUS < 0 {
		return WriteAck{}, fmt.Errorf("%w: write ack elapsed overflows", ErrCorrupt)
	}
	n := int(readU16(b[12:]))
	if n > MaxWriteReplicas {
		return WriteAck{}, fmt.Errorf("%w: write ack with %d replicas exceeds %d", ErrCorrupt, n, MaxWriteReplicas)
	}
	if len(b) != 14+5*n {
		return WriteAck{}, fmt.Errorf("%w: write ack %d bytes for %d replicas", ErrCorrupt, len(b), n)
	}
	if n > 0 {
		a.Replicas = make([]ReplicaOutcome, n)
		for i := range a.Replicas {
			a.Replicas[i] = ReplicaOutcome{Node: readU32(b[14+5*i:]), Code: b[18+5*i]}
			switch a.Replicas[i].Code {
			case 0, CodeBadRequest, CodeOverloaded, CodeUnavailable, CodeDeadline, CodeInternal, CodeReadOnly:
			default:
				return WriteAck{}, fmt.Errorf("%w: unknown replica outcome code 0x%02x", ErrCorrupt, a.Replicas[i].Code)
			}
		}
	}
	return a, nil
}
