package wire

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// CompressedBit is the high bit of the frame-type byte: set, the payload is
// a deflate stream prefixed with the raw length. The bit rides inside the
// existing header layout — a version-1 reader that does not speak
// compression rejects the type byte as unknown, which is why compression is
// strictly negotiated: a server compresses only after the client asked for
// it (FlagCompress in its request), and a client asks only after /wireinfo
// advertised Compress. The CRC covers the compressed bytes, so corruption
// is caught before any inflation happens.
const CompressedBit = 0x80

// FlagCompress is the request-flags bit a client sets to accept compressed
// response frames for that request.
const FlagCompress = 0x01

// MinCompressSize is the smallest payload worth deflating: below this the
// per-frame flate overhead eats the savings. Senders also fall back to the
// plain encoding whenever deflate fails to shrink the payload, so a
// compressed frame is never larger than its plain form.
const MinCompressSize = 4 << 10

// flateWriters pools deflate compressors — flate.NewWriter allocates ~600KiB
// of window state, far too much to pay per frame.
var flateWriters = sync.Pool{
	New: func() any {
		w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
		return w
	},
}

// flateReaders pools inflate state; flate.Reader supports Reset.
var flateReaders = sync.Pool{
	New: func() any { return flate.NewReader(bytes.NewReader(nil)).(flate.Resetter) },
}

// AppendCompressedFrame appends f's encoding with a deflated payload when
// that wins, falling back to the plain encoding for small or incompressible
// payloads. The compressed payload is `raw_len u32 | deflate stream`, and
// the frame's checksum covers those bytes, not the raw ones.
func AppendCompressedFrame(dst []byte, f Frame) ([]byte, error) {
	if len(f.Payload) < MinCompressSize {
		return AppendFrame(dst, f), nil
	}
	start := len(dst)
	dst = BeginFrame(dst, f.Type|CompressedBit, f.ID)
	dst = appendU32(dst, uint32(len(f.Payload)))
	var sink sliceWriter
	sink.buf = dst
	fw := flateWriters.Get().(*flate.Writer)
	fw.Reset(&sink)
	if _, err := fw.Write(f.Payload); err != nil {
		flateWriters.Put(fw)
		return nil, fmt.Errorf("wire: deflate: %w", err)
	}
	if err := fw.Close(); err != nil {
		flateWriters.Put(fw)
		return nil, fmt.Errorf("wire: deflate: %w", err)
	}
	flateWriters.Put(fw)
	dst = sink.buf
	if len(dst)-start-HeaderSize >= len(f.Payload) {
		// Incompressible: ship it plain.
		return AppendFrame(dst[:start], f), nil
	}
	return FinishFrame(dst, start), nil
}

// sliceWriter adapts an append-grown byte slice to io.Writer for the pooled
// flate writer.
type sliceWriter struct{ buf []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// inflatePayload decodes a compressed frame payload (raw length prefix plus
// deflate stream) into a fresh buffer. It runs after the checksum has
// verified the compressed bytes, so a failure here means a peer bug, not
// line noise — still ErrCorrupt, still connection-terminal.
func inflatePayload(b []byte) ([]byte, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: compressed payload %d bytes", ErrCorrupt, len(b))
	}
	rawLen := readU32(b)
	if rawLen > MaxFramePayload {
		return nil, fmt.Errorf("%w: compressed frame inflates to %d bytes, exceeding %d", ErrCorrupt, rawLen, MaxFramePayload)
	}
	fr := flateReaders.Get().(flate.Resetter)
	defer flateReaders.Put(fr)
	if err := fr.Reset(bytes.NewReader(b[4:]), nil); err != nil {
		return nil, fmt.Errorf("%w: inflate: %v", ErrCorrupt, err)
	}
	out := make([]byte, rawLen)
	r := fr.(io.Reader)
	if _, err := io.ReadFull(r, out); err != nil {
		return nil, fmt.Errorf("%w: inflate: %v", ErrCorrupt, err)
	}
	// The stream must end exactly at the declared length.
	var one [1]byte
	if n, _ := r.Read(one[:]); n != 0 {
		return nil, fmt.Errorf("%w: compressed frame longer than its declared %d bytes", ErrCorrupt, rawLen)
	}
	return out, nil
}
