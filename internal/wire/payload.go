package wire

import (
	"encoding/binary"
	"fmt"
	"slices"
	"time"

	"repro/internal/grid"
	"repro/internal/query"
	"repro/internal/store"
)

// Protocol limits, enforced on decode so a malformed peer cannot make an
// endpoint allocate unboundedly.
const (
	// MaxDims bounds point dimensionality on the wire; the grid universe
	// caps d·k at 64 bits, so 64 dimensions is already unreachable.
	MaxDims = 64
	// MaxScanIntervals bounds the interval count one scan request may
	// carry — the same bound the HTTP /scan endpoint enforces.
	MaxScanIntervals = 1 << 14
	// MaxBatchRecords bounds one TBatch frame's record count.
	MaxBatchRecords = 1 << 20
	// DefaultBatchRecords is the chunk size servers stream results in:
	// with d=2 one batch is ~64 KiB, big enough to amortize the frame and
	// syscall, small enough that the first records reach the client while
	// the scan is still running through later intervals.
	DefaultBatchRecords = 4096
)

// QueryRequest is the TQuery payload: a box query plus the server-side
// deadline. The flags byte is appended only when some flag is set, so
// flagless requests keep the exact version-1 encoding; servers accept both
// lengths and reject unknown flag bits.
//
//	timeout u64 (ns) | d u8 | d×u32 lo | d×u32 hi | [flags u8]
type QueryRequest struct {
	Lo, Hi  grid.Point
	Timeout time.Duration // server-side deadline; 0 = server default
	// Compress asks the server to deflate large response frames
	// (FlagCompress). Set it only against a server whose /wireinfo
	// advertised compression — an older server rejects the flags byte.
	Compress bool
}

// AppendQueryRequest appends q's payload encoding to dst.
func AppendQueryRequest(dst []byte, q QueryRequest) ([]byte, error) {
	d := len(q.Lo)
	if d < 1 || d > MaxDims || len(q.Hi) != d {
		return nil, fmt.Errorf("wire: query corners %d/%d dims outside [1, %d] or mismatched", len(q.Lo), len(q.Hi), MaxDims)
	}
	if q.Timeout < 0 {
		return nil, fmt.Errorf("wire: negative timeout %v", q.Timeout)
	}
	dst = appendU64(dst, uint64(q.Timeout))
	dst = append(dst, byte(d))
	for _, c := range q.Lo {
		dst = appendU32(dst, c)
	}
	for _, c := range q.Hi {
		dst = appendU32(dst, c)
	}
	if q.Compress {
		dst = append(dst, FlagCompress)
	}
	return dst, nil
}

// DecodeQueryRequest parses a TQuery payload.
func DecodeQueryRequest(b []byte) (QueryRequest, error) {
	if len(b) < 9 {
		return QueryRequest{}, fmt.Errorf("%w: query request %d bytes", ErrCorrupt, len(b))
	}
	timeout := readU64(b)
	d := int(b[8])
	if d < 1 || d > MaxDims {
		return QueryRequest{}, fmt.Errorf("%w: query request %d dims outside [1, %d]", ErrCorrupt, d, MaxDims)
	}
	base := 9 + 8*d
	if len(b) != base && len(b) != base+1 {
		return QueryRequest{}, fmt.Errorf("%w: query request %d bytes for %d dims", ErrCorrupt, len(b), d)
	}
	q := QueryRequest{
		Lo:      make(grid.Point, d),
		Hi:      make(grid.Point, d),
		Timeout: time.Duration(timeout),
	}
	if q.Timeout < 0 {
		return QueryRequest{}, fmt.Errorf("%w: timeout overflows", ErrCorrupt)
	}
	if len(b) == base+1 {
		flags := b[base]
		if flags&^FlagCompress != 0 {
			return QueryRequest{}, fmt.Errorf("%w: unknown request flags 0x%02x", ErrCorrupt, flags)
		}
		q.Compress = flags&FlagCompress != 0
	}
	for i := 0; i < d; i++ {
		q.Lo[i] = readU32(b[9+4*i:])
	}
	for i := 0; i < d; i++ {
		q.Hi[i] = readU32(b[9+4*d+4*i:])
	}
	return q, nil
}

// ScanRequest is the TScan payload: raw curve intervals plus the
// server-side deadline. Semantic validation (sorted, disjoint, in-range)
// belongs to the service; the codec enforces only structure. The flags byte
// follows the same convention as QueryRequest's: appended only when set,
// accepted at either length, unknown bits rejected.
//
//	timeout u64 (ns) | count u32 | count × (lo u64, hi u64) | [flags u8]
type ScanRequest struct {
	Ivs     []query.Interval
	Timeout time.Duration
	// Compress asks the server to deflate large response frames
	// (FlagCompress); negotiate via /wireinfo first.
	Compress bool
}

// AppendScanRequest appends s's payload encoding to dst.
func AppendScanRequest(dst []byte, s ScanRequest) ([]byte, error) {
	if len(s.Ivs) == 0 || len(s.Ivs) > MaxScanIntervals {
		return nil, fmt.Errorf("wire: %d scan intervals outside [1, %d]", len(s.Ivs), MaxScanIntervals)
	}
	if s.Timeout < 0 {
		return nil, fmt.Errorf("wire: negative timeout %v", s.Timeout)
	}
	dst = appendU64(dst, uint64(s.Timeout))
	dst = appendU32(dst, uint32(len(s.Ivs)))
	for _, iv := range s.Ivs {
		dst = appendU64(dst, iv.Lo)
		dst = appendU64(dst, iv.Hi)
	}
	if s.Compress {
		dst = append(dst, FlagCompress)
	}
	return dst, nil
}

// DecodeScanRequest parses a TScan payload.
func DecodeScanRequest(b []byte) (ScanRequest, error) {
	if len(b) < 12 {
		return ScanRequest{}, fmt.Errorf("%w: scan request %d bytes", ErrCorrupt, len(b))
	}
	timeout := time.Duration(readU64(b))
	if timeout < 0 {
		return ScanRequest{}, fmt.Errorf("%w: timeout overflows", ErrCorrupt)
	}
	n := int(readU32(b[8:]))
	if n < 1 || n > MaxScanIntervals {
		return ScanRequest{}, fmt.Errorf("%w: %d scan intervals outside [1, %d]", ErrCorrupt, n, MaxScanIntervals)
	}
	base := 12 + 16*n
	if len(b) != base && len(b) != base+1 {
		return ScanRequest{}, fmt.Errorf("%w: scan request %d bytes for %d intervals", ErrCorrupt, len(b), n)
	}
	s := ScanRequest{Ivs: make([]query.Interval, n), Timeout: timeout}
	if len(b) == base+1 {
		flags := b[base]
		if flags&^FlagCompress != 0 {
			return ScanRequest{}, fmt.Errorf("%w: unknown request flags 0x%02x", ErrCorrupt, flags)
		}
		s.Compress = flags&FlagCompress != 0
	}
	for i := range s.Ivs {
		s.Ivs[i] = query.Interval{Lo: readU64(b[12+16*i:]), Hi: readU64(b[20+16*i:])}
	}
	return s, nil
}

// AppendBatchPayload appends the TBatch encoding of recs to dst. All
// records must share one dimensionality; records are written in the order
// given — the server streams them in curve order, and the encoding
// preserves it.
//
//	count u32 | d u8 | count × (d×u32 coords, payload u64)
func AppendBatchPayload(dst []byte, recs []store.Record) ([]byte, error) {
	if len(recs) == 0 || len(recs) > MaxBatchRecords {
		return nil, fmt.Errorf("wire: batch of %d records outside [1, %d]", len(recs), MaxBatchRecords)
	}
	d := len(recs[0].Point)
	if d < 1 || d > MaxDims {
		return nil, fmt.Errorf("wire: batch record %d dims outside [1, %d]", d, MaxDims)
	}
	// One pre-sized grow and direct indexed stores: this encoder is the
	// server's per-batch hot loop, and append's per-field capacity checks
	// were a measurable fraction of serving cost.
	recSize := 4*d + 8
	need := 5 + len(recs)*recSize
	dst = slices.Grow(dst, need)
	off := len(dst)
	dst = dst[:off+need]
	b := dst[off:]
	binary.LittleEndian.PutUint32(b, uint32(len(recs)))
	b[4] = byte(d)
	o := 5
	for i := range recs {
		p := recs[i].Point
		if len(p) != d {
			return nil, fmt.Errorf("wire: batch record %d has %d dims, batch has %d", i, len(p), d)
		}
		for _, c := range p {
			binary.LittleEndian.PutUint32(b[o:], c)
			o += 4
		}
		binary.LittleEndian.PutUint64(b[o:], recs[i].Payload)
		o += 8
	}
	return dst, nil
}

// DecodeBatchPayload parses a TBatch payload. All points in the batch share
// one backing coordinate slab — one allocation per batch, not per record.
func DecodeBatchPayload(b []byte) ([]store.Record, error) {
	recs, _, err := DecodeBatchInto(b, nil, nil)
	return recs, err
}

// DecodeBatchInto parses a TBatch payload, appending the records to recs
// and carving their points out of slab (grown as needed). It returns the
// extended record slice and the remaining slab — the zero-copy path for
// consumers that accumulate many batches.
func DecodeBatchInto(b []byte, recs []store.Record, slab []uint32) ([]store.Record, []uint32, error) {
	if len(b) < 5 {
		return recs, slab, fmt.Errorf("%w: batch %d bytes", ErrCorrupt, len(b))
	}
	n := int(readU32(b))
	d := int(b[4])
	if n < 1 || n > MaxBatchRecords {
		return recs, slab, fmt.Errorf("%w: batch of %d records outside [1, %d]", ErrCorrupt, n, MaxBatchRecords)
	}
	if d < 1 || d > MaxDims {
		return recs, slab, fmt.Errorf("%w: batch record %d dims outside [1, %d]", ErrCorrupt, d, MaxDims)
	}
	stride := 4*d + 8
	if len(b) != 5+n*stride {
		return recs, slab, fmt.Errorf("%w: batch %d bytes for %d records of %d dims", ErrCorrupt, len(b), n, d)
	}
	if len(slab) < n*d {
		slab = make([]uint32, n*d)
	}
	recs = slices.Grow(recs, n)
	off := 5
	for i := 0; i < n; i++ {
		p := slab[:d:d]
		slab = slab[d:]
		for j := 0; j < d; j++ {
			p[j] = readU32(b[off+4*j:])
		}
		recs = append(recs, store.Record{Point: grid.Point(p), Payload: readU64(b[off+4*d:])})
		off += stride
	}
	return recs, slab, nil
}

// Trailer is the TTrailer payload: the end-of-stream summary that makes a
// binary scan's answer exactly as informative as the JSON body — dark
// intervals, pages read, shards queried, and server-side service time.
//
//	shards u32 | pages u64 | elapsed_us u64 | count u32 | count × (lo u64, hi u64)
type Trailer struct {
	// Unavailable lists the curve intervals no shard could serve: sorted,
	// disjoint, merged. Empty means the stream was complete.
	Unavailable []query.Interval
	// ShardsQueried counts the shards (or, through a router, nodes) the
	// request fanned out to.
	ShardsQueried int
	// PagesRead counts distinct leaf pages touched, dark pages included.
	PagesRead int64
	// ElapsedUS is the server-side service time in microseconds.
	ElapsedUS int64
}

// Complete reports whether the stream covered every requested interval.
func (t Trailer) Complete() bool { return len(t.Unavailable) == 0 }

// AppendTrailerPayload appends t's encoding to dst.
func AppendTrailerPayload(dst []byte, t Trailer) ([]byte, error) {
	if len(t.Unavailable) > MaxScanIntervals {
		return nil, fmt.Errorf("wire: trailer with %d dark intervals exceeds %d", len(t.Unavailable), MaxScanIntervals)
	}
	if t.ShardsQueried < 0 || t.PagesRead < 0 || t.ElapsedUS < 0 {
		return nil, fmt.Errorf("wire: negative trailer counters")
	}
	dst = appendU32(dst, uint32(t.ShardsQueried))
	dst = appendU64(dst, uint64(t.PagesRead))
	dst = appendU64(dst, uint64(t.ElapsedUS))
	dst = appendU32(dst, uint32(len(t.Unavailable)))
	for _, iv := range t.Unavailable {
		dst = appendU64(dst, iv.Lo)
		dst = appendU64(dst, iv.Hi)
	}
	return dst, nil
}

// DecodeTrailerPayload parses a TTrailer payload.
func DecodeTrailerPayload(b []byte) (Trailer, error) {
	if len(b) < 24 {
		return Trailer{}, fmt.Errorf("%w: trailer %d bytes", ErrCorrupt, len(b))
	}
	t := Trailer{
		ShardsQueried: int(readU32(b)),
		PagesRead:     int64(readU64(b[4:])),
		ElapsedUS:     int64(readU64(b[12:])),
	}
	if t.PagesRead < 0 || t.ElapsedUS < 0 {
		return Trailer{}, fmt.Errorf("%w: trailer counter overflows", ErrCorrupt)
	}
	n := int(readU32(b[20:]))
	if n > MaxScanIntervals {
		return Trailer{}, fmt.Errorf("%w: trailer with %d dark intervals exceeds %d", ErrCorrupt, n, MaxScanIntervals)
	}
	if len(b) != 24+16*n {
		return Trailer{}, fmt.Errorf("%w: trailer %d bytes for %d intervals", ErrCorrupt, len(b), n)
	}
	if n > 0 {
		t.Unavailable = make([]query.Interval, n)
		for i := range t.Unavailable {
			t.Unavailable[i] = query.Interval{Lo: readU64(b[24+16*i:]), Hi: readU64(b[32+16*i:])}
		}
	}
	return t, nil
}

// Error codes carried by TError frames. Codes, not strings, drive client
// behavior; the message is for humans.
const (
	// CodeBadRequest: the request was malformed; do not retry.
	CodeBadRequest = 0x01
	// CodeOverloaded: the server shed the request; retry after backing off.
	CodeOverloaded = 0x02
	// CodeUnavailable: the server is draining or shutting down; retryable
	// against a replacement.
	CodeUnavailable = 0x03
	// CodeDeadline: the request's deadline expired server-side.
	CodeDeadline = 0x04
	// CodeInternal: an unexpected server-side failure.
	CodeInternal = 0x05
	// CodeReadOnly: the daemon has no durable store, so writes are
	// rejected before touching any state; do not retry against this node.
	// Only ever sent in answer to write frames, which old clients never
	// send — adding the code is compatibility-safe.
	CodeReadOnly = 0x06
)

// NoRetryHint marks an ErrorFrame that carries no retry-after hint.
const NoRetryHint = ^uint32(0)

// ErrorFrame is the TError payload: a typed failure, terminal for its
// request id. It may follow TBatch frames — the binary protocol reports
// mid-stream failures instead of truncating the body.
//
//	code u8 | retry_after u32 (s; NoRetryHint = none) | message (rest, UTF-8)
type ErrorFrame struct {
	Code uint8
	// RetryAfterSec is the server's backoff hint in seconds; -1 means the
	// server gave none. 0 is meaningful: retry immediately.
	RetryAfterSec int64
	Msg           string
}

// AppendErrorPayload appends e's encoding to dst.
func AppendErrorPayload(dst []byte, e ErrorFrame) ([]byte, error) {
	switch e.Code {
	case CodeBadRequest, CodeOverloaded, CodeUnavailable, CodeDeadline, CodeInternal, CodeReadOnly:
	default:
		return nil, fmt.Errorf("wire: unknown error code 0x%02x", e.Code)
	}
	hint := NoRetryHint
	if e.RetryAfterSec >= 0 {
		if e.RetryAfterSec >= int64(NoRetryHint) {
			return nil, fmt.Errorf("wire: retry-after %ds unencodable", e.RetryAfterSec)
		}
		hint = uint32(e.RetryAfterSec)
	}
	dst = append(dst, e.Code)
	dst = appendU32(dst, hint)
	return append(dst, e.Msg...), nil
}

// DecodeErrorPayload parses a TError payload.
func DecodeErrorPayload(b []byte) (ErrorFrame, error) {
	if len(b) < 5 {
		return ErrorFrame{}, fmt.Errorf("%w: error frame %d bytes", ErrCorrupt, len(b))
	}
	e := ErrorFrame{Code: b[0], RetryAfterSec: -1, Msg: string(b[5:])}
	switch e.Code {
	case CodeBadRequest, CodeOverloaded, CodeUnavailable, CodeDeadline, CodeInternal, CodeReadOnly:
	default:
		return ErrorFrame{}, fmt.Errorf("%w: unknown error code 0x%02x", ErrCorrupt, b[0])
	}
	if hint := readU32(b[1:]); hint != NoRetryHint {
		e.RetryAfterSec = int64(hint)
	}
	return e, nil
}

// Pong is the TPong payload.
//
//	ready u8 (0|1)
type Pong struct {
	Ready bool
}

// AppendPongPayload appends p's encoding to dst.
func AppendPongPayload(dst []byte, p Pong) []byte {
	if p.Ready {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// DecodePongPayload parses a TPong payload.
func DecodePongPayload(b []byte) (Pong, error) {
	if len(b) != 1 || b[0] > 1 {
		return Pong{}, fmt.Errorf("%w: pong payload", ErrCorrupt)
	}
	return Pong{Ready: b[0] == 1}, nil
}
