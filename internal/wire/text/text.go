// Package text is the daemon's text codec: the query-string forms of
// points and curve intervals that the HTTP/JSON endpoints, the cluster
// router, and the bench tool all speak. It is the one place the text wire
// forms are defined — internal/wire holds the binary equivalents.
package text

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/query"
	"repro/internal/wire"
)

// MaxScanIntervals bounds the interval count a single scan request may
// carry, in either transport. Re-exported from the binary protocol so the
// text and binary limits can never drift.
const MaxScanIntervals = wire.MaxScanIntervals

// ParsePoint parses "3,17,…" into d coordinates — the /query corner wire
// form.
func ParsePoint(v string, d int) ([]uint32, error) {
	if v == "" {
		return nil, errors.New("missing")
	}
	parts := strings.Split(v, ",")
	if len(parts) != d {
		return nil, fmt.Errorf("%d coordinates, universe has %d dimensions", len(parts), d)
	}
	p := make([]uint32, d)
	for i, part := range parts {
		x, err := strconv.ParseUint(strings.TrimSpace(part), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("coordinate %d: %w", i+1, err)
		}
		p[i] = uint32(x)
	}
	return p, nil
}

// FormatPoint renders a point in the /query corner wire form — the inverse
// of ParsePoint.
func FormatPoint(p []uint32) string {
	var sb strings.Builder
	for i, c := range p {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.FormatUint(uint64(c), 10))
	}
	return sb.String()
}

// ParseIntervals parses the /scan wire form "lo-hi,lo-hi,…" (each half-open
// [lo, hi)) into intervals, enforcing the MaxScanIntervals bound.
func ParseIntervals(v string) ([]query.Interval, error) {
	if v == "" {
		return nil, errors.New("missing")
	}
	parts := strings.Split(v, ",")
	if len(parts) > MaxScanIntervals {
		return nil, fmt.Errorf("%d intervals exceed the limit %d", len(parts), MaxScanIntervals)
	}
	ivs := make([]query.Interval, len(parts))
	for i, part := range parts {
		lo, hi, ok := strings.Cut(strings.TrimSpace(part), "-")
		if !ok {
			return nil, fmt.Errorf("interval %d: %q is not lo-hi", i, part)
		}
		a, err := strconv.ParseUint(lo, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("interval %d lo: %w", i, err)
		}
		b, err := strconv.ParseUint(hi, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("interval %d hi: %w", i, err)
		}
		ivs[i] = query.Interval{Lo: a, Hi: b}
	}
	return ivs, nil
}

// FormatIntervals renders intervals in the /scan wire form — the inverse of
// ParseIntervals.
func FormatIntervals(ivs []query.Interval) string {
	var sb strings.Builder
	for i, iv := range ivs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.FormatUint(iv.Lo, 10))
		sb.WriteByte('-')
		sb.WriteString(strconv.FormatUint(iv.Hi, 10))
	}
	return sb.String()
}
