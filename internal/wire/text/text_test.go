package text

import (
	"strings"
	"testing"

	"repro/internal/query"
)

func TestPointRoundTrip(t *testing.T) {
	for _, p := range [][]uint32{{0}, {1, 2, 3}, {^uint32(0), 0, 7}} {
		s := FormatPoint(p)
		back, err := ParsePoint(s, len(p))
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		for i := range p {
			if back[i] != p[i] {
				t.Fatalf("%q coord %d: %d want %d", s, i, back[i], p[i])
			}
		}
	}
	if _, err := ParsePoint("", 2); err == nil {
		t.Fatal("empty point accepted")
	}
	if _, err := ParsePoint("1,2,3", 2); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, err := ParsePoint("1,4294967296", 2); err == nil {
		t.Fatal("coordinate overflow accepted")
	}
}

func TestIntervalsRoundTrip(t *testing.T) {
	ivs := []query.Interval{{Lo: 0, Hi: 9}, {Lo: 12, Hi: ^uint64(0)}}
	s := FormatIntervals(ivs)
	back, err := ParseIntervals(s)
	if err != nil || len(back) != len(ivs) {
		t.Fatalf("%q: %v (%d intervals)", s, err, len(back))
	}
	for i := range ivs {
		if back[i] != ivs[i] {
			t.Fatalf("interval %d: %+v want %+v", i, back[i], ivs[i])
		}
	}
	if _, err := ParseIntervals(""); err == nil {
		t.Fatal("empty intervals accepted")
	}
	if _, err := ParseIntervals("5"); err == nil {
		t.Fatal("missing dash accepted")
	}
	over := strings.Repeat("1-2,", MaxScanIntervals) + "1-2"
	if _, err := ParseIntervals(over); err == nil {
		t.Fatal("interval count over the limit accepted")
	}
}
