// Package wire is the daemon's binary protocol: length-prefixed,
// checksummed frames over a persistent TCP connection, with chunked
// streaming of scan results.
//
// The protocol exists because the HTTP/JSON hop dominates serving cost:
// BENCH_server.json measured ~1.2k qps over the wire against ~26k qps for
// the same queries in-process, almost all of it marshaling and per-request
// connection work. The binary framing removes both: requests pipeline over
// one connection (tagged with request ids, so responses demultiplex without
// head-of-line blocking between requests), and records travel in a packed
// little-endian encoding that the decoder materializes with one coordinate
// slab per batch instead of one allocation per point.
//
// # Frame grammar
//
// Every frame is a 20-byte header followed by a payload:
//
//	magic   u16  = 0x5346 ("SF", little-endian)
//	version u8   = 1
//	type    u8   — one of the T* constants
//	id      u64  — request id; responses echo their request's id
//	length  u32  — payload byte length, at most MaxFramePayload
//	crc     u32  — CRC-32C (Castagnoli) of header bytes 0..15 ++ payload
//
// All integers are little-endian, matching the WAL's framed-entry
// discipline (internal/wal): a frame whose magic, version, type, length or
// checksum is malformed is ErrCorrupt; a frame that ends past the end of
// the buffer is ErrTruncated. Both are terminal for a connection — framing
// is trustworthy only from a clean boundary.
//
// # Request/response state machine
//
// The client sends request frames (TQuery, TScan, TPing, TPut, TDelete,
// TFlush), each with a fresh id. The server answers each id with exactly
// one of:
//
//   - zero or more TBatch frames followed by one TTrailer (a scan stream:
//     records in curve order, then dark intervals + pages read in the
//     trailer), or
//   - one TError frame (typed code + optional retry-after hint), which may
//     arrive even after TBatch frames — a mid-stream failure is reported,
//     never a silently truncated body, or
//   - one TPong (for TPing), or
//   - one TWriteAck (for TPut, TDelete, TFlush: replica outcome summary).
//
// Write frames (TPut, TDelete, TFlush) are accepted only by daemons that
// advertise "write": true through GET /wireinfo — a read-only daemon
// rejects them as unknown types and drops the connection, so a router
// probing capabilities must fall back to the HTTP write endpoints. Like
// reads, write requests carry an optional trailing flags byte; unknown flag
// bits are hard-rejected as ErrCorrupt, never ignored.
//
// Frames of different ids interleave arbitrarily; frames of one id arrive
// in order. A response stream is complete exactly when its TTrailer or
// TError has arrived.
//
// # Compression
//
// The type byte's high bit (CompressedBit) marks a frame whose payload is
// deflate-compressed: a u32 raw length followed by the deflate stream, with
// the CRC computed over the compressed bytes. Compression is negotiated,
// never sprung: the server advertises support through GET /wireinfo, the
// client opts in per request with a trailing flags byte (FlagCompress) on
// its TQuery/TScan payload, and only then may the server set the bit — in
// practice on large TBatch frames (MinCompressSize), where cold-scan record
// payloads deflate well. A reader that never negotiated compression keeps
// rejecting the bit as an unknown type, exactly as version 1 always has.
//
// # Versioning
//
// The version byte is per-frame. A reader that sees a version it does not
// speak must reject the frame as ErrCorrupt and close the connection; there
// is no negotiation. Compatibility rule for future revisions: payload
// encodings may only grow by appending fields (the request flags byte and
// CompressedBit follow it: both occupy space version 1 rejected outright,
// and both are used only after explicit negotiation), and a new version
// byte is required for any change that alters the meaning of existing
// bytes.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Magic is the first two bytes of every frame ("SF" little-endian).
const Magic = 0x5346

// Version is the protocol revision this package speaks.
const Version = 1

// HeaderSize is the fixed frame-header length in bytes.
const HeaderSize = 20

// MaxFramePayload bounds a single frame's payload so a corrupt length field
// is rejected immediately instead of swallowing the stream (64 MiB).
const MaxFramePayload = 1 << 26

// Frame types. Requests are low numbers, responses high, so an endpoint can
// cheaply assert direction.
const (
	// TQuery asks for a box query: payload is a QueryRequest.
	TQuery = 0x01
	// TScan asks for a raw curve-interval scan: payload is a ScanRequest.
	TScan = 0x02
	// TPing probes readiness: empty payload.
	TPing = 0x03
	// TPut asks to durably upsert one record: payload is a WriteRequest.
	TPut = 0x04
	// TDelete asks to durably delete every stored instance of a record
	// (same point, same payload): payload is a WriteRequest.
	TDelete = 0x05
	// TFlush asks to persist all buffered writes: payload is a FlushRequest.
	TFlush = 0x06

	// TBatch carries one chunk of result records in curve order.
	TBatch = 0x10
	// TTrailer ends a result stream: dark intervals, pages read, shards.
	TTrailer = 0x11
	// TError reports a typed failure for its request id; terminal.
	TError = 0x12
	// TPong answers TPing: payload is a Pong.
	TPong = 0x13
	// TWriteAck answers TPut/TDelete/TFlush: payload is a WriteAck.
	TWriteAck = 0x14
)

// ErrTruncated reports a frame that ends past the end of the input — the
// torn-tail shape a cut connection leaves behind.
var ErrTruncated = errors.New("wire: truncated frame")

// ErrCorrupt reports a frame whose magic, version, type, length, or
// checksum is malformed. The connection cannot be re-synchronized.
var ErrCorrupt = errors.New("wire: corrupt frame")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Frame is one decoded frame: its type, request id, and raw payload.
type Frame struct {
	Type    uint8
	ID      uint64
	Payload []byte
}

// validType reports whether t is a known frame type.
func validType(t uint8) bool {
	switch t {
	case TQuery, TScan, TPing, TPut, TDelete, TFlush,
		TBatch, TTrailer, TError, TPong, TWriteAck:
		return true
	}
	return false
}

// AppendFrame appends f's encoding to dst and returns the extended slice.
// It panics on a payload exceeding MaxFramePayload — the caller bounds
// batch sizes, so an oversized payload is a programming error, not input.
func AppendFrame(dst []byte, f Frame) []byte {
	start := len(dst)
	dst = BeginFrame(dst, f.Type, f.ID)
	dst = append(dst, f.Payload...)
	return FinishFrame(dst, start)
}

// BeginFrame appends a frame header for typ/id to dst with the length and
// checksum fields left zero, returning the extended slice. The caller
// appends the payload in place and closes the frame with FinishFrame —
// encoding large payloads directly into a connection's write buffer
// instead of through an intermediate allocation and copy.
func BeginFrame(dst []byte, typ uint8, id uint64) []byte {
	dst = appendU16(dst, Magic)
	dst = append(dst, Version, typ)
	dst = appendU64(dst, id)
	// Length and CRC placeholders; FinishFrame patches them.
	return append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
}

// FinishFrame patches the length and checksum of the frame whose header
// BeginFrame wrote at offset start, now that the payload sits in place
// after it. Like AppendFrame it panics on a payload exceeding
// MaxFramePayload — the caller bounds batch sizes, so an oversized payload
// is a programming error, not input.
func FinishFrame(dst []byte, start int) []byte {
	n := len(dst) - start - HeaderSize
	if n > MaxFramePayload {
		panic(fmt.Sprintf("wire: frame payload %d exceeds MaxFramePayload", n))
	}
	b := dst[start:]
	binary.LittleEndian.PutUint32(b[12:], uint32(n))
	sum := crc32.Update(crc32.Checksum(b[:16], castagnoli), castagnoli, b[HeaderSize:HeaderSize+n])
	binary.LittleEndian.PutUint32(b[16:], sum)
	return dst
}

// DecodeFrame parses the first frame of b, returning the frame and the
// bytes consumed. The returned payload aliases b. An empty buffer returns
// (Frame{}, 0, nil) — the clean end of a stream.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) == 0 {
		return Frame{}, 0, nil
	}
	if len(b) < HeaderSize {
		return Frame{}, 0, ErrTruncated
	}
	if readU16(b) != Magic {
		return Frame{}, 0, fmt.Errorf("%w: bad magic 0x%04x", ErrCorrupt, readU16(b))
	}
	if b[2] != Version {
		return Frame{}, 0, fmt.Errorf("%w: unsupported version %d (speaking %d)", ErrCorrupt, b[2], Version)
	}
	typ := b[3]
	if !validType(typ &^ CompressedBit) {
		return Frame{}, 0, fmt.Errorf("%w: unknown frame type 0x%02x", ErrCorrupt, typ)
	}
	id := readU64(b[4:])
	n := readU32(b[12:])
	if n > MaxFramePayload {
		return Frame{}, 0, fmt.Errorf("%w: payload length %d exceeds %d", ErrCorrupt, n, MaxFramePayload)
	}
	if len(b) < HeaderSize+int(n) {
		return Frame{}, 0, ErrTruncated
	}
	payload := b[HeaderSize : HeaderSize+int(n)]
	sum := crc32.Update(crc32.Checksum(b[:16], castagnoli), castagnoli, payload)
	if sum != readU32(b[16:]) {
		return Frame{}, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	if typ&CompressedBit != 0 {
		raw, err := inflatePayload(payload)
		if err != nil {
			return Frame{}, 0, err
		}
		payload, typ = raw, typ&^CompressedBit
	}
	return Frame{Type: typ, ID: id, Payload: payload}, HeaderSize + int(n), nil
}

// ReadFrame reads one frame from r. The payload is freshly allocated, so
// the frame stays valid across subsequent reads. A clean EOF at a frame
// boundary returns io.EOF; EOF inside a frame is ErrTruncated.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Frame{}, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Frame{}, ErrTruncated
		}
		return Frame{}, err
	}
	if readU16(hdr[:]) != Magic {
		return Frame{}, fmt.Errorf("%w: bad magic 0x%04x", ErrCorrupt, readU16(hdr[:]))
	}
	if hdr[2] != Version {
		return Frame{}, fmt.Errorf("%w: unsupported version %d (speaking %d)", ErrCorrupt, hdr[2], Version)
	}
	typ := hdr[3]
	if !validType(typ &^ CompressedBit) {
		return Frame{}, fmt.Errorf("%w: unknown frame type 0x%02x", ErrCorrupt, typ)
	}
	n := readU32(hdr[12:])
	if n > MaxFramePayload {
		return Frame{}, fmt.Errorf("%w: payload length %d exceeds %d", ErrCorrupt, n, MaxFramePayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return Frame{}, ErrTruncated
		}
		return Frame{}, err
	}
	sum := crc32.Update(crc32.Checksum(hdr[:16], castagnoli), castagnoli, payload)
	if sum != readU32(hdr[16:]) {
		return Frame{}, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	if typ&CompressedBit != 0 {
		raw, err := inflatePayload(payload)
		if err != nil {
			return Frame{}, err
		}
		payload, typ = raw, typ&^CompressedBit
	}
	return Frame{Type: typ, ID: readU64(hdr[4:]), Payload: payload}, nil
}

func appendU16(b []byte, v uint16) []byte {
	return append(b, byte(v), byte(v>>8))
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func readU16(b []byte) uint16 {
	return uint16(b[0]) | uint16(b[1])<<8
}

func readU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func readU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
