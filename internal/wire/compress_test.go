package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/grid"
	"repro/internal/query"
	"repro/internal/store"
)

// bigBatchPayload builds a TBatch payload comfortably above MinCompressSize
// with the repetitive structure real curve-ordered batches have.
func bigBatchPayload(t *testing.T, n int) []byte {
	t.Helper()
	recs := make([]store.Record, n)
	for i := range recs {
		recs[i] = store.Record{Point: grid.Point{uint32(i / 64), uint32(i % 64)}, Payload: uint64(i)}
	}
	return mustAppend(t)(AppendBatchPayload(nil, recs))
}

// TestCompressedFrameRoundTrip: a large batch frame survives
// AppendCompressedFrame -> DecodeFrame and -> ReadFrame byte-identically,
// arrives smaller on the wire, and decodes with the compressed bit cleared.
func TestCompressedFrameRoundTrip(t *testing.T) {
	payload := bigBatchPayload(t, 4096)
	if len(payload) < MinCompressSize {
		t.Fatalf("test payload %d bytes below MinCompressSize", len(payload))
	}
	buf, err := AppendCompressedFrame(nil, Frame{Type: TBatch, ID: 9, Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) >= HeaderSize+len(payload) {
		t.Fatalf("compressed frame %d bytes, plain would be %d", len(buf), HeaderSize+len(payload))
	}
	if buf[3] != TBatch|CompressedBit {
		t.Fatalf("type byte 0x%02x, want compressed TBatch", buf[3])
	}

	got, n, err := DecodeFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if got.Type != TBatch || got.ID != 9 || !bytes.Equal(got.Payload, payload) {
		t.Fatal("DecodeFrame did not restore the raw payload")
	}

	rf, err := ReadFrame(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if rf.Type != TBatch || rf.ID != 9 || !bytes.Equal(rf.Payload, payload) {
		t.Fatal("ReadFrame did not restore the raw payload")
	}
}

// TestCompressedFrameFallsBackSmall: payloads under the threshold and
// incompressible payloads ship as plain frames — a compressed frame is
// never the larger encoding.
func TestCompressedFrameFallsBackSmall(t *testing.T) {
	small := []byte("tiny")
	buf, err := AppendCompressedFrame(nil, Frame{Type: TBatch, ID: 1, Payload: small})
	if err != nil {
		t.Fatal(err)
	}
	if buf[3] != TBatch {
		t.Fatalf("small payload got type 0x%02x, want plain TBatch", buf[3])
	}

	// Incompressible: uniform pseudo-random bytes above the threshold.
	noise := make([]byte, 2*MinCompressSize)
	x := uint64(0x9e3779b97f4a7c15)
	for i := range noise {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		noise[i] = byte(x)
	}
	buf, err = AppendCompressedFrame(nil, Frame{Type: TBatch, ID: 2, Payload: noise})
	if err != nil {
		t.Fatal(err)
	}
	if buf[3] != TBatch {
		t.Fatalf("incompressible payload got type 0x%02x, want plain TBatch", buf[3])
	}
	got, _, err := DecodeFrame(buf)
	if err != nil || !bytes.Equal(got.Payload, noise) {
		t.Fatalf("fallback frame corrupted: %v", err)
	}
}

// TestCompressedFrameCorruptionRejected: flipping payload bytes of a
// compressed frame fails the checksum before inflation; a frame whose
// declared raw length lies is ErrCorrupt after it.
func TestCompressedFrameCorruptionRejected(t *testing.T) {
	payload := bigBatchPayload(t, 2048)
	buf, err := AppendCompressedFrame(nil, Frame{Type: TBatch, ID: 3, Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	// Bit flip inside the compressed body: CRC catches it.
	mut := append([]byte(nil), buf...)
	mut[HeaderSize+10] ^= 0xff
	if _, _, err := DecodeFrame(mut); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("payload bit flip: %v, want ErrCorrupt", err)
	}

	// Declared raw length below the actual inflated size, CRC re-patched:
	// the deflate stream outruns its declaration.
	mut = append([]byte(nil), buf...)
	binary.LittleEndian.PutUint32(mut[HeaderSize:], 16)
	FinishFrame(mut, 0)
	if _, _, err := DecodeFrame(mut); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("lying raw length: %v, want ErrCorrupt", err)
	}

	// Declared raw length exceeding MaxFramePayload.
	mut = append([]byte(nil), buf...)
	binary.LittleEndian.PutUint32(mut[HeaderSize:], MaxFramePayload+1)
	FinishFrame(mut, 0)
	if _, _, err := DecodeFrame(mut); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized raw length: %v, want ErrCorrupt", err)
	}
	if _, err := ReadFrame(bytes.NewReader(mut)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized raw length via ReadFrame: %v, want ErrCorrupt", err)
	}
}

// TestRequestFlagsRoundTrip: the optional trailing flags byte encodes the
// compression opt-in on both request types, flagless requests keep the
// version-1 length, and unknown flag bits are rejected.
func TestRequestFlagsRoundTrip(t *testing.T) {
	q := QueryRequest{Lo: grid.Point{1, 2}, Hi: grid.Point{3, 4}, Compress: true}
	qp := mustAppend(t)(AppendQueryRequest(nil, q))
	gotQ, err := DecodeQueryRequest(qp)
	if err != nil {
		t.Fatal(err)
	}
	if !gotQ.Compress {
		t.Fatal("query Compress flag lost")
	}
	q.Compress = false
	plain := mustAppend(t)(AppendQueryRequest(nil, q))
	if len(plain) != len(qp)-1 {
		t.Fatalf("flagless query is %d bytes, flagged %d: flags byte must be optional", len(plain), len(qp))
	}
	if gotQ, err = DecodeQueryRequest(plain); err != nil || gotQ.Compress {
		t.Fatalf("flagless query: %v, compress=%v", err, gotQ.Compress)
	}

	s := ScanRequest{Ivs: []query.Interval{{Lo: 1, Hi: 5}}, Compress: true}
	sp := mustAppend(t)(AppendScanRequest(nil, s))
	gotS, err := DecodeScanRequest(sp)
	if err != nil {
		t.Fatal(err)
	}
	if !gotS.Compress {
		t.Fatal("scan Compress flag lost")
	}

	// Unknown flag bits are a hard reject, not a silent ignore: they are
	// the namespace future revisions will use.
	qp[len(qp)-1] = 0x82
	if _, err := DecodeQueryRequest(qp); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown query flags: %v, want ErrCorrupt", err)
	}
	sp[len(sp)-1] = 0x02
	if _, err := DecodeScanRequest(sp); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown scan flags: %v, want ErrCorrupt", err)
	}
}

// TestCompressedBitOnUnknownType: the compressed bit does not widen the
// accepted type space — 0x80|garbage is still an unknown type.
func TestCompressedBitOnUnknownType(t *testing.T) {
	buf := AppendFrame(nil, Frame{Type: TPong, ID: 1, Payload: []byte{1}})
	buf[3] = 0x7f | CompressedBit
	FinishFrame(buf, 0)
	if _, _, err := DecodeFrame(buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("compressed unknown type: %v, want ErrCorrupt", err)
	}
}

// TestHotPathAllocs gates the per-batch hot loops at zero steady-state
// allocations: the server's encoder (BeginFrame/AppendBatchPayload/
// FinishFrame into a retained buffer) and the client's decoder
// (DecodeBatchInto over a retained record slice and slab). A regression
// here silently multiplies GC pressure by the batch rate.
func TestHotPathAllocs(t *testing.T) {
	recs := make([]store.Record, DefaultBatchRecords)
	for i := range recs {
		recs[i] = store.Record{Point: grid.Point{uint32(i), uint32(i >> 8)}, Payload: uint64(i)}
	}

	var encBuf []byte
	encode := func() {
		start := len(encBuf[:0])
		buf, err := AppendBatchPayload(BeginFrame(encBuf[:0], TBatch, 1), recs)
		if err != nil {
			t.Fatal(err)
		}
		encBuf = FinishFrame(buf, start)
	}
	encode() // warm: first call sizes the buffer
	if allocs := testing.AllocsPerRun(20, encode); allocs != 0 {
		t.Fatalf("BeginFrame+AppendBatchPayload+FinishFrame: %v allocs/run, want 0", allocs)
	}

	payload := encBuf[HeaderSize:]
	out := make([]store.Record, 0, len(recs))
	slab := make([]uint32, 2*len(recs))
	decode := func() {
		var err error
		out, _, err = DecodeBatchInto(payload, out[:0], slab)
		if err != nil {
			t.Fatal(err)
		}
	}
	decode()
	if allocs := testing.AllocsPerRun(20, decode); allocs != 0 {
		t.Fatalf("DecodeBatchInto with retained slab: %v allocs/run, want 0", allocs)
	}
	if len(out) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(out), len(recs))
	}
}

// TestCompressedStreamInterleaved: compressed and plain frames interleave
// on one stream — negotiation is per request, so a connection carries both.
func TestCompressedStreamInterleaved(t *testing.T) {
	big := bigBatchPayload(t, 4096)
	var buf []byte
	var err error
	buf = AppendFrame(buf, Frame{Type: TBatch, ID: 1, Payload: []byte{1, 0, 0, 0, 1, 0, 0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0}})
	buf, err = AppendCompressedFrame(buf, Frame{Type: TBatch, ID: 2, Payload: big})
	if err != nil {
		t.Fatal(err)
	}
	buf = AppendFrame(buf, Frame{Type: TTrailer, ID: 2, Payload: mustAppend(t)(AppendTrailerPayload(nil, Trailer{ShardsQueried: 1}))})

	r := bytes.NewReader(buf)
	f1, err := ReadFrame(r)
	if err != nil || f1.Type != TBatch || f1.ID != 1 {
		t.Fatalf("frame 1: %+v %v", f1, err)
	}
	f2, err := ReadFrame(r)
	if err != nil || f2.Type != TBatch || f2.ID != 2 || !bytes.Equal(f2.Payload, big) {
		t.Fatalf("frame 2 (compressed): type 0x%02x err %v", f2.Type, err)
	}
	f3, err := ReadFrame(r)
	if err != nil || f3.Type != TTrailer {
		t.Fatalf("frame 3: %+v %v", f3, err)
	}
}
