package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/query"
	"repro/internal/store"
)

// mustAppend curries t so Append* call results pass through directly:
// mustAppend(t)(AppendX(...)).
func mustAppend(t *testing.T) func([]byte, error) []byte {
	return func(b []byte, err error) []byte {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
}

// sampleFrames builds one frame of every type with representative payloads.
func sampleFrames(t *testing.T) []Frame {
	t.Helper()
	qp := mustAppend(t)(AppendQueryRequest(nil, QueryRequest{
		Lo:      grid.Point{1, 2, 3},
		Hi:      grid.Point{7, 8, 9},
		Timeout: 250 * time.Millisecond,
	}))
	sp := mustAppend(t)(AppendScanRequest(nil, ScanRequest{
		Ivs:     []query.Interval{{Lo: 0, Hi: 9}, {Lo: 12, Hi: 40}},
		Timeout: time.Second,
	}))
	bp := mustAppend(t)(AppendBatchPayload(nil, []store.Record{
		{Point: grid.Point{1, 2}, Payload: 7},
		{Point: grid.Point{3, 4}, Payload: 8},
	}))
	tp := mustAppend(t)(AppendTrailerPayload(nil, Trailer{
		Unavailable:   []query.Interval{{Lo: 3, Hi: 5}},
		ShardsQueried: 4,
		PagesRead:     99,
		ElapsedUS:     1234,
	}))
	ep := mustAppend(t)(AppendErrorPayload(nil, ErrorFrame{
		Code: CodeOverloaded, RetryAfterSec: 1, Msg: "overloaded",
	}))
	wp := mustAppend(t)(AppendWriteRequest(nil, WriteRequest{
		Point:   grid.Point{5, 6},
		Payload: 42,
		Timeout: 100 * time.Millisecond,
	}))
	dp := mustAppend(t)(AppendWriteRequest(nil, WriteRequest{
		Point: grid.Point{9, 10, 11},
	}))
	fp := mustAppend(t)(AppendFlushRequest(nil, FlushRequest{Timeout: time.Second}))
	ap := mustAppend(t)(AppendWriteAckPayload(nil, WriteAck{
		Acked:     2,
		Required:  2,
		ElapsedUS: 310,
		Replicas: []ReplicaOutcome{
			{Node: 0, Code: 0},
			{Node: 2, Code: CodeUnavailable},
		},
	}))
	return []Frame{
		{Type: TQuery, ID: 1, Payload: qp},
		{Type: TScan, ID: 2, Payload: sp},
		{Type: TPing, ID: 3},
		{Type: TBatch, ID: 4, Payload: bp},
		{Type: TTrailer, ID: 5, Payload: tp},
		{Type: TError, ID: 6, Payload: ep},
		{Type: TPong, ID: 7, Payload: AppendPongPayload(nil, Pong{Ready: true})},
		{Type: TPut, ID: 8, Payload: wp},
		{Type: TDelete, ID: 9, Payload: dp},
		{Type: TFlush, ID: 10, Payload: fp},
		{Type: TWriteAck, ID: 11, Payload: ap},
	}
}

// TestFrameRoundTrip: every frame type survives AppendFrame -> DecodeFrame
// and AppendFrame -> ReadFrame unchanged, including back-to-back frames in
// one buffer.
func TestFrameRoundTrip(t *testing.T) {
	frames := sampleFrames(t)
	var buf []byte
	for _, f := range frames {
		buf = AppendFrame(buf, f)
	}

	rest := buf
	for i, want := range frames {
		got, n, err := DecodeFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.ID != want.ID || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
		rest = rest[n:]
	}
	if f, n, err := DecodeFrame(rest); err != nil || n != 0 || f.Type != 0 {
		t.Fatalf("clean end: got %+v, %d, %v", f, n, err)
	}

	r := bytes.NewReader(buf)
	for i, want := range frames {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("read frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.ID != want.ID || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("read frame %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := ReadFrame(r); !errors.Is(err, io.EOF) {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}
}

// TestTornFrameEveryOffset: truncating an encoded frame at every byte
// offset yields ErrTruncated from both decode paths — never a successful
// decode, never a panic, never a wrong-length consume.
func TestTornFrameEveryOffset(t *testing.T) {
	for _, f := range sampleFrames(t) {
		full := AppendFrame(nil, f)
		for cut := 0; cut < len(full); cut++ {
			if cut == 0 {
				// Empty buffer is a clean boundary for DecodeFrame, a clean
				// EOF for ReadFrame.
				if _, n, err := DecodeFrame(nil); n != 0 || err != nil {
					t.Fatalf("empty decode: %d, %v", n, err)
				}
				if _, err := ReadFrame(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
					t.Fatalf("empty read: %v", err)
				}
				continue
			}
			torn := full[:cut]
			if _, _, err := DecodeFrame(torn); !errors.Is(err, ErrTruncated) {
				t.Fatalf("type 0x%02x cut at %d/%d: decode err %v, want ErrTruncated", f.Type, cut, len(full), err)
			}
			if _, err := ReadFrame(bytes.NewReader(torn)); !errors.Is(err, ErrTruncated) {
				t.Fatalf("type 0x%02x cut at %d/%d: read err %v, want ErrTruncated", f.Type, cut, len(full), err)
			}
		}
	}
}

// TestCorruptFrameRejected: the CRC covers the header as well as the
// payload, so flipping any single bit of a valid frame is detected —
// ErrCorrupt, or ErrTruncated when the flip inflates the length field.
func TestCorruptFrameRejected(t *testing.T) {
	f := sampleFrames(t)[3] // TBatch: non-trivial payload
	full := AppendFrame(nil, f)
	for i := 0; i < len(full); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), full...)
			mut[i] ^= 1 << bit
			if got, _, err := DecodeFrame(mut); err == nil {
				t.Fatalf("bit flip %d.%d accepted: %+v", i, bit, got)
			}
		}
	}
}

// TestVersionRejected: a frame stamped with a future version is ErrCorrupt.
func TestVersionRejected(t *testing.T) {
	full := AppendFrame(nil, Frame{Type: TPing, ID: 1})
	full[2] = Version + 1
	if _, _, err := DecodeFrame(full); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("future version accepted: %v", err)
	}
}

// TestPayloadRoundTrips: each payload codec is an exact inverse pair.
func TestPayloadRoundTrips(t *testing.T) {
	q := QueryRequest{Lo: grid.Point{0, ^uint32(0)}, Hi: grid.Point{5, 6}, Timeout: 3 * time.Second}
	qb := mustAppend(t)(AppendQueryRequest(nil, q))
	if got, err := DecodeQueryRequest(qb); err != nil ||
		!got.Lo.Equal(q.Lo) || !got.Hi.Equal(q.Hi) || got.Timeout != q.Timeout {
		t.Fatalf("query: %+v, %v", got, err)
	}

	s := ScanRequest{Ivs: []query.Interval{{Lo: 1, Hi: 2}, {Lo: ^uint64(0) - 1, Hi: ^uint64(0)}}}
	sb := mustAppend(t)(AppendScanRequest(nil, s))
	got, err := DecodeScanRequest(sb)
	if err != nil || len(got.Ivs) != 2 || got.Ivs[1] != s.Ivs[1] || got.Timeout != 0 {
		t.Fatalf("scan: %+v, %v", got, err)
	}

	recs := []store.Record{
		{Point: grid.Point{9, 8, 7, 6}, Payload: ^uint64(0)},
		{Point: grid.Point{0, 0, 0, 0}, Payload: 0},
		{Point: grid.Point{1, 2, 3, 4}, Payload: 42},
	}
	bb := mustAppend(t)(AppendBatchPayload(nil, recs))
	back, err := DecodeBatchPayload(bb)
	if err != nil || len(back) != len(recs) {
		t.Fatalf("batch: %d records, %v", len(back), err)
	}
	for i := range recs {
		if !back[i].Point.Equal(recs[i].Point) || back[i].Payload != recs[i].Payload {
			t.Fatalf("batch record %d: %+v want %+v", i, back[i], recs[i])
		}
	}

	tr := Trailer{ShardsQueried: 3, PagesRead: 17, ElapsedUS: 250,
		Unavailable: []query.Interval{{Lo: 10, Hi: 20}, {Lo: 30, Hi: 31}}}
	tb := mustAppend(t)(AppendTrailerPayload(nil, tr))
	tback, err := DecodeTrailerPayload(tb)
	if err != nil || tback.ShardsQueried != 3 || tback.PagesRead != 17 ||
		tback.ElapsedUS != 250 || len(tback.Unavailable) != 2 || tback.Unavailable[1] != tr.Unavailable[1] {
		t.Fatalf("trailer: %+v, %v", tback, err)
	}
	if tback.Complete() {
		t.Fatal("trailer with dark intervals reports complete")
	}

	for _, hint := range []int64{-1, 0, 2} {
		e := ErrorFrame{Code: CodeUnavailable, RetryAfterSec: hint, Msg: "draining"}
		eb := mustAppend(t)(AppendErrorPayload(nil, e))
		eback, err := DecodeErrorPayload(eb)
		if err != nil || eback != e {
			t.Fatalf("error frame hint %d: %+v, %v", hint, eback, err)
		}
	}

	for _, ready := range []bool{true, false} {
		pb := AppendPongPayload(nil, Pong{Ready: ready})
		p, err := DecodePongPayload(pb)
		if err != nil || p.Ready != ready {
			t.Fatalf("pong: %+v, %v", p, err)
		}
	}
}

// TestBatchSlabSharing: DecodeBatchInto carves all points from one slab and
// the records stay independent of later slab reuse by capacity clamping.
func TestBatchSlabSharing(t *testing.T) {
	recs := []store.Record{
		{Point: grid.Point{1, 2}, Payload: 1},
		{Point: grid.Point{3, 4}, Payload: 2},
	}
	b := mustAppend(t)(AppendBatchPayload(nil, recs))
	out, rest, err := DecodeBatchInto(b, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("slab remainder %d, want 0", len(rest))
	}
	// Appending to the first point's slice must not clobber the second
	// (full-slice-expression capacity clamp).
	p0 := append(out[0].Point, 99)
	if out[1].Point[0] != 3 {
		t.Fatalf("slab append clobbered next point: %v (appended %v)", out[1].Point, p0)
	}
}

// TestDecodeBounds: structurally absurd payloads are rejected without
// allocation explosions.
func TestDecodeBounds(t *testing.T) {
	// Scan with a count field claiming more intervals than the bytes hold.
	sb := mustAppend(t)(AppendScanRequest(nil, ScanRequest{Ivs: []query.Interval{{Lo: 1, Hi: 2}}}))
	sb[8] = 0xff // count = 255, body holds 1
	if _, err := DecodeScanRequest(sb); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("inflated scan count: %v", err)
	}
	bb := mustAppend(t)(AppendBatchPayload(nil, []store.Record{{Point: grid.Point{1}, Payload: 0}}))
	bb[0] = 0xff
	if _, err := DecodeBatchPayload(bb); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("inflated batch count: %v", err)
	}
	if _, err := DecodeQueryRequest(make([]byte, 9+8*200)); !errors.Is(err, ErrCorrupt) {
		t.Fatal("200-dim query accepted")
	}
}
