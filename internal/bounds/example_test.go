package bounds_test

import (
	"fmt"

	"repro/internal/bounds"
)

func ExampleNNAvgLowerBound() {
	// Theorem 1 on a 2-d universe with n = 2^20 cells.
	fmt.Printf("%.4f\n", bounds.NNAvgLowerBound(2, 10))
	// Output: 341.3333
}

func ExampleNNAsymptote() {
	// Theorem 2/3: (1/d)·n^(1−1/d). The ratio to the Theorem 1 bound is the
	// paper's 1.5 optimality factor.
	asym := bounds.NNAsymptote(2, 10)
	lb := bounds.NNAvgLowerBound(2, 10)
	fmt.Printf("%.0f %.4f\n", asym, asym/lb)
	// Output: 512 1.5000
}

func ExampleZLambdaExact() {
	// Lemma 5's exact per-dimension sums on the 2×2 grid.
	fmt.Println(bounds.ZLambdaExact(2, 1, 1), bounds.ZLambdaExact(2, 1, 2))
	// Output: 4 2
}

func ExampleSAPrimeIdentity() {
	// Lemma 2 for n = 64: 63·64·65/3.
	fmt.Println(bounds.SAPrimeIdentity(64))
	// Output: 87360
}

func ExampleSimpleDMaxExact() {
	// Proposition 2: Dmax(S) = n^(1−1/d), exactly.
	fmt.Printf("%.0f\n", bounds.SimpleDMaxExact(3, 4))
	// Output: 256
}
