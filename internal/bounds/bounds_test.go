package bounds

import (
	"math"
	"math/big"
	"testing"
)

func TestSideAndN(t *testing.T) {
	if Side(3) != 8 || N(2, 3) != 64 || N(3, 2) != 64 || NPow1m1d(2, 3) != 8 {
		t.Fatal("size helpers wrong")
	}
}

func TestNNAvgLowerBoundFormula(t *testing.T) {
	// d=2, k=3: n=64, bound = (2/6)(64^(1/2) − 64^(-3/2)) = (1/3)(8 − 1/512).
	got := NNAvgLowerBound(2, 3)
	want := (8.0 - 1.0/512.0) / 3.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("bound = %v, want %v", got, want)
	}
	if NNMaxLowerBound(2, 3) != got {
		t.Fatal("Prop 1 bound must equal Theorem 1 bound")
	}
}

func TestBoundBelowAsymptote(t *testing.T) {
	// The Theorem 1 bound must be strictly below the Z/simple asymptote, and
	// their ratio must approach exactly 1.5 (the paper's optimality factor).
	for d := 1; d <= 4; d++ {
		for k := 1; d*k <= 24; k++ {
			lb := NNAvgLowerBound(d, k)
			asym := NNAsymptote(d, k)
			if lb >= asym {
				t.Fatalf("d=%d k=%d: bound %v >= asymptote %v", d, k, lb, asym)
			}
		}
		// Large-k ratio → 1.5.
		k := 24 / d
		ratio := NNAsymptote(d, k) / NNAvgLowerBound(d, k)
		if math.Abs(ratio-OptimalityFactor) > 0.01 {
			t.Fatalf("d=%d k=%d: asymptote/bound = %v, want ≈ 1.5", d, k, ratio)
		}
	}
}

func TestLemma5LimitsSumToOne(t *testing.T) {
	// Σ_{i=1}^{d} 2^(d−i)/(2^d − 1) = 1, which is how Theorem 2's h1 limit
	// becomes 1/d · n^(2−1/d).
	for d := 1; d <= 8; d++ {
		var sum float64
		for i := 1; i <= d; i++ {
			sum += Lemma5Limit(d, i)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("d=%d: limits sum to %v", d, sum)
		}
	}
}

func TestZLambdaExactSmall(t *testing.T) {
	// 2×2 grid, hand-computed: Λ1 = 4, Λ2 = 2.
	if got := ZLambdaExact(2, 1, 1); got.Cmp(big.NewInt(4)) != 0 {
		t.Fatalf("Λ1(Z) on 2×2 = %v, want 4", got)
	}
	if got := ZLambdaExact(2, 1, 2); got.Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("Λ2(Z) on 2×2 = %v, want 2", got)
	}
	if got := ZLambdaExact(2, 0, 1); got.Sign() != 0 {
		t.Fatalf("Λ on single cell = %v, want 0", got)
	}
}

func TestZLambdaConvergesToLemma5Limit(t *testing.T) {
	for d := 1; d <= 3; d++ {
		for i := 1; i <= d; i++ {
			k := 18 / d
			lam, _ := new(big.Float).SetInt(ZLambdaExact(d, k, i)).Float64()
			norm := math.Pow(float64(N(d, k)), 2-1/float64(d))
			ratio := lam / norm
			want := Lemma5Limit(d, i)
			if math.Abs(ratio-want) > 0.02*want+1e-9 {
				t.Fatalf("d=%d i=%d k=%d: Λ_i/n^(2−1/d) = %v, limit %v", d, i, k, ratio, want)
			}
		}
	}
}

func TestZSumNNExactIsSumOfLambdas(t *testing.T) {
	d, k := 3, 3
	want := new(big.Int)
	for i := 1; i <= d; i++ {
		want.Add(want, ZLambdaExact(d, k, i))
	}
	if got := ZSumNNExact(d, k); got.Cmp(want) != 0 {
		t.Fatalf("ZSumNNExact = %v, want %v", got, want)
	}
}

func TestSimpleDAvgExactHandCases(t *testing.T) {
	// d=1: Davg = 1 exactly for every k >= 1.
	for k := 1; k <= 10; k++ {
		if got := SimpleDAvgExact(1, k); math.Abs(got-1) > 1e-12 {
			t.Fatalf("1-d simple Davg(k=%d) = %v, want 1", k, got)
		}
	}
	// 2×2 grid: every cell has δavg = (1+2)/2 = 1.5.
	if got := SimpleDAvgExact(2, 1); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("simple Davg on 2×2 = %v, want 1.5", got)
	}
	// k=0: single cell.
	if got := SimpleDAvgExact(3, 0); got != 0 {
		t.Fatalf("simple Davg on single cell = %v", got)
	}
}

func TestSimpleDAvgConvergesToAsymptote(t *testing.T) {
	// Theorem 3: Davg(S)·d/n^(1−1/d) → 1.
	for d := 1; d <= 4; d++ {
		k := 20 / d
		ratio := SimpleDAvgExact(d, k) / NNAsymptote(d, k)
		if math.Abs(ratio-1) > 0.05 {
			t.Fatalf("d=%d k=%d: Davg(S)/asymptote = %v", d, k, ratio)
		}
	}
}

func TestSimpleDMaxExact(t *testing.T) {
	if got := SimpleDMaxExact(2, 3); got != 8 {
		t.Fatalf("Dmax(S) on 8×8 = %v, want 8", got)
	}
	if got := SimpleDMaxExact(3, 0); got != 0 {
		t.Fatalf("Dmax(S) single cell = %v", got)
	}
}

func TestAllPairsBounds(t *testing.T) {
	// d=2, k=3: n=64, s=8. Manhattan LB = 65/(3·2·7), Euclidean = 65/(3√2·7).
	if got, want := AllPairsManhattanLB(2, 3), 65.0/42.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Manhattan LB = %v, want %v", got, want)
	}
	if got, want := AllPairsEuclideanLB(2, 3), 65.0/(3*math.Sqrt2*7); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Euclidean LB = %v, want %v", got, want)
	}
	// Proposition ordering: Euclidean bound is √d/d = 1/√d weaker... i.e.
	// larger than the Manhattan bound by a factor √d.
	if AllPairsEuclideanLB(3, 2) <= AllPairsManhattanLB(3, 2) {
		t.Fatal("Euclidean LB should exceed Manhattan LB")
	}
	// Proposition 4 UBs.
	if SimpleAllPairsManhattanUB(2, 3) != 8 {
		t.Fatal("simple all-pairs Manhattan UB wrong")
	}
	if math.Abs(SimpleAllPairsEuclideanUB(2, 3)-8*math.Sqrt2) > 1e-12 {
		t.Fatal("simple all-pairs Euclidean UB wrong")
	}
	// The lower bound must sit below the simple curve's upper bound.
	for d := 1; d <= 4; d++ {
		for k := 1; d*k <= 20; k++ {
			if AllPairsManhattanLB(d, k) > SimpleAllPairsManhattanUB(d, k)+1e-9 {
				t.Fatalf("d=%d k=%d: Manhattan LB above simple UB", d, k)
			}
		}
	}
}

func TestSAPrimeIdentity(t *testing.T) {
	// n=4: 3·4·5/3 = 20.
	if got := SAPrimeIdentity(4); got.Cmp(big.NewInt(20)) != 0 {
		t.Fatalf("S_A'(4) = %v, want 20", got)
	}
	// Large n exceeds uint64: n = 2^22 → ~2.6e19·… just check positivity and
	// divisibility reasoning via recomputation.
	n := uint64(1) << 22
	got := SAPrimeIdentity(n)
	want := new(big.Int).SetUint64(n - 1)
	want.Mul(want, new(big.Int).SetUint64(n))
	want.Mul(want, new(big.Int).SetUint64(n+1))
	want.Div(want, big.NewInt(3))
	if got.Cmp(want) != 0 {
		t.Fatal("SAPrimeIdentity large-n mismatch")
	}
}

func TestRandomCurveExpectedDelta(t *testing.T) {
	if got := RandomCurveExpectedDelta(64); math.Abs(got-65.0/3.0) > 1e-12 {
		t.Fatalf("expected delta = %v", got)
	}
}

func TestBinom(t *testing.T) {
	cases := []struct {
		a, b int
		want uint64
	}{{5, 0, 1}, {5, 2, 10}, {5, 5, 1}, {5, 6, 0}, {5, -1, 0}, {10, 3, 120}, {20, 10, 184756}}
	for _, tc := range cases {
		if got := binom(tc.a, tc.b); got != tc.want {
			t.Fatalf("binom(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestGrayConstantsConsistency(t *testing.T) {
	for d := 2; d <= 8; d++ {
		var sum float64
		for i := 1; i <= d; i++ {
			sum += GrayLambdaLimit(d, i)
		}
		if math.Abs(sum-GrayAsymptoticConstant(d)) > 1e-12 {
			t.Fatalf("d=%d: Σ Gray limits %v != constant %v", d, sum, GrayAsymptoticConstant(d))
		}
	}
	if math.Abs(GrayAsymptoticConstant(2)-1.5) > 1e-12 {
		t.Fatal("C(gray,2) != 3/2")
	}
	if math.Abs(GrayAsymptoticConstant(3)-7.0/6) > 1e-12 {
		t.Fatal("C(gray,3) != 7/6")
	}
}
