// Package bounds implements the closed-form quantities proved in the paper:
// the universal lower bounds on stretch (Theorem 1, Propositions 1 and 3),
// the asymptotic stretch of the Z and simple curves (Theorems 2 and 3), the
// per-dimension Z-curve sums of Lemma 5 in exact finite-n form, the exact
// finite-n average NN-stretch of the simple curve, and the Lemma 2 identity.
//
// Everywhere, d is the number of dimensions, k the log2 side length,
// s = 2^k the side length, and n = 2^(k·d) the universe size, matching §III
// of the paper.
package bounds

import (
	"math"
	"math/big"

	"repro/internal/grid"
)

// Side returns s = 2^k.
func Side(k int) uint64 { return 1 << uint(k) }

// N returns n = 2^(k·d).
func N(d, k int) uint64 { return 1 << uint(d*k) }

// NPow1m1d returns n^(1−1/d) = s^(d−1) exactly.
func NPow1m1d(d, k int) uint64 { return grid.Pow64(Side(k), d-1) }

// NNAvgLowerBound returns the Theorem 1 lower bound on the average-average
// nearest-neighbor stretch of any SFC:
//
//	Davg(π) ≥ (2/(3d)) · (n^(1−1/d) − n^(−1−1/d)).
func NNAvgLowerBound(d, k int) float64 {
	n := float64(N(d, k))
	e := 1 - 1/float64(d)
	return 2 / (3 * float64(d)) * (math.Pow(n, e) - math.Pow(n, -1-1/float64(d)))
}

// NNMaxLowerBound returns the Proposition 1 lower bound on the
// average-maximum NN-stretch; Dmax(π) ≥ Davg(π), so it equals the Theorem 1
// bound.
func NNMaxLowerBound(d, k int) float64 { return NNAvgLowerBound(d, k) }

// NNAsymptote returns (1/d)·n^(1−1/d): the common asymptotic
// average-average NN-stretch of the Z curve (Theorem 2) and the simple
// curve (Theorem 3).
func NNAsymptote(d, k int) float64 {
	return float64(NPow1m1d(d, k)) / float64(d)
}

// OptimalityFactor is the paper's headline constant: the Z and simple
// curves' asymptotic Davg is exactly 1.5 times the Theorem 1 lower bound,
// irrespective of d.
const OptimalityFactor = 1.5

// Lemma5Limit returns the limit of Λ_i(Z)/n^(2−1/d) as n → ∞ for the
// 1-based dimension i (Lemma 5): 2^(d−i)/(2^d − 1).
func Lemma5Limit(d, i int) float64 {
	return float64(uint64(1)<<uint(d-i)) / float64(uint64(1)<<uint(d)-1)
}

// ZLambdaExact returns the exact finite-n value of Λ_i(Z) for the 1-based
// dimension i, from the decomposition in the proof of Lemma 5:
//
//	Λ_i(Z) = Σ_{j=1}^{k} |G_{i,j}| · (2^(jd−i) − Σ_{ℓ=1}^{j−1} 2^(ℓd−i)),
//	|G_{i,j}| = 2^(k−j) · n^(1−1/d).
//
// The result is returned as a big.Int since Λ_i grows like n^(2−1/d).
func ZLambdaExact(d, k, i int) *big.Int {
	total := new(big.Int)
	if k == 0 {
		return total
	}
	perOther := new(big.Int).Lsh(big.NewInt(1), uint(k*(d-1))) // n^(1-1/d)
	for j := 1; j <= k; j++ {
		// Curve distance for pairs in G_{i,j}.
		dist := new(big.Int).Lsh(big.NewInt(1), uint(j*d-i))
		for l := 1; l <= j-1; l++ {
			dist.Sub(dist, new(big.Int).Lsh(big.NewInt(1), uint(l*d-i)))
		}
		// Count of pairs in G_{i,j}.
		count := new(big.Int).Lsh(big.NewInt(1), uint(k-j))
		count.Mul(count, perOther)
		total.Add(total, count.Mul(count, dist))
	}
	return total
}

// ZSumNNExact returns the exact Σ_{(α,β)∈NN_d} ΔZ(α,β) = Σ_i Λ_i(Z).
func ZSumNNExact(d, k int) *big.Int {
	total := new(big.Int)
	for i := 1; i <= d; i++ {
		total.Add(total, ZLambdaExact(d, k, i))
	}
	return total
}

// SimpleDAvgExact returns the exact finite-n Davg of the simple curve.
//
// For a cell whose set of "boundary dimensions" is B (coordinate 0 or s−1),
// the neighbor along dimension i sits at curve distance s^(i−1), dimensions
// in B contribute one neighbor and the rest two, so
//
//	δavg = (2 Σ_{i∉B} s^(i−1) + Σ_{i∈B} s^(i−1)) / (2d − |B|).
//
// Summing over cells grouped by |B| (there are C(d,m)·2^m·(s−2)^(d−m) cells
// with |B| = m, and the coordinate sums telescope through the binomials):
//
//	Davg(S) = (T/n) Σ_{m=0}^{d} [2^m (s−2)^(d−m) / (2d−m)] ·
//	          (2·C(d−1,m) + C(d−1,m−1)),
//
// with T = Σ_{i=1}^{d} s^(i−1) = (n−1)/(s−1). Theorem 3 is the statement
// that this quantity is asymptotically (1/d)·n^(1−1/d).
func SimpleDAvgExact(d, k int) float64 {
	s := float64(Side(k))
	n := float64(N(d, k))
	if k == 0 {
		return 0 // single cell, no neighbors
	}
	t := (n - 1) / (s - 1)
	var sum float64
	for m := 0; m <= d; m++ {
		w := 2*binom(d-1, m) + binom(d-1, m-1)
		if w == 0 {
			continue
		}
		cells := math.Pow(2, float64(m)) * math.Pow(s-2, float64(d-m))
		sum += cells / float64(2*d-m) * float64(w)
	}
	return t / n * sum
}

// SimpleDMaxExact returns the exact Dmax of the simple curve
// (Proposition 2): n^(1−1/d), for k >= 1.
func SimpleDMaxExact(d, k int) float64 {
	if k == 0 {
		return 0
	}
	return float64(NPow1m1d(d, k))
}

// AllPairsManhattanLB returns the Proposition 3 lower bound on the average
// all-pairs stretch under the Manhattan metric, for any SFC:
//
//	str_avg,M(π) ≥ (1/(3d)) · (n+1)/(s−1).
func AllPairsManhattanLB(d, k int) float64 {
	n := float64(N(d, k))
	s := float64(Side(k))
	return (n + 1) / (3 * float64(d) * (s - 1))
}

// AllPairsEuclideanLB returns the Proposition 3 lower bound under the
// Euclidean metric: str_avg,E(π) ≥ (1/(3√d)) · (n+1)/(s−1).
func AllPairsEuclideanLB(d, k int) float64 {
	n := float64(N(d, k))
	s := float64(Side(k))
	return (n + 1) / (3 * math.Sqrt(float64(d)) * (s - 1))
}

// SimpleAllPairsManhattanUB returns the Proposition 4 upper bound on the
// simple curve's average all-pairs Manhattan stretch: n^(1−1/d). By
// Lemma 7 the bound in fact holds pair by pair.
func SimpleAllPairsManhattanUB(d, k int) float64 {
	return float64(NPow1m1d(d, k))
}

// SimpleAllPairsEuclideanUB returns the Proposition 4 upper bound under the
// Euclidean metric: √2 · n^(1−1/d).
func SimpleAllPairsEuclideanUB(d, k int) float64 {
	return math.Sqrt2 * float64(NPow1m1d(d, k))
}

// SAPrimeIdentity returns Lemma 2's value of S_{A′}(π) for any SFC π over
// n cells: (n−1)·n·(n+1)/3.
func SAPrimeIdentity(n uint64) *big.Int {
	bn := new(big.Int).SetUint64(n)
	r := new(big.Int).SetUint64(n - 1)
	r.Mul(r, bn)
	r.Mul(r, new(big.Int).SetUint64(n+1))
	return r.Div(r, big.NewInt(3))
}

// RandomCurveExpectedDelta returns the expected curve distance between two
// distinct cells under a uniformly random bijection: (n+1)/3. It follows
// from Lemma 2 — the average of Δπ over ordered pairs is S_{A′}/(n(n−1)) —
// and is the baseline against which the structured curves' Θ(n^(1−1/d))
// NN-stretch should be compared.
func RandomCurveExpectedDelta(n uint64) float64 {
	return (float64(n) + 1) / 3
}

// binom returns C(a, b) as uint64, 0 when b < 0 or b > a.
func binom(a, b int) uint64 {
	if b < 0 || b > a {
		return 0
	}
	if b > a-b {
		b = a - b
	}
	r := uint64(1)
	for i := 0; i < b; i++ {
		r = r * uint64(a-i) / uint64(i+1)
	}
	return r
}

// GrayLambdaLimit returns the conjectured limit of Λ_i(Gray)/n^(2−1/d) for
// the 1-based dimension i and d >= 2:
//
//	Λ_i(Gray)/n^(2−1/d) → 2^(d−i−1)/(2^(d−1) − 1).
//
// This is an empirical contribution of the reproduction (experiment
// ext-constants and TestGrayLambdaLimitConjecture): the harness measures
// the per-dimension sums of the Gray-code curve converging to these values
// at every d ∈ {2,3,4}, mirroring Lemma 5's result for the Z curve. A proof
// by the paper's Λ-sum technique appears routine (the Gray rank difference
// of a G_{i,j} pair telescopes like the Z key difference, with the carry
// block contributing once more at the top bit).
func GrayLambdaLimit(d, i int) float64 {
	return float64(uint64(1)<<uint(d-i)) / (2 * float64(uint64(1)<<uint(d-1)-1))
}

// GrayAsymptoticConstant returns the conjectured asymptotic stretch
// constant of the Gray-code curve for d >= 2:
//
//	C(Gray, d) = lim Davg(Gray)·d/n^(1−1/d) = (2^d − 1)/(2^d − 2),
//
// the sum of the GrayLambdaLimit values — i.e. the Gray curve is worse than
// the Z curve by exactly 1 + 1/(2^d − 2), a factor that vanishes as the
// dimension grows.
func GrayAsymptoticConstant(d int) float64 {
	return float64(uint64(1)<<uint(d)-1) / float64(uint64(1)<<uint(d)-2)
}
