package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/wire"
)

// DefaultDialTimeout bounds each binary-transport connection attempt.
const DefaultDialTimeout = 2 * time.Second

// ErrTransportClosed reports a request issued after Close.
var ErrTransportClosed = errors.New("client: transport closed")

// BinaryTransport speaks the daemon's binary wire protocol
// (internal/wire): persistent TCP connections, request pipelining with
// id-demultiplexed responses, and chunked streaming of scan results. It is
// safe for concurrent use; requests round-robin over the connection pool
// and pipeline within each connection.
type BinaryTransport struct {
	// Addr is the daemon's wire listener, e.g. "127.0.0.1:7173"
	// (sfcserved -wire-addr).
	Addr string
	// Conns is the connection-pool size (default 2). More connections help
	// only when single-connection write bandwidth saturates — pipelining
	// already overlaps requests on one connection.
	Conns int
	// DialTimeout bounds each connection attempt (default
	// DefaultDialTimeout).
	DialTimeout time.Duration
	// Compress asks the server to deflate large response frames
	// (wire.FlagCompress on every request). Enable it only against a
	// daemon whose /wireinfo advertised compression — an older daemon
	// rejects the flags byte as a bad request. Decompression is
	// transparent: batches arrive decoded either way.
	Compress bool

	initOnce sync.Once
	slots    []*connSlot
	rr       atomic.Uint64
	closed   atomic.Bool
}

// connSlot lazily holds one persistent connection; a dead connection is
// redialed by the next request routed to the slot.
type connSlot struct {
	mu sync.Mutex
	bc *binConn
}

func (t *BinaryTransport) init() {
	t.initOnce.Do(func() {
		n := t.Conns
		if n <= 0 {
			n = 2
		}
		t.slots = make([]*connSlot, n)
		for i := range t.slots {
			t.slots[i] = &connSlot{}
		}
	})
}

// conn returns a live pooled connection, dialing if the slot is empty or
// its connection died. Dial failures are retryable: the daemon may be
// restarting.
func (t *BinaryTransport) conn(ctx context.Context) (*binConn, error) {
	if t.closed.Load() {
		return nil, ErrTransportClosed
	}
	t.init()
	s := t.slots[t.rr.Add(1)%uint64(len(t.slots))]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bc != nil && s.bc.alive() {
		return s.bc, nil
	}
	dt := t.DialTimeout
	if dt <= 0 {
		dt = DefaultDialTimeout
	}
	d := net.Dialer{Timeout: dt}
	nc, err := d.DialContext(ctx, "tcp", t.Addr)
	if err != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("client: %w", ctx.Err())
		}
		return nil, retryable(fmt.Errorf("client: dial %s: %w", t.Addr, err))
	}
	s.bc = newBinConn(nc)
	return s.bc, nil
}

// Query implements Transport: one pipelined box query, response stream
// drained into a buffered QueryResponse.
func (t *BinaryTransport) Query(ctx context.Context, b query.Box, timeout time.Duration) (server.QueryResponse, error) {
	st, err := t.QueryStream(ctx, b, timeout)
	if err != nil {
		return server.QueryResponse{}, err
	}
	defer st.Close()
	return st.Collect()
}

// QueryStream implements Transport: a box query whose record batches arrive
// in curve order while the server is still scanning later intervals.
func (t *BinaryTransport) QueryStream(ctx context.Context, b query.Box, timeout time.Duration) (*Stream, error) {
	eff, err := effectiveTimeout(ctx, timeout)
	if err != nil {
		return nil, err
	}
	payload, err := wire.AppendQueryRequest(nil, wire.QueryRequest{Lo: b.Lo, Hi: b.Hi, Timeout: eff, Compress: t.Compress})
	if err != nil {
		return nil, err
	}
	return t.openStream(ctx, wire.TQuery, payload)
}

// Scan implements Transport: a streaming scan drained into a buffered
// QueryResponse.
func (t *BinaryTransport) Scan(ctx context.Context, ivs []query.Interval, timeout time.Duration) (server.QueryResponse, error) {
	st, err := t.ScanStream(ctx, ivs, timeout)
	if err != nil {
		return server.QueryResponse{}, err
	}
	defer st.Close()
	return st.Collect()
}

// ScanStream implements Transport: records arrive in curve-order batches
// while the server is still scanning later intervals.
func (t *BinaryTransport) ScanStream(ctx context.Context, ivs []query.Interval, timeout time.Duration) (*Stream, error) {
	eff, err := effectiveTimeout(ctx, timeout)
	if err != nil {
		return nil, err
	}
	payload, err := wire.AppendScanRequest(nil, wire.ScanRequest{Ivs: ivs, Timeout: eff, Compress: t.Compress})
	if err != nil {
		return nil, err
	}
	return t.openStream(ctx, wire.TScan, payload)
}

// Put implements Transport: one TPut frame, answered by a TWriteAck.
func (t *BinaryTransport) Put(ctx context.Context, rec store.Record, timeout time.Duration) (server.WriteResponse, error) {
	return t.doWrite(ctx, wire.TPut, rec, timeout)
}

// Delete implements Transport: one TDelete frame, answered by a TWriteAck.
func (t *BinaryTransport) Delete(ctx context.Context, rec store.Record, timeout time.Duration) (server.WriteResponse, error) {
	return t.doWrite(ctx, wire.TDelete, rec, timeout)
}

// Flush implements Transport: one TFlush frame, answered by a TWriteAck.
func (t *BinaryTransport) Flush(ctx context.Context, timeout time.Duration) (server.WriteResponse, error) {
	eff, err := effectiveTimeout(ctx, timeout)
	if err != nil {
		return server.WriteResponse{}, err
	}
	payload, err := wire.AppendFlushRequest(nil, wire.FlushRequest{Timeout: eff})
	if err != nil {
		return server.WriteResponse{}, err
	}
	return t.roundTripWrite(ctx, wire.TFlush, payload)
}

// doWrite encodes and round-trips one TPut/TDelete request.
func (t *BinaryTransport) doWrite(ctx context.Context, ftype uint8, rec store.Record, timeout time.Duration) (server.WriteResponse, error) {
	eff, err := effectiveTimeout(ctx, timeout)
	if err != nil {
		return server.WriteResponse{}, err
	}
	payload, err := wire.AppendWriteRequest(nil, wire.WriteRequest{Point: rec.Point, Payload: rec.Payload, Timeout: eff})
	if err != nil {
		return server.WriteResponse{}, err
	}
	return t.roundTripWrite(ctx, ftype, payload)
}

// roundTripWrite sends one write frame and waits for its TWriteAck,
// classifying failures by whether the frame can have reached the server:
// dial failures and dead-before-send connections stay plainly retryable,
// while any failure after the frame hit the socket — connection death,
// context expiry — is a *MaybeAppliedError. A server answering with a
// TError decides the classification itself: refusal codes it sends before
// touching state (shed, draining, read-only) are the server marking the
// attempt safe to repeat or terminal; deadline and internal failures are
// maybe-applied.
func (t *BinaryTransport) roundTripWrite(ctx context.Context, ftype uint8, payload []byte) (server.WriteResponse, error) {
	bc, err := t.conn(ctx)
	if err != nil {
		return server.WriteResponse{}, err
	}
	pr, sent, err := bc.sendClassified(ftype, payload)
	if err != nil {
		if sent {
			return server.WriteResponse{}, maybeApplied(err)
		}
		return server.WriteResponse{}, err
	}
	defer pr.cancel()
	f, err := pr.wait(ctx, bc)
	if err != nil {
		// The frame left the client; a dead connection or an expired
		// context no longer proves the server did not apply it.
		var re *RetryableError
		if errors.As(err, &re) {
			err = re.Err
		}
		return server.WriteResponse{}, maybeApplied(err)
	}
	switch f.Type {
	case wire.TWriteAck:
		ack, err := wire.DecodeWriteAckPayload(f.Payload)
		if err != nil {
			bc.fail(err)
			return server.WriteResponse{}, maybeApplied(err)
		}
		return server.WriteResponse{OK: true, Acked: ack.Acked, Required: ack.Required}, nil
	case wire.TError:
		return server.WriteResponse{}, writeErrorFromFrame(bc, f)
	default:
		err := fmt.Errorf("client: unexpected frame type 0x%02x answering write", f.Type)
		bc.fail(err)
		return server.WriteResponse{}, maybeApplied(err)
	}
}

// writeErrorFromFrame maps a write-answering TError to the client's error
// vocabulary. Unlike errorFromFrame, ambiguity matters here: only codes
// the server guarantees were raised before touching the WAL may come back
// retryable.
func writeErrorFromFrame(bc *binConn, f wire.Frame) error {
	e, err := wire.DecodeErrorPayload(f.Payload)
	if err != nil {
		bc.fail(err)
		return maybeApplied(err)
	}
	var hint time.Duration = -1
	if e.RetryAfterSec >= 0 {
		hint = time.Duration(e.RetryAfterSec) * time.Second
	}
	switch e.Code {
	case wire.CodeOverloaded:
		return &RetryableError{RetryAfter: hint, Err: fmt.Errorf("%w: %s", ErrOverloaded, e.Msg)}
	case wire.CodeUnavailable:
		return &RetryableError{RetryAfter: hint, Err: fmt.Errorf("%w: %s", ErrUnavailable, e.Msg)}
	case wire.CodeReadOnly:
		return fmt.Errorf("%w: %s", ErrReadOnly, e.Msg)
	case wire.CodeBadRequest:
		return fmt.Errorf("client: server rejected write: %s", e.Msg)
	case wire.CodeDeadline:
		return maybeApplied(fmt.Errorf("client: server deadline exceeded: %s", e.Msg))
	default:
		return maybeApplied(fmt.Errorf("client: server error: %s", e.Msg))
	}
}

// Ping round-trips a TPing frame, reporting the daemon's readiness over
// the binary listener.
func (t *BinaryTransport) Ping(ctx context.Context) (bool, error) {
	bc, err := t.conn(ctx)
	if err != nil {
		return false, err
	}
	pr, err := bc.send(wire.TPing, nil)
	if err != nil {
		return false, err
	}
	defer pr.cancel()
	f, err := pr.wait(ctx, bc)
	if err != nil {
		return false, err
	}
	if f.Type != wire.TPong {
		bc.fail(fmt.Errorf("client: %v frame answering ping", f.Type))
		return false, retryable(fmt.Errorf("client: unexpected frame type 0x%02x answering ping", f.Type))
	}
	p, err := wire.DecodePongPayload(f.Payload)
	if err != nil {
		bc.fail(err)
		return false, err
	}
	return p.Ready, nil
}

// Close implements Transport: closes every pooled connection. In-flight
// requests fail with a retryable connection error.
func (t *BinaryTransport) Close() error {
	t.closed.Store(true)
	t.init()
	for _, s := range t.slots {
		s.mu.Lock()
		if s.bc != nil {
			s.bc.fail(ErrTransportClosed)
			s.bc = nil
		}
		s.mu.Unlock()
	}
	return nil
}

// openStream sends one request frame and waits for the first response
// frame, so retryable refusals (shed, draining) surface here — before a
// Stream exists — and the Client's retry loop can repeat the attempt. The
// first accepted frame is pushed back into the returned Stream.
func (t *BinaryTransport) openStream(ctx context.Context, ftype uint8, payload []byte) (*Stream, error) {
	bc, err := t.conn(ctx)
	if err != nil {
		return nil, err
	}
	pr, err := bc.send(ftype, payload)
	if err != nil {
		return nil, err
	}
	first, err := pr.wait(ctx, bc)
	if err != nil {
		pr.cancel()
		return nil, err
	}
	if first.Type == wire.TError {
		pr.cancel()
		return nil, errorFromFrame(bc, first)
	}
	return newBinaryStream(ctx, bc, pr, first), nil
}

// newBinaryStream wraps a demultiplexed response-frame sequence as a
// Stream. pushback is the already-received first frame.
func newBinaryStream(ctx context.Context, bc *binConn, pr *pendingReq, pushback wire.Frame) *Stream {
	havePushback := true
	var slab []uint32
	s := &Stream{stop: pr.cancel}
	s.recv = func(s *Stream) ([]store.Record, error) {
		var f wire.Frame
		if havePushback {
			f, havePushback = pushback, false
		} else {
			var err error
			f, err = pr.wait(ctx, bc)
			if err != nil {
				return nil, err
			}
		}
		switch f.Type {
		case wire.TBatch:
			var recs []store.Record
			var err error
			recs, slab, err = wire.DecodeBatchInto(f.Payload, nil, slab)
			if err != nil {
				bc.fail(err)
				return nil, err
			}
			return recs, nil
		case wire.TTrailer:
			tr, err := wire.DecodeTrailerPayload(f.Payload)
			if err != nil {
				bc.fail(err)
				return nil, err
			}
			s.trailer, s.haveTrailer = tr, true
			return nil, io.EOF
		case wire.TError:
			return nil, errorFromFrame(bc, f)
		default:
			err := fmt.Errorf("client: unexpected frame type 0x%02x in scan stream", f.Type)
			bc.fail(err)
			return nil, err
		}
	}
	return s
}

// errorFromFrame maps a TError frame to the client's error vocabulary:
// shed and draining answers are retryable with the server's hint; bad
// requests, deadline expiries, and internal failures are terminal.
func errorFromFrame(bc *binConn, f wire.Frame) error {
	e, err := wire.DecodeErrorPayload(f.Payload)
	if err != nil {
		bc.fail(err)
		return err
	}
	var hint time.Duration = -1
	if e.RetryAfterSec >= 0 {
		hint = time.Duration(e.RetryAfterSec) * time.Second
	}
	switch e.Code {
	case wire.CodeOverloaded:
		return &RetryableError{RetryAfter: hint, Err: fmt.Errorf("%w: %s", ErrOverloaded, e.Msg)}
	case wire.CodeUnavailable:
		return &RetryableError{RetryAfter: hint, Err: fmt.Errorf("%w: %s", ErrUnavailable, e.Msg)}
	case wire.CodeBadRequest:
		return fmt.Errorf("client: server rejected request: %s", e.Msg)
	case wire.CodeDeadline:
		return fmt.Errorf("client: server deadline exceeded: %s", e.Msg)
	default:
		return fmt.Errorf("client: server error: %s", e.Msg)
	}
}

// effectiveTimeout resolves the server-side deadline to request: the call
// option's timeout, clamped by the context's remaining budget so the
// server never works past the moment the client stops listening.
func effectiveTimeout(ctx context.Context, opt time.Duration) (time.Duration, error) {
	eff := opt
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl)
		if rem <= 0 {
			return 0, fmt.Errorf("client: %w", context.DeadlineExceeded)
		}
		if eff == 0 || rem < eff {
			eff = rem
		}
	}
	return eff, nil
}

// binConn is one persistent pipelined connection: a writer-side mutex
// serializes frame writes, a reader goroutine demultiplexes response
// frames to pending requests by id, and any I/O or framing error is sticky
// — it fails every pending request and retires the connection.
type binConn struct {
	c    net.Conn
	wmu  sync.Mutex // serializes whole-frame writes
	dead chan struct{}

	mu      sync.Mutex // guards pending, err
	pending map[uint64]*pendingReq
	err     error

	nextID atomic.Uint64
}

// pendingReq is one in-flight request's demultiplexing endpoint.
type pendingReq struct {
	id     uint64
	bc     *binConn
	ch     chan wire.Frame
	done   chan struct{}
	cancel func()
}

func newBinConn(c net.Conn) *binConn {
	bc := &binConn{
		c:       c,
		dead:    make(chan struct{}),
		pending: make(map[uint64]*pendingReq),
	}
	go bc.readLoop()
	return bc
}

func (bc *binConn) alive() bool {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	return bc.err == nil
}

// fail retires the connection: records the first error, closes the socket
// (unblocking the reader), and signals every pending request.
func (bc *binConn) fail(err error) {
	bc.mu.Lock()
	if bc.err == nil {
		bc.err = err
		close(bc.dead)
		bc.c.Close()
	}
	bc.mu.Unlock()
}

func (bc *binConn) failure() error {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	if bc.err == nil {
		return errors.New("client: connection failed")
	}
	return bc.err
}

// readLoop demultiplexes response frames to pending requests until the
// connection dies. Frames for unregistered ids (canceled requests) are
// dropped.
func (bc *binConn) readLoop() {
	br := bufio.NewReaderSize(bc.c, 1<<16)
	for {
		f, err := wire.ReadFrame(br)
		if err != nil {
			bc.fail(fmt.Errorf("client: wire read: %w", err))
			return
		}
		bc.mu.Lock()
		pr := bc.pending[f.ID]
		bc.mu.Unlock()
		if pr == nil {
			continue
		}
		select {
		case pr.ch <- f:
		case <-pr.done:
		case <-bc.dead:
			return
		}
	}
}

// send registers a fresh request id and writes one request frame.
// Write failures retire the connection and are retryable — the request
// may not have reached the server, and reads are idempotent.
func (bc *binConn) send(ftype uint8, payload []byte) (*pendingReq, error) {
	pr, _, err := bc.sendClassified(ftype, payload)
	return pr, err
}

// sendClassified is send with the information write callers need: sent
// reports whether the frame write was attempted on the socket — false
// means the request provably never left this process, true with an error
// means its fate is unknown. The error itself is retryable either way; the
// write path upgrades sent-but-failed attempts to *MaybeAppliedError.
func (bc *binConn) sendClassified(ftype uint8, payload []byte) (pr *pendingReq, sent bool, err error) {
	id := bc.nextID.Add(1)
	pr = &pendingReq{
		id:   id,
		bc:   bc,
		ch:   make(chan wire.Frame, 32),
		done: make(chan struct{}),
	}
	var once sync.Once
	pr.cancel = func() {
		once.Do(func() {
			close(pr.done)
			bc.mu.Lock()
			delete(bc.pending, id)
			bc.mu.Unlock()
		})
	}
	bc.mu.Lock()
	if bc.err != nil {
		err := bc.err
		bc.mu.Unlock()
		return nil, false, retryable(err)
	}
	bc.pending[id] = pr
	bc.mu.Unlock()

	buf := wire.AppendFrame(nil, wire.Frame{Type: ftype, ID: id, Payload: payload})
	bc.wmu.Lock()
	_, werr := bc.c.Write(buf)
	bc.wmu.Unlock()
	if werr != nil {
		bc.fail(fmt.Errorf("client: wire write: %w", werr))
		pr.cancel()
		return nil, true, retryable(werr)
	}
	return pr, true, nil
}

// wait blocks for the request's next response frame.
func (pr *pendingReq) wait(ctx context.Context, bc *binConn) (wire.Frame, error) {
	select {
	case f := <-pr.ch:
		return f, nil
	case <-bc.dead:
		// Drain any frame racing with the death notification.
		select {
		case f := <-pr.ch:
			return f, nil
		default:
		}
		return wire.Frame{}, retryable(bc.failure())
	case <-ctx.Done():
		return wire.Frame{}, fmt.Errorf("client: %w", ctx.Err())
	}
}
