package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestHedgedDoesNotChargePrimaryBudget is the retry-accounting regression
// test: a hedged request that falls over to a replica because the primary is
// slow must not consume the primary's per-node retry budget. The primary
// here is seeded slow — it answers, but only after the hedge has long since
// fired — and the replica answers immediately. After the race the primary's
// client must show exactly one attempt and zero retries, and a direct query
// against it must still have its full budget (observed as the same number of
// attempts a fresh client would make).
func TestHedgedDoesNotChargePrimaryBudget(t *testing.T) {
	release := make(chan struct{})
	var primaryHits atomic.Int64
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		primaryHits.Add(1)
		select {
		case <-release: // seeded slowness: wait until the test lets go
		case <-r.Context().Done():
			return
		}
		okBody(t, w)
	}))
	defer primary.Close()
	defer close(release)

	replica := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		okBody(t, w)
	}))
	defer replica.Close()

	pc := New(primary.URL, WithRetryPolicy(RetryPolicy{MaxAttempts: 3}))
	rc := New(replica.URL, WithRetryPolicy(RetryPolicy{MaxAttempts: 3}))
	h, err := NewHedged(5*time.Millisecond, pc, rc)
	if err != nil {
		t.Fatal(err)
	}

	resp, winner, err := h.Query(context.Background(), testBox(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if winner != 1 {
		t.Fatalf("winner = replica %d, want 1 (the fast replica)", winner)
	}
	if len(resp.Records) != 1 {
		t.Fatalf("winning response carried %d records, want 1", len(resp.Records))
	}
	if got := h.Stats().Hedges; got != 1 {
		t.Fatalf("hedges = %d, want 1", got)
	}

	// The invariant: the losing primary was asked once and charged nothing.
	ps := pc.Stats()
	if ps.Attempts != 1 {
		t.Fatalf("primary attempts = %d, want 1 — the hedge loss must not re-attempt", ps.Attempts)
	}
	if ps.Retries != 0 {
		t.Fatalf("primary retries = %d, want 0 — a canceled hedge loss must not be charged as a retry", ps.Retries)
	}
	if rs := rc.Stats(); rs.Attempts != 1 || rs.Retries != 0 {
		t.Fatalf("replica attempts/retries = %d/%d, want 1/0", rs.Attempts, rs.Retries)
	}
}

// TestHedgedFailoverKeepsBudgetsSeparate: a primary that fails outright
// (terminal 500) triggers an immediate failover; the replica's budget is its
// own — the failed primary attempt is not a replica retry, and the primary
// burns exactly the attempts its own policy allows.
func TestHedgedFailoverKeepsBudgetsSeparate(t *testing.T) {
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer primary.Close()
	replica := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		okBody(t, w)
	}))
	defer replica.Close()

	pc := New(primary.URL, WithRetryPolicy(RetryPolicy{MaxAttempts: 3}))
	rc := New(replica.URL, WithRetryPolicy(RetryPolicy{MaxAttempts: 3}))
	h, err := NewHedged(0, pc, rc) // no timer: replicas join only on failure
	if err != nil {
		t.Fatal(err)
	}

	_, winner, err := h.Query(context.Background(), testBox(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if winner != 1 {
		t.Fatalf("winner = %d, want 1", winner)
	}
	st := h.Stats()
	if st.Failovers != 1 || st.Hedges != 0 {
		t.Fatalf("failovers/hedges = %d/%d, want 1/0", st.Failovers, st.Hedges)
	}
	// A terminal 500 is not retryable: the primary spent one attempt, the
	// replica one, and neither budget leaked into the other.
	if ps := pc.Stats(); ps.Attempts != 1 || ps.Retries != 0 {
		t.Fatalf("primary attempts/retries = %d/%d, want 1/0", ps.Attempts, ps.Retries)
	}
	if rs := rc.Stats(); rs.Attempts != 1 || rs.Retries != 0 {
		t.Fatalf("replica attempts/retries = %d/%d, want 1/0", rs.Attempts, rs.Retries)
	}
}

// TestHedgedAllReplicasFail: when every replica fails terminally the hedged
// call reports the last failure rather than hanging.
func TestHedgedAllReplicasFail(t *testing.T) {
	mk := func() *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
		}))
	}
	a, b := mk(), mk()
	defer a.Close()
	defer b.Close()
	h, err := NewHedged(0, New(a.URL), New(b.URL))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.Query(context.Background(), testBox(t), 0); err == nil {
		t.Fatal("want error when every replica fails")
	}
}

// TestHedgedContextCancel: canceling the caller's context ends the race with
// a context error, not a replica-failure error.
func TestHedgedContextCancel(t *testing.T) {
	block := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer block.Close()
	h, err := NewHedged(0, New(block.URL))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, _, err = h.Query(ctx, testBox(t), 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestHedgedConstruction: the constructor rejects empty replica sets, nil
// replicas, and negative delays.
func TestHedgedConstruction(t *testing.T) {
	if _, err := NewHedged(0); err == nil {
		t.Fatal("empty replica set accepted")
	}
	if _, err := NewHedged(0, nil); err == nil {
		t.Fatal("nil replica accepted")
	}
	if _, err := NewHedged(-time.Millisecond, New("http://x")); err == nil {
		t.Fatal("negative delay accepted")
	}
}
