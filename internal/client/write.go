package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/service"
	"repro/internal/store"
	wiretext "repro/internal/wire/text"
)

// ErrReadOnly is the sentinel wrapped by errors reporting that the daemon
// was started without a durable directory (403 / CodeReadOnly); test with
// errors.Is. Read-only answers are terminal — the daemon will not grow a
// WAL by being asked again.
var ErrReadOnly = errors.New("client: server is read-only")

// MaybeAppliedError marks a failed write attempt whose request may have
// reached the server: the connection died after the frame left, the
// deadline expired server-side, or the server failed after entering the
// write path. The Client repeats these only for idempotent operations
// (Delete, Flush) — retrying a Put that may already sit in the WAL would
// insert a duplicate record. Refusals the server signals before touching
// any state (shed, draining, read-only) are never wrapped this way; they
// are the server marking the attempt idempotent-safe.
type MaybeAppliedError struct {
	Err error
}

func (e *MaybeAppliedError) Error() string {
	return fmt.Sprintf("client: write may have been applied: %v", e.Err)
}
func (e *MaybeAppliedError) Unwrap() error { return e.Err }

// maybeApplied wraps err as a possibly-applied write failure.
func maybeApplied(err error) *MaybeAppliedError { return &MaybeAppliedError{Err: err} }

// Put durably inserts rec through the daemon, acknowledged only after the
// owning shard's WAL has synced it. Retry semantics are deliberately
// asymmetric to reads: attempts the server refused before touching state
// (shed, draining) are retried within the policy's budget, but an attempt
// that may have been applied — connection death after the request left,
// server-side deadline — fails immediately with a *MaybeAppliedError,
// because a repeated put is a duplicate record. Callers that can tolerate
// duplicates may errors.As for MaybeAppliedError and re-issue themselves.
func (c *Client) Put(ctx context.Context, rec store.Record, opts ...CallOption) (server.WriteResponse, error) {
	o := applyCallOpts(opts)
	return doWriteRetry(ctx, c, false, func(ctx context.Context) (server.WriteResponse, error) {
		return c.tr.Put(ctx, rec, o.timeout)
	})
}

// Delete durably removes every stored instance equal to rec. Deletion is
// idempotent — removing an absent record is a no-op — so unlike Put,
// maybe-applied failures are retried within the policy's budget.
func (c *Client) Delete(ctx context.Context, rec store.Record, opts ...CallOption) (server.WriteResponse, error) {
	o := applyCallOpts(opts)
	return doWriteRetry(ctx, c, true, func(ctx context.Context) (server.WriteResponse, error) {
		return c.tr.Delete(ctx, rec, o.timeout)
	})
}

// Flush persists every shard's memtable into an on-disk run. Flushing is
// idempotent; maybe-applied failures are retried.
func (c *Client) Flush(ctx context.Context, opts ...CallOption) (server.WriteResponse, error) {
	o := applyCallOpts(opts)
	return doWriteRetry(ctx, c, true, func(ctx context.Context) (server.WriteResponse, error) {
		return c.tr.Flush(ctx, o.timeout)
	})
}

// doWriteRetry is doRetry's write-side twin: *RetryableError attempts are
// always repeated (the server refused them before any state changed), and
// *MaybeAppliedError attempts are repeated only when the operation is
// idempotent. Everything else is terminal on the first occurrence.
func doWriteRetry(ctx context.Context, c *Client, idempotent bool, op func(ctx context.Context) (server.WriteResponse, error)) (server.WriteResponse, error) {
	q := uint64(c.queries.Add(1))
	var lastErr error
	var delay time.Duration
	for attempt := 1; attempt <= c.retry.MaxAttempts; attempt++ {
		if attempt > 1 {
			c.retries.Add(1)
			if err := c.sleep(ctx, delay); err != nil {
				return server.WriteResponse{}, fmt.Errorf("client: giving up while backing off: %w (last failure: %w)", err, lastErr)
			}
		}
		c.attempts.Add(1)
		out, err := op(ctx)
		if err == nil {
			return out, nil
		}
		if errors.Is(err, ErrOverloaded) {
			c.shed.Add(1)
		}
		var re *RetryableError
		var ma *MaybeAppliedError
		switch {
		case errors.As(err, &re):
			lastErr = re.Err
			if re.RetryAfter >= 0 {
				delay = re.RetryAfter
			} else {
				delay = c.retry.backoff(q, attempt)
			}
		case idempotent && errors.As(err, &ma):
			lastErr = ma.Err
			delay = c.retry.backoff(q, attempt)
		default:
			return server.WriteResponse{}, err
		}
	}
	return server.WriteResponse{}, fmt.Errorf("client: %d attempts exhausted: %w", c.retry.MaxAttempts, lastErr)
}

// Digest fetches the daemon's anti-entropy summary over the given curve
// intervals (GET /digest): an order-independent record count + checksum
// that two replicas of a range can compare without shipping the records.
// Digests are reads, so retry semantics match QueryBox's.
func (c *Client) Digest(ctx context.Context, ivs []query.Interval, opts ...CallOption) (service.RangeDigest, error) {
	o := applyCallOpts(opts)
	return doRetry(ctx, c, func(ctx context.Context) (service.RangeDigest, error) {
		return c.digestOnce(ctx, ivs, o.timeout)
	})
}

// digestOnce runs one GET /digest attempt with JSON-read classification:
// transport errors before a response and 429/503 answers are retryable.
func (c *Client) digestOnce(ctx context.Context, ivs []query.Interval, timeout time.Duration) (service.RangeDigest, error) {
	v := url.Values{}
	v.Set("ivs", wiretext.FormatIntervals(ivs))
	if timeout > 0 {
		v.Set("timeout", timeout.String())
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/digest?"+v.Encode(), nil)
	if err != nil {
		return service.RangeDigest{}, fmt.Errorf("client: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return service.RangeDigest{}, fmt.Errorf("client: %w", ctx.Err())
		}
		return service.RangeDigest{}, retryable(err)
	}
	defer resp.Body.Close()
	body, readErr := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	switch resp.StatusCode {
	case http.StatusOK:
		if readErr != nil {
			return service.RangeDigest{}, fmt.Errorf("client: response truncated (not retried): %w", readErr)
		}
		var out server.DigestResponse
		if err := json.Unmarshal(body, &out); err != nil {
			return service.RangeDigest{}, fmt.Errorf("client: decoding /digest: %w", err)
		}
		d, err := out.Digest()
		if err != nil {
			return service.RangeDigest{}, fmt.Errorf("client: %w", err)
		}
		return d, nil
	case http.StatusTooManyRequests:
		return service.RangeDigest{}, &RetryableError{
			RetryAfter: retryAfterHint(resp),
			Err:        fmt.Errorf("%w: %s", ErrOverloaded, errorBody(body)),
		}
	case http.StatusServiceUnavailable:
		return service.RangeDigest{}, &RetryableError{
			RetryAfter: retryAfterHint(resp),
			Err:        fmt.Errorf("%w: %s", ErrUnavailable, errorBody(body)),
		}
	default:
		return service.RangeDigest{}, fmt.Errorf("client: /digest returned %d: %s", resp.StatusCode, errorBody(body))
	}
}

// WireInfo asks the daemon for its full binary-protocol advertisement
// (GET /wireinfo). found is false — with no error — when the daemon does
// not serve the binary protocol at all; callers then stay on JSON for
// everything. A daemon may advertise an address without the write
// capability: reads may upgrade while writes must stay on HTTP.
func (c *Client) WireInfo(ctx context.Context) (info server.WireInfo, found bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/wireinfo", nil)
	if err != nil {
		return server.WireInfo{}, false, fmt.Errorf("client: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return server.WireInfo{}, false, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if err != nil {
		return server.WireInfo{}, false, fmt.Errorf("client: %w", err)
	}
	if resp.StatusCode == http.StatusNotFound {
		return server.WireInfo{}, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return server.WireInfo{}, false, fmt.Errorf("client: /wireinfo returned %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &info); err != nil {
		return server.WireInfo{}, false, fmt.Errorf("client: decoding /wireinfo: %w", err)
	}
	return info, true, nil
}
