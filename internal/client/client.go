// Package client is the Go client for the sfcserved query daemon
// (internal/server): it speaks the daemon's HTTP/JSON protocol and folds
// the serving-side backpressure signals into a bounded retry loop.
//
// Retry semantics mirror the store's RetryPolicy shape — bounded attempts,
// exponential backoff with deterministic jitter — with the network-side
// refinements: a 429/503 Retry-After hint overrides the computed backoff,
// and a response whose body was only partially read is NEVER retried (the
// bytes already consumed cannot be unconsumed, so the client reports the
// truncation instead of silently re-reading).
package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/query"
	"repro/internal/server"
)

// ErrOverloaded is the sentinel wrapped by errors reporting that the server
// shed the request (429) on every attempt; test with errors.Is.
var ErrOverloaded = errors.New("client: server overloaded")

// ErrUnavailable is the sentinel wrapped by errors reporting that the
// server was draining or down (503) on every attempt.
var ErrUnavailable = errors.New("client: server unavailable")

// RetryPolicy bounds the per-query retry loop, mirroring the shape of
// store.RetryPolicy. Backoff here is real (the goroutine sleeps), because
// the client faces a real network, not a simulated device.
type RetryPolicy struct {
	MaxAttempts int           // total attempts per query (default 4)
	BaseBackoff time.Duration // backoff after the first failed attempt (default 20ms)
	MaxBackoff  time.Duration // exponential cap (default 1s)
	JitterSeed  int64         // seeds the deterministic ±25% jitter
}

func (rp RetryPolicy) withDefaults() RetryPolicy {
	if rp.MaxAttempts == 0 {
		rp.MaxAttempts = 4
	}
	if rp.BaseBackoff == 0 {
		rp.BaseBackoff = 20 * time.Millisecond
	}
	if rp.MaxBackoff == 0 {
		rp.MaxBackoff = time.Second
	}
	return rp
}

// backoff returns the wait before retry number `retry` (1-based) of query
// number q: exponential in the retry count, capped at MaxBackoff, with a
// deterministic ±25% jitter so retries across clients decorrelate
// reproducibly.
func (rp RetryPolicy) backoff(q uint64, retry int) time.Duration {
	d := rp.BaseBackoff
	for i := 1; i < retry && d < rp.MaxBackoff; i++ {
		d *= 2
	}
	if d > rp.MaxBackoff {
		d = rp.MaxBackoff
	}
	h := splitmix64(uint64(rp.JitterSeed) ^ q*0x9e3779b97f4a7c15 ^ uint64(retry)<<48)
	jitter := 0.75 + 0.5*float64(h>>11)/float64(1<<53)
	return time.Duration(float64(d) * jitter)
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed hash used
// for deterministic jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Stats counts the client's traffic; every field is atomic, so one Client
// is safe to share across goroutines.
type Stats struct {
	Queries  int64 // Query calls
	Attempts int64 // HTTP requests issued
	Retries  int64 // attempts beyond the first
	Shed     int64 // 429 responses observed (retried or not)
}

// Client queries one sfcserved daemon. Methods are safe for concurrent use.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryPolicy

	// sleep is swapped by tests to observe requested backoff without
	// waiting it out.
	sleep func(ctx context.Context, d time.Duration) error

	queries  atomic.Int64
	attempts atomic.Int64
	retries  atomic.Int64
	shed     atomic.Int64
}

// Option configures New.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (default:
// http.DefaultClient).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetryPolicy replaces the retry policy; zero fields take defaults.
func WithRetryPolicy(rp RetryPolicy) Option {
	return func(c *Client) { c.retry = rp.withDefaults() }
}

// New builds a client for the daemon at base (e.g.
// "http://127.0.0.1:7171").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:  strings.TrimRight(base, "/"),
		hc:    http.DefaultClient,
		retry: RetryPolicy{}.withDefaults(),
		sleep: sleepCtx,
	}
	for _, opt := range opts {
		if opt != nil {
			opt(c)
		}
	}
	return c
}

// Stats returns a snapshot of the traffic counters.
func (c *Client) Stats() Stats {
	return Stats{
		Queries:  c.queries.Load(),
		Attempts: c.attempts.Load(),
		Retries:  c.retries.Load(),
		Shed:     c.shed.Load(),
	}
}

// Query answers the box query against the daemon. A timeout > 0 is passed
// to the server as its per-request deadline; ctx bounds the whole retry
// loop on the client side. Retryable failures — transport errors before
// any response, 429, 503 — are retried within the policy's budget,
// honoring a Retry-After hint over the computed backoff. A 200 whose body
// cannot be fully read fails immediately: bytes were consumed, so the
// attempt is not repeatable.
func (c *Client) Query(ctx context.Context, b query.Box, timeout time.Duration) (server.QueryResponse, error) {
	v := url.Values{}
	v.Set("lo", joinCoords(b.Lo))
	v.Set("hi", joinCoords(b.Hi))
	if timeout > 0 {
		v.Set("timeout", timeout.String())
	}
	return c.get(ctx, c.base+"/query?"+v.Encode())
}

// Scan answers a raw curve-interval scan against the daemon's /scan
// endpoint — the query form the cluster router uses, sending each node only
// the intervals clipped to the curve ranges it holds. Intervals must be
// non-empty, in-range, sorted, and disjoint or the server answers 400.
// Retry semantics are identical to Query's.
func (c *Client) Scan(ctx context.Context, ivs []query.Interval, timeout time.Duration) (server.QueryResponse, error) {
	v := url.Values{}
	v.Set("ivs", server.FormatIntervals(ivs))
	if timeout > 0 {
		v.Set("timeout", timeout.String())
	}
	return c.get(ctx, c.base+"/scan?"+v.Encode())
}

// get runs the bounded retry loop for one GET returning a QueryResponse.
func (c *Client) get(ctx context.Context, reqURL string) (server.QueryResponse, error) {
	q := uint64(c.queries.Add(1))
	var lastErr error
	var delay time.Duration
	for attempt := 1; attempt <= c.retry.MaxAttempts; attempt++ {
		if attempt > 1 {
			c.retries.Add(1)
			if err := c.sleep(ctx, delay); err != nil {
				return server.QueryResponse{}, fmt.Errorf("client: giving up while backing off: %w (last failure: %w)", err, lastErr)
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, reqURL, nil)
		if err != nil {
			return server.QueryResponse{}, fmt.Errorf("client: %w", err)
		}
		c.attempts.Add(1)
		resp, err := c.hc.Do(req)
		if err != nil {
			// No response at all: nothing was consumed, safe to retry —
			// unless the caller's context is what ended the attempt.
			if ctx.Err() != nil {
				return server.QueryResponse{}, fmt.Errorf("client: %w", ctx.Err())
			}
			lastErr = err
			delay = c.retry.backoff(q, attempt)
			continue
		}
		body, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			if readErr != nil {
				// Partial body: never retried.
				return server.QueryResponse{}, fmt.Errorf("client: response truncated after %d bytes (not retried): %w", len(body), readErr)
			}
			var out server.QueryResponse
			if err := json.Unmarshal(body, &out); err != nil {
				return server.QueryResponse{}, fmt.Errorf("client: decoding response: %w", err)
			}
			return out, nil
		case http.StatusTooManyRequests:
			c.shed.Add(1)
			lastErr = fmt.Errorf("%w: %s", ErrOverloaded, errorBody(body))
			delay = c.retryDelay(resp, q, attempt)
		case http.StatusServiceUnavailable:
			lastErr = fmt.Errorf("%w: %s", ErrUnavailable, errorBody(body))
			delay = c.retryDelay(resp, q, attempt)
		default:
			// Complete non-retryable answer (400 bad box, 504 deadline,
			// 500): repeating it would repeat the failure.
			return server.QueryResponse{}, fmt.Errorf("client: server returned %d: %s", resp.StatusCode, errorBody(body))
		}
	}
	return server.QueryResponse{}, fmt.Errorf("client: %d attempts exhausted: %w", c.retry.MaxAttempts, lastErr)
}

// Readyz reports whether the daemon is ready for traffic.
func (c *Client) Readyz(ctx context.Context) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return false, fmt.Errorf("client: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK, nil
}

// MetricsJSON fetches the daemon's /metrics document in JSON form.
func (c *Client) MetricsJSON(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics?format=json", nil)
	if err != nil {
		return "", fmt.Errorf("client: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("client: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("client: /metrics returned %d", resp.StatusCode)
	}
	return string(body), nil
}

// retryDelay picks the wait before the next attempt: the server's
// Retry-After hint when present (the server knows its own queue), the
// policy's backoff otherwise.
func (c *Client) retryDelay(resp *http.Response, q uint64, attempt int) time.Duration {
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if sec, err := strconv.Atoi(ra); err == nil && sec >= 0 {
			return time.Duration(sec) * time.Second
		}
	}
	return c.retry.backoff(q, attempt)
}

// errorBody extracts the server's JSON error message, falling back to the
// raw bytes.
func errorBody(body []byte) string {
	var er server.ErrorResponse
	if err := json.Unmarshal(body, &er); err == nil && er.Error != "" {
		return er.Error
	}
	return strings.TrimSpace(string(body))
}

// joinCoords renders a point as the wire's comma-separated coordinates.
func joinCoords(p []uint32) string {
	var sb strings.Builder
	for i, v := range p {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.FormatUint(uint64(v), 10))
	}
	return sb.String()
}

// sleepCtx sleeps for d or until ctx ends, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
