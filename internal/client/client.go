// Package client is the Go client for the sfcserved query daemon
// (internal/server). It speaks either of the daemon's two protocols behind
// one API: the HTTP/JSON endpoints (JSONTransport, the default) or the
// binary wire protocol with streaming scans (BinaryTransport,
// internal/wire), selected with WithTransport. The Client folds the
// serving-side backpressure signals into a bounded retry loop either way.
//
// Retry semantics mirror the store's RetryPolicy shape — bounded attempts,
// exponential backoff with deterministic jitter — with the network-side
// refinements: a shed/drain answer's Retry-After hint overrides the
// computed backoff, and a response whose body was only partially read is
// NEVER retried (the bytes already consumed cannot be unconsumed, so the
// client reports the truncation instead of silently re-reading).
package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/query"
	"repro/internal/server"
)

// ErrOverloaded is the sentinel wrapped by errors reporting that the server
// shed the request (429 / CodeOverloaded) on every attempt; test with
// errors.Is.
var ErrOverloaded = errors.New("client: server overloaded")

// ErrUnavailable is the sentinel wrapped by errors reporting that the
// server was draining or down (503 / CodeUnavailable) on every attempt.
var ErrUnavailable = errors.New("client: server unavailable")

// RetryPolicy bounds the per-query retry loop, mirroring the shape of
// store.RetryPolicy. Backoff here is real (the goroutine sleeps), because
// the client faces a real network, not a simulated device.
type RetryPolicy struct {
	MaxAttempts int           // total attempts per query (default 4)
	BaseBackoff time.Duration // backoff after the first failed attempt (default 20ms)
	MaxBackoff  time.Duration // exponential cap (default 1s)
	JitterSeed  int64         // seeds the deterministic ±25% jitter
}

func (rp RetryPolicy) withDefaults() RetryPolicy {
	if rp.MaxAttempts == 0 {
		rp.MaxAttempts = 4
	}
	if rp.BaseBackoff == 0 {
		rp.BaseBackoff = 20 * time.Millisecond
	}
	if rp.MaxBackoff == 0 {
		rp.MaxBackoff = time.Second
	}
	return rp
}

// backoff returns the wait before retry number `retry` (1-based) of query
// number q: exponential in the retry count, capped at MaxBackoff, with a
// deterministic ±25% jitter so retries across clients decorrelate
// reproducibly.
func (rp RetryPolicy) backoff(q uint64, retry int) time.Duration {
	d := rp.BaseBackoff
	for i := 1; i < retry && d < rp.MaxBackoff; i++ {
		d *= 2
	}
	if d > rp.MaxBackoff {
		d = rp.MaxBackoff
	}
	h := splitmix64(uint64(rp.JitterSeed) ^ q*0x9e3779b97f4a7c15 ^ uint64(retry)<<48)
	jitter := 0.75 + 0.5*float64(h>>11)/float64(1<<53)
	return time.Duration(float64(d) * jitter)
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed hash used
// for deterministic jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Stats counts the client's traffic; every field is atomic, so one Client
// is safe to share across goroutines.
type Stats struct {
	Queries  int64 // Query/Scan/ScanStream calls
	Attempts int64 // requests issued across all transports
	Retries  int64 // attempts beyond the first
	Shed     int64 // overload answers observed (retried or not)
}

// Client queries one sfcserved daemon. Methods are safe for concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	retry   RetryPolicy
	tr      Transport
	maxBody int64

	// sleep is swapped by tests to observe requested backoff without
	// waiting it out.
	sleep func(ctx context.Context, d time.Duration) error

	queries  atomic.Int64
	attempts atomic.Int64
	retries  atomic.Int64
	shed     atomic.Int64
}

// Option configures New.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (default:
// http.DefaultClient) used by the JSON transport and the HTTP side
// channels (Readyz, MetricsJSON, WireAddr).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetryPolicy replaces the retry policy; zero fields take defaults.
func WithRetryPolicy(rp RetryPolicy) Option {
	return func(c *Client) { c.retry = rp.withDefaults() }
}

// WithTransport selects the query transport: a *BinaryTransport pointed at
// the daemon's -wire-addr listener, a *JSONTransport, or any custom
// implementation. Without this option the client speaks JSON against the
// base URL.
func WithTransport(t Transport) Option { return func(c *Client) { c.tr = t } }

// WithMaxResponseBytes caps JSON response-body buffering (default
// DefaultMaxResponseBytes); larger bodies fail with ErrResponseTooLarge.
// It configures the default JSON transport only — an explicit
// WithTransport takes its own limits.
func WithMaxResponseBytes(n int64) Option { return func(c *Client) { c.maxBody = n } }

// CallOption configures one Query/Scan/ScanStream call.
type CallOption func(*callOpts)

type callOpts struct {
	timeout time.Duration
}

// WithTimeout asks the server to bound this request's service time; the
// server still clamps it to its own -max-timeout. Zero (the default) takes
// the server's default deadline. The caller's ctx bounds the whole retry
// loop client-side regardless.
func WithTimeout(d time.Duration) CallOption { return func(o *callOpts) { o.timeout = d } }

func applyCallOpts(opts []CallOption) callOpts {
	var o callOpts
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	return o
}

// New builds a client for the daemon at base (e.g.
// "http://127.0.0.1:7171").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:  strings.TrimRight(base, "/"),
		hc:    http.DefaultClient,
		retry: RetryPolicy{}.withDefaults(),
		sleep: sleepCtx,
	}
	for _, opt := range opts {
		if opt != nil {
			opt(c)
		}
	}
	if c.tr == nil {
		c.tr = &JSONTransport{Base: c.base, HTTPClient: c.hc, MaxResponseBytes: c.maxBody}
	}
	return c
}

// Transport returns the transport the client queries through.
func (c *Client) Transport() Transport { return c.tr }

// Close releases the transport's persistent connections.
func (c *Client) Close() error { return c.tr.Close() }

// Stats returns a snapshot of the traffic counters.
func (c *Client) Stats() Stats {
	return Stats{
		Queries:  c.queries.Load(),
		Attempts: c.attempts.Load(),
		Retries:  c.retries.Load(),
		Shed:     c.shed.Load(),
	}
}

// QueryBox answers the box query against the daemon. ctx bounds the whole
// retry loop on the client side; WithTimeout sets the server-side
// deadline. Retryable failures — transport errors before any response,
// shed, draining — are retried within the policy's budget, honoring a
// Retry-After hint over the computed backoff. A response that was
// partially consumed fails immediately: the attempt is not repeatable.
func (c *Client) QueryBox(ctx context.Context, b query.Box, opts ...CallOption) (server.QueryResponse, error) {
	o := applyCallOpts(opts)
	return doRetry(ctx, c, func(ctx context.Context) (server.QueryResponse, error) {
		return c.tr.Query(ctx, b, o.timeout)
	})
}

// ScanIntervals answers a raw curve-interval scan — the query form the
// cluster router uses, sending each node only the intervals clipped to the
// curve ranges it holds. Intervals must be non-empty, in-range, sorted,
// and disjoint or the server rejects the request. Retry semantics are
// identical to QueryBox's.
func (c *Client) ScanIntervals(ctx context.Context, ivs []query.Interval, opts ...CallOption) (server.QueryResponse, error) {
	o := applyCallOpts(opts)
	return doRetry(ctx, c, func(ctx context.Context) (server.QueryResponse, error) {
		return c.tr.Scan(ctx, ivs, o.timeout)
	})
}

// ScanStream opens a streaming scan: record batches arrive in curve order
// while the server is still scanning, and the dark-interval/pages-read
// summary arrives in the trailer. Only the stream open is retried — once
// the server has accepted the request, a mid-stream failure surfaces from
// Stream.Next. Over the JSON transport the stream is a buffered shim; over
// the binary transport it is genuinely incremental.
func (c *Client) ScanStream(ctx context.Context, ivs []query.Interval, opts ...CallOption) (*Stream, error) {
	o := applyCallOpts(opts)
	return doRetry(ctx, c, func(ctx context.Context) (*Stream, error) {
		return c.tr.ScanStream(ctx, ivs, o.timeout)
	})
}

// QueryBoxStream opens a streaming box query: the decomposition happens
// server-side and record batches arrive in curve order while the scan is
// still running. Retry semantics match ScanStream's: only the open is
// retried.
func (c *Client) QueryBoxStream(ctx context.Context, b query.Box, opts ...CallOption) (*Stream, error) {
	o := applyCallOpts(opts)
	return doRetry(ctx, c, func(ctx context.Context) (*Stream, error) {
		return c.tr.QueryStream(ctx, b, o.timeout)
	})
}

// Query answers the box query with a positional server-side timeout.
//
// Deprecated: use QueryBox with WithTimeout.
func (c *Client) Query(ctx context.Context, b query.Box, timeout time.Duration) (server.QueryResponse, error) {
	return c.QueryBox(ctx, b, WithTimeout(timeout))
}

// Scan answers a raw curve-interval scan with a positional server-side
// timeout.
//
// Deprecated: use ScanIntervals with WithTimeout.
func (c *Client) Scan(ctx context.Context, ivs []query.Interval, timeout time.Duration) (server.QueryResponse, error) {
	return c.ScanIntervals(ctx, ivs, WithTimeout(timeout))
}

// doRetry runs one logical query through the bounded retry loop: attempts
// are issued until one succeeds, fails terminally (anything that is not a
// *RetryableError), or the policy's budget is spent. The server's
// Retry-After hint, when present, overrides the computed backoff — zero
// means retry immediately.
func doRetry[T any](ctx context.Context, c *Client, op func(ctx context.Context) (T, error)) (T, error) {
	var zero T
	q := uint64(c.queries.Add(1))
	var lastErr error
	var delay time.Duration
	for attempt := 1; attempt <= c.retry.MaxAttempts; attempt++ {
		if attempt > 1 {
			c.retries.Add(1)
			if err := c.sleep(ctx, delay); err != nil {
				return zero, fmt.Errorf("client: giving up while backing off: %w (last failure: %w)", err, lastErr)
			}
		}
		c.attempts.Add(1)
		out, err := op(ctx)
		if err == nil {
			return out, nil
		}
		if errors.Is(err, ErrOverloaded) {
			c.shed.Add(1)
		}
		var re *RetryableError
		if !errors.As(err, &re) {
			return zero, err
		}
		lastErr = re.Err
		if re.RetryAfter >= 0 {
			delay = re.RetryAfter
		} else {
			delay = c.retry.backoff(q, attempt)
		}
	}
	return zero, fmt.Errorf("client: %d attempts exhausted: %w", c.retry.MaxAttempts, lastErr)
}

// Readyz reports whether the daemon is ready for traffic.
func (c *Client) Readyz(ctx context.Context) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return false, fmt.Errorf("client: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK, nil
}

// WireAddr asks the daemon for its advertised binary-protocol listener
// (GET /wireinfo). It returns "" without error when the daemon does not
// serve the binary protocol — the caller falls back to JSON. WireInfo
// (write.go) returns the full advertisement, write capability included.
func (c *Client) WireAddr(ctx context.Context) (string, error) {
	info, found, err := c.WireInfo(ctx)
	if err != nil || !found {
		return "", err
	}
	return info.Addr, nil
}

// MetricsJSON fetches the daemon's /metrics document in JSON form.
func (c *Client) MetricsJSON(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics?format=json", nil)
	if err != nil {
		return "", fmt.Errorf("client: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("client: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("client: /metrics returned %d", resp.StatusCode)
	}
	return string(body), nil
}

// sleepCtx sleeps for d or until ctx ends, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
