package client

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/query"
	"repro/internal/server"
)

// Hedged fans one logical request out across replica clients: the first
// replica is tried immediately, and a slow or failed attempt brings the
// next replica into the race — after the hedge delay without an answer, or
// at once on a failure. The first success wins and the losing attempts are
// canceled.
//
// Budget separation is the invariant this type exists to keep: every
// replica attempt runs through that replica's own Client and therefore its
// own retry budget. A hedged attempt against replica B is never counted as
// a retry of replica A, and the cancelation of a losing attempt consumes
// nothing from the loser's budget — Client's retry loop returns on a
// canceled context before charging a retry. Without this separation a slow
// (but healthy) primary would have its retry budget drained by every hedge,
// turning one tail-latency event into a cascade of spurious exhaustion.
// The regression test TestHedgedDoesNotChargePrimaryBudget pins it down.
type Hedged struct {
	replicas []*Client
	delay    time.Duration

	hedges    atomic.Int64
	failovers atomic.Int64
}

// HedgedStats counts the racing decisions a Hedged has made.
type HedgedStats struct {
	Hedges    int64 // attempts launched by the hedge timer, primary still pending
	Failovers int64 // attempts launched because an earlier replica failed
}

// NewHedged builds a hedged client over the replicas in preference order.
// A delay of 0 disables time-based hedging: later replicas are tried only
// after an earlier one fails.
func NewHedged(delay time.Duration, replicas ...*Client) (*Hedged, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("client: hedged client needs at least one replica")
	}
	for i, r := range replicas {
		if r == nil {
			return nil, fmt.Errorf("client: hedged replica %d is nil", i)
		}
	}
	if delay < 0 {
		return nil, fmt.Errorf("client: negative hedge delay %v", delay)
	}
	return &Hedged{replicas: replicas, delay: delay}, nil
}

// Stats returns a snapshot of the hedging counters.
func (h *Hedged) Stats() HedgedStats {
	return HedgedStats{Hedges: h.hedges.Load(), Failovers: h.failovers.Load()}
}

// Query races the box query across the replicas and returns the winning
// response plus the index of the replica that served it.
func (h *Hedged) Query(ctx context.Context, b query.Box, timeout time.Duration) (server.QueryResponse, int, error) {
	return h.race(ctx, func(ctx context.Context, cl *Client) (server.QueryResponse, error) {
		return cl.Query(ctx, b, timeout)
	})
}

// Scan races the interval scan across the replicas and returns the winning
// response plus the index of the replica that served it.
func (h *Hedged) Scan(ctx context.Context, ivs []query.Interval, timeout time.Duration) (server.QueryResponse, int, error) {
	return h.race(ctx, func(ctx context.Context, cl *Client) (server.QueryResponse, error) {
		return cl.Scan(ctx, ivs, timeout)
	})
}

// race is the hedging engine shared by Query and Scan.
func (h *Hedged) race(ctx context.Context, call func(context.Context, *Client) (server.QueryResponse, error)) (server.QueryResponse, int, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // reap the losing attempts on return

	type attempt struct {
		idx  int
		resp server.QueryResponse
		err  error
	}
	resc := make(chan attempt, len(h.replicas))
	launched := 0
	launch := func() {
		idx := launched
		launched++
		go func() {
			resp, err := call(ctx, h.replicas[idx])
			resc <- attempt{idx: idx, resp: resp, err: err}
		}()
	}
	launch()
	pending := 1
	var timer *time.Timer
	var hedgeC <-chan time.Time
	armHedge := func() {
		if timer != nil {
			timer.Stop()
		}
		timer, hedgeC = nil, nil
		if h.delay > 0 && launched < len(h.replicas) {
			timer = time.NewTimer(h.delay)
			hedgeC = timer.C
		}
	}
	armHedge()
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()

	var lastErr error
	for {
		select {
		case a := <-resc:
			pending--
			if a.err == nil {
				return a.resp, a.idx, nil
			}
			lastErr = a.err
			if err := ctx.Err(); err != nil {
				// The caller's context ended; the attempt errors just echo it.
				return server.QueryResponse{}, -1, fmt.Errorf("client: hedged request canceled: %w", err)
			}
			if launched < len(h.replicas) {
				h.failovers.Add(1)
				launch()
				pending++
				armHedge()
			} else if pending == 0 {
				return server.QueryResponse{}, -1, fmt.Errorf("client: all %d replicas failed: %w", len(h.replicas), lastErr)
			}
		case <-hedgeC:
			h.hedges.Add(1)
			launch()
			pending++
			armHedge()
		case <-ctx.Done():
			return server.QueryResponse{}, -1, fmt.Errorf("client: hedged request canceled: %w", ctx.Err())
		}
	}
}
