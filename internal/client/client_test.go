package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/query"
	"repro/internal/server"
)

func testBox(t *testing.T) query.Box {
	t.Helper()
	u := grid.MustNew(2, 4)
	b, err := query.NewBox(u, u.MustPoint(1, 2), u.MustPoint(5, 9))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// recordedSleeps swaps the client's backoff sleep for a recorder so tests
// assert the requested delays without waiting them out.
func recordedSleeps(c *Client) *[]time.Duration {
	var sleeps []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		sleeps = append(sleeps, d)
		return ctx.Err()
	}
	return &sleeps
}

func okBody(t *testing.T, w http.ResponseWriter) {
	t.Helper()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(server.QueryResponse{
		Records:       []server.WireRecord{{Point: []uint32{1, 2}, Payload: 7}},
		ShardsQueried: 1,
		Complete:      true,
	}); err != nil {
		t.Error(err)
	}
}

// TestRetryThenSuccess: 429s and a 503 with Retry-After: 0 are retried
// until the budget admits the request; the response decodes and the stats
// count every attempt.
func TestRetryThenSuccess(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(server.ErrorResponse{Error: "overloaded"})
		case 2:
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(server.ErrorResponse{Error: "draining"})
		default:
			okBody(t, w)
		}
	}))
	defer ts.Close()

	c := New(ts.URL)
	sleeps := recordedSleeps(c)
	resp, err := c.Query(context.Background(), testBox(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Records) != 1 || resp.Records[0].Payload != 7 {
		t.Fatalf("response: %+v", resp)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	st := c.Stats()
	if st.Attempts != 3 || st.Retries != 2 || st.Shed != 1 || st.Queries != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if len(*sleeps) != 2 || (*sleeps)[0] != 0 || (*sleeps)[1] != 0 {
		t.Fatalf("Retry-After: 0 should give zero backoff, got %v", *sleeps)
	}
}

// TestRetryAfterHonored: a Retry-After hint overrides the computed
// exponential backoff; without the hint the policy's backoff is used.
func TestRetryAfterHonored(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
		case 2:
			w.WriteHeader(http.StatusTooManyRequests) // no hint
		default:
			okBody(t, w)
		}
	}))
	defer ts.Close()

	rp := RetryPolicy{MaxAttempts: 4, BaseBackoff: 8 * time.Millisecond, MaxBackoff: 50 * time.Millisecond}
	c := New(ts.URL, WithRetryPolicy(rp))
	sleeps := recordedSleeps(c)
	if _, err := c.Query(context.Background(), testBox(t), 0); err != nil {
		t.Fatal(err)
	}
	if len(*sleeps) != 2 {
		t.Fatalf("sleeps: %v", *sleeps)
	}
	if (*sleeps)[0] != 2*time.Second {
		t.Fatalf("Retry-After: 2 gave backoff %v, want 2s", (*sleeps)[0])
	}
	// No hint after the second failed attempt: the policy's exponential
	// backoff, doubled once from the 8ms base, with ±25% jitter.
	if d := (*sleeps)[1]; d < 12*time.Millisecond || d > 20*time.Millisecond {
		t.Fatalf("hintless backoff %v outside jittered [12ms, 20ms]", d)
	}
}

// TestNoRetryAfterPartialBody: a 200 whose body is cut short must not be
// retried — the server sees exactly one request and the error says so.
func TestNoRetryAfterPartialBody(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Length", "4096")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"records":[{"point":[1,2]`))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}))
	defer ts.Close()

	c := New(ts.URL)
	recordedSleeps(c)
	_, err := c.Query(context.Background(), testBox(t), 0)
	if err == nil {
		t.Fatal("truncated body accepted")
	}
	if !strings.Contains(err.Error(), "not retried") {
		t.Fatalf("error does not mark the no-retry decision: %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls after a partial body, want exactly 1", calls.Load())
	}
}

// TestNoRetryOnTerminalStatus: complete 400/500/504 answers are returned,
// not retried.
func TestNoRetryOnTerminalStatus(t *testing.T) {
	for _, code := range []int{http.StatusBadRequest, http.StatusInternalServerError, http.StatusGatewayTimeout} {
		var calls atomic.Int64
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls.Add(1)
			w.WriteHeader(code)
			json.NewEncoder(w).Encode(server.ErrorResponse{Error: "nope"})
		}))
		c := New(ts.URL)
		recordedSleeps(c)
		if _, err := c.Query(context.Background(), testBox(t), 0); err == nil {
			t.Fatalf("status %d accepted", code)
		}
		if calls.Load() != 1 {
			t.Fatalf("status %d retried: %d calls", code, calls.Load())
		}
		ts.Close()
	}
}

// TestAttemptsExhausted: a persistently overloaded server exhausts the
// bounded budget and the error wraps ErrOverloaded for errors.Is.
func TestAttemptsExhausted(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetryPolicy(RetryPolicy{MaxAttempts: 3}))
	recordedSleeps(c)
	_, err := c.Query(context.Background(), testBox(t), 0)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want MaxAttempts = 3", calls.Load())
	}
	if st := c.Stats(); st.Shed != 3 {
		t.Fatalf("stats: %+v, want Shed = 3", st)
	}
}

// TestQueryTimeoutParameter: a timeout is forwarded to the server as its
// per-request deadline parameter.
func TestQueryTimeoutParameter(t *testing.T) {
	var got string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = r.URL.Query().Get("timeout")
		okBody(t, w)
	}))
	defer ts.Close()
	c := New(ts.URL)
	if _, err := c.Query(context.Background(), testBox(t), 250*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got != "250ms" {
		t.Fatalf("timeout parameter %q, want \"250ms\"", got)
	}
}

// TestContextStopsRetryLoop: the caller's context ends the retry loop
// during backoff with the context error, not after burning the budget.
func TestContextStopsRetryLoop(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()
	c := New(ts.URL)
	ctx, cancel := context.WithCancel(context.Background())
	c.sleep = func(ctx context.Context, d time.Duration) error {
		cancel() // the caller gives up mid-backoff
		return ctx.Err()
	}
	_, err := c.Query(ctx, testBox(t), 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := c.Stats(); st.Attempts != 1 {
		t.Fatalf("attempts %d, want 1 (no request after cancellation)", st.Attempts)
	}
}
