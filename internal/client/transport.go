package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/store"
	wiretext "repro/internal/wire/text"
)

// ErrResponseTooLarge is the sentinel wrapped by errors reporting that a
// JSON response body exceeded the client's configured cap; test with
// errors.Is. The binary transport never buffers whole bodies, so it cannot
// produce this error.
var ErrResponseTooLarge = errors.New("client: response too large")

// DefaultMaxResponseBytes caps JSON response bodies (1 GiB). Scans larger
// than this should stream over the binary transport instead of buffering.
const DefaultMaxResponseBytes = int64(1) << 30

// Transport performs single attempts of the daemon's RPCs. Each method
// issues exactly one request — the Client layers the bounded retry loop on
// top, so a Transport reports a retryable failure by returning a
// *RetryableError and a terminal one by returning any other error. Write
// attempts add a third class: a *MaybeAppliedError reports a failure after
// the request may have reached the server — the Client repeats those only
// for idempotent operations, never for Put.
type Transport interface {
	// Query performs one attempt of a box query. timeout > 0 is the
	// server-side deadline to request; ctx bounds the attempt client-side.
	Query(ctx context.Context, b query.Box, timeout time.Duration) (server.QueryResponse, error)
	// Scan performs one attempt of a raw curve-interval scan.
	Scan(ctx context.Context, ivs []query.Interval, timeout time.Duration) (server.QueryResponse, error)
	// ScanStream opens one attempt of a streaming scan. A returned Stream
	// means the server accepted the request; later failures surface from
	// Stream.Next and are not retried by the Client.
	ScanStream(ctx context.Context, ivs []query.Interval, timeout time.Duration) (*Stream, error)
	// QueryStream opens one attempt of a streaming box query, with the
	// same acceptance/retry split as ScanStream.
	QueryStream(ctx context.Context, b query.Box, timeout time.Duration) (*Stream, error)
	// Put performs one attempt of a durable record insert. Failures after
	// the request may have left the client are *MaybeAppliedError, never
	// plain retryable — puts are not idempotent.
	Put(ctx context.Context, rec store.Record, timeout time.Duration) (server.WriteResponse, error)
	// Delete performs one attempt of a durable record delete, with the
	// same classification contract as Put.
	Delete(ctx context.Context, rec store.Record, timeout time.Duration) (server.WriteResponse, error)
	// Flush performs one attempt of a full-daemon memtable flush.
	Flush(ctx context.Context, timeout time.Duration) (server.WriteResponse, error)
	// Close releases the transport's persistent resources.
	Close() error
}

// RetryableError marks a failed attempt the Client may repeat: the server
// shed or refused the request, or the transport failed before a response
// was consumed.
type RetryableError struct {
	// RetryAfter is the server's backoff hint; negative means the server
	// gave none and the client's own backoff applies. Zero is meaningful:
	// retry immediately.
	RetryAfter time.Duration
	// Err is the underlying failure.
	Err error
}

func (e *RetryableError) Error() string { return e.Err.Error() }
func (e *RetryableError) Unwrap() error { return e.Err }

// retryable wraps err as hintless-retryable.
func retryable(err error) *RetryableError {
	return &RetryableError{RetryAfter: -1, Err: err}
}

// JSONTransport speaks the daemon's HTTP/JSON protocol — today's wire
// format, kept as the compatibility and debugging path. The zero value is
// not usable; set Base.
type JSONTransport struct {
	// Base is the daemon's HTTP base URL, e.g. "http://127.0.0.1:7171".
	Base string
	// HTTPClient substitutes the underlying client (default
	// http.DefaultClient).
	HTTPClient *http.Client
	// MaxResponseBytes caps response-body buffering (default
	// DefaultMaxResponseBytes). Larger bodies fail with
	// ErrResponseTooLarge.
	MaxResponseBytes int64
}

func (t *JSONTransport) hc() *http.Client {
	if t.HTTPClient != nil {
		return t.HTTPClient
	}
	return http.DefaultClient
}

func (t *JSONTransport) maxBody() int64 {
	if t.MaxResponseBytes > 0 {
		return t.MaxResponseBytes
	}
	return DefaultMaxResponseBytes
}

// Query implements Transport.
func (t *JSONTransport) Query(ctx context.Context, b query.Box, timeout time.Duration) (server.QueryResponse, error) {
	v := url.Values{}
	v.Set("lo", wiretext.FormatPoint(b.Lo))
	v.Set("hi", wiretext.FormatPoint(b.Hi))
	if timeout > 0 {
		v.Set("timeout", timeout.String())
	}
	return t.get(ctx, strings.TrimRight(t.Base, "/")+"/query?"+v.Encode())
}

// Scan implements Transport.
func (t *JSONTransport) Scan(ctx context.Context, ivs []query.Interval, timeout time.Duration) (server.QueryResponse, error) {
	v := url.Values{}
	v.Set("ivs", wiretext.FormatIntervals(ivs))
	if timeout > 0 {
		v.Set("timeout", timeout.String())
	}
	return t.get(ctx, strings.TrimRight(t.Base, "/")+"/scan?"+v.Encode())
}

// ScanStream implements Transport. JSON has no streaming encoding, so the
// whole response is fetched in this call and replayed as a one-batch
// stream — the API is uniform, only the transfer isn't incremental.
func (t *JSONTransport) ScanStream(ctx context.Context, ivs []query.Interval, timeout time.Duration) (*Stream, error) {
	resp, err := t.Scan(ctx, ivs, timeout)
	if err != nil {
		return nil, err
	}
	return newBufferedStream(resp), nil
}

// QueryStream implements Transport as a buffered shim, like ScanStream.
func (t *JSONTransport) QueryStream(ctx context.Context, b query.Box, timeout time.Duration) (*Stream, error) {
	resp, err := t.Query(ctx, b, timeout)
	if err != nil {
		return nil, err
	}
	return newBufferedStream(resp), nil
}

// Put implements Transport: POST /put.
func (t *JSONTransport) Put(ctx context.Context, rec store.Record, timeout time.Duration) (server.WriteResponse, error) {
	return t.postWrite(ctx, "/put", &server.WriteRequest{Point: rec.Point, Payload: rec.Payload}, timeout)
}

// Delete implements Transport: POST /delete.
func (t *JSONTransport) Delete(ctx context.Context, rec store.Record, timeout time.Duration) (server.WriteResponse, error) {
	return t.postWrite(ctx, "/delete", &server.WriteRequest{Point: rec.Point, Payload: rec.Payload}, timeout)
}

// Flush implements Transport: POST /flush.
func (t *JSONTransport) Flush(ctx context.Context, timeout time.Duration) (server.WriteResponse, error) {
	return t.postWrite(ctx, "/flush", nil, timeout)
}

// postWrite runs one write attempt, classifying failures by whether the
// request can have reached the daemon's write path: a dial-phase failure
// or a pre-application refusal (429 shed, 503 draining — both answered
// before the service touches the WAL) is retryable; a transport failure
// after the request left, or a server-side deadline, is *MaybeAppliedError
// — the WAL may already hold the write. The HTTP write endpoints take no
// ?timeout parameter, so the requested server-side deadline is enforced
// client-side instead.
func (t *JSONTransport) postWrite(ctx context.Context, path string, body *server.WriteRequest, timeout time.Duration) (server.WriteResponse, error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return server.WriteResponse{}, fmt.Errorf("client: %w", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, strings.TrimRight(t.Base, "/")+path, rd)
	if err != nil {
		return server.WriteResponse{}, fmt.Errorf("client: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.hc().Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The caller's deadline (or the requested timeout) ended the
			// attempt; whether the server applied the write is unknowable.
			return server.WriteResponse{}, maybeApplied(fmt.Errorf("client: %w", ctx.Err()))
		}
		if isDialError(err) {
			// The connection was never established; nothing reached the
			// server.
			return server.WriteResponse{}, retryable(err)
		}
		return server.WriteResponse{}, maybeApplied(err)
	}
	limit := t.maxBody()
	rbody, readErr := io.ReadAll(io.LimitReader(resp.Body, limit+1))
	resp.Body.Close()
	if int64(len(rbody)) > limit {
		return server.WriteResponse{}, fmt.Errorf("%w: body exceeds %d bytes (status %d)", ErrResponseTooLarge, limit, resp.StatusCode)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		if readErr != nil {
			// The server answered 200 — the write applied — but the body
			// broke; report success-shaped data loss as a terminal error
			// rather than tempting a duplicate-producing retry.
			return server.WriteResponse{}, fmt.Errorf("client: write acknowledged but response truncated after %d bytes (not retried): %w", len(rbody), readErr)
		}
		var out server.WriteResponse
		if err := json.Unmarshal(rbody, &out); err != nil {
			return server.WriteResponse{}, fmt.Errorf("client: decoding response: %w", err)
		}
		return out, nil
	case http.StatusTooManyRequests:
		return server.WriteResponse{}, &RetryableError{
			RetryAfter: retryAfterHint(resp),
			Err:        fmt.Errorf("%w: %s", ErrOverloaded, errorBody(rbody)),
		}
	case http.StatusServiceUnavailable:
		return server.WriteResponse{}, &RetryableError{
			RetryAfter: retryAfterHint(resp),
			Err:        fmt.Errorf("%w: %s", ErrUnavailable, errorBody(rbody)),
		}
	case http.StatusForbidden:
		return server.WriteResponse{}, fmt.Errorf("%w: %s", ErrReadOnly, errorBody(rbody))
	case http.StatusGatewayTimeout:
		// The deadline expired server-side, possibly mid-WAL-sync.
		return server.WriteResponse{}, maybeApplied(fmt.Errorf("client: server deadline exceeded: %s", errorBody(rbody)))
	default:
		return server.WriteResponse{}, fmt.Errorf("client: server returned %d: %s", resp.StatusCode, errorBody(rbody))
	}
}

// isDialError reports whether err failed before a connection existed —
// the one transport-failure class where a write attempt provably never
// reached the server.
func isDialError(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// Close implements Transport; the http.Client may be shared, so nothing is
// torn down.
func (t *JSONTransport) Close() error { return nil }

// get runs one GET attempt for a QueryResponse, classifying the failure
// modes: transport errors before a response and 429/503 answers are
// retryable; a consumed-but-broken body and every other status are
// terminal.
func (t *JSONTransport) get(ctx context.Context, reqURL string) (server.QueryResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, reqURL, nil)
	if err != nil {
		return server.QueryResponse{}, fmt.Errorf("client: %w", err)
	}
	resp, err := t.hc().Do(req)
	if err != nil {
		// No response at all: nothing was consumed, safe to retry —
		// unless the caller's context is what ended the attempt.
		if ctx.Err() != nil {
			return server.QueryResponse{}, fmt.Errorf("client: %w", ctx.Err())
		}
		return server.QueryResponse{}, retryable(err)
	}
	limit := t.maxBody()
	body, readErr := io.ReadAll(io.LimitReader(resp.Body, limit+1))
	resp.Body.Close()
	if int64(len(body)) > limit {
		return server.QueryResponse{}, fmt.Errorf("%w: body exceeds %d bytes (status %d)", ErrResponseTooLarge, limit, resp.StatusCode)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		if readErr != nil {
			// Partial body: never retried.
			return server.QueryResponse{}, fmt.Errorf("client: response truncated after %d bytes (not retried): %w", len(body), readErr)
		}
		var out server.QueryResponse
		if err := json.Unmarshal(body, &out); err != nil {
			return server.QueryResponse{}, fmt.Errorf("client: decoding response: %w", err)
		}
		return out, nil
	case http.StatusTooManyRequests:
		return server.QueryResponse{}, &RetryableError{
			RetryAfter: retryAfterHint(resp),
			Err:        fmt.Errorf("%w: %s", ErrOverloaded, errorBody(body)),
		}
	case http.StatusServiceUnavailable:
		return server.QueryResponse{}, &RetryableError{
			RetryAfter: retryAfterHint(resp),
			Err:        fmt.Errorf("%w: %s", ErrUnavailable, errorBody(body)),
		}
	default:
		// Complete non-retryable answer (400 bad box, 504 deadline, 500):
		// repeating it would repeat the failure.
		return server.QueryResponse{}, fmt.Errorf("client: server returned %d: %s", resp.StatusCode, errorBody(body))
	}
}

// retryAfterHint extracts the server's Retry-After header as a duration;
// negative means no hint.
func retryAfterHint(resp *http.Response) time.Duration {
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if sec, err := strconv.Atoi(ra); err == nil && sec >= 0 {
			return time.Duration(sec) * time.Second
		}
	}
	return -1
}

// errorBody extracts the server's JSON error message, falling back to the
// raw bytes.
func errorBody(body []byte) string {
	var er server.ErrorResponse
	if err := json.Unmarshal(body, &er); err == nil && er.Error != "" {
		return er.Error
	}
	return strings.TrimSpace(string(body))
}
