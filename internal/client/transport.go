package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/query"
	"repro/internal/server"
	wiretext "repro/internal/wire/text"
)

// ErrResponseTooLarge is the sentinel wrapped by errors reporting that a
// JSON response body exceeded the client's configured cap; test with
// errors.Is. The binary transport never buffers whole bodies, so it cannot
// produce this error.
var ErrResponseTooLarge = errors.New("client: response too large")

// DefaultMaxResponseBytes caps JSON response bodies (1 GiB). Scans larger
// than this should stream over the binary transport instead of buffering.
const DefaultMaxResponseBytes = int64(1) << 30

// Transport performs single attempts of the daemon's read RPCs. Each
// method issues exactly one request — the Client layers the bounded retry
// loop on top, so a Transport reports a retryable failure by returning a
// *RetryableError and a terminal one by returning any other error.
type Transport interface {
	// Query performs one attempt of a box query. timeout > 0 is the
	// server-side deadline to request; ctx bounds the attempt client-side.
	Query(ctx context.Context, b query.Box, timeout time.Duration) (server.QueryResponse, error)
	// Scan performs one attempt of a raw curve-interval scan.
	Scan(ctx context.Context, ivs []query.Interval, timeout time.Duration) (server.QueryResponse, error)
	// ScanStream opens one attempt of a streaming scan. A returned Stream
	// means the server accepted the request; later failures surface from
	// Stream.Next and are not retried by the Client.
	ScanStream(ctx context.Context, ivs []query.Interval, timeout time.Duration) (*Stream, error)
	// QueryStream opens one attempt of a streaming box query, with the
	// same acceptance/retry split as ScanStream.
	QueryStream(ctx context.Context, b query.Box, timeout time.Duration) (*Stream, error)
	// Close releases the transport's persistent resources.
	Close() error
}

// RetryableError marks a failed attempt the Client may repeat: the server
// shed or refused the request, or the transport failed before a response
// was consumed.
type RetryableError struct {
	// RetryAfter is the server's backoff hint; negative means the server
	// gave none and the client's own backoff applies. Zero is meaningful:
	// retry immediately.
	RetryAfter time.Duration
	// Err is the underlying failure.
	Err error
}

func (e *RetryableError) Error() string { return e.Err.Error() }
func (e *RetryableError) Unwrap() error { return e.Err }

// retryable wraps err as hintless-retryable.
func retryable(err error) *RetryableError {
	return &RetryableError{RetryAfter: -1, Err: err}
}

// JSONTransport speaks the daemon's HTTP/JSON protocol — today's wire
// format, kept as the compatibility and debugging path. The zero value is
// not usable; set Base.
type JSONTransport struct {
	// Base is the daemon's HTTP base URL, e.g. "http://127.0.0.1:7171".
	Base string
	// HTTPClient substitutes the underlying client (default
	// http.DefaultClient).
	HTTPClient *http.Client
	// MaxResponseBytes caps response-body buffering (default
	// DefaultMaxResponseBytes). Larger bodies fail with
	// ErrResponseTooLarge.
	MaxResponseBytes int64
}

func (t *JSONTransport) hc() *http.Client {
	if t.HTTPClient != nil {
		return t.HTTPClient
	}
	return http.DefaultClient
}

func (t *JSONTransport) maxBody() int64 {
	if t.MaxResponseBytes > 0 {
		return t.MaxResponseBytes
	}
	return DefaultMaxResponseBytes
}

// Query implements Transport.
func (t *JSONTransport) Query(ctx context.Context, b query.Box, timeout time.Duration) (server.QueryResponse, error) {
	v := url.Values{}
	v.Set("lo", wiretext.FormatPoint(b.Lo))
	v.Set("hi", wiretext.FormatPoint(b.Hi))
	if timeout > 0 {
		v.Set("timeout", timeout.String())
	}
	return t.get(ctx, strings.TrimRight(t.Base, "/")+"/query?"+v.Encode())
}

// Scan implements Transport.
func (t *JSONTransport) Scan(ctx context.Context, ivs []query.Interval, timeout time.Duration) (server.QueryResponse, error) {
	v := url.Values{}
	v.Set("ivs", wiretext.FormatIntervals(ivs))
	if timeout > 0 {
		v.Set("timeout", timeout.String())
	}
	return t.get(ctx, strings.TrimRight(t.Base, "/")+"/scan?"+v.Encode())
}

// ScanStream implements Transport. JSON has no streaming encoding, so the
// whole response is fetched in this call and replayed as a one-batch
// stream — the API is uniform, only the transfer isn't incremental.
func (t *JSONTransport) ScanStream(ctx context.Context, ivs []query.Interval, timeout time.Duration) (*Stream, error) {
	resp, err := t.Scan(ctx, ivs, timeout)
	if err != nil {
		return nil, err
	}
	return newBufferedStream(resp), nil
}

// QueryStream implements Transport as a buffered shim, like ScanStream.
func (t *JSONTransport) QueryStream(ctx context.Context, b query.Box, timeout time.Duration) (*Stream, error) {
	resp, err := t.Query(ctx, b, timeout)
	if err != nil {
		return nil, err
	}
	return newBufferedStream(resp), nil
}

// Close implements Transport; the http.Client may be shared, so nothing is
// torn down.
func (t *JSONTransport) Close() error { return nil }

// get runs one GET attempt for a QueryResponse, classifying the failure
// modes: transport errors before a response and 429/503 answers are
// retryable; a consumed-but-broken body and every other status are
// terminal.
func (t *JSONTransport) get(ctx context.Context, reqURL string) (server.QueryResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, reqURL, nil)
	if err != nil {
		return server.QueryResponse{}, fmt.Errorf("client: %w", err)
	}
	resp, err := t.hc().Do(req)
	if err != nil {
		// No response at all: nothing was consumed, safe to retry —
		// unless the caller's context is what ended the attempt.
		if ctx.Err() != nil {
			return server.QueryResponse{}, fmt.Errorf("client: %w", ctx.Err())
		}
		return server.QueryResponse{}, retryable(err)
	}
	limit := t.maxBody()
	body, readErr := io.ReadAll(io.LimitReader(resp.Body, limit+1))
	resp.Body.Close()
	if int64(len(body)) > limit {
		return server.QueryResponse{}, fmt.Errorf("%w: body exceeds %d bytes (status %d)", ErrResponseTooLarge, limit, resp.StatusCode)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		if readErr != nil {
			// Partial body: never retried.
			return server.QueryResponse{}, fmt.Errorf("client: response truncated after %d bytes (not retried): %w", len(body), readErr)
		}
		var out server.QueryResponse
		if err := json.Unmarshal(body, &out); err != nil {
			return server.QueryResponse{}, fmt.Errorf("client: decoding response: %w", err)
		}
		return out, nil
	case http.StatusTooManyRequests:
		return server.QueryResponse{}, &RetryableError{
			RetryAfter: retryAfterHint(resp),
			Err:        fmt.Errorf("%w: %s", ErrOverloaded, errorBody(body)),
		}
	case http.StatusServiceUnavailable:
		return server.QueryResponse{}, &RetryableError{
			RetryAfter: retryAfterHint(resp),
			Err:        fmt.Errorf("%w: %s", ErrUnavailable, errorBody(body)),
		}
	default:
		// Complete non-retryable answer (400 bad box, 504 deadline, 500):
		// repeating it would repeat the failure.
		return server.QueryResponse{}, fmt.Errorf("client: server returned %d: %s", resp.StatusCode, errorBody(body))
	}
}

// retryAfterHint extracts the server's Retry-After header as a duration;
// negative means no hint.
func retryAfterHint(resp *http.Response) time.Duration {
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if sec, err := strconv.Atoi(ra); err == nil && sec >= 0 {
			return time.Duration(sec) * time.Second
		}
	}
	return -1
}

// errorBody extracts the server's JSON error message, falling back to the
// raw bytes.
func errorBody(body []byte) string {
	var er server.ErrorResponse
	if err := json.Unmarshal(body, &er); err == nil && er.Error != "" {
		return er.Error
	}
	return strings.TrimSpace(string(body))
}
