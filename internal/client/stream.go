package client

import (
	"io"
	"slices"

	"repro/internal/grid"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/wire"
)

// Stream is the iterator a streaming scan yields: record batches in curve
// order, then a trailer carrying the dark intervals and pages-read summary.
// A Stream is single-goroutine; Close may be called from anywhere once.
//
//	st, err := c.ScanStream(ctx, ivs)
//	if err != nil { ... }
//	defer st.Close()
//	for {
//		batch, err := st.Next()
//		if err == io.EOF { break }
//		if err != nil { ... }
//		consume(batch)
//	}
//	trailer, _ := st.Trailer()
type Stream struct {
	// recv yields the next batch, (nil, io.EOF) at end of stream, or the
	// failure that ended the stream. Implementations set s.trailer before
	// returning io.EOF.
	recv func(s *Stream) ([]store.Record, error)
	// stop releases transport resources; nil for buffered streams.
	stop func()

	trailer     wire.Trailer
	haveTrailer bool
	done        bool
	err         error
}

// Next returns the next batch of records, in curve order within and across
// batches. It returns (nil, io.EOF) when the stream ended cleanly — the
// trailer is then available — or the error that broke the stream. Batches
// alias an internal coordinate slab; they remain valid after subsequent
// Next calls.
func (s *Stream) Next() ([]store.Record, error) {
	if s.done {
		if s.err != nil {
			return nil, s.err
		}
		return nil, io.EOF
	}
	batch, err := s.recv(s)
	if err != nil {
		s.done = true
		if err != io.EOF {
			s.err = err
		}
		if s.stop != nil {
			s.stop()
		}
		return nil, err
	}
	return batch, nil
}

// Trailer returns the end-of-stream summary; ok is false until Next has
// returned io.EOF.
func (s *Stream) Trailer() (wire.Trailer, bool) {
	return s.trailer, s.haveTrailer
}

// Close abandons the stream. It is safe to call at any point and after
// Next returned io.EOF.
func (s *Stream) Close() error {
	if !s.done {
		s.done = true
		s.err = io.ErrClosedPipe
		if s.stop != nil {
			s.stop()
		}
	}
	return nil
}

// Collect drains the stream into a single QueryResponse — the bridge from
// the streaming API back to the buffered one.
func (s *Stream) Collect() (server.QueryResponse, error) {
	var out server.QueryResponse
	for {
		batch, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return server.QueryResponse{}, err
		}
		out.Records = slices.Grow(out.Records, len(batch))
		for _, r := range batch {
			out.Records = append(out.Records, server.WireRecord{Point: r.Point, Payload: r.Payload})
		}
	}
	tr, _ := s.Trailer()
	out.ShardsQueried = tr.ShardsQueried
	out.ElapsedUS = tr.ElapsedUS
	out.PagesRead = tr.PagesRead
	out.Complete = tr.Complete()
	if len(tr.Unavailable) > 0 {
		out.Unavailable = make([]server.WireInterval, len(tr.Unavailable))
		for i, iv := range tr.Unavailable {
			out.Unavailable[i] = server.WireInterval{Lo: iv.Lo, Hi: iv.Hi}
		}
	}
	return out, nil
}

// newBufferedStream replays an already-fetched QueryResponse as a
// one-batch stream — the JSON transport's streaming shim.
func newBufferedStream(resp server.QueryResponse) *Stream {
	sent := false
	s := &Stream{}
	s.recv = func(s *Stream) ([]store.Record, error) {
		if sent || len(resp.Records) == 0 {
			s.trailer = trailerFromResponse(resp)
			s.haveTrailer = true
			return nil, io.EOF
		}
		sent = true
		batch := make([]store.Record, len(resp.Records))
		for i, r := range resp.Records {
			batch[i] = store.Record{Point: grid.Point(r.Point), Payload: r.Payload}
		}
		return batch, nil
	}
	return s
}

// trailerFromResponse lifts a buffered response's summary fields into the
// wire trailer shape.
func trailerFromResponse(resp server.QueryResponse) wire.Trailer {
	t := wire.Trailer{
		ShardsQueried: resp.ShardsQueried,
		PagesRead:     resp.PagesRead,
		ElapsedUS:     resp.ElapsedUS,
	}
	if len(resp.Unavailable) > 0 {
		t.Unavailable = make([]query.Interval, len(resp.Unavailable))
		for i, iv := range resp.Unavailable {
			t.Unavailable[i] = query.Interval{Lo: iv.Lo, Hi: iv.Hi}
		}
	}
	return t
}
