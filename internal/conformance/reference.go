package conformance

import (
	"math"

	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/grid"
)

// nnStretchEngine is the production parallel engine under test.
func nnStretchEngine(c curve.Curve, workers int) core.NN {
	return core.NNStretchResult(c, workers)
}

// refNNStretch is the sequential brute-force oracle for (Davg, Dmax): an
// independently-coded single-pass sweep over the cells in Linear order,
// enumerating neighbors through the grid package's callback API rather than
// the engine's inlined dimension loop. It accumulates with the same
// Kahan-compensated scheme the engine specifies, so its result must agree
// bit-for-bit with core.NNStretch at workers = 1 — any divergence convicts
// one of the two implementations.
func refNNStretch(c curve.Curve) (davg, dmax float64) {
	u := c.Universe()
	n := u.N()
	if n == 1 {
		return 0, 0
	}
	var sumAvg, cAvg, sumMax, cMax float64
	p := u.NewPoint()
	for idx := uint64(0); idx < n; idx++ {
		u.FromLinear(idx, p)
		base := c.Index(p)
		var sum, max uint64
		deg := 0
		u.Neighbors(p, func(_ int, q grid.Point) {
			d := absDiff(base, c.Index(q))
			sum += d
			if d > max {
				max = d
			}
			deg++
		})
		y := float64(sum)/float64(deg) - cAvg
		t := sumAvg + y
		cAvg = (t - sumAvg) - y
		sumAvg = t

		y = float64(max) - cMax
		t = sumMax + y
		cMax = (t - sumMax) - y
		sumMax = t
	}
	return sumAvg / float64(n), sumMax / float64(n)
}

// refNNStretchTorus is the sequential oracle for the periodic-boundary
// engine, mirroring core.NNStretchTorus's plain (uncompensated) per-chunk
// accumulation over a single chunk so that workers = 1 must agree
// bit-for-bit.
func refNNStretchTorus(c curve.Curve) (davg, dmax float64) {
	u := c.Universe()
	n := u.N()
	if n == 1 {
		return 0, 0
	}
	side := u.Side()
	d := u.D()
	deltas := []uint32{1}
	if side > 2 {
		deltas = append(deltas, side-1)
	}
	var sumAvg, sumMax float64
	p := u.NewPoint()
	q := u.NewPoint()
	for idx := uint64(0); idx < n; idx++ {
		u.FromLinear(idx, p)
		base := c.Index(p)
		var sum, max uint64
		deg := 0
		copy(q, p)
		for dim := 0; dim < d; dim++ {
			for _, delta := range deltas {
				q[dim] = (p[dim] + delta) & (side - 1)
				if q[dim] == p[dim] {
					continue
				}
				dd := absDiff(base, c.Index(q))
				sum += dd
				if dd > max {
					max = dd
				}
				deg++
			}
			q[dim] = p[dim]
		}
		if deg == 0 {
			continue
		}
		sumAvg += float64(sum) / float64(deg)
		sumMax += float64(max)
	}
	return sumAvg / float64(n), sumMax / float64(n)
}

// absDiff returns |a − b| for curve indices.
func absDiff(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return b - a
}

// ulpDiff returns the distance between two non-negative floats in units in
// the last place — the number of representable float64 values strictly
// between them, plus one if they differ. Both arguments must be finite and
// ≥ 0 (every stretch metric is).
func ulpDiff(a, b float64) uint64 {
	ba, bb := math.Float64bits(a), math.Float64bits(b)
	if ba >= bb {
		return ba - bb
	}
	return bb - ba
}
