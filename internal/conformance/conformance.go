// Package conformance cross-checks every registered space filling curve
// against every stretch engine in the repository, turning the redundancy of
// the codebase — four independent ways to compute each metric — into a
// correctness backbone.
//
// The engine is table-driven: it enumerates every curve name in the curve
// registry across a sweep of (d, k) universes and runs three layers of
// checks on each case.
//
//   - Invariants: Index and Point are mutually inverse bijections covering
//     all n cells with outputs in range; repeated metric evaluations are
//     bit-for-bit deterministic, for every worker count; the unit-step
//     property holds exactly for the curves known to possess it.
//
//   - Differential: independently-coded sequential oracles agree with the
//     deterministic parallel engines (open-grid and torus); a table-backed
//     materialization of each curve shadows it bit-for-bit; the Monte-Carlo
//     samplers (uniform and importance-stratified) converge to the exact
//     values within computed confidence bounds; and exact measurements
//     match the closed forms of the bounds package wherever the paper (or
//     this reproduction) proves a formula — Λ_i(Z) of Lemma 5, Davg/Dmax of
//     the simple curve (Theorem 3, Proposition 2), and the S_{A′} identity
//     of Lemma 2, all as exact integer or ulp-bounded comparisons.
//
//   - Metamorphic: the stretch metrics are invariant under the grid
//     isometries (axis permutation, reflection) and under curve reversal;
//     Davg is monotone under grid refinement as the paper's Θ(n^(1−1/d))
//     growth predicts; and no curve at any finite n violates the universal
//     lower bound of Theorem 1, the Dmax ≥ Davg relation of Proposition 1,
//     the Lemma 3 sandwich, or the all-pairs bounds of Propositions 3–4.
//
// Floating-point comparisons between engines use a documented ulp budget
// (see the tolerance constants in checks.go); integer-valued quantities
// (Λ sums, S_{A′}, Dmax numerators) are compared exactly.
//
// The package is a plain library so fuzz targets, chaos runs, the
// experiment harness (experiment ext-conform) and the sfcconform CLI can
// all reuse it.
package conformance

import (
	"fmt"
	"sort"

	"repro/internal/bits"
	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/grid"
)

// Layer identifies which checking layer a result belongs to.
type Layer string

// The three layers of the engine.
const (
	Invariant    Layer = "invariant"
	Differential Layer = "differential"
	Metamorphic  Layer = "metamorphic"
)

// Status is the outcome of one check on one case.
type Status uint8

// Check outcomes. Skip means the check does not apply to the case (e.g. an
// all-pairs check above the O(n²) cap, or an axis-permutation check at
// d = 1) — a skip is not a pass, and the matrix renders it distinctly.
const (
	Pass Status = iota
	Fail
	Skip
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Pass:
		return "pass"
	case Fail:
		return "FAIL"
	case Skip:
		return "skip"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Config parameterizes a conformance sweep. The zero value is not usable;
// start from Quick or Full.
type Config struct {
	// Dims is the set of dimensionalities swept.
	Dims []int
	// MaxExactN caps universe sizes for the O(n·d) exact sweeps; k ranges
	// over 1 … max{k : 2^(d·k) ≤ MaxExactN} per dimension.
	MaxExactN uint64
	// MaxPairsN caps universe sizes for the O(n²) all-pairs checks; cases
	// above it skip those checks.
	MaxPairsN uint64
	// Samples is the budget for the Monte-Carlo convergence checks.
	Samples int
	// Seed drives the random curve and the samplers; a sweep is a pure
	// function of its Config.
	Seed int64
	// Workers is the set of worker counts the determinism checks sweep.
	Workers []int
	// SampleZ is the confidence multiplier for sampler convergence: the
	// sampled estimate must sit within SampleZ standard errors of the exact
	// value.
	SampleZ float64
}

// Quick returns the -short sweep: every curve over d ∈ {1, 2, 3}, universes
// up to 2^12 cells. It completes in well under a second of CPU time.
func Quick() Config {
	return Config{
		Dims:      []int{1, 2, 3},
		MaxExactN: 1 << 12,
		MaxPairsN: 1 << 9,
		Samples:   20_000,
		Seed:      20120521,
		Workers:   []int{1, 2, 3, 8},
		SampleZ:   8,
	}
}

// Full returns the CI sweep: universes up to 2^16 cells and a larger
// sampling budget.
func Full() Config {
	cfg := Quick()
	cfg.MaxExactN = 1 << 16
	cfg.MaxPairsN = 1 << 11
	cfg.Samples = 200_000
	return cfg
}

// Validate reports configuration errors.
func (cfg Config) Validate() error {
	if len(cfg.Dims) == 0 {
		return fmt.Errorf("conformance: no dimensions configured")
	}
	for _, d := range cfg.Dims {
		if d < 1 || d > bits.MaxKeyBits {
			return fmt.Errorf("conformance: bad dimension %d", d)
		}
	}
	if cfg.MaxExactN < 2 {
		return fmt.Errorf("conformance: MaxExactN = %d too small", cfg.MaxExactN)
	}
	if len(cfg.Workers) == 0 {
		return fmt.Errorf("conformance: no worker counts configured")
	}
	for _, w := range cfg.Workers {
		if w < 1 {
			return fmt.Errorf("conformance: bad worker count %d", w)
		}
	}
	if cfg.Samples < 2 {
		return fmt.Errorf("conformance: need at least 2 samples")
	}
	if cfg.SampleZ <= 0 {
		return fmt.Errorf("conformance: SampleZ must be positive")
	}
	return nil
}

// maxK returns the largest k ≥ 1 with 2^(d·k) ≤ limit, clamped to the key
// budget.
func maxK(d int, limit uint64) int {
	k := 1
	for (k+1)*d <= bits.MaxKeyBits && uint64(1)<<uint((k+1)*d) <= limit {
		k++
	}
	return k
}

// Result is the outcome of one check on one (curve, d, k) case.
type Result struct {
	Curve  string
	D, K   int
	Layer  Layer
	Check  string
	Status Status
	Detail string // failure message, or the reason for a skip
}

// Case renders the (curve, d, k) triple.
func (r Result) Case() string { return fmt.Sprintf("%s d=%d k=%d", r.Curve, r.D, r.K) }

// caseCtx carries one (curve, d, k) case through the check table, caching
// the exact stretch values so the ~dozen checks that need them share one
// parallel sweep.
type caseCtx struct {
	cfg       Config
	c         curve.Curve
	u         *grid.Universe
	nn        core.NN
	haveExact bool
	// prevDAvg is Davg of the same curve name at (d, k−1), for the
	// refinement-monotonicity check; prevOK reports whether it is set.
	prevDAvg float64
	prevOK   bool
}

// exact returns the cached exact stretch metrics, computing them on first
// use.
func (cx *caseCtx) exact() core.NN {
	if !cx.haveExact {
		cx.nn = nnStretchEngine(cx.c, 0)
		cx.haveExact = true
	}
	return cx.nn
}

// Check is one named conformance check.
type Check struct {
	Name  string
	Layer Layer
	Run   func(cx *caseCtx) (Status, string)
}

// Checks returns the full check table in layer order. The table is exported
// so callers (the CLI, the experiment harness) can render column legends.
func Checks() []Check {
	return []Check{
		{"bijection", Invariant, checkBijection},
		{"inverse", Invariant, checkInverse},
		{"determinism", Invariant, checkDeterminism},
		{"worker-sweep", Invariant, checkWorkerSweep},
		{"unit-step", Invariant, checkUnitStep},
		{"seq-oracle", Differential, checkSequentialOracle},
		{"torus-oracle", Differential, checkTorusOracle},
		{"table-shadow", Differential, checkTableShadow},
		{"kernel-batch", Differential, checkKernelBatch},
		{"kernel-sweep", Differential, checkKernelSweep},
		{"sampled-nn", Differential, checkSampledNN},
		{"stratified-nn", Differential, checkStratifiedNN},
		{"sampled-pairs", Differential, checkSampledAllPairs},
		{"form-simple", Differential, checkSimpleClosedForm},
		{"form-z-lambda", Differential, checkZLambdaClosedForm},
		{"form-saprime", Differential, checkSAPrimeIdentity},
		{"lemma3-sandwich", Differential, checkLemma3Sandwich},
		{"axis-perm", Metamorphic, checkAxisPermutation},
		{"reflection", Metamorphic, checkReflection},
		{"reversal", Metamorphic, checkReversal},
		{"refine-monotone", Metamorphic, checkRefinementMonotone},
		{"thm1-bound", Metamorphic, checkTheorem1Bound},
		{"prop1-maxavg", Metamorphic, checkDMaxGeDAvg},
		{"prop3-pairs-lb", Metamorphic, checkAllPairsLowerBound},
		{"prop4-simple-ub", Metamorphic, checkSimpleAllPairsUpperBound},
	}
}

// Run executes the full sweep and returns the report. The error is non-nil
// only for configuration or curve-construction problems; check failures are
// reported through the matrix (and Report.Failures), not the error.
func Run(cfg Config) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rep := &Report{Config: cfg}
	checks := Checks()
	names := curve.Names()
	sort.Strings(names)
	for _, d := range cfg.Dims {
		top := maxK(d, cfg.MaxExactN)
		// prev[name] is Davg at the previous k, feeding refine-monotone.
		prev := map[string]float64{}
		for k := 1; k <= top; k++ {
			u, err := grid.New(d, k)
			if err != nil {
				return nil, err
			}
			next := map[string]float64{}
			for _, name := range names {
				c, err := curve.ByName(name, u, cfg.Seed)
				if err != nil {
					return nil, fmt.Errorf("conformance: building %s over %v: %w", name, u, err)
				}
				cx := &caseCtx{cfg: cfg, c: c, u: u}
				if v, ok := prev[name]; ok {
					cx.prevDAvg, cx.prevOK = v, true
				}
				for _, ch := range checks {
					status, detail := ch.Run(cx)
					rep.Results = append(rep.Results, Result{
						Curve: name, D: d, K: k,
						Layer: ch.Layer, Check: ch.Name,
						Status: status, Detail: detail,
					})
				}
				next[name] = cx.exact().DAvg
			}
			prev = next
		}
	}
	return rep, nil
}
