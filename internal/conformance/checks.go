package conformance

import (
	"fmt"
	"math"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/grid"
)

// Floating-point tolerance budgets, in units in the last place. Integer-
// valued quantities — Dmax numerators (sums of uint64 curve distances,
// divided by the power-of-two n), Λ_i sums, S_{A′} — are exact in float64
// at every swept size and are compared with ulpsExact.
const (
	// ulpsExact: same value computed through the same accumulation order
	// (oracle vs workers=1, reversal metamorphism, integer-valued sums).
	ulpsExact = 0
	// ulpsWorkerSweep: the same Kahan-compensated sum split into a
	// different number of chunks. Kahan partials are correctly rounded to
	// well under one ulp each, so regroupings land within a couple of ulps
	// of each other.
	ulpsWorkerSweep = 8
	// ulpsIsometry: a full reordering of the per-cell terms (axis
	// permutation and reflection permute the cell enumeration). Each term
	// carries one rounding from the δavg division, so the budget scales
	// with the accumulated-error headroom rather than chunk count.
	ulpsIsometry = 1024
)

// relEps is the relative slack for closed-form and inequality comparisons
// whose two sides are computed through different float expressions.
const relEps = 1e-9

// cmpULP checks |got − want| within the given ulp budget.
func cmpULP(what string, got, want float64, ulps uint64) (Status, string) {
	if d := ulpDiff(got, want); d > ulps {
		return Fail, fmt.Sprintf("%s: got %.17g, want %.17g (%d ulps apart, budget %d)", what, got, want, d, ulps)
	}
	return Pass, ""
}

// --- Invariant layer ---

// checkBijection runs the full-enumeration bijection validation: Index is
// injective onto [0, n) and Point inverts it at every cell.
func checkBijection(cx *caseCtx) (Status, string) {
	if err := curve.Validate(cx.c); err != nil {
		return Fail, err.Error()
	}
	return Pass, ""
}

// checkInverse verifies the other composition: Index(Point(i)) = i for
// every curve position i (Validate covers Point∘Index; together they pin
// the pair as mutually inverse bijections).
func checkInverse(cx *caseCtx) (Status, string) {
	p := cx.u.NewPoint()
	for idx := uint64(0); idx < cx.u.N(); idx++ {
		cx.c.Point(idx, p)
		if !cx.u.Contains(p) {
			return Fail, fmt.Sprintf("Point(%d) = %v outside %v", idx, p, cx.u)
		}
		if got := cx.c.Index(p); got != idx {
			return Fail, fmt.Sprintf("Index(Point(%d)) = %d", idx, got)
		}
	}
	return Pass, ""
}

// checkDeterminism reruns both exact engines at a fixed worker count and
// demands bit-for-bit identical results.
func checkDeterminism(cx *caseCtx) (Status, string) {
	w := cx.cfg.Workers[len(cx.cfg.Workers)-1]
	r1 := core.NNStretchResult(cx.c, w)
	r2 := core.NNStretchResult(cx.c, w)
	if r1 != r2 {
		return Fail, fmt.Sprintf("NNStretchResult(workers=%d) not reproducible: (%.17g, %.17g) then (%.17g, %.17g)", w, r1.DAvg, r1.DMax, r2.DAvg, r2.DMax)
	}
	t1 := core.NNStretchTorusResult(cx.c, w)
	t2 := core.NNStretchTorusResult(cx.c, w)
	if t1 != t2 {
		return Fail, fmt.Sprintf("NNStretchTorusResult(workers=%d) not reproducible", w)
	}
	return Pass, ""
}

// checkWorkerSweep verifies the deterministic parallel reduction across the
// configured worker counts: Dmax (integer-valued) must match exactly, Davg
// within the worker-sweep ulp budget.
func checkWorkerSweep(cx *caseCtx) (Status, string) {
	base := core.NNStretchResult(cx.c, cx.cfg.Workers[0])
	for _, w := range cx.cfg.Workers[1:] {
		nn := core.NNStretchResult(cx.c, w)
		if nn.DMax != base.DMax {
			return Fail, fmt.Sprintf("Dmax(workers=%d) = %.17g, workers=%d gives %.17g", w, nn.DMax, cx.cfg.Workers[0], base.DMax)
		}
		if st, msg := cmpULP(fmt.Sprintf("Davg(workers=%d vs %d)", w, cx.cfg.Workers[0]), nn.DAvg, base.DAvg, ulpsWorkerSweep); st != Pass {
			return st, msg
		}
	}
	return Pass, ""
}

// checkUnitStep pins the classical continuity property for the curves whose
// status is known: Hilbert and snake are unit-step at every (d, k); the
// key-ordered curves (z, simple, table) are unit-step exactly on the line;
// the Gray curve is unit-step exactly when each coordinate is a single bit.
func checkUnitStep(cx *caseCtx) (Status, string) {
	var want bool
	switch cx.c.Name() {
	case "hilbert", "snake":
		want = true
	case "z", "simple", "table", "diagonal":
		want = cx.u.D() == 1
	case "gray":
		want = cx.u.K() == 1
	case "bitrev":
		want = cx.u.D() == 1 && cx.u.K() == 1
	default:
		return Skip, "no unit-step expectation for " + cx.c.Name()
	}
	if got := curve.IsUnitStep(cx.c); got != want {
		return Fail, fmt.Sprintf("IsUnitStep = %v, want %v", got, want)
	}
	return Pass, ""
}

// --- Differential layer ---

// checkSequentialOracle compares the independently-coded sequential sweep
// against the parallel engine: bit-for-bit at workers = 1 (identical
// accumulation order), within the worker-sweep budget at full parallelism.
func checkSequentialOracle(cx *caseCtx) (Status, string) {
	refAvg, refMax := refNNStretch(cx.c)
	nn1 := core.NNStretchResult(cx.c, 1)
	if st, msg := cmpULP("Davg oracle vs workers=1", nn1.DAvg, refAvg, ulpsExact); st != Pass {
		return st, msg
	}
	if st, msg := cmpULP("Dmax oracle vs workers=1", nn1.DMax, refMax, ulpsExact); st != Pass {
		return st, msg
	}
	ex := cx.exact()
	if st, msg := cmpULP("Davg oracle vs parallel", ex.DAvg, refAvg, ulpsWorkerSweep); st != Pass {
		return st, msg
	}
	return cmpULP("Dmax oracle vs parallel", ex.DMax, refMax, ulpsExact)
}

// checkTorusOracle does the same for the periodic-boundary engine, and at
// k = 1 — where wrapping adds no new neighbors — additionally requires the
// torus and open-grid engines to agree on the same numbers.
func checkTorusOracle(cx *caseCtx) (Status, string) {
	refAvg, refMax := refNNStretchTorus(cx.c)
	nn1 := core.NNStretchTorusResult(cx.c, 1)
	if st, msg := cmpULP("torus Davg oracle vs workers=1", nn1.DAvg, refAvg, ulpsExact); st != Pass {
		return st, msg
	}
	if st, msg := cmpULP("torus Dmax oracle vs workers=1", nn1.DMax, refMax, ulpsExact); st != Pass {
		return st, msg
	}
	nnP := core.NNStretchTorusResult(cx.c, 0)
	if st, msg := cmpULP("torus Davg oracle vs parallel", nnP.DAvg, refAvg, ulpsWorkerSweep); st != Pass {
		return st, msg
	}
	if st, msg := cmpULP("torus Dmax oracle vs parallel", nnP.DMax, refMax, ulpsExact); st != Pass {
		return st, msg
	}
	if cx.u.K() == 1 {
		open := cx.exact()
		if st, msg := cmpULP("torus vs open Davg at k=1", nn1.DAvg, open.DAvg, ulpsWorkerSweep); st != Pass {
			return st, msg
		}
		return cmpULP("torus vs open Dmax at k=1", nn1.DMax, open.DMax, ulpsExact)
	}
	return Pass, ""
}

// checkTableShadow materializes the curve into an explicit lookup Table and
// demands the shadow agree with the original bit-for-bit — both pointwise
// (every cell's index) and through the stretch engine, which exercises the
// table-backed code path against the arithmetic implementation.
func checkTableShadow(cx *caseCtx) (Status, string) {
	switch cx.c.(type) {
	case *curve.Table, *curve.Random:
		return Skip, "curve is already table-backed"
	}
	perm := make([]uint64, cx.u.N())
	cx.u.Cells(func(lin uint64, p grid.Point) bool {
		perm[lin] = cx.c.Index(p)
		return true
	})
	shadow, err := curve.NewTable(cx.u, cx.c.Name()+"-shadow", perm)
	if err != nil {
		return Fail, fmt.Sprintf("materializing table shadow: %v", err)
	}
	p := cx.u.NewPoint()
	q := cx.u.NewPoint()
	for idx := uint64(0); idx < cx.u.N(); idx++ {
		cx.c.Point(idx, p)
		shadow.Point(idx, q)
		if !p.Equal(q) {
			return Fail, fmt.Sprintf("shadow Point(%d) = %v, curve gives %v", idx, q, p)
		}
	}
	sh := core.NNStretchResult(shadow, 0)
	ex := cx.exact()
	if st, msg := cmpULP("shadow Davg", sh.DAvg, ex.DAvg, ulpsExact); st != Pass {
		return st, msg
	}
	return cmpULP("shadow Dmax", sh.DMax, ex.DMax, ulpsExact)
}

// checkKernelBatch drives the curve's kernel layer — IndexBatch, PointBatch,
// NeighborKeys and NeighborKeysTorus — pointwise against the scalar
// Index/Point at every cell. It runs for every curve: curves without native
// kernels exercise the generic adapters, which carry the same bit-identity
// contract.
func checkKernelBatch(cx *caseCtx) (Status, string) {
	u, c := cx.u, cx.c
	d := u.D()
	n := int(u.N())
	side := u.Side()

	coords := make([]uint32, n*d)
	u.Cells(func(lin uint64, p grid.Point) bool {
		copy(coords[int(lin)*d:], p)
		return true
	})
	keys := make([]uint64, n)
	curve.NewBatcher(c).IndexBatch(coords, keys)
	for lin := 0; lin < n; lin++ {
		p := grid.Point(coords[lin*d : (lin+1)*d])
		if want := c.Index(p); keys[lin] != want {
			return Fail, fmt.Sprintf("IndexBatch(%v) = %d, scalar Index = %d", p, keys[lin], want)
		}
	}
	back := make([]uint32, n*d)
	curve.NewBatcher(c).PointBatch(keys, back)
	q := u.NewPoint()
	for lin := 0; lin < n; lin++ {
		c.Point(keys[lin], q)
		if !q.Equal(grid.Point(back[lin*d : (lin+1)*d])) {
			return Fail, fmt.Sprintf("PointBatch(%d) = %v, scalar Point = %v", keys[lin], back[lin*d:(lin+1)*d], q)
		}
	}

	nk := curve.NewNeighborKeyer(c)
	got := make([]uint64, 2*d)
	want := make([]uint64, 2*d)
	var failure string
	u.Cells(func(lin uint64, p grid.Point) bool {
		base := keys[lin]
		for dim := 0; dim < d; dim++ {
			want[2*dim] = curve.InvalidKey
			want[2*dim+1] = curve.InvalidKey
		}
		nk.NeighborKeys(p, base, got)
		u.NeighborsInto(p, q, func(dim int, nb grid.Point) {
			slot := 2 * dim
			if nb[dim] == p[dim]+1 {
				slot++
			}
			want[slot] = c.Index(nb)
		})
		for i := range want {
			if got[i] != want[i] {
				failure = fmt.Sprintf("NeighborKeys(%v)[%d] = %#x, scalar gives %#x", p, i, got[i], want[i])
				return false
			}
		}
		for dim := 0; dim < d; dim++ {
			want[2*dim] = curve.InvalidKey
			want[2*dim+1] = curve.InvalidKey
		}
		nk.NeighborKeysTorus(p, base, got)
		u.NeighborsTorusInto(p, q, func(dim int, nb grid.Point) {
			slot := 2 * dim
			if nb[dim] == (p[dim]+1)&(side-1) {
				slot++
			}
			want[slot] = c.Index(nb)
		})
		for i := range want {
			if got[i] != want[i] {
				failure = fmt.Sprintf("NeighborKeysTorus(%v)[%d] = %#x, scalar gives %#x", p, i, got[i], want[i])
				return false
			}
		}
		return true
	})
	if failure != "" {
		return Fail, failure
	}

	// The block forms must reproduce the per-cell forms over the whole
	// universe in one call.
	blk := make([]uint64, n*2*d)
	nk.NeighborKeysBlock(coords, keys, blk)
	for lin := 0; lin < n; lin++ {
		p := grid.Point(coords[lin*d : (lin+1)*d])
		nk.NeighborKeys(p, keys[lin], got)
		for i := range got {
			if blk[lin*2*d+i] != got[i] {
				return Fail, fmt.Sprintf("NeighborKeysBlock(%v)[%d] = %#x, per-cell gives %#x",
					p, i, blk[lin*2*d+i], got[i])
			}
		}
	}
	nk.NeighborKeysTorusBlock(coords, keys, blk)
	for lin := 0; lin < n; lin++ {
		p := grid.Point(coords[lin*d : (lin+1)*d])
		nk.NeighborKeysTorus(p, keys[lin], got)
		for i := range got {
			if blk[lin*2*d+i] != got[i] {
				return Fail, fmt.Sprintf("NeighborKeysTorusBlock(%v)[%d] = %#x, per-cell gives %#x",
					p, i, blk[lin*2*d+i], got[i])
			}
		}
	}
	return Pass, ""
}

// checkKernelSweep requires the kernelized stretch engines (batched NN,
// torus and Λ sweeps) to reproduce the legacy scalar sweeps bit-for-bit,
// forcing the scalar path via curve.ScalarOnly. Curves without a native
// kernel skip: both sides would take the identical scalar path.
func checkKernelSweep(cx *caseCtx) (Status, string) {
	if !curve.HasKernel(cx.c) {
		return Skip, "curve has no kernel fast path"
	}
	ref := curve.ScalarOnly(cx.c)
	kn := core.NNStretchResult(cx.c, 0)
	sn := core.NNStretchResult(ref, 0)
	if st, msg := cmpULP("kernel Davg vs scalar sweep", kn.DAvg, sn.DAvg, ulpsExact); st != Pass {
		return st, msg
	}
	if st, msg := cmpULP("kernel Dmax vs scalar sweep", kn.DMax, sn.DMax, ulpsExact); st != Pass {
		return st, msg
	}
	kt := core.NNStretchTorusResult(cx.c, 0)
	st := core.NNStretchTorusResult(ref, 0)
	if s, msg := cmpULP("kernel torus Davg vs scalar sweep", kt.DAvg, st.DAvg, ulpsExact); s != Pass {
		return s, msg
	}
	if s, msg := cmpULP("kernel torus Dmax vs scalar sweep", kt.DMax, st.DMax, ulpsExact); s != Pass {
		return s, msg
	}
	kl := core.Lambdas(cx.c, 0)
	sl := core.Lambdas(ref, 0)
	for i := range sl {
		if kl[i] != sl[i] {
			return Fail, fmt.Sprintf("kernel Λ_%d = %d, scalar sweep gives %d", i+1, kl[i], sl[i])
		}
	}
	return Pass, ""
}

// checkSampledNN verifies the uniform Monte-Carlo estimator converges to
// the exact Davg within its own computed confidence bound. It applies only
// when the sample budget covers the universe (samples ≥ n), where the
// uniform estimator's self-reported standard error is trustworthy even for
// the heavy-tailed hierarchical curves.
func checkSampledNN(cx *caseCtx) (Status, string) {
	n := cx.u.N()
	if uint64(cx.cfg.Samples) < n {
		return Skip, fmt.Sprintf("sample budget %d < n=%d", cx.cfg.Samples, n)
	}
	est, err := core.SampledNNStretch(cx.c, cx.cfg.Samples, cx.cfg.Seed+1)
	if err != nil {
		return Fail, err.Error()
	}
	davg := cx.exact().DAvg
	tol := cx.cfg.SampleZ*est.DAvgStdErr + relEps*(1+davg)
	if diff := math.Abs(est.DAvg - davg); diff > tol {
		return Fail, fmt.Sprintf("sampled Davg %.9g vs exact %.9g: |diff| %.3g > %.1f·stderr %.3g",
			est.DAvg, davg, diff, cx.cfg.SampleZ, est.DAvgStdErr)
	}
	return Pass, ""
}

// checkStratifiedNN verifies the importance-stratified estimator — the
// engine that remains unbiased at astronomically large n — against the
// exact value within a documented relative tolerance.
func checkStratifiedNN(cx *caseCtx) (Status, string) {
	const stratifiedRelTol = 0.15
	d, k := cx.u.D(), cx.u.K()
	perStratum := cx.cfg.Samples / (d * k * 10)
	if perStratum < 200 {
		perStratum = 200
	}
	if d == 1 && uint64(perStratum) < uint64(1)<<uint(k-1) {
		// Below this budget the d=1 estimator samples with replacement;
		// at or above it, it enumerates strata exhaustively and is exact.
		perStratum = 1 << uint(k-1)
	}
	est, err := core.StratifiedNNStretch(cx.c, perStratum, cx.cfg.Seed+2)
	if err != nil {
		return Fail, err.Error()
	}
	davg := cx.exact().DAvg
	tol := stratifiedRelTol*davg + relEps
	if d == 1 {
		// Exhaustive on a line: exact up to summation-order rounding.
		tol = relEps * (1 + davg)
	}
	if diff := math.Abs(est.DAvg - davg); diff > tol {
		return Fail, fmt.Sprintf("stratified Davg %.9g vs exact %.9g: |diff| %.3g > tol %.3g",
			est.DAvg, davg, diff, tol)
	}
	return Pass, ""
}

// checkSampledAllPairs verifies the sampled all-pairs estimator against the
// exact O(n²) sweep within its confidence bound.
func checkSampledAllPairs(cx *caseCtx) (Status, string) {
	n := cx.u.N()
	if n > cx.cfg.MaxPairsN {
		return Skip, fmt.Sprintf("n=%d above all-pairs cap %d", n, cx.cfg.MaxPairsN)
	}
	exact, err := core.AllPairsStretch(cx.c, core.Manhattan, 0)
	if err != nil {
		return Fail, err.Error()
	}
	est, err := core.SampledAllPairsStretch(cx.c, core.Manhattan, cx.cfg.Samples, cx.cfg.Seed+3)
	if err != nil {
		return Fail, err.Error()
	}
	tol := cx.cfg.SampleZ*est.StdErr + relEps*(1+exact)
	if diff := math.Abs(est.Mean - exact); diff > tol {
		return Fail, fmt.Sprintf("sampled all-pairs %.9g vs exact %.9g: |diff| %.3g > %.1f·stderr %.3g",
			est.Mean, exact, diff, cx.cfg.SampleZ, est.StdErr)
	}
	return Pass, ""
}

// checkSimpleClosedForm compares the measured simple-curve stretch against
// the exact finite-n closed forms: Davg from the boundary-subset formula
// behind Theorem 3, Dmax = n^(1−1/d) from Proposition 2 (integer-valued,
// hence exact).
func checkSimpleClosedForm(cx *caseCtx) (Status, string) {
	if cx.c.Name() != "simple" {
		return Skip, "closed form applies to the simple curve"
	}
	ex := cx.exact()
	d, k := cx.u.D(), cx.u.K()
	closedAvg := bounds.SimpleDAvgExact(d, k)
	if diff := math.Abs(ex.DAvg - closedAvg); diff > relEps*(1+closedAvg) {
		return Fail, fmt.Sprintf("Davg measured %.17g, closed form %.17g", ex.DAvg, closedAvg)
	}
	return cmpULP("Dmax vs Proposition 2", ex.DMax, bounds.SimpleDMaxExact(d, k), ulpsExact)
}

// checkZLambdaClosedForm compares the measured per-dimension sums Λ_i
// against Lemma 5's exact finite-n formula — integer arithmetic on both
// sides, so equality is exact. It applies to the Z curve and to its
// registered table-backed twin.
func checkZLambdaClosedForm(cx *caseCtx) (Status, string) {
	name := cx.c.Name()
	if name != "z" && name != "table" {
		return Skip, "closed form applies to the Z curve (and its table twin)"
	}
	d, k := cx.u.D(), cx.u.K()
	lambdas := core.Lambdas(cx.c, 0)
	var total uint64
	for i := 1; i <= d; i++ {
		want := bounds.ZLambdaExact(d, k, i)
		if !want.IsUint64() || want.Uint64() != lambdas[i-1] {
			return Fail, fmt.Sprintf("Λ_%d measured %d, Lemma 5 closed form %v", i, lambdas[i-1], want)
		}
		total += lambdas[i-1]
	}
	if want := bounds.ZSumNNExact(d, k); !want.IsUint64() || want.Uint64() != total {
		return Fail, fmt.Sprintf("ΣΛ measured %d, closed form %v", total, want)
	}
	return Pass, ""
}

// checkSAPrimeIdentity verifies Lemma 2 exactly: the total curve distance
// over ordered pairs is (n−1)n(n+1)/3 for every bijection.
func checkSAPrimeIdentity(cx *caseCtx) (Status, string) {
	n := cx.u.N()
	if n > cx.cfg.MaxPairsN {
		return Skip, fmt.Sprintf("n=%d above all-pairs cap %d", n, cx.cfg.MaxPairsN)
	}
	got, err := core.SAPrime(cx.c, 0)
	if err != nil {
		return Fail, err.Error()
	}
	want := core.SAPrimeIdentity(n)
	if !want.IsUint64() || want.Uint64() != got {
		return Fail, fmt.Sprintf("S_A' measured %d, Lemma 2 identity %v", got, want)
	}
	return Pass, ""
}

// checkLemma3Sandwich verifies Lemma 3's sandwich from the integer NN-pair
// sum: ΣΛ/(n·d) ≤ Davg ≤ 2·ΣΛ/(n·d).
func checkLemma3Sandwich(cx *caseCtx) (Status, string) {
	lo, hi := core.Lemma3Bounds(cx.c, 0)
	davg := cx.exact().DAvg
	eps := relEps * (1 + davg)
	if davg < lo-eps || davg > hi+eps {
		return Fail, fmt.Sprintf("Davg %.9g outside Lemma 3 sandwich [%.9g, %.9g]", davg, lo, hi)
	}
	return Pass, ""
}

// --- Metamorphic layer ---

// checkAxisPermutation verifies stretch invariance under a cyclic axis
// permutation — a grid isometry, so both metrics must be preserved for
// every curve, not only the symmetric ones (the permuted curve is a
// different bijection with the same neighbor-distance multiset).
func checkAxisPermutation(cx *caseCtx) (Status, string) {
	d := cx.u.D()
	if d == 1 {
		return Skip, "no nontrivial axis permutation at d=1"
	}
	perm := make([]int, d)
	for i := range perm {
		perm[i] = (i + 1) % d
	}
	wrapped, err := curve.NewAxisPermuted(cx.c, perm)
	if err != nil {
		return Fail, err.Error()
	}
	w := core.NNStretchResult(wrapped, 0)
	ex := cx.exact()
	if st, msg := cmpULP("Dmax under axis permutation", w.DMax, ex.DMax, ulpsExact); st != Pass {
		return st, msg
	}
	return cmpULP("Davg under axis permutation", w.DAvg, ex.DAvg, ulpsIsometry)
}

// checkReflection verifies stretch invariance under reflecting every axis.
func checkReflection(cx *caseCtx) (Status, string) {
	mask := uint64(1)<<uint(cx.u.D()) - 1
	wrapped := curve.NewReflected(cx.c, mask)
	w := core.NNStretchResult(wrapped, 0)
	ex := cx.exact()
	if st, msg := cmpULP("Dmax under reflection", w.DMax, ex.DMax, ulpsExact); st != Pass {
		return st, msg
	}
	return cmpULP("Davg under reflection", w.DAvg, ex.DAvg, ulpsIsometry)
}

// checkReversal verifies stretch invariance under index reversal
// π → n−1−π, which preserves every curve distance exactly and visits cells
// in the same enumeration order — so the agreement must be bit-for-bit.
func checkReversal(cx *caseCtx) (Status, string) {
	wrapped := curve.NewReversed(cx.c)
	w := core.NNStretchResult(wrapped, 0)
	ex := cx.exact()
	if st, msg := cmpULP("Dmax under reversal", w.DMax, ex.DMax, ulpsExact); st != Pass {
		return st, msg
	}
	return cmpULP("Davg under reversal", w.DAvg, ex.DAvg, ulpsExact)
}

// checkRefinementMonotone verifies Davg does not decrease under grid
// refinement k−1 → k, as the paper's Θ(n^(1−1/d)) growth predicts (on the
// line the key-ordered curves sit at the constant 1, so the comparison is
// non-strict).
func checkRefinementMonotone(cx *caseCtx) (Status, string) {
	if !cx.prevOK {
		return Skip, "no coarser grid in sweep"
	}
	davg := cx.exact().DAvg
	if davg < cx.prevDAvg-relEps*(1+davg) {
		return Fail, fmt.Sprintf("Davg %.9g at k=%d below %.9g at k=%d", davg, cx.u.K(), cx.prevDAvg, cx.u.K()-1)
	}
	return Pass, ""
}

// checkTheorem1Bound verifies the paper's universal lower bound at this
// finite n: Davg(π) ≥ (2/3d)(n^(1−1/d) − n^(−1−1/d)) for every bijection.
func checkTheorem1Bound(cx *caseCtx) (Status, string) {
	davg := cx.exact().DAvg
	lb := bounds.NNAvgLowerBound(cx.u.D(), cx.u.K())
	if davg < lb-relEps*(1+lb) {
		return Fail, fmt.Sprintf("Davg %.9g violates Theorem 1 bound %.9g", davg, lb)
	}
	return Pass, ""
}

// checkDMaxGeDAvg verifies Dmax ≥ Davg, the relation behind Proposition 1.
func checkDMaxGeDAvg(cx *caseCtx) (Status, string) {
	ex := cx.exact()
	if ex.DMax < ex.DAvg-relEps*(1+ex.DAvg) {
		return Fail, fmt.Sprintf("Dmax %.9g < Davg %.9g", ex.DMax, ex.DAvg)
	}
	return Pass, ""
}

// checkAllPairsLowerBound verifies Proposition 3's all-pairs lower bounds
// under both metrics on the exact O(n²) sweep.
func checkAllPairsLowerBound(cx *caseCtx) (Status, string) {
	n := cx.u.N()
	if n > cx.cfg.MaxPairsN {
		return Skip, fmt.Sprintf("n=%d above all-pairs cap %d", n, cx.cfg.MaxPairsN)
	}
	d, k := cx.u.D(), cx.u.K()
	for _, mc := range []struct {
		m  core.Metric
		lb float64
	}{
		{core.Manhattan, bounds.AllPairsManhattanLB(d, k)},
		{core.Euclidean, bounds.AllPairsEuclideanLB(d, k)},
	} {
		got, err := core.AllPairsStretch(cx.c, mc.m, 0)
		if err != nil {
			return Fail, err.Error()
		}
		if got < mc.lb-relEps*(1+mc.lb) {
			return Fail, fmt.Sprintf("str_avg,%s %.9g violates Proposition 3 bound %.9g", mc.m, got, mc.lb)
		}
	}
	return Pass, ""
}

// checkSimpleAllPairsUpperBound verifies Proposition 4 for the simple
// curve: the average all-pairs stretch under both metrics is at most
// n^(1−1/d) (√2·n^(1−1/d) Euclidean), and by Lemma 7 the Manhattan bound
// holds pair by pair, so the max pair stretch obeys it too.
func checkSimpleAllPairsUpperBound(cx *caseCtx) (Status, string) {
	if cx.c.Name() != "simple" {
		return Skip, "Proposition 4 applies to the simple curve"
	}
	n := cx.u.N()
	if n > cx.cfg.MaxPairsN {
		return Skip, fmt.Sprintf("n=%d above all-pairs cap %d", n, cx.cfg.MaxPairsN)
	}
	d, k := cx.u.D(), cx.u.K()
	ubM := bounds.SimpleAllPairsManhattanUB(d, k)
	ubE := bounds.SimpleAllPairsEuclideanUB(d, k)
	avgM, err := core.AllPairsStretch(cx.c, core.Manhattan, 0)
	if err != nil {
		return Fail, err.Error()
	}
	if avgM > ubM+relEps*(1+ubM) {
		return Fail, fmt.Sprintf("str_avg,M %.9g above Proposition 4 bound %.9g", avgM, ubM)
	}
	avgE, err := core.AllPairsStretch(cx.c, core.Euclidean, 0)
	if err != nil {
		return Fail, err.Error()
	}
	if avgE > ubE+relEps*(1+ubE) {
		return Fail, fmt.Sprintf("str_avg,E %.9g above Proposition 4 bound %.9g", avgE, ubE)
	}
	maxM, err := core.MaxPairStretch(cx.c, core.Manhattan, 0)
	if err != nil {
		return Fail, err.Error()
	}
	if maxM > ubM+relEps*(1+ubM) {
		return Fail, fmt.Sprintf("max pair stretch %.9g above Lemma 7 per-pair bound %.9g", maxM, ubM)
	}
	return Pass, ""
}
