package conformance

import (
	"fmt"
	"sort"
	"strings"
)

// Report collects every Result of a sweep.
type Report struct {
	Config  Config
	Results []Result
}

// Failures returns the failed results, in sweep order.
func (r *Report) Failures() []Result {
	var out []Result
	for _, res := range r.Results {
		if res.Status == Fail {
			out = append(out, res)
		}
	}
	return out
}

// Counts returns the number of passed, failed and skipped check instances.
func (r *Report) Counts() (pass, fail, skip int) {
	for _, res := range r.Results {
		switch res.Status {
		case Pass:
			pass++
		case Fail:
			fail++
		case Skip:
			skip++
		}
	}
	return pass, fail, skip
}

// OK reports whether no check instance failed.
func (r *Report) OK() bool {
	_, fail, _ := r.Counts()
	return fail == 0
}

// cell is one aggregated matrix entry: the outcome of one check across all
// (d, k) cases of one curve.
func (r *Report) cell(curveName, check string) string {
	pass, fail, skip := 0, 0, 0
	for _, res := range r.Results {
		if res.Curve != curveName || res.Check != check {
			continue
		}
		switch res.Status {
		case Pass:
			pass++
		case Fail:
			fail++
		case Skip:
			skip++
		}
	}
	switch {
	case fail > 0:
		return fmt.Sprintf("FAIL:%d", fail)
	case pass > 0:
		return fmt.Sprintf("ok:%d", pass)
	case skip > 0:
		return "—"
	default:
		return "?"
	}
}

// Curves returns the curve names appearing in the report, sorted.
func (r *Report) Curves() []string {
	seen := map[string]bool{}
	for _, res := range r.Results {
		seen[res.Curve] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Matrix renders the per-curve × per-check conformance matrix as aligned
// text. Each cell aggregates every (d, k) case of the curve: "ok:N" for N
// passing instances, "FAIL:N" for N failures (any failure dominates), "—"
// when the check never applied.
func (r *Report) Matrix() string {
	checks := Checks()
	curves := r.Curves()
	header := make([]string, 0, len(checks)+1)
	header = append(header, "curve")
	for _, ch := range checks {
		header = append(header, ch.Name)
	}
	rows := [][]string{header}
	for _, name := range curves {
		row := make([]string, 0, len(checks)+1)
		row = append(row, name)
		for _, ch := range checks {
			row = append(row, r.cell(name, ch.Name))
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cellv := range row {
			if w := len([]rune(cellv)); w > widths[i] {
				widths[i] = w
			}
		}
	}
	var b strings.Builder
	for ri, row := range rows {
		for i, cellv := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cellv)
			for pad := len([]rune(cellv)); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// CSV renders every individual check instance as comma-separated rows —
// the machine-readable artifact uploaded by CI.
func (r *Report) CSV() string {
	var b strings.Builder
	b.WriteString("curve,d,k,layer,check,status,detail\n")
	for _, res := range r.Results {
		detail := strings.NewReplacer(",", ";", "\n", " ").Replace(res.Detail)
		fmt.Fprintf(&b, "%s,%d,%d,%s,%s,%s,%s\n", res.Curve, res.D, res.K, res.Layer, res.Check, res.Status, detail)
	}
	return b.String()
}

// Summary renders the one-line outcome.
func (r *Report) Summary() string {
	pass, fail, skip := r.Counts()
	verdict := "GREEN"
	if fail > 0 {
		verdict = "RED"
	}
	return fmt.Sprintf("conformance %s: %d checks passed, %d failed, %d skipped (%d curves, dims %v, n ≤ %d)",
		verdict, pass, fail, skip, len(r.Curves()), r.Config.Dims, r.Config.MaxExactN)
}
