package conformance

import (
	"strings"
	"testing"

	"repro/internal/curve"
	"repro/internal/grid"
)

// testConfig returns the sweep budget for go test: the quick sweep under
// -short, the full sweep otherwise.
func testConfig(t testing.TB) Config {
	t.Helper()
	if testing.Short() {
		return Quick()
	}
	cfg := Full()
	// Keep the default `go test ./...` wall time modest; CI's dedicated
	// conformance job runs the unshrunk Full sweep through cmd/sfcconform.
	cfg.MaxExactN = 1 << 14
	cfg.MaxPairsN = 1 << 10
	cfg.Samples = 50_000
	return cfg
}

// TestConformanceSweep is the repository's cross-engine backbone: every
// registered curve over d ∈ {1,2,3}, every check layer, and a fully green
// matrix required.
func TestConformanceSweep(t *testing.T) {
	rep, err := Run(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures() {
		t.Errorf("%s: [%s] %s: %s", f.Case(), f.Layer, f.Check, f.Detail)
	}
	pass, fail, _ := rep.Counts()
	if pass == 0 {
		t.Fatal("sweep ran no passing checks")
	}
	if fail == 0 && !rep.OK() {
		t.Fatal("OK() inconsistent with counts")
	}
	t.Log(rep.Summary())
}

// TestEveryRegisteredCurveCovered pins that the sweep enumerates the full
// registry — a new curve cannot be added without entering the matrix.
func TestEveryRegisteredCurveCovered(t *testing.T) {
	cfg := Quick()
	cfg.Dims = []int{2}
	cfg.MaxExactN = 1 << 6
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	covered := map[string]bool{}
	for _, res := range rep.Results {
		covered[res.Curve] = true
	}
	for _, name := range curve.Names() {
		if !covered[name] {
			t.Errorf("registered curve %q missing from sweep", name)
		}
	}
}

// TestReportRendering exercises the matrix, CSV and summary renderers on a
// tiny sweep.
func TestReportRendering(t *testing.T) {
	cfg := Quick()
	cfg.Dims = []int{1, 2}
	cfg.MaxExactN = 1 << 6
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	matrix := rep.Matrix()
	for _, name := range curve.Names() {
		if !strings.Contains(matrix, name) {
			t.Errorf("matrix lacks curve %q:\n%s", name, matrix)
		}
	}
	for _, ch := range Checks() {
		if !strings.Contains(matrix, ch.Name) {
			t.Errorf("matrix lacks check column %q", ch.Name)
		}
	}
	csv := rep.CSV()
	if lines := strings.Count(csv, "\n"); lines != len(rep.Results)+1 {
		t.Errorf("CSV has %d lines for %d results", lines, len(rep.Results))
	}
	if sum := rep.Summary(); !strings.Contains(sum, "conformance") {
		t.Errorf("summary %q", sum)
	}
}

// TestDetectsBrokenCurve feeds the check table a deliberately corrupted
// bijection and requires the invariant layer to convict it — the engine
// must be able to fail.
func TestDetectsBrokenCurve(t *testing.T) {
	u := grid.MustNew(2, 2)
	n := u.N()
	perm := make([]uint64, n)
	for i := range perm {
		perm[i] = uint64(i)
	}
	// Swap two entries of the inverse only, breaking Index∘Point ≠ id
	// while keeping Index a valid bijection.
	tbl, err := curve.NewTable(u, "broken", perm)
	if err != nil {
		t.Fatal(err)
	}
	cx := &caseCtx{cfg: Quick(), c: &misindexed{tbl}, u: u}
	if st, _ := checkInverse(cx); st != Fail {
		t.Fatalf("inverse check on corrupted curve: %v", st)
	}
	if st, _ := checkBijection(cx); st != Fail {
		t.Fatalf("bijection check on corrupted curve: %v", st)
	}
}

// misindexed wraps a curve, corrupting Index for a single cell.
type misindexed struct{ curve.Curve }

func (m *misindexed) Index(p grid.Point) uint64 {
	idx := m.Curve.Index(p)
	if idx == 0 {
		return 1 // collide with the cell at index 1
	}
	return idx
}

// TestULPDiff pins the comparison helper.
func TestULPDiff(t *testing.T) {
	if d := ulpDiff(1.0, 1.0); d != 0 {
		t.Fatalf("ulpDiff(1,1) = %d", d)
	}
	next := 1.0 + 1.0/(1<<52)
	if d := ulpDiff(1.0, next); d != 1 {
		t.Fatalf("ulpDiff(1, nextafter) = %d", d)
	}
	if d := ulpDiff(0, 1.5); d == 0 {
		t.Fatal("distinct values at zero distance")
	}
}
