package nbody

import (
	"fmt"
	"testing"

	"repro/internal/curve"
	"repro/internal/grid"
)

// BenchmarkStepAblation compares the sequential and parallel force sweeps —
// the disjoint-slot-ownership design DESIGN.md calls out for the N-body
// substrate.
func BenchmarkStepAblation(b *testing.B) {
	u := grid.MustNew(2, 5)
	z := curve.NewZ(u)
	build := func() *System {
		s, err := New(z, Config{Particles: 20000, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	b.Run("sequential", func(b *testing.B) {
		s := build()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Step(0.01)
		}
	})
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("parallel-%d", workers), func(b *testing.B) {
			s := build()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.StepParallel(0.01, workers)
			}
		})
	}
}

// BenchmarkLocalitySweep measures the interaction enumeration per curve:
// the cost is dominated by the curve's Index/Point evaluations, so the
// ranking mirrors BenchmarkCurveIndex.
func BenchmarkLocalitySweep(b *testing.B) {
	u := grid.MustNew(2, 5)
	for _, name := range []string{"z", "hilbert", "simple"} {
		c, err := curve.ByName(name, u, 1)
		if err != nil {
			b.Fatal(err)
		}
		s, err := New(c, Config{Particles: 10000, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkLoc = s.MeasureLocality()
			}
		})
	}
}

var sinkLoc Locality
