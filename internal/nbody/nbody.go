// Package nbody implements a short-range N-body interaction simulation on
// the grid universe — the application the paper singles out when motivating
// nearest-neighbor stretch (§I: "In many applications of SFCs, such as
// N-body simulations, the dominant interactions are the ones between
// nearest neighbors").
//
// Particles live in continuous coordinates over the d-dimensional domain
// [0, side)^d and are bucketed into grid cells. Each step, every particle
// interacts with the particles in its own cell and in the 2d nearest-
// neighbor cells (a short-range cutoff force). Particle storage is sorted
// by the curve index of the containing cell, exactly as SFC-ordered N-body
// codes lay out memory (Warren & Salmon's hashed oct-tree [26]).
//
// The package exposes the quantity the stretch metrics predict: the mean
// distance *along the curve* (equivalently, distance in the sorted particle
// array) between interacting cells. For a curve with small Davg, a cell's
// interaction partners sit close by in memory.
package nbody

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/curve"
	"repro/internal/grid"
)

// Config configures a System.
type Config struct {
	Particles int     // number of particles (>= 1)
	Seed      int64   // RNG seed for initial conditions (ignored if Rand is set)
	Mass      float64 // particle mass (default 1)
	// Rand, when non-nil, is the source of the initial conditions and takes
	// precedence over Seed. Passing an explicit *rand.Rand lets callers
	// share one seeded stream across several systems (e.g. to place two
	// curves' systems identically drawing from one generator) instead of
	// coordinating global seeds.
	Rand *rand.Rand
	// ForceK is the spring constant of the short-range repulsive force
	// (default 1). Particles closer than 1 cell width repel.
	ForceK float64
}

// System is a particle system bucketed on a grid and ordered by an SFC.
type System struct {
	u *grid.Universe
	c curve.Curve

	pos  []float64 // len d*N, positions in [0, side)
	vel  []float64 // len d*N
	mass float64
	k    float64

	// SFC-sorted view, rebuilt by sortParticles: ids[i] is the particle at
	// array slot i; key[i] is the curve index of its cell; cellLo maps each
	// distinct cell (by position in keys) for range lookups via sort.Search.
	ids  []int
	keys []uint64

	steps int
}

// New creates a system with particles placed uniformly at random
// (deterministically from cfg.Seed) and zero initial velocities.
func New(c curve.Curve, cfg Config) (*System, error) {
	if cfg.Particles < 1 {
		return nil, fmt.Errorf("nbody: need at least 1 particle, got %d", cfg.Particles)
	}
	u := c.Universe()
	if cfg.Mass == 0 {
		cfg.Mass = 1
	}
	if cfg.Mass < 0 {
		return nil, fmt.Errorf("nbody: negative mass %v", cfg.Mass)
	}
	if cfg.ForceK == 0 {
		cfg.ForceK = 1
	}
	d := u.D()
	s := &System{
		u:    u,
		c:    c,
		pos:  make([]float64, d*cfg.Particles),
		vel:  make([]float64, d*cfg.Particles),
		mass: cfg.Mass,
		k:    cfg.ForceK,
		ids:  make([]int, cfg.Particles),
		keys: make([]uint64, cfg.Particles),
	}
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}
	side := float64(u.Side())
	for i := range s.pos {
		s.pos[i] = rng.Float64() * side
	}
	s.sortParticles()
	return s, nil
}

// N returns the particle count.
func (s *System) N() int { return len(s.ids) }

// Steps returns the number of completed integration steps.
func (s *System) Steps() int { return s.steps }

// Curve returns the ordering curve.
func (s *System) Curve() curve.Curve { return s.c }

// cellOf buckets a particle's continuous position into its grid cell.
func (s *System) cellOf(pid int, p grid.Point) {
	d := s.u.D()
	side := s.u.Side()
	for i := 0; i < d; i++ {
		v := uint32(s.pos[pid*d+i])
		if v >= side {
			v = side - 1
		}
		p[i] = v
	}
}

// sortParticles rebuilds the SFC-sorted particle view.
func (s *System) sortParticles() {
	p := s.u.NewPoint()
	for i := range s.ids {
		s.ids[i] = i
	}
	tmp := make([]uint64, len(s.ids))
	for pid := range tmp {
		s.cellOf(pid, p)
		tmp[pid] = s.c.Index(p)
	}
	sort.SliceStable(s.ids, func(a, b int) bool { return tmp[s.ids[a]] < tmp[s.ids[b]] })
	for slot, pid := range s.ids {
		s.keys[slot] = tmp[pid]
	}
}

// cellRange returns the slots [lo, hi) of particles in the cell with the
// given curve index.
func (s *System) cellRange(key uint64) (int, int) {
	lo := sort.Search(len(s.keys), func(i int) bool { return s.keys[i] >= key })
	hi := sort.Search(len(s.keys), func(i int) bool { return s.keys[i] > key })
	return lo, hi
}

// forEachInteraction invokes fn once per unordered pair of particles whose
// cells are identical or nearest neighbors. fn receives the particle ids
// and the curve distance between their cells.
func (s *System) forEachInteraction(fn func(a, b int, cellDist uint64)) {
	s.interactionsForSlots(0, len(s.keys), fn)
}

// interactionsForSlots enumerates the interactions owned by array slots in
// [lo, hi): a slot owns its pairs with later same-cell slots and with all
// particles in neighbor cells of strictly larger curve index. Distinct
// slots own disjoint pair sets, which is what makes the parallel force
// sweep race-free.
func (s *System) interactionsForSlots(lo, hi int, fn func(a, b int, cellDist uint64)) {
	p := s.u.NewPoint()
	for slot := lo; slot < hi; slot++ {
		key := s.keys[slot]
		// Same-cell pairs, counted once: only slots after this one.
		for other := slot + 1; other < len(s.keys) && s.keys[other] == key; other++ {
			fn(s.ids[slot], s.ids[other], 0)
		}
		// Neighbor-cell pairs, counted once via key ordering: only
		// neighbors with a strictly larger curve index.
		s.c.Point(key, p)
		s.u.Neighbors(p, func(_ int, q grid.Point) {
			nkey := s.c.Index(q)
			if nkey <= key {
				return
			}
			nlo, nhi := s.cellRange(nkey)
			for other := nlo; other < nhi; other++ {
				fn(s.ids[slot], s.ids[other], nkey-key)
			}
		})
	}
}

// applyPairForce accumulates the spring force of one interacting pair into
// force, symmetrically (Newton's third law, so momentum is conserved).
func (s *System) applyPairForce(force []float64, a, b int) {
	d := s.u.D()
	var dist2 float64
	for i := 0; i < d; i++ {
		diff := s.pos[a*d+i] - s.pos[b*d+i]
		dist2 += diff * diff
	}
	if dist2 >= 1 || dist2 == 0 {
		return
	}
	dist := math.Sqrt(dist2)
	mag := s.k * (1 - dist) // linear repulsion, zero at the cutoff
	for i := 0; i < d; i++ {
		f := mag * (s.pos[a*d+i] - s.pos[b*d+i]) / dist
		force[a*d+i] += f
		force[b*d+i] -= f
	}
}

// Step advances the system by dt using symplectic Euler with a symmetric
// short-range repulsive force: particles within distance 1 of each other
// (and in the same or neighboring cells) push apart with a linear spring.
// Domain boundaries reflect.
func (s *System) Step(dt float64) {
	force := make([]float64, len(s.pos))
	s.forEachInteraction(func(a, b int, _ uint64) {
		s.applyPairForce(force, a, b)
	})
	s.integrate(force, dt)
}

// StepParallel is Step with the force sweep distributed across workers
// goroutines (GOMAXPROCS when workers <= 0). The pair set owned by each
// array slot is disjoint (a slot pairs only with later same-cell slots and
// with strictly-larger-key neighbor cells), so slots partition the work;
// each worker accumulates into a private force buffer and the buffers are
// reduced in worker order, keeping the result deterministic for a fixed
// worker count. Results agree with Step up to floating-point summation
// order.
func (s *System) StepParallel(dt float64, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > s.N() {
		workers = s.N()
	}
	buffers := make([][]float64, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			force := make([]float64, len(s.pos))
			buffers[w] = force
			lo := s.N() * w / workers
			hi := s.N() * (w + 1) / workers
			s.interactionsForSlots(lo, hi, func(a, b int, _ uint64) {
				s.applyPairForce(force, a, b)
			})
		}(w)
	}
	wg.Wait()
	total := buffers[0]
	for _, buf := range buffers[1:] {
		for i, v := range buf {
			total[i] += v
		}
	}
	s.integrate(total, dt)
}

// integrate applies the accumulated forces, advances positions with
// reflective boundaries, and re-sorts the particle array.
func (s *System) integrate(force []float64, dt float64) {
	d := s.u.D()
	side := float64(s.u.Side())
	for pid := 0; pid < s.N(); pid++ {
		for i := 0; i < d; i++ {
			j := pid*d + i
			s.vel[j] += force[j] / s.mass * dt
			s.pos[j] += s.vel[j] * dt
			// Reflective boundaries.
			if s.pos[j] < 0 {
				s.pos[j] = -s.pos[j]
				s.vel[j] = -s.vel[j]
			}
			if s.pos[j] >= side {
				over := s.pos[j] - side
				s.pos[j] = side - over - 1e-12
				s.vel[j] = -s.vel[j]
			}
			if s.pos[j] < 0 { // pathological dt: clamp
				s.pos[j] = 0
			}
		}
	}
	s.sortParticles()
	s.steps++
}

// Momentum returns the total momentum vector (conserved by the pairwise
// forces up to boundary reflections).
func (s *System) Momentum() []float64 {
	d := s.u.D()
	m := make([]float64, d)
	for pid := 0; pid < s.N(); pid++ {
		for i := 0; i < d; i++ {
			m[i] += s.mass * s.vel[pid*d+i]
		}
	}
	return m
}

// KineticEnergy returns ½ m Σ v².
func (s *System) KineticEnergy() float64 {
	var e float64
	for _, v := range s.vel {
		e += v * v
	}
	return 0.5 * s.mass * e
}

// Locality describes how far apart, in the SFC-sorted particle array, the
// interacting cells sit.
type Locality struct {
	Interactions uint64  // unordered interacting pairs (incl. same-cell)
	CrossCell    uint64  // pairs in distinct (neighboring) cells
	MeanCellDist float64 // mean curve distance between the cells of cross-cell pairs
	MaxCellDist  uint64  // worst curve distance observed
}

// MeasureLocality scans the current interaction set. MeanCellDist is the
// empirical analogue of the paper's Davg: for a uniform particle
// distribution it concentrates around the average curve distance between
// neighboring cells.
func (s *System) MeasureLocality() Locality {
	var loc Locality
	var sum float64
	s.forEachInteraction(func(_, _ int, cellDist uint64) {
		loc.Interactions++
		if cellDist > 0 {
			loc.CrossCell++
			sum += float64(cellDist)
			if cellDist > loc.MaxCellDist {
				loc.MaxCellDist = cellDist
			}
		}
	})
	if loc.CrossCell > 0 {
		loc.MeanCellDist = sum / float64(loc.CrossCell)
	}
	return loc
}
