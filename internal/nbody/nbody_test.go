package nbody

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/grid"
)

func newSystem(t *testing.T, c curve.Curve, n int, seed int64) *System {
	t.Helper()
	s, err := New(c, Config{Particles: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	u := grid.MustNew(2, 3)
	z := curve.NewZ(u)
	if _, err := New(z, Config{Particles: 0}); err == nil {
		t.Fatal("0 particles accepted")
	}
	if _, err := New(z, Config{Particles: 5, Mass: -1}); err == nil {
		t.Fatal("negative mass accepted")
	}
	s := newSystem(t, z, 100, 1)
	if s.N() != 100 || s.Steps() != 0 || s.Curve() != z {
		t.Fatal("accessors wrong")
	}
}

func TestDeterministicInitialConditions(t *testing.T) {
	u := grid.MustNew(2, 3)
	z := curve.NewZ(u)
	a := newSystem(t, z, 50, 7)
	b := newSystem(t, z, 50, 7)
	for i := range a.pos {
		if a.pos[i] != b.pos[i] {
			t.Fatal("same seed, different positions")
		}
	}
}

// TestExplicitRandMatchesSeed: Config.Rand with a fresh generator at seed s
// is equivalent to Config.Seed = s, and takes precedence over Seed.
func TestExplicitRandMatchesSeed(t *testing.T) {
	u := grid.MustNew(2, 3)
	z := curve.NewZ(u)
	bySeed := newSystem(t, z, 50, 7)
	byRand, err := New(z, Config{Particles: 50, Seed: 999, Rand: rand.New(rand.NewSource(7))})
	if err != nil {
		t.Fatal(err)
	}
	for i := range bySeed.pos {
		if bySeed.pos[i] != byRand.pos[i] {
			t.Fatal("explicit rand at seed 7 differs from Seed: 7")
		}
	}
	// A shared stream advances across systems: the second draw differs from
	// the first but is itself reproducible.
	shared := rand.New(rand.NewSource(7))
	first, err := New(z, Config{Particles: 50, Rand: shared})
	if err != nil {
		t.Fatal(err)
	}
	second, err := New(z, Config{Particles: 50, Rand: shared})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range first.pos {
		if first.pos[i] != second.pos[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("shared stream did not advance between systems")
	}
}

func TestSortedByCellKey(t *testing.T) {
	u := grid.MustNew(3, 2)
	h := curve.NewHilbert(u)
	s := newSystem(t, h, 500, 3)
	for i := 1; i < len(s.keys); i++ {
		if s.keys[i] < s.keys[i-1] {
			t.Fatal("particle keys not sorted")
		}
	}
	// Every particle's key matches its cell.
	p := u.NewPoint()
	for slot, pid := range s.ids {
		s.cellOf(pid, p)
		if h.Index(p) != s.keys[slot] {
			t.Fatalf("slot %d: key %d, cell %v", slot, s.keys[slot], p)
		}
	}
}

func TestInteractionPairsUniqueAndAdjacent(t *testing.T) {
	u := grid.MustNew(2, 3)
	z := curve.NewZ(u)
	s := newSystem(t, z, 200, 11)
	seen := map[[2]int]bool{}
	p := u.NewPoint()
	q := u.NewPoint()
	s.forEachInteraction(func(a, b int, cellDist uint64) {
		if a == b {
			t.Fatal("self interaction")
		}
		key := [2]int{a, b}
		if a > b {
			key = [2]int{b, a}
		}
		if seen[key] {
			t.Fatalf("pair (%d,%d) visited twice", a, b)
		}
		seen[key] = true
		s.cellOf(a, p)
		s.cellOf(b, q)
		if md := grid.Manhattan(p, q); md > 1 {
			t.Fatalf("interaction across distance-%d cells", md)
		}
		if want := curve.Dist(z, p, q); want != cellDist {
			t.Fatalf("cellDist %d, want %d", cellDist, want)
		}
	})
	if len(seen) == 0 {
		t.Fatal("no interactions found for 200 particles on an 8×8 grid")
	}
}

func TestMomentumConservedWithoutBoundary(t *testing.T) {
	// With particles away from walls and small dt, momentum stays ~0.
	u := grid.MustNew(2, 4)
	z := curve.NewZ(u)
	s := newSystem(t, z, 300, 5)
	for step := 0; step < 10; step++ {
		s.Step(0.01)
	}
	for i, m := range s.Momentum() {
		if math.Abs(m) > 1e-6 {
			t.Fatalf("momentum[%d] = %v after 10 steps", i, m)
		}
	}
	if s.Steps() != 10 {
		t.Fatalf("steps = %d", s.Steps())
	}
}

func TestParticlesStayInDomain(t *testing.T) {
	u := grid.MustNew(2, 2)
	z := curve.NewZ(u)
	s := newSystem(t, z, 400, 9) // dense: lots of repulsion
	side := float64(u.Side())
	for step := 0; step < 50; step++ {
		s.Step(0.05)
	}
	for _, x := range s.pos {
		if x < 0 || x >= side {
			t.Fatalf("particle escaped domain: %v", x)
		}
	}
	if s.KineticEnergy() < 0 {
		t.Fatal("negative kinetic energy")
	}
}

func TestLocalityTracksDAvg(t *testing.T) {
	// The headline connection: the mean curve distance between interacting
	// neighbor cells under a uniform particle distribution approximates the
	// average NN curve distance, so curves rank by Davg. Random must be
	// catastrophically worse than Hilbert/Z.
	u := grid.MustNew(2, 4)
	z := curve.NewZ(u)
	hil := curve.NewHilbert(u)
	rnd, err := curve.NewRandom(u, 21)
	if err != nil {
		t.Fatal(err)
	}
	locOf := func(c curve.Curve) Locality {
		s := newSystem(t, c, 2000, 17)
		return s.MeasureLocality()
	}
	lz, lh, lr := locOf(z), locOf(hil), locOf(rnd)
	if lz.CrossCell == 0 || lh.CrossCell == 0 || lr.CrossCell == 0 {
		t.Fatal("no cross-cell interactions")
	}
	// The particle sets are identical (same seed), so interaction counts
	// must agree across curves.
	if lz.Interactions != lh.Interactions || lz.Interactions != lr.Interactions {
		t.Fatalf("interaction counts differ: %d %d %d", lz.Interactions, lh.Interactions, lr.Interactions)
	}
	if !(lr.MeanCellDist > 4*lz.MeanCellDist) {
		t.Errorf("random locality %v not ≫ Z %v", lr.MeanCellDist, lz.MeanCellDist)
	}
	if !(lr.MeanCellDist > 4*lh.MeanCellDist) {
		t.Errorf("random locality %v not ≫ Hilbert %v", lr.MeanCellDist, lh.MeanCellDist)
	}
	// Sanity: the Z locality cost is within a small factor of Davg(Z) —
	// same order of magnitude, as the paper's motivation asserts.
	davg := core.DAvg(z, 2)
	if lz.MeanCellDist > 3*davg || davg > 3*lz.MeanCellDist {
		t.Errorf("Z locality %v vs Davg %v: not the same regime", lz.MeanCellDist, davg)
	}
}

func TestStepParallelMatchesSequential(t *testing.T) {
	u := grid.MustNew(2, 3)
	z := curve.NewZ(u)
	seq := newSystem(t, z, 500, 13)
	par := newSystem(t, z, 500, 13)
	for step := 0; step < 5; step++ {
		seq.Step(0.02)
		par.StepParallel(0.02, 4)
	}
	for i := range seq.pos {
		if math.Abs(seq.pos[i]-par.pos[i]) > 1e-9 {
			t.Fatalf("pos[%d]: seq %v, par %v", i, seq.pos[i], par.pos[i])
		}
		if math.Abs(seq.vel[i]-par.vel[i]) > 1e-9 {
			t.Fatalf("vel[%d]: seq %v, par %v", i, seq.vel[i], par.vel[i])
		}
	}
	if seq.Steps() != par.Steps() {
		t.Fatal("step counts differ")
	}
}

func TestStepParallelWorkerCounts(t *testing.T) {
	u := grid.MustNew(2, 3)
	z := curve.NewZ(u)
	// More workers than particles must not panic; default workers path too.
	tiny := newSystem(t, z, 3, 1)
	tiny.StepParallel(0.01, 64)
	tiny.StepParallel(0.01, 0)
	if tiny.Steps() != 2 {
		t.Fatalf("steps = %d", tiny.Steps())
	}
}

func TestStepParallelConservesMomentum(t *testing.T) {
	u := grid.MustNew(2, 4)
	z := curve.NewZ(u)
	s := newSystem(t, z, 300, 5)
	for step := 0; step < 10; step++ {
		s.StepParallel(0.01, 3)
	}
	for i, m := range s.Momentum() {
		if math.Abs(m) > 1e-6 {
			t.Fatalf("momentum[%d] = %v", i, m)
		}
	}
}

func TestLocalityMaxBounded(t *testing.T) {
	u := grid.MustNew(2, 3)
	s := newSystem(t, curve.NewZ(u), 500, 2)
	loc := s.MeasureLocality()
	if loc.MaxCellDist >= u.N() {
		t.Fatalf("max cell dist %d out of range", loc.MaxCellDist)
	}
	if loc.MeanCellDist > float64(loc.MaxCellDist) {
		t.Fatal("mean exceeds max")
	}
}
