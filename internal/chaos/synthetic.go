package chaos

import (
	"math/rand"

	"repro/internal/grid"
	"repro/internal/store"
)

// SyntheticRecords generates the deterministic synthetic record set shared
// by the sfcserved daemon and the cluster chaos campaign: n uniform random
// cells of u with the record index as payload, a pure function of
// (universe, seed). Cluster nodes bulkload the subset of this set they
// hold, and the campaign regenerates the same set in-process as its ground
// truth — both sides calling this one function is what makes over-the-wire
// loss detection exact.
func SyntheticRecords(u *grid.Universe, seed int64, n int) []store.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]store.Record, n)
	for i := range recs {
		p := u.NewPoint()
		for d := range p {
			p[d] = rng.Uint32() % u.Side()
		}
		recs[i] = store.Record{Point: p, Payload: uint64(i)}
	}
	return recs
}
