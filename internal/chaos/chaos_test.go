package chaos

import (
	"reflect"
	"testing"
)

func TestRunConfigValidation(t *testing.T) {
	if _, err := Run(Config{Runs: 0}); err == nil {
		t.Fatal("zero runs accepted")
	}
	if _, err := Run(Config{Runs: 5, QueriesPerRun: -1}); err == nil {
		t.Fatal("negative queries accepted")
	}
}

// TestCampaignClean runs a small campaign and requires zero invariant
// violations — the same gate cmd/sfcchaos enforces, kept in-tree so plain
// `go test ./...` exercises the harness end to end.
func TestCampaignClean(t *testing.T) {
	rep, err := Run(Config{Seed: 1, Runs: 25})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("%s", v)
	}
	if rep.Runs != 25 || rep.Queries == 0 || rep.PartitionChecks == 0 {
		t.Fatalf("campaign did too little work: %+v", rep)
	}
	if rep.CorruptionsInjected == 0 || rep.PagesLost == 0 || rep.TransientsInjected == 0 {
		t.Fatalf("fault schedules injected nothing: %+v", rep)
	}
	if rep.CorruptionsDetected != rep.CorruptionsInjected {
		t.Fatalf("detected %d of %d corruptions", rep.CorruptionsDetected, rep.CorruptionsInjected)
	}
}

// TestCampaignDeterministic: identical configs produce identical reports.
func TestCampaignDeterministic(t *testing.T) {
	run := func() Report {
		rep, err := Run(Config{Seed: 42, Runs: 10, QueriesPerRun: 3})
		if err != nil {
			t.Fatal(err)
		}
		return *rep
	}
	a, b := run(), run()
	if len(a.Violations) != 0 || len(b.Violations) != 0 {
		t.Fatalf("violations: %v / %v", a.Violations, b.Violations)
	}
	a.Violations, b.Violations = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("reports diverge:\n%+v\n%+v", a, b)
	}
}
