package chaos

import (
	"math"
	"math/rand"

	"repro/internal/curve"
	"repro/internal/partition"
)

// partitionRun exercises failure-driven rebalancing: build a random
// (possibly weighted) partition, kill a random subset of parts, and check
// ownership conservation and the migration bound for both the
// minimal-displacement and the load-aware redistribution.
func partitionRun(cfg Config, run int, rng *rand.Rand, rep *Report) error {
	u := randomUniverse(rng)
	c, err := randomCurve(rng, u)
	if err != nil {
		return err
	}
	parts := 2 + rng.Intn(14)
	w := randomWeight(rng, c)
	pt, err := partition.Weighted(c, parts, w)
	if err != nil {
		return err
	}
	nDead := 1 + rng.Intn(parts-1)
	dead := rng.Perm(parts)[:nDead]
	deadCells := pt.DeadCells(dead)

	next, mig, err := pt.FailParts(dead)
	if err != nil {
		return err
	}
	rep.PartitionChecks++
	rep.CellsMigrated += mig.MovedCells
	checkFailover(run, rep, "failparts", pt, next, dead)
	fromDead, fromAlive := partition.MigrationSplit(pt, next, dead)
	if fromAlive != 0 {
		rep.violate(run, "rebalance-migration", "FailParts moved %d cells between survivors (minimal displacement demands 0)", fromAlive)
	}
	if fromDead != deadCells || mig.MovedCells != deadCells {
		rep.violate(run, "rebalance-migration", "FailParts migration %d (fromDead %d) != dead-owned cells %d",
			mig.MovedCells, fromDead, deadCells)
	}

	// Load-aware variant: migration must decompose exactly into dead-owned
	// cells plus the measured survivor-to-survivor slack.
	wnext, wmig, err := pt.FailPartsWeighted(dead, w)
	if err != nil {
		return err
	}
	rep.PartitionChecks++
	checkFailover(run, rep, "failparts-weighted", pt, wnext, dead)
	wFromDead, wSlack := partition.MigrationSplit(pt, wnext, dead)
	if wFromDead != deadCells {
		rep.violate(run, "rebalance-migration", "FailPartsWeighted moved %d dead-owned cells, parts owned %d", wFromDead, deadCells)
	}
	if wmig.MovedCells != deadCells+wSlack {
		rep.violate(run, "rebalance-migration", "FailPartsWeighted migration %d != dead %d + slack %d",
			wmig.MovedCells, deadCells, wSlack)
	}
	return nil
}

// checkFailover verifies ownership conservation after a failure: same part
// count, every cell owned by exactly one surviving part, dead parts empty.
func checkFailover(run int, rep *Report, tag string, before, after *partition.Partition, dead []int) {
	if after.Parts() != before.Parts() {
		rep.violate(run, "ownership-conservation", "%s: part count %d != %d", tag, after.Parts(), before.Parts())
		return
	}
	isDead := make([]bool, after.Parts())
	for _, j := range dead {
		isDead[j] = true
	}
	n := after.Curve().Universe().N()
	var owned uint64
	prevHi := uint64(0)
	for j := 0; j < after.Parts(); j++ {
		lo, hi := after.Segment(j)
		if lo != prevHi || hi < lo {
			rep.violate(run, "ownership-conservation", "%s: part %d segment [%d,%d) not contiguous after %d", tag, j, lo, hi, prevHi)
			return
		}
		prevHi = hi
		owned += hi - lo
		if isDead[j] && hi != lo {
			rep.violate(run, "ownership-conservation", "%s: dead part %d still owns %d cells", tag, j, hi-lo)
			return
		}
	}
	if owned != n {
		rep.violate(run, "ownership-conservation", "%s: parts own %d of %d cells", tag, owned, n)
		return
	}
	// Spot-check OwnerOfPosition never lands on a dead part.
	for pos := uint64(0); pos < n; pos += 1 + n/64 {
		if j := after.OwnerOfPosition(pos); isDead[j] {
			rep.violate(run, "ownership-conservation", "%s: position %d owned by dead part %d", tag, pos, j)
			return
		}
	}
}

// randomWeight draws one of the workload shapes the partition harness uses:
// unit, gradient along dimension 1, or a central hotspot. nil (unit weights
// via the Weighted fallback) is included.
func randomWeight(rng *rand.Rand, c curve.Curve) partition.Weight {
	u := c.Universe()
	switch rng.Intn(3) {
	case 0:
		return nil
	case 1:
		p := u.NewPoint()
		return func(pos uint64) float64 {
			c.Point(pos, p)
			return 1 + float64(p[0])
		}
	default:
		p := u.NewPoint()
		center := float64(u.Side()) / 2
		sigma := math.Max(1, float64(u.Side())/8)
		return func(pos uint64) float64 {
			c.Point(pos, p)
			var d2 float64
			for _, v := range p {
				d := float64(v) - center
				d2 += d * d
			}
			return 0.1 + math.Exp(-d2/(2*sigma*sigma))
		}
	}
}
