// Package chaos is the randomized fault-injection harness tying the
// resilience layer together. Each run draws a universe, a curve, a record
// set, a fault schedule and a partition from a seeded source, then checks
// the invariants the robustness story rests on:
//
//  1. No record is ever silently lost or duplicated: the records a
//     degraded range query returns, plus the records whose keys fall in
//     its reported unavailable intervals, are exactly the ground-truth
//     content of the query box.
//  2. Degraded results + unavailable intervals tile the query box: the
//     dark intervals are sorted, disjoint, and lie inside the box's curve
//     footprint, and no returned record's key falls in one.
//  3. Checksums catch 100% of injected corruption: the store's
//     ChecksumFailures counter equals the injector's Corruptions counter.
//  4. Failure-driven rebalancing conserves cell ownership: after
//     FailParts every cell has exactly one live owner, dead parts own
//     nothing, and migration equals the cells the dead parts owned (plus,
//     for the load-aware variant, exactly the measured rebalance slack).
//  5. The durable write path loses nothing it acknowledged: after seeded
//     kills — clean closes, power-loss crashes, torn writes mid-append —
//     recovery replays exactly the acknowledged operations, truncates torn
//     tails, and the degraded-tiling invariants hold across restart.
//
// Every run is reproducible from (Seed, run index, campaign) alone.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/query"
	"repro/internal/store"
)

// Config tunes the harness.
type Config struct {
	Seed          int64
	Runs          int
	QueriesPerRun int                              // degraded queries per run (default 4)
	Log           func(format string, args ...any) // optional progress sink
	// Campaign selects which substrates to exercise: "all" (default),
	// "store" (bulkloaded store under read faults), "partition"
	// (failure-driven rebalancing), "crash" (durable write path under
	// kills, torn writes, and recovery), or "cluster" (over-the-wire
	// scatter-gather with member kills and restarts). "cluster" spawns
	// real sfcserved processes and so is excluded from "all"; it requires
	// ServerBin.
	Campaign string
	// ArtifactDir, when set, receives a copy of the durable directory (WAL,
	// manifest, run files) of every crash run that violates an invariant,
	// and a per-run failure dump for every cluster run that does.
	ArtifactDir string
	// ServerBin is the sfcserved binary the cluster campaign spawns its
	// members from; BuildServerBin compiles one when the caller has none.
	ServerBin string
}

// Violation is one failed invariant.
type Violation struct {
	Run       int
	Invariant string
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("run %d: %s: %s", v.Run, v.Invariant, v.Detail)
}

// Report aggregates a chaos campaign.
type Report struct {
	Runs                 int
	Queries              int
	RecordsServed        uint64
	UnavailableIntervals uint64
	PagesLost            int
	CorruptionsInjected  uint64
	CorruptionsDetected  uint64
	TransientsInjected   uint64
	RetriesObserved      uint64
	PartitionChecks      int
	CellsMigrated        uint64
	CrashChecks          int    // crash-recovery runs completed
	Recoveries           int    // successful reopen-after-kill recoveries
	OpsAcked             uint64 // durable operations acknowledged
	TornTailsTruncated   uint64 // torn WAL tails healed during recovery
	ClusterChecks        int    // over-the-wire cluster runs completed
	ClusterQueries       int    // routed queries checked across the cluster
	ClusterDegraded      int    // routed queries answered with dark intervals
	NodesKilled          int    // cluster members SIGKILLed mid-replay
	NodesRestarted       int    // cluster members restarted and revived
	ClusterWrites        int    // routed puts/deletes acknowledged at quorum
	ClusterWriteRefused  int    // routed writes correctly refused below quorum
	ClusterCatchUps      int    // anti-entropy catch-up passes before revival
	Violations           []Violation
}

func (r *Report) violate(run int, invariant, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{Run: run, Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
}

// Run executes the campaign. It only errors on a bad config; invariant
// failures are collected in the report.
func Run(cfg Config) (*Report, error) {
	if cfg.Runs < 1 {
		return nil, fmt.Errorf("chaos: runs = %d", cfg.Runs)
	}
	if cfg.QueriesPerRun == 0 {
		cfg.QueriesPerRun = 4
	}
	if cfg.QueriesPerRun < 1 {
		return nil, fmt.Errorf("chaos: queries per run = %d", cfg.QueriesPerRun)
	}
	campaign := cfg.Campaign
	if campaign == "" {
		campaign = "all"
	}
	switch campaign {
	case "all", "store", "partition", "crash", "cluster":
	default:
		return nil, fmt.Errorf("chaos: unknown campaign %q", campaign)
	}
	rep := &Report{}
	for run := 0; run < cfg.Runs; run++ {
		rng := rand.New(rand.NewSource(subSeed(cfg.Seed, run)))
		if campaign == "all" || campaign == "store" {
			if err := storeRun(cfg, run, rng, rep); err != nil {
				return nil, fmt.Errorf("chaos: run %d: %w", run, err)
			}
		}
		if campaign == "all" || campaign == "partition" {
			if err := partitionRun(cfg, run, rng, rep); err != nil {
				return nil, fmt.Errorf("chaos: run %d: %w", run, err)
			}
		}
		if campaign == "all" || campaign == "crash" {
			if err := crashRun(cfg, run, rng, rep); err != nil {
				return nil, fmt.Errorf("chaos: run %d: %w", run, err)
			}
		}
		if campaign == "cluster" {
			if err := clusterRun(cfg, run, rng, rep); err != nil {
				return nil, fmt.Errorf("chaos: run %d: %w", run, err)
			}
		}
		rep.Runs++
		if cfg.Log != nil && (run+1)%25 == 0 {
			cfg.Log("chaos: %d/%d runs, %d violations", run+1, cfg.Runs, len(rep.Violations))
		}
	}
	return rep, nil
}

// subSeed derives a well-mixed per-run seed.
func subSeed(seed int64, run int) int64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(run)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return int64((x ^ (x >> 31)) &^ (1 << 63))
}

// randomUniverse keeps n small enough that a full ground-truth scan per
// query stays cheap.
func randomUniverse(rng *rand.Rand) *grid.Universe {
	d := 1 + rng.Intn(3)
	var k int
	switch d {
	case 1:
		k = 3 + rng.Intn(6) // up to 256 cells
	case 2:
		k = 2 + rng.Intn(4) // up to 1024 cells
	default:
		k = 1 + rng.Intn(3) // up to 512 cells
	}
	u, err := grid.New(d, k)
	if err != nil {
		panic(err) // unreachable: d, k drawn from valid ranges
	}
	return u
}

func randomCurve(rng *rand.Rand, u *grid.Universe) (curve.Curve, error) {
	names := curve.Names()
	return curve.ByName(names[rng.Intn(len(names))], u, rng.Int63())
}

func randomRecords(rng *rand.Rand, u *grid.Universe, n int) []store.Record {
	recs := make([]store.Record, n)
	for i := range recs {
		p := u.NewPoint()
		for j := range p {
			p[j] = uint32(rng.Intn(int(u.Side())))
		}
		recs[i] = store.Record{Point: p, Payload: uint64(i)}
	}
	return recs
}

func randomBox(rng *rand.Rand, u *grid.Universe) query.Box {
	lo := u.NewPoint()
	hi := u.NewPoint()
	for j := range lo {
		a := uint32(rng.Intn(int(u.Side())))
		b := uint32(rng.Intn(int(u.Side())))
		if a > b {
			a, b = b, a
		}
		lo[j], hi[j] = a, b
	}
	b, err := query.NewBox(u, lo, hi)
	if err != nil {
		panic(err) // unreachable: corners drawn in range and ordered
	}
	return b
}

// recordKey orders records for multiset comparison.
func recordLess(a, b store.Record) bool {
	for i := range a.Point {
		if a.Point[i] != b.Point[i] {
			return a.Point[i] < b.Point[i]
		}
	}
	return a.Payload < b.Payload
}

func sortRecords(recs []store.Record) {
	sort.Slice(recs, func(i, j int) bool { return recordLess(recs[i], recs[j]) })
}

func sameRecords(a, b []store.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Point.Equal(b[i].Point) || a[i].Payload != b[i].Payload {
			return false
		}
	}
	return true
}
