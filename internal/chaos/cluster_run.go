package chaos

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/query"
	"repro/internal/store"
)

// The cluster campaign is the only over-the-wire substrate: each run starts
// N real sfcserved processes in cluster mode (each on its own durable data
// directory), fronts them with an in-process router carrying a write
// quorum, SIGKILLs and restarts members mid-replay, interleaves routed
// writes with the query replay, and checks the distributed counterparts of
// the in-process invariants:
//
//	(a) record exactness — the records a routed query returns are exactly
//	    the ground-truth content of the query's curve intervals minus the
//	    reported dark intervals, order-exact in curve position;
//	(b) dark exactness — the reported dark intervals are exactly the curve
//	    ranges whose every replica is truly dead (computed from the
//	    harness's own kill ledger, not the router's), i.e. replica fallback
//	    recovered everything recoverable;
//	(c) ownership conservation — after every kill is discovered, the
//	    router's FailParts ledger still tiles the curve exactly, dead
//	    members own nothing, and the router's liveness view agrees with
//	    the harness's;
//	(d) write durability — a routed write succeeds exactly when the owning
//	    segment has ≥ W live replicas, and once acknowledged at quorum W
//	    it is never lost: ground truth absorbs every acked put/delete, so
//	    the record-exactness check re-proves all of them after every kill,
//	    restart, and anti-entropy catch-up;
//	(e) catch-up revival — a restarted member (same data directory, WAL
//	    recovery, new port) is revived only after anti-entropy reconciles
//	    the writes it missed while dead.
//
// Ground truth costs nothing to establish: the daemon seeds itself from
// SyntheticRecords(universe, seed, n), a pure function the campaign calls
// too, so both sides agree on the seed set without data on the wire; the
// campaign's own writes (payloads ≥ 2^40, disjoint from the synthetic
// 0..n-1) mutate the oracle as they are acknowledged.

// clusterNodeTimeout bounds one member request during the campaign; local
// loopback scans over a few hundred records finish in microseconds, so this
// only bites when a member is truly gone.
const clusterNodeTimeout = 2 * time.Second

// startTimeout bounds how long a spawned member may take to report its
// bound address.
const startTimeout = 30 * time.Second

// clusterRun executes one over-the-wire cluster run.
func clusterRun(cfg Config, run int, rng *rand.Rand, rep *Report) error {
	if cfg.ServerBin == "" {
		return errors.New("cluster campaign requires Config.ServerBin (a built sfcserved binary; see BuildServerBin)")
	}

	// Draw the run's cluster shape. N=3 keeps the process count CI-friendly
	// while still exercising multi-hop failover; R alternates between no
	// redundancy (kills must surface as dark) and 2-way (kills must not).
	const n = 3
	r := 1 + rng.Intn(2)
	u, err := grid.New(2, 2+rng.Intn(3))
	if err != nil {
		return err
	}
	names := curve.Names()
	curveName := names[rng.Intn(len(names))]
	seed := subSeed(cfg.Seed, run) // the daemons' -seed: curve + records
	c, err := curve.ByName(curveName, u, seed)
	if err != nil {
		return err
	}
	records := 200 + rng.Intn(200)
	topo, err := cluster.NewTopology(c, n, r)
	if err != nil {
		return err
	}

	// Ground truth: the same pure function the daemons seed from.
	truth := newGroundTruth(c, SyntheticRecords(u, seed, records))

	// Each member owns a durable data directory that survives its kills:
	// a restart recovers the WAL state it had at SIGKILL, and anti-entropy
	// owes it only the writes routed while it was down.
	dataRoot, err := os.MkdirTemp("", "sfcchaos-cluster-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataRoot)

	h := &clusterHarness{
		bin: cfg.ServerBin,
		args: func(node int) []string {
			return []string{
				"-addr", "127.0.0.1:0",
				"-curve", curveName,
				"-d", "2", "-k", fmt.Sprint(u.K()),
				"-seed", fmt.Sprint(seed),
				"-records", fmt.Sprint(records),
				"-shards", "2",
				"-data", filepath.Join(dataRoot, fmt.Sprintf("node-%d", node)),
				"-cluster-nodes", fmt.Sprint(n),
				"-cluster-node", fmt.Sprint(node),
				"-cluster-replicas", fmt.Sprint(r),
			}
		},
		procs: make([]*nodeProc, n),
		alive: make([]bool, n),
	}
	defer h.stopAll()

	nodes := make([]cluster.Node, n)
	for i := 0; i < n; i++ {
		p, err := h.start(i)
		if err != nil {
			return fmt.Errorf("starting node %d: %w", i, err)
		}
		nodes[i] = clientNodeFor(p.addr)
	}
	// The hedge delay must exceed a dead member's full refusal chain
	// (refused → ~12ms jittered backoff → refused): the router then learns
	// of every kill from a completed error rather than a hedged race,
	// which is what makes the post-discovery liveness check deterministic.
	// The write quorum is drawn per run so both W=1 (ack from any replica)
	// and W=R (ack only at full replication) shapes are exercised.
	wq := 1 + rng.Intn(r)
	rt, err := cluster.NewRouter(topo, nodes,
		cluster.WithNodeTimeout(clusterNodeTimeout),
		cluster.WithHedgeDelay(150*time.Millisecond),
		cluster.WithWriteQuorum(wq))
	if err != nil {
		return err
	}

	// The replay: a healthy phase, two kill phases, two restart phases.
	// Each phase runs a full-curve discovery scan (forcing the router to
	// contact every owner, so kills become ledger entries), checks the
	// ledger, interleaves routed writes (mutating the oracle on each ack),
	// then replays QueriesPerRun random boxes under the full invariant set.
	ck := &clusterChecker{cfg: cfg, run: run, rep: rep, rt: rt, topo: topo, truth: truth, h: h, wq: wq}
	phase := func(label string) {
		ck.discover(label)
		ck.ledger(label)
		ck.writes(rng, label)
		for q := 0; q < cfg.QueriesPerRun; q++ {
			ck.query(rng, fmt.Sprintf("%s/q%d", label, q))
		}
	}

	phase("healthy")

	victim1 := rng.Intn(n)
	h.kill(victim1)
	rep.NodesKilled++
	phase(fmt.Sprintf("kill%d", victim1))

	victim2 := h.randomLive(rng)
	h.kill(victim2)
	rep.NodesKilled++
	phase(fmt.Sprintf("kill%d", victim2))

	// Restarts come back on fresh ports over their original data
	// directories: swap the handle, then let Probe drive the catch-up-gated
	// revival — the member recovers its WAL, anti-entropy replays the
	// writes it missed, and only then does it re-enter the read path.
	//
	// Revival runs in REVERSE kill order, and that ordering is load-bearing
	// for W < R: a write acked while victim1 was dead may sit only on
	// victim2's WAL (it acked alone at W=1). Reviving victim2 first brings
	// that copy back, so victim1's catch-up always finds a live source
	// holding every acknowledged write; reviving victim1 first would leave
	// their shared segments sourceless — the write would stay invisible
	// until victim2 returned, which the oracle would rightly flag.
	for _, victim := range []int{victim2, victim1} {
		p, err := h.start(victim)
		if err != nil {
			return fmt.Errorf("restarting node %d: %w", victim, err)
		}
		if err := rt.SetNode(victim, clientNodeFor(p.addr)); err != nil {
			return err
		}
		revived := false
		for attempt := 0; attempt < 3 && !revived; attempt++ {
			for _, rv := range rt.Probe(h.ctx()) {
				if rv == victim {
					revived = true
				}
			}
		}
		if !revived {
			ck.violate("cluster-catchup", "restart%d: probe did not revive the member after catch-up", victim)
			// Force the ledger back in sync so later phases still check.
			if err := rt.Revive(victim); err != nil {
				return err
			}
		}
		rep.NodesRestarted++
		rep.ClusterCatchUps++
		phase(fmt.Sprintf("restart%d", victim))
	}

	rep.ClusterChecks++
	if len(ck.failures) > 0 && cfg.ArtifactDir != "" {
		h.dumpArtifacts(cfg.ArtifactDir, run, ck.failures)
	}
	return nil
}

// clientNodeFor wraps one member address with a snappy per-node retry
// budget: failover to a replica should beat a long local retry dance, and
// each member owning its own budget is what keeps hedges from consuming a
// primary's attempts.
func clientNodeFor(addr string) cluster.Node {
	return cluster.NewClientNode(client.New("http://"+addr, client.WithRetryPolicy(client.RetryPolicy{
		MaxAttempts: 2,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
	})))
}

// groundTruth is the campaign's oracle: every record keyed by curve
// position, sorted by (key, payload) — the tie-normalized order used for
// exact comparison (duplicate cells are legal in the synthetic set).
type groundTruth struct {
	keys []uint64
	recs []store.Record
}

func newGroundTruth(c curve.Curve, recs []store.Record) *groundTruth {
	gt := &groundTruth{recs: append([]store.Record(nil), recs...)}
	sort.Slice(gt.recs, func(i, j int) bool {
		ki, kj := c.Index(gt.recs[i].Point), c.Index(gt.recs[j].Point)
		if ki != kj {
			return ki < kj
		}
		return gt.recs[i].Payload < gt.recs[j].Payload
	})
	gt.keys = make([]uint64, len(gt.recs))
	for i, r := range gt.recs {
		gt.keys[i] = c.Index(r.Point)
	}
	return gt
}

// expect returns the ground-truth records whose keys fall inside ivs but
// not inside dark, in (key, payload) order.
func (gt *groundTruth) expect(ivs, dark []query.Interval) []store.Record {
	var out []store.Record
	for i, k := range gt.keys {
		if query.IntervalsContain(ivs, k) && !query.IntervalsContain(dark, k) {
			out = append(out, gt.recs[i])
		}
	}
	return out
}

// add absorbs one acknowledged put, keeping (key, payload) order.
func (gt *groundTruth) add(c curve.Curve, rec store.Record) {
	key := c.Index(rec.Point)
	i := sort.Search(len(gt.keys), func(i int) bool {
		if gt.keys[i] != key {
			return gt.keys[i] > key
		}
		return gt.recs[i].Payload >= rec.Payload
	})
	gt.keys = append(gt.keys, 0)
	copy(gt.keys[i+1:], gt.keys[i:])
	gt.keys[i] = key
	gt.recs = append(gt.recs, store.Record{})
	copy(gt.recs[i+1:], gt.recs[i:])
	gt.recs[i] = rec
}

// remove absorbs one acknowledged delete: every instance of (key, payload)
// goes, matching the daemon's delete semantics.
func (gt *groundTruth) remove(c curve.Curve, rec store.Record) {
	key := c.Index(rec.Point)
	keys := gt.keys[:0]
	recs := gt.recs[:0]
	for i, k := range gt.keys {
		if k == key && gt.recs[i].Payload == rec.Payload {
			continue
		}
		keys = append(keys, k)
		recs = append(recs, gt.recs[i])
	}
	gt.keys = keys
	gt.recs = recs
}

// clusterChecker runs the per-phase invariant checks and collects failures.
type clusterChecker struct {
	cfg   Config
	run   int
	rep   *Report
	rt    *cluster.Router
	topo  *cluster.Topology
	truth *groundTruth
	h     *clusterHarness

	wq    int            // the router's write quorum W
	wseq  uint64         // next write payload (offset past 2^40)
	acked []store.Record // routed puts acknowledged so far, delete candidates

	failures []string
}

func (ck *clusterChecker) violate(invariant, format string, args ...any) {
	detail := fmt.Sprintf(format, args...)
	ck.rep.violate(ck.run, invariant, detail)
	ck.failures = append(ck.failures, invariant+": "+detail)
}

// discover scans the full curve, which contacts every segment owner and
// turns any undetected kill into a ledger entry, then checks the scan
// itself against the invariants.
func (ck *clusterChecker) discover(label string) {
	n := ck.topo.Curve().Universe().N()
	full := []query.Interval{{Lo: 0, Hi: n}}
	res, err := ck.rt.Scan(ck.h.ctx(), full)
	if err != nil {
		ck.violate("cluster-scan", "%s: discovery scan failed: %v", label, err)
		return
	}
	ck.check(label+"/discovery", full, res)
}

// ledger checks invariant (c): after discovery the router's view matches
// the harness's kill record, and the FailParts ledger still tiles the curve
// (skipped only when every member is dead — there is no ledger to keep).
func (ck *clusterChecker) ledger(label string) {
	anyAlive := false
	for i, a := range ck.h.alive {
		if ck.rt.Alive(i) != a {
			ck.violate("cluster-liveness", "%s: router believes node %d alive=%v, harness says %v",
				label, i, ck.rt.Alive(i), a)
		}
		anyAlive = anyAlive || a
	}
	if !anyAlive {
		return
	}
	if err := ck.rt.Conserved(); err != nil {
		ck.violate("cluster-conservation", "%s: %v", label, err)
	}
}

// liveReplicaCount counts, from the harness's true liveness, the live
// replicas of the segment owning key.
func (ck *clusterChecker) liveReplicaCount(key uint64) int {
	seg := ck.topo.Base().OwnerOfPosition(key)
	live := 0
	for _, rep := range ck.topo.ReplicaSet(seg) {
		if ck.h.alive[rep] {
			live++
		}
	}
	return live
}

// writes interleaves routed writes with the replay and checks invariant
// (d)'s acknowledgment half: a put or delete must succeed exactly when the
// owning segment has ≥ W live replicas (the phase opens with a discovery
// scan, so the router's view has settled to the harness's). Acknowledged
// writes mutate the oracle; the phase's query replay then re-proves them
// readable. Write payloads live at ≥ 2^40, disjoint from the synthetic
// seed payloads 0..records-1.
func (ck *clusterChecker) writes(rng *rand.Rand, label string) {
	c := ck.topo.Curve()
	u := c.Universe()
	for i := 0; i < 8; i++ {
		p := u.NewPoint()
		for d := range p {
			p[d] = rng.Uint32() % u.Side()
		}
		rec := store.Record{Point: p, Payload: 1<<40 + ck.wseq}
		ck.wseq++
		live := ck.liveReplicaCount(c.Index(p))
		res, err := ck.rt.Put(ck.h.ctx(), rec)
		switch {
		case live >= ck.wq && err != nil:
			ck.violate("cluster-write-quorum", "%s: put refused with %d live replicas ≥ W=%d: %v", label, live, ck.wq, err)
		case live < ck.wq && err == nil:
			ck.violate("cluster-write-quorum", "%s: put acked with %d live replicas < W=%d", label, live, ck.wq)
		case err != nil:
			if !errors.Is(err, cluster.ErrWriteQuorum) {
				ck.violate("cluster-write-quorum", "%s: sub-quorum put failed with %v, want ErrWriteQuorum", label, err)
			}
			ck.rep.ClusterWriteRefused++
		default:
			if res.Acked < ck.wq {
				ck.violate("cluster-write-quorum", "%s: put acked by %d replicas, quorum %d", label, res.Acked, ck.wq)
			}
			ck.truth.add(c, rec)
			ck.acked = append(ck.acked, rec)
			ck.rep.ClusterWrites++
		}
	}
	// Delete a couple of earlier acknowledged writes (or seeds) with the
	// same quorum contract.
	for i := 0; i < 2 && len(ck.acked) > 0; i++ {
		j := rng.Intn(len(ck.acked))
		rec := ck.acked[j]
		live := ck.liveReplicaCount(c.Index(rec.Point))
		_, err := ck.rt.Delete(ck.h.ctx(), rec)
		switch {
		case live >= ck.wq && err != nil:
			ck.violate("cluster-write-quorum", "%s: delete refused with %d live replicas ≥ W=%d: %v", label, live, ck.wq, err)
		case live < ck.wq && err == nil:
			ck.violate("cluster-write-quorum", "%s: delete acked with %d live replicas < W=%d", label, live, ck.wq)
		case err != nil:
			ck.rep.ClusterWriteRefused++
		default:
			ck.truth.remove(c, rec)
			ck.acked = append(ck.acked[:j], ck.acked[j+1:]...)
			ck.rep.ClusterWrites++
		}
	}
	// An acknowledgment returns at quorum W; legs to the remaining live
	// replicas are still completing. Let them settle before the replay
	// reads through arbitrary replicas (loopback legs finish in ~1ms).
	time.Sleep(150 * time.Millisecond)
}

// query replays one random box through the router and checks it.
func (ck *clusterChecker) query(rng *rand.Rand, label string) {
	u := ck.topo.Curve().Universe()
	b := randomBox(rng, u)
	ivs := query.DecomposeBox(ck.topo.Curve(), b)
	res, err := ck.rt.Query(ck.h.ctx(), b)
	if err != nil {
		ck.violate("cluster-query", "%s: %v", label, err)
		return
	}
	ck.check(label, ivs, res)
}

// check runs invariants (a) and (b) on one routed result.
func (ck *clusterChecker) check(label string, ivs []query.Interval, res cluster.Result) {
	ck.rep.ClusterQueries++
	if !res.Complete() {
		ck.rep.ClusterDegraded++
	}

	// (b) dark exactness against the harness's own kill ledger.
	wantDark := ck.expectedDark(ivs)
	if !sameIntervals(res.Unavailable, wantDark) {
		ck.violate("cluster-dark-exact", "%s: dark %v, want %v (alive %v)",
			label, res.Unavailable, wantDark, ck.h.alive)
	}

	// (a) record exactness: served = truth(ivs) − truth(dark), and the
	// stream is curve-ordered. Comparison is tie-normalized by (key,
	// payload) because duplicate cells are legal.
	c := ck.topo.Curve()
	got := append([]store.Record(nil), res.Records...)
	for i := 1; i < len(got); i++ {
		if c.Index(got[i-1].Point) > c.Index(got[i].Point) {
			ck.violate("cluster-order", "%s: records out of curve order at %d", label, i)
			break
		}
	}
	sort.Slice(got, func(i, j int) bool {
		ki, kj := c.Index(got[i].Point), c.Index(got[j].Point)
		if ki != kj {
			return ki < kj
		}
		return got[i].Payload < got[j].Payload
	})
	want := ck.truth.expect(ivs, res.Unavailable)
	if !sameRecords(got, want) {
		ck.violate("cluster-record-exact", "%s: %d records served, want %d (alive %v, dark %v)",
			label, len(got), len(want), ck.h.alive, res.Unavailable)
	}
}

// expectedDark computes, from the harness's true liveness, the exact curve
// ranges of ivs that no live replica holds — what a loss-free router must
// report dark after replica fallback.
func (ck *clusterChecker) expectedDark(ivs []query.Interval) []query.Interval {
	var dark []query.Interval
	for j := 0; j < ck.topo.Nodes(); j++ {
		served := false
		for _, rep := range ck.topo.ReplicaSet(j) {
			if ck.h.alive[rep] {
				served = true
				break
			}
		}
		if served {
			continue
		}
		lo, hi := ck.topo.Segment(j)
		for _, iv := range ivs {
			a, b := iv.Lo, iv.Hi
			if a < lo {
				a = lo
			}
			if b > hi {
				b = hi
			}
			if a < b {
				dark = append(dark, query.Interval{Lo: a, Hi: b})
			}
		}
	}
	return query.MergeIntervals(dark)
}

func sameIntervals(a, b []query.Interval) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// clusterHarness owns the member processes and the true liveness ledger.
type clusterHarness struct {
	bin   string
	args  func(node int) []string
	procs []*nodeProc
	alive []bool
}

func (h *clusterHarness) ctx() context.Context { return context.Background() }

// start launches (or relaunches) member i and waits for its bound address.
func (h *clusterHarness) start(i int) (*nodeProc, error) {
	p, err := startNode(h.bin, h.args(i))
	if err != nil {
		return nil, err
	}
	h.procs[i] = p
	h.alive[i] = true
	return p, nil
}

// kill SIGKILLs member i and reaps it; the ledger flips before any query
// runs, so invariants are checked against a settled world.
func (h *clusterHarness) kill(i int) {
	if p := h.procs[i]; p != nil {
		p.kill()
	}
	h.alive[i] = false
}

func (h *clusterHarness) stopAll() {
	for i := range h.procs {
		h.kill(i)
	}
}

// randomLive picks a uniformly random live member.
func (h *clusterHarness) randomLive(rng *rand.Rand) int {
	var live []int
	for i, a := range h.alive {
		if a {
			live = append(live, i)
		}
	}
	return live[rng.Intn(len(live))]
}

// dumpArtifacts writes one text artifact per violating run: the failure
// list plus each member's captured stderr, for CI upload.
func (h *clusterHarness) dumpArtifacts(dir string, run int, failures []string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "cluster run %d: %d invariant failures\n\n", run, len(failures))
	for _, f := range failures {
		sb.WriteString(f)
		sb.WriteByte('\n')
	}
	for i, p := range h.procs {
		fmt.Fprintf(&sb, "\n--- node %d (alive=%v) stderr ---\n", i, h.alive[i])
		if p != nil {
			sb.WriteString(p.stderr.String())
		}
	}
	os.WriteFile(filepath.Join(dir, fmt.Sprintf("cluster-run-%d.txt", run)), []byte(sb.String()), 0o644)
}

// nodeProc is one running sfcserved member.
type nodeProc struct {
	cmd    *exec.Cmd
	addr   string
	stderr *lockedBuffer
}

// startNode spawns the daemon and parses its serving line ("... on
// HOST:PORT") for the :0-bound address; the daemon prints it only after the
// bulkload completes, so a returned process is ready for traffic.
func startNode(bin string, args []string) (*nodeProc, error) {
	cmd := exec.Command(bin, args...)
	stderr := &lockedBuffer{}
	cmd.Stderr = stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "sfcserved: serving") {
				if i := strings.LastIndex(line, " on "); i >= 0 {
					select {
					case addrc <- strings.TrimSpace(line[i+len(" on "):]):
					default:
					}
				}
			}
		}
		io.Copy(io.Discard, stdout)
	}()
	select {
	case addr := <-addrc:
		return &nodeProc{cmd: cmd, addr: addr, stderr: stderr}, nil
	case <-time.After(startTimeout):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("member did not report an address within %v; stderr: %s", startTimeout, stderr.String())
	}
}

// kill SIGKILLs the member and reaps it. Idempotent.
func (p *nodeProc) kill() {
	if p.cmd.Process != nil {
		p.cmd.Process.Kill()
	}
	p.cmd.Wait()
}

// lockedBuffer is a mutex-guarded bytes.Buffer: os/exec writes stderr from
// its own goroutine while the harness may read it on a violation.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// BuildServerBin compiles cmd/sfcserved into dir and returns the binary
// path — the campaign entry point for callers (CLI, tests) that were not
// handed a prebuilt -serverbin. It must run inside the module tree.
func BuildServerBin(dir string) (string, error) {
	out := filepath.Join(dir, "sfcserved")
	cmd := exec.Command("go", "build", "-o", out, "repro/cmd/sfcserved")
	var errb bytes.Buffer
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("building sfcserved: %w: %s", err, errb.String())
	}
	return out, nil
}
