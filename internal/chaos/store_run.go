package chaos

import (
	"context"
	"math/rand"

	"repro/internal/curve"
	"repro/internal/faultio"
	"repro/internal/query"
	"repro/internal/store"
)

// storeRun exercises the storage substrate: bulkload a random record set,
// verify fault-free strict/degraded equivalence, then inject a random
// fault schedule and check the degraded-query and checksum invariants.
func storeRun(cfg Config, run int, rng *rand.Rand, rep *Report) error {
	u := randomUniverse(rng)
	c, err := randomCurve(rng, u)
	if err != nil {
		return err
	}
	recs := randomRecords(rng, u, rng.Intn(2000))
	st, err := store.Bulkload(c, recs, store.Config{
		PageSize: 4 << rng.Intn(4), // 4..32
		Fanout:   2 << rng.Intn(3), // 2..16
	})
	if err != nil {
		return err
	}

	// Fault-free baseline: strict and degraded scans must agree exactly.
	ctx := context.Background()
	base := randomBox(rng, u)
	st.ResetStats()
	strict, err := st.ScanBox(ctx, base, store.ScanStrict())
	if err != nil {
		rep.violate(run, "fault-free-strict", "strict scan failed on the default device: %v", err)
	}
	strictStats := st.Stats()
	st.ResetStats()
	deg, err := st.ScanBox(ctx, base)
	if err != nil {
		rep.violate(run, "zero-overhead", "degraded scan failed on the default device: %v", err)
	}
	if !deg.Complete() {
		rep.violate(run, "zero-overhead", "degraded scan reported %d dark intervals on the default device", len(deg.Unavailable))
	}
	if !sameRecords(strict.Records, deg.Records) {
		rep.violate(run, "zero-overhead", "degraded records differ from strict on the default device")
	}
	if st.Stats() != strictStats {
		rep.violate(run, "zero-overhead", "degraded stats %+v != strict stats %+v", st.Stats(), strictStats)
	}

	// Inject a random fault schedule.
	inj, err := faultio.Wrap(st.DefaultDevice(), faultio.Config{
		Seed:          rng.Int63(),
		TransientProb: rng.Float64() * 0.4,
		CorruptProb:   rng.Float64() * 0.3,
		SpikeProb:     rng.Float64() * 0.2,
		LostFrac:      rng.Float64() * 0.25,
	})
	if err != nil {
		return err
	}
	if err := st.SetDevice(inj); err != nil {
		return err
	}
	rep.PagesLost += len(inj.Lost())
	st.ResetStats()

	for q := 0; q < cfg.QueriesPerRun; q++ {
		b := randomBox(rng, u)
		res, err := st.ScanBox(ctx, b)
		if err != nil {
			return err
		}
		rep.Queries++
		rep.RecordsServed += uint64(len(res.Records))
		rep.UnavailableIntervals += uint64(len(res.Unavailable))
		checkDegraded(run, rep, c, recs, b, res)
	}

	// Checksum invariant: every injected corruption was detected.
	stats := st.Stats()
	counters := inj.Counters()
	rep.CorruptionsInjected += counters.Corruptions
	rep.CorruptionsDetected += uint64(stats.ChecksumFailures)
	rep.TransientsInjected += counters.Transients
	rep.RetriesObserved += uint64(stats.Retries)
	if uint64(stats.ChecksumFailures) != counters.Corruptions {
		rep.violate(run, "checksum-detection", "injected %d corruptions, detected %d", counters.Corruptions, stats.ChecksumFailures)
	}
	return nil
}

// checkDegraded verifies the no-loss/no-duplication and tiling invariants
// of one degraded query against the ground-truth record set.
func checkDegraded(run int, rep *Report, c curve.Curve, recs []store.Record, b query.Box, res store.ScanResult) {
	u := c.Universe()
	// Dark intervals: sorted, disjoint, nonempty, and inside the box's
	// curve footprint (every index maps to a cell of the box).
	p := u.NewPoint()
	for i, iv := range res.Unavailable {
		if iv.Lo >= iv.Hi {
			rep.violate(run, "tiling", "empty or inverted dark interval [%d, %d)", iv.Lo, iv.Hi)
			return
		}
		if i > 0 && iv.Lo <= res.Unavailable[i-1].Hi {
			rep.violate(run, "tiling", "dark intervals not sorted/disjoint: [%d,%d) after [%d,%d)",
				iv.Lo, iv.Hi, res.Unavailable[i-1].Lo, res.Unavailable[i-1].Hi)
			return
		}
		for idx := iv.Lo; idx < iv.Hi; idx++ {
			c.Point(idx, p)
			if !b.Contains(p) {
				rep.violate(run, "tiling", "dark index %d maps to %v outside the box", idx, p)
				return
			}
		}
	}
	dark := func(key uint64) bool {
		for _, iv := range res.Unavailable {
			if key >= iv.Lo && key < iv.Hi {
				return true
			}
		}
		return false
	}
	// Expected: every ground-truth record in the box whose key is served.
	var want []store.Record
	for _, r := range recs {
		if b.Contains(r.Point) && !dark(c.Index(r.Point)) {
			want = append(want, r)
		}
	}
	got := append([]store.Record(nil), res.Records...)
	for _, r := range got {
		if !b.Contains(r.Point) {
			rep.violate(run, "no-loss-no-dup", "returned record %v outside the box", r.Point)
			return
		}
		if dark(c.Index(r.Point)) {
			rep.violate(run, "tiling", "returned record %v lies in a dark interval", r.Point)
			return
		}
	}
	sortRecords(want)
	sortRecords(got)
	if !sameRecords(want, got) {
		rep.violate(run, "no-loss-no-dup", "served records mismatch: want %d records, got %d (after excluding dark intervals)",
			len(want), len(got))
	}
}
