package chaos

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/faultio"
	"repro/internal/query"
	"repro/internal/store"
)

// crashRun exercises the durable write path: a seeded workload of puts,
// deletes, flushes and compactions is cut short by a kill — a clean close,
// a power-loss crash, or a torn write mid-append — then the store is
// reopened and checked op-for-op against the model of acknowledged
// operations. No acknowledged write may be lost, none may be duplicated,
// and an unacknowledged write must never surface. The final recovered store
// is then queried through a fault-injecting page device to verify the
// degraded-tiling invariants hold across restart, exactly as they do for a
// bulkloaded store.
func crashRun(cfg Config, run int, rng *rand.Rand, rep *Report) error {
	u := randomUniverse(rng)
	c, err := randomCurve(rng, u)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "sfcchaos-crash-*")
	if err != nil {
		return err
	}
	violationsBefore := len(rep.Violations)
	defer func() {
		if len(rep.Violations) > violationsBefore && cfg.ArtifactDir != "" {
			if err := saveArtifacts(cfg.ArtifactDir, run, dir); err != nil && cfg.Log != nil {
				cfg.Log("chaos: run %d: saving artifacts: %v", run, err)
			}
		}
		os.RemoveAll(dir)
	}()

	autoCompact := rng.Intn(2) == 0
	baseOpts := []store.DurableOption{
		store.WithDurablePageSize(4 << rng.Intn(3)), // 4..16
		store.WithMemLimit(8 + rng.Intn(56)),
		store.WithCompactThreshold(2 + rng.Intn(3)),
		store.WithAutoCompact(autoCompact),
	}
	ctx := context.Background()
	d, err := store.OpenDurable(dir, c, baseOpts...)
	if err != nil {
		return err
	}

	// The model: every acknowledged, surviving record instance.
	var survivors []store.Record
	nextPayload := uint64(0)
	put := func() error {
		var r store.Record
		if len(survivors) > 0 && rng.Intn(10) == 0 {
			r = survivors[rng.Intn(len(survivors))] // duplicate instance
		} else {
			r = randomRecords(rng, u, 1)[0]
			r.Payload = nextPayload
			nextPayload++
		}
		if err := d.Put(ctx, r); err != nil {
			return err
		}
		survivors = append(survivors, r)
		rep.OpsAcked++
		return nil
	}
	del := func() error {
		r := survivors[rng.Intn(len(survivors))]
		if err := d.Delete(ctx, r); err != nil {
			return err
		}
		kept := survivors[:0]
		for _, s := range survivors {
			if c.Index(s.Point) != c.Index(r.Point) || s.Payload != r.Payload {
				kept = append(kept, s)
			}
		}
		survivors = kept
		rep.OpsAcked++
		return nil
	}
	verify := func(d *store.Durable, label string) {
		res, err := d.Scan(ctx, []query.Interval{{Lo: 0, Hi: u.N()}}, store.ScanStrict())
		if err != nil {
			rep.violate(run, "crash-recovery", "%s: strict scan after recovery failed: %v", label, err)
			return
		}
		want := append([]store.Record(nil), survivors...)
		got := append([]store.Record(nil), res.Records...)
		sortRecords(want)
		sortRecords(got)
		if !sameRecords(want, got) {
			rep.violate(run, "crash-recovery",
				"%s: recovered store holds %d records, %d acknowledged survive the model — an acked write was lost, duplicated, or an unacked one surfaced",
				label, len(got), len(want))
		}
	}

	phases := 2 + rng.Intn(3)
	for ph := 0; ph < phases; ph++ {
		ops := 20 + rng.Intn(60)
		for i := 0; i < ops; i++ {
			if len(survivors) > 0 && rng.Float64() < 0.25 {
				err = del()
			} else {
				err = put()
			}
			if err != nil {
				return err
			}
		}
		if rng.Float64() < 0.4 {
			if err := d.Flush(ctx); err != nil {
				return err
			}
		}
		if !autoCompact && rng.Float64() < 0.3 {
			if err := d.Compact(ctx); err != nil {
				return err
			}
		}

		mode := rng.Intn(3)
		var torn bool
		switch mode {
		case 0:
			err = d.Close()
		case 1:
			err = d.Crash()
		case 2:
			// Die mid-append of a put that will never be acknowledged.
			unacked := randomRecords(rng, u, 1)[0]
			unacked.Payload = 1 << 40 // payload space the model never uses
			err = d.CrashMidPut(unacked, rng.Int63())
			torn = true
		}
		if err != nil {
			return fmt.Errorf("crash mode %d: %w", mode, err)
		}
		d, err = store.OpenDurable(dir, c, baseOpts...)
		if err != nil {
			rep.violate(run, "crash-recovery", "reopen after crash mode %d failed: %v", mode, err)
			return nil
		}
		rep.Recoveries++
		tornTails := uint64(d.Metrics().Counter("wal.torn_tails_truncated").Value())
		rep.TornTailsTruncated += tornTails
		if !torn && tornTails != 0 {
			rep.violate(run, "crash-recovery", "clean shutdown left a torn tail (mode %d)", mode)
		}
		if torn && tornTails > 1 {
			rep.violate(run, "crash-recovery", "one torn crash produced %d torn tails", tornTails)
		}
		verify(d, fmt.Sprintf("phase %d mode %d", ph, mode))
	}
	if err := d.Close(); err != nil {
		return err
	}
	rep.CrashChecks++

	// Normalize the on-disk layout before injecting read faults: whether a
	// background auto-compaction committed before a kill is a race, so the
	// run-file layout — and with it the fault schedule — would otherwise
	// differ between identically seeded campaigns. Flush + compact collapses
	// everything into one deterministic, curve-ordered run.
	norm, err := store.OpenDurable(dir, c, append(append([]store.DurableOption{}, baseOpts...),
		store.WithAutoCompact(false))...)
	if err != nil {
		rep.violate(run, "crash-recovery", "reopen for normalization failed: %v", err)
		return nil
	}
	if err := norm.Flush(ctx); err != nil {
		return err
	}
	if err := norm.Compact(ctx); err != nil {
		return err
	}
	if err := norm.Close(); err != nil {
		return err
	}

	// Degraded queries across restart: reopen with a fault-injecting page
	// device under every run file and check the exact-tiling invariants
	// against the surviving model — the same oracle the bulkloaded store
	// campaign uses.
	devSeed := rng.Int63()
	transient := rng.Float64() * 0.3
	lost := rng.Float64() * 0.2
	short := rng.Float64() * 0.2
	nDev := 0
	wrap := func(dev store.PageDevice) (store.PageDevice, error) {
		nDev++
		return faultio.Wrap(dev, faultio.Config{
			Seed:          devSeed + int64(nDev),
			TransientProb: transient,
			LostFrac:      lost,
			ShortReadProb: short,
		})
	}
	d2, err := store.OpenDurable(dir, c, append(append([]store.DurableOption{}, baseOpts...),
		store.WithRunWrapper(wrap),
		store.WithAutoCompact(false))...)
	if err != nil {
		return err
	}
	defer d2.Close()
	for q := 0; q < cfg.QueriesPerRun; q++ {
		b := randomBox(rng, u)
		res, err := d2.ScanBox(ctx, b)
		if err != nil {
			return err
		}
		rep.Queries++
		rep.RecordsServed += uint64(len(res.Records))
		rep.UnavailableIntervals += uint64(len(res.Unavailable))
		checkDegraded(run, rep, c, survivors, b, res)
	}
	return nil
}

// saveArtifacts copies the durable directory of a violating run into
// artifactDir/run-<n>/ so the WAL, manifest, and run files can be inspected
// after the campaign.
func saveArtifacts(artifactDir string, run int, dir string) error {
	dst := filepath.Join(artifactDir, fmt.Sprintf("run-%d", run))
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		if err := copyFile(filepath.Join(dir, ent.Name()), filepath.Join(dst, ent.Name())); err != nil {
			return err
		}
	}
	return nil
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	_, err = io.Copy(out, in)
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	return err
}
