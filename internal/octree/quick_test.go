package octree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

// TestQuickTreeInvariants builds trees over quick-generated shapes, body
// counts and leaf sizes, and validates the structural invariants.
func TestQuickTreeInvariants(t *testing.T) {
	f := func(dRaw, kRaw, leafRaw uint8, seed int64) bool {
		d := 2 + int(dRaw)%2 // 2 or 3
		k := 2 + int(kRaw)%4 // 2..5
		leaf := 1 + int(leafRaw)%16
		u := grid.MustNew(d, k)
		n := 50 + int(uint(seed)%400)
		tree, err := Build(u, randomBodies(u, n, seed), Config{LeafSize: leaf})
		if err != nil {
			return false
		}
		return tree.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickThetaZeroExact checks, over random configurations, that θ=0
// traversal reproduces the direct sum.
func TestQuickThetaZeroExact(t *testing.T) {
	f := func(seed int64) bool {
		u := grid.MustNew(2, 4)
		rng := rand.New(rand.NewSource(seed))
		tree, err := Build(u, randomBodies(u, 60, seed), Config{LeafSize: 2})
		if err != nil {
			return false
		}
		i := rng.Intn(tree.Len())
		force := make([]float64, 2)
		direct := make([]float64, 2)
		tree.Force(i, 0, force)
		tree.DirectForce(i, direct)
		for j := range force {
			diff := force[j] - direct[j]
			if diff < 0 {
				diff = -diff
			}
			scale := direct[j]
			if scale < 0 {
				scale = -scale
			}
			if diff > 1e-9*(1+scale) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
