// Package octree implements a Morton-keyed Barnes–Hut tree — the "parallel
// hashed oct-tree N-body algorithm" of Warren & Salmon ([26]), the paper's
// flagship application of space filling curves. Bodies are sorted by the Z
// curve key of their containing cell; every tree node is an aligned
// subcube, hence an aligned contiguous range of both keys and array
// positions, so the whole tree is ranges over one flat sorted array — no
// pointers chased, which is exactly why N-body codes adopt SFC orders.
//
// The package builds the 2^d-tree, accumulates masses and centers of mass
// bottom-up, and evaluates gravitational forces with the Barnes–Hut
// multipole acceptance criterion (opening angle θ). θ = 0 degenerates to
// the exact direct sum, which the tests exploit.
package octree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/parallel"
)

// Body is a point mass in the continuous domain [0, side)^d.
type Body struct {
	Pos  []float64
	Mass float64
}

// Config tunes tree construction and force evaluation.
type Config struct {
	LeafSize  int     // max bodies per leaf (default 8)
	Softening float64 // Plummer softening ε (default 1e-3·side)
	G         float64 // gravitational constant (default 1)
}

// node is an aligned subcube covering a contiguous slice of the sorted
// body array.
type node struct {
	bodyLo, bodyHi int // range in the sorted body arrays
	level          int
	corner         []float64 // physical corner of the subcube
	size           float64   // physical side length
	com            []float64
	mass           float64
	children       []int32 // indices of materialized children; nil for leaves
}

// Tree is an immutable Barnes–Hut tree over a body set.
type Tree struct {
	u     *grid.Universe
	z     *curve.Z
	cfg   Config
	pos   []float64 // sorted by Morton key, d per body
	mass  []float64
	keys  []uint64
	nodes []node
	d     int
}

// Stats counts the work of force evaluations.
type Stats struct {
	NodesVisited int // nodes whose acceptance test ran
	Approximated int // node-as-particle approximations taken
	DirectPairs  int // body-body interactions computed
}

// Build sorts the bodies by Morton key and constructs the tree. Bodies must
// lie inside [0, side)^d of u; u's resolution (k) bounds the tree depth.
func Build(u *grid.Universe, bodies []Body, cfg Config) (*Tree, error) {
	if len(bodies) == 0 {
		return nil, fmt.Errorf("octree: no bodies")
	}
	if cfg.LeafSize == 0 {
		cfg.LeafSize = 8
	}
	if cfg.LeafSize < 1 {
		return nil, fmt.Errorf("octree: leaf size %d", cfg.LeafSize)
	}
	if cfg.G == 0 {
		cfg.G = 1
	}
	side := float64(u.Side())
	if cfg.Softening == 0 {
		cfg.Softening = 1e-3 * side
	}
	d := u.D()
	t := &Tree{
		u: u, z: curve.NewZ(u), cfg: cfg, d: d,
		pos:  make([]float64, d*len(bodies)),
		mass: make([]float64, len(bodies)),
		keys: make([]uint64, len(bodies)),
	}
	// Key every body by its containing cell.
	type keyed struct {
		key  uint64
		body int
	}
	ks := make([]keyed, len(bodies))
	cell := u.NewPoint()
	for i, b := range bodies {
		if len(b.Pos) != d {
			return nil, fmt.Errorf("octree: body %d has %d coordinates for d=%d", i, len(b.Pos), d)
		}
		if b.Mass <= 0 {
			return nil, fmt.Errorf("octree: body %d has mass %v", i, b.Mass)
		}
		for j, x := range b.Pos {
			if x < 0 || x >= side {
				return nil, fmt.Errorf("octree: body %d outside domain: %v", i, b.Pos)
			}
			cell[j] = uint32(x)
		}
		ks[i] = keyed{key: t.z.Index(cell), body: i}
	}
	sort.SliceStable(ks, func(a, b int) bool { return ks[a].key < ks[b].key })
	for slot, kb := range ks {
		copy(t.pos[slot*d:(slot+1)*d], bodies[kb.body].Pos)
		t.mass[slot] = bodies[kb.body].Mass
		t.keys[slot] = kb.key
	}
	t.buildNode(0, len(bodies), 0, 0, make([]float64, d))
	return t, nil
}

// buildNode constructs the subtree whose subcube starts at the given key
// with side 2^(k-level), covering sorted bodies [lo, hi). corner is the
// physical corner (copied). Returns the node index.
func (t *Tree) buildNode(lo, hi, level int, keyLo uint64, corner []float64) int32 {
	d := t.d
	size := float64(t.u.Side()) / float64(uint64(1)<<uint(level))
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{
		bodyLo: lo, bodyHi: hi, level: level,
		corner: append([]float64(nil), corner...),
		size:   size,
		com:    make([]float64, d),
	})
	if hi-lo <= t.cfg.LeafSize || level >= t.u.K() {
		t.accumulate(idx)
		return idx
	}
	// Split into 2^d children: child c covers keys [keyLo + c·cells,
	// keyLo + (c+1)·cells) where cells = 2^(d·(k−level−1)).
	cells := uint64(1) << uint(d*(t.u.K()-level-1))
	children := 1 << uint(d)
	childCorner := make([]float64, d)
	var kids []int32
	cell := t.u.NewPoint()
	b := lo
	for c := 0; c < children; c++ {
		childKeyLo := keyLo + uint64(c)*cells
		childKeyHi := childKeyLo + cells
		start := b
		for b < hi && t.keys[b] < childKeyHi {
			b++
		}
		if b == start {
			continue // empty child: not materialized
		}
		// Child corner from its first cell, aligned down.
		t.z.Point(childKeyLo, cell)
		for j := 0; j < d; j++ {
			mask := uint32(size/2) - 1
			childCorner[j] = float64(cell[j] &^ mask)
		}
		kids = append(kids, t.buildNode(start, b, level+1, childKeyLo, childCorner))
	}
	t.nodes[idx].children = kids
	t.accumulate(idx)
	return idx
}

// accumulate computes a node's mass and center of mass directly from its
// body range (cheap, cache-friendly, and immune to child-ordering details).
func (t *Tree) accumulate(idx int32) {
	n := &t.nodes[idx]
	d := t.d
	for b := n.bodyLo; b < n.bodyHi; b++ {
		m := t.mass[b]
		n.mass += m
		for j := 0; j < d; j++ {
			n.com[j] += m * t.pos[b*d+j]
		}
	}
	if n.mass > 0 {
		for j := 0; j < d; j++ {
			n.com[j] /= n.mass
		}
	}
}

// Len returns the body count.
func (t *Tree) Len() int { return len(t.mass) }

// Nodes returns the number of materialized tree nodes.
func (t *Tree) Nodes() int { return len(t.nodes) }

// BodyPos returns the position of the body at sorted slot i (aliased; do
// not modify).
func (t *Tree) BodyPos(i int) []float64 { return t.pos[i*t.d : (i+1)*t.d] }

// BodyMass returns the mass of the body at sorted slot i.
func (t *Tree) BodyMass(i int) float64 { return t.mass[i] }

// TotalMass returns the root's mass.
func (t *Tree) TotalMass() float64 { return t.nodes[0].mass }

// Force computes the gravitational force on the body at sorted slot i with
// the Barnes–Hut acceptance criterion: a node is approximated by its center
// of mass when size/distance < theta. theta = 0 forces full recursion (the
// exact direct sum). The returned Stats describe the traversal.
func (t *Tree) Force(i int, theta float64, force []float64) Stats {
	for j := range force {
		force[j] = 0
	}
	var st Stats
	t.forceRec(0, i, theta, force, &st)
	return st
}

func (t *Tree) forceRec(ni int32, i int, theta float64, force []float64, st *Stats) {
	n := &t.nodes[ni]
	st.NodesVisited++
	d := t.d
	pi := t.pos[i*d : (i+1)*d]
	// Acceptance test against the center of mass.
	var dist2 float64
	for j := 0; j < d; j++ {
		dd := n.com[j] - pi[j]
		dist2 += dd * dd
	}
	dist := math.Sqrt(dist2)
	if n.children == nil || (dist > 0 && n.size/dist < theta) {
		if n.children == nil {
			// Leaf: direct sum over its bodies.
			for b := n.bodyLo; b < n.bodyHi; b++ {
				if b == i {
					continue
				}
				t.addPairForce(pi, t.pos[b*d:(b+1)*d], t.mass[i], t.mass[b], force)
				st.DirectPairs++
			}
			return
		}
		// Approximate the whole node — but never a node containing i.
		if i < n.bodyLo || i >= n.bodyHi {
			t.addPairForce(pi, n.com, t.mass[i], n.mass, force)
			st.Approximated++
			return
		}
	}
	for _, ci := range n.children {
		t.forceRec(ci, i, theta, force, st)
	}
}

// addPairForce accumulates the softened gravitational pull of (pos2, m2) on
// (pos1, m1) into force.
func (t *Tree) addPairForce(pos1, pos2 []float64, m1, m2 float64, force []float64) {
	var dist2 float64
	for j := range pos1 {
		dd := pos2[j] - pos1[j]
		dist2 += dd * dd
	}
	dist2 += t.cfg.Softening * t.cfg.Softening
	inv := t.cfg.G * m1 * m2 / (dist2 * math.Sqrt(dist2))
	for j := range pos1 {
		force[j] += inv * (pos2[j] - pos1[j])
	}
}

// DirectForce computes the exact softened force on sorted slot i by the
// O(n) direct sum — the reference the tests compare against.
func (t *Tree) DirectForce(i int, force []float64) {
	for j := range force {
		force[j] = 0
	}
	d := t.d
	pi := t.pos[i*d : (i+1)*d]
	for b := 0; b < t.Len(); b++ {
		if b == i {
			continue
		}
		t.addPairForce(pi, t.pos[b*d:(b+1)*d], t.mass[i], t.mass[b], force)
	}
}

// Validate checks the structural invariants: sorted keys, body ranges of
// children partitioning the parent's, masses summing, and every node's
// bodies lying inside its subcube.
func (t *Tree) Validate() error {
	for i := 1; i < len(t.keys); i++ {
		if t.keys[i] < t.keys[i-1] {
			return fmt.Errorf("octree: keys not sorted at %d", i)
		}
	}
	d := t.d
	for ni := range t.nodes {
		n := &t.nodes[ni]
		// Bodies inside the subcube.
		for b := n.bodyLo; b < n.bodyHi; b++ {
			for j := 0; j < d; j++ {
				x := t.pos[b*d+j]
				if x < n.corner[j] || x >= n.corner[j]+n.size {
					return fmt.Errorf("octree: node %d body %d coordinate %v outside [%v, %v)",
						ni, b, x, n.corner[j], n.corner[j]+n.size)
				}
			}
		}
		if n.children == nil {
			continue
		}
		covered := 0
		var childMass float64
		for _, ci := range n.children {
			ch := &t.nodes[ci]
			covered += ch.bodyHi - ch.bodyLo
			childMass += ch.mass
		}
		if covered != n.bodyHi-n.bodyLo {
			return fmt.Errorf("octree: node %d children cover %d of %d bodies", ni, covered, n.bodyHi-n.bodyLo)
		}
		if math.Abs(childMass-n.mass) > 1e-9*(1+n.mass) {
			return fmt.Errorf("octree: node %d child mass %v != %v", ni, childMass, n.mass)
		}
	}
	return nil
}

// AllForces evaluates the force on every body with the given opening angle,
// distributing bodies across workers goroutines (GOMAXPROCS when
// workers <= 0). The returned slice holds d entries per sorted body slot.
// The aggregate Stats sum the per-body traversal counters.
func (t *Tree) AllForces(theta float64, workers int) ([]float64, Stats) {
	n := uint64(t.Len())
	out := make([]float64, t.Len()*t.d)
	partial := parallel.MapRanges(n, workers, func(lo, hi uint64) Stats {
		var st Stats
		for i := lo; i < hi; i++ {
			s := t.Force(int(i), theta, out[int(i)*t.d:(int(i)+1)*t.d])
			st.NodesVisited += s.NodesVisited
			st.Approximated += s.Approximated
			st.DirectPairs += s.DirectPairs
		}
		return st
	})
	var total Stats
	for _, s := range partial {
		total.NodesVisited += s.NodesVisited
		total.Approximated += s.Approximated
		total.DirectPairs += s.DirectPairs
	}
	return out, total
}
