package octree

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/grid"
)

func randomBodies(u *grid.Universe, n int, seed int64) []Body {
	rng := rand.New(rand.NewSource(seed))
	side := float64(u.Side())
	bodies := make([]Body, n)
	for i := range bodies {
		pos := make([]float64, u.D())
		for j := range pos {
			pos[j] = rng.Float64() * side
		}
		bodies[i] = Body{Pos: pos, Mass: 0.5 + rng.Float64()}
	}
	return bodies
}

func TestBuildValidation(t *testing.T) {
	u := grid.MustNew(2, 4)
	if _, err := Build(u, nil, Config{}); err == nil {
		t.Fatal("empty body set accepted")
	}
	if _, err := Build(u, []Body{{Pos: []float64{1}, Mass: 1}}, Config{}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if _, err := Build(u, []Body{{Pos: []float64{1, 99}, Mass: 1}}, Config{}); err == nil {
		t.Fatal("outside domain accepted")
	}
	if _, err := Build(u, []Body{{Pos: []float64{1, 1}, Mass: 0}}, Config{}); err == nil {
		t.Fatal("zero mass accepted")
	}
	if _, err := Build(u, []Body{{Pos: []float64{1, 1}, Mass: 1}}, Config{LeafSize: -1}); err == nil {
		t.Fatal("negative leaf size accepted")
	}
}

func TestTreeInvariants(t *testing.T) {
	for _, dk := range [][2]int{{2, 5}, {3, 4}} {
		u := grid.MustNew(dk[0], dk[1])
		tree, err := Build(u, randomBodies(u, 1500, 7), Config{LeafSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("%v: %v", u, err)
		}
		if tree.Len() != 1500 || tree.Nodes() < 100 {
			t.Fatalf("%v: %d bodies, %d nodes", u, tree.Len(), tree.Nodes())
		}
		// Total mass preserved.
		var want float64
		for i := 0; i < tree.Len(); i++ {
			want += tree.BodyMass(i)
		}
		if math.Abs(tree.TotalMass()-want) > 1e-9*want {
			t.Fatalf("total mass %v, want %v", tree.TotalMass(), want)
		}
	}
}

func TestThetaZeroIsDirectSum(t *testing.T) {
	u := grid.MustNew(2, 4)
	tree, err := Build(u, randomBodies(u, 300, 3), Config{LeafSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	force := make([]float64, 2)
	direct := make([]float64, 2)
	for i := 0; i < tree.Len(); i += 17 {
		st := tree.Force(i, 0, force)
		tree.DirectForce(i, direct)
		for j := range force {
			if math.Abs(force[j]-direct[j]) > 1e-9*(1+math.Abs(direct[j])) {
				t.Fatalf("body %d: θ=0 force %v != direct %v", i, force, direct)
			}
		}
		if st.Approximated != 0 {
			t.Fatalf("θ=0 approximated %d nodes", st.Approximated)
		}
		if st.DirectPairs != tree.Len()-1 {
			t.Fatalf("θ=0 visited %d pairs, want %d", st.DirectPairs, tree.Len()-1)
		}
	}
}

func TestBarnesHutAccuracy(t *testing.T) {
	// Uniform distributions have near-zero net force (cancellation), which
	// makes relative error against the net meaningless. Use a dominated
	// configuration instead: a heavy cluster in one corner pulls probe
	// bodies across the domain; the Barnes–Hut approximation of that pull
	// must be accurate.
	u := grid.MustNew(2, 6)
	rng := rand.New(rand.NewSource(11))
	var bodies []Body
	for i := 0; i < 1500; i++ { // heavy cluster near the origin
		bodies = append(bodies, Body{
			Pos:  []float64{rng.Float64() * 6, rng.Float64() * 6},
			Mass: 1,
		})
	}
	probeStart := len(bodies)
	for i := 0; i < 50; i++ { // light probes far away
		bodies = append(bodies, Body{
			Pos:  []float64{50 + rng.Float64()*10, 50 + rng.Float64()*10},
			Mass: 1e-3,
		})
	}
	tree, err := Build(u, bodies, Config{LeafSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Probes were re-sorted; find them by mass.
	force := make([]float64, 2)
	direct := make([]float64, 2)
	var relErrSum float64
	samples := 0
	for i := 0; i < tree.Len(); i++ {
		if tree.BodyMass(i) > 1e-2 {
			continue // not a probe
		}
		tree.Force(i, 0.5, force)
		tree.DirectForce(i, direct)
		mag := math.Hypot(direct[0], direct[1])
		relErrSum += math.Hypot(force[0]-direct[0], force[1]-direct[1]) / mag
		samples++
	}
	if samples != len(bodies)-probeStart {
		t.Fatalf("found %d probes", samples)
	}
	if mean := relErrSum / float64(samples); mean > 0.02 {
		t.Fatalf("θ=0.5 mean relative force error %v over %d probes", mean, samples)
	}
}

func TestBarnesHutSavesWork(t *testing.T) {
	u := grid.MustNew(2, 6)
	tree, err := Build(u, randomBodies(u, 4000, 5), Config{LeafSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	force := make([]float64, 2)
	st := tree.Force(1234, 0.7, force)
	work := st.DirectPairs + st.Approximated
	if work*5 > tree.Len() {
		t.Fatalf("θ=0.7 interaction count %d not ≪ n=%d", work, tree.Len())
	}
	if st.Approximated == 0 {
		t.Fatal("no approximations at θ=0.7")
	}
	// Tighter θ does more work and is more accurate.
	stTight := tree.Force(1234, 0.2, force)
	if stTight.DirectPairs+stTight.Approximated <= work {
		t.Fatal("θ=0.2 did not increase work over θ=0.7")
	}
}

func TestForceSymmetryPair(t *testing.T) {
	// Two bodies: Newton's third law through the softened kernel.
	u := grid.MustNew(2, 4)
	bodies := []Body{
		{Pos: []float64{3, 3}, Mass: 2},
		{Pos: []float64{10, 7}, Mass: 5},
	}
	tree, err := Build(u, bodies, Config{})
	if err != nil {
		t.Fatal(err)
	}
	f0 := make([]float64, 2)
	f1 := make([]float64, 2)
	tree.Force(0, 0.5, f0)
	tree.Force(1, 0.5, f1)
	for j := range f0 {
		if math.Abs(f0[j]+f1[j]) > 1e-12 {
			t.Fatalf("forces not antisymmetric: %v vs %v", f0, f1)
		}
	}
	// Pull directions point at each other.
	if f0[0] <= 0 || f1[0] >= 0 {
		t.Fatalf("directions wrong: %v %v", f0, f1)
	}
}

func TestClusteredDistributionDeepTree(t *testing.T) {
	// All bodies in one corner cell: tree must refine down to max depth and
	// remain valid.
	u := grid.MustNew(2, 5)
	rng := rand.New(rand.NewSource(2))
	bodies := make([]Body, 200)
	for i := range bodies {
		bodies[i] = Body{Pos: []float64{rng.Float64() * 0.9, rng.Float64() * 0.9}, Mass: 1}
	}
	tree, err := Build(u, bodies, Config{LeafSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// All in one cell → depth-k chain, leaf holds all 200.
	force := make([]float64, 2)
	st := tree.Force(0, 0.5, force)
	if st.DirectPairs != 199 {
		t.Fatalf("clustered leaf direct pairs %d", st.DirectPairs)
	}
}

func BenchmarkBarnesHutForce(b *testing.B) {
	u := grid.MustNew(3, 6)
	tree, err := Build(u, randomBodies(u, 20000, 9), Config{LeafSize: 16})
	if err != nil {
		b.Fatal(err)
	}
	force := make([]float64, 3)
	for i := 0; i < b.N; i++ {
		tree.Force(i%tree.Len(), 0.6, force)
	}
}

func BenchmarkTreeBuild(b *testing.B) {
	u := grid.MustNew(3, 6)
	bodies := randomBodies(u, 20000, 9)
	for i := 0; i < b.N; i++ {
		if _, err := Build(u, bodies, Config{LeafSize: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAllForcesMatchesPerBody(t *testing.T) {
	u := grid.MustNew(2, 5)
	tree, err := Build(u, randomBodies(u, 800, 21), Config{LeafSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	all, st := tree.AllForces(0.5, 4)
	if st.NodesVisited == 0 || st.DirectPairs == 0 {
		t.Fatalf("degenerate aggregate stats %+v", st)
	}
	force := make([]float64, 2)
	for i := 0; i < tree.Len(); i += 41 {
		tree.Force(i, 0.5, force)
		for j := 0; j < 2; j++ {
			if math.Abs(all[i*2+j]-force[j]) > 1e-12 {
				t.Fatalf("body %d force mismatch: %v vs %v", i, all[i*2:i*2+2], force)
			}
		}
	}
	// Worker invariance.
	all1, _ := tree.AllForces(0.5, 1)
	for i := range all {
		if all[i] != all1[i] {
			t.Fatalf("worker-count dependent force at %d", i)
		}
	}
}
