package partition

import (
	"fmt"
	"sort"
)

// FailParts handles processor failure: the curve segments of the dead parts
// are redistributed to the surviving parts with minimal cut displacement.
// Each maximal run of dead parts is absorbed by its two surviving
// neighbors along the curve — split at the midpoint when both exist, or
// wholly by the single neighbor at a domain edge. Dead parts keep their
// index but own an empty segment, so part numbering is stable across
// failures.
//
// Because survivors only ever *extend* their segments, the migration volume
// equals exactly the number of cells the dead parts owned — the
// paper-motivated property that recovery cost scales with the load lost,
// not with the domain size. Contiguity along the curve is what makes this
// possible: a dead processor's data is one curve segment, and its
// neighbors' segments are adjacent to it.
//
// It errors if dead contains an out-of-range or duplicate part, or if no
// part survives.
func (pt *Partition) FailParts(dead []int) (*Partition, Migration, error) {
	isDead, alive, err := pt.deadSet(dead)
	if err != nil {
		return nil, Migration{}, err
	}
	if alive == 0 {
		return nil, Migration{}, fmt.Errorf("partition: all %d parts dead", pt.Parts())
	}
	cuts := append([]uint64(nil), pt.cuts...)
	p := pt.Parts()
	for i := 0; i < p; {
		if !isDead[i] {
			i++
			continue
		}
		j := i // maximal dead run [i, j]
		for j+1 < p && isDead[j+1] {
			j++
		}
		lo, hi := cuts[i], cuts[j+1]
		var m uint64
		switch {
		case i > 0 && j < p-1: // survivors on both sides: split at midpoint
			m = lo + (hi-lo)/2
		case j < p-1: // run touches the low edge: right neighbor absorbs
			m = lo
		default: // run touches the high edge: left neighbor absorbs
			m = hi
		}
		for t := i; t <= j; t++ {
			cuts[t] = m
		}
		if j < p-1 {
			cuts[j+1] = m
		}
		i = j + 1
	}
	// cuts[0] and cuts[p] are untouched by construction (edge runs assign
	// lo=cuts[0] resp. hi=cuts[p] back to themselves).
	next := &Partition{c: pt.c, cuts: cuts}
	return next, MigrationBetween(pt, next), nil
}

// FailPartsWeighted is FailParts with load-aware redistribution: instead of
// splitting dead segments between adjacent survivors, the whole index space
// is re-partitioned across the survivors balancing the given weight (nil
// for unit weights). Dead parts own empty segments. Migration decomposes
// exactly as dead-owned cells (which must move) plus rebalance slack —
// cells traded between survivors to restore balance; MigrationSplit
// separates the two.
func (pt *Partition) FailPartsWeighted(dead []int, w Weight) (*Partition, Migration, error) {
	isDead, alive, err := pt.deadSet(dead)
	if err != nil {
		return nil, Migration{}, err
	}
	if alive == 0 {
		return nil, Migration{}, fmt.Errorf("partition: all %d parts dead", pt.Parts())
	}
	if w == nil {
		w = UnitWeight
	}
	wpt, err := Weighted(pt.c, alive, w)
	if err != nil {
		return nil, Migration{}, err
	}
	p := pt.Parts()
	cuts := make([]uint64, p+1)
	ai := 0
	for j := 0; j < p; j++ {
		if isDead[j] {
			cuts[j+1] = cuts[j]
			continue
		}
		_, hi := wpt.Segment(ai)
		cuts[j+1] = hi
		ai++
	}
	next := &Partition{c: pt.c, cuts: cuts}
	return next, MigrationBetween(pt, next), nil
}

// deadSet validates the dead list and returns it as a lookup plus the
// survivor count.
func (pt *Partition) deadSet(dead []int) ([]bool, int, error) {
	p := pt.Parts()
	isDead := make([]bool, p)
	for _, j := range dead {
		if j < 0 || j >= p {
			return nil, 0, fmt.Errorf("partition: dead part %d out of range [0, %d)", j, p)
		}
		if isDead[j] {
			return nil, 0, fmt.Errorf("partition: dead part %d listed twice", j)
		}
		isDead[j] = true
	}
	return isDead, p - len(dead), nil
}

// DeadCells returns the number of cells the given parts own under pt.
func (pt *Partition) DeadCells(dead []int) uint64 {
	var s uint64
	for _, j := range dead {
		lo, hi := pt.Segment(j)
		s += hi - lo
	}
	return s
}

// MigrationSplit decomposes the owner changes between partition a and its
// post-failure successor b into cells leaving the dead parts (the
// unavoidable cost — their data must move somewhere) and cells traded
// between surviving parts (the rebalance slack). The total migration is
// always fromDead + fromAlive, so the chaos harness can assert
// migration ≤ dead-owned cells + slack with equality.
func MigrationSplit(a, b *Partition, dead []int) (fromDead, fromAlive uint64) {
	isDead := make([]bool, a.Parts())
	for _, j := range dead {
		if j >= 0 && j < len(isDead) {
			isDead[j] = true
		}
	}
	n := a.c.Universe().N()
	ai, bi := 0, 0
	pos := uint64(0)
	for pos < n {
		for a.cuts[ai+1] <= pos {
			ai++
		}
		for b.cuts[bi+1] <= pos {
			bi++
		}
		end := a.cuts[ai+1]
		if b.cuts[bi+1] < end {
			end = b.cuts[bi+1]
		}
		if ai != bi {
			if isDead[ai] {
				fromDead += end - pos
			} else {
				fromAlive += end - pos
			}
		}
		pos = end
	}
	return fromDead, fromAlive
}

// EmptyParts returns the parts owning no cells, ascending — after a
// failure, exactly the dead parts (plus any part that was already empty).
func (pt *Partition) EmptyParts() []int {
	var out []int
	for j := 0; j < pt.Parts(); j++ {
		lo, hi := pt.Segment(j)
		if lo == hi {
			out = append(out, j)
		}
	}
	sort.Ints(out)
	return out
}
