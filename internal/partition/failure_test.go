package partition

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/curve"
	"repro/internal/grid"
)

func failTestPartition(t *testing.T, parts int) *Partition {
	t.Helper()
	u := grid.MustNew(2, 4)
	pt, err := Uniform(curve.NewHilbert(u), parts)
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

// checkFailInvariants asserts the structural properties every FailParts
// result must satisfy: stable part count, contiguous non-decreasing cuts,
// empty dead segments, full coverage, and migration exactly equal to the
// cells the dead parts owned.
func checkFailInvariants(t *testing.T, pt, next *Partition, dead []int, mig Migration) {
	t.Helper()
	if next.Parts() != pt.Parts() {
		t.Fatalf("part count changed: %d -> %d", pt.Parts(), next.Parts())
	}
	n := pt.c.Universe().N()
	var owned uint64
	for j := 0; j < next.Parts(); j++ {
		lo, hi := next.Segment(j)
		if lo > hi {
			t.Fatalf("part %d has inverted segment [%d, %d)", j, lo, hi)
		}
		owned += hi - lo
	}
	if owned != n {
		t.Fatalf("segments cover %d of %d cells", owned, n)
	}
	for _, j := range dead {
		if lo, hi := next.Segment(j); lo != hi {
			t.Fatalf("dead part %d still owns [%d, %d)", j, lo, hi)
		}
	}
	if want := pt.DeadCells(dead); mig.MovedCells != want {
		t.Fatalf("migration = %d cells, dead parts owned %d", mig.MovedCells, want)
	}
	fromDead, fromAlive := MigrationSplit(pt, next, dead)
	if fromAlive != 0 {
		t.Fatalf("FailParts traded %d cells between survivors", fromAlive)
	}
	if fromDead != mig.MovedCells {
		t.Fatalf("split fromDead = %d, total migration = %d", fromDead, mig.MovedCells)
	}
}

func TestFailPartsMidpointSplit(t *testing.T) {
	pt := failTestPartition(t, 4) // 256 cells, 64 each
	next, mig, err := pt.FailParts([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	checkFailInvariants(t, pt, next, []int{1}, mig)
	// Part 1 owned [64, 128); neighbors 0 and 2 split it at 96.
	if lo, hi := next.Segment(0); lo != 0 || hi != 96 {
		t.Fatalf("part 0 = [%d, %d), want [0, 96)", lo, hi)
	}
	if lo, hi := next.Segment(2); lo != 96 || hi != 192 {
		t.Fatalf("part 2 = [%d, %d), want [96, 192)", lo, hi)
	}
	if got := next.EmptyParts(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("EmptyParts = %v, want [1]", got)
	}
}

func TestFailPartsEdgeRuns(t *testing.T) {
	pt := failTestPartition(t, 4)
	// Low edge: part 0 dies, part 1 absorbs its whole segment.
	next, mig, err := pt.FailParts([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	checkFailInvariants(t, pt, next, []int{0}, mig)
	if lo, hi := next.Segment(1); lo != 0 || hi != 128 {
		t.Fatalf("part 1 = [%d, %d), want [0, 128)", lo, hi)
	}
	// High edge: last part dies, its left neighbor absorbs.
	next, mig, err = pt.FailParts([]int{3})
	if err != nil {
		t.Fatal(err)
	}
	checkFailInvariants(t, pt, next, []int{3}, mig)
	if lo, hi := next.Segment(2); lo != 128 || hi != 256 {
		t.Fatalf("part 2 = [%d, %d), want [128, 256)", lo, hi)
	}
}

func TestFailPartsDeadRun(t *testing.T) {
	pt := failTestPartition(t, 5)
	// Parts 1-3 die together; 0 and 4 split the merged run at its midpoint.
	dead := []int{2, 1, 3} // order must not matter
	next, mig, err := pt.FailParts(dead)
	if err != nil {
		t.Fatal(err)
	}
	checkFailInvariants(t, pt, next, dead, mig)
	lo0, hi0 := next.Segment(0)
	lo4, hi4 := next.Segment(4)
	if hi0 != lo4 {
		t.Fatalf("survivors not adjacent: part 0 ends %d, part 4 starts %d", hi0, lo4)
	}
	if lo0 != 0 || hi4 != 256 {
		t.Fatalf("edges moved: [%d, %d)", lo0, hi4)
	}
	// Ownership spot checks via the public API.
	if next.OwnerOfPosition(hi0-1) != 0 || next.OwnerOfPosition(hi0) != 4 {
		t.Fatal("midpoint ownership wrong")
	}
}

func TestFailPartsErrors(t *testing.T) {
	pt := failTestPartition(t, 3)
	if _, _, err := pt.FailParts([]int{0, 1, 2}); err == nil {
		t.Fatal("all-dead accepted")
	}
	if _, _, err := pt.FailParts([]int{3}); err == nil {
		t.Fatal("out-of-range part accepted")
	}
	if _, _, err := pt.FailParts([]int{-1}); err == nil {
		t.Fatal("negative part accepted")
	}
	if _, _, err := pt.FailParts([]int{1, 1}); err == nil {
		t.Fatal("duplicate part accepted")
	}
	if _, _, err := pt.FailPartsWeighted([]int{0, 1, 2}, nil); err == nil {
		t.Fatal("weighted all-dead accepted")
	}
}

func TestFailPartsRepeated(t *testing.T) {
	// Cascading failures: kill parts one at a time and re-fail the result.
	pt := failTestPartition(t, 6)
	cur := pt
	for _, j := range []int{2, 4, 0} {
		// Previously-failed parts are already empty; only the new death is
		// passed, so DeadCells counts just its current segment.
		next, mig, err := cur.FailParts([]int{j})
		if err != nil {
			t.Fatal(err)
		}
		checkFailInvariants(t, cur, next, []int{j}, mig)
		cur = next
	}
	// 0, 2, 4 are empty; 1, 3, 5 cover the domain.
	if got := cur.EmptyParts(); !reflect.DeepEqual(got, []int{0, 2, 4}) {
		t.Fatalf("EmptyParts = %v, want [0 2 4]", got)
	}
}

func TestFailPartsWeighted(t *testing.T) {
	pt := failTestPartition(t, 4)
	// A hotspot weight concentrated in the first quarter of the curve.
	w := func(pos uint64) float64 {
		if pos < 64 {
			return 9
		}
		return 1
	}
	dead := []int{2}
	next, mig, err := pt.FailPartsWeighted(dead, w)
	if err != nil {
		t.Fatal(err)
	}
	if next.Parts() != pt.Parts() {
		t.Fatalf("part count changed: %d -> %d", pt.Parts(), next.Parts())
	}
	if lo, hi := next.Segment(2); lo != hi {
		t.Fatalf("dead part 2 still owns [%d, %d)", lo, hi)
	}
	// Migration decomposes as dead-owned cells plus survivor rebalance slack.
	fromDead, fromAlive := MigrationSplit(pt, next, dead)
	if fromDead != pt.DeadCells(dead) {
		t.Fatalf("fromDead = %d, dead parts owned %d", fromDead, pt.DeadCells(dead))
	}
	if mig.MovedCells != fromDead+fromAlive {
		t.Fatalf("migration %d != fromDead %d + fromAlive %d", mig.MovedCells, fromDead, fromAlive)
	}
	// The survivor loads are those of the 3-way weighted partition, so the
	// imbalance must match it.
	ref, err := Weighted(pt.c, 3, w)
	if err != nil {
		t.Fatal(err)
	}
	refLoads := ref.Loads(w)
	var gotLoads []float64
	for j := 0; j < next.Parts(); j++ {
		if lo, hi := next.Segment(j); lo != hi {
			gotLoads = append(gotLoads, next.Loads(w)[j])
		}
	}
	if !reflect.DeepEqual(gotLoads, refLoads) {
		t.Fatalf("survivor loads %v, want %v", gotLoads, refLoads)
	}
}

func TestFailPartsWeightedNilIsUniform(t *testing.T) {
	pt := failTestPartition(t, 5)
	dead := []int{1, 3}
	next, _, err := pt.FailPartsWeighted(dead, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Survivors split the domain evenly: 256 cells over 3 parts.
	var sizes []uint64
	for j := 0; j < next.Parts(); j++ {
		lo, hi := next.Segment(j)
		if hi > lo {
			sizes = append(sizes, hi-lo)
		}
	}
	if len(sizes) != 3 {
		t.Fatalf("%d nonempty survivors, want 3", len(sizes))
	}
	var total uint64
	for _, s := range sizes {
		if s < 85 || s > 86 {
			t.Fatalf("survivor sizes %v not near-uniform", sizes)
		}
		total += s
	}
	if total != 256 {
		t.Fatalf("survivors cover %d of 256 cells", total)
	}
}

// TestFailPartsSingleSurvivor: when every part but one dies — at once or as
// a cascade — the survivor absorbs the whole index space.
func TestFailPartsSingleSurvivor(t *testing.T) {
	const parts = 5
	for survivor := 0; survivor < parts; survivor++ {
		var dead []int
		for j := 0; j < parts; j++ {
			if j != survivor {
				dead = append(dead, j)
			}
		}

		// All at once.
		pt := failTestPartition(t, parts)
		next, mig, err := pt.FailParts(dead)
		if err != nil {
			t.Fatalf("survivor %d: %v", survivor, err)
		}
		checkFailInvariants(t, pt, next, dead, mig)
		n := pt.c.Universe().N()
		if lo, hi := next.Segment(survivor); lo != 0 || hi != n {
			t.Fatalf("survivor %d owns [%d, %d), want [0, %d)", survivor, lo, hi, n)
		}

		// As a cascade, accumulating the dead set at every step — passing
		// only the newest death would let FailParts hand ownership to an
		// earlier casualty it believes alive.
		cur := failTestPartition(t, parts)
		var deadSoFar []int
		for _, j := range dead {
			deadSoFar = append(deadSoFar, j)
			cur, _, err = cur.FailParts(deadSoFar)
			if err != nil {
				t.Fatalf("survivor %d: cascading kill of %d: %v", survivor, j, err)
			}
		}
		if lo, hi := cur.Segment(survivor); lo != 0 || hi != n {
			t.Fatalf("cascade survivor %d owns [%d, %d), want [0, %d)", survivor, lo, hi, n)
		}
	}
}

// TestFailPartsAdjacentCascadeNeedsCumulativeDeadSet: the regression behind
// the cluster view's ownership ledger. After part 1 dies, killing its
// neighbor with only the new death listed hands part 2's range to part 1 —
// FailParts believes every unlisted part is alive. With the cumulative dead
// set, both stay empty and the live neighbors absorb everything.
func TestFailPartsAdjacentCascadeNeedsCumulativeDeadSet(t *testing.T) {
	pt := failTestPartition(t, 4)
	afterOne, _, err := pt.FailParts([]int{1})
	if err != nil {
		t.Fatal(err)
	}

	// The buggy shape: only the newest death listed.
	buggy, _, err := afterOne.FailParts([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	if lo, hi := buggy.Segment(1); lo == hi {
		t.Fatal("expected the single-death call to (wrongly) hand range to dead part 1 — the cumulative-set fix exists because of this")
	}

	// The correct shape: cumulative dead set.
	next, mig, err := afterOne.FailParts([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	checkFailInvariants(t, afterOne, next, []int{1, 2}, mig)
	for _, j := range []int{1, 2} {
		if lo, hi := next.Segment(j); lo != hi {
			t.Fatalf("dead part %d still owns [%d, %d)", j, lo, hi)
		}
	}
}

// TestFailPartsCascadeFuzz: seeded random kill orders over random part
// counts, applying FailParts incrementally with the cumulative dead set and
// asserting the exact-tiling invariants after every step: cuts
// non-decreasing, segments exactly tile [0, n), dead parts own nothing, and
// migration equals exactly the cells the newly dead part owned.
func TestFailPartsCascadeFuzz(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		parts := 2 + rng.Intn(7)
		cur := failTestPartition(t, parts)
		n := cur.c.Universe().N()
		order := rng.Perm(parts)
		kills := 1 + rng.Intn(parts-1) // leave at least one survivor
		var dead []int
		for _, j := range order[:kills] {
			ownedBefore := cur.DeadCells([]int{j})
			dead = append(dead, j)
			next, mig, err := cur.FailParts(dead)
			if err != nil {
				t.Fatalf("seed %d: killing %d (dead %v): %v", seed, j, dead, err)
			}
			if mig.MovedCells != ownedBefore {
				t.Fatalf("seed %d: killing %d moved %d cells, it owned %d", seed, j, mig.MovedCells, ownedBefore)
			}
			prev := uint64(0)
			isDead := make(map[int]bool, len(dead))
			for _, d := range dead {
				isDead[d] = true
			}
			for p := 0; p < next.Parts(); p++ {
				lo, hi := next.Segment(p)
				if lo != prev {
					t.Fatalf("seed %d: part %d starts at %d, want %d — gap or overlap", seed, p, lo, prev)
				}
				if hi < lo {
					t.Fatalf("seed %d: part %d inverted [%d, %d)", seed, p, lo, hi)
				}
				if isDead[p] && hi != lo {
					t.Fatalf("seed %d: dead part %d still owns [%d, %d)", seed, p, lo, hi)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("seed %d: segments end at %d, want %d", seed, prev, n)
			}
			cur = next
		}
	}
}
