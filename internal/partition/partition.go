// Package partition implements space-filling-curve domain decomposition —
// the parallel-computing application that motivates the paper (§I cites
// Aluru & Sevilgen, Pilkington & Baden, Parashar & Browne). The universe's
// cells are ordered along an SFC and cut into p contiguous segments, one per
// processor. The quality of the decomposition is measured by
//
//   - load imbalance: max part weight / mean part weight, and
//   - edge cut: the number of nearest-neighbor cell pairs whose endpoints
//     land in different parts — the communication volume of a stencil or
//     short-range interaction computation.
//
// Proximity preservation is what keeps the edge cut low: a curve with small
// NN-stretch keeps neighboring cells in the same or nearby segments.
package partition

import (
	"fmt"
	"sort"

	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/parallel"
)

// Weight assigns a nonnegative computational weight to the cell at a curve
// position. Positions are curve indices, i.e. weight(i) is the weight of
// the cell π⁻¹(i).
type Weight func(pos uint64) float64

// UnitWeight weighs every cell equally.
func UnitWeight(uint64) float64 { return 1 }

// Partition is a decomposition of a curve's index space [0, n) into p
// contiguous segments. Segment j owns positions [cuts[j], cuts[j+1]).
type Partition struct {
	c    curve.Curve
	cuts []uint64 // len p+1; cuts[0] = 0, cuts[p] = n, non-decreasing
}

// Uniform splits the curve into p segments of (near-)equal cell counts.
func Uniform(c curve.Curve, parts int) (*Partition, error) {
	if parts < 1 {
		return nil, fmt.Errorf("partition: parts = %d", parts)
	}
	n := c.Universe().N()
	cuts := make([]uint64, parts+1)
	for j := 0; j <= parts; j++ {
		cuts[j] = n * uint64(j) / uint64(parts)
	}
	return &Partition{c: c, cuts: cuts}, nil
}

// Weighted splits the curve into p contiguous segments balancing the given
// weight: cut j is placed at the smallest position whose weight prefix sum
// reaches j/p of the total (the standard SFC "chains-on-chains" heuristic).
// Weights must be nonnegative; a zero total degenerates to Uniform.
func Weighted(c curve.Curve, parts int, w Weight) (*Partition, error) {
	if parts < 1 {
		return nil, fmt.Errorf("partition: parts = %d", parts)
	}
	if w == nil {
		return Uniform(c, parts)
	}
	n := c.Universe().N()
	var total float64
	for pos := uint64(0); pos < n; pos++ {
		wt := w(pos)
		if wt < 0 {
			return nil, fmt.Errorf("partition: negative weight %v at position %d", wt, pos)
		}
		total += wt
	}
	if total == 0 {
		return Uniform(c, parts)
	}
	cuts := make([]uint64, parts+1)
	cuts[parts] = n
	var prefix float64
	next := 1
	for pos := uint64(0); pos < n && next < parts; pos++ {
		prefix += w(pos)
		for next < parts && prefix >= total*float64(next)/float64(parts) {
			cuts[next] = pos + 1
			next++
		}
	}
	for ; next < parts; next++ {
		cuts[next] = n
	}
	return &Partition{c: c, cuts: cuts}, nil
}

// Curve returns the curve the partition is defined over.
func (pt *Partition) Curve() curve.Curve { return pt.c }

// Parts returns the number of segments.
func (pt *Partition) Parts() int { return len(pt.cuts) - 1 }

// Segment returns the half-open curve-position range [lo, hi) of part j.
func (pt *Partition) Segment(j int) (lo, hi uint64) { return pt.cuts[j], pt.cuts[j+1] }

// OwnerOfPosition returns the part owning curve position pos.
func (pt *Partition) OwnerOfPosition(pos uint64) int {
	// sort.Search finds the first cut strictly greater than pos; the owner
	// is the preceding segment.
	j := sort.Search(len(pt.cuts)-1, func(j int) bool { return pt.cuts[j+1] > pos })
	return j
}

// Owner returns the part owning cell p.
func (pt *Partition) Owner(p grid.Point) int {
	return pt.OwnerOfPosition(pt.c.Index(p))
}

// Loads returns the per-part total weight.
func (pt *Partition) Loads(w Weight) []float64 {
	if w == nil {
		w = UnitWeight
	}
	loads := make([]float64, pt.Parts())
	for j := 0; j < pt.Parts(); j++ {
		lo, hi := pt.Segment(j)
		var s float64
		for pos := lo; pos < hi; pos++ {
			s += w(pos)
		}
		loads[j] = s
	}
	return loads
}

// Imbalance returns max(loads)/mean(loads); 1.0 is perfect balance. An
// all-zero load vector yields 0.
func Imbalance(loads []float64) float64 {
	if len(loads) == 0 {
		return 0
	}
	var sum, max float64
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum == 0 {
		return 0
	}
	return max / (sum / float64(len(loads)))
}

// EdgeCut returns the number of unordered nearest-neighbor cell pairs whose
// endpoints belong to different parts, computed in parallel.
func (pt *Partition) EdgeCut(workers int) uint64 {
	u := pt.c.Universe()
	side := u.Side()
	d := u.D()
	return parallel.SumUint64Chunked(u.N(), workers, func(lo, hi uint64) uint64 {
		p := u.NewPoint()
		q := u.NewPoint()
		var cut uint64
		for lin := lo; lin < hi; lin++ {
			u.FromLinear(lin, p)
			ownerP := pt.Owner(p)
			copy(q, p)
			for dim := 0; dim < d; dim++ {
				if p[dim]+1 < side {
					q[dim] = p[dim] + 1
					if pt.Owner(q) != ownerP {
						cut++
					}
					q[dim] = p[dim]
				}
			}
		}
		return cut
	})
}

// BoundaryCells returns, per part, the number of owned cells having at
// least one neighbor in a different part — each part's communication
// surface.
func (pt *Partition) BoundaryCells(workers int) []uint64 {
	u := pt.c.Universe()
	parts := pt.Parts()
	partial := parallel.MapRanges(u.N(), workers, func(lo, hi uint64) []uint64 {
		p := u.NewPoint()
		counts := make([]uint64, parts)
		for lin := lo; lin < hi; lin++ {
			u.FromLinear(lin, p)
			owner := pt.Owner(p)
			boundary := false
			u.Neighbors(p, func(_ int, q grid.Point) {
				if !boundary && pt.Owner(q) != owner {
					boundary = true
				}
			})
			if boundary {
				counts[owner]++
			}
		}
		return counts
	})
	total := make([]uint64, parts)
	for _, counts := range partial {
		for j, v := range counts {
			total[j] += v
		}
	}
	return total
}

// Quality bundles the decomposition metrics reported by the experiment
// harness.
type Quality struct {
	Parts      int
	Imbalance  float64
	EdgeCut    uint64
	MaxSurface uint64 // largest per-part boundary-cell count
}

// Evaluate computes the quality metrics of the partition under the given
// weight (nil for unit weights).
func (pt *Partition) Evaluate(w Weight, workers int) Quality {
	loads := pt.Loads(w)
	surf := pt.BoundaryCells(workers)
	var maxSurf uint64
	for _, s := range surf {
		if s > maxSurf {
			maxSurf = s
		}
	}
	return Quality{
		Parts:      pt.Parts(),
		Imbalance:  Imbalance(loads),
		EdgeCut:    pt.EdgeCut(workers),
		MaxSurface: maxSurf,
	}
}
