package partition_test

import (
	"fmt"

	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/partition"
)

func ExampleUniform() {
	u := grid.MustNew(2, 3) // 8×8 cells
	h := curve.NewHilbert(u)
	pt, err := partition.Uniform(h, 4)
	if err != nil {
		panic(err)
	}
	q := pt.Evaluate(nil, 1)
	fmt.Println(q.Parts, q.Imbalance, q.EdgeCut)
	// Output: 4 1 16
}

func ExamplePartition_Rebalance() {
	u := grid.MustNew(1, 4) // a 16-cell line
	s := curve.NewSimple(u)
	pt, err := partition.Weighted(s, 2, partition.UnitWeight)
	if err != nil {
		panic(err)
	}
	// The load doubles on the right half: the cut slides, moving few cells.
	w := func(pos uint64) float64 {
		if pos >= 8 {
			return 2
		}
		return 1
	}
	_, mig, err := pt.Rebalance(w)
	if err != nil {
		panic(err)
	}
	fmt.Println(mig.MovedCells)
	// Output: 2
}
