package partition

import (
	"fmt"
)

// Migration summarizes the cost of moving from one partition to another of
// the same curve: how many cells change owner. The selling point of SFC
// decomposition — emphasized by the paper's motivating citations
// (Pilkington & Baden; Parashar & Browne) — is that when the workload
// drifts, rebalancing only slides segment boundaries, so the migration
// volume is proportional to the load change rather than to the domain
// size.
type Migration struct {
	MovedCells uint64  // cells whose owner changed
	MovedFrac  float64 // MovedCells / n
}

// Rebalance computes a new weighted partition with the same part count and
// the migration cost relative to pt. It errors if w is nil (rebalancing
// needs a load signal).
func (pt *Partition) Rebalance(w Weight) (*Partition, Migration, error) {
	if w == nil {
		return nil, Migration{}, fmt.Errorf("partition: Rebalance requires a weight function")
	}
	next, err := Weighted(pt.c, pt.Parts(), w)
	if err != nil {
		return nil, Migration{}, err
	}
	mig := MigrationBetween(pt, next)
	return next, mig, nil
}

// MigrationBetween counts the cells whose owner differs between two
// partitions over the same curve and part count. Because both partitions
// are contiguous in curve order, the count is a sum of cut displacements,
// computed in O(parts) without touching cells.
func MigrationBetween(a, b *Partition) Migration {
	n := a.c.Universe().N()
	var moved uint64
	// Walk both cut sequences; on each segment of curve positions where the
	// owner differs, add its length. Owners are step functions with at most
	// parts-1 steps each, so merge the breakpoints.
	ai, bi := 0, 0
	pos := uint64(0)
	for pos < n {
		// Advance owners to cover pos.
		for a.cuts[ai+1] <= pos {
			ai++
		}
		for b.cuts[bi+1] <= pos {
			bi++
		}
		// Next breakpoint.
		end := a.cuts[ai+1]
		if b.cuts[bi+1] < end {
			end = b.cuts[bi+1]
		}
		if ai != bi {
			moved += end - pos
		}
		pos = end
	}
	return Migration{MovedCells: moved, MovedFrac: float64(moved) / float64(n)}
}
