package partition

import (
	"math"
	"testing"

	"repro/internal/curve"
	"repro/internal/grid"
)

func TestUniformCoversIndexSpace(t *testing.T) {
	u := grid.MustNew(2, 4)
	z := curve.NewZ(u)
	for _, parts := range []int{1, 2, 3, 7, 16, 300} {
		pt, err := Uniform(z, parts)
		if err != nil {
			t.Fatal(err)
		}
		if pt.Parts() != parts {
			t.Fatalf("Parts() = %d", pt.Parts())
		}
		var covered uint64
		prevHi := uint64(0)
		for j := 0; j < parts; j++ {
			lo, hi := pt.Segment(j)
			if lo != prevHi {
				t.Fatalf("segment %d starts at %d, want %d", j, lo, prevHi)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != u.N() || prevHi != u.N() {
			t.Fatalf("parts=%d: covered %d of %d", parts, covered, u.N())
		}
	}
	if _, err := Uniform(z, 0); err == nil {
		t.Fatal("parts=0 accepted")
	}
}

func TestOwnerConsistency(t *testing.T) {
	u := grid.MustNew(2, 3)
	h := curve.NewHilbert(u)
	pt, err := Uniform(h, 5)
	if err != nil {
		t.Fatal(err)
	}
	u.Cells(func(_ uint64, p grid.Point) bool {
		owner := pt.Owner(p)
		pos := h.Index(p)
		lo, hi := pt.Segment(owner)
		if pos < lo || pos >= hi {
			t.Fatalf("cell %v at pos %d assigned to part %d [%d,%d)", p, pos, owner, lo, hi)
		}
		if pt.OwnerOfPosition(pos) != owner {
			t.Fatalf("OwnerOfPosition disagrees with Owner at %v", p)
		}
		return true
	})
}

func TestWeightedBalancesSkewedLoad(t *testing.T) {
	// All the weight sits in the first half of the curve; a weighted
	// partition must cut there, a uniform one must not.
	u := grid.MustNew(2, 4)
	z := curve.NewZ(u)
	n := u.N()
	w := func(pos uint64) float64 {
		if pos < n/2 {
			return 1
		}
		return 0
	}
	weighted, err := Weighted(z, 4, w)
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := Uniform(z, 4)
	if err != nil {
		t.Fatal(err)
	}
	ib := Imbalance(weighted.Loads(w))
	if ib > 1.05 {
		t.Fatalf("weighted imbalance %v", ib)
	}
	if ibU := Imbalance(uniform.Loads(w)); ibU < 1.9 {
		t.Fatalf("uniform imbalance on skewed load = %v, expected ~2", ibU)
	}
}

func TestWeightedEdgeCases(t *testing.T) {
	u := grid.MustNew(2, 2)
	z := curve.NewZ(u)
	// nil weight degrades to Uniform.
	pt, err := Weighted(z, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	un, _ := Uniform(z, 3)
	for j := 0; j < 3; j++ {
		lo1, hi1 := pt.Segment(j)
		lo2, hi2 := un.Segment(j)
		if lo1 != lo2 || hi1 != hi2 {
			t.Fatal("nil-weight partition differs from uniform")
		}
	}
	// Zero weights degrade to Uniform.
	pt, err = Weighted(z, 3, func(uint64) float64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if lo, hi := pt.Segment(1); lo == 0 && hi == 0 {
		t.Fatal("zero-weight partition degenerate")
	}
	// Negative weights rejected.
	if _, err := Weighted(z, 2, func(pos uint64) float64 { return -1 }); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := Weighted(z, 0, nil); err == nil {
		t.Fatal("parts=0 accepted")
	}
}

func TestLoadsAndImbalance(t *testing.T) {
	u := grid.MustNew(1, 3) // 8 cells on a line
	s := curve.NewSimple(u)
	pt, err := Uniform(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	loads := pt.Loads(nil)
	if len(loads) != 2 || loads[0] != 4 || loads[1] != 4 {
		t.Fatalf("loads = %v", loads)
	}
	if ib := Imbalance(loads); math.Abs(ib-1) > 1e-12 {
		t.Fatalf("imbalance = %v", ib)
	}
	if Imbalance(nil) != 0 || Imbalance([]float64{0, 0}) != 0 {
		t.Fatal("degenerate imbalance wrong")
	}
	if ib := Imbalance([]float64{3, 1}); math.Abs(ib-1.5) > 1e-12 {
		t.Fatalf("imbalance(3,1) = %v", ib)
	}
}

func TestEdgeCutLineGraph(t *testing.T) {
	// On a 1-d universe with the identity curve, p parts cut exactly p−1
	// edges.
	u := grid.MustNew(1, 5)
	s := curve.NewSimple(u)
	for _, parts := range []int{1, 2, 4, 8} {
		pt, err := Uniform(s, parts)
		if err != nil {
			t.Fatal(err)
		}
		if cut := pt.EdgeCut(2); cut != uint64(parts-1) {
			t.Fatalf("parts=%d: edge cut %d, want %d", parts, cut, parts-1)
		}
	}
}

func TestEdgeCutHalves2D(t *testing.T) {
	// Splitting the 8×8 simple curve into 2 parts cuts exactly one row
	// boundary: 8 edges.
	u := grid.MustNew(2, 3)
	s := curve.NewSimple(u)
	pt, err := Uniform(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cut := pt.EdgeCut(1); cut != 8 {
		t.Fatalf("edge cut %d, want 8", cut)
	}
}

func TestEdgeCutWorkerInvariance(t *testing.T) {
	u := grid.MustNew(2, 4)
	h := curve.NewHilbert(u)
	pt, err := Uniform(h, 7)
	if err != nil {
		t.Fatal(err)
	}
	ref := pt.EdgeCut(1)
	for _, w := range []int{2, 4, 9} {
		if got := pt.EdgeCut(w); got != ref {
			t.Fatalf("workers=%d: cut %d != %d", w, got, ref)
		}
	}
}

func TestBoundaryCells(t *testing.T) {
	// 8×8 simple curve in 2 parts: the two rows adjacent to the cut are the
	// only boundary cells — 8 per part.
	u := grid.MustNew(2, 3)
	s := curve.NewSimple(u)
	pt, err := Uniform(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	surf := pt.BoundaryCells(3)
	if len(surf) != 2 || surf[0] != 8 || surf[1] != 8 {
		t.Fatalf("boundary cells = %v", surf)
	}
}

func TestSFCPartitionBeatsRandomOnEdgeCut(t *testing.T) {
	// The motivating claim: proximity-preserving curves yield a small edge
	// cut; a random bijection destroys locality entirely.
	u := grid.MustNew(2, 4)
	rnd, err := curve.NewRandom(u, 5)
	if err != nil {
		t.Fatal(err)
	}
	hil := curve.NewHilbert(u)
	ptR, _ := Uniform(rnd, 8)
	ptH, _ := Uniform(hil, 8)
	cutR := ptR.EdgeCut(2)
	cutH := ptH.EdgeCut(2)
	if cutH*4 > cutR {
		t.Fatalf("hilbert cut %d not ≪ random cut %d", cutH, cutR)
	}
}

func TestEvaluate(t *testing.T) {
	u := grid.MustNew(2, 3)
	z := curve.NewZ(u)
	pt, err := Uniform(z, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := pt.Evaluate(nil, 2)
	if q.Parts != 4 {
		t.Fatalf("parts %d", q.Parts)
	}
	if math.Abs(q.Imbalance-1) > 1e-12 {
		t.Fatalf("imbalance %v", q.Imbalance)
	}
	if q.EdgeCut == 0 || q.MaxSurface == 0 {
		t.Fatalf("degenerate quality %+v", q)
	}
	if q.EdgeCut != pt.EdgeCut(1) {
		t.Fatal("Evaluate EdgeCut mismatch")
	}
}
