package partition

import (
	"testing"

	"repro/internal/curve"
	"repro/internal/grid"
)

func TestRebalanceRequiresWeight(t *testing.T) {
	u := grid.MustNew(2, 3)
	pt, err := Uniform(curve.NewZ(u), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pt.Rebalance(nil); err == nil {
		t.Fatal("nil weight accepted")
	}
}

func TestRebalanceIdenticalLoadMovesNothing(t *testing.T) {
	u := grid.MustNew(2, 4)
	pt, err := Weighted(curve.NewHilbert(u), 8, UnitWeight)
	if err != nil {
		t.Fatal(err)
	}
	next, mig, err := pt.Rebalance(UnitWeight)
	if err != nil {
		t.Fatal(err)
	}
	if mig.MovedCells != 0 || mig.MovedFrac != 0 {
		t.Fatalf("uniform→uniform moved %d cells", mig.MovedCells)
	}
	if next.Parts() != pt.Parts() {
		t.Fatal("part count changed")
	}
}

func TestRebalanceMigrationMatchesBruteCount(t *testing.T) {
	u := grid.MustNew(2, 4)
	h := curve.NewHilbert(u)
	pt, err := Uniform(h, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Skewed load: left half of the curve twice as heavy.
	w := func(pos uint64) float64 {
		if pos < u.N()/2 {
			return 2
		}
		return 1
	}
	next, mig, err := pt.Rebalance(w)
	if err != nil {
		t.Fatal(err)
	}
	// Brute-force the moved-cell count.
	var moved uint64
	for pos := uint64(0); pos < u.N(); pos++ {
		if pt.OwnerOfPosition(pos) != next.OwnerOfPosition(pos) {
			moved++
		}
	}
	if mig.MovedCells != moved {
		t.Fatalf("migration %d, brute %d", mig.MovedCells, moved)
	}
	if moved == 0 {
		t.Fatal("skewed load moved nothing")
	}
	// Rebalancing must actually balance the new load.
	if ib := Imbalance(next.Loads(w)); ib > 1.05 {
		t.Fatalf("rebalanced imbalance %v", ib)
	}
	// And the migration is incremental: far less than the whole domain.
	if mig.MovedFrac > 0.5 {
		t.Fatalf("moved fraction %v too large for a boundary shift", mig.MovedFrac)
	}
}

func TestMigrationBetweenDisjointExtremes(t *testing.T) {
	// Two 2-part partitions with cuts at opposite extremes: the middle
	// segment disagrees.
	u := grid.MustNew(1, 4) // 16 cells
	s := curve.NewSimple(u)
	a := &Partition{c: s, cuts: []uint64{0, 4, 16}}
	b := &Partition{c: s, cuts: []uint64{0, 12, 16}}
	mig := MigrationBetween(a, b)
	if mig.MovedCells != 8 { // positions 4..11 change owner 1→0
		t.Fatalf("moved %d, want 8", mig.MovedCells)
	}
}

func TestRebalanceDriftScenario(t *testing.T) {
	// A hotspot drifting across the domain: successive rebalances each move
	// a bounded fraction of cells while keeping balance.
	u := grid.MustNew(2, 5)
	z := curve.NewZ(u)
	makeWeight := func(center uint64) Weight {
		return func(pos uint64) float64 {
			d := int64(pos) - int64(center)
			if d < 0 {
				d = -d
			}
			if uint64(d) < u.N()/8 {
				return 4
			}
			return 1
		}
	}
	pt, err := Weighted(z, 8, makeWeight(0))
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= 4; step++ {
		w := makeWeight(uint64(step) * u.N() / 5)
		next, mig, err := pt.Rebalance(w)
		if err != nil {
			t.Fatal(err)
		}
		if ib := Imbalance(next.Loads(w)); ib > 1.1 {
			t.Fatalf("step %d: imbalance %v", step, ib)
		}
		if mig.MovedFrac > 0.6 {
			t.Fatalf("step %d: moved %v of the domain", step, mig.MovedFrac)
		}
		pt = next
	}
}
