// Package svgplot is a minimal, dependency-free SVG writer used to render
// the reproduction's graphics: curve path drawings (the pictorial halves of
// the paper's Figures 1, 3 and 4) and convergence charts for the theorem
// sweeps. It emits plain SVG 1.1 and knows just enough about plotting
// (linear axes, polylines, labels) for those two jobs.
package svgplot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Canvas accumulates SVG elements.
type Canvas struct {
	W, H  float64
	elems []string
}

// NewCanvas creates a canvas of the given pixel size.
func NewCanvas(w, h float64) *Canvas { return &Canvas{W: w, H: h} }

// Line draws a straight segment.
func (c *Canvas) Line(x1, y1, x2, y2 float64, stroke string, width float64) {
	c.elems = append(c.elems, fmt.Sprintf(
		`<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="%.2f"/>`,
		x1, y1, x2, y2, stroke, width))
}

// Circle draws a dot.
func (c *Canvas) Circle(x, y, r float64, fill string) {
	c.elems = append(c.elems, fmt.Sprintf(
		`<circle cx="%.2f" cy="%.2f" r="%.2f" fill="%s"/>`, x, y, r, fill))
}

// Polyline draws a connected path through the points (flat x,y pairs).
func (c *Canvas) Polyline(pts []float64, stroke string, width float64) {
	if len(pts) < 4 {
		return
	}
	var b strings.Builder
	for i := 0; i+1 < len(pts); i += 2 {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.2f,%.2f", pts[i], pts[i+1])
	}
	c.elems = append(c.elems, fmt.Sprintf(
		`<polyline points="%s" fill="none" stroke="%s" stroke-width="%.2f"/>`,
		b.String(), stroke, width))
}

// Text places a label (anchor: start, middle or end).
func (c *Canvas) Text(x, y float64, s, anchor string, size float64) {
	c.elems = append(c.elems, fmt.Sprintf(
		`<text x="%.2f" y="%.2f" font-family="sans-serif" font-size="%.1f" text-anchor="%s">%s</text>`,
		x, y, size, anchor, escape(s)))
}

// Rect draws a rectangle outline.
func (c *Canvas) Rect(x, y, w, h float64, stroke string, width float64) {
	c.elems = append(c.elems, fmt.Sprintf(
		`<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="none" stroke="%s" stroke-width="%.2f"/>`,
		x, y, w, h, stroke, width))
}

// String renders the complete SVG document.
func (c *Canvas) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		c.W, c.H, c.W, c.H)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	for _, e := range c.elems {
		b.WriteString(e)
		b.WriteByte('\n')
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// Series is one plotted line.
type Series struct {
	Name  string
	X, Y  []float64
	Color string
}

// LinePlot renders series against linear axes with ticks and a legend.
// Y may optionally be displayed on a log10 axis.
type LinePlot struct {
	Title  string
	XLabel string
	YLabel string
	LogY   bool
	Series []Series
}

// Palette is the default series color cycle.
var Palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// Render draws the plot on a fresh canvas of the given size.
func (p *LinePlot) Render(w, h float64) (*Canvas, error) {
	if len(p.Series) == 0 {
		return nil, fmt.Errorf("svgplot: no series")
	}
	const marginL, marginR, marginT, marginB = 64, 16, 36, 48
	plotW := w - marginL - marginR
	plotH := h - marginT - marginB
	if plotW < 50 || plotH < 50 {
		return nil, fmt.Errorf("svgplot: canvas too small")
	}
	// Data ranges.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for si, s := range p.Series {
		if len(s.X) != len(s.Y) || len(s.X) == 0 {
			return nil, fmt.Errorf("svgplot: series %d has %d x for %d y", si, len(s.X), len(s.Y))
		}
		for i := range s.X {
			y := s.Y[i]
			if p.LogY {
				if y <= 0 {
					return nil, fmt.Errorf("svgplot: log axis with y = %v", y)
				}
				y = math.Log10(y)
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	sx := func(x float64) float64 { return marginL + (x-minX)/(maxX-minX)*plotW }
	sy := func(y float64) float64 {
		if p.LogY {
			y = math.Log10(y)
		}
		return marginT + plotH - (y-minY)/(maxY-minY)*plotH
	}
	c := NewCanvas(w, h)
	// Frame + title + labels.
	c.Rect(marginL, marginT, plotW, plotH, "#444444", 1)
	c.Text(w/2, 20, p.Title, "middle", 13)
	c.Text(w/2, h-10, p.XLabel, "middle", 11)
	c.Text(14, marginT-10, p.YLabel, "start", 11)
	// Ticks: 5 per axis at round-ish positions.
	for i := 0; i <= 4; i++ {
		xv := minX + (maxX-minX)*float64(i)/4
		px := sx(xv)
		c.Line(px, marginT+plotH, px, marginT+plotH+4, "#444444", 1)
		c.Text(px, marginT+plotH+16, trimFloat(xv), "middle", 10)

		yv := minY + (maxY-minY)*float64(i)/4
		display := yv
		if p.LogY {
			display = math.Pow(10, yv)
		}
		py := marginT + plotH - plotH*float64(i)/4
		c.Line(marginL-4, py, marginL, py, "#444444", 1)
		c.Text(marginL-6, py+3, trimFloat(display), "end", 10)
	}
	// Series.
	for si, s := range p.Series {
		color := s.Color
		if color == "" {
			color = Palette[si%len(Palette)]
		}
		order := make([]int, len(s.X))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return s.X[order[a]] < s.X[order[b]] })
		pts := make([]float64, 0, 2*len(order))
		for _, i := range order {
			pts = append(pts, sx(s.X[i]), sy(s.Y[i]))
		}
		c.Polyline(pts, color, 1.6)
		for i := 0; i+1 < len(pts); i += 2 {
			c.Circle(pts[i], pts[i+1], 2.2, color)
		}
		// Legend entry.
		ly := marginT + 14 + float64(si)*14
		c.Line(marginL+8, ly-4, marginL+26, ly-4, color, 2)
		c.Text(marginL+30, ly, s.Name, "start", 10)
	}
	return c, nil
}

// trimFloat formats tick labels compactly.
func trimFloat(v float64) string {
	if v != 0 && (math.Abs(v) >= 1e5 || math.Abs(v) < 1e-3) {
		return fmt.Sprintf("%.1e", v)
	}
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
