package svgplot

import (
	"fmt"

	"repro/internal/curve"
	"repro/internal/grid"
)

// CurvePath renders a two-dimensional curve's visiting order as an SVG
// drawing in the style of the paper's figures: cells as a light grid,
// the curve as a polyline through cell centers, the start marked. Works
// for any registered curve; self-intersections and jumps (Z, Gray, bitrev,
// random) are plainly visible.
func CurvePath(c curve.Curve, pixels float64) (*Canvas, error) {
	u := c.Universe()
	if u.D() != 2 {
		return nil, fmt.Errorf("svgplot: curve drawing needs d=2, got d=%d", u.D())
	}
	if u.K() > 7 {
		return nil, fmt.Errorf("svgplot: side 2^%d too dense to draw", u.K())
	}
	side := float64(u.Side())
	const margin = 24
	cell := (pixels - 2*margin) / side
	cv := NewCanvas(pixels, pixels+20)
	// x2 grows upward, like the paper's figures.
	px := func(p grid.Point) (float64, float64) {
		x := margin + (float64(p[0])+0.5)*cell
		y := margin + (side-float64(p[1])-0.5)*cell
		return x, y
	}
	// Light cell grid.
	for i := 0; i <= int(side); i++ {
		v := margin + float64(i)*cell
		cv.Line(margin, v, margin+side*cell, v, "#dddddd", 0.6)
		cv.Line(v, margin, v, margin+side*cell, "#dddddd", 0.6)
	}
	// The visiting path.
	p := u.NewPoint()
	pts := make([]float64, 0, 2*u.N())
	for idx := uint64(0); idx < u.N(); idx++ {
		c.Point(idx, p)
		x, y := px(p)
		pts = append(pts, x, y)
	}
	cv.Polyline(pts, "#1f77b4", 1.4)
	cv.Circle(pts[0], pts[1], 3.2, "#d62728") // start
	cv.Text(pixels/2, pixels+8, fmt.Sprintf("%s on %v", c.Name(), u), "middle", 11)
	return cv, nil
}
