package svgplot

import (
	"strings"
	"testing"

	"repro/internal/curve"
	"repro/internal/grid"
)

func TestCanvasElements(t *testing.T) {
	c := NewCanvas(100, 80)
	c.Line(0, 0, 10, 10, "#000", 1)
	c.Circle(5, 5, 2, "#f00")
	c.Polyline([]float64{0, 0, 1, 1, 2, 0}, "#00f", 1)
	c.Polyline([]float64{0, 0}, "#00f", 1) // too short: ignored
	c.Text(50, 40, "a<b&c>d", "middle", 10)
	c.Rect(1, 1, 98, 78, "#333", 1)
	svg := c.String()
	for _, want := range []string{
		"<svg", "</svg>", "<line", "<circle", "<polyline", "<rect",
		"a&lt;b&amp;c&gt;d", `viewBox="0 0 100 80"`,
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	if strings.Count(svg, "<polyline") != 1 {
		t.Error("short polyline was not dropped")
	}
}

func TestLinePlotRender(t *testing.T) {
	p := LinePlot{
		Title:  "t",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{3, 1, 2}, Y: []float64{1.5, 1.2, 1.8}},
			{Name: "b", X: []float64{1, 2, 3}, Y: []float64{2, 2, 2}},
		},
	}
	c, err := p.Render(400, 300)
	if err != nil {
		t.Fatal(err)
	}
	svg := c.String()
	if !strings.Contains(svg, ">a</text>") || !strings.Contains(svg, ">b</text>") {
		t.Error("legend entries missing")
	}
	if strings.Count(svg, "<polyline") != 2 {
		t.Errorf("expected 2 polylines, got %d", strings.Count(svg, "<polyline"))
	}
}

func TestLinePlotValidation(t *testing.T) {
	if _, err := (&LinePlot{}).Render(400, 300); err == nil {
		t.Fatal("empty plot accepted")
	}
	bad := LinePlot{Series: []Series{{X: []float64{1}, Y: []float64{1, 2}}}}
	if _, err := bad.Render(400, 300); err == nil {
		t.Fatal("mismatched series accepted")
	}
	tiny := LinePlot{Series: []Series{{X: []float64{1}, Y: []float64{1}}}}
	if _, err := tiny.Render(60, 60); err == nil {
		t.Fatal("tiny canvas accepted")
	}
	logbad := LinePlot{LogY: true, Series: []Series{{X: []float64{1}, Y: []float64{0}}}}
	if _, err := logbad.Render(400, 300); err == nil {
		t.Fatal("log axis with zero accepted")
	}
}

func TestLinePlotLogAxis(t *testing.T) {
	p := LinePlot{
		LogY: true,
		Series: []Series{
			{Name: "pow", X: []float64{1, 2, 3}, Y: []float64{10, 100, 1000}},
		},
	}
	if _, err := p.Render(400, 300); err != nil {
		t.Fatal(err)
	}
}

func TestCurvePath(t *testing.T) {
	u := grid.MustNew(2, 3)
	for _, name := range []string{"hilbert", "z", "snake"} {
		c, err := curve.ByName(name, u, 1)
		if err != nil {
			t.Fatal(err)
		}
		cv, err := CurvePath(c, 300)
		if err != nil {
			t.Fatal(err)
		}
		svg := cv.String()
		if !strings.Contains(svg, "<polyline") || !strings.Contains(svg, name) {
			t.Errorf("%s: drawing incomplete", name)
		}
	}
}

func TestCurvePathValidation(t *testing.T) {
	u3 := grid.MustNew(3, 2)
	if _, err := CurvePath(curve.NewZ(u3), 300); err == nil {
		t.Fatal("3-d drawing accepted")
	}
	big := grid.MustNew(2, 8)
	if _, err := CurvePath(curve.NewZ(big), 300); err == nil {
		t.Fatal("oversized drawing accepted")
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{1.5: "1.5", 2: "2", 0.125: "0.125", 1e6: "1.0e+06", 0: "0"}
	for v, want := range cases {
		if got := trimFloat(v); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", v, got, want)
		}
	}
}
