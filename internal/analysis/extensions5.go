package analysis

import (
	"fmt"
	"math/rand"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/query"
	"repro/internal/rect"
)

// ExtRect generalizes the model to rectangular (anisotropic) universes with
// per-dimension sides 2^(k_i). The paper's Theorem 1 proof technique
// carries over with n^(1−1/d) replaced by n/s_max (see the rect package);
// this experiment verifies the generalized bound and closed form, and shows
// the practical consequence: at equal n, elongated domains admit strictly
// smaller NN-stretch.
func ExtRect(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "ext-rect",
		Title: "Rectangular universes: the bound generalizes to n/s_max",
		Caption: "Davg of the compact Z and row-major curves on anisotropic grids versus the generalized bound " +
			"(2/3d)·(n²−1)/(n·s_max). Shapes share n = 2^12 (d=2) and 2^12 (d=3); the more elongated the domain, " +
			"the smaller both the bound and the achieved stretch.",
		Columns: []string{"shape", "n", "s_max", "curve", "Davg", "closed form", "gen. bound", "Davg/bound", "holds"},
	}
	shapes := [][]int{
		{6, 6}, {8, 4}, {10, 2},
		{4, 4, 4}, {6, 4, 2}, {8, 2, 2},
	}
	if cfg.Quick {
		shapes = [][]int{{5, 5}, {8, 2}, {4, 3, 3}}
	}
	for _, ks := range shapes {
		u := rect.MustNew(ks...)
		lb := rect.NNAvgLowerBound(u)
		closed := rect.RowMajorDAvgExact(u)
		for _, c := range []rect.Curve{rect.NewCompactZ(u), rect.NewRowMajor(u)} {
			davg := rect.DAvg(c, cfg.Workers)
			closedCell := "-"
			if c.Name() == "rect-rowmajor" {
				closedCell = ff(closed)
				if abs(davg-closed) > 1e-9*(1+closed) {
					return t, fmt.Errorf("%v: measured %v vs closed form %v", u, davg, closed)
				}
			}
			ok := davg >= lb-1e-9
			t.AddRow(u.String(), fu(u.N()), fu(uint64(u.MaxSide())), c.Name(),
				ff(davg), closedCell, ff(lb), fr(davg/lb), yes(ok))
			if !ok {
				return t, fmt.Errorf("%s on %v: Davg %v below generalized bound %v", c.Name(), u, davg, lb)
			}
		}
	}
	return t, nil
}

// ExtTorus measures the stretch under periodic boundary conditions — the
// neighbor relation of N-body and PDE codes with periodic boxes. Wrap pairs
// connect opposite faces, which every key-ordered curve places maximally
// far apart; the experiment shows this costs a constant factor (the
// asymptotic order is unchanged) and that the paper's open-grid bound holds
// a fortiori.
func ExtTorus(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "ext-torus",
		Title: "Stretch under periodic boundary conditions",
		Caption: "Davg with wraparound neighbors versus the open grid of the paper's model. " +
			"The torus/open ratio stabilizes to a per-curve constant as k grows; the Theorem 1 bound still holds.",
		Columns: []string{"d", "k", "n", "curve", "Davg open", "Davg torus", "torus/open", "torus/bound"},
	}
	d := 2
	ks := []int{4, 6, 8}
	if cfg.Quick {
		ks = []int{3, 5}
	}
	for _, k := range ks {
		u := grid.MustNew(d, k)
		lb := bounds.NNAvgLowerBound(d, k)
		for _, name := range []string{"z", "hilbert", "simple", "snake", "gray"} {
			c, err := curve.ByName(name, u, cfg.Seed)
			if err != nil {
				return nil, err
			}
			open := core.NNStretchResult(c, cfg.Workers).DAvg
			torus := core.NNStretchTorusResult(c, cfg.Workers).DAvg
			t.AddRow(fi(d), fi(k), fu(u.N()), name, ff(open), ff(torus), fr(torus/open), fr(torus/lb))
			if torus < open-1e-9 {
				return t, fmt.Errorf("%s k=%d: torus Davg %v below open %v", name, k, torus, open)
			}
			if torus < lb-1e-9 {
				return t, fmt.Errorf("%s k=%d: torus Davg %v below Theorem 1 bound %v", name, k, torus, lb)
			}
			if torus > 8*open {
				return t, fmt.Errorf("%s k=%d: torus Davg %v not a constant factor above open %v", name, k, torus, open)
			}
		}
	}
	return t, nil
}

// ExtKNN reproduces the setting of Chen & Chang's neighbor-finding
// comparison ([5] in the related work): nearest-neighbor queries answered
// through SFC indexes, with the work measured as curve intervals examined
// and points scanned.
func ExtKNN(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "ext-knn",
		Title: "Nearest-neighbor search through SFC indexes (Chen & Chang)",
		Caption: "Mean work per nearest query over a random point set: expansion rounds, curve intervals examined, " +
			"points scanned. Hierarchical curves fragment the search boxes least; every index returns identical answers.",
		Columns: []string{"d", "k", "points", "curve", "mean rounds", "mean intervals", "mean scanned"},
	}
	d, k := 2, 7
	points := 3000
	queries := 200
	if cfg.Quick {
		k = 6
		points = 800
		queries = 60
	}
	u := grid.MustNew(d, k)
	rng := rand.New(rand.NewSource(cfg.Seed))
	pts := make([]grid.Point, points)
	for i := range pts {
		p := u.NewPoint()
		for j := range p {
			p[j] = uint32(rng.Intn(int(u.Side())))
		}
		pts[i] = p
	}
	qs := make([]grid.Point, queries)
	for i := range qs {
		p := u.NewPoint()
		for j := range p {
			p[j] = uint32(rng.Intn(int(u.Side())))
		}
		qs[i] = p
	}
	meanIntervals := map[string]float64{}
	var refDists []float64
	for _, name := range []string{"hilbert", "z", "gray", "snake", "simple"} {
		c, err := curve.ByName(name, u, cfg.Seed)
		if err != nil {
			return nil, err
		}
		ix, err := query.Build(c, pts)
		if err != nil {
			return nil, err
		}
		var rounds, intervals, scanned int
		dists := make([]float64, len(qs))
		for qi, q := range qs {
			_, dist, st, err := ix.NearestWithStats(q)
			if err != nil {
				return nil, err
			}
			dists[qi] = dist
			rounds += st.Rounds
			intervals += st.Intervals
			scanned += st.Scanned
		}
		if refDists == nil {
			refDists = dists
		} else {
			for qi := range dists {
				if abs(dists[qi]-refDists[qi]) > 1e-9 {
					return t, fmt.Errorf("%s: query %d returned distance %v, reference %v",
						name, qi, dists[qi], refDists[qi])
				}
			}
		}
		fq := float64(queries)
		meanIntervals[name] = float64(intervals) / fq
		t.AddRow(fi(d), fi(k), fi(points), name,
			fr(float64(rounds)/fq), fr(float64(intervals)/fq), fr(float64(scanned)/fq))
	}
	// The robust ordering is among the hierarchical curves (Moon et al.):
	// Hilbert fragments the search boxes no worse than Z. (Row-major curves
	// are competitive for the tiny boxes of dense point sets — one row-run
	// per box row — so no assertion is made against them.)
	if meanIntervals["hilbert"] > meanIntervals["z"]+1e-9 {
		return t, fmt.Errorf("hilbert intervals/query %v above z %v",
			meanIntervals["hilbert"], meanIntervals["z"])
	}
	return t, nil
}
