package analysis

import (
	"fmt"
	"sort"
)

// Experiment is one reproducible artifact of the paper: running it
// regenerates the corresponding table and verifies the paper's claim,
// returning an error if the claim fails.
type Experiment struct {
	ID    string // stable identifier used by -only flags and bench names
	Title string
	Run   func(Config) (*Table, error)
}

// Experiments returns all experiments in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig1", "Figure 1: two SFCs on the 2×2 grid", Fig1},
		{"fig2", "Figure 2: nearest-neighbor decomposition p(α,β)", Fig2},
		{"fig3", "Figure 3: the 2-d Z curve on the 8×8 grid", Fig3},
		{"fig4", "Figure 4: the simple curve on the 8×8 grid", Fig4},
		{"lemma1", "Lemma 1: generalized triangle inequality", Lemma1},
		{"lemma2", "Lemma 2: S_A'(π) = (n−1)n(n+1)/3 for any SFC", Lemma2},
		{"lemma4", "Lemma 4: decomposition count bound", Lemma4},
		{"thm1", "Theorem 1: universal lower bound on Davg", Theorem1},
		{"lemma5", "Lemma 5: per-dimension Z-curve sums Λ_i", Lemma5},
		{"thm2", "Theorem 2: Davg(Z) ~ (1/d)·n^(1−1/d)", Theorem2},
		{"thm3", "Theorem 3: Davg(simple) ~ (1/d)·n^(1−1/d)", Theorem3},
		{"prop1", "Proposition 1: lower bound on Dmax", Prop1},
		{"prop2", "Proposition 2: Dmax(simple) = n^(1−1/d)", Prop2},
		{"prop3", "Proposition 3: all-pairs stretch lower bounds", Prop3},
		{"prop4", "Proposition 4: simple-curve all-pairs upper bounds", Prop4},
		{"ext-hilbert", "Extension: NN-stretch of the Hilbert curve (§VI open question)", ExtHilbert},
		{"ext-cluster", "Extension: clustering metric comparison (Moon et al.)", ExtCluster},
		{"ext-partition", "Extension: SFC domain decomposition quality", ExtPartition},
		{"ext-nbody", "Extension: N-body interaction locality", ExtNBody},
		{"ext-profile", "Extension: stretch vs pair distance (probabilistic model, §VI)", ExtProfile},
		{"ext-pnorm", "Extension: p-norm stretch (Dai & Su)", ExtPNorm},
		{"ext-converse", "Extension: converse stretch (Gotsman & Lindenbaum)", ExtConverse},
		{"ext-dilation", "Extension: unit-step dilation constants (Niedermeier et al.)", ExtDilation},
		{"ext-bign", "Extension: asymptotics at astronomically large n", ExtBigN},
		{"ext-io", "Extension: secondary-memory I/O (paged B+-tree)", ExtIO},
		{"ext-dist", "Extension: per-cell δavg distribution", ExtDist},
		{"ext-optimal", "Extension: exhaustively optimal SFCs on tiny universes", ExtOptimal},
		{"ext-amr", "Extension: adaptive mesh refinement over hierarchical curves", ExtAMR},
		{"ext-drift", "Extension: incremental repartitioning under workload drift", ExtDrift},
		{"ext-rect", "Extension: rectangular universes and the generalized bound", ExtRect},
		{"ext-torus", "Extension: stretch under periodic boundary conditions", ExtTorus},
		{"ext-knn", "Extension: nearest-neighbor search work (Chen & Chang)", ExtKNN},
		{"ext-octree", "Extension: Morton-keyed Barnes–Hut tree (Warren & Salmon)", ExtOctree},
		{"ext-constants", "Extension: asymptotic stretch constants per curve", ExtConstants},
		{"ext-conform", "Extension: cross-engine conformance matrix for every curve", ExtConform},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment IDs in paper order.
func IDs() []string {
	es := Experiments()
	ids := make([]string, len(es))
	for i, e := range es {
		ids[i] = e.ID
	}
	return ids
}

// RunAll executes every experiment and collects the tables. It fails fast
// on the first violated claim.
func RunAll(cfg Config) ([]*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var tables []*Table
	for _, e := range Experiments() {
		tbl, err := e.Run(cfg)
		if err != nil {
			return tables, fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		tables = append(tables, tbl)
	}
	return tables, nil
}

// RunSome executes the named experiments (any order), in paper order.
func RunSome(cfg Config, ids []string) ([]*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	want := map[string]bool{}
	for _, id := range ids {
		if _, ok := ByID(id); !ok {
			known := IDs()
			sort.Strings(known)
			return nil, fmt.Errorf("analysis: unknown experiment %q (known: %v)", id, known)
		}
		want[id] = true
	}
	var tables []*Table
	for _, e := range Experiments() {
		if !want[e.ID] {
			continue
		}
		tbl, err := e.Run(cfg)
		if err != nil {
			return tables, fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		tables = append(tables, tbl)
	}
	return tables, nil
}
