package analysis

import (
	"fmt"
	"math"
	"math/big"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/grid"
)

// sweepCurveByName instantiates one named curve over u, seeded from cfg.
func sweepCurveByName(cfg Config, name string, u *grid.Universe) (curve.Curve, error) {
	return curve.ByName(name, u, cfg.Seed)
}

// sweepCurves instantiates every registered curve over u (the random curve
// seeded from cfg).
func sweepCurves(cfg Config, u *grid.Universe) ([]curve.Curve, error) {
	var cs []curve.Curve
	for _, name := range curve.Names() {
		c, err := curve.ByName(name, u, cfg.Seed)
		if err != nil {
			return nil, err
		}
		cs = append(cs, c)
	}
	return cs, nil
}

// Theorem1 measures Davg for every curve at the largest configured size per
// dimension and checks the universal lower bound
// Davg(π) ≥ (2/3d)(n^(1−1/d) − n^(−1−1/d)).
func Theorem1(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "thm1",
		Title: "Universal lower bound on the average NN-stretch",
		Caption: "Davg of every implemented SFC versus the Theorem 1 bound. " +
			"ratio = Davg/bound must be ≥ 1 for every bijection; Z and simple approach 1.5, random is Θ(n/bound) worse.",
		Columns: []string{"d", "k", "n", "curve", "Davg", "Thm1 bound", "ratio", "bound holds"},
	}
	for _, d := range cfg.Dims {
		k := maxK(d, cfg.MaxExactN)
		u := grid.MustNew(d, k)
		lb := bounds.NNAvgLowerBound(d, k)
		cs, err := sweepCurves(cfg, u)
		if err != nil {
			return nil, err
		}
		for _, c := range cs {
			davg := core.DAvg(c, cfg.Workers)
			ratio := davg / lb
			ok := davg >= lb-1e-9
			t.AddRow(fi(d), fi(k), fu(u.N()), c.Name(), ff(davg), ff(lb), fr(ratio), yes(ok))
			if !ok {
				return t, fmt.Errorf("%s violates Theorem 1 on %v: %v < %v", c.Name(), u, davg, lb)
			}
		}
	}
	return t, nil
}

// Lemma5 compares the measured per-dimension Z-curve sums Λ_i against both
// the exact finite-n closed form (from the proof) and the limit
// 2^(d−i)/(2^d − 1).
func Lemma5(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "lemma5",
		Title: "Per-dimension Z-curve sums Λ_i(Z)",
		Caption: "Measured Λ_i equals the closed form exactly; Λ_i/n^(2−1/d) approaches 2^(d−i)/(2^d−1) " +
			"(ratio column → 1 as k grows).",
		Columns: []string{"d", "k", "i", "Λ_i measured", "Λ_i closed form", "exact match", "Λ_i/n^(2−1/d)", "limit", "measured/limit"},
	}
	for _, d := range cfg.Dims {
		for _, k := range []int{maxK(d, cfg.MaxExactN) / 2, maxK(d, cfg.MaxExactN)} {
			if k < 1 {
				continue
			}
			u := grid.MustNew(d, k)
			z := curve.NewZ(u)
			lambdas := core.Lambdas(z, cfg.Workers)
			for idx := 1; idx <= d; idx++ {
				want := bounds.ZLambdaExact(d, k, idx)
				got := new(big.Int).SetUint64(lambdas[idx-1])
				exact := want.Cmp(got) == 0
				norm := pow(float64(u.N()), 2-1/float64(d))
				normalized := float64(lambdas[idx-1]) / norm
				limit := bounds.Lemma5Limit(d, idx)
				t.AddRow(fi(d), fi(k), fi(idx), got.String(), want.String(), yes(exact),
					ff(normalized), ff(limit), fr(normalized/limit))
				if !exact {
					return t, fmt.Errorf("Λ_%d(Z) on %v: measured %v, closed form %v", idx, u, got, want)
				}
			}
		}
	}
	return t, nil
}

// Theorem2 tracks the convergence Davg(Z)·d/n^(1−1/d) → 1 and the ratio to
// the Theorem 1 bound → 1.5.
func Theorem2(cfg Config) (*Table, error) {
	return nnConvergence(cfg, "thm2",
		"Average NN-stretch of the Z curve",
		"Davg(Z)/asymptote → 1 and Davg(Z)/bound → 1.5 as k grows (Theorem 2: the Z curve is within 1.5× of optimal, for every d).",
		func(u *grid.Universe) (curve.Curve, error) { return curve.NewZ(u), nil })
}

// Theorem3 does the same for the simple curve, additionally checking the
// exact finite-n closed form.
func Theorem3(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "thm3",
		Title: "Average NN-stretch of the simple curve",
		Caption: "Measured Davg(S) equals the boundary-subset closed form exactly, and converges to (1/d)·n^(1−1/d) " +
			"(Theorem 3: the trivial row-major curve matches the Z curve asymptotically).",
		Columns: []string{"d", "k", "n", "Davg measured", "closed form", "exact match", "asymptote", "measured/asym", "measured/bound"},
	}
	for _, d := range cfg.Dims {
		for _, k := range kSweep(d, cfg.MaxExactN) {
			u := grid.MustNew(d, k)
			s := curve.NewSimple(u)
			davg := core.DAvg(s, cfg.Workers)
			closed := bounds.SimpleDAvgExact(d, k)
			exact := abs(davg-closed) < 1e-9*(1+closed)
			asym := bounds.NNAsymptote(d, k)
			lb := bounds.NNAvgLowerBound(d, k)
			t.AddRow(fi(d), fi(k), fu(u.N()), ff(davg), ff(closed), yes(exact),
				ff(asym), fr(davg/asym), fr(davg/lb))
			if !exact {
				return t, fmt.Errorf("Davg(S) on %v: measured %v, closed form %v", u, davg, closed)
			}
		}
		// Convergence assertion at the top size.
		k := maxK(d, cfg.MaxExactN)
		ratio := bounds.SimpleDAvgExact(d, k) / bounds.NNAsymptote(d, k)
		if abs(ratio-1) > convergenceTolerance(d, k) {
			return t, fmt.Errorf("d=%d k=%d: Davg(S)/asymptote = %v, expected → 1", d, k, ratio)
		}
	}
	return t, nil
}

// nnConvergence is the shared sweep for Theorem 2-style tables.
func nnConvergence(cfg Config, id, title, caption string, build func(*grid.Universe) (curve.Curve, error)) (*Table, error) {
	t := &Table{
		ID:      id,
		Title:   title,
		Caption: caption,
		Columns: []string{"d", "k", "n", "Davg", "asymptote (n^(1−1/d)/d)", "measured/asym", "Thm1 bound", "measured/bound"},
	}
	for _, d := range cfg.Dims {
		var lastRatio float64
		for _, k := range kSweep(d, cfg.MaxExactN) {
			u := grid.MustNew(d, k)
			c, err := build(u)
			if err != nil {
				return nil, err
			}
			davg := core.DAvg(c, cfg.Workers)
			asym := bounds.NNAsymptote(d, k)
			lb := bounds.NNAvgLowerBound(d, k)
			lastRatio = davg / asym
			t.AddRow(fi(d), fi(k), fu(u.N()), ff(davg), ff(asym), fr(davg/asym), ff(lb), fr(davg/lb))
			if davg < lb-1e-9 {
				return t, fmt.Errorf("d=%d k=%d: Davg %v below bound %v", d, k, davg, lb)
			}
		}
		k := maxK(d, cfg.MaxExactN)
		if abs(lastRatio-1) > convergenceTolerance(d, k) {
			return t, fmt.Errorf("d=%d k=%d: Davg/asymptote = %v, expected → 1", d, k, lastRatio)
		}
	}
	return t, nil
}

// convergenceTolerance bounds how far from its limit the finite-n ratio may
// sit at the top of the sweep. Boundary effects decay like 1/side = 2^−k,
// with a d-dependent constant; the tolerance is deliberately loose — it
// guards the *shape* (convergence), not a particular rate.
func convergenceTolerance(d, k int) float64 {
	tol := 6 * float64(d) / float64(uint64(1)<<uint(k))
	if tol < 0.02 {
		tol = 0.02
	}
	if tol > 0.5 {
		tol = 0.5
	}
	return tol
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// pow is math.Pow under a short local name for table code.
func pow(base, exp float64) float64 { return math.Pow(base, exp) }
