package analysis

import (
	"fmt"
	"math/big"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/grid"
)

// ExtProfile measures the distance-stratified stretch profile — the §VI
// open question about "a more general probabilistic model of input". The
// structured curves are scale-invariant (every distance stratum has stretch
// Θ(n^(1−1/d))), the random bijection decays like 1/r.
func ExtProfile(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "ext-profile",
		Title: "Stretch versus pair distance (probabilistic input model, §VI)",
		Caption: "Mean Δπ/Δ over random pairs at Manhattan distance r. Structured curves are scale-invariant; " +
			"the random curve's stretch is (n+1)/3 ÷ r.",
		Columns: []string{"d", "k", "curve", "r", "mean stretch", "pairs"},
	}
	d, k := 2, 7
	samples := 4000
	if cfg.Quick {
		k = 5
		samples = 800
	}
	u := grid.MustNew(d, k)
	firstLast := map[string][2]float64{}
	for _, name := range []string{"z", "hilbert", "simple", "diagonal", "random"} {
		c, err := curve.ByName(name, u, cfg.Seed)
		if err != nil {
			return nil, err
		}
		bins, err := core.StretchProfile(c, samples, cfg.Seed)
		if err != nil {
			return nil, err
		}
		for _, b := range bins {
			t.AddRow(fi(d), fi(k), name, fu(b.Distance), ff(b.MeanStretch), fi(b.Pairs))
		}
		firstLast[name] = [2]float64{bins[0].MeanStretch, bins[len(bins)-1].MeanStretch}
	}
	for _, name := range []string{"z", "hilbert", "simple", "diagonal"} {
		fl := firstLast[name]
		if fl[0] > 8*fl[1] || fl[1] > 8*fl[0] {
			return t, fmt.Errorf("%s profile not scale-invariant: r=1 %v vs max-r %v", name, fl[0], fl[1])
		}
	}
	if fl := firstLast["random"]; fl[0] < 10*fl[1] {
		return t, fmt.Errorf("random profile does not decay: %v vs %v", fl[0], fl[1])
	}
	return t, nil
}

// ExtPNorm computes the Dai & Su p-norm locality measures ([7, 8] in the
// related work), which interpolate between the paper's average stretch
// (p = 1) and the worst-case pair stretch (p → ∞).
func ExtPNorm(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "ext-pnorm",
		Title: "p-norm all-pairs stretch (Dai & Su)",
		Caption: "str_p under the Manhattan metric; non-decreasing in p by the power-mean inequality, " +
			"capped by the worst pair. Rankings can change with p: curves with few terrible pairs degrade as p grows.",
		Columns: []string{"d", "k", "n", "curve", "p=1", "p=2", "p=4", "max pair", "monotone"},
	}
	for _, d := range cfg.Dims {
		k := maxK(d, cfg.MaxPairsN)
		u := grid.MustNew(d, k)
		if u.N() < 2 {
			continue
		}
		cs, err := sweepCurves(cfg, u)
		if err != nil {
			return nil, err
		}
		for _, c := range cs {
			var vals []float64
			for _, p := range []float64{1, 2, 4} {
				v, err := core.PNormStretch(c, core.Manhattan, p, cfg.Workers)
				if err != nil {
					return nil, err
				}
				vals = append(vals, v)
			}
			maxPair, err := core.MaxPairStretch(c, core.Manhattan, cfg.Workers)
			if err != nil {
				return nil, err
			}
			mono := vals[0] <= vals[1]+1e-9 && vals[1] <= vals[2]+1e-9 && vals[2] <= maxPair+1e-9
			t.AddRow(fi(d), fi(k), fu(u.N()), c.Name(), ff(vals[0]), ff(vals[1]), ff(vals[2]), ff(maxPair), yes(mono))
			if !mono {
				return t, fmt.Errorf("%s on %v: p-norms not monotone: %v cap %v", c.Name(), u, vals, maxPair)
			}
		}
	}
	return t, nil
}

// ExtConverse measures the Gotsman–Lindenbaum converse metric ([11]):
// max Δ_E/Δπ^(1/d). The paper stresses that this direction is independent
// of its stretch — the table makes the contrast concrete: Hilbert is best
// here while sharing the Θ(n^(1−1/d)) forward stretch with Z.
func ExtConverse(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "ext-converse",
		Title: "Converse stretch (Gotsman & Lindenbaum)",
		Caption: "max over pairs of Δ_E(α,β)/Δπ(α,β)^(1/d) — how far apart in space can cells close on the curve be. " +
			"Forward and converse stretch rank curves differently, as §II argues.",
		Columns: []string{"d", "k", "n", "curve", "converse stretch", "forward Davg/bound"},
	}
	for _, d := range []int{2, 3} {
		k := maxK(d, cfg.MaxPairsN)
		u := grid.MustNew(d, k)
		if u.N() < 2 {
			continue
		}
		lb := bounds.NNAvgLowerBound(d, k)
		values := map[string]float64{}
		cs, err := sweepCurves(cfg, u)
		if err != nil {
			return nil, err
		}
		for _, c := range cs {
			v, err := core.ConverseStretch(c, cfg.Workers)
			if err != nil {
				return nil, err
			}
			values[c.Name()] = v
			davg := core.DAvg(c, cfg.Workers)
			t.AddRow(fi(d), fi(k), fu(u.N()), c.Name(), ff(v), fr(davg/lb))
		}
		if values["hilbert"] >= values["z"] {
			return t, fmt.Errorf("d=%d: hilbert converse %v not below z %v", d, values["hilbert"], values["z"])
		}
		if values["hilbert"] >= values["simple"] {
			return t, fmt.Errorf("d=%d: hilbert converse %v not below simple %v", d, values["hilbert"], values["simple"])
		}
	}
	return t, nil
}

// ExtDilation measures the worst-case dilation constant of the unit-step
// curves — max Δ^d/|i−j| — the quantity bounded by Niedermeier, Reinhardt &
// Sanders ([20]: Δ ≤ 3√(i−j) for the 2-d Hilbert curve, i.e. constant ≤ 9).
func ExtDilation(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "ext-dilation",
		Title: "Unit-step dilation constants (Niedermeier et al.)",
		Caption: "max over index pairs of Δ(π⁻¹(i),π⁻¹(j))^d / |i−j| for the unit-step curves. " +
			"The 2-d Hilbert constant must respect the proven bound 9; snake is Θ(side).",
		Columns: []string{"d", "k", "n", "curve", "dilation", "NRS bound (hilbert 2-d)", "within"},
	}
	for _, d := range []int{2, 3} {
		k := maxK(d, cfg.MaxPairsN)
		u := grid.MustNew(d, k)
		if u.N() < 2 {
			continue
		}
		for _, name := range []string{"hilbert", "snake"} {
			c, err := curve.ByName(name, u, cfg.Seed)
			if err != nil {
				return nil, err
			}
			v, err := core.UnitStepDilation(c, cfg.Workers)
			if err != nil {
				return nil, err
			}
			boundCell := "-"
			ok := true
			if name == "hilbert" && d == 2 {
				boundCell = "9"
				ok = v <= 9+1e-9
			}
			t.AddRow(fi(d), fi(k), fu(u.N()), name, ff(v), boundCell, yes(ok))
			if !ok {
				return t, fmt.Errorf("hilbert 2-d dilation %v exceeds the NRS bound 9", v)
			}
		}
	}
	return t, nil
}

// ExtBigN probes the paper's asymptotics far beyond enumerable sizes:
// at n up to 2^60 it evaluates the exact closed forms (validated against
// exhaustive measurement at small n by thm3/lemma5) and a zero-variance
// sampled measurement of the simple curve.
func ExtBigN(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "ext-bign",
		Title: "Asymptotics at astronomically large n",
		Caption: "Theorem 2/3 limits probed at n up to 2^60: simple-curve Davg measured by cell sampling " +
			"(its per-cell δavg is near-constant) against the exact closed form; the Z curve via the exact Λ-sum " +
			"h1/n of Theorem 2's proof. All ratios to the asymptote converge to 1, ratios to the bound to 1.5.",
		Columns: []string{"d", "k", "n", "quantity", "value", "asymptote", "value/asym", "value/bound"},
	}
	samples := 20000
	if cfg.Quick {
		samples = 4000
	}
	for _, dk := range [][2]int{{2, 20}, {2, 30}, {3, 20}, {4, 15}} {
		d, k := dk[0], dk[1]
		u := grid.MustNew(d, k)
		asym := bounds.NNAsymptote(d, k)
		lb := bounds.NNAvgLowerBound(d, k)

		// Simple curve: sampled measurement + exact closed form.
		s := curve.NewSimple(u)
		est, err := core.SampledNNStretch(s, samples, cfg.Seed)
		if err != nil {
			return nil, err
		}
		closed := bounds.SimpleDAvgExact(d, k)
		t.AddRow(fi(d), fi(k), fu(u.N()), "Davg(simple) sampled", ff(est.DAvg), ff(asym), fr(est.DAvg/asym), fr(est.DAvg/lb))
		t.AddRow(fi(d), fi(k), fu(u.N()), "Davg(simple) closed form", ff(closed), ff(asym), fr(closed/asym), fr(closed/lb))
		if abs(est.DAvg-closed) > 0.02*closed {
			return t, fmt.Errorf("d=%d k=%d: sampled %v vs closed form %v", d, k, est.DAvg, closed)
		}
		if abs(closed/asym-1) > 0.01 {
			return t, fmt.Errorf("d=%d k=%d: Davg(simple)/asym = %v at huge n", d, k, closed/asym)
		}

		// Z curve: h1/n from the exact Λ sums (Theorem 2 proof structure;
		// h2/n vanishes at these sizes).
		sumNN := bounds.ZSumNNExact(d, k)
		h1, _ := new(big.Float).SetInt(sumNN).Float64()
		h1 /= float64(d) * float64(u.N())
		t.AddRow(fi(d), fi(k), fu(u.N()), "Davg(Z) via exact h1/n", ff(h1), ff(asym), fr(h1/asym), fr(h1/lb))
		if abs(h1/asym-1) > 0.01 {
			return t, fmt.Errorf("d=%d k=%d: h1(Z)/(n·asym) = %v at huge n", d, k, h1/asym)
		}

		// Z and Hilbert measured directly by importance-stratified sampling
		// (unbiased for Davg at any size; see core.StratifiedNNStretch).
		for _, name := range []string{"z", "hilbert"} {
			c, err := curve.ByName(name, u, cfg.Seed)
			if err != nil {
				return nil, err
			}
			est, err := core.StratifiedNNStretch(c, samples/4, cfg.Seed)
			if err != nil {
				return nil, err
			}
			t.AddRow(fi(d), fi(k), fu(u.N()), "Davg("+name+") stratified",
				ff(est.DAvg), ff(asym), fr(est.DAvg/asym), fr(est.DAvg/lb))
			if name == "z" && abs(est.DAvg/asym-1) > 0.06 {
				return t, fmt.Errorf("d=%d k=%d: stratified Davg(Z)/asym = %v at huge n", d, k, est.DAvg/asym)
			}
			if name == "hilbert" && (est.DAvg/lb < 1 || est.DAvg/lb > 3) {
				return t, fmt.Errorf("d=%d k=%d: stratified Davg(hilbert)/bound = %v out of regime", d, k, est.DAvg/lb)
			}
		}
	}
	return t, nil
}
