package analysis

// Golden regression tests: exact measured values of the stretch metrics at
// reference sizes, pinned so that any accidental change to a curve or
// metric implementation is caught even if it preserves the coarse claims
// the experiments assert. Values were produced by this repository's exact
// engines and cross-checked against the paper's closed forms where those
// exist; deterministic seeds pin the randomized curves.

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/grid"
)

func TestGoldenDAvgReferenceValues(t *testing.T) {
	cases := []struct {
		d, k int
		name string
		davg float64
		dmax float64
	}{
		// d=2, k=6 (64×64, n=4096).
		{2, 6, "z", 32.3334960938, 115.098632812},
		{2, 6, "simple", 32.5, 64},
		{2, 6, "snake", 32.5, 95},
		{2, 6, "hilbert", 38.7817382812, 142.422851562},
		{2, 6, "gray", 47.7810058594, 172.811523438},
		// d=3, k=3 (8×8×8, n=512).
		{3, 3, "z", 23.6286458333, 92.828125},
		{3, 3, "simple", 24.3333333333, 64},
		{3, 3, "snake", 24.3333333333, 88.125},
		{3, 3, "hilbert", 25.2721354167, 105},
		{3, 3, "gray", 27.1796875, 112.58984375},
	}
	for _, tc := range cases {
		u := grid.MustNew(tc.d, tc.k)
		c, err := curve.ByName(tc.name, u, 1)
		if err != nil {
			t.Fatal(err)
		}
		avg, max := core.NNStretch(c, 0)
		if math.Abs(avg-tc.davg) > 1e-8 {
			t.Errorf("golden Davg(%s, d=%d, k=%d) = %.12g, want %.12g", tc.name, tc.d, tc.k, avg, tc.davg)
		}
		if math.Abs(max-tc.dmax) > 1e-8 {
			t.Errorf("golden Dmax(%s, d=%d, k=%d) = %.12g, want %.12g", tc.name, tc.d, tc.k, max, tc.dmax)
		}
	}
}

func TestGoldenLambdaReferenceValues(t *testing.T) {
	// Λ_i(Z) on d=2, k=6 — also pinned by the closed form, but the golden
	// values guard the measurement path itself.
	u := grid.MustNew(2, 6)
	z := curve.NewZ(u)
	lambdas := core.Lambdas(z, 0)
	want := []uint64{174720, 87360}
	for i, w := range want {
		if lambdas[i] != w {
			t.Errorf("golden Λ_%d(Z) = %d, want %d", i+1, lambdas[i], w)
		}
	}
}

func TestGoldenAllPairsReferenceValues(t *testing.T) {
	u := grid.MustNew(2, 4) // 16×16, n=256
	cases := []struct {
		name string
		strM float64
	}{
		{"z", 8.23302189342},
		{"simple", 8.05882352941},
		{"hilbert", 8.4125407071},
	}
	for _, tc := range cases {
		c, err := curve.ByName(tc.name, u, 1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := core.AllPairsStretch(c, core.Manhattan, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.strM) > 1e-6 {
			t.Errorf("golden str_M(%s) = %.12g, want %.12g", tc.name, got, tc.strM)
		}
	}
}
