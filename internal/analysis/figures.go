package analysis

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/grid"
)

// fig1Universe builds the 2×2 universe and the curves π1, π2 of Figure 1.
// The figure labels the cells A=(0,1), C=(1,1), D=(0,0), B=(1,0); π1 visits
// C,A,B,D and π2 visits A,B,C,D.
func fig1Universe() (*grid.Universe, curve.Curve, curve.Curve, error) {
	u := grid.MustNew(2, 1)
	lin := func(x, y uint32) uint64 { return u.Linear(u.MustPoint(x, y)) }
	a, b, c, d := lin(0, 1), lin(1, 0), lin(1, 1), lin(0, 0)
	pi1, err := curve.FromOrder(u, "pi1", []uint64{c, a, b, d})
	if err != nil {
		return nil, nil, nil, err
	}
	pi2, err := curve.FromOrder(u, "pi2", []uint64{a, b, c, d})
	if err != nil {
		return nil, nil, nil, err
	}
	return u, pi1, pi2, nil
}

// Fig1 reproduces the worked example of Figure 1 (§III): the stretch values
// of the two hand-drawn curves on the 2×2 grid.
func Fig1(cfg Config) (*Table, error) {
	_, pi1, pi2, err := fig1Universe()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig1",
		Title:   "Stretch of the Figure 1 example curves",
		Caption: "Paper values: Davg(π1)=1.5, Davg(π2)=2, Dmax(π1)=2, Dmax(π2)=2.5.",
		Columns: []string{"curve", "Davg measured", "Davg paper", "Dmax measured", "Dmax paper", "match"},
	}
	cases := []struct {
		c                curve.Curve
		wantAvg, wantMax float64
	}{
		{pi1, 1.5, 2.0},
		{pi2, 2.0, 2.5},
	}
	for _, tc := range cases {
		nn := core.NNStretchResult(tc.c, cfg.Workers)
		ok := math.Abs(nn.DAvg-tc.wantAvg) < 1e-12 && math.Abs(nn.DMax-tc.wantMax) < 1e-12
		t.AddRow(tc.c.Name(), ff(nn.DAvg), ff(tc.wantAvg), ff(nn.DMax), ff(tc.wantMax), yes(ok))
		if !ok {
			return t, fmt.Errorf("measured (%v, %v) != paper (%v, %v) for %s",
				nn.DAvg, nn.DMax, tc.wantAvg, tc.wantMax, tc.c.Name())
		}
	}
	return t, nil
}

// Fig2 reproduces Figure 2: the nearest-neighbor decomposition of the pair
// α=(1,1), β=(3,5), in both directions, and checks the edge sets against
// those printed in the paper.
func Fig2(cfg Config) (*Table, error) {
	alpha := grid.Point{1, 1}
	beta := grid.Point{3, 5}
	wantFwd := [][2]grid.Point{
		{{1, 1}, {2, 1}}, {{2, 1}, {3, 1}}, {{3, 1}, {3, 2}},
		{{3, 2}, {3, 3}}, {{3, 3}, {3, 4}}, {{3, 4}, {3, 5}},
	}
	wantRev := [][2]grid.Point{
		{{1, 5}, {2, 5}}, {{2, 5}, {3, 5}}, {{1, 1}, {1, 2}},
		{{1, 2}, {1, 3}}, {{1, 3}, {1, 4}}, {{1, 4}, {1, 5}},
	}
	t := &Table{
		ID:      "fig2",
		Title:   "Nearest-neighbor decomposition p(α,β) for α=(1,1), β=(3,5)",
		Caption: "Each decomposition is a set of unit edges forming a staircase path; p(α,β) ≠ p(β,α) in general (Figure 2).",
		Columns: []string{"pair", "edge count", "Δ(α,β)", "edges", "matches figure"},
	}
	check := func(label string, from, to grid.Point, want [][2]grid.Point) error {
		got := grid.Decompose(from, to)
		set := map[string]bool{}
		var render []string
		for _, e := range got {
			set[e.A.String()+e.B.String()] = true
			render = append(render, e.String())
		}
		ok := len(got) == len(want)
		for _, w := range want {
			e, err := grid.NewEdge(w[0], w[1])
			if err != nil {
				return err
			}
			if !set[e.A.String()+e.B.String()] {
				ok = false
			}
		}
		delta := grid.Manhattan(from, to)
		if uint64(len(got)) != delta {
			ok = false
		}
		t.AddRow(label, fi(len(got)), fu(delta), strings.Join(render, " "), yes(ok))
		if !ok {
			return fmt.Errorf("decomposition %s does not match Figure 2", label)
		}
		return nil
	}
	if err := check("p(α,β)", alpha, beta, wantFwd); err != nil {
		return t, err
	}
	if err := check("p(β,α)", beta, alpha, wantRev); err != nil {
		return t, err
	}
	return t, nil
}

// gridTable renders a curve's key assignment on the 8×8 grid in the layout
// of Figures 3 and 4: dimension 1 horizontal (left to right), dimension 2
// vertical (bottom to top, so the highest row prints first).
func gridTable(c curve.Curve, id, title, caption string) (*Table, error) {
	u := c.Universe()
	if err := curve.Validate(c); err != nil {
		return nil, err
	}
	cols := []string{"x2\\x1"}
	for x := uint32(0); x < u.Side(); x++ {
		cols = append(cols, fmt.Sprintf("%d", x))
	}
	t := &Table{ID: id, Title: title, Caption: caption, Columns: cols}
	for y := int(u.Side()) - 1; y >= 0; y-- {
		row := []string{fmt.Sprintf("%d", y)}
		for x := uint32(0); x < u.Side(); x++ {
			row = append(row, fu(c.Index(u.MustPoint(x, uint32(y)))))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig3 reproduces Figure 3: the key assignment of the 2-d Z curve on the
// 8×8 grid, and verifies the bit-interleaving definition cell by cell.
func Fig3(cfg Config) (*Table, error) {
	u := grid.MustNew(2, 3)
	z := curve.NewZ(u)
	// Verify the interleaving definition explicitly: key = x1^j x2^j bits.
	var failure error
	u.Cells(func(_ uint64, p grid.Point) bool {
		var want uint64
		for bit := 2; bit >= 0; bit-- {
			want = want<<1 | uint64(p[0]>>uint(bit))&1
			want = want<<1 | uint64(p[1]>>uint(bit))&1
		}
		if z.Index(p) != want {
			failure = fmt.Errorf("Z(%v) = %d, interleaving gives %d", p, z.Index(p), want)
			return false
		}
		return true
	})
	if failure != nil {
		return nil, failure
	}
	return gridTable(z, "fig3",
		"Z-curve keys on the 8×8 grid",
		"Key of cell (x1,x2) is the bit interleave x1^1 x2^1 x1^2 x2^2 x1^3 x2^3; matches Figure 3 of the paper (row x2=0 at the bottom).")
}

// Fig4 reproduces Figure 4: the simple curve on the 8×8 grid, verifying
// eq. (8) cell by cell.
func Fig4(cfg Config) (*Table, error) {
	u := grid.MustNew(2, 3)
	s := curve.NewSimple(u)
	var failure error
	u.Cells(func(_ uint64, p grid.Point) bool {
		want := uint64(p[0]) + uint64(p[1])*8
		if s.Index(p) != want {
			failure = fmt.Errorf("S(%v) = %d, eq. (8) gives %d", p, s.Index(p), want)
			return false
		}
		return true
	})
	if failure != nil {
		return nil, failure
	}
	return gridTable(s, "fig4",
		"Simple-curve keys on the 8×8 grid",
		"S(α) = x1 + 8·x2 per eq. (8); matches Figure 4 of the paper.")
}

// Lemma1 property-tests the generalized triangle inequality for Δπ over
// random curves and random multi-hop paths.
func Lemma1(cfg Config) (*Table, error) {
	u := grid.MustNew(2, 3)
	rng := rand.New(rand.NewSource(cfg.Seed))
	trials := 2000
	if cfg.Quick {
		trials = 300
	}
	t := &Table{
		ID:      "lemma1",
		Title:   "Triangle inequality trials",
		Caption: "Δπ(v0,vm) ≤ Σ Δπ(vi,vi+1) on random paths; the paper's proofs rest on this inequality.",
		Columns: []string{"curve", "paths tested", "violations"},
	}
	for _, name := range curve.Names() {
		c, err := curve.ByName(name, u, cfg.Seed)
		if err != nil {
			return nil, err
		}
		violations := 0
		for trial := 0; trial < trials; trial++ {
			path := make([]grid.Point, 2+rng.Intn(8))
			for j := range path {
				p := u.NewPoint()
				for i := range p {
					p[i] = uint32(rng.Intn(int(u.Side())))
				}
				path[j] = p
			}
			if !core.CheckTriangle(c, path) {
				violations++
			}
		}
		t.AddRow(name, fi(trials), fi(violations))
		if violations > 0 {
			return t, fmt.Errorf("curve %s: %d triangle violations", name, violations)
		}
	}
	return t, nil
}

// Lemma2 verifies S_A'(π) = (n−1)n(n+1)/3 for every implemented curve and
// for random bijections.
func Lemma2(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "lemma2",
		Title:   "S_A'(π) identity",
		Caption: "The total curve distance over ordered pairs is curve-independent (Lemma 2).",
		Columns: []string{"d", "k", "n", "curve", "S_A' measured", "(n−1)n(n+1)/3", "equal"},
	}
	for _, dk := range [][2]int{{1, 5}, {2, 3}, {3, 2}} {
		d, k := dk[0], dk[1]
		u := grid.MustNew(d, k)
		if u.N() > cfg.MaxPairsN {
			continue
		}
		want := core.SAPrimeIdentity(u.N())
		names := append([]string{}, curve.Names()...)
		for _, name := range names {
			c, err := curve.ByName(name, u, cfg.Seed)
			if err != nil {
				return nil, err
			}
			got, err := core.SAPrime(c, cfg.Workers)
			if err != nil {
				return nil, err
			}
			ok := want.IsUint64() && want.Uint64() == got
			t.AddRow(fi(d), fi(k), u2(u.N()), name, u2(got), want.String(), yes(ok))
			if !ok {
				return t, fmt.Errorf("S_A'(%s) = %d on %v, want %v", name, got, u, want)
			}
		}
	}
	return t, nil
}

// Lemma4 verifies the decomposition-count formula and its bound: every
// nearest-neighbor edge lies in at most n^((d+1)/d)/2 decompositions.
func Lemma4(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "lemma4",
		Title:   "Decomposition counts per edge",
		Caption: "Max over edges of |{(α,β) : edge ∈ p(α,β)}| versus the Lemma 4 bound n^((d+1)/d)/2; the bound is tight for central edges.",
		Columns: []string{"d", "k", "n", "max count (formula)", "max count (enumerated)", "bound", "within bound", "tight"},
	}
	for _, dk := range [][2]int{{1, 3}, {2, 2}, {3, 1}} {
		d, k := dk[0], dk[1]
		uu := grid.MustNew(d, k)
		// Enumerate all ordered pairs and count containment per edge.
		counts := map[string]uint64{}
		a := uu.NewPoint()
		b := uu.NewPoint()
		for ia := uint64(0); ia < uu.N(); ia++ {
			for ib := uint64(0); ib < uu.N(); ib++ {
				if ia == ib {
					continue
				}
				uu.FromLinear(ia, a)
				uu.FromLinear(ib, b)
				for _, e := range grid.Decompose(a, b) {
					counts[e.A.String()+e.B.String()]++
				}
			}
		}
		var maxEnum, maxFormula uint64
		var mismatch error
		uu.NNPairs(func(pa, pb grid.Point, dim int) bool {
			e, err := grid.NewEdge(pa, pb)
			if err != nil {
				mismatch = err
				return false
			}
			formula := uu.DecompositionCount(e)
			enum := counts[e.A.String()+e.B.String()]
			if formula != enum {
				mismatch = fmt.Errorf("edge %v: formula %d, enumerated %d", e, formula, enum)
				return false
			}
			if enum > maxEnum {
				maxEnum = enum
			}
			if formula > maxFormula {
				maxFormula = formula
			}
			return true
		})
		if mismatch != nil {
			return t, mismatch
		}
		bound := uu.DecompositionCountBound()
		within := maxEnum <= bound
		tight := maxEnum == bound
		t.AddRow(fi(d), fi(k), u2(uu.N()), u2(maxFormula), u2(maxEnum), u2(bound), yes(within), yes(tight))
		if !within {
			return t, fmt.Errorf("d=%d k=%d: count %d exceeds bound %d", d, k, maxEnum, bound)
		}
	}
	return t, nil
}

// u2 is a local alias: some files shadow u as a variable name.
func u2(v uint64) string { return fu(v) }
