package analysis

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/grid"
	"repro/internal/octree"
)

// ExtOctree exercises the Morton-keyed Barnes–Hut tree (Warren & Salmon
// [26], the paper's flagship SFC application): a θ sweep showing the
// accuracy/work trade-off of the multipole acceptance criterion on a
// clustered mass distribution.
func ExtOctree(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "ext-octree",
		Title: "Morton-keyed Barnes–Hut tree (Warren & Salmon)",
		Caption: "Force evaluation on probe bodies attracted by a clustered mass, versus the exact direct sum. " +
			"Growing θ cuts the per-force work from Θ(n) towards Θ(log n) while the relative error stays small; " +
			"θ=0 reproduces the direct sum exactly.",
		Columns: []string{"d", "k", "bodies", "theta", "mean rel err", "mean interactions", "direct interactions"},
	}
	d, k := 2, 6
	clusterN := 3000
	probes := 40
	if cfg.Quick {
		clusterN = 800
		probes = 15
	}
	u := grid.MustNew(d, k)
	rng := rand.New(rand.NewSource(cfg.Seed))
	side := float64(u.Side())
	var bodies []octree.Body
	for i := 0; i < clusterN; i++ {
		// Two clusters pull the probes in a nontrivial direction.
		cx, cy := side/8, side/8
		if i%3 == 0 {
			cx, cy = side/2, side/8
		}
		bodies = append(bodies, octree.Body{
			Pos:  []float64{cx + rng.Float64()*side/10, cy + rng.Float64()*side/10},
			Mass: 1,
		})
	}
	for i := 0; i < probes; i++ {
		bodies = append(bodies, octree.Body{
			Pos:  []float64{side*3/4 + rng.Float64()*side/8, side*3/4 + rng.Float64()*side/8},
			Mass: 1e-3,
		})
	}
	tree, err := octree.Build(u, bodies, octree.Config{LeafSize: 8})
	if err != nil {
		return nil, err
	}
	if err := tree.Validate(); err != nil {
		return nil, err
	}
	force := make([]float64, d)
	direct := make([]float64, d)
	var prevErr float64
	for _, theta := range []float64{0, 0.3, 0.6, 1.0} {
		var errSum float64
		var work int
		samples := 0
		for i := 0; i < tree.Len(); i++ {
			if tree.BodyMass(i) > 1e-2 {
				continue
			}
			st := tree.Force(i, theta, force)
			tree.DirectForce(i, direct)
			var diff2, mag2 float64
			for j := 0; j < d; j++ {
				diff := force[j] - direct[j]
				diff2 += diff * diff
				mag2 += direct[j] * direct[j]
			}
			errSum += math.Sqrt(diff2 / mag2)
			work += st.DirectPairs + st.Approximated
			samples++
		}
		meanErr := errSum / float64(samples)
		meanWork := float64(work) / float64(samples)
		t.AddRow(fi(d), fi(k), fi(len(bodies)), ff(theta), ff(meanErr), fr(meanWork), fi(tree.Len()-1))
		switch {
		case theta == 0 && meanErr > 1e-12:
			return t, fmt.Errorf("θ=0 error %v, want exact", meanErr)
		case theta > 0 && meanErr > 0.05:
			return t, fmt.Errorf("θ=%v error %v too large", theta, meanErr)
		case theta >= 0.6 && meanWork*5 > float64(tree.Len()):
			return t, fmt.Errorf("θ=%v work %v not ≪ n", theta, meanWork)
		}
		prevErr = meanErr
	}
	_ = prevErr
	return t, nil
}
