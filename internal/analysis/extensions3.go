package analysis

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/query"
	"repro/internal/store"
)

// ExtIO runs the secondary-memory workload ([9]/[14] in the related work):
// a paged B+-tree over SFC keys, charged per page read, under (a) a batch
// of square box queries and (b) a neighbor-stencil sweep against a small
// LRU cache.
func ExtIO(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "ext-io",
		Title: "Secondary-memory I/O per curve (paged B+-tree)",
		Caption: "Box-query descents track the clustering metric (hilbert < z); stencil-sweep page faults track " +
			"NN-stretch (structured curves ≪ random). Two different locality properties, two different winners.",
		Columns: []string{"d", "k", "records", "curve", "box descents", "box leaf reads", "sweep faults"},
	}
	d, k := 2, 6
	records := 6000
	if cfg.Quick {
		k = 5
		records = 2000
	}
	u := grid.MustNew(d, k)
	rng := rand.New(rand.NewSource(cfg.Seed))
	recs := make([]store.Record, records)
	for i := range recs {
		p := u.NewPoint()
		for j := range p {
			p[j] = uint32(rng.Intn(int(u.Side())))
		}
		recs[i] = store.Record{Point: p, Payload: uint64(i)}
	}
	type result struct{ descents, leafReads, sweepFaults int }
	results := map[string]result{}
	for _, name := range curve.Names() {
		c, err := curve.ByName(name, u, cfg.Seed)
		if err != nil {
			return nil, err
		}
		st, err := store.Bulkload(c, recs, store.Config{PageSize: 32, Fanout: 16})
		if err != nil {
			return nil, err
		}
		// Batch of square box queries tiling the domain.
		step := u.Side() / 4
		for x := uint32(0); x+step <= u.Side(); x += step {
			for y := uint32(0); y+step <= u.Side(); y += step {
				b, err := query.NewBox(u, u.MustPoint(x+1, y+1), u.MustPoint(x+step-2, y+step-2))
				if err != nil {
					return nil, err
				}
				st.BoxQuery(b)
			}
		}
		boxStats := st.Stats()
		sweep, err := st.NeighborSweep(8)
		if err != nil {
			return nil, err
		}
		results[name] = result{boxStats.Descents, boxStats.LeafReads, sweep.LeafReads}
		t.AddRow(fi(d), fi(k), fi(records), name,
			fi(boxStats.Descents), fi(boxStats.LeafReads), fi(sweep.LeafReads))
	}
	if results["hilbert"].descents >= results["z"].descents {
		return t, fmt.Errorf("hilbert box descents %d not below z %d",
			results["hilbert"].descents, results["z"].descents)
	}
	for _, name := range []string{"hilbert", "z", "simple", "snake"} {
		if results[name].sweepFaults*2 > results["random"].sweepFaults {
			return t, fmt.Errorf("%s sweep faults %d not ≪ random %d",
				name, results[name].sweepFaults, results["random"].sweepFaults)
		}
	}
	return t, nil
}

// ExtDist reports the per-cell δavg distribution, exposing how each curve
// achieves its Davg: concentrated (simple/snake/diagonal) versus heavy-
// tailed (Z/Gray/Hilbert) — structure invisible to the average alone.
func ExtDist(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "ext-dist",
		Title: "Per-cell δavg distribution",
		Caption: "Quantiles of δavg over cells. Mean equals Davg (cross-checked). The row-major curves are tightly " +
			"concentrated; the hierarchical curves pay for the same mean with a heavy tail of boundary-crossing cells.",
		Columns: []string{"d", "k", "n", "curve", "mean (=Davg)", "p50", "p90", "p99", "max"},
	}
	d := 2
	k := maxK(d, cfg.MaxExactN)
	if k > 9 {
		k = 9 // distribution materializes n float64s; keep tables readable
	}
	u := grid.MustNew(d, k)
	cs, err := sweepCurves(cfg, u)
	if err != nil {
		return nil, err
	}
	for _, c := range cs {
		dist, err := core.DeltaAvgDistribution(c, cfg.Workers)
		if err != nil {
			return nil, err
		}
		davg := core.DAvg(c, cfg.Workers)
		if abs(dist.Mean-davg) > 1e-9*(1+davg) {
			return t, fmt.Errorf("%s: distribution mean %v != Davg %v", c.Name(), dist.Mean, davg)
		}
		t.AddRow(fi(d), fi(k), fu(u.N()), c.Name(),
			ff(dist.Mean), ff(dist.P50), ff(dist.P90), ff(dist.P99), ff(dist.Max))
	}
	return t, nil
}
