// Package analysis is the experiment harness: it regenerates, as numeric
// tables, every verifiable artifact of the paper — the four figures, the
// theorems, the lemmas with measurable content, and the propositions — plus
// the extension experiments listed in DESIGN.md. Each experiment both
// produces a human-readable table and *asserts* the paper's claim,
// returning an error if the reproduction ever contradicts the paper.
package analysis

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string   // experiment identifier, e.g. "thm1"
	Title   string   // short human title
	Caption string   // what the table shows and what to look for
	Columns []string // header cells
	Rows    [][]string
}

// AddRow appends a row; the cell count must match the header.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("analysis: row of %d cells for %d columns in %s", len(cells), len(t.Columns), t.ID))
	}
	t.Rows = append(t.Rows, cells)
}

// Markdown renders the table as GitHub-flavored Markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n\n", t.Caption)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quoting cells that need it).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// JSON renders the table as a machine-readable object with the experiment
// metadata and rows as column-keyed maps.
func (t *Table) JSON() string {
	doc := struct {
		ID      string              `json:"id"`
		Title   string              `json:"title"`
		Caption string              `json:"caption,omitempty"`
		Columns []string            `json:"columns"`
		Rows    []map[string]string `json:"rows"`
	}{ID: t.ID, Title: t.Title, Caption: t.Caption, Columns: t.Columns}
	for _, row := range t.Rows {
		m := make(map[string]string, len(row))
		for i, cell := range row {
			m[t.Columns[i]] = cell
		}
		doc.Rows = append(doc.Rows, m)
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		// The document is strings-only; marshalling cannot fail in practice.
		return fmt.Sprintf(`{"id":%q,"error":%q}`, t.ID, err)
	}
	return string(b)
}

// Text renders the table as aligned plain text for terminal output.
func (t *Table) Text() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// f formats a float compactly for table cells.
func ff(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// fr formats a ratio with fixed precision, the main convergence indicator
// in the tables.
func fr(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// u formats an unsigned integer.
func fu(v uint64) string { return strconv.FormatUint(v, 10) }

// i formats an int.
func fi(v int) string { return strconv.Itoa(v) }

// yes renders a boolean check cell.
func yes(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}
