package analysis

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/grid"
)

// Prop1 checks the lower bound on the average-maximum NN-stretch:
// Dmax(π) ≥ Davg(π) ≥ Theorem-1 bound, for every curve.
func Prop1(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "prop1",
		Title: "Lower bound on the average-maximum NN-stretch",
		Caption: "Dmax ≥ Davg ≥ Thm1 bound (Proposition 1). The simple curve sits a full factor d above the bound " +
			"— the gap the paper's §VI lists as open.",
		Columns: []string{"d", "k", "n", "curve", "Dmax", "Davg", "Thm1 bound", "Dmax/bound", "holds"},
	}
	for _, d := range cfg.Dims {
		k := maxK(d, cfg.MaxExactN)
		u := grid.MustNew(d, k)
		lb := bounds.NNMaxLowerBound(d, k)
		cs, err := sweepCurves(cfg, u)
		if err != nil {
			return nil, err
		}
		for _, c := range cs {
			nn := core.NNStretchResult(c, cfg.Workers)
			ok := nn.DMax >= nn.DAvg-1e-9 && nn.DMax >= lb-1e-9
			t.AddRow(fi(d), fi(k), fu(u.N()), c.Name(), ff(nn.DMax), ff(nn.DAvg), ff(lb), fr(nn.DMax/lb), yes(ok))
			if !ok {
				return t, fmt.Errorf("%s on %v: Dmax %v vs Davg %v vs bound %v", c.Name(), u, nn.DMax, nn.DAvg, lb)
			}
		}
	}
	return t, nil
}

// Prop2 checks the exact identity Dmax(simple) = n^(1−1/d).
func Prop2(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "prop2",
		Title: "Dmax of the simple curve",
		Caption: "Every cell has a dimension-d neighbor at curve distance exactly n^(1−1/d), " +
			"so Dmax(S) = n^(1−1/d) with no asymptotics (Proposition 2).",
		Columns: []string{"d", "k", "n", "Dmax measured", "n^(1−1/d)", "equal"},
	}
	for _, d := range cfg.Dims {
		for _, k := range kSweep(d, cfg.MaxExactN) {
			u := grid.MustNew(d, k)
			s := curve.NewSimple(u)
			max := core.DMax(s, cfg.Workers)
			want := bounds.SimpleDMaxExact(d, k)
			ok := abs(max-want) < 1e-9*(1+want)
			t.AddRow(fi(d), fi(k), fu(u.N()), ff(max), ff(want), yes(ok))
			if !ok {
				return t, fmt.Errorf("Dmax(S) on %v: %v, want %v", u, max, want)
			}
		}
	}
	return t, nil
}

// Prop3 checks the all-pairs stretch lower bounds for every curve, under
// both metrics, by exact O(n²) computation.
func Prop3(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "prop3",
		Title: "All-pairs stretch lower bounds",
		Caption: "str_avg,M ≥ (1/3d)(n+1)/(s−1) and str_avg,E ≥ (1/3√d)(n+1)/(s−1) for every SFC (Proposition 3); " +
			"exact over all pairs.",
		Columns: []string{"d", "k", "n", "curve", "str_M", "LB_M", "str_M/LB", "str_E", "LB_E", "str_E/LB", "holds"},
	}
	for _, d := range cfg.Dims {
		k := maxK(d, cfg.MaxPairsN)
		u := grid.MustNew(d, k)
		if u.N() < 2 {
			continue
		}
		lbM := bounds.AllPairsManhattanLB(d, k)
		lbE := bounds.AllPairsEuclideanLB(d, k)
		cs, err := sweepCurves(cfg, u)
		if err != nil {
			return nil, err
		}
		for _, c := range cs {
			strM, err := core.AllPairsStretch(c, core.Manhattan, cfg.Workers)
			if err != nil {
				return nil, err
			}
			strE, err := core.AllPairsStretch(c, core.Euclidean, cfg.Workers)
			if err != nil {
				return nil, err
			}
			ok := strM >= lbM-1e-9 && strE >= lbE-1e-9
			t.AddRow(fi(d), fi(k), fu(u.N()), c.Name(),
				ff(strM), ff(lbM), fr(strM/lbM), ff(strE), ff(lbE), fr(strE/lbE), yes(ok))
			if !ok {
				return t, fmt.Errorf("%s on %v: stretch (%v, %v) below bounds (%v, %v)",
					c.Name(), u, strM, strE, lbM, lbE)
			}
		}
	}
	return t, nil
}

// Prop4 checks the simple curve's all-pairs upper bounds, including the
// pointwise Lemma 7 bounds on the worst pair.
func Prop4(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "prop4",
		Title: "All-pairs stretch of the simple curve",
		Caption: "str_avg,M(S) ≤ n^(1−1/d) and str_avg,E(S) ≤ √2·n^(1−1/d) (Proposition 4); " +
			"the max-pair columns verify Lemma 7's pointwise version.",
		Columns: []string{"d", "k", "n", "str_M", "UB_M", "max-pair_M", "str_E", "UB_E", "max-pair_E", "holds"},
	}
	for _, d := range cfg.Dims {
		k := maxK(d, cfg.MaxPairsN)
		u := grid.MustNew(d, k)
		if u.N() < 2 {
			continue
		}
		s := curve.NewSimple(u)
		strM, err := core.AllPairsStretch(s, core.Manhattan, cfg.Workers)
		if err != nil {
			return nil, err
		}
		strE, err := core.AllPairsStretch(s, core.Euclidean, cfg.Workers)
		if err != nil {
			return nil, err
		}
		maxM, err := core.MaxPairStretch(s, core.Manhattan, cfg.Workers)
		if err != nil {
			return nil, err
		}
		maxE, err := core.MaxPairStretch(s, core.Euclidean, cfg.Workers)
		if err != nil {
			return nil, err
		}
		ubM := bounds.SimpleAllPairsManhattanUB(d, k)
		ubE := bounds.SimpleAllPairsEuclideanUB(d, k)
		ok := strM <= ubM+1e-9 && strE <= ubE+1e-9 && maxM <= ubM+1e-9 && maxE <= ubE+1e-9
		t.AddRow(fi(d), fi(k), fu(u.N()),
			ff(strM), ff(ubM), ff(maxM), ff(strE), ff(ubE), ff(maxE), yes(ok))
		if !ok {
			return t, fmt.Errorf("simple curve on %v exceeds Prop 4/Lemma 7 bounds", u)
		}
	}
	return t, nil
}
