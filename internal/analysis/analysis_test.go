package analysis

import (
	"encoding/json"
	"strings"
	"testing"
)

func testConfig(t *testing.T) Config {
	t.Helper()
	cfg := QuickConfig()
	if !testing.Short() {
		cfg = DefaultConfig()
		// Keep the full-suite runtime moderate while still exercising real
		// convergence sizes.
		cfg.MaxExactN = 1 << 18
		cfg.MaxPairsN = 1 << 11
		cfg.Samples = 50_000
	}
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := QuickConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.Dims = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("empty dims accepted")
	}
	bad = DefaultConfig()
	bad.Dims = []int{0}
	if err := bad.Validate(); err == nil {
		t.Fatal("d=0 accepted")
	}
	bad = DefaultConfig()
	bad.MaxExactN = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("tiny cap accepted")
	}
	bad = DefaultConfig()
	bad.Samples = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("1 sample accepted")
	}
}

func TestKSweep(t *testing.T) {
	ks := kSweep(2, 1<<16)
	if ks[len(ks)-1] != 8 {
		t.Fatalf("kSweep(2, 2^16) tops at %d, want 8", ks[len(ks)-1])
	}
	for i := 1; i < len(ks); i++ {
		if ks[i-1] >= ks[i] {
			t.Fatalf("kSweep not ascending: %v", ks)
		}
	}
	if ks[0] != 1 {
		t.Fatalf("kSweep must include k=1: %v", ks)
	}
	if maxK(3, 1<<10) != 3 {
		t.Fatalf("maxK(3, 2^10) = %d", maxK(3, 1<<10))
	}
	// maxK never exceeds the key-width budget even for huge limits.
	if got := maxK(1, 1<<63-1); got > 62 {
		t.Fatalf("maxK(1, huge) = %d", got)
	}
}

func TestRegistry(t *testing.T) {
	es := Experiments()
	if len(es) != 35 {
		t.Fatalf("%d experiments", len(es))
	}
	seen := map[string]bool{}
	for _, e := range es {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := ByID("thm1"); !ok {
		t.Fatal("ByID(thm1) missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID(nope) found")
	}
	if len(IDs()) != len(es) {
		t.Fatal("IDs length mismatch")
	}
}

func TestRunSomeUnknownID(t *testing.T) {
	if _, err := RunSome(QuickConfig(), []string{"bogus"}); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestRunSomeBadConfig(t *testing.T) {
	bad := QuickConfig()
	bad.Dims = nil
	if _, err := RunSome(bad, []string{"fig1"}); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := RunAll(bad); err == nil {
		t.Fatal("bad config accepted by RunAll")
	}
}

// TestEveryExperimentPasses is the integration test of the reproduction:
// every figure, lemma, theorem and proposition of the paper must verify.
func TestEveryExperimentPasses(t *testing.T) {
	cfg := testConfig(t)
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tbl, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if tbl == nil || len(tbl.Rows) == 0 {
				t.Fatalf("%s: empty table", e.ID)
			}
			if tbl.ID != e.ID {
				t.Fatalf("table id %q for experiment %q", tbl.ID, e.ID)
			}
			// No row may carry a failed check cell.
			for _, row := range tbl.Rows {
				for _, cell := range row {
					if cell == "NO" {
						t.Fatalf("%s: failed check in row %v", e.ID, row)
					}
				}
			}
		})
	}
}

func TestTableRenderers(t *testing.T) {
	tbl := &Table{
		ID:      "x",
		Title:   "T",
		Caption: "C",
		Columns: []string{"a", "b"},
	}
	tbl.AddRow("1", "two,with comma")
	tbl.AddRow("3", `quote"inside`)
	md := tbl.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "### x — T") {
		t.Fatalf("markdown:\n%s", md)
	}
	csv := tbl.CSV()
	if !strings.Contains(csv, `"two,with comma"`) || !strings.Contains(csv, `"quote""inside"`) {
		t.Fatalf("csv quoting:\n%s", csv)
	}
	txt := tbl.Text()
	if !strings.Contains(txt, "a") || !strings.Contains(txt, "---") {
		t.Fatalf("text:\n%s", txt)
	}
	js := tbl.JSON()
	if !strings.Contains(js, `"id": "x"`) || !strings.Contains(js, `"two,with comma"`) {
		t.Fatalf("json:\n%s", js)
	}
	var parsed struct {
		ID   string              `json:"id"`
		Rows []map[string]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(js), &parsed); err != nil {
		t.Fatalf("json does not parse: %v", err)
	}
	if parsed.ID != "x" || len(parsed.Rows) != 2 || parsed.Rows[0]["b"] != "two,with comma" {
		t.Fatalf("json content wrong: %+v", parsed)
	}
}

func TestAddRowArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	tbl := &Table{ID: "x", Columns: []string{"a", "b"}}
	tbl.AddRow("only one")
}

func TestFormatHelpers(t *testing.T) {
	if ff(1.5) != "1.5" || fr(1.23456) != "1.2346" || fu(7) != "7" || fi(-2) != "-2" {
		t.Fatal("format helpers wrong")
	}
	if yes(true) != "yes" || yes(false) != "NO" {
		t.Fatal("yes() wrong")
	}
}

func TestConvergenceTolerance(t *testing.T) {
	if convergenceTolerance(2, 20) != 0.02 {
		t.Fatal("floor not applied")
	}
	if convergenceTolerance(4, 1) != 0.5 {
		t.Fatal("cap not applied")
	}
	mid := convergenceTolerance(2, 6)
	if mid <= 0.02 || mid >= 0.5 {
		t.Fatalf("mid tolerance %v", mid)
	}
}
