package analysis

import (
	"fmt"
	"math"

	"repro/internal/amr"
	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/partition"
)

// ExtOptimal exhaustively searches all n! bijections of tiny universes for
// the truly optimal SFC, quantifying the slack of the Theorem 1 bound at
// the only sizes where the optimum is computable. On the 2×2 grid the
// optimum Davg is 1.5 — attained by Figure 1's π1, confirming the paper's
// worked example is not just an illustration but the best possible curve.
func ExtOptimal(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "ext-optimal",
		Title: "Exhaustively optimal SFCs on tiny universes",
		Caption: "Minimum Davg/Dmax over ALL n! bijections versus the Theorem 1 bound. " +
			"The bound is never violated; its finite-n slack (opt/bound) shrinks with n, consistent with Theorem 2's " +
			"asymptotic factor 1.5.",
		Columns: []string{"d", "k", "n", "n!", "opt Davg", "Thm1 bound", "opt/bound", "opt Dmax", "Dmax/bound"},
	}
	for _, dk := range [][2]int{{1, 1}, {1, 2}, {2, 1}, {1, 3}, {3, 1}} {
		d, k := dk[0], dk[1]
		u := grid.MustNew(d, k)
		opt, err := core.ExhaustiveOptimal(u)
		if err != nil {
			return nil, err
		}
		lb := bounds.NNAvgLowerBound(d, k)
		if opt.MinDAvg < lb-1e-12 {
			return t, fmt.Errorf("d=%d k=%d: optimum %v beats the Theorem 1 bound %v", d, k, opt.MinDAvg, lb)
		}
		t.AddRow(fi(d), fi(k), fu(u.N()), fu(opt.Searched),
			ff(opt.MinDAvg), ff(lb), fr(opt.MinDAvg/lb), ff(opt.MinDMax), fr(opt.MinDMax/lb))
	}
	// Cross-check the Figure 1 tie-in: the 2×2 optimum equals π1's Davg.
	_, pi1, _, err := fig1Universe()
	if err != nil {
		return nil, err
	}
	u22 := grid.MustNew(2, 1)
	opt, err := core.ExhaustiveOptimal(u22)
	if err != nil {
		return nil, err
	}
	if pi1Avg := core.DAvg(pi1, cfg.Workers); abs(pi1Avg-opt.MinDAvg) > 1e-12 {
		return t, fmt.Errorf("Figure 1's π1 (Davg %v) is not optimal (optimum %v)", pi1Avg, opt.MinDAvg)
	}
	return t, nil
}

// ExtDrift simulates a drifting hotspot workload repartitioned each step
// (Pilkington & Baden's dynamic partitioning scenario [23]): SFC
// repartitioning slides segment boundaries, so the migration volume stays a
// small fraction of the domain, versus the (p−1)/p ≈ 1 fraction a
// structure-less reassignment would move.
func ExtDrift(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "ext-drift",
		Title: "Incremental repartitioning under workload drift",
		Caption: "A Gaussian hotspot drifts across the domain; each step the weighted partition is recomputed. " +
			"Columns report the mean fraction of cells migrating per step — far below the ~(p−1)/p of naive " +
			"reassignment — while the post-rebalance imbalance stays ≈ 1.",
		Columns: []string{"d", "k", "parts", "curve", "steps", "mean moved frac", "max moved frac", "max imbalance"},
	}
	d, k := 2, 6
	parts := 8
	// The hotspot hops side/(steps+1) cells per step; keep that a modest
	// fraction of the domain so "incremental" is well defined at any size.
	steps := 6
	if cfg.Quick {
		k = 5
	}
	u := grid.MustNew(d, k)
	sigma := float64(u.Side()) / 8
	makeWeight := func(c curve.Curve, cx, cy float64) partition.Weight {
		p := u.NewPoint()
		return func(pos uint64) float64 {
			c.Point(pos, p)
			dx := float64(p[0]) - cx
			dy := float64(p[1]) - cy
			return 0.05 + math.Exp(-(dx*dx+dy*dy)/(2*sigma*sigma))
		}
	}
	for _, name := range []string{"hilbert", "z", "simple"} {
		c, err := curve.ByName(name, u, cfg.Seed)
		if err != nil {
			return nil, err
		}
		w0 := makeWeight(c, 0, float64(u.Side())/2)
		pt, err := partition.Weighted(c, parts, w0)
		if err != nil {
			return nil, err
		}
		var sumFrac, maxFrac, maxIb float64
		for s := 1; s <= steps; s++ {
			cx := float64(s) * float64(u.Side()) / float64(steps+1)
			w := makeWeight(c, cx, float64(u.Side())/2)
			next, mig, err := pt.Rebalance(w)
			if err != nil {
				return nil, err
			}
			sumFrac += mig.MovedFrac
			if mig.MovedFrac > maxFrac {
				maxFrac = mig.MovedFrac
			}
			if ib := partition.Imbalance(next.Loads(w)); ib > maxIb {
				maxIb = ib
			}
			pt = next
		}
		mean := sumFrac / float64(steps)
		naive := float64(parts-1) / float64(parts)
		t.AddRow(fi(d), fi(k), fi(parts), name, fi(steps), ff(mean), ff(maxFrac), fr(maxIb))
		if mean > naive/2 {
			return t, fmt.Errorf("%s: mean migration %v not ≪ naive %v", name, mean, naive)
		}
		if maxIb > 1.2 {
			return t, fmt.Errorf("%s: post-rebalance imbalance %v", name, maxIb)
		}
	}
	return t, nil
}

// ExtAMR exercises adaptive mesh refinement over hierarchical curves
// (Parashar & Browne [22]): a hotspot-graded mesh is built over each
// hierarchical curve, validated structurally, and partitioned into
// contiguous leaf segments.
func ExtAMR(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "ext-amr",
		Title: "Adaptive mesh refinement over hierarchical curves",
		Caption: "A hotspot-refined mesh: refinement splices children in place (the hierarchical-curve property), " +
			"leaf counts stay far below the uniformly-fine grid, and contiguous leaf partitions balance the load.",
		Columns: []string{"d", "k", "curve", "leaves", "finest n", "adaptivity", "parts", "imbalance", "valid"},
	}
	d, k := 2, 7
	parts := 8
	if cfg.Quick {
		k = 5
	}
	u := grid.MustNew(d, k)
	center := float64(u.Side()) / 2
	for _, name := range []string{"z", "hilbert", "gray"} {
		c, err := curve.ByName(name, u, cfg.Seed)
		if err != nil {
			return nil, err
		}
		m, err := amr.NewMesh(c, 2)
		if err != nil {
			return nil, err
		}
		// Grade refinement by distance to the domain center: finer close in.
		err = m.RefineWhere(k, func(corner grid.Point, size uint32, level int) bool {
			cx := float64(corner[0]) + float64(size)/2 - center
			cy := float64(corner[1]) + float64(size)/2 - center
			r := cx*cx + cy*cy
			radius := center * center / float64(uint64(1)<<uint(level))
			return r < radius
		})
		if err != nil {
			return nil, err
		}
		if err := m.Validate(); err != nil {
			return t, fmt.Errorf("%s: %w", name, err)
		}
		cuts, err := m.Partition(parts, amr.UnitLeafWeight)
		if err != nil {
			return nil, err
		}
		ib := partition.Imbalance(m.PartLoads(cuts, amr.UnitLeafWeight))
		adaptivity := float64(m.Len()) / float64(u.N())
		ok := adaptivity < 0.5 && ib < 1.5
		t.AddRow(fi(d), fi(k), name, fi(m.Len()), fu(u.N()), ff(adaptivity), fi(parts), fr(ib), yes(ok))
		if !ok {
			return t, fmt.Errorf("%s: adaptivity %v, imbalance %v", name, adaptivity, ib)
		}
	}
	return t, nil
}
