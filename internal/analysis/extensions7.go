package analysis

import (
	"fmt"

	"repro/internal/conformance"
)

// ExtConform runs the conformance engine as an experiment: every registered
// curve crossed with every stretch engine under the invariant, differential
// and metamorphic check layers (see the conformance package). The table
// aggregates the matrix per curve and layer; the experiment fails if any
// check instance fails, making the cross-engine agreement itself a
// reproducible deliverable.
func ExtConform(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "ext-conform",
		Title: "Conformance: cross-engine agreement for every curve",
		Caption: "Check instances per curve and layer across d ∈ {1,2,3}. Differential checks compare the " +
			"sequential oracle, parallel engine, torus engine, table shadow, Monte-Carlo samplers and closed " +
			"forms; metamorphic checks assert isometry invariance, refinement monotonicity and the paper's bounds. " +
			"A green experiment means all engines agree within documented ulp tolerances.",
		Columns: []string{"curve", "layer", "passed", "failed", "skipped"},
	}
	ccfg := conformance.Full()
	if cfg.Quick {
		ccfg = conformance.Quick()
	}
	ccfg.Seed = cfg.Seed
	if cfg.Workers > 0 {
		ccfg.Workers = []int{1, cfg.Workers}
	}
	rep, err := conformance.Run(ccfg)
	if err != nil {
		return nil, err
	}
	type key struct {
		curve string
		layer conformance.Layer
	}
	counts := map[key]*[3]int{}
	for _, res := range rep.Results {
		k := key{res.Curve, res.Layer}
		c := counts[k]
		if c == nil {
			c = &[3]int{}
			counts[k] = c
		}
		switch res.Status {
		case conformance.Pass:
			c[0]++
		case conformance.Fail:
			c[1]++
		case conformance.Skip:
			c[2]++
		}
	}
	layers := []conformance.Layer{conformance.Invariant, conformance.Differential, conformance.Metamorphic}
	for _, name := range rep.Curves() {
		for _, layer := range layers {
			c := counts[key{name, layer}]
			if c == nil {
				continue
			}
			t.AddRow(name, string(layer), fi(c[0]), fi(c[1]), fi(c[2]))
		}
	}
	if !rep.OK() {
		f := rep.Failures()[0]
		return t, fmt.Errorf("%d conformance failures; first: %s [%s] %s: %s",
			len(rep.Failures()), f.Case(), f.Layer, f.Check, f.Detail)
	}
	return t, nil
}
