package analysis

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/nbody"
	"repro/internal/partition"
)

// ExtHilbert measures the average NN-stretch of the Hilbert curve — the
// first open question of the paper's §VI — alongside the Z curve.
func ExtHilbert(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "ext-hilbert",
		Title: "Average NN-stretch of the Hilbert curve (open question, §VI)",
		Caption: "Empirically the Hilbert curve obeys the same Θ(n^(1−1/d)) law as the Z curve: " +
			"its ratio to the Theorem 1 bound stays bounded (and slightly better than Z's 1.5 in low dimensions).",
		Columns: []string{"d", "k", "n", "Davg(hilbert)", "Davg(z)", "hilbert/z", "hilbert/bound", "z/bound"},
	}
	for _, d := range cfg.Dims {
		for _, k := range kSweep(d, cfg.MaxExactN) {
			u := grid.MustNew(d, k)
			if u.N() < 4 {
				continue
			}
			hd := core.DAvg(curve.NewHilbert(u), cfg.Workers)
			zd := core.DAvg(curve.NewZ(u), cfg.Workers)
			lb := bounds.NNAvgLowerBound(d, k)
			t.AddRow(fi(d), fi(k), fu(u.N()), ff(hd), ff(zd), fr(hd/zd), fr(hd/lb), fr(zd/lb))
			if hd < lb-1e-9 {
				return t, fmt.Errorf("hilbert violates Theorem 1 on %v", u)
			}
			if hd > 3*zd {
				return t, fmt.Errorf("hilbert stretch %v not within 3× of Z %v on %v", hd, zd, u)
			}
		}
	}
	return t, nil
}

// ExtCluster contrasts the stretch metric with Moon et al.'s clustering
// metric: mean number of curve runs covering square query regions.
func ExtCluster(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "ext-cluster",
		Title: "Clustering metric (Moon et al.) across curves",
		Caption: "Mean number of contiguous curve segments per square query. Hilbert beats Z (the related-work result); " +
			"the row-major curves excel here despite sharing Z's NN-stretch — the two metrics rank curves differently.",
		Columns: []string{"d", "k", "square side", "curve", "mean clusters", "max clusters", "regions"},
	}
	d, k := 2, 6
	if cfg.Quick {
		k = 5
	}
	u := grid.MustNew(d, k)
	var zMean, hMean map[uint32]float64
	zMean = map[uint32]float64{}
	hMean = map[uint32]float64{}
	for _, size := range []uint32{2, 4, 8} {
		for _, name := range curve.Names() {
			c, err := curve.ByName(name, u, cfg.Seed)
			if err != nil {
				return nil, err
			}
			st, err := cluster.AvgClusters(c, cluster.Square(d, size), 1<<20)
			if err != nil {
				return nil, err
			}
			t.AddRow(fi(d), fi(k), fu(uint64(size)), name, ff(st.Mean), fi(st.Max), fi(st.Regions))
			switch name {
			case "z":
				zMean[size] = st.Mean
			case "hilbert":
				hMean[size] = st.Mean
			}
		}
	}
	for _, size := range []uint32{2, 4, 8} {
		if hMean[size] > zMean[size] {
			return t, fmt.Errorf("hilbert clusters %v worse than z %v at size %d", hMean[size], zMean[size], size)
		}
	}
	return t, nil
}

// ExtPartition evaluates SFC domain decomposition quality (the parallel-
// computing application of §I) across curves and processor counts.
func ExtPartition(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "ext-partition",
		Title: "Domain decomposition quality",
		Caption: "Contiguous-segment partitions of a 2-d universe: load imbalance, edge cut (communication volume) and " +
			"largest per-part surface. Proximity-preserving curves cut far fewer NN pairs than the random bijection.",
		Columns: []string{"d", "k", "parts", "curve", "imbalance", "edge cut", "max surface"},
	}
	d, k := 2, 7
	if cfg.Quick {
		k = 5
	}
	u := grid.MustNew(d, k)
	for _, parts := range []int{4, 16, 64} {
		cuts := map[string]uint64{}
		for _, name := range curve.Names() {
			c, err := curve.ByName(name, u, cfg.Seed)
			if err != nil {
				return nil, err
			}
			pt, err := partition.Uniform(c, parts)
			if err != nil {
				return nil, err
			}
			q := pt.Evaluate(nil, cfg.Workers)
			cuts[name] = q.EdgeCut
			t.AddRow(fi(d), fi(k), fi(parts), name, fr(q.Imbalance), fu(q.EdgeCut), fu(q.MaxSurface))
		}
		// Hierarchical curves must beat random decisively; the row-major
		// curves must still beat it, though their margin shrinks when the
		// per-part volume approaches a single row.
		for _, name := range []string{"z", "hilbert", "gray"} {
			if cuts[name]*2 > cuts["random"] {
				return t, fmt.Errorf("parts=%d: %s edge cut %d not ≪ random %d",
					parts, name, cuts[name], cuts["random"])
			}
		}
		for _, name := range []string{"simple", "snake"} {
			if cuts[name] >= cuts["random"] {
				return t, fmt.Errorf("parts=%d: %s edge cut %d not below random %d",
					parts, name, cuts[name], cuts["random"])
			}
		}
		if cuts["hilbert"] > cuts["simple"] {
			return t, fmt.Errorf("parts=%d: hilbert cut %d above simple %d — locality advantage lost",
				parts, cuts["hilbert"], cuts["simple"])
		}
	}
	return t, nil
}

// ExtNBody measures interaction locality in the N-body substrate: the mean
// curve distance between interacting neighbor cells, which Davg predicts.
func ExtNBody(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "ext-nbody",
		Title: "N-body interaction locality",
		Caption: "Mean and max curve distance between cells of interacting particle pairs after a short simulation. " +
			"Curves rank exactly as their Davg ranks them; the random bijection destroys memory locality.",
		Columns: []string{"d", "k", "particles", "curve", "Davg", "mean cell dist", "max cell dist", "interactions"},
	}
	d, k := 2, 5
	particles := 4000
	steps := 3
	if cfg.Quick {
		particles = 1000
		steps = 1
	}
	u := grid.MustNew(d, k)
	locality := map[string]float64{}
	for _, name := range curve.Names() {
		c, err := curve.ByName(name, u, cfg.Seed)
		if err != nil {
			return nil, err
		}
		sys, err := nbody.New(c, nbody.Config{Particles: particles, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		for s := 0; s < steps; s++ {
			sys.Step(0.02)
		}
		loc := sys.MeasureLocality()
		davg := core.DAvg(c, cfg.Workers)
		locality[name] = loc.MeanCellDist
		t.AddRow(fi(d), fi(k), fi(particles), name, ff(davg), ff(loc.MeanCellDist), fu(loc.MaxCellDist), fu(loc.Interactions))
	}
	for _, name := range []string{"z", "hilbert", "simple", "snake", "gray"} {
		if locality[name]*2 > locality["random"] {
			return t, fmt.Errorf("%s locality %v not ≪ random %v", name, locality[name], locality["random"])
		}
	}
	return t, nil
}
