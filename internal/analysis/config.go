package analysis

import (
	"fmt"
	"sort"

	"repro/internal/bits"
)

// Config sets the sweep sizes shared by all experiments. The zero value is
// not usable; start from DefaultConfig.
type Config struct {
	// Workers is the parallelism for exact metric sweeps (<= 0 means
	// GOMAXPROCS).
	Workers int
	// Seed drives every randomized component (random curves, samplers,
	// particle placements); experiments are deterministic given (Config).
	Seed int64
	// Dims is the set of dimensionalities swept (the paper's results hold
	// for any constant d).
	Dims []int
	// MaxExactN caps universe sizes for O(n·d) exact stretch sweeps.
	MaxExactN uint64
	// MaxPairsN caps universe sizes for O(n²) all-pairs sweeps.
	MaxPairsN uint64
	// Samples is the sample count for sampled estimators.
	Samples int
	// Quick shrinks sweeps (used by -short tests and smoke runs).
	Quick bool
}

// DefaultConfig returns the sweep used to generate EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{
		Workers:   0,
		Seed:      20120521, // IPDPS 2012 conference date
		Dims:      []int{1, 2, 3, 4},
		MaxExactN: 1 << 20,
		MaxPairsN: 1 << 12,
		Samples:   200_000,
		Quick:     false,
	}
}

// QuickConfig returns a reduced sweep for fast smoke tests.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.MaxExactN = 1 << 14
	cfg.MaxPairsN = 1 << 10
	cfg.Samples = 20_000
	cfg.Quick = true
	return cfg
}

// Validate reports configuration errors.
func (cfg Config) Validate() error {
	if len(cfg.Dims) == 0 {
		return fmt.Errorf("analysis: no dimensions configured")
	}
	for _, d := range cfg.Dims {
		if d < 1 || d > bits.MaxKeyBits {
			return fmt.Errorf("analysis: bad dimension %d", d)
		}
	}
	if cfg.MaxExactN < 4 || cfg.MaxPairsN < 4 {
		return fmt.Errorf("analysis: size caps too small")
	}
	if cfg.Samples < 2 {
		return fmt.Errorf("analysis: need at least 2 samples")
	}
	return nil
}

// maxK returns the largest k with 2^(d·k) <= limit (and d·k within the key
// budget), at least 1.
func maxK(d int, limit uint64) int {
	k := 1
	for (k+1)*d <= bits.MaxKeyBits && uint64(1)<<uint((k+1)*d) <= limit {
		k++
	}
	return k
}

// kSweep returns an ascending set of k values for dimension d ending at the
// largest size under limit: roughly four points spread towards the top so
// convergence trends are visible without quadratic table blowup.
func kSweep(d int, limit uint64) []int {
	top := maxK(d, limit)
	ks := map[int]bool{top: true}
	for _, back := range []int{1, 2, 4} {
		if top-back >= 1 {
			ks[top-back] = true
		}
	}
	ks[1] = true
	out := make([]int, 0, len(ks))
	for k := range ks {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
