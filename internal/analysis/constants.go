package analysis

import (
	"fmt"
	"math"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/grid"
)

// ExtConstants estimates, for every curve, the asymptotic constant
//
//	C(π) = lim_{n→∞} Davg(π) · d / n^(1−1/d)
//
// by Richardson extrapolation from the two largest exactly-measured sizes
// (boundary effects decay like 2^(−k), so C_k = C + A·2^(−k) and two points
// solve for C). The paper proves C = 1 for Z (Theorem 2) and simple
// (Theorem 3) and C ≥ 2/3 for every SFC (Theorem 1); the other curves'
// constants are empirical contributions of the reproduction: every one
// lands in the narrow band [2/3, C_gray], a vivid rendering of the paper's
// message that no curve can do better than a constant factor.
func ExtConstants(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "ext-constants",
		Title: "Asymptotic stretch constants C(π) = lim Davg·d/n^(1−1/d)",
		Caption: "Richardson-extrapolated from the two largest exact sweeps. Theorem 1 says C ≥ 2/3 for every " +
			"bijection; Theorems 2-3 prove C = 1 for z and simple. The rest are measured: the entire structured " +
			"family lives within a ~2× band above the optimum.",
		Columns: []string{"d", "curve", "C at k−1", "C at k", "C extrapolated", "C/bound (=3C/2)", "sane"},
	}
	for _, d := range cfg.Dims {
		if d < 2 {
			// In one dimension n^(1−1/d) = 1 and the Gray curve's Davg is
			// Θ(log n): the constant is only defined for d ≥ 2.
			continue
		}
		kTop := maxK(d, cfg.MaxExactN)
		if kTop < 4 {
			// The 2^(−k) Richardson model needs the boundary regime to
			// dominate; below side 16 higher-order terms bias the
			// extrapolation.
			continue
		}
		for _, name := range []string{"z", "simple", "snake", "hilbert", "gray", "diagonal"} {
			cPrev, err := stretchConstant(cfg, name, d, kTop-1)
			if err != nil {
				return nil, err
			}
			cTop, err := stretchConstant(cfg, name, d, kTop)
			if err != nil {
				return nil, err
			}
			// C_k = C + A·2^(−k): solve with the two points.
			a := (cPrev - cTop) / (math.Pow(2, -float64(kTop-1)) - math.Pow(2, -float64(kTop)))
			c := cTop - a*math.Pow(2, -float64(kTop))
			sane := c >= 2.0/3-0.02 && c < 4
			t.AddRow(fi(d), name, ff(cPrev), ff(cTop), ff(c), fr(c*3/2), yes(sane))
			if !sane {
				return t, fmt.Errorf("%s d=%d: extrapolated constant %v out of range", name, d, c)
			}
			switch name {
			case "z", "simple", "snake":
				if math.Abs(c-1) > 0.03 {
					return t, fmt.Errorf("%s d=%d: constant %v, theorems give 1", name, d, c)
				}
			case "gray":
				// This reproduction's conjecture: C(gray,d) = (2^d−1)/(2^d−2).
				if want := bounds.GrayAsymptoticConstant(d); math.Abs(c-want) > 0.03*want {
					return t, fmt.Errorf("gray d=%d: constant %v, conjecture %v", d, c, want)
				}
			}
		}
	}
	return t, nil
}

// stretchConstant measures Davg·d/n^(1−1/d) exactly at (d, k).
func stretchConstant(cfg Config, name string, d, k int) (float64, error) {
	u, err := grid.New(d, k)
	if err != nil {
		return 0, err
	}
	c, err := sweepCurveByName(cfg, name, u)
	if err != nil {
		return 0, err
	}
	davg := core.DAvg(c, cfg.Workers)
	return davg * float64(d) / float64(bounds.NPow1m1d(d, k)), nil
}
