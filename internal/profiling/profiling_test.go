package profiling

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestNoFlagsIsNoop(t *testing.T) {
	var c Config
	stop, err := c.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestProfilesAreWritten(t *testing.T) {
	dir := t.TempDir()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var c Config
	c.AddFlags(fs)
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	stop, err := c.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to hold.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

func TestStartFailsOnBadPath(t *testing.T) {
	c := Config{CPUPath: filepath.Join(t.TempDir(), "no", "such", "dir", "x")}
	if _, err := c.Start(); err == nil {
		t.Fatal("Start accepted an unwritable cpuprofile path")
	}
}
