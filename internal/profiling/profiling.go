// Package profiling wires the conventional -cpuprofile / -memprofile flags
// into the repository's CLIs so kernel and serving work can be profiled with
// `go tool pprof` without ad-hoc patches.
package profiling

import (
	"flag"
	"fmt"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
)

// Config holds the output paths of the standard profiling flags. The zero
// value (no paths) is valid and makes Start a no-op.
type Config struct {
	CPUPath string
	MemPath string
}

// AddFlags registers -cpuprofile and -memprofile on fs.
func (c *Config) AddFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.CPUPath, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&c.MemPath, "memprofile", "", "write a heap profile to this file on exit")
}

// AttachPprof registers the standard net/http/pprof handlers under
// /debug/pprof/ on mux. The daemon calls it only when profiling is
// explicitly enabled, so the endpoints never leak onto a mux by the side
// effect of an import.
func AttachPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
}

// Start begins CPU profiling if -cpuprofile was given. It returns a stop
// function that finishes the CPU profile and, if -memprofile was given,
// writes a heap profile; call Start after flag parsing and invoke stop on
// every exit path that should produce profiles.
func (c *Config) Start() (stop func() error, err error) {
	var cpuFile *os.File
	if c.CPUPath != "" {
		cpuFile, err = os.Create(c.CPUPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if c.MemPath != "" {
			f, err := os.Create(c.MemPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // flush recently-freed objects out of the heap profile
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}, nil
}
