// Package grid models the paper's universe: the d-dimensional grid of side
// 2^k per dimension, holding n = 2^(k·d) cells (§III of Xu & Tirthapura,
// "A Lower Bound on Proximity Preservation by Space Filling Curves",
// IPDPS 2012). It provides cell addressing, nearest-neighbor enumeration,
// the Manhattan/Euclidean metrics, and the nearest-neighbor decomposition
// p(α, β) on which the paper's lower-bound proof rests.
package grid

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/bits"
)

// Point is a cell of the universe: a d-tuple of coordinates, each in
// [0, 2^k). Index 0 is the paper's dimension 1.
type Point []uint32

// Clone returns a copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// String renders p as "(x1,x2,…,xd)".
func (p Point) String() string {
	s := "("
	for i, v := range p {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(v)
	}
	return s + ")"
}

// Universe is the d-dimensional grid of dimensions 2^k × … × 2^k.
type Universe struct {
	d    int    // number of dimensions (constant, >= 1)
	k    int    // log2 of the side length
	side uint32 // 2^k
	n    uint64 // total cells, 2^(k*d)
}

// ErrTooLarge is returned by New when d·k exceeds the key-width budget.
var ErrTooLarge = errors.New("grid: d*k exceeds 62 bits")

// New constructs the universe with d dimensions and side length 2^k.
// It returns an error unless d >= 1, k >= 0 and d·k <= 62 (so that cell
// indices, and index differences, fit comfortably in uint64/int64).
func New(d, k int) (*Universe, error) {
	if d < 1 {
		return nil, fmt.Errorf("grid: d = %d, need d >= 1", d)
	}
	if k < 0 {
		return nil, fmt.Errorf("grid: k = %d, need k >= 0", k)
	}
	if d*k > bits.MaxKeyBits {
		return nil, fmt.Errorf("%w: d=%d k=%d", ErrTooLarge, d, k)
	}
	return &Universe{d: d, k: k, side: 1 << uint(k), n: 1 << uint(d*k)}, nil
}

// MustNew is New for known-good parameters. It panics iff New would return
// an error (d or k out of range, or 2^(d·k) overflowing uint64). Intended
// for tests, examples and package-internal tables where (d, k) are literal
// constants; code handling caller-supplied dimensions must use New and
// propagate the error.
func MustNew(d, k int) *Universe {
	u, err := New(d, k)
	if err != nil {
		panic(err)
	}
	return u
}

// D returns the number of dimensions.
func (u *Universe) D() int { return u.d }

// K returns log2 of the side length.
func (u *Universe) K() int { return u.k }

// Side returns the side length 2^k.
func (u *Universe) Side() uint32 { return u.side }

// N returns the total number of cells, 2^(k·d).
func (u *Universe) N() uint64 { return u.n }

// String implements fmt.Stringer.
func (u *Universe) String() string {
	return fmt.Sprintf("grid(d=%d, side=2^%d, n=%d)", u.d, u.k, u.n)
}

// NewPoint returns a zeroed point with the universe's dimensionality.
func (u *Universe) NewPoint() Point { return make(Point, u.d) }

// Point builds a point from explicit coordinates, validating bounds.
func (u *Universe) Point(coords ...uint32) (Point, error) {
	if len(coords) != u.d {
		return nil, fmt.Errorf("grid: %d coordinates for d=%d", len(coords), u.d)
	}
	p := Point(coords).Clone()
	if !u.Contains(p) {
		return nil, fmt.Errorf("grid: point %v outside %v", p, u)
	}
	return p, nil
}

// MustPoint is Point for known-good coordinates. It panics iff Point would
// return an error (wrong arity or a coordinate outside the universe), so it
// is safe exactly for literal coordinates already bounded by the universe's
// side; code handling computed or external coordinates must use Point and
// propagate the error.
func (u *Universe) MustPoint(coords ...uint32) Point {
	p, err := u.Point(coords...)
	if err != nil {
		panic(err)
	}
	return p
}

// Contains reports whether p is a cell of the universe.
func (u *Universe) Contains(p Point) bool {
	if len(p) != u.d {
		return false
	}
	for _, v := range p {
		if v >= u.side {
			return false
		}
	}
	return true
}

// Linear returns the canonical row-major linear index of p:
//
//	Σ_{i=0}^{d-1} p[i] · side^i
//
// with dimension 1 (index 0) least significant. This matches the paper's
// "simple curve" numbering, eq. (8), and is the iteration order of Cells.
func (u *Universe) Linear(p Point) uint64 {
	var idx uint64
	for i := u.d - 1; i >= 0; i-- {
		idx = idx<<uint(u.k) | uint64(p[i])
	}
	return idx
}

// FromLinear writes into dst the point whose Linear index is idx.
// dst must have length d.
func (u *Universe) FromLinear(idx uint64, dst Point) {
	mask := uint64(u.side) - 1
	for i := 0; i < u.d; i++ {
		dst[i] = uint32(idx & mask)
		idx >>= uint(u.k)
	}
}

// Cells calls visit for every cell in Linear order, stopping early if visit
// returns false. The Point passed to visit is reused between calls; clone it
// if it must be retained.
func (u *Universe) Cells(visit func(idx uint64, p Point) bool) {
	p := u.NewPoint()
	for idx := uint64(0); idx < u.n; idx++ {
		u.FromLinear(idx, p)
		if !visit(idx, p) {
			return
		}
	}
}

// Degree returns |N(p)|: the number of Manhattan-distance-1 neighbors of p.
// Interior cells have 2d neighbors; cells on the boundary have fewer, but
// never fewer than d (for side >= 2).
func (u *Universe) Degree(p Point) int {
	deg := 0
	for _, v := range p {
		if v > 0 {
			deg++
		}
		if v+1 < u.side {
			deg++
		}
	}
	return deg
}

// BoundaryDims returns the number of dimensions in which p lies on the
// boundary (coordinate 0 or side-1). Zero means p is an interior cell.
// For side == 1 every dimension counts once.
func (u *Universe) BoundaryDims(p Point) int {
	b := 0
	for _, v := range p {
		if v == 0 || v == u.side-1 {
			b++
		}
	}
	return b
}

// Neighbors calls visit for every neighbor of p (cells at Manhattan distance
// exactly 1), passing the dimension along which the neighbor differs. The
// Point passed to visit is a reused scratch buffer; clone it to retain it.
func (u *Universe) Neighbors(p Point, visit func(dim int, q Point)) {
	u.NeighborsInto(p, p.Clone(), visit)
}

// NeighborsInto is Neighbors with caller-provided scratch: q (length d, not
// aliasing p) is overwritten with each neighbor in turn and passed to visit.
// Hot sweeps use it to hoist the per-call allocation out of their cell
// loops. Visit order is dimensions ascending, −1 before +1 within each.
func (u *Universe) NeighborsInto(p, q Point, visit func(dim int, q Point)) {
	copy(q, p)
	for i := 0; i < u.d; i++ {
		if p[i] > 0 {
			q[i] = p[i] - 1
			visit(i, q)
			q[i] = p[i]
		}
		if p[i]+1 < u.side {
			q[i] = p[i] + 1
			visit(i, q)
			q[i] = p[i]
		}
	}
}

// NeighborsTorusInto enumerates the periodic (wraparound) neighbors of p
// into the caller-provided scratch q, following the torus engine's
// simple-graph convention: per dimension the +1 neighbor first, then the −1
// neighbor, each counted once — so on a 2-cycle only +1 is visited (the two
// coincide) and on a 1-cycle nothing is. q must not alias p.
func (u *Universe) NeighborsTorusInto(p, q Point, visit func(dim int, q Point)) {
	side := u.side
	copy(q, p)
	for i := 0; i < u.d; i++ {
		if side > 1 {
			q[i] = (p[i] + 1) & (side - 1)
			visit(i, q)
		}
		if side > 2 {
			q[i] = (p[i] + side - 1) & (side - 1)
			visit(i, q)
		}
		q[i] = p[i]
	}
}

// NNPairCount returns |NN_d|: the number of unordered nearest-neighbor
// pairs, d · side^(d-1) · (side-1).
func (u *Universe) NNPairCount() uint64 {
	perDim := uint64(u.side-1) * pow64(uint64(u.side), u.d-1)
	return uint64(u.d) * perDim
}

// NNPairs calls visit once per unordered nearest-neighbor pair (a, b) with
// b = a + e_dim. Points are reused scratch buffers. Iteration is in Linear
// order of a, dimensions ascending.
func (u *Universe) NNPairs(visit func(a, b Point, dim int) bool) {
	a := u.NewPoint()
	b := u.NewPoint()
	for idx := uint64(0); idx < u.n; idx++ {
		u.FromLinear(idx, a)
		copy(b, a)
		for dim := 0; dim < u.d; dim++ {
			if a[dim]+1 < u.side {
				b[dim] = a[dim] + 1
				if !visit(a, b, dim) {
					return
				}
				b[dim] = a[dim]
			}
		}
	}
}

// Manhattan returns Δ(a, b) = Σ |a_i − b_i|.
func Manhattan(a, b Point) uint64 {
	var s uint64
	for i := range a {
		s += bits.AbsDiff(uint64(a[i]), uint64(b[i]))
	}
	return s
}

// Euclidean returns Δ_E(a, b) = sqrt(Σ (a_i − b_i)²).
func Euclidean(a, b Point) float64 {
	var s float64
	for i := range a {
		d := float64(bits.AbsDiff(uint64(a[i]), uint64(b[i])))
		s += d * d
	}
	return math.Sqrt(s)
}

// Chebyshev returns max_i |a_i − b_i|.
func Chebyshev(a, b Point) uint64 {
	var m uint64
	for i := range a {
		if d := bits.AbsDiff(uint64(a[i]), uint64(b[i])); d > m {
			m = d
		}
	}
	return m
}

// MaxManhattan returns the diameter of the universe under Δ:
// d·(side−1), attained by opposite corners (Lemma 6).
func (u *Universe) MaxManhattan() uint64 {
	return uint64(u.d) * uint64(u.side-1)
}

// MaxEuclidean returns the diameter under Δ_E: sqrt(d)·(side−1) (Lemma 6).
func (u *Universe) MaxEuclidean() float64 {
	return math.Sqrt(float64(u.d)) * float64(u.side-1)
}

// pow64 computes base^exp in uint64 (caller guarantees no overflow).
func pow64(base uint64, exp int) uint64 {
	r := uint64(1)
	for ; exp > 0; exp-- {
		r *= base
	}
	return r
}

// Pow64 computes base^exp in uint64 arithmetic. The caller must guarantee
// the result fits (the Universe size limits make all in-package uses safe).
func Pow64(base uint64, exp int) uint64 { return pow64(base, exp) }
