package grid

import "fmt"

// Edge is an unordered nearest-neighbor pair of cells — an element of NN_d
// in the paper's terminology. It is stored in canonical form: A and B differ
// in exactly one coordinate, with B = A + e_Dim.
type Edge struct {
	A, B Point
	Dim  int // the dimension along which A and B differ
}

// String renders the edge as "(a — b)".
func (e Edge) String() string { return fmt.Sprintf("(%v — %v)", e.A, e.B) }

// NewEdge canonicalizes the unordered pair {a, b}, which must be nearest
// neighbors (Manhattan distance exactly 1).
func NewEdge(a, b Point) (Edge, error) {
	if len(a) != len(b) {
		return Edge{}, fmt.Errorf("grid: edge endpoints of different dimension")
	}
	dim := -1
	for i := range a {
		if a[i] == b[i] {
			continue
		}
		if dim >= 0 {
			return Edge{}, fmt.Errorf("grid: %v and %v differ in more than one dimension", a, b)
		}
		diff := int64(a[i]) - int64(b[i])
		if diff != 1 && diff != -1 {
			return Edge{}, fmt.Errorf("grid: %v and %v are not nearest neighbors", a, b)
		}
		dim = i
	}
	if dim < 0 {
		return Edge{}, fmt.Errorf("grid: %v equals %v", a, b)
	}
	if a[dim] < b[dim] {
		return Edge{A: a.Clone(), B: b.Clone(), Dim: dim}, nil
	}
	return Edge{A: b.Clone(), B: a.Clone(), Dim: dim}, nil
}

// Decompose computes the paper's nearest-neighbor decomposition p(α, β)
// (§IV.A): the set of unit edges forming the canonical staircase path from
// α to β that corrects coordinates one dimension at a time, dimension 1
// first. The returned edges are in path order from α to β. Decompose(α, β)
// and Decompose(β, α) generally differ as sets (see Figure 2 of the paper),
// but both have exactly Δ(α, β) edges.
func Decompose(alpha, beta Point) []Edge {
	d := len(alpha)
	edges := make([]Edge, 0, Manhattan(alpha, beta))
	cur := alpha.Clone()
	for i := 0; i < d; i++ {
		x, y := cur[i], beta[i]
		switch {
		case x < y:
			for v := x; v < y; v++ {
				a := cur.Clone()
				a[i] = v
				b := cur.Clone()
				b[i] = v + 1
				edges = append(edges, Edge{A: a, B: b, Dim: i})
			}
		case x > y:
			// For a decreasing coordinate the walk visits edges from x down
			// to y; each unordered edge is canonicalized with the smaller
			// endpoint first.
			for v := x; v > y; v-- {
				a := cur.Clone()
				a[i] = v - 1
				b := cur.Clone()
				b[i] = v
				edges = append(edges, Edge{A: a, B: b, Dim: i})
			}
		}
		cur[i] = y
	}
	return edges
}

// DecomposeVertices returns the vertex sequence of the canonical path from
// α to β: α = v_0, v_1, …, v_m = β with consecutive vertices at Manhattan
// distance 1 and m = Δ(α, β).
func DecomposeVertices(alpha, beta Point) []Point {
	d := len(alpha)
	verts := make([]Point, 0, Manhattan(alpha, beta)+1)
	cur := alpha.Clone()
	verts = append(verts, cur.Clone())
	for i := 0; i < d; i++ {
		for cur[i] != beta[i] {
			if cur[i] < beta[i] {
				cur[i]++
			} else {
				cur[i]--
			}
			verts = append(verts, cur.Clone())
		}
	}
	return verts
}

// DecompositionCount returns the exact number of ordered pairs (α, β) ∈ A′
// whose decomposition p(α, β) contains the given edge. Following the
// characterization in the proof of Lemma 4: with the edge along dimension i
// joining coordinate values ζ_i and ζ_i+1, the count is
//
//	2 · side^(d-1) · (ζ_i + 1) · (side − 1 − ζ_i)
//
// (the paper writes this as 2·(d√n)^(d-1)·ζ_i·(d√n − ζ_i) with the interval
// counted from 1). The maximum over edges is side^(d+1)/2 = n^((d+1)/d)/2,
// which is the bound used in inequality (4) of the paper.
func (u *Universe) DecompositionCount(e Edge) uint64 {
	z := uint64(e.A[e.Dim])
	perOther := pow64(uint64(u.side), u.d-1)
	return 2 * perOther * (z + 1) * (uint64(u.side) - 1 - z)
}

// DecompositionCountBound returns the Lemma 4 upper bound n^((d+1)/d)/2
// = side^(d+1)/2 on DecompositionCount over all edges.
func (u *Universe) DecompositionCountBound() uint64 {
	return pow64(uint64(u.side), u.d+1) / 2
}
