package grid

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 3); err == nil {
		t.Fatal("d=0 accepted")
	}
	if _, err := New(2, -1); err == nil {
		t.Fatal("k=-1 accepted")
	}
	if _, err := New(8, 8); err == nil {
		t.Fatal("d*k=64 accepted")
	}
	u, err := New(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if u.D() != 3 || u.K() != 4 || u.Side() != 16 || u.N() != 1<<12 {
		t.Fatalf("bad universe %v", u)
	}
}

func TestSideOne(t *testing.T) {
	u := MustNew(3, 0)
	if u.N() != 1 || u.Side() != 1 {
		t.Fatalf("k=0 universe wrong: %v", u)
	}
	p := u.MustPoint(0, 0, 0)
	if u.Degree(p) != 0 {
		t.Fatalf("single cell has neighbors")
	}
	if u.NNPairCount() != 0 {
		t.Fatalf("single cell has NN pairs")
	}
}

func TestLinearRoundTrip(t *testing.T) {
	for _, dk := range [][2]int{{1, 6}, {2, 4}, {3, 3}, {4, 2}, {5, 2}} {
		u := MustNew(dk[0], dk[1])
		p := u.NewPoint()
		seen := make(map[uint64]bool, u.N())
		for idx := uint64(0); idx < u.N(); idx++ {
			u.FromLinear(idx, p)
			if !u.Contains(p) {
				t.Fatalf("%v: FromLinear(%d) = %v outside", u, idx, p)
			}
			if got := u.Linear(p); got != idx {
				t.Fatalf("%v: Linear(FromLinear(%d)) = %d", u, idx, got)
			}
			seen[idx] = true
		}
		if uint64(len(seen)) != u.N() {
			t.Fatalf("%v: %d distinct indices", u, len(seen))
		}
	}
}

func TestLinearMatchesSimpleCurveFormula(t *testing.T) {
	// Linear must implement eq. (8): S(α) = Σ x_i · side^(i-1).
	u := MustNew(3, 2)
	p := u.MustPoint(1, 2, 3)
	want := uint64(1) + 2*4 + 3*16
	if got := u.Linear(p); got != want {
		t.Fatalf("Linear(%v) = %d, want %d", p, got, want)
	}
}

func TestDegreeBounds(t *testing.T) {
	// Paper §III: d <= |N(α)| <= 2d for side >= 2.
	for _, dk := range [][2]int{{1, 3}, {2, 3}, {3, 2}, {4, 1}} {
		u := MustNew(dk[0], dk[1])
		u.Cells(func(_ uint64, p Point) bool {
			deg := u.Degree(p)
			if deg < u.D() || deg > 2*u.D() {
				t.Fatalf("%v: degree(%v) = %d outside [d, 2d]", u, p, deg)
			}
			// Cross-check against explicit enumeration.
			count := 0
			u.Neighbors(p, func(dim int, q Point) {
				if Manhattan(p, q) != 1 {
					t.Fatalf("neighbor %v of %v at distance %d", q, p, Manhattan(p, q))
				}
				if p[dim] == q[dim] {
					t.Fatalf("neighbor dim mismatch")
				}
				count++
			})
			if count != deg {
				t.Fatalf("%v: Degree=%d but Neighbors yields %d", p, deg, count)
			}
			return true
		})
	}
}

func TestBoundaryDims(t *testing.T) {
	u := MustNew(2, 2) // 4x4
	if b := u.BoundaryDims(u.MustPoint(1, 2)); b != 0 {
		t.Fatalf("interior cell boundary dims = %d", b)
	}
	if b := u.BoundaryDims(u.MustPoint(0, 2)); b != 1 {
		t.Fatalf("face cell boundary dims = %d", b)
	}
	if b := u.BoundaryDims(u.MustPoint(0, 3)); b != 2 {
		t.Fatalf("corner cell boundary dims = %d", b)
	}
}

func TestNNPairCount(t *testing.T) {
	for _, dk := range [][2]int{{1, 4}, {2, 3}, {3, 2}, {4, 1}} {
		u := MustNew(dk[0], dk[1])
		var count uint64
		u.NNPairs(func(a, b Point, dim int) bool {
			if Manhattan(a, b) != 1 {
				t.Fatalf("NN pair at distance %d", Manhattan(a, b))
			}
			if b[dim] != a[dim]+1 {
				t.Fatalf("pair not canonical: %v %v dim %d", a, b, dim)
			}
			count++
			return true
		})
		if count != u.NNPairCount() {
			t.Fatalf("%v: enumerated %d pairs, formula %d", u, count, u.NNPairCount())
		}
		// Sum of degrees counts each unordered pair twice.
		var degSum uint64
		u.Cells(func(_ uint64, p Point) bool {
			degSum += uint64(u.Degree(p))
			return true
		})
		if degSum != 2*count {
			t.Fatalf("%v: degree sum %d != 2×%d", u, degSum, count)
		}
	}
}

func TestNNPairsEarlyStop(t *testing.T) {
	u := MustNew(2, 3)
	visits := 0
	u.NNPairs(func(a, b Point, dim int) bool {
		visits++
		return visits < 5
	})
	if visits != 5 {
		t.Fatalf("early stop ignored: %d visits", visits)
	}
}

func TestMetrics(t *testing.T) {
	a := Point{1, 1}
	b := Point{3, 5}
	if Manhattan(a, b) != 6 {
		t.Fatalf("Manhattan = %d", Manhattan(a, b))
	}
	if got := Euclidean(a, b); math.Abs(got-math.Sqrt(4+16)) > 1e-12 {
		t.Fatalf("Euclidean = %v", got)
	}
	if Chebyshev(a, b) != 4 {
		t.Fatalf("Chebyshev = %d", Chebyshev(a, b))
	}
}

func TestMetricSymmetryAndTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	u := MustNew(3, 4)
	randPoint := func() Point {
		p := u.NewPoint()
		for i := range p {
			p[i] = uint32(rng.Intn(int(u.Side())))
		}
		return p
	}
	for trial := 0; trial < 500; trial++ {
		a, b, c := randPoint(), randPoint(), randPoint()
		if Manhattan(a, b) != Manhattan(b, a) {
			t.Fatal("Manhattan not symmetric")
		}
		if Manhattan(a, c) > Manhattan(a, b)+Manhattan(b, c) {
			t.Fatal("Manhattan triangle inequality violated")
		}
		if Euclidean(a, c) > Euclidean(a, b)+Euclidean(b, c)+1e-9 {
			t.Fatal("Euclidean triangle inequality violated")
		}
		// Δ_E <= Δ <= sqrt(d)·Δ_E (used implicitly by Prop 3/4 proofs).
		if Euclidean(a, b) > float64(Manhattan(a, b))+1e-9 {
			t.Fatal("Euclidean exceeds Manhattan")
		}
		if float64(Manhattan(a, b)) > math.Sqrt(float64(u.D()))*Euclidean(a, b)+1e-9 {
			t.Fatal("Manhattan exceeds sqrt(d)·Euclidean")
		}
	}
}

func TestMaxDistances(t *testing.T) {
	// Lemma 6: diameters are attained at opposite corners.
	u := MustNew(3, 3)
	lo := u.MustPoint(0, 0, 0)
	hi := u.MustPoint(7, 7, 7)
	if u.MaxManhattan() != Manhattan(lo, hi) {
		t.Fatalf("MaxManhattan %d != %d", u.MaxManhattan(), Manhattan(lo, hi))
	}
	if math.Abs(u.MaxEuclidean()-Euclidean(lo, hi)) > 1e-12 {
		t.Fatalf("MaxEuclidean %v != %v", u.MaxEuclidean(), Euclidean(lo, hi))
	}
}

func TestCellsOrderAndEarlyStop(t *testing.T) {
	u := MustNew(2, 2)
	var idxs []uint64
	u.Cells(func(idx uint64, p Point) bool {
		if u.Linear(p) != idx {
			t.Fatalf("Cells index mismatch at %d", idx)
		}
		idxs = append(idxs, idx)
		return idx < 5
	})
	if len(idxs) != 6 {
		t.Fatalf("early stop: visited %d", len(idxs))
	}
}

func TestPointHelpers(t *testing.T) {
	u := MustNew(2, 2)
	if _, err := u.Point(1); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if _, err := u.Point(4, 0); err == nil {
		t.Fatal("out-of-range accepted")
	}
	p := u.MustPoint(1, 2)
	q := p.Clone()
	q[0] = 3
	if p[0] != 1 {
		t.Fatal("Clone aliases")
	}
	if p.Equal(q) || !p.Equal(Point{1, 2}) || p.Equal(Point{1}) {
		t.Fatal("Equal wrong")
	}
	if p.String() != "(1,2)" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestPow64(t *testing.T) {
	if Pow64(3, 0) != 1 || Pow64(3, 4) != 81 || Pow64(2, 10) != 1024 {
		t.Fatal("Pow64 wrong")
	}
}

func BenchmarkLinearRoundTrip(b *testing.B) {
	u := MustNew(3, 10)
	p := u.NewPoint()
	for i := 0; i < b.N; i++ {
		u.FromLinear(uint64(i)&(u.N()-1), p)
		sink = u.Linear(p)
	}
}

func BenchmarkNeighbors(b *testing.B) {
	u := MustNew(3, 10)
	p := u.MustPoint(500, 500, 500)
	for i := 0; i < b.N; i++ {
		count := 0
		u.Neighbors(p, func(int, Point) { count++ })
		sink = uint64(count)
	}
}

var sink uint64
