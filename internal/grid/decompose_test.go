package grid

import (
	"math/rand"
	"testing"
)

func TestNewEdgeCanonicalization(t *testing.T) {
	e, err := NewEdge(Point{3, 4}, Point{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !e.A.Equal(Point{2, 4}) || !e.B.Equal(Point{3, 4}) || e.Dim != 0 {
		t.Fatalf("bad edge %v dim %d", e, e.Dim)
	}
	if _, err := NewEdge(Point{0, 0}, Point{1, 1}); err == nil {
		t.Fatal("diagonal accepted")
	}
	if _, err := NewEdge(Point{0, 0}, Point{2, 0}); err == nil {
		t.Fatal("distance-2 accepted")
	}
	if _, err := NewEdge(Point{1, 1}, Point{1, 1}); err == nil {
		t.Fatal("self edge accepted")
	}
	if _, err := NewEdge(Point{1}, Point{1, 2}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

// edgeKey gives a comparable identity for an edge, for set comparisons.
func edgeKey(e Edge) string { return e.A.String() + "|" + e.B.String() }

func TestDecomposePaperFigure2(t *testing.T) {
	// Figure 2: α=(1,1), β=(3,5) on a 6×6 region of the plane.
	// p(α,β) = {((1,1),(2,1)), ((2,1),(3,1)), ((3,1),(3,2)),
	//           ((3,2),(3,3)), ((3,3),(3,4)), ((3,4),(3,5))}
	alpha := Point{1, 1}
	beta := Point{3, 5}
	want := [][2]Point{
		{{1, 1}, {2, 1}}, {{2, 1}, {3, 1}}, {{3, 1}, {3, 2}},
		{{3, 2}, {3, 3}}, {{3, 3}, {3, 4}}, {{3, 4}, {3, 5}},
	}
	got := Decompose(alpha, beta)
	if len(got) != len(want) {
		t.Fatalf("p(α,β) has %d edges, want %d", len(got), len(want))
	}
	for i, w := range want {
		if !got[i].A.Equal(w[0]) || !got[i].B.Equal(w[1]) {
			t.Fatalf("edge %d = %v, want (%v — %v)", i, got[i], w[0], w[1])
		}
	}

	// p(β,α) from the figure: {((1,5),(2,5)), ((2,5),(3,5)), ((1,1),(1,2)),
	// ((1,2),(1,3)), ((1,3),(1,4)), ((1,4),(1,5))} — as a set.
	wantRev := map[string]bool{}
	for _, w := range [][2]Point{
		{{1, 5}, {2, 5}}, {{2, 5}, {3, 5}}, {{1, 1}, {1, 2}},
		{{1, 2}, {1, 3}}, {{1, 3}, {1, 4}}, {{1, 4}, {1, 5}},
	} {
		e, err := NewEdge(w[0], w[1])
		if err != nil {
			t.Fatal(err)
		}
		wantRev[edgeKey(e)] = true
	}
	gotRev := Decompose(beta, alpha)
	if len(gotRev) != len(wantRev) {
		t.Fatalf("p(β,α) has %d edges, want %d", len(gotRev), len(wantRev))
	}
	for _, e := range gotRev {
		if !wantRev[edgeKey(e)] {
			t.Fatalf("unexpected edge %v in p(β,α)", e)
		}
	}
}

func TestDecomposeSingleDimensionSymmetric(t *testing.T) {
	// If α and β differ in only one coordinate, p(α,β) == p(β,α) as sets.
	alpha := Point{6, 4, 5}
	beta := Point{3, 4, 5}
	fwd := Decompose(alpha, beta)
	rev := Decompose(beta, alpha)
	if len(fwd) != 3 || len(rev) != 3 {
		t.Fatalf("lengths %d %d", len(fwd), len(rev))
	}
	set := map[string]bool{}
	for _, e := range fwd {
		set[edgeKey(e)] = true
	}
	for _, e := range rev {
		if !set[edgeKey(e)] {
			t.Fatalf("p(β,α) edge %v not in p(α,β)", e)
		}
	}
}

func TestDecomposePropertiesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	u := MustNew(3, 3)
	randPoint := func() Point {
		p := u.NewPoint()
		for i := range p {
			p[i] = uint32(rng.Intn(int(u.Side())))
		}
		return p
	}
	for trial := 0; trial < 300; trial++ {
		a, b := randPoint(), randPoint()
		if a.Equal(b) {
			continue
		}
		edges := Decompose(a, b)
		if uint64(len(edges)) != Manhattan(a, b) {
			t.Fatalf("|p(α,β)| = %d, Δ = %d", len(edges), Manhattan(a, b))
		}
		// Every edge is a valid unit edge with canonical orientation.
		seen := map[string]bool{}
		for _, e := range edges {
			if Manhattan(e.A, e.B) != 1 {
				t.Fatalf("non-unit edge %v", e)
			}
			if e.B[e.Dim] != e.A[e.Dim]+1 {
				t.Fatalf("non-canonical edge %v", e)
			}
			if seen[edgeKey(e)] {
				t.Fatalf("duplicate edge %v", e)
			}
			seen[edgeKey(e)] = true
		}
		// Vertex path agrees: consecutive vertices at distance 1, endpoints correct.
		verts := DecomposeVertices(a, b)
		if uint64(len(verts)) != Manhattan(a, b)+1 {
			t.Fatalf("path has %d vertices", len(verts))
		}
		if !verts[0].Equal(a) || !verts[len(verts)-1].Equal(b) {
			t.Fatalf("path endpoints wrong")
		}
		for i := 1; i < len(verts); i++ {
			if Manhattan(verts[i-1], verts[i]) != 1 {
				t.Fatalf("path step %d not unit", i)
			}
		}
		// The edge set of the path equals Decompose's edge set.
		for i := 1; i < len(verts); i++ {
			e, err := NewEdge(verts[i-1], verts[i])
			if err != nil {
				t.Fatal(err)
			}
			if !seen[edgeKey(e)] {
				t.Fatalf("path edge %v missing from decomposition", e)
			}
		}
	}
}

func TestDecompositionCountMatchesEnumeration(t *testing.T) {
	// Lemma 4 exact count: enumerate all ordered pairs on a small grid and
	// count, for each edge, how many decompositions contain it.
	u := MustNew(2, 2) // 4×4, 256 ordered pairs
	counts := map[string]uint64{}
	a := u.NewPoint()
	b := u.NewPoint()
	for ia := uint64(0); ia < u.N(); ia++ {
		for ib := uint64(0); ib < u.N(); ib++ {
			if ia == ib {
				continue
			}
			u.FromLinear(ia, a)
			u.FromLinear(ib, b)
			for _, e := range Decompose(a, b) {
				counts[edgeKey(e)]++
			}
		}
	}
	bound := u.DecompositionCountBound()
	u.NNPairs(func(pa, pb Point, dim int) bool {
		e, err := NewEdge(pa, pb)
		if err != nil {
			t.Fatal(err)
		}
		want := u.DecompositionCount(e)
		if got := counts[edgeKey(e)]; got != want {
			t.Fatalf("edge %v: enumerated %d, formula %d", e, got, want)
		}
		if want > bound {
			t.Fatalf("edge %v: count %d exceeds Lemma 4 bound %d", e, want, bound)
		}
		return true
	})
}

func TestDecompositionCountBoundTight(t *testing.T) {
	// The Lemma 4 bound side^(d+1)/2 is attained by central edges.
	u := MustNew(3, 2)
	e, err := NewEdge(u.MustPoint(1, 0, 0), u.MustPoint(2, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got, bound := u.DecompositionCount(e), u.DecompositionCountBound(); got != bound {
		t.Fatalf("central edge count %d, bound %d", got, bound)
	}
}
