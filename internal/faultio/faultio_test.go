package faultio_test

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/curve"
	"repro/internal/faultio"
	"repro/internal/grid"
	"repro/internal/store"
)

func testDevice(t *testing.T) store.PageDevice {
	t.Helper()
	u := grid.MustNew(2, 4)
	z := curve.NewZ(u)
	rng := rand.New(rand.NewSource(3))
	recs := make([]store.Record, 500)
	for i := range recs {
		p := u.NewPoint()
		for j := range p {
			p[j] = uint32(rng.Intn(int(u.Side())))
		}
		recs[i] = store.Record{Point: p, Payload: uint64(i)}
	}
	st, err := store.Bulkload(z, recs, store.Config{PageSize: 8, Fanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	return st.DefaultDevice()
}

func TestWrapValidation(t *testing.T) {
	dev := testDevice(t)
	if _, err := faultio.Wrap(dev, faultio.Config{TransientProb: 1.5}); err == nil {
		t.Fatal("probability > 1 accepted")
	}
	if _, err := faultio.Wrap(dev, faultio.Config{LostFrac: -0.1}); err == nil {
		t.Fatal("negative fraction accepted")
	}
	if _, err := faultio.Wrap(dev, faultio.Config{LostPages: []int{dev.NumPages()}}); err == nil {
		t.Fatal("out-of-range lost page accepted")
	}
}

// TestZeroConfigPassthrough: an injector with no faults configured is a
// transparent proxy.
func TestZeroConfigPassthrough(t *testing.T) {
	dev := testDevice(t)
	in, err := faultio.Wrap(dev, faultio.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < dev.NumPages(); id++ {
		want, err := dev.ReadPage(id)
		if err != nil {
			t.Fatal(err)
		}
		got, err := in.ReadPage(id)
		if err != nil {
			t.Fatalf("page %d: %v", id, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("page %d altered by disabled injector", id)
		}
	}
	c := in.Counters()
	if c.Transients+c.LostReads+c.Corruptions+c.Spikes != 0 {
		t.Fatalf("faults injected by zero config: %+v", c)
	}
	if c.Reads != uint64(dev.NumPages()) {
		t.Fatalf("reads = %d, want %d", c.Reads, dev.NumPages())
	}
}

// TestDeterminism: the same seed yields the same fault schedule, counter
// for counter, independent of a prior unrelated read history.
func TestDeterminism(t *testing.T) {
	dev := testDevice(t)
	cfg := faultio.Config{Seed: 77, TransientProb: 0.3, CorruptProb: 0.2, SpikeProb: 0.1, LostFrac: 0.2}
	run := func() (faultio.Counters, []int, []error) {
		in, err := faultio.Wrap(dev, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var errs []error
		for pass := 0; pass < 3; pass++ {
			for id := 0; id < dev.NumPages(); id++ {
				_, err := in.ReadPage(id)
				errs = append(errs, err)
			}
		}
		return in.Counters(), in.Lost(), errs
	}
	c1, lost1, errs1 := run()
	c2, lost2, errs2 := run()
	if c1 != c2 {
		t.Fatalf("counters diverge: %+v vs %+v", c1, c2)
	}
	if !reflect.DeepEqual(lost1, lost2) {
		t.Fatalf("lost sets diverge: %v vs %v", lost1, lost2)
	}
	for i := range errs1 {
		if (errs1[i] == nil) != (errs2[i] == nil) {
			t.Fatalf("read %d outcome diverges", i)
		}
	}
	if c1.Transients == 0 || c1.Corruptions == 0 || c1.LostReads == 0 {
		t.Fatalf("schedule injected nothing: %+v", c1)
	}
}

// TestLostPagesArePermanent: lost pages error with ErrPermanent so the
// store's retry loop gives up immediately.
func TestLostPagesArePermanent(t *testing.T) {
	dev := testDevice(t)
	in, err := faultio.Wrap(dev, faultio.Config{Seed: 1, LostPages: []int{2, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Lost(); !reflect.DeepEqual(got, []int{2, 5}) {
		t.Fatalf("Lost() = %v", got)
	}
	for _, id := range []int{2, 5} {
		if _, err := in.ReadPage(id); !errors.Is(err, store.ErrPermanent) {
			t.Fatalf("page %d: err = %v, want ErrPermanent", id, err)
		}
	}
	if _, err := in.ReadPage(0); err != nil {
		t.Fatalf("healthy page 0 failed: %v", err)
	}
}

// TestCorruptionChangesOnePayloadBit: a corrupted page differs from the
// pristine one in exactly one record payload, and the underlying device
// memory is never mutated.
func TestCorruptionChangesOnePayloadBit(t *testing.T) {
	dev := testDevice(t)
	in, err := faultio.Wrap(dev, faultio.Config{Seed: 4, CorruptProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < dev.NumPages(); id++ {
		pristine, _ := dev.ReadPage(id)
		before := append([]store.Record(nil), pristine.Records...)
		got, err := in.ReadPage(id)
		if err != nil {
			t.Fatal(err)
		}
		diff := 0
		for i := range got.Records {
			if got.Records[i].Payload != before[i].Payload {
				diff++
				if x := got.Records[i].Payload ^ before[i].Payload; x&(x-1) != 0 {
					t.Fatalf("page %d record %d: more than one bit flipped", id, i)
				}
			}
			if !got.Records[i].Point.Equal(before[i].Point) {
				t.Fatalf("page %d record %d: point mutated", id, i)
			}
		}
		if diff != 1 {
			t.Fatalf("page %d: %d payloads changed, want exactly 1", id, diff)
		}
		// Source of truth untouched.
		after, _ := dev.ReadPage(id)
		for i := range after.Records {
			if after.Records[i].Payload != before[i].Payload {
				t.Fatalf("page %d: corruption leaked into the underlying device", id)
			}
		}
	}
}

// TestLatencyAccounting: spikes dominate the simulated latency.
func TestLatencyAccounting(t *testing.T) {
	dev := testDevice(t)
	base, err := faultio.Wrap(dev, faultio.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	spiky, err := faultio.Wrap(dev, faultio.Config{Seed: 1, SpikeProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < dev.NumPages(); id++ {
		base.ReadPage(id)
		spiky.ReadPage(id)
	}
	if b, s := base.Counters(), spiky.Counters(); s.Latency <= b.Latency || s.Spikes != s.Reads {
		t.Fatalf("spike accounting off: base %+v, spiky %+v", b, s)
	}
}
