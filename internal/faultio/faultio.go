// Package faultio provides a deterministic, seedable fault injector for
// store page devices and for the durable store's write path. Wrapping a
// device adds failure modes drawn from the fault model of secondary-memory
// systems the paper motivates (Faloutsos/Jagadish line of work): transient
// read errors, permanently lost pages, latency spikes, in-flight bit
// corruption, and short reads. Wrapping a log file handle (WrapFile) adds
// torn writes and fsync failures, the write-side half of the same model.
//
// Every decision is a pure function of (seed, page, per-page attempt
// number), computed by hashing rather than by a shared stream, so a fault
// schedule is reproducible from its seed alone, independent of goroutine
// interleaving — the property the chaos harness (internal/chaos) relies on
// to replay violations. The injector is safe for concurrent use.
package faultio

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// Config selects the fault schedule. All probabilities are per read
// attempt and must lie in [0, 1].
type Config struct {
	Seed          int64
	TransientProb float64 // probability of a transient read error
	CorruptProb   float64 // probability of returning a bit-corrupted page
	ShortReadProb float64 // probability of returning a truncated (short-read) page
	SpikeProb     float64 // probability of a latency spike
	LostFrac      float64 // fraction of pages permanently lost (chosen by seed)
	LostPages     []int   // explicitly lost pages, in addition to LostFrac

	ReadLatency  time.Duration // simulated latency of a normal read (default 100µs)
	SpikeLatency time.Duration // simulated latency of a spiked read (default 50ms)
}

// Counters is a snapshot of the injector's accounting. The chaos harness
// checks Corruptions against the store's ChecksumFailures: every injected
// corruption must be detected.
type Counters struct {
	Reads       uint64 // ReadPage attempts observed
	Transients  uint64 // transient errors injected
	LostReads   uint64 // reads of permanently lost pages
	Corruptions uint64 // corrupted pages returned
	ShortReads  uint64 // truncated pages returned
	Spikes      uint64 // latency spikes injected
	Latency     time.Duration
}

// Injector wraps a PageDevice with the configured fault schedule.
type Injector struct {
	dev  store.PageDevice
	cfg  Config
	lost []bool

	attempts []atomic.Uint64 // per-page read counter; drives the hash stream

	reads, transients, lostReads, corruptions, spikes atomic.Uint64
	shortReads                                        atomic.Uint64
	latency                                           atomic.Int64
}

// Wrap builds an injector over dev. It validates the probabilities and
// resolves the lost-page set deterministically from the seed.
func Wrap(dev store.PageDevice, cfg Config) (*Injector, error) {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"TransientProb", cfg.TransientProb},
		{"CorruptProb", cfg.CorruptProb},
		{"ShortReadProb", cfg.ShortReadProb},
		{"SpikeProb", cfg.SpikeProb},
		{"LostFrac", cfg.LostFrac},
	} {
		if p.v < 0 || p.v > 1 {
			return nil, fmt.Errorf("faultio: %s = %v outside [0, 1]", p.name, p.v)
		}
	}
	if cfg.ReadLatency == 0 {
		cfg.ReadLatency = 100 * time.Microsecond
	}
	if cfg.SpikeLatency == 0 {
		cfg.SpikeLatency = 50 * time.Millisecond
	}
	n := dev.NumPages()
	in := &Injector{
		dev:      dev,
		cfg:      cfg,
		lost:     make([]bool, n),
		attempts: make([]atomic.Uint64, n),
	}
	for p := 0; p < n; p++ {
		if u01(hash(cfg.Seed, streamLost, p, 0)) < cfg.LostFrac {
			in.lost[p] = true
		}
	}
	for _, p := range cfg.LostPages {
		if p < 0 || p >= n {
			return nil, fmt.Errorf("faultio: lost page %d out of range [0, %d)", p, n)
		}
		in.lost[p] = true
	}
	return in, nil
}

// NumPages implements store.PageDevice.
func (in *Injector) NumPages() int { return in.dev.NumPages() }

// Lost returns the permanently lost pages, ascending.
func (in *Injector) Lost() []int {
	var out []int
	for p, l := range in.lost {
		if l {
			out = append(out, p)
		}
	}
	return out
}

// Counters returns a snapshot of the fault accounting.
func (in *Injector) Counters() Counters {
	return Counters{
		Reads:       in.reads.Load(),
		Transients:  in.transients.Load(),
		LostReads:   in.lostReads.Load(),
		Corruptions: in.corruptions.Load(),
		ShortReads:  in.shortReads.Load(),
		Spikes:      in.spikes.Load(),
		Latency:     time.Duration(in.latency.Load()),
	}
}

// Decision streams: independent hash inputs per fault type so the modes
// don't correlate.
const (
	streamLost = iota
	streamTransient
	streamSpike
	streamCorrupt
	streamCorruptSite
	streamShortRead
)

// ReadPage implements store.PageDevice. Precedence per attempt: a lost page
// always errors; otherwise a transient error may fire; otherwise the read
// succeeds (with possible latency spike) and may be returned corrupted.
func (in *Injector) ReadPage(id int) (store.Page, error) {
	if id < 0 || id >= len(in.lost) {
		return in.dev.ReadPage(id) // let the device report the range error
	}
	n := in.attempts[id].Add(1)
	in.reads.Add(1)
	if in.lost[id] {
		in.lostReads.Add(1)
		return store.Page{}, fmt.Errorf("faultio: page %d: %w", id, store.ErrPermanent)
	}
	if u01(hash(in.cfg.Seed, streamTransient, id, n)) < in.cfg.TransientProb {
		in.transients.Add(1)
		in.latency.Add(int64(in.cfg.ReadLatency))
		return store.Page{}, fmt.Errorf("faultio: transient error reading page %d (attempt %d)", id, n)
	}
	lat := in.cfg.ReadLatency
	if u01(hash(in.cfg.Seed, streamSpike, id, n)) < in.cfg.SpikeProb {
		in.spikes.Add(1)
		lat = in.cfg.SpikeLatency
	}
	in.latency.Add(int64(lat))
	pg, err := in.dev.ReadPage(id)
	if err != nil {
		return pg, err
	}
	if len(pg.Records) > 0 && u01(hash(in.cfg.Seed, streamCorrupt, id, n)) < in.cfg.CorruptProb {
		in.corruptions.Add(1)
		pg = corrupt(pg, hash(in.cfg.Seed, streamCorruptSite, id, n))
	}
	if len(pg.Records) > 0 && u01(hash(in.cfg.Seed, streamShortRead, id, n)) < in.cfg.ShortReadProb {
		in.shortReads.Add(1)
		pg = shortRead(pg, hash(in.cfg.Seed, streamShortRead, id, n+1<<32))
	}
	return pg, nil
}

var _ store.PageDevice = (*Injector)(nil)

// corrupt returns a copy of the page with one payload bit flipped, the
// record and bit chosen by h. Flipping exactly one bit guarantees the
// store's FNV-1a page checksum changes, so detection must be 100%.
func corrupt(pg store.Page, h uint64) store.Page {
	recs := append([]store.Record(nil), pg.Records...)
	i := int(h % uint64(len(recs)))
	recs[i].Payload ^= 1 << ((h >> 32) % 64)
	return store.Page{ID: pg.ID, Keys: pg.Keys, Records: recs}
}

// shortRead returns a truncated copy of the page — at least one record
// missing, as a device that stopped reading mid-transfer would deliver. The
// page checksum covers length, so detection must be 100%.
func shortRead(pg store.Page, h uint64) store.Page {
	n := int(h % uint64(len(pg.Records))) // in [0, len)
	return store.Page{ID: pg.ID, Keys: pg.Keys[:n], Records: pg.Records[:n]}
}

// hash mixes (seed, stream, page, attempt) with SplitMix64.
func hash(seed int64, stream, page int, attempt uint64) uint64 {
	x := uint64(seed)
	x = mix(x ^ uint64(stream)*0x9e3779b97f4a7c15)
	x = mix(x ^ uint64(page)*0xbf58476d1ce4e5b9)
	x = mix(x ^ attempt*0x94d049bb133111eb)
	return x
}

func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// u01 maps a hash to [0, 1).
func u01(h uint64) float64 { return float64(h>>11) / float64(1<<53) }
