package faultio_test

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/curve"
	"repro/internal/faultio"
	"repro/internal/grid"
	"repro/internal/query"
	"repro/internal/store"
	"repro/internal/wal"
)

func shortReadStore(t *testing.T, seed int64) (*store.Store, *faultio.Injector, *grid.Universe) {
	t.Helper()
	u := grid.MustNew(2, 4)
	z := curve.NewZ(u)
	rng := rand.New(rand.NewSource(3))
	recs := make([]store.Record, 500)
	for i := range recs {
		p := u.NewPoint()
		for j := range p {
			p[j] = uint32(rng.Intn(int(u.Side())))
		}
		recs[i] = store.Record{Point: p, Payload: uint64(i)}
	}
	st, err := store.Bulkload(z, recs, store.Config{PageSize: 8, Fanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faultio.Wrap(st.DefaultDevice(), faultio.Config{Seed: seed, ShortReadProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetDevice(inj); err != nil {
		t.Fatal(err)
	}
	return st, inj, u
}

// TestShortReadsDetectedByChecksum: every injected short read must be caught
// by the store's page checksum — a truncated page is never served as data.
func TestShortReadsDetectedByChecksum(t *testing.T) {
	st, inj, u := shortReadStore(t, 21)
	whole := []query.Interval{{Lo: 0, Hi: u.N()}}
	res, err := st.Scan(context.Background(), whole)
	if err != nil {
		t.Fatal(err)
	}
	c := inj.Counters()
	if c.ShortReads == 0 {
		t.Fatal("no short reads injected at prob 0.5")
	}
	if got := uint64(st.Stats().ChecksumFailures); got != c.ShortReads {
		t.Fatalf("%d short reads injected, %d checksum failures — a truncated page slipped through", c.ShortReads, got)
	}
	// Whatever was served is intact: every returned record carries a payload
	// the store actually holds, in full.
	for _, r := range res.Records {
		if r.Payload >= 500 {
			t.Fatalf("served record with foreign payload %d", r.Payload)
		}
	}
	// Same seed, same schedule.
	st2, inj2, _ := shortReadStore(t, 21)
	if _, err := st2.Scan(context.Background(), whole); err != nil {
		t.Fatal(err)
	}
	if inj.Counters().ShortReads != inj2.Counters().ShortReads {
		t.Fatal("short-read schedule not reproducible from seed")
	}
}

// TestFaultFileTornWrite: a torn write persists a strict prefix and reports
// ErrInjectedWrite; the WAL's repair turns it into a clean unacked entry.
func TestFaultFileTornWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000001.log")
	var ff *faultio.FaultFile
	wrap := func(f wal.File) wal.File {
		w, err := faultio.WrapFile(f, faultio.FileConfig{Seed: 5, TornWriteProb: 0.4})
		if err != nil {
			t.Fatal(err)
		}
		ff = w
		return w
	}
	l, err := wal.Create(path, wrap)
	if err != nil {
		t.Fatal(err)
	}
	var acked []wal.Entry
	var torn int
	for i := 1; i <= 60; i++ {
		e := wal.Entry{Seq: uint64(i), Kind: wal.KindPut, Key: uint64(i), Point: grid.Point{uint32(i % 16), 0}, Payload: uint64(i)}
		err := l.Append(e)
		switch {
		case err == nil:
			acked = append(acked, e)
		case errors.Is(err, faultio.ErrInjectedWrite):
			torn++
		default:
			t.Fatalf("append %d: unexpected error %v", i, err)
		}
	}
	if torn == 0 {
		t.Fatal("no torn writes at prob 0.4 over 60 appends")
	}
	if c := ff.Counters(); c.TornWrites != uint64(torn) {
		t.Fatalf("counters %+v, saw %d torn appends", c, torn)
	}
	l.Close()
	// Reopen without faults: exactly the acked entries replay.
	l2, replayed, tornBytes, err := wal.Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if tornBytes != 0 {
		t.Fatalf("repaired log reports %d torn bytes on reopen", tornBytes)
	}
	if !reflect.DeepEqual(replayed, acked) {
		t.Fatalf("replayed %d entries, acked %d — repair leaked or lost entries", len(replayed), len(acked))
	}
}

// TestFaultFileFsyncErrors: an entry whose sync failed is unacked, even
// though its bytes may be durable; the WAL's truncate-repair must not let
// recovery resurrect it.
func TestFaultFileFsyncErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000001.log")
	wrap := func(f wal.File) wal.File {
		w, err := faultio.WrapFile(f, faultio.FileConfig{Seed: 9, FsyncErrProb: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	l, err := wal.Create(path, wrap)
	if err != nil {
		t.Fatal(err)
	}
	var acked []wal.Entry
	fsyncErrs := 0
	for i := 1; i <= 50; i++ {
		e := wal.Entry{Seq: uint64(i), Kind: wal.KindPut, Key: uint64(i), Point: grid.Point{1, 1}, Payload: uint64(i)}
		err := l.Append(e)
		switch {
		case err == nil:
			acked = append(acked, e)
		case errors.Is(err, faultio.ErrInjectedFsync):
			fsyncErrs++
		default:
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if fsyncErrs == 0 {
		t.Fatal("no fsync errors at prob 0.3 over 50 appends")
	}
	l.Close()
	l2, replayed, _, err := wal.Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !reflect.DeepEqual(replayed, acked) {
		t.Fatalf("replayed %d, acked %d — unacked entry resurrected or acked entry lost", len(replayed), len(acked))
	}
}

// TestFaultFileComposesWithDurable drives the whole write path under both
// torn writes and fsync failures: the durable store recovers exactly the
// set of operations it acknowledged.
func TestFaultFileComposesWithDurable(t *testing.T) {
	u := grid.MustNew(2, 4)
	z := curve.NewZ(u)
	dir := t.TempDir()
	wrap := func(f wal.File) wal.File {
		w, err := faultio.WrapFile(f, faultio.FileConfig{Seed: 33, TornWriteProb: 0.15, FsyncErrProb: 0.15})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	d, err := store.OpenDurable(dir, z, store.WithWALWrapper(wrap), store.WithMemLimit(16), store.WithAutoCompact(false))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var acked []store.Record
	for i := 0; i < 120; i++ {
		r := store.Record{Point: grid.Point{uint32(i % 16), uint32(i / 16 % 16)}, Payload: uint64(i)}
		if err := d.Put(ctx, r); err == nil {
			acked = append(acked, r)
		}
	}
	if len(acked) == 120 {
		t.Fatal("no write faults fired at prob 0.15+0.15")
	}
	if err := d.Crash(); err != nil {
		t.Fatal(err)
	}
	d2, err := store.OpenDurable(dir, z, store.WithAutoCompact(false))
	if err != nil {
		t.Fatalf("recovery after write faults: %v", err)
	}
	defer d2.Close()
	res, err := d2.Scan(ctx, []query.Interval{{Lo: 0, Hi: u.N()}}, store.ScanStrict())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(acked) {
		t.Fatalf("recovered %d records, acked %d", len(res.Records), len(acked))
	}
	got := map[uint64]bool{}
	for _, r := range res.Records {
		got[r.Payload] = true
	}
	for _, r := range acked {
		if !got[r.Payload] {
			t.Fatalf("acked record %d lost", r.Payload)
		}
	}
}
