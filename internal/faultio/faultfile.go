package faultio

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// OSFile is the slice of a file handle the write-path injector intercepts.
// It structurally matches wal.File, so a *FaultFile can be returned from the
// durable store's WithWALWrapper hook without faultio importing the wal
// package.
type OSFile interface {
	io.Writer
	io.Seeker
	Sync() error
	Truncate(size int64) error
	Close() error
}

// FileConfig selects the write-path fault schedule. Probabilities are per
// operation and must lie in [0, 1].
type FileConfig struct {
	Seed int64
	// TornWriteProb is the probability a Write persists only a prefix of its
	// bytes and reports an error — a torn write. The short count returned is
	// truthful, as a crashed kernel write would leave.
	TornWriteProb float64
	// FsyncErrProb is the probability a Sync reports failure. The data may
	// in fact have reached the platter — the caller must treat the entry as
	// unacknowledged either way, exactly the ambiguity real fsync failures
	// create.
	FsyncErrProb float64
}

// FileCounters is a snapshot of a FaultFile's accounting.
type FileCounters struct {
	Writes     uint64 // Write calls observed
	TornWrites uint64 // writes torn (prefix persisted, error returned)
	Syncs      uint64 // Sync calls observed
	FsyncErrs  uint64 // syncs failed
}

// ErrInjectedWrite and ErrInjectedFsync mark injected write-path failures;
// test with errors.Is.
var (
	ErrInjectedWrite = errors.New("faultio: injected torn write")
	ErrInjectedFsync = errors.New("faultio: injected fsync failure")
)

// FaultFile wraps a file handle with deterministic torn-write and
// fsync-failure injection. Decisions are pure functions of (seed, stream,
// operation index), so a schedule is reproducible from its seed alone and
// composes with the page-read Injector on the same store: reads and writes
// draw from independent streams. FaultFile is safe for concurrent use,
// though the WAL serializes writers anyway.
type FaultFile struct {
	mu  sync.Mutex
	f   OSFile
	cfg FileConfig

	writes, tornWrites, syncs, fsyncErrs uint64
}

// WrapFile builds a write-path injector over f.
func WrapFile(f OSFile, cfg FileConfig) (*FaultFile, error) {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"TornWriteProb", cfg.TornWriteProb},
		{"FsyncErrProb", cfg.FsyncErrProb},
	} {
		if p.v < 0 || p.v > 1 {
			return nil, fmt.Errorf("faultio: %s = %v outside [0, 1]", p.name, p.v)
		}
	}
	return &FaultFile{f: f, cfg: cfg}, nil
}

// Write-path decision streams, offset so they never collide with the
// page-read streams of an Injector sharing the seed.
const (
	streamTornWrite = 0x100 + iota
	streamTornLen
	streamFsync
)

// Write implements OSFile. A torn write persists a strict prefix — possibly
// zero bytes — and returns the true short count with an error wrapping
// ErrInjectedWrite.
func (ff *FaultFile) Write(p []byte) (int, error) {
	ff.mu.Lock()
	ff.writes++
	n := ff.writes
	torn := len(p) > 0 && u01(hash(ff.cfg.Seed, streamTornWrite, 0, n)) < ff.cfg.TornWriteProb
	if torn {
		ff.tornWrites++
	}
	ff.mu.Unlock()
	if !torn {
		return ff.f.Write(p)
	}
	keep := int(hash(ff.cfg.Seed, streamTornLen, 0, n) % uint64(len(p)))
	wrote, err := ff.f.Write(p[:keep])
	if err != nil {
		return wrote, err
	}
	return wrote, fmt.Errorf("%w: %d of %d bytes", ErrInjectedWrite, wrote, len(p))
}

// Sync implements OSFile. An injected failure still syncs the underlying
// file — simulating the "error reported, data durable" half of the fsync
// ambiguity, the harder case for the caller to handle correctly.
func (ff *FaultFile) Sync() error {
	ff.mu.Lock()
	ff.syncs++
	n := ff.syncs
	fail := u01(hash(ff.cfg.Seed, streamFsync, 0, n)) < ff.cfg.FsyncErrProb
	if fail {
		ff.fsyncErrs++
	}
	ff.mu.Unlock()
	err := ff.f.Sync()
	if err != nil {
		return err
	}
	if fail {
		return ErrInjectedFsync
	}
	return nil
}

// Seek implements OSFile, passing through untouched.
func (ff *FaultFile) Seek(offset int64, whence int) (int64, error) {
	return ff.f.Seek(offset, whence)
}

// Truncate implements OSFile, passing through untouched — repair must be
// reliable or the log poisons itself, which is its own tested path.
func (ff *FaultFile) Truncate(size int64) error { return ff.f.Truncate(size) }

// Close implements OSFile.
func (ff *FaultFile) Close() error { return ff.f.Close() }

// Counters returns a snapshot of the write-path fault accounting.
func (ff *FaultFile) Counters() FileCounters {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	return FileCounters{
		Writes:     ff.writes,
		TornWrites: ff.tornWrites,
		Syncs:      ff.syncs,
		FsyncErrs:  ff.fsyncErrs,
	}
}
