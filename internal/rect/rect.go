// Package rect generalizes the paper's model from cubes to rectangular
// universes with per-dimension sides 2^(k_i). The paper (§III) assumes all
// sides equal; real datasets are rarely cubic, and the paper's proof
// technique carries over directly:
//
//   - Lemma 2 (S_A′ identity) holds verbatim — it never uses geometry.
//   - Lemma 4's decomposition count becomes, for an edge along dimension i,
//     2·(n/s_i)·(z+1)(s_i−1−z) ≤ n·s_i/2, maximized by the longest side.
//   - Chaining exactly as in Theorem 1's proof yields the generalized
//     lower bound Davg(π) ≥ (2/(3d)) · (n²−1)/(n·s_max),
//     which reduces to the paper's bound when all sides are 2^k
//     (n/s_max = n^(1−1/d)).
//
// The package provides the rectangular universe, the two curves whose
// constructions extend naturally (compact Z — round-robin interleave that
// retires exhausted dimensions — and row-major), an exact parallel Davg
// sweep, a closed form for the row-major curve, and the generalized bound.
// Experiment "ext-rect" verifies all of it.
package rect

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/grid"
	"repro/internal/parallel"
)

// Universe is a d-dimensional grid with side 2^(ks[i]) along dimension i.
type Universe struct {
	ks    []int
	n     uint64
	sides []uint32
}

// New builds a rectangular universe. Each k_i must be >= 1 (degenerate
// single-cell dimensions have no neighbor structure) and Σ k_i <= 62.
func New(ks ...int) (*Universe, error) {
	if len(ks) == 0 {
		return nil, fmt.Errorf("rect: no dimensions")
	}
	total := 0
	for i, k := range ks {
		if k < 1 {
			return nil, fmt.Errorf("rect: k[%d] = %d, need >= 1", i, k)
		}
		total += k
	}
	if total > bits.MaxKeyBits {
		return nil, fmt.Errorf("rect: Σk = %d exceeds %d bits", total, bits.MaxKeyBits)
	}
	u := &Universe{ks: append([]int(nil), ks...), n: 1 << uint(total)}
	u.sides = make([]uint32, len(ks))
	for i, k := range ks {
		u.sides[i] = 1 << uint(k)
	}
	return u, nil
}

// MustNew is New for known-good shapes. It panics iff New would return an
// error (no dimensions, a negative exponent, or a total cell count
// overflowing uint64), so it is safe exactly for literal shape lists in
// tests and examples; code handling caller-supplied shapes must use New and
// propagate the error.
func MustNew(ks ...int) *Universe {
	u, err := New(ks...)
	if err != nil {
		panic(err)
	}
	return u
}

// D returns the dimensionality.
func (u *Universe) D() int { return len(u.ks) }

// N returns the cell count 2^Σk.
func (u *Universe) N() uint64 { return u.n }

// Side returns the side length along dimension i.
func (u *Universe) Side(i int) uint32 { return u.sides[i] }

// K returns k_i.
func (u *Universe) K(i int) int { return u.ks[i] }

// MaxSide returns the longest side.
func (u *Universe) MaxSide() uint32 {
	m := u.sides[0]
	for _, s := range u.sides[1:] {
		if s > m {
			m = s
		}
	}
	return m
}

// String implements fmt.Stringer.
func (u *Universe) String() string {
	s := "rect("
	for i, k := range u.ks {
		if i > 0 {
			s += "×"
		}
		s += fmt.Sprintf("2^%d", k)
	}
	return s + ")"
}

// NewPoint returns a zeroed point of the right arity.
func (u *Universe) NewPoint() grid.Point { return make(grid.Point, len(u.ks)) }

// Contains reports whether p is a cell.
func (u *Universe) Contains(p grid.Point) bool {
	if len(p) != len(u.ks) {
		return false
	}
	for i, v := range p {
		if v >= u.sides[i] {
			return false
		}
	}
	return true
}

// Linear returns the mixed-radix row-major index with dimension 1 least
// significant (the rectangular analogue of eq. 8).
func (u *Universe) Linear(p grid.Point) uint64 {
	var idx uint64
	for i := len(p) - 1; i >= 0; i-- {
		idx = idx<<uint(u.ks[i]) | uint64(p[i])
	}
	return idx
}

// FromLinear inverts Linear into dst.
func (u *Universe) FromLinear(idx uint64, dst grid.Point) {
	for i := range dst {
		dst[i] = uint32(idx & uint64(u.sides[i]-1))
		idx >>= uint(u.ks[i])
	}
}

// Degree returns the number of Manhattan-1 neighbors of p.
func (u *Universe) Degree(p grid.Point) int {
	deg := 0
	for i, v := range p {
		if v > 0 {
			deg++
		}
		if v+1 < u.sides[i] {
			deg++
		}
	}
	return deg
}

// Curve is a bijection over the rectangular universe.
type Curve interface {
	Universe() *Universe
	Index(p grid.Point) uint64
	Point(idx uint64, dst grid.Point)
	Name() string
}

// RowMajor is the rectangular simple curve.
type RowMajor struct{ u *Universe }

// NewRowMajor returns the row-major curve over u.
func NewRowMajor(u *Universe) *RowMajor { return &RowMajor{u: u} }

// Universe implements Curve.
func (r *RowMajor) Universe() *Universe { return r.u }

// Name implements Curve.
func (r *RowMajor) Name() string { return "rect-rowmajor" }

// Index implements Curve.
func (r *RowMajor) Index(p grid.Point) uint64 { return r.u.Linear(p) }

// Point implements Curve.
func (r *RowMajor) Point(idx uint64, dst grid.Point) { r.u.FromLinear(idx, dst) }

// CompactZ is the rectangular Z curve: bits are interleaved round-robin
// from the least significant level upward, skipping dimensions whose bits
// are exhausted — the standard "compact Morton" construction for
// anisotropic grids. When all k_i are equal it coincides (up to the
// paper's dimension order) with the cubic Z curve.
type CompactZ struct {
	u *Universe
	// shifts[level*d + i] gives the key bit position of coordinate bit
	// `level` of dimension i, or -1 when k_i <= level.
	shifts []int8
	maxK   int
}

// NewCompactZ returns the compact Z curve over u.
func NewCompactZ(u *Universe) *CompactZ {
	d := u.D()
	maxK := 0
	for i := 0; i < d; i++ {
		if u.K(i) > maxK {
			maxK = u.K(i)
		}
	}
	c := &CompactZ{u: u, shifts: make([]int8, maxK*d), maxK: maxK}
	pos := int8(0)
	for level := 0; level < maxK; level++ {
		for i := 0; i < d; i++ {
			if level < u.K(i) {
				c.shifts[level*d+i] = pos
				pos++
			} else {
				c.shifts[level*d+i] = -1
			}
		}
	}
	return c
}

// Universe implements Curve.
func (c *CompactZ) Universe() *Universe { return c.u }

// Name implements Curve.
func (c *CompactZ) Name() string { return "rect-z" }

// Index implements Curve.
func (c *CompactZ) Index(p grid.Point) uint64 {
	d := c.u.D()
	var key uint64
	for level := 0; level < c.maxK; level++ {
		for i := 0; i < d; i++ {
			if sh := c.shifts[level*d+i]; sh >= 0 {
				key |= (uint64(p[i]>>uint(level)) & 1) << uint8(sh)
			}
		}
	}
	return key
}

// Point implements Curve.
func (c *CompactZ) Point(idx uint64, dst grid.Point) {
	d := c.u.D()
	for i := range dst {
		dst[i] = 0
	}
	for level := 0; level < c.maxK; level++ {
		for i := 0; i < d; i++ {
			if sh := c.shifts[level*d+i]; sh >= 0 {
				dst[i] |= uint32(idx>>uint8(sh)&1) << uint(level)
			}
		}
	}
}

// DAvg computes the exact average NN-stretch of a rectangular curve, in
// parallel (Definitions 1-2 applied to the rectangular neighbor relation).
func DAvg(c Curve, workers int) float64 {
	u := c.Universe()
	n := u.N()
	d := u.D()
	total := parallel.SumFloat64Chunked(n, workers, func(lo, hi uint64) float64 {
		p := u.NewPoint()
		q := u.NewPoint()
		var s, comp float64
		for lin := lo; lin < hi; lin++ {
			u.FromLinear(lin, p)
			base := c.Index(p)
			var sum uint64
			deg := 0
			copy(q, p)
			for i := 0; i < d; i++ {
				if p[i] > 0 {
					q[i] = p[i] - 1
					sum += absDiff(base, c.Index(q))
					deg++
					q[i] = p[i]
				}
				if p[i]+1 < u.Side(i) {
					q[i] = p[i] + 1
					sum += absDiff(base, c.Index(q))
					deg++
					q[i] = p[i]
				}
			}
			y := float64(sum)/float64(deg) - comp
			t := s + y
			comp = (t - s) - y
			s = t
		}
		return s
	})
	return total / float64(n)
}

// NNAvgLowerBound returns the generalized Theorem 1 bound for rectangular
// universes: (2/(3d)) · (n²−1)/(n·s_max). For a cube it equals the paper's
// (2/3d)(n^(1−1/d) − n^(−1−1/d)).
func NNAvgLowerBound(u *Universe) float64 {
	n := float64(u.N())
	return 2 / (3 * float64(u.D())) * (n*n - 1) / (n * float64(u.MaxSide()))
}

// RowMajorDAvgExact returns the exact Davg of the rectangular row-major
// curve by the boundary-subset closed form, generalizing the cubic formula:
// with stride_i = Π_{j<i} s_j,
//
//	Davg = (1/n) Σ_{B ⊆ dims} (Π_{i∈B} 2)(Π_{i∉B} (s_i−2)) ·
//	       (2 Σ_{i∉B} stride_i + Σ_{i∈B} stride_i) / (2d − |B|).
func RowMajorDAvgExact(u *Universe) float64 {
	d := u.D()
	strides := make([]float64, d)
	stride := 1.0
	for i := 0; i < d; i++ {
		strides[i] = stride
		stride *= float64(u.Side(i))
	}
	var total float64
	for mask := 0; mask < 1<<uint(d); mask++ {
		cells := 1.0
		var wsum float64
		size := 0
		for i := 0; i < d; i++ {
			if mask&(1<<uint(i)) != 0 {
				cells *= 2
				wsum += strides[i]
				size++
			} else {
				cells *= float64(u.Side(i)) - 2
				wsum += 2 * strides[i]
			}
		}
		if cells == 0 {
			continue
		}
		total += cells * wsum / float64(2*d-size)
	}
	return total / float64(u.N())
}

// Validate checks bijectivity of a rectangular curve by full enumeration.
func Validate(c Curve) error {
	u := c.Universe()
	n := u.N()
	seen := make([]uint64, (n+63)/64)
	p := u.NewPoint()
	q := u.NewPoint()
	for lin := uint64(0); lin < n; lin++ {
		u.FromLinear(lin, p)
		idx := c.Index(p)
		if idx >= n {
			return fmt.Errorf("rect: %s Index(%v) = %d out of range", c.Name(), p, idx)
		}
		if seen[idx/64]&(1<<(idx%64)) != 0 {
			return fmt.Errorf("rect: %s assigns index %d twice", c.Name(), idx)
		}
		seen[idx/64] |= 1 << (idx % 64)
		c.Point(idx, q)
		if !q.Equal(p) {
			return fmt.Errorf("rect: %s Point(Index(%v)) = %v", c.Name(), p, q)
		}
	}
	return nil
}

func absDiff(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return b - a
}
