package rect

import (
	"math"
	"testing"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/grid"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Fatal("no dims accepted")
	}
	if _, err := New(3, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := New(32, 31); err == nil {
		t.Fatal("63 bits accepted")
	}
	u := MustNew(3, 1, 2)
	if u.D() != 3 || u.N() != 64 || u.Side(0) != 8 || u.Side(1) != 2 || u.Side(2) != 4 {
		t.Fatalf("bad universe %v", u)
	}
	if u.MaxSide() != 8 || u.K(2) != 2 {
		t.Fatal("accessors wrong")
	}
	if u.String() != "rect(2^3×2^1×2^2)" {
		t.Fatalf("String = %q", u.String())
	}
}

func TestLinearRoundTrip(t *testing.T) {
	u := MustNew(2, 4, 3)
	p := u.NewPoint()
	seen := map[uint64]bool{}
	for idx := uint64(0); idx < u.N(); idx++ {
		u.FromLinear(idx, p)
		if !u.Contains(p) {
			t.Fatalf("FromLinear(%d) = %v outside", idx, p)
		}
		if got := u.Linear(p); got != idx {
			t.Fatalf("round trip %d → %v → %d", idx, p, got)
		}
		seen[idx] = true
	}
	if uint64(len(seen)) != u.N() {
		t.Fatal("linear not bijective")
	}
	if u.Contains(grid.Point{0}) || u.Contains(grid.Point{0, 99, 0}) {
		t.Fatal("Contains wrong")
	}
}

func TestCurvesAreBijections(t *testing.T) {
	for _, ks := range [][]int{{6}, {4, 3}, {2, 5}, {3, 1, 2}, {1, 1, 1, 4}} {
		u := MustNew(ks...)
		for _, c := range []Curve{NewRowMajor(u), NewCompactZ(u)} {
			if err := Validate(c); err != nil {
				t.Errorf("%v: %v", u, err)
			}
		}
	}
}

func TestCompactZMatchesCubicZOnCubes(t *testing.T) {
	// On an equal-sided universe the compact Z curve must coincide with the
	// cubic Z curve up to the paper's dimension order: our round-robin
	// starts with dimension 1 at the LOW bit of each group, while the
	// cubic curve puts dimension 1 at the HIGH bit. Reversing the axis
	// order aligns them.
	cu := grid.MustNew(3, 2)
	cz := curve.NewZ(cu)
	ru := MustNew(2, 2, 2)
	rz := NewCompactZ(ru)
	p := cu.NewPoint()
	rev := cu.NewPoint()
	cu.Cells(func(_ uint64, q grid.Point) bool {
		copy(p, q)
		for i := range p {
			rev[i] = p[len(p)-1-i]
		}
		if cz.Index(p) != rz.Index(rev) {
			t.Fatalf("cubic Z(%v) = %d, compact Z(%v) = %d", p, cz.Index(p), rev, rz.Index(rev))
		}
		return true
	})
}

func TestDAvgMatchesCubicEngineOnCubes(t *testing.T) {
	// The rectangular Davg sweep must agree with the cubic engine.
	cu := grid.MustNew(2, 5)
	ru := MustNew(5, 5)
	if got, want := DAvg(NewRowMajor(ru), 2), core.DAvg(curve.NewSimple(cu), 2); math.Abs(got-want) > 1e-9 {
		t.Fatalf("rect row-major Davg %v, cubic simple %v", got, want)
	}
}

func TestGeneralizedBoundReducesToTheorem1(t *testing.T) {
	for _, dk := range [][2]int{{1, 6}, {2, 4}, {3, 3}} {
		d, k := dk[0], dk[1]
		ks := make([]int, d)
		for i := range ks {
			ks[i] = k
		}
		u := MustNew(ks...)
		got := NNAvgLowerBound(u)
		want := bounds.NNAvgLowerBound(d, k)
		if math.Abs(got-want) > 1e-9*want {
			t.Fatalf("d=%d k=%d: generalized bound %v, paper bound %v", d, k, got, want)
		}
	}
}

func TestGeneralizedBoundHoldsOnRectangles(t *testing.T) {
	for _, ks := range [][]int{{8, 3}, {3, 8}, {10, 2}, {6, 3, 2}, {2, 2, 7}} {
		u := MustNew(ks...)
		lb := NNAvgLowerBound(u)
		for _, c := range []Curve{NewRowMajor(u), NewCompactZ(u)} {
			if got := DAvg(c, 2); got < lb-1e-9 {
				t.Errorf("%s on %v: Davg %v below generalized bound %v", c.Name(), u, got, lb)
			}
		}
	}
}

// bruteDAvg recomputes Davg with no parallelism and no cleverness.
func bruteDAvg(c Curve) float64 {
	u := c.Universe()
	p := u.NewPoint()
	q := u.NewPoint()
	var total float64
	for lin := uint64(0); lin < u.N(); lin++ {
		u.FromLinear(lin, p)
		base := c.Index(p)
		var sum uint64
		deg := 0
		copy(q, p)
		for i := 0; i < u.D(); i++ {
			if p[i] > 0 {
				q[i] = p[i] - 1
				sum += absDiff(base, c.Index(q))
				deg++
				q[i] = p[i]
			}
			if p[i]+1 < u.Side(i) {
				q[i] = p[i] + 1
				sum += absDiff(base, c.Index(q))
				deg++
				q[i] = p[i]
			}
		}
		total += float64(sum) / float64(deg)
	}
	return total / float64(u.N())
}

func TestRowMajorClosedFormMatchesBrute(t *testing.T) {
	for _, ks := range [][]int{{5}, {4, 2}, {2, 4}, {3, 3, 2}, {1, 5}, {1, 1, 1}} {
		u := MustNew(ks...)
		c := NewRowMajor(u)
		brute := bruteDAvg(c)
		closed := RowMajorDAvgExact(u)
		if math.Abs(brute-closed) > 1e-9*(1+closed) {
			t.Errorf("%v: brute %v, closed form %v", u, brute, closed)
		}
		if swept := DAvg(c, 3); math.Abs(swept-brute) > 1e-9*(1+brute) {
			t.Errorf("%v: parallel sweep %v, brute %v", u, swept, brute)
		}
	}
}

func TestAnisotropyMatters(t *testing.T) {
	// Same n, different shapes: the generalized bound scales with n/s_max,
	// so elongated universes admit (and achieve) smaller stretch.
	square := MustNew(6, 6)
	thin := MustNew(10, 2)
	if square.N() != thin.N() {
		t.Fatal("shapes must share n")
	}
	lbSquare := NNAvgLowerBound(square)
	lbThin := NNAvgLowerBound(thin)
	if lbThin >= lbSquare {
		t.Fatalf("thin bound %v not below square bound %v", lbThin, lbSquare)
	}
	dSquare := DAvg(NewCompactZ(square), 2)
	dThin := DAvg(NewCompactZ(thin), 2)
	if dThin >= dSquare {
		t.Fatalf("thin Davg %v not below square Davg %v", dThin, dSquare)
	}
}

func BenchmarkCompactZIndex(b *testing.B) {
	u := MustNew(20, 10, 5)
	z := NewCompactZ(u)
	p := grid.Point{123456, 789, 17}
	for i := 0; i < b.N; i++ {
		sink = z.Index(p)
	}
}

var sink uint64
