package cluster

import (
	"fmt"

	"repro/internal/partition"
)

// View is the live state of a topology: which nodes are believed dead, and
// the failed-over ownership partition that results. Ownership failover is
// exactly partition.FailParts — a dead node's curve segment is absorbed by
// its surviving curve-neighbors with minimal cut displacement — applied
// incrementally at each death, so cascading failures compose the way the
// partition layer's own chaos campaign exercises them.
//
// The ledger answers "who should serve this range" (load placement); the
// topology's replica sets answer "who can serve it" (data placement). The
// router consults both: it prefers the current owner when the owner holds a
// replica, and falls back through the replica set otherwise. Conserved
// checks the ledger's structural invariant — the live segments exactly tile
// the index space and dead nodes own nothing — after every transition.
//
// View is not safe for concurrent use; the Router serializes access.
type View struct {
	topo      *Topology
	dead      []bool
	killOrder []int // dead nodes in death order, for Revive's replay
	cur       *partition.Partition
}

// NewView starts from the topology's base ownership with every node live.
func NewView(t *Topology) *View {
	return &View{topo: t, dead: make([]bool, t.Nodes()), cur: t.Base()}
}

// Kill marks node i dead and fails its ownership over to the survivors.
// Killing an already-dead node is a no-op. When the last node dies the
// ownership ledger becomes empty (Current returns nil) until a Revive.
func (v *View) Kill(i int) error {
	if i < 0 || i >= len(v.dead) {
		return fmt.Errorf("cluster: node %d outside [0, %d)", i, len(v.dead))
	}
	if v.dead[i] {
		return nil
	}
	v.dead[i] = true
	v.killOrder = append(v.killOrder, i)
	if v.NumAlive() == 0 {
		v.cur = nil
		return nil
	}
	// FailParts must see the FULL dead set, not just the new death: it
	// absorbs dead ranges into curve-adjacent parts it believes alive, so
	// passing only {i} could hand i's segment to an earlier casualty.
	next, _, err := v.cur.FailParts(v.deadList())
	if err != nil {
		return fmt.Errorf("cluster: failover of node %d: %w", i, err)
	}
	v.cur = next
	return nil
}

// deadList returns the currently-dead nodes, ascending.
func (v *View) deadList() []int {
	var out []int
	for i, d := range v.dead {
		if d {
			out = append(out, i)
		}
	}
	return out
}

// Revive marks node i live again and rebuilds the ownership ledger by
// replaying the remaining deaths, in their original order, from the base
// partition — ownership is a pure function of the surviving death history.
// Reviving a live node is a no-op.
func (v *View) Revive(i int) error {
	if i < 0 || i >= len(v.dead) {
		return fmt.Errorf("cluster: node %d outside [0, %d)", i, len(v.dead))
	}
	if !v.dead[i] {
		return nil
	}
	v.dead[i] = false
	order := v.killOrder
	v.killOrder = v.killOrder[:0]
	v.cur = v.topo.Base()
	var deadSoFar []int
	for _, d := range order {
		if d == i {
			continue
		}
		v.killOrder = append(v.killOrder, d)
		deadSoFar = append(deadSoFar, d)
		next, _, err := v.cur.FailParts(deadSoFar)
		if err != nil {
			return fmt.Errorf("cluster: replaying failover of node %d: %w", d, err)
		}
		v.cur = next
	}
	return nil
}

// Alive reports whether node i is believed live.
func (v *View) Alive(i int) bool { return i >= 0 && i < len(v.dead) && !v.dead[i] }

// NumAlive returns the number of live nodes.
func (v *View) NumAlive() int {
	n := 0
	for _, d := range v.dead {
		if !d {
			n++
		}
	}
	return n
}

// Current returns the failed-over ownership partition, or nil when every
// node is dead.
func (v *View) Current() *partition.Partition { return v.cur }

// LiveReplicas returns the live nodes holding segment j, in routing
// preference order: the segment's current owner first when it holds a
// replica, then the replica set in home-first order. Empty means the
// segment is unreachable — every replica is dead.
func (v *View) LiveReplicas(j int) []int {
	set := v.topo.ReplicaSet(j)
	out := make([]int, 0, len(set))
	if v.cur != nil {
		lo, hi := v.topo.Segment(j)
		if lo < hi {
			if owner := v.cur.OwnerOfPosition(lo); v.Alive(owner) && v.topo.Holds(owner, j) {
				out = append(out, owner)
			}
		}
	}
	for _, n := range set {
		if v.Alive(n) && (len(out) == 0 || n != out[0]) {
			out = append(out, n)
		}
	}
	return out
}

// DarkSegments returns the segments with no live replica, ascending.
func (v *View) DarkSegments() []int {
	var out []int
	for j := 0; j < v.topo.Nodes(); j++ {
		if len(v.LiveReplicas(j)) == 0 {
			out = append(out, j)
		}
	}
	return out
}

// Conserved checks the ownership ledger's structural invariant: the
// per-node segments are non-decreasing, exactly tile [0, n), and every dead
// node owns an empty segment. It errors when all nodes are dead (there is
// no ownership to conserve) — callers keeping a survivor alive never see
// that case.
func (v *View) Conserved() error {
	if v.cur == nil {
		return fmt.Errorf("cluster: all %d nodes dead, ownership ledger empty", len(v.dead))
	}
	if v.cur.Parts() != v.topo.Nodes() {
		return fmt.Errorf("cluster: ledger has %d parts, topology %d nodes", v.cur.Parts(), v.topo.Nodes())
	}
	n := v.topo.Curve().Universe().N()
	prev := uint64(0)
	for j := 0; j < v.cur.Parts(); j++ {
		lo, hi := v.cur.Segment(j)
		if lo != prev {
			return fmt.Errorf("cluster: node %d segment starts at %d, want %d — ownership gap or overlap", j, lo, prev)
		}
		if hi < lo {
			return fmt.Errorf("cluster: node %d segment [%d, %d) inverted", j, lo, hi)
		}
		if v.dead[j] && hi != lo {
			return fmt.Errorf("cluster: dead node %d still owns [%d, %d)", j, lo, hi)
		}
		prev = hi
	}
	if prev != n {
		return fmt.Errorf("cluster: segments end at %d, want %d — ownership not conserved", prev, n)
	}
	return nil
}
