package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/service"
	"repro/internal/store"
)

// Node is the router's handle on one cluster member: an interval scan with
// a per-request deadline, a readiness probe, the durable write operations,
// and the anti-entropy range digest. Over the wire it is a ClientNode;
// tests substitute in-process fakes.
type Node interface {
	Scan(ctx context.Context, ivs []query.Interval, timeout time.Duration) (store.ScanResult, error)
	Ready(ctx context.Context) bool
	// Put durably inserts rec on the member; nil means the member's WAL
	// holds the write.
	Put(ctx context.Context, rec store.Record, timeout time.Duration) error
	// Delete durably removes every stored instance equal to rec.
	Delete(ctx context.Context, rec store.Record, timeout time.Duration) error
	// Flush persists the member's memtables to on-disk runs.
	Flush(ctx context.Context, timeout time.Duration) error
	// Digest summarizes the records the member holds in ivs for
	// anti-entropy comparison.
	Digest(ctx context.Context, ivs []query.Interval, timeout time.Duration) (service.RangeDigest, error)
}

// Result is the outcome of one routed query, mirroring service.Result
// across the cluster: records in curve order plus the exact curve intervals
// no live replica could serve.
type Result struct {
	// Records holds the served records in curve order — the live-tiled
	// subset of what a single store holding everything would return.
	Records []store.Record
	// Unavailable lists the curve intervals unreachable after replica
	// fallback: sorted, disjoint, merged. An interval lands here only when
	// every replica of its segment failed or was dead, or when every
	// replica's local store reported it dark.
	Unavailable []query.Interval
	// NodesQueried counts the distinct nodes that contributed an answer.
	NodesQueried int
	// PagesRead totals the leaf pages members reported touching on behalf
	// of this query, hedged losers excluded.
	PagesRead int64
	// Hedges counts attempts launched by the hedge timer, and Failovers
	// attempts launched because an earlier replica failed.
	Hedges, Failovers int
}

// Complete reports whether the whole query was served.
func (r Result) Complete() bool { return len(r.Unavailable) == 0 }

// Router fans box queries out over the cluster: decompose once, clip the
// intervals to each topology segment, scatter each segment's share to a
// live replica (hedging to further replicas on slowness, failing over on
// errors), and merge per-segment results in curve order. Node failures
// surface as exact dark intervals, never as silently missing records, and
// every detected death updates the FailParts ownership ledger.
//
// Methods are safe for concurrent use.
type Router struct {
	topo  *Topology
	nodes []Node

	mu      sync.Mutex // guards view, nodes, and missedW
	view    *View
	missedW []int64 // per-node writes acked without that replica

	nodeTimeout time.Duration
	hedgeDelay  time.Duration
	writeQuorum int // 0 = read-only router

	reg        *metrics.Registry
	qTotal     *metrics.Counter
	qDegraded  *metrics.Counter
	hedges     *metrics.Counter
	failovers  *metrics.Counter
	deaths     *metrics.Counter
	revivals   *metrics.Counter
	darkIvs    *metrics.Counter
	nodeErrors *metrics.Counter
	wTotal     *metrics.Counter
	wDegraded  *metrics.Counter
	wMisses    *metrics.Counter
	aeRepairs  *metrics.Counter
}

// RouterOption configures NewRouter.
type RouterOption func(*Router)

// WithNodeTimeout sets the per-node request deadline (default 2s).
func WithNodeTimeout(d time.Duration) RouterOption {
	return func(rt *Router) { rt.nodeTimeout = d }
}

// WithHedgeDelay sets how long the router waits on a replica before racing
// the next one (default 50ms; 0 disables time-based hedging — replicas are
// then tried only on failure).
func WithHedgeDelay(d time.Duration) RouterOption {
	return func(rt *Router) { rt.hedgeDelay = d }
}

// WithRouterMetrics records into reg instead of a fresh registry.
func WithRouterMetrics(reg *metrics.Registry) RouterOption {
	return func(rt *Router) { rt.reg = reg }
}

// WithWriteQuorum makes the router writable: a routed Put or Delete fans out
// to every live replica of the owning segment and is acknowledged once w
// replicas have durably applied it. w must satisfy 1 ≤ w ≤ R. The default, 0,
// leaves the router read-only — Put, Delete and Flush refuse with
// ErrRouterReadOnly and the read path behaves exactly as before (in
// particular, Probe revives ready nodes without anti-entropy catch-up, since
// a read-only cluster's members can never diverge).
func WithWriteQuorum(w int) RouterOption {
	return func(rt *Router) { rt.writeQuorum = w }
}

// NewRouter builds a router over the topology's nodes; nodes[i] must be the
// member holding node index i's ranges.
func NewRouter(topo *Topology, nodes []Node, opts ...RouterOption) (*Router, error) {
	if len(nodes) != topo.Nodes() {
		return nil, fmt.Errorf("cluster: %d node handles for a %d-node topology", len(nodes), topo.Nodes())
	}
	for i, n := range nodes {
		if n == nil {
			return nil, fmt.Errorf("cluster: node handle %d is nil", i)
		}
	}
	rt := &Router{
		topo:        topo,
		nodes:       append([]Node(nil), nodes...),
		view:        NewView(topo),
		nodeTimeout: 2 * time.Second,
		hedgeDelay:  50 * time.Millisecond,
	}
	for _, opt := range opts {
		if opt != nil {
			opt(rt)
		}
	}
	if rt.nodeTimeout <= 0 {
		return nil, fmt.Errorf("cluster: node timeout %v <= 0", rt.nodeTimeout)
	}
	if rt.hedgeDelay < 0 {
		return nil, fmt.Errorf("cluster: negative hedge delay %v", rt.hedgeDelay)
	}
	if rt.writeQuorum < 0 || rt.writeQuorum > topo.Replicas() {
		return nil, fmt.Errorf("cluster: write quorum %d outside [0, %d replicas]", rt.writeQuorum, topo.Replicas())
	}
	rt.missedW = make([]int64, topo.Nodes())
	if rt.reg == nil {
		rt.reg = metrics.NewRegistry()
	}
	rt.qTotal = rt.reg.Counter("router.queries")
	rt.qDegraded = rt.reg.Counter("router.degraded")
	rt.hedges = rt.reg.Counter("router.hedges")
	rt.failovers = rt.reg.Counter("router.failovers")
	rt.deaths = rt.reg.Counter("router.node_deaths")
	rt.revivals = rt.reg.Counter("router.node_revivals")
	rt.darkIvs = rt.reg.Counter("router.dark_intervals")
	rt.nodeErrors = rt.reg.Counter("router.node_errors")
	rt.wTotal = rt.reg.Counter("router.writes")
	rt.wDegraded = rt.reg.Counter("router.writes_degraded")
	rt.wMisses = rt.reg.Counter("router.write_misses")
	rt.aeRepairs = rt.reg.Counter("router.antientropy_repairs")
	return rt, nil
}

// Topology returns the router's placement plan.
func (rt *Router) Topology() *Topology { return rt.topo }

// Metrics returns the router's metric registry.
func (rt *Router) Metrics() *metrics.Registry { return rt.reg }

// Query answers the box query: decompose on the router once, then scatter
// the clipped intervals across the cluster.
func (rt *Router) Query(ctx context.Context, b query.Box) (Result, error) {
	return rt.Scan(ctx, query.DecomposeBox(rt.topo.Curve(), b))
}

// Scan answers a raw interval scan across the cluster: a Collect over the
// streaming scatter, so the buffered and streaming entry points cannot
// diverge. Intervals must be sorted, disjoint, and within the curve's
// index space.
func (rt *Router) Scan(ctx context.Context, ivs []query.Interval) (Result, error) {
	st, err := rt.ScanStream(ctx, ivs)
	if err != nil {
		return Result{}, err
	}
	return st.Collect()
}

// Stream is an incremental view of one routed scan: each segment's records
// arrive as one batch, in segment (hence global curve) order, as soon as
// that segment's replica chain finishes — the first segment's records reach
// the consumer while later segments are still being raced across replicas.
// The trailer commits the merged dark tiling once every segment is in.
type Stream struct {
	rt    *Router
	ctx   context.Context
	chans []chan segResult

	cur       int
	dark      []query.Interval
	nodesSeen map[int]bool

	trailer Result
	eof     bool
	err     error
}

// ScanStream opens the streaming form of Scan. The returned stream must be
// drained (Next until io.EOF or error); segment goroutines buffer their one
// result, so an abandoned stream does not leak them, but Close exists for
// symmetry and early interest loss.
func (rt *Router) ScanStream(ctx context.Context, ivs []query.Interval) (*Stream, error) {
	if err := service.ValidateIntervals(ivs, rt.topo.Curve().Universe().N()); err != nil {
		return nil, fmt.Errorf("cluster: scan: %w", err)
	}
	rt.qTotal.Inc()

	type job struct {
		seg int
		ivs []query.Interval
	}
	var jobs []job
	for j := 0; j < rt.topo.Nodes(); j++ {
		lo, hi := rt.topo.Segment(j)
		clipped := clipIntervals(ivs, lo, hi)
		if len(clipped) == 0 {
			continue
		}
		jobs = append(jobs, job{seg: j, ivs: clipped})
	}
	st := &Stream{
		rt:        rt,
		ctx:       ctx,
		chans:     make([]chan segResult, len(jobs)),
		nodesSeen: map[int]bool{},
	}
	for i, jb := range jobs {
		ch := make(chan segResult, 1) // buffered: the goroutine never blocks on an abandoned stream
		st.chans[i] = ch
		jb := jb
		go func() {
			ch <- rt.scanSegment(ctx, jb.seg, jb.ivs)
		}()
	}
	return st, nil
}

// Next returns the next segment's records (possibly empty), or io.EOF once
// every segment has reported — the trailer is then available. Segments
// ascend in curve space and each segment's records ascend in curve key, so
// batches concatenate in global curve order. A context that ended before
// the scatter completed surfaces as its error, exactly like the buffered
// Scan.
func (st *Stream) Next() ([]store.Record, error) {
	if st.err != nil {
		return nil, st.err
	}
	if st.eof {
		return nil, io.EOF
	}
	for st.cur < len(st.chans) {
		sr := <-st.chans[st.cur]
		st.cur++
		st.dark = append(st.dark, sr.dark...)
		st.trailer.PagesRead += sr.pages
		st.trailer.Hedges += sr.hedges
		st.trailer.Failovers += sr.failovers
		for _, n := range sr.servedBy {
			st.nodesSeen[n] = true
		}
		if len(sr.records) > 0 {
			return sr.records, nil
		}
	}
	if err := st.ctx.Err(); err != nil {
		st.err = err
		return nil, err
	}
	st.eof = true
	st.trailer.NodesQueried = len(st.nodesSeen)
	st.trailer.Unavailable = query.MergeIntervals(st.dark)
	if !st.trailer.Complete() {
		st.rt.qDegraded.Inc()
		st.rt.darkIvs.Add(int64(len(st.trailer.Unavailable)))
	}
	return nil, io.EOF
}

// Trailer returns the end-of-scan summary; valid only after Next has
// returned io.EOF.
func (st *Stream) Trailer() Result { return st.trailer }

// Close abandons the stream. In-flight segment goroutines park their result
// in their buffered channel and exit; nothing leaks.
func (st *Stream) Close() {
	if !st.eof && st.err == nil {
		st.err = io.ErrClosedPipe
	}
}

// Collect drains the stream into the buffered Result shape.
func (st *Stream) Collect() (Result, error) {
	var recs []store.Record
	for {
		b, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Result{}, err
		}
		recs = append(recs, b...)
	}
	res := st.Trailer()
	res.Records = recs
	return res, nil
}

// segResult is one segment's share of a scatter.
type segResult struct {
	records   []store.Record
	dark      []query.Interval
	servedBy  []int
	pages     int64
	hedges    int
	failovers int
}

// scanSegment serves one segment's clipped intervals, falling through the
// replica chain: the preferred replica answers; any intervals its local
// store reported dark are re-asked of the remaining replicas (replica
// fallback for partial failures); intervals still unserved when the chain
// is exhausted are dark for this query.
func (rt *Router) scanSegment(ctx context.Context, seg int, ivs []query.Interval) segResult {
	var sr segResult
	want := ivs
	tried := map[int]bool{}
	sources := 0
	for len(want) > 0 {
		prefs := rt.liveReplicasExcluding(seg, tried)
		if len(prefs) == 0 {
			sr.dark = append(sr.dark, want...)
			break
		}
		res, winner, hedges, failovers, err := rt.race(ctx, prefs, want)
		sr.hedges += hedges
		sr.failovers += failovers
		if err != nil {
			// Every replica in the chain failed (or the caller's context
			// ended): the remainder is unreachable for this query.
			sr.dark = append(sr.dark, want...)
			break
		}
		tried[winner] = true
		sr.servedBy = append(sr.servedBy, winner)
		sr.records = append(sr.records, res.Records...)
		sr.pages += int64(res.PagesRead)
		sources++
		// The winner's own dark intervals go back through the chain: a
		// replica may hold the pages this one lost.
		want = res.Unavailable
	}
	if sources > 1 {
		// Records were spliced from multiple replicas over disjoint
		// intervals; restore curve order.
		c := rt.topo.Curve()
		sort.SliceStable(sr.records, func(i, j int) bool {
			return c.Index(sr.records[i].Point) < c.Index(sr.records[j].Point)
		})
	}
	return sr
}

// liveReplicasExcluding snapshots the preference-ordered live replicas of
// seg, minus nodes already consulted for this segment scan.
func (rt *Router) liveReplicasExcluding(seg int, tried map[int]bool) []int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	all := rt.view.LiveReplicas(seg)
	out := all[:0]
	for _, n := range all {
		if !tried[n] {
			out = append(out, n)
		}
	}
	return out
}

// race runs the hedged attempt chain over prefs: the first replica is asked
// immediately, the next joins after the hedge delay without an answer or at
// once on a failure, and the first success wins. A replica whose attempt
// genuinely failed — any error not attributable to the race being canceled
// from outside — is marked dead (and failed over); losers reaped because
// somebody else won report a cancellation and are not, so a slow but
// healthy node keeps its ownership.
func (rt *Router) race(ctx context.Context, prefs []int, ivs []query.Interval) (store.ScanResult, int, int, int, error) {
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type attempt struct {
		node int
		res  store.ScanResult
		err  error
	}
	resc := make(chan attempt, len(prefs))
	launched := 0
	launch := func() {
		node := prefs[launched]
		launched++
		go func() {
			actx, acancel := context.WithTimeout(rctx, rt.nodeTimeout)
			defer acancel()
			res, err := rt.nodeHandle(node).Scan(actx, ivs, rt.nodeTimeout)
			if err != nil && ctx.Err() == nil && !errors.Is(err, context.Canceled) {
				rt.nodeErrors.Inc()
				rt.MarkDead(node)
			}
			resc <- attempt{node: node, res: res, err: err}
		}()
	}
	launch()
	pending := 1
	hedges, failovers := 0, 0

	var timer *time.Timer
	var hedgeC <-chan time.Time
	armHedge := func() {
		if timer != nil {
			timer.Stop()
		}
		timer, hedgeC = nil, nil
		if rt.hedgeDelay > 0 && launched < len(prefs) {
			timer = time.NewTimer(rt.hedgeDelay)
			hedgeC = timer.C
		}
	}
	armHedge()
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()

	var lastErr error
	for {
		select {
		case a := <-resc:
			pending--
			if a.err == nil {
				return a.res, a.node, hedges, failovers, nil
			}
			lastErr = a.err
			if err := ctx.Err(); err != nil {
				return store.ScanResult{}, -1, hedges, failovers, err
			}
			if launched < len(prefs) {
				failovers++
				rt.failovers.Inc()
				launch()
				pending++
				armHedge()
			} else if pending == 0 {
				return store.ScanResult{}, -1, hedges, failovers,
					fmt.Errorf("cluster: all %d replicas failed: %w", len(prefs), lastErr)
			}
		case <-hedgeC:
			hedges++
			rt.hedges.Inc()
			launch()
			pending++
			armHedge()
		case <-ctx.Done():
			return store.ScanResult{}, -1, hedges, failovers, ctx.Err()
		}
	}
}

// nodeHandle snapshots the current handle for node i (SetNode may swap it).
func (rt *Router) nodeHandle(i int) Node {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.nodes[i]
}

// MarkDead records node i as dead and fails its ownership over to the
// survivors. Idempotent.
func (rt *Router) MarkDead(i int) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if !rt.view.Alive(i) {
		return nil
	}
	rt.deaths.Inc()
	return rt.view.Kill(i)
}

// Revive records node i as live again, rebuilding the ownership ledger.
// Idempotent.
func (rt *Router) Revive(i int) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.view.Alive(i) {
		return nil
	}
	rt.revivals.Inc()
	return rt.view.Revive(i)
}

// SetNode swaps node i's handle — a restarted member typically comes back
// on a new address — without touching liveness; pair with Revive (or let
// Probe rediscover it).
func (rt *Router) SetNode(i int, n Node) error {
	if n == nil {
		return fmt.Errorf("cluster: nil node handle")
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if i < 0 || i >= len(rt.nodes) {
		return fmt.Errorf("cluster: node %d outside [0, %d)", i, len(rt.nodes))
	}
	rt.nodes[i] = n
	return nil
}

// Probe asks every dead node whether it is ready again and revives the ones
// that answer. On a writable router (write quorum ≥ 1) a ready node must
// first pass anti-entropy catch-up — its held ranges are reconciled against
// the live replicas so writes it missed while dead are replayed onto it —
// before it re-enters the read path; a node whose catch-up fails stays dead
// until the next probe. Returns the nodes revived.
func (rt *Router) Probe(ctx context.Context) []int {
	rt.mu.Lock()
	var deadNodes []int
	for i := 0; i < rt.topo.Nodes(); i++ {
		if !rt.view.Alive(i) {
			deadNodes = append(deadNodes, i)
		}
	}
	handles := make([]Node, len(deadNodes))
	for i, n := range deadNodes {
		handles[i] = rt.nodes[n]
	}
	rt.mu.Unlock()

	var revived []int
	for i, n := range deadNodes {
		if !handles[i].Ready(ctx) {
			continue
		}
		if rt.writeQuorum >= 1 {
			if _, err := rt.CatchUp(ctx, n); err != nil {
				continue // still divergent: stays dead, retried next probe
			}
		}
		if err := rt.Revive(n); err == nil {
			revived = append(revived, n)
		}
	}
	return revived
}

// Alive reports whether node i is currently believed live.
func (rt *Router) Alive(i int) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.view.Alive(i)
}

// Conserved checks the ownership ledger's tiling invariant.
func (rt *Router) Conserved() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.view.Conserved()
}

// NodeStatus is one node's row in a topology snapshot.
type NodeStatus struct {
	Node     int              `json:"node"`
	Alive    bool             `json:"alive"`
	Owns     query.Interval   `json:"owns"`     // current (failed-over) ownership
	Home     query.Interval   `json:"home"`     // base segment
	Replicas []int            `json:"replicas"` // replica set of the home segment
	Held     []query.Interval `json:"held"`     // ranges stored on the node
	// MissedWrites counts routed writes acknowledged without this replica
	// (it was dead or its leg failed); anti-entropy catch-up zeroes it.
	MissedWrites int64 `json:"missed_writes,omitempty"`
}

// Snapshot returns the per-node topology view the /topology endpoint and
// the chaos campaign inspect.
func (rt *Router) Snapshot() []NodeStatus {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]NodeStatus, rt.topo.Nodes())
	for j := range out {
		hlo, hhi := rt.topo.Segment(j)
		st := NodeStatus{
			Node:         j,
			Alive:        rt.view.Alive(j),
			Home:         query.Interval{Lo: hlo, Hi: hhi},
			Replicas:     rt.topo.ReplicaSet(j),
			Held:         rt.topo.HeldRanges(j),
			MissedWrites: rt.missedW[j],
		}
		if cur := rt.view.Current(); cur != nil {
			lo, hi := cur.Segment(j)
			st.Owns = query.Interval{Lo: lo, Hi: hi}
		}
		out[j] = st
	}
	return out
}

// clipIntervals restricts sorted disjoint intervals to the half-open
// segment [lo, hi).
func clipIntervals(ivs []query.Interval, lo, hi uint64) []query.Interval {
	var out []query.Interval
	for _, iv := range ivs {
		if iv.Lo >= hi {
			break // sorted: nothing further intersects
		}
		a, b := iv.Lo, iv.Hi
		if a < lo {
			a = lo
		}
		if b > hi {
			b = hi
		}
		if a < b {
			out = append(out, query.Interval{Lo: a, Hi: b})
		}
	}
	return out
}
