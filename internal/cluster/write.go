package cluster

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/store"
)

// ErrRouterReadOnly is the sentinel wrapped by write refusals on a router
// built without WithWriteQuorum; test with errors.Is.
var ErrRouterReadOnly = errors.New("cluster: router is read-only (no write quorum configured)")

// ErrWriteQuorum is the sentinel wrapped by writes that could not reach
// their quorum: fewer than W replicas of the owning segment acknowledged.
// The write may still sit durably on the replicas that did acknowledge —
// anti-entropy reconciles either way — but the router never reported it
// committed, so the caller must not assume it readable.
var ErrWriteQuorum = errors.New("cluster: write quorum not reached")

// WriteResult is the outcome of one routed write.
type WriteResult struct {
	// Acked counts the replicas that had durably applied the write when the
	// router acknowledged; at least Required on success. Stragglers that
	// complete after the quorum acknowledgment are not waited for.
	Acked int
	// Required is the configured write quorum W.
	Required int
	// Missed counts the replicas of the owning segment that were believed
	// dead when the write was routed; each is recorded in the per-node miss
	// ledger that anti-entropy catch-up settles.
	Missed int
	// Nodes lists the replicas counted in Acked, in acknowledgment order.
	Nodes []int
}

// Put routes one durable insert: the owning segment is the one whose curve
// range covers rec's index, and the write fans out to every live replica of
// that segment concurrently — not just W of them, so healthy replicas do not
// silently diverge — acknowledging as soon as W replicas have applied it.
// Replicas believed dead are skipped and recorded as misses for anti-entropy
// to settle; a live replica whose leg fails is marked dead with the same
// error classification as the read path. Fewer than W live replicas fails
// fast with ErrWriteQuorum before any leg is attempted.
func (rt *Router) Put(ctx context.Context, rec store.Record) (WriteResult, error) {
	return rt.writeRecord(ctx, rec, func(n Node, ctx context.Context) error {
		return n.Put(ctx, rec, rt.nodeTimeout)
	})
}

// Delete routes one durable delete of every stored instance equal to rec
// (same point, same payload), with Put's fan-out and quorum semantics.
func (rt *Router) Delete(ctx context.Context, rec store.Record) (WriteResult, error) {
	return rt.writeRecord(ctx, rec, func(n Node, ctx context.Context) error {
		return n.Delete(ctx, rec, rt.nodeTimeout)
	})
}

// Flush asks every live node to persist its memtables to on-disk runs. All
// live nodes must succeed; nodes believed dead are skipped (their WAL makes
// them no less durable, and catch-up flushes them before revival).
func (rt *Router) Flush(ctx context.Context) error {
	if rt.writeQuorum < 1 {
		return fmt.Errorf("cluster: flush: %w", ErrRouterReadOnly)
	}
	rt.mu.Lock()
	var live []int
	for i := 0; i < rt.topo.Nodes(); i++ {
		if rt.view.Alive(i) {
			live = append(live, i)
		}
	}
	rt.mu.Unlock()
	for _, n := range live {
		fctx, cancel := context.WithTimeout(ctx, rt.nodeTimeout)
		err := rt.nodeHandle(n).Flush(fctx, rt.nodeTimeout)
		cancel()
		if err != nil {
			if ctx.Err() == nil && !errors.Is(err, context.Canceled) {
				rt.nodeErrors.Inc()
				rt.MarkDead(n)
			}
			return fmt.Errorf("cluster: flushing node %d: %w", n, err)
		}
	}
	return nil
}

// writeRecord fans one write out to the owning segment's replicas.
func (rt *Router) writeRecord(ctx context.Context, rec store.Record, apply func(n Node, ctx context.Context) error) (WriteResult, error) {
	if rt.writeQuorum < 1 {
		return WriteResult{}, fmt.Errorf("cluster: write: %w", ErrRouterReadOnly)
	}
	c := rt.topo.Curve()
	if u := c.Universe(); !u.Contains(rec.Point) {
		return WriteResult{}, fmt.Errorf("cluster: write: point %v outside universe %v", rec.Point, u)
	}
	rt.wTotal.Inc()
	seg := rt.topo.Base().OwnerOfPosition(c.Index(rec.Point))
	replicas := rt.topo.ReplicaSet(seg)

	// Snapshot liveness once: the legs launch against this view, and the
	// replicas dead in it are this write's misses.
	rt.mu.Lock()
	var live, dead []int
	for _, n := range replicas {
		if rt.view.Alive(n) {
			live = append(live, n)
		} else {
			dead = append(dead, n)
		}
	}
	rt.mu.Unlock()

	required := rt.writeQuorum
	res := WriteResult{Required: required, Missed: len(dead)}
	if len(live) < required {
		return res, fmt.Errorf("cluster: write: %w: %d of %d replicas of segment %d live, quorum %d",
			ErrWriteQuorum, len(live), len(replicas), seg, required)
	}

	// Every leg runs on a context detached from the caller's cancellation:
	// once W replicas acknowledge, the router returns, but the remaining
	// replicas must still finish applying (or be recorded as misses) —
	// canceling them would manufacture divergence on healthy nodes.
	type legOut struct {
		node int
		err  error
	}
	outc := make(chan legOut, len(live))
	for _, n := range live {
		n := n
		h := rt.nodeHandle(n)
		go func() {
			lctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), rt.nodeTimeout)
			defer cancel()
			err := apply(h, lctx)
			if err != nil && ctx.Err() == nil && !errors.Is(err, context.Canceled) {
				rt.nodeErrors.Inc()
				rt.MarkDead(n)
				rt.recordMiss(n)
			}
			outc <- legOut{node: n, err: err}
		}()
	}

	var lastErr error
	for done := 0; done < len(live); done++ {
		select {
		case o := <-outc:
			if o.err != nil {
				lastErr = o.err
				continue
			}
			res.Acked++
			res.Nodes = append(res.Nodes, o.node)
			if res.Acked >= required {
				for _, d := range dead {
					rt.recordMiss(d)
				}
				if res.Missed > 0 || res.Acked < len(live) {
					rt.wDegraded.Inc()
				}
				return res, nil
			}
		case <-ctx.Done():
			return res, fmt.Errorf("cluster: write: %w (acked %d of %d)", ctx.Err(), res.Acked, required)
		}
	}
	return res, fmt.Errorf("cluster: write: %w: %d of %d required acks on segment %d: %w",
		ErrWriteQuorum, res.Acked, required, seg, lastErr)
}

// recordMiss charges node with one write it did not apply.
func (rt *Router) recordMiss(node int) {
	rt.wMisses.Inc()
	rt.mu.Lock()
	rt.missedW[node]++
	rt.mu.Unlock()
}

// MissedWrites returns node i's outstanding miss count.
func (rt *Router) MissedWrites(i int) int64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if i < 0 || i >= len(rt.missedW) {
		return 0
	}
	return rt.missedW[i]
}

// WriteQuorum returns the configured quorum W (0 = read-only router).
func (rt *Router) WriteQuorum() int { return rt.writeQuorum }
