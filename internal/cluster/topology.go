package cluster

// This file begins the package's second role: alongside the clustering
// *metric* (cluster.go), it implements clustering as a *deployment* —
// multi-node placement of curve ranges. The two meanings share more than a
// name: contiguous curve ranges are natural units of data placement exactly
// because a proximity-preserving order keeps box queries confined to few
// ranges (the metric), so distributing ranges across nodes keeps scatter
// fan-out small (the deployment).

import (
	"fmt"

	"repro/internal/curve"
	"repro/internal/partition"
	"repro/internal/query"
)

// Topology is the static placement plan of an N-node cluster: the curve's
// index space is cut into N contiguous segments (partition.Uniform), node j
// is the home owner of segment j, and each segment is replicated on its
// home node plus the R−1 successor nodes along the curve — the successor
// replication of consistent-hashing rings, which keeps a failed node's
// ranges adjacent to live copies.
//
// The topology is a pure function of (curve, nodes, replicas): every node
// and every router derives the identical plan from the shared parameters,
// so no placement state crosses the wire.
type Topology struct {
	c        curve.Curve
	base     *partition.Partition
	nodes    int
	replicas int
}

// NewTopology builds the placement plan. The replication factor must
// satisfy 1 ≤ R ≤ nodes: R > N would demand more distinct copies of a
// segment than there are nodes to hold them.
func NewTopology(c curve.Curve, nodes, replicas int) (*Topology, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("cluster: %d nodes", nodes)
	}
	if replicas < 1 || replicas > nodes {
		return nil, fmt.Errorf("cluster: replication factor %d outside [1, %d nodes]", replicas, nodes)
	}
	base, err := partition.Uniform(c, nodes)
	if err != nil {
		return nil, fmt.Errorf("cluster: partitioning: %w", err)
	}
	return &Topology{c: c, base: base, nodes: nodes, replicas: replicas}, nil
}

// Curve returns the curve the placement is defined over.
func (t *Topology) Curve() curve.Curve { return t.c }

// Nodes returns the cluster size N.
func (t *Topology) Nodes() int { return t.nodes }

// Replicas returns the replication factor R.
func (t *Topology) Replicas() int { return t.replicas }

// Base returns the home-ownership partition (segment j ↔ node j).
func (t *Topology) Base() *partition.Partition { return t.base }

// Segment returns the half-open curve-index range [lo, hi) of segment j.
func (t *Topology) Segment(j int) (lo, hi uint64) { return t.base.Segment(j) }

// ReplicaSet returns the nodes holding segment j's data, home node first:
// {j, j+1, …, j+R−1} mod N.
func (t *Topology) ReplicaSet(j int) []int {
	set := make([]int, t.replicas)
	for i := range set {
		set[i] = (j + i) % t.nodes
	}
	return set
}

// Holds reports whether node holds a replica of segment j.
func (t *Topology) Holds(node, j int) bool {
	return ((node-j)%t.nodes+t.nodes)%t.nodes < t.replicas
}

// HoldsKey reports whether node holds a replica of the segment owning the
// given curve index.
func (t *Topology) HoldsKey(node int, key uint64) bool {
	return t.Holds(node, t.base.OwnerOfPosition(key))
}

// HeldRanges returns the merged curve-index ranges node stores: the union
// of the segments whose replica set contains it. Nodes seed (and serve)
// exactly these ranges.
func (t *Topology) HeldRanges(node int) []query.Interval {
	var ivs []query.Interval
	for j := 0; j < t.nodes; j++ {
		if !t.Holds(node, j) {
			continue
		}
		lo, hi := t.Segment(j)
		if lo < hi {
			ivs = append(ivs, query.Interval{Lo: lo, Hi: hi})
		}
	}
	return query.MergeIntervals(ivs)
}
