package cluster

import (
	"context"
	"fmt"

	"repro/internal/query"
	"repro/internal/store"
)

// CatchUpStats summarizes one anti-entropy pass over a node's held ranges.
type CatchUpStats struct {
	// Segments counts the segments the node holds a replica of; Synced of
	// those matched a live source's digest without repair, Repaired needed
	// records moved.
	Segments, Synced, Repaired int
	// PutsPushed and DeletesPushed count the write operations replayed onto
	// the node to reconcile it.
	PutsPushed, DeletesPushed int
	// Skipped counts held segments with no live source replica to reconcile
	// against; they are left as the node last saw them.
	Skipped int
}

// CatchUp reconciles a (typically dead, restarting) node against the live
// replicas of every segment it holds: for each held segment the first live
// replica in routing preference order is the source of truth; the two sides
// exchange order-independent range digests, and only on mismatch are the
// segment's records scanned and diffed as multisets keyed on (curve index,
// payload) — extra instances on the node are deleted, missing ones put, and
// the digests re-checked. A node repaired by the pass is flushed so the
// moved records are on-disk before the caller revives it. Segments with no
// live source are skipped: the node's own data is the best copy there.
//
// The node's miss ledger is zeroed on success — after a verified catch-up
// there is nothing outstanding to charge it with.
func (rt *Router) CatchUp(ctx context.Context, node int) (CatchUpStats, error) {
	var st CatchUpStats
	if node < 0 || node >= rt.topo.Nodes() {
		return st, fmt.Errorf("cluster: catch-up: node %d outside [0, %d)", node, rt.topo.Nodes())
	}
	h := rt.nodeHandle(node)
	repairedAny := false
	for seg := 0; seg < rt.topo.Nodes(); seg++ {
		if !rt.topo.Holds(node, seg) {
			continue
		}
		lo, hi := rt.topo.Segment(seg)
		if lo >= hi {
			continue
		}
		st.Segments++
		ivs := []query.Interval{{Lo: lo, Hi: hi}}

		// The source is the first live replica of the segment; the node
		// under catch-up is dead in the view, so it never nominates itself.
		rt.mu.Lock()
		srcs := rt.view.LiveReplicas(seg)
		rt.mu.Unlock()
		src := -1
		for _, s := range srcs {
			if s != node {
				src = s
				break
			}
		}
		if src < 0 {
			st.Skipped++
			continue
		}
		sh := rt.nodeHandle(src)

		srcD, err := sh.Digest(ctx, ivs, rt.nodeTimeout)
		if err != nil {
			return st, fmt.Errorf("cluster: catch-up node %d: digesting segment %d on source %d: %w", node, seg, src, err)
		}
		dstD, err := h.Digest(ctx, ivs, rt.nodeTimeout)
		if err != nil {
			return st, fmt.Errorf("cluster: catch-up node %d: digesting segment %d: %w", node, seg, err)
		}
		if srcD.Count == dstD.Count && srcD.Sum == dstD.Sum {
			st.Synced++
			continue
		}

		puts, dels, err := rt.repairSegment(ctx, node, src, seg, ivs)
		if err != nil {
			return st, err
		}
		st.Repaired++
		st.PutsPushed += puts
		st.DeletesPushed += dels
		repairedAny = true
		rt.aeRepairs.Inc()

		// Verify: the repaired range must now digest identically.
		srcD, err = sh.Digest(ctx, ivs, rt.nodeTimeout)
		if err != nil {
			return st, fmt.Errorf("cluster: catch-up node %d: re-digesting segment %d on source %d: %w", node, seg, src, err)
		}
		dstD, err = h.Digest(ctx, ivs, rt.nodeTimeout)
		if err != nil {
			return st, fmt.Errorf("cluster: catch-up node %d: re-digesting segment %d: %w", node, seg, err)
		}
		if srcD.Count != dstD.Count || srcD.Sum != dstD.Sum {
			return st, fmt.Errorf("cluster: catch-up node %d: segment %d still divergent after repair (src %d/%#x, dst %d/%#x)",
				node, seg, srcD.Count, srcD.Sum, dstD.Count, dstD.Sum)
		}
	}
	if repairedAny {
		if err := h.Flush(ctx, rt.nodeTimeout); err != nil {
			return st, fmt.Errorf("cluster: catch-up node %d: flushing repairs: %w", node, err)
		}
	}
	rt.mu.Lock()
	rt.missedW[node] = 0
	rt.mu.Unlock()
	return st, nil
}

// repairSegment scans a divergent segment on both sides and replays the
// multiset difference onto the node. Both scans must be complete — repairing
// from a partial view would delete records the source merely failed to read.
func (rt *Router) repairSegment(ctx context.Context, node, src, seg int, ivs []query.Interval) (puts, dels int, err error) {
	h, sh := rt.nodeHandle(node), rt.nodeHandle(src)
	srcRes, err := sh.Scan(ctx, ivs, rt.nodeTimeout)
	if err != nil {
		return 0, 0, fmt.Errorf("cluster: catch-up node %d: scanning segment %d on source %d: %w", node, seg, src, err)
	}
	if len(srcRes.Unavailable) > 0 {
		return 0, 0, fmt.Errorf("cluster: catch-up node %d: source %d reported %d dark intervals in segment %d", node, src, len(srcRes.Unavailable), seg)
	}
	dstRes, err := h.Scan(ctx, ivs, rt.nodeTimeout)
	if err != nil {
		return 0, 0, fmt.Errorf("cluster: catch-up node %d: scanning segment %d: %w", node, seg, err)
	}
	if len(dstRes.Unavailable) > 0 {
		return 0, 0, fmt.Errorf("cluster: catch-up node %d: %d dark intervals in its own segment %d", node, len(dstRes.Unavailable), seg)
	}

	// Multiset diff keyed on (curve index, payload). One record per key is
	// kept to replay with — any instance will do, they are equal.
	c := rt.topo.Curve()
	type instKey struct {
		key     uint64
		payload uint64
	}
	srcN := map[instKey]int{}
	dstN := map[instKey]int{}
	sample := map[instKey]store.Record{}
	for _, r := range srcRes.Records {
		k := instKey{c.Index(r.Point), r.Payload}
		srcN[k]++
		sample[k] = r
	}
	for _, r := range dstRes.Records {
		k := instKey{c.Index(r.Point), r.Payload}
		dstN[k]++
		sample[k] = r
	}
	push := func(rec store.Record, n int) error {
		for i := 0; i < n; i++ {
			if err := h.Put(ctx, rec, rt.nodeTimeout); err != nil {
				return fmt.Errorf("cluster: catch-up node %d: replaying put in segment %d: %w", node, seg, err)
			}
			puts++
		}
		return nil
	}
	for k, want := range srcN {
		have := dstN[k]
		switch {
		case have < want:
			if err := push(sample[k], want-have); err != nil {
				return puts, dels, err
			}
		case have > want:
			// Delete removes EVERY instance of (point, payload), so take the
			// node to zero and rebuild the source's count.
			if err := h.Delete(ctx, sample[k], rt.nodeTimeout); err != nil {
				return puts, dels, fmt.Errorf("cluster: catch-up node %d: replaying delete in segment %d: %w", node, seg, err)
			}
			dels++
			if err := push(sample[k], want); err != nil {
				return puts, dels, err
			}
		}
	}
	for k := range dstN {
		if _, ok := srcN[k]; ok {
			continue
		}
		// The node holds instances the source has none of: delete them all.
		if err := h.Delete(ctx, sample[k], rt.nodeTimeout); err != nil {
			return puts, dels, fmt.Errorf("cluster: catch-up node %d: replaying delete in segment %d: %w", node, seg, err)
		}
		dels++
	}
	return puts, dels, nil
}
