package cluster

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/query"
	"repro/internal/store"
)

// countOf counts the instances of rec in the stub's multiset.
func (s *stubNode) countOf(rec store.Record) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := s.c.Index(rec.Point)
	n := 0
	for _, r := range s.recs {
		if r.Payload == rec.Payload && s.c.Index(r.Point) == key {
			n++
		}
	}
	return n
}

// TestRouterReadOnlyByDefault: a router built without WithWriteQuorum refuses
// every write with ErrRouterReadOnly — the PR-8 read-only surface survives
// the API extension byte for byte.
func TestRouterReadOnlyByDefault(t *testing.T) {
	c := testCurve(t, 3)
	topo, err := NewTopology(c, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRouter(topo, nodesOf(buildStubCluster(t, topo, nil)))
	if err != nil {
		t.Fatal(err)
	}
	rec := store.Record{Point: c.Universe().NewPoint(), Payload: 7}
	if _, err := rt.Put(context.Background(), rec); !errors.Is(err, ErrRouterReadOnly) {
		t.Fatalf("Put on read-only router: %v, want ErrRouterReadOnly", err)
	}
	if _, err := rt.Delete(context.Background(), rec); !errors.Is(err, ErrRouterReadOnly) {
		t.Fatalf("Delete on read-only router: %v, want ErrRouterReadOnly", err)
	}
	if err := rt.Flush(context.Background()); !errors.Is(err, ErrRouterReadOnly) {
		t.Fatalf("Flush on read-only router: %v, want ErrRouterReadOnly", err)
	}
	if w := rt.WriteQuorum(); w != 0 {
		t.Fatalf("WriteQuorum = %d, want 0", w)
	}
}

// TestRouterWriteQuorumBounds: the quorum is confined to 0 ≤ W ≤ R.
func TestRouterWriteQuorumBounds(t *testing.T) {
	c := testCurve(t, 3)
	topo, err := NewTopology(c, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{-1, 3} {
		if _, err := NewRouter(topo, nodesOf(buildStubCluster(t, topo, nil)), WithWriteQuorum(w)); err == nil {
			t.Fatalf("write quorum %d accepted with R=2", w)
		}
	}
}

// TestRouterWriteQuorumReadable is the satellite property test: whenever a
// routed write acknowledges at quorum W, the record is immediately readable
// from at least W replicas of its owning segment (the acknowledged ones),
// and a write routed while fewer than W replicas are live fails with
// ErrWriteQuorum without corrupting the view. Deletes hold the mirrored
// property: every acknowledged replica has dropped the record.
func TestRouterWriteQuorumReadable(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := testCurve(t, 3)
		u := c.Universe()
		const nodes = 5
		replicas := 1 + rng.Intn(3)
		w := 1 + rng.Intn(replicas)
		topo, err := NewTopology(c, nodes, replicas)
		if err != nil {
			t.Fatal(err)
		}
		stubs := buildStubCluster(t, topo, distinctRecords(rng, u, 20))
		rt, err := NewRouter(topo, nodesOf(stubs), WithWriteQuorum(w), WithHedgeDelay(0))
		if err != nil {
			t.Fatal(err)
		}

		// Kill a random strict subset of the nodes.
		for _, n := range rng.Perm(nodes)[:rng.Intn(nodes)] {
			if err := rt.MarkDead(n); err != nil {
				t.Fatal(err)
			}
		}

		var acked []store.Record
		for i := 0; i < 30; i++ {
			p := u.NewPoint()
			u.FromLinear(uint64(rng.Intn(int(u.N()))), p)
			rec := store.Record{Point: p, Payload: 1000 + uint64(i)}
			seg := topo.Base().OwnerOfPosition(c.Index(rec.Point))
			live := 0
			for _, n := range topo.ReplicaSet(seg) {
				if rt.Alive(n) {
					live++
				}
			}
			res, err := rt.Put(context.Background(), rec)
			if live < w {
				if !errors.Is(err, ErrWriteQuorum) {
					t.Fatalf("seed %d: put with %d live < W=%d: err = %v, want ErrWriteQuorum", seed, live, w, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("seed %d: put: %v", seed, err)
			}
			if res.Acked < w || len(res.Nodes) != res.Acked {
				t.Fatalf("seed %d: put acked %d (nodes %v), quorum %d", seed, res.Acked, res.Nodes, w)
			}
			if res.Missed != len(topo.ReplicaSet(seg))-live {
				t.Fatalf("seed %d: put missed %d, want %d", seed, res.Missed, len(topo.ReplicaSet(seg))-live)
			}
			for _, n := range res.Nodes {
				if got := stubs[n].countOf(rec); got < 1 {
					t.Fatalf("seed %d: acked replica %d does not hold %v", seed, n, rec)
				}
			}
			acked = append(acked, rec)
		}

		// Delete a sample of the acknowledged writes: every acknowledged
		// replica must have dropped the record.
		for _, rec := range acked {
			if rng.Intn(2) == 0 {
				continue
			}
			res, err := rt.Delete(context.Background(), rec)
			if err != nil {
				if errors.Is(err, ErrWriteQuorum) {
					continue
				}
				t.Fatalf("seed %d: delete: %v", seed, err)
			}
			for _, n := range res.Nodes {
				if got := stubs[n].countOf(rec); got != 0 {
					t.Fatalf("seed %d: acked replica %d still holds %d instances of deleted %v", seed, n, got, rec)
				}
			}
		}

		if err := rt.Conserved(); err != nil {
			t.Fatalf("seed %d: after writes: %v", seed, err)
		}
	}
}

// TestRouterWriteReadYourWrites: with W = R every replica has applied before
// the acknowledgment, so a routed scan immediately returns the written
// records even after any single node death.
func TestRouterWriteReadYourWrites(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := testCurve(t, 3)
	u := c.Universe()
	topo, err := NewTopology(c, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	stubs := buildStubCluster(t, topo, nil)
	rt, err := NewRouter(topo, nodesOf(stubs), WithWriteQuorum(2), WithHedgeDelay(0))
	if err != nil {
		t.Fatal(err)
	}
	var want []store.Record
	for i := 0; i < 40; i++ {
		p := u.NewPoint()
		u.FromLinear(uint64(rng.Intn(int(u.N()))), p)
		rec := store.Record{Point: p, Payload: uint64(i)}
		if _, err := rt.Put(context.Background(), rec); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		want = append(want, rec)
	}
	if err := rt.MarkDead(rng.Intn(4)); err != nil {
		t.Fatal(err)
	}
	res, err := rt.Scan(context.Background(), []query.Interval{{Lo: 0, Hi: u.N()}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() {
		t.Fatalf("scan degraded after single death with R=2: dark %v", res.Unavailable)
	}
	if len(res.Records) != len(want) {
		t.Fatalf("scan returned %d records, want %d", len(res.Records), len(want))
	}
	counts := map[[2]uint64]int{}
	for _, r := range want {
		counts[[2]uint64{c.Index(r.Point), r.Payload}]++
	}
	for _, r := range res.Records {
		counts[[2]uint64{c.Index(r.Point), r.Payload}]--
	}
	for k, n := range counts {
		if n != 0 {
			t.Fatalf("multiset mismatch at %v: %+d", k, n)
		}
	}
}

// TestRouterCatchUp: a node that missed writes while dead is reconciled by
// anti-entropy before Probe revives it — its held ranges digest identically
// to the live copies, its miss ledger is zeroed, and records deleted while
// it was down are gone from it too.
func TestRouterCatchUp(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := testCurve(t, 3)
	u := c.Universe()
	topo, err := NewTopology(c, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	seeds := distinctRecords(rng, u, 24)
	stubs := buildStubCluster(t, topo, seeds)
	down := false
	stubs[1].fail = func() bool { return down }
	rt, err := NewRouter(topo, nodesOf(stubs), WithWriteQuorum(1), WithHedgeDelay(0))
	if err != nil {
		t.Fatal(err)
	}

	down = true
	if err := rt.MarkDead(1); err != nil {
		t.Fatal(err)
	}

	// Writes node 1 will miss: puts across the whole space, plus deletes of
	// seeded records node 1 holds a replica of.
	var written []store.Record
	for i := 0; i < 30; i++ {
		p := u.NewPoint()
		u.FromLinear(uint64(rng.Intn(int(u.N()))), p)
		rec := store.Record{Point: p, Payload: 5000 + uint64(i)}
		if _, err := rt.Put(context.Background(), rec); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		written = append(written, rec)
	}
	var deleted []store.Record
	for _, rec := range seeds {
		if !topo.HoldsKey(1, c.Index(rec.Point)) || len(deleted) >= 4 {
			continue
		}
		if _, err := rt.Delete(context.Background(), rec); err != nil {
			t.Fatalf("delete: %v", err)
		}
		deleted = append(deleted, rec)
	}
	if rt.MissedWrites(1) == 0 {
		t.Fatal("no misses recorded for the dead replica")
	}

	// While still down, probing must not revive it.
	if revived := rt.Probe(context.Background()); len(revived) != 0 {
		t.Fatalf("probe revived %v while node 1 is down", revived)
	}

	down = false
	revived := rt.Probe(context.Background())
	if len(revived) != 1 || revived[0] != 1 {
		t.Fatalf("probe revived %v, want [1]", revived)
	}
	if !rt.Alive(1) {
		t.Fatal("node 1 not alive after catch-up probe")
	}
	if got := rt.MissedWrites(1); got != 0 {
		t.Fatalf("miss ledger not settled: %d", got)
	}
	for _, rec := range written {
		if !topo.HoldsKey(1, c.Index(rec.Point)) {
			continue
		}
		if stubs[1].countOf(rec) != 1 {
			t.Fatalf("caught-up node missing replayed write %v", rec)
		}
	}
	for _, rec := range deleted {
		if stubs[1].countOf(rec) != 0 {
			t.Fatalf("caught-up node still holds deleted %v", rec)
		}
	}
	// Held ranges digest identically to a live replica of each segment.
	for seg := 0; seg < topo.Nodes(); seg++ {
		if !topo.Holds(1, seg) {
			continue
		}
		lo, hi := topo.Segment(seg)
		ivs := []query.Interval{{Lo: lo, Hi: hi}}
		var src *stubNode
		for _, n := range topo.ReplicaSet(seg) {
			if n != 1 {
				src = stubs[n]
				break
			}
		}
		want, err := src.Digest(context.Background(), ivs, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := stubs[1].Digest(context.Background(), ivs, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want.Count != got.Count || want.Sum != got.Sum {
			t.Fatalf("segment %d digests diverge after catch-up: src %d/%#x, node %d/%#x",
				seg, want.Count, want.Sum, got.Count, got.Sum)
		}
	}
}

// TestRouterCatchUpStats: the pass reports which segments were synced versus
// repaired, and a second pass over an already-consistent node repairs
// nothing.
func TestRouterCatchUpStats(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := testCurve(t, 3)
	u := c.Universe()
	topo, err := NewTopology(c, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	stubs := buildStubCluster(t, topo, distinctRecords(rng, u, 16))
	rt, err := NewRouter(topo, nodesOf(stubs), WithWriteQuorum(1), WithHedgeDelay(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.MarkDead(2); err != nil {
		t.Fatal(err)
	}
	// One write into a range node 2 holds (FromLinear takes a row-major
	// index, so the curve position must be recomputed from the point).
	var rec store.Record
	for lin := uint64(0); lin < u.N(); lin++ {
		p := u.NewPoint()
		u.FromLinear(lin, p)
		if topo.HoldsKey(2, c.Index(p)) {
			rec = store.Record{Point: p, Payload: 9999}
			break
		}
	}
	if _, err := rt.Put(context.Background(), rec); err != nil {
		t.Fatal(err)
	}
	st, err := rt.CatchUp(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments != 2 || st.Repaired < 1 || st.PutsPushed < 1 {
		t.Fatalf("first pass stats %+v, want 2 segments with ≥1 repaired put", st)
	}
	st, err = rt.CatchUp(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Repaired != 0 || st.Synced != st.Segments {
		t.Fatalf("second pass stats %+v, want all synced", st)
	}
}
